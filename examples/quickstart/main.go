// Quickstart: a minimal TreadMarks program on the simulated SP/2.
//
// Eight processors share a vector; each fills its block, a barrier
// publishes the writes, and processor 0 sums the result. Run with:
//
//	go run ./examples/quickstart
//
// The printed statistics show the DSM at work: barrier messages
// (2(n-1) per barrier), diff requests from processor 0's read of the
// other blocks, and the diff replies that carry only the bytes that
// changed.
package main

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tmk"
)

func main() {
	const procs = 8
	const n = 1 << 16

	sys := tmk.NewSystem(procs, model.SP2())
	err := sys.Run(func(tm *tmk.Tmk) {
		// Every process allocates the same regions in the same order
		// (SPMD), like a Fortran common block.
		vec := tmk.Alloc[float64](tm, "vec", n)

		// Fill my block.
		chunk := n / tm.NProcs()
		lo := tm.ID() * chunk
		w := vec.Write(lo, lo+chunk)
		for i := lo; i < lo+chunk; i++ {
			w[i] = float64(i)
		}

		// Publish the writes (release consistency: the barrier carries
		// the write notices; data moves later, on demand).
		tm.Barrier()

		if tm.ID() == 0 {
			g := vec.Read(0, n) // faults in everyone else's blocks
			var sum float64
			for i := 0; i < n; i++ {
				sum += g[i]
			}
			fmt.Printf("sum(0..%d) = %.0f (expect %.0f)\n", n-1, sum, float64(n-1)*float64(n)/2)
			fmt.Printf("virtual time on proc 0: %v\n", tm.Now())
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("traffic: %s\n", sys.Stats().String())
}
