// Jacobi, four ways: the paper's central comparison on one application.
//
// Runs the same 4-point stencil solver as compiler-generated shared
// memory (SPF→TreadMarks), hand-coded TreadMarks, compiler-generated
// message passing (XHPF), and hand-coded message passing (PVMe), and
// prints Figure 1's story: on a regular application, message passing
// wins, and most of the DSM gap is data aggregation (compare spf with
// spf-opt). Run with:
//
//	go run ./examples/jacobi [-n 1024] [-iters 20] [-procs 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	n := flag.Int("n", 1024, "grid size")
	iters := flag.Int("iters", 20, "timed iterations")
	procs := flag.Int("procs", 8, "processors")
	flag.Parse()

	app := jacobi.New()
	r := harness.NewRunner(*procs, harness.MidScale)
	cfg := r.Config(app, *procs)
	cfg.N1, cfg.Iters = *n, *iters

	seqCfg := cfg
	seqCfg.Procs = 1
	seq, err := app.Run(core.Seq, seqCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sequential: %v (checksum %.6g)\n\n", seq.Time, seq.Checksum)
	fmt.Printf("%-8s | %8s | %8s | %10s | %8s\n", "version", "speedup", "msgs", "data (KB)", "check")
	fmt.Println("------------------------------------------------------")
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFOpt} {
		res, err := app.Run(v, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok := "ok"
		if res.Checksum != seq.Checksum {
			ok = "MISMATCH"
		}
		fmt.Printf("%-8s | %8.2f | %8d | %10d | %8s\n",
			v, res.Speedup(seq.Time), res.Stats.TotalMsgs(), res.Stats.TotalKB(), ok)
	}
}
