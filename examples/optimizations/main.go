// The §5 hand optimizations and the §2.3 interface improvement.
//
// The paper closes with the observation that a few mechanical
// optimizations — aggregating data communication, merging
// synchronization with data, eliminating redundant synchronization —
// recover most of the gap between compiler-generated DSM and hand-coded
// message passing. This example reproduces them:
//
//   - Jacobi / 3-D FFT: data aggregation (one request per writer instead
//     of one per page);
//   - Shallow: merging the wrap loops into the main loops (fewer
//     fork-joins) plus aggregation;
//   - MGS: replacing barrier+faults with a broadcast that carries the
//     data (merged synchronization and data);
//   - the fork-join interface ablation: 8(n-1) vs 2(n-1) messages per
//     parallel loop.
//
// Run with:
//
//	go run ./examples/optimizations [-procs 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	procs := flag.Int("procs", 8, "processors")
	flag.Parse()

	r := harness.NewRunner(*procs, harness.MidScale)
	if err := harness.HandOpt(os.Stdout, r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := harness.Interface(os.Stdout, r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
