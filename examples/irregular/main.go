// Where software DSM wins: the paper's irregular applications.
//
// IGrid and NBF access data through run-time indirection (a stencil map,
// molecular partner lists), which compile-time analysis cannot see. The
// XHPF compiler falls back to broadcasting every processor's whole
// partition after every step; TreadMarks just faults in the pages that
// are actually touched and caches them. This example prints the Table 3
// blow-up and the Figure 2 speedups side by side. Run with:
//
//	go run ./examples/irregular [-procs 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	procs := flag.Int("procs", 8, "processors")
	flag.Parse()

	r := harness.NewRunner(*procs, harness.MidScale)
	for _, name := range harness.IrregularApps {
		app, err := harness.AppByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		seq, err := r.Run(app, core.Seq)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s (sequential %v)\n", name, seq.Time)
		fmt.Printf("  %-8s | %8s | %8s | %12s\n", "version", "speedup", "msgs", "data (KB)")
		var dsmKB, xhpfKB int64
		for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe} {
			res, err := r.Run(app, v)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %-8s | %8.2f | %8d | %12d\n",
				v, res.Speedup(seq.Time), res.Stats.TotalMsgs(), res.Stats.TotalKB())
			if v == core.Tmk {
				dsmKB = res.Stats.TotalKB()
			}
			if v == core.XHPF {
				xhpfKB = res.Stats.TotalKB()
			}
		}
		if dsmKB > 0 {
			fmt.Printf("  -> XHPF ships %dx the data TreadMarks does\n\n", xhpfKB/dsmKB)
		}
	}
}
