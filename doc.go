// Package repro is a from-scratch Go reproduction of Cox, Dwarkadas, Lu
// and Zwaenepoel, "Evaluating the Performance of Software Distributed
// Shared Memory as a Target for Parallelizing Compilers" (IPPS 1997).
//
// The paper's machine — an 8-node IBM SP/2 running TreadMarks, the APR
// Forge SPF/XHPF compilers, and PVMe — is rebuilt on a deterministic
// discrete-event simulator (internal/sim) with a calibrated cost model
// (internal/model). The TreadMarks DSM protocol (internal/tmk), the SPF
// fork-join runtime (internal/spf), the XHPF SPMD runtime
// (internal/xhpf) and a PVMe-style message-passing library
// (internal/pvm) are real protocol implementations operating on real
// data; only time is virtual. Six applications (internal/apps/...) run
// in every version the paper compares, and internal/harness regenerates
// every table and figure. See README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) regenerate each
// experiment as a `go test -bench` target, reporting speedups, message
// counts and data volumes as custom metrics.
package repro
