package repro

// One benchmark per table and figure of the paper, plus the ablations
// DESIGN.md calls out. Each sub-benchmark executes the experiment and
// reports the quantities the paper tabulates as custom metrics:
//
//	speedup    8-processor speedup (Figures 1 and 2)
//	msgs       total messages in the timed region (Tables 2 and 3)
//	data-KB    data volume in KB (Tables 2 and 3)
//	seq-sec    sequential virtual time in seconds (Table 1)
//
// Benchmarks run at mid scale by default (page-granularity-preserving
// reduced sizes; see harness.MidScale) so `go test -bench=.` finishes in
// minutes. Set -tags papersize via benchScale below... rather: use
// REPRO_BENCH_SCALE=paper in the environment to run the full Table 1
// data sets.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tmk"
)

const benchProcs = 8

func benchScale() harness.Scale {
	if os.Getenv("REPRO_BENCH_SCALE") == "paper" {
		return harness.PaperScale
	}
	return harness.MidScale
}

// benchRunner is shared across benchmarks so repeated sub-benchmarks of
// the same (app, version) reuse the cached result; the first iteration
// does the real work.
var benchRunner = harness.NewRunner(benchProcs, benchScale())

func reportRun(b *testing.B, app core.App, v core.Version) {
	b.Helper()
	var res, seq core.Result
	var err error
	for i := 0; i < b.N; i++ {
		seq, err = benchRunner.Run(app, core.Seq)
		if err != nil {
			b.Fatal(err)
		}
		res, err = benchRunner.Run(app, v)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(seq.Time), "speedup")
	b.ReportMetric(float64(res.Stats.TotalMsgs()), "msgs")
	b.ReportMetric(float64(res.Stats.TotalKB()), "data-KB")
}

// BenchmarkTable1SequentialTimes regenerates Table 1.
func BenchmarkTable1SequentialTimes(b *testing.B) {
	for _, a := range harness.Apps() {
		b.Run(a.Name(), func(b *testing.B) {
			var seq core.Result
			var err error
			for i := 0; i < b.N; i++ {
				seq, err = benchRunner.Run(a, core.Seq)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seq.Time.Seconds(), "seq-sec")
		})
	}
}

func benchFigure(b *testing.B, apps []string) {
	for _, name := range apps {
		a, err := harness.AppByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range harness.FigureVersions {
			b.Run(name+"/"+string(v), func(b *testing.B) { reportRun(b, a, v) })
		}
	}
}

// BenchmarkFigure1RegularSpeedups regenerates Figure 1 (speedups of the
// regular applications, four versions each).
func BenchmarkFigure1RegularSpeedups(b *testing.B) {
	benchFigure(b, harness.RegularApps)
}

// BenchmarkTable2RegularTraffic regenerates Table 2 (message and data
// totals of the regular applications; metrics msgs and data-KB).
func BenchmarkTable2RegularTraffic(b *testing.B) {
	benchFigure(b, harness.RegularApps)
}

// BenchmarkFigure2IrregularSpeedups regenerates Figure 2.
func BenchmarkFigure2IrregularSpeedups(b *testing.B) {
	benchFigure(b, harness.IrregularApps)
}

// BenchmarkTable3IrregularTraffic regenerates Table 3.
func BenchmarkTable3IrregularTraffic(b *testing.B) {
	benchFigure(b, harness.IrregularApps)
}

// BenchmarkSection5HandOptimizations regenerates the §5 hand-optimized
// variants next to their baselines.
func BenchmarkSection5HandOptimizations(b *testing.B) {
	cases := []struct {
		app      string
		baseline core.Version
		opt      core.Version
	}{
		{"Jacobi", core.SPF, core.SPFOpt},
		{"Shallow", core.SPF, core.SPFOpt},
		{"MGS", core.Tmk, core.TmkOpt},
		{"3-D FFT", core.SPF, core.SPFOpt},
	}
	for _, c := range cases {
		a, err := harness.AppByName(c.app)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.app+"/baseline", func(b *testing.B) { reportRun(b, a, c.baseline) })
		b.Run(c.app+"/optimized", func(b *testing.B) { reportRun(b, a, c.opt) })
	}
}

// BenchmarkSection23InterfaceAblation regenerates the §2.3 interface
// comparison: the original 8(n-1)-message fork-join scheme against the
// improved 2(n-1) interface, on Jacobi.
func BenchmarkSection23InterfaceAblation(b *testing.B) {
	a, err := harness.AppByName("Jacobi")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("original", func(b *testing.B) { reportRun(b, a, core.SPFOld) })
	b.Run("improved", func(b *testing.B) { reportRun(b, a, core.SPF) })
}

// BenchmarkSection8BarrierReduce is the §8 extension ablation: a global
// sum implemented the SPF way (lock-protected shared variable) against
// the proposed barrier-merged reduction.
func BenchmarkSection8BarrierReduce(b *testing.B) {
	const rounds = 50
	run := func(b *testing.B, barrierMerged bool) {
		var elapsed sim.Time
		var msgs int64
		for i := 0; i < b.N; i++ {
			sys := tmk.NewSystem(benchProcs, model.SP2())
			err := sys.Run(func(tm *tmk.Tmk) {
				shared := tmk.Alloc[float64](tm, "sum", 8)
				for k := 0; k < rounds; k++ {
					part := float64(tm.ID() + k)
					if barrierMerged {
						tm.BarrierReduceSum([]float64{part})
					} else {
						tm.AcquireLock(1)
						w := shared.Write(0, 1)
						w[0] += part
						tm.ReleaseLock(1)
						tm.Barrier()
					}
				}
				if tm.ID() == 0 {
					elapsed = tm.Now()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			msgs = sys.Stats().TotalMsgs()
		}
		b.ReportMetric(elapsed.Seconds()*1e3, "vtime-ms")
		b.ReportMetric(float64(msgs), "msgs")
	}
	b.Run("lock-based", func(b *testing.B) { run(b, false) })
	b.Run("barrier-merged", func(b *testing.B) { run(b, true) })
}

// BenchmarkCompiledVsHand runs the internal/loopc-generated versions
// next to their hand-coded counterparts on Jacobi: spf vs spf-gen and
// xhpf vs xhpf-gen. The metrics (msgs, data-KB, speedup) come out
// identical — the front end emits the same access ranges and the same
// communication sequence a careful hand coder writes, which is the
// point of the compiler experiment.
func BenchmarkCompiledVsHand(b *testing.B) {
	a, err := harness.AppByName("Jacobi")
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []core.Version{core.SPF, core.SPFGen, core.XHPF, core.XHPFGen} {
		b.Run(string(v), func(b *testing.B) { reportRun(b, a, v) })
	}
}

// BenchmarkProtocolComparison runs every application's representative
// DSM version under each coherence protocol (homeless TreadMarks LRC
// and home-based LRC) at 1-8 nodes, reporting per-protocol virtual
// time, message count and data volume. The numerical results are
// bit-identical across protocols (asserted by the equivalence tests in
// internal/harness); these metrics are the part that differs.
func BenchmarkProtocolComparison(b *testing.B) {
	for _, a := range harness.Apps() {
		v := harness.DSMVersionOf(a)
		for _, procs := range harness.ProtocolProcCounts {
			for _, p := range proto.Names() {
				b.Run(fmt.Sprintf("%s/%s/p%d/%s", a.Name(), v, procs, p), func(b *testing.B) {
					r := harness.NewRunner(procs, benchScale())
					r.Protocol = p
					var res core.Result
					var err error
					for i := 0; i < b.N; i++ {
						res, err = r.Run(a, v)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(res.Time.Seconds()*1e3, "vtime-ms")
					b.ReportMetric(float64(res.Stats.TotalMsgs()), "msgs")
					b.ReportMetric(float64(res.Stats.TotalKB()), "data-KB")
				})
			}
		}
	}
}

// BenchmarkHomePolicy sweeps hlrc's home-placement policies at 8 nodes
// on the migration experiment's applications, reporting virtual time,
// flush traffic (the bytes home placement can move) and whole-run home
// migrations. At mid scale MGS's cyclic vectors are one page each, so
// the adaptive policy repoints nearly every page to its owner and the
// flush traffic collapses; Jacobi's and Shallow's block layouts already
// match the static homes, and a good policy leaves them alone.
func BenchmarkHomePolicy(b *testing.B) {
	for _, name := range harness.MigrationApps {
		a, err := harness.AppByName(name)
		if err != nil {
			b.Fatal(err)
		}
		v := harness.DSMVersionOf(a)
		for _, pol := range proto.PolicyNames() {
			b.Run(fmt.Sprintf("%s/%s/%s", name, v, pol), func(b *testing.B) {
				r := harness.NewRunner(benchProcs, benchScale())
				r.Protocol = proto.HomeLRC
				r.HomePolicy = pol
				var res core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = r.Run(a, v)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Time.Seconds()*1e3, "vtime-ms")
				b.ReportMetric(float64(res.Stats.BytesOf(stats.KindDiff))/1024, "flush-KB")
				b.ReportMetric(float64(res.Migrations), "migrations")
			})
		}
	}
}

// BenchmarkContention sweeps the network-contention model at 8 nodes:
// each application/runtime pair runs on the ideal infinite-capacity
// interconnect, with serial NICs, and with the backplane bounded to one
// full-rate transfer. The irregular applications' XHPF broadcast storms
// accumulate queueing delay (queue-ms) super-linearly in node count,
// while Jacobi's pairwise halo exchanges barely queue — the contention
// experiment's headline, as a benchmark.
func BenchmarkContention(b *testing.B) {
	sweep := []struct {
		name string
		ways int
	}{{"ideal", 0}, {"nic", -1}, {"nic+bp1", 1}}
	for _, name := range []string{"Jacobi", "IGrid", "NBF"} {
		a, err := harness.AppByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []core.Version{core.Tmk, core.XHPF, core.PVMe} {
			for _, sw := range sweep {
				b.Run(fmt.Sprintf("%s/%s/%s", name, v, sw.name), func(b *testing.B) {
					r := harness.NewRunner(benchProcs, benchScale())
					var res core.Result
					var err error
					for i := 0; i < b.N; i++ {
						res, err = r.ContentionRun(a, v, benchProcs, r.Protocol, sw.ways)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(res.Time.Seconds()*1e3, "vtime-ms")
					b.ReportMetric(res.QueueTime().Seconds()*1e3, "queue-ms")
					b.ReportMetric(float64(res.Stats.TotalQueuedMsgs()), "queued-msgs")
				})
			}
		}
	}
}

// BenchmarkModelSensitivity re-runs Jacobi's four versions under halved
// and doubled interconnect latency, demonstrating that the version
// ranking (the paper's shape) is insensitive to the calibration.
func BenchmarkModelSensitivity(b *testing.B) {
	app, err := harness.AppByName("Jacobi")
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name  string
		scale float64
	}{{"half-latency", 0.5}, {"double-latency", 2.0}} {
		b.Run(f.name, func(b *testing.B) {
			r := harness.NewRunner(benchProcs, benchScale())
			r.Costs.Latency = sim.Time(float64(r.Costs.Latency) * f.scale)
			var spfS, pvmeS float64
			for i := 0; i < b.N; i++ {
				spfS, err = r.Speedup(app, core.SPF)
				if err != nil {
					b.Fatal(err)
				}
				pvmeS, err = r.Speedup(app, core.PVMe)
				if err != nil {
					b.Fatal(err)
				}
			}
			if pvmeS <= spfS {
				b.Errorf("ranking flipped under %s: PVMe %.2f <= SPF %.2f", f.name, pvmeS, spfS)
			}
			b.ReportMetric(spfS, "spf-speedup")
			b.ReportMetric(pvmeS, "pvme-speedup")
		})
	}
}

// BenchmarkSimulatorEventRate measures the discrete-event engine's raw
// throughput (simulator events per second of host time).
func BenchmarkSimulatorEventRate(b *testing.B) {
	const msgsPerRun = 20000
	for i := 0; i < b.N; i++ {
		c := sim.New(sim.Config{
			Procs: 8, Latency: 10 * sim.Microsecond, NanosPerByte: 30,
			SendOverhead: 5 * sim.Microsecond, RecvOverhead: 5 * sim.Microsecond,
		})
		if err := c.Run(func(p *sim.Proc) {
			next := (p.ID() + 1) % 8
			prev := (p.ID() + 7) % 8
			for k := 0; k < msgsPerRun/8; k++ {
				p.Send(next, 1, nil, 64, stats.KindData)
				p.Recv(prev, 1)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgsPerRun*2), "events/run")
}

// BenchmarkSection8PushVsPull compares §8's producer-push boundary
// propagation against the default request-response pull on Jacobi.
func BenchmarkSection8PushVsPull(b *testing.B) {
	a, err := harness.AppByName("Jacobi")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pull", func(b *testing.B) { reportRun(b, a, core.Tmk) })
	b.Run("push", func(b *testing.B) { reportRun(b, a, core.TmkPush) })
}

// BenchmarkScalability sweeps processor counts on Jacobi and IGrid: the
// regular application keeps near-linear DSM speedups, while the XHPF
// broadcast fallback on the irregular application degrades with scale.
func BenchmarkScalability(b *testing.B) {
	for _, name := range []string{"Jacobi", "IGrid"} {
		a, err := harness.AppByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, procs := range []int{2, 4, 8} {
			b.Run(name+"/"+string(rune('0'+procs))+"procs", func(b *testing.B) {
				r := harness.NewRunner(procs, benchScale())
				var seq, res core.Result
				for i := 0; i < b.N; i++ {
					seq, err = r.Run(a, core.Seq)
					if err != nil {
						b.Fatal(err)
					}
					res, err = r.Run(a, core.Tmk)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Speedup(seq.Time), "speedup")
			})
		}
	}
}
