package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/loopc/gen"
	"repro/internal/proto"
)

// TestCompiledEquivalence is the acceptance gate of the loopc front
// end: for every kernel with an IR description (Jacobi and red-black
// SOR), the generated spf-gen and xhpf-gen versions must produce
// checksums bit-identical to their hand-coded counterparts at 1, 2, 4
// and 8 nodes under both coherence protocols, and a repeated run must
// reproduce the message and byte counts exactly.
func TestCompiledEquivalence(t *testing.T) {
	for _, a := range CompiledApps() {
		for _, pair := range CompiledPairs() {
			hand, gen := pair[0], pair[1]
			for _, procs := range ProtocolProcCounts {
				for _, p := range proto.Names() {
					t.Run(fmt.Sprintf("%s/%s/p%d/%s", a.Name(), gen, procs, p), func(t *testing.T) {
						r := NewRunner(procs, SmallScale)
						r.Protocol = p
						h, err := r.Run(a, hand)
						if err != nil {
							t.Fatal(err)
						}
						g, err := r.Run(a, gen)
						if err != nil {
							t.Fatal(err)
						}
						if g.Checksum != h.Checksum {
							t.Errorf("%s checksum = %v, want %v (as %s)", gen, g.Checksum, h.Checksum, hand)
						}
						again := NewRunner(procs, SmallScale)
						again.Protocol = p
						g2, err := again.Run(a, gen)
						if err != nil {
							t.Fatal(err)
						}
						if g2.Checksum != g.Checksum || g2.Time != g.Time ||
							g2.Stats.TotalMsgs() != g.Stats.TotalMsgs() || g2.Stats.TotalBytes() != g.Stats.TotalBytes() {
							t.Errorf("%s not repeatable: (checksum %v, time %v, msgs %d, bytes %d) vs (%v, %v, %d, %d)",
								gen, g.Checksum, g.Time, g.Stats.TotalMsgs(), g.Stats.TotalBytes(),
								g2.Checksum, g2.Time, g2.Stats.TotalMsgs(), g2.Stats.TotalBytes())
						}
					})
				}
			}
		}
	}
}

// TestCompiledTrafficMatchesHand pins the stronger property the
// lowering achieves on these kernels: the generated versions reproduce
// the hand-coded versions' virtual time and traffic exactly, not just
// their numerics — the compiler emits the same access ranges and the
// same communication sequence.
func TestCompiledTrafficMatchesHand(t *testing.T) {
	for _, a := range CompiledApps() {
		for _, pair := range CompiledPairs() {
			r := NewRunner(8, SmallScale)
			hand, err := r.Run(a, pair[0])
			if err != nil {
				t.Fatal(err)
			}
			gen, err := r.Run(a, pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if gen.Stats.TotalMsgs() != hand.Stats.TotalMsgs() || gen.Stats.TotalBytes() != hand.Stats.TotalBytes() {
				t.Errorf("%s/%s traffic (msgs %d, bytes %d) != %s (msgs %d, bytes %d)",
					a.Name(), pair[1], gen.Stats.TotalMsgs(), gen.Stats.TotalBytes(),
					pair[0], hand.Stats.TotalMsgs(), hand.Stats.TotalBytes())
			}
			if gen.Time != hand.Time {
				t.Errorf("%s/%s time %v != %s time %v", a.Name(), pair[1], gen.Time, pair[0], hand.Time)
			}
		}
	}
}

// corpusSampleSeeds is the generated-program slice the harness
// equivalence tests fold in: a spread across the committed corpus
// (internal/loopc/testdata/corpus), trimmed under -short.
func corpusSampleSeeds(t *testing.T) []int64 {
	seeds := []int64{3, 9, 17, 30, 40}
	if testing.Short() {
		return seeds[:2]
	}
	return seeds
}

// TestCompiledEquivalenceCorpus extends the compiled-equivalence gate
// beyond the hand-ported kernels: generated corpus programs have no
// hand-coded counterpart, so the generated backends are checked bitwise
// against the partition-aware oracle instead (plus repeatability),
// under both protocols for the DSM backend.
func TestCompiledEquivalenceCorpus(t *testing.T) {
	for _, seed := range corpusSampleSeeds(t) {
		a, err := AppByName(fmt.Sprintf("gen-%d", seed))
		if err != nil {
			t.Fatal(err)
		}
		ga := a.(*gen.App)
		for _, procs := range ProtocolProcCounts {
			for _, v := range []core.Version{core.SPFGen, core.XHPFGen} {
				protocols := proto.Names()
				if v == core.XHPFGen {
					protocols = []proto.Name{""} // message passing: no DSM protocol
				}
				for _, p := range protocols {
					t.Run(fmt.Sprintf("%s/%s/p%d/%s", a.Name(), v, procs, p), func(t *testing.T) {
						want, err := ga.ExpectedChecksum(v, procs)
						if err != nil {
							t.Fatal(err)
						}
						r := NewRunner(procs, SmallScale)
						r.Protocol = p
						res, err := r.Run(a, v)
						if err != nil {
							t.Fatal(err)
						}
						if res.Checksum != want {
							t.Errorf("%s checksum = %x, oracle %x", v, res.Checksum, want)
						}
						again := NewRunner(procs, SmallScale)
						again.Protocol = p
						res2, err := again.Run(a, v)
						if err != nil {
							t.Fatal(err)
						}
						if res2.Checksum != res.Checksum || res2.Time != res.Time ||
							res2.Stats.TotalMsgs() != res.Stats.TotalMsgs() || res2.Stats.TotalBytes() != res.Stats.TotalBytes() {
							t.Errorf("%s not repeatable: (checksum %v, time %v, msgs %d, bytes %d) vs (%v, %v, %d, %d)",
								v, res.Checksum, res.Time, res.Stats.TotalMsgs(), res.Stats.TotalBytes(),
								res2.Checksum, res2.Time, res2.Stats.TotalMsgs(), res2.Stats.TotalBytes())
						}
					})
				}
			}
		}
	}
}

// TestCompilerExperimentOutput drives the printed experiment.
func TestCompilerExperimentOutput(t *testing.T) {
	r := NewRunner(4, SmallScale)
	var sb strings.Builder
	if err := Compiler(&sb, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Jacobi", "RB-SOR", string(core.SPFGen), string(core.XHPFGen)} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("compiler experiment output missing %q", want)
		}
	}
}
