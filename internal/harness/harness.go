package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/store"
)

// Apps returns the six applications in the paper's order.
func Apps() []core.App { return exp.PaperApps() }

// AllApps returns every application: the paper's six plus the kernels
// added through the internal/loopc compiler front end (the paper
// tables iterate Apps; version-level experiments iterate these).
func AllApps() []core.App { return exp.Apps() }

// AppByName finds an application (including the non-paper kernels).
func AppByName(name string) (core.App, error) { return exp.AppByName(name) }

// Scale selects the problem sizes. It is core.Scale: sizing lives with
// the applications (core.App.Config), not in a harness table.
type Scale = core.Scale

const (
	// PaperScale runs Table 1's data sets.
	PaperScale = core.PaperScale
	// MidScale runs reduced sizes that preserve the page-granularity
	// regime (rows/vectors of at least a page) at a fraction of the time.
	MidScale = core.MidScale
	// SmallScale runs the tiny test sizes.
	SmallScale = core.SmallScale
)

// Runner is a thin client of the internal/exp engine: it pins the
// default processor count, scale, calibration and protocol, renders
// specs for the experiments below, and shares one concurrency-safe
// result cache across every table and sub-runner.
type Runner struct {
	Procs    int
	Scale    Scale
	Costs    model.Costs
	App      model.AppCosts
	Protocol proto.Name // DSM coherence protocol (empty: homeless LRC)
	// HomePolicy selects the home-placement policy of the home-based
	// protocol (empty: static homes).
	HomePolicy proto.PolicyName
	// Workers bounds the engine's worker pool (0: all host cores).
	Workers int
	// Observe enables per-run observability (see exp.Engine.Observe):
	// every result carries its event trace and per-node time breakdown.
	Observe bool
	// Metrics, when non-nil, exposes the engine's host-side telemetry
	// on that registry (see exp.Engine.Metrics). One registry serves
	// one engine: side-runners sharing a process must keep their own
	// Metrics nil.
	Metrics *metrics.Registry
	// Store, when non-nil, backs the engine with the persistent result
	// store (see exp.Engine.Store): record-serving experiments are
	// byte-identical whether served from disk or executed. Set before
	// the first run.
	Store *store.Store

	eng *exp.Engine
}

// NewRunner builds a Runner with the calibrated SP/2 model.
func NewRunner(procs int, scale Scale) *Runner {
	return &Runner{
		Procs: procs,
		Scale: scale,
		Costs: model.SP2(),
		App:   model.DefaultAppCosts(),
	}
}

// Engine returns the runner's sweep engine, building it from the
// runner's calibration on first use. Set Costs, App and Workers before
// the first run; afterwards the calibration is frozen (the cache is
// keyed by spec alone).
func (r *Runner) Engine() *exp.Engine {
	if r.eng == nil {
		r.eng = exp.NewEngine(r.Costs, r.App)
		r.eng.Workers = r.Workers
		r.eng.Observe = r.Observe
		r.eng.Metrics = r.Metrics
		r.eng.Store = r.Store
	}
	return r.eng
}

// Spec renders the runner's identity for one (application, version)
// at the runner's processor count.
func (r *Runner) Spec(appName string, v core.Version) exp.Spec {
	return r.SpecAt(appName, v, r.Procs)
}

// SpecAt renders the runner's identity at an explicit processor count.
func (r *Runner) SpecAt(appName string, v core.Version, procs int) exp.Spec {
	s := exp.Spec{
		App: appName, Version: v, Procs: procs, Scale: r.Scale,
		Protocol: r.Protocol, Contention: r.Costs.Contention(),
		FIFO: r.Costs.FIFOPairs, HomePolicy: r.HomePolicy,
	}
	return s.Normalize()
}

// Config resolves the run configuration for an application (exposed
// for programs that drive app.Run directly, e.g. the examples).
func (r *Runner) Config(app core.App, procs int) core.Config {
	return r.Engine().Config(app, r.SpecAt(app.Name(), "", procs))
}

// Run executes (and caches) one version of an application.
func (r *Runner) Run(app core.App, v core.Version) (core.Result, error) {
	return r.Engine().Run(r.Spec(app.Name(), v))
}

// Sweep executes every spec across the worker pool, returning results
// in spec order (see exp.Engine.Sweep). Experiments use it to fan a
// whole table's grid out over host cores before rendering.
func (r *Runner) Sweep(specs []exp.Spec) ([]core.Result, error) {
	return r.Engine().Sweep(specs)
}

// results sweeps the specs and indexes the outcome by spec key.
func (r *Runner) results(specs []exp.Spec) (map[string]core.Result, error) {
	out, err := r.Sweep(specs)
	if err != nil {
		return nil, err
	}
	m := make(map[string]core.Result, len(specs))
	for i, s := range specs {
		m[s.Key()] = out[i]
	}
	return m, nil
}

// Speedup runs the version and its sequential baseline.
func (r *Runner) Speedup(app core.App, v core.Version) (float64, error) {
	seq, err := r.Run(app, core.Seq)
	if err != nil {
		return 0, err
	}
	res, err := r.Run(app, v)
	if err != nil {
		return 0, err
	}
	return res.Speedup(seq.Time), nil
}

// CachedKeys lists completed runs (for progress reporting).
func (r *Runner) CachedKeys() []string { return r.Engine().CachedKeys() }

func scaleNote(s Scale) string {
	if s == PaperScale {
		return ""
	}
	return fmt.Sprintf(" [%s scale: absolute counts are not comparable to the paper's; rankings are]", s)
}

// Table1 prints data-set sizes and sequential times (paper Table 1).
func Table1(w io.Writer, r *Runner) error {
	var specs []exp.Spec
	for _, a := range Apps() {
		specs = append(specs, r.Spec(a.Name(), core.Seq))
	}
	res, err := r.results(specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1: Data Set Sizes and Sequential Execution Time%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s | %-28s | %10s | %10s\n", "App", "Problem Size", "paper (s)", "meas (s)")
	fmt.Fprintln(w, "----------------------------------------------------------------------")
	for _, a := range Apps() {
		seq := res[r.Spec(a.Name(), core.Seq).Key()]
		note := ""
		if SeqEstimated[a.Name()] {
			note = "*"
		}
		fmt.Fprintf(w, "%-9s | %-28s | %9.1f%1s | %10.1f\n",
			a.Name(), PaperDataSet[a.Name()], PaperSeqSeconds[a.Name()], note, seq.Time.Seconds())
	}
	fmt.Fprintln(w, "(*) illegible in our source text of the paper; estimated (DESIGN.md)")
	return nil
}

// figureSpecs is the grid behind Figures 1/2 and Tables 2/3: every
// figure version of every listed application, plus the sequential
// baselines the speedups divide by.
func (r *Runner) figureSpecs(apps []string) []exp.Spec {
	axes := exp.Axes{Apps: apps, Versions: FigureVersions}
	specs := axes.Specs(r.Spec("", ""))
	for i := range specs {
		specs[i] = specs[i].Normalize()
	}
	for _, name := range apps {
		specs = append(specs, r.Spec(name, core.Seq))
	}
	return specs
}

func figure(w io.Writer, r *Runner, title string, apps []string) error {
	res, err := r.results(r.figureSpecs(apps))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s%s\n", title, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s |", "App")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %6s(p) %6s(m) |", v, v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------------")
	for _, name := range apps {
		seq := res[r.Spec(name, core.Seq).Key()]
		fmt.Fprintf(w, "%-9s |", name)
		for _, v := range FigureVersions {
			sp := res[r.Spec(name, v).Key()].Speedup(seq.Time)
			paper := PaperSpeedup[name][v]
			if paper == 0 {
				fmt.Fprintf(w, " %9s %6.2f    |", "-", sp)
			} else {
				fmt.Fprintf(w, " %9.2f %6.2f    |", paper, sp)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure1 prints 8-processor speedups for the regular applications.
func Figure1(w io.Writer, r *Runner) error {
	return figure(w, r, "Figure 1: Speedups, regular applications (paper vs measured)", RegularApps)
}

// Figure2 prints 8-processor speedups for the irregular applications.
func Figure2(w io.Writer, r *Runner) error {
	return figure(w, r, "Figure 2: Speedups, irregular applications (paper vs measured)", IrregularApps)
}

func traffic(w io.Writer, r *Runner, title string, apps []string) error {
	res, err := r.results(r.figureSpecs(apps))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s%s\n", title, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-5s |", "App", "")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %8s(p) %8s(m) |", v, v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "-----------------------------------------------------------------------------------------------------------")
	for _, name := range apps {
		fmt.Fprintf(w, "%-9s %-5s |", name, "msgs")
		for _, v := range FigureVersions {
			rr := res[r.Spec(name, v).Key()]
			fmt.Fprintf(w, " %11d %11d |", PaperMsgs[name][v], rr.Stats.TotalMsgs())
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-9s %-5s |", "", "KB")
		for _, v := range FigureVersions {
			rr := res[r.Spec(name, v).Key()]
			fmt.Fprintf(w, " %11d %11d |", PaperKB[name][v], rr.Stats.TotalKB())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table2 prints message and data totals for the regular applications.
func Table2(w io.Writer, r *Runner) error {
	return traffic(w, r, "Table 2: Message totals and data totals (KB), regular applications", RegularApps)
}

// Table3 prints message and data totals for the irregular applications.
func Table3(w io.Writer, r *Runner) error {
	return traffic(w, r, "Table 3: Message totals and data totals (KB), irregular applications", IrregularApps)
}

// handOptCase describes one §5 hand-optimization experiment.
type handOptCase struct {
	app      string
	baseline core.Version
	opt      core.Version
	paperTo  float64
	note     string
}

var handOptCases = []handOptCase{
	{"Jacobi", core.SPF, core.SPFOpt, 7.23, "data aggregation (§5.1)"},
	{"Shallow", core.SPF, core.SPFOpt, 5.96, "merged loops + aggregation (§5.2)"},
	{"MGS", core.Tmk, core.TmkOpt, 5.09, "merged sync+data broadcast (§5.3)"},
	{"3-D FFT", core.SPF, core.SPFOpt, 5.05, "data aggregation (§5.4)"},
}

// HandOpt prints the §5 hand-optimization results.
func HandOpt(w io.Writer, r *Runner) error {
	var specs []exp.Spec
	for _, c := range handOptCases {
		specs = append(specs,
			r.Spec(c.app, core.Seq),
			r.Spec(c.app, c.baseline),
			r.Spec(c.app, c.opt))
	}
	res, err := r.results(specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 5 hand optimizations (paper vs measured speedup)%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s | %-34s | %19s | %19s\n", "App", "Optimization", "before (p)    (m)", "after (p)    (m)")
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------")
	for _, c := range handOptCases {
		seq := res[r.Spec(c.app, core.Seq).Key()]
		before := res[r.Spec(c.app, c.baseline).Key()].Speedup(seq.Time)
		after := res[r.Spec(c.app, c.opt).Key()].Speedup(seq.Time)
		fmt.Fprintf(w, "%-9s | %-34s | %8.2f %9.2f | %8.2f %9.2f\n",
			c.app, c.note, PaperSpeedup[c.app][c.baseline], before, c.paperTo, after)
	}
	return nil
}

// Interface prints the §2.3 compiler-interface ablation: the improved
// fork-join interface (2(n-1) messages per loop) against the original
// (8(n-1)), measured on Jacobi.
func Interface(w io.Writer, r *Runner) error {
	specs := []exp.Spec{
		r.Spec("Jacobi", core.Seq),
		r.Spec("Jacobi", core.SPFOld),
		r.Spec("Jacobi", core.SPF),
	}
	res, err := r.results(specs)
	if err != nil {
		return err
	}
	seq := res[specs[0].Key()]
	old := res[specs[1].Key()]
	improved := res[specs[2].Key()]
	fmt.Fprintf(w, "Section 2.3 interface ablation (Jacobi)%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-20s | %10s | %10s | %8s\n", "Interface", "msgs", "time (s)", "speedup")
	fmt.Fprintln(w, "--------------------------------------------------------")
	fmt.Fprintf(w, "%-20s | %10d | %10.2f | %8.2f\n", "original (8(n-1))", old.Stats.TotalMsgs(), old.Time.Seconds(), old.Speedup(seq.Time))
	fmt.Fprintf(w, "%-20s | %10d | %10.2f | %8.2f\n", "improved (2(n-1))", improved.Stats.TotalMsgs(), improved.Time.Seconds(), improved.Speedup(seq.Time))
	fmt.Fprintf(w, "paper: the improvement cuts fork-join messages 4x and \"has a significant effect on execution time\"\n")
	return nil
}

// BarrierReduction prints the §8 barrier-merged reduction ablation on
// IGrid-style reductions (extension feature).
func BarrierReduction(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Section 8 extension: reductions through barriers vs locks%s\n", scaleNote(r.Scale))
	fmt.Fprintln(w, "(see BenchmarkSection8BarrierReduce in bench_test.go for the microbenchmark)")
	return nil
}

// All runs every experiment in paper order.
func All(w io.Writer, r *Runner) error {
	steps := []func(io.Writer, *Runner) error{
		Table1, Figure1, Table2, Figure2, Table3, HandOpt, Interface,
	}
	for i, f := range steps {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := f(w, r); err != nil {
			return err
		}
	}
	return nil
}

// Scalability sweeps the processor count for one application and prints
// the speedup curve of every version — the paper's §8 closes by
// anticipating behaviour "when scaling to a large number of processors";
// this experiment extends the evaluation in that direction.
func Scalability(w io.Writer, r *Runner, appName string, procCounts []int) error {
	var specs []exp.Spec
	specs = append(specs, r.Spec(appName, core.Seq))
	for _, p := range procCounts {
		for _, v := range FigureVersions {
			specs = append(specs, r.SpecAt(appName, v, p))
		}
	}
	res, err := r.results(specs)
	if err != nil {
		return err
	}
	seq := res[r.Spec(appName, core.Seq).Key()]
	fmt.Fprintf(w, "Scalability: %s speedups by processor count%s\n", appName, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-6s |", "procs")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %8s |", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "--------------------------------------------------")
	for _, p := range procCounts {
		fmt.Fprintf(w, "%-6d |", p)
		for _, v := range FigureVersions {
			fmt.Fprintf(w, " %8.2f |", res[r.SpecAt(appName, v, p).Key()].Speedup(seq.Time))
		}
		fmt.Fprintln(w)
	}
	return nil
}
