package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/apps/fft3d"
	"repro/internal/apps/igrid"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/mgs"
	"repro/internal/apps/nbf"
	"repro/internal/apps/rbsor"
	"repro/internal/apps/shallow"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proto"
)

// Apps returns the six applications in the paper's order.
func Apps() []core.App {
	return []core.App{
		jacobi.New(), shallow.New(), mgs.New(), fft3d.New(),
		igrid.New(), nbf.New(),
	}
}

// AllApps returns every application: the paper's six plus the kernels
// added through the internal/loopc compiler front end (the paper
// tables iterate Apps; version-level experiments iterate these).
func AllApps() []core.App {
	return append(Apps(), rbsor.New())
}

// AppByName finds an application (including the non-paper kernels).
func AppByName(name string) (core.App, error) {
	for _, a := range AllApps() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown application %q", name)
}

// Scale selects the problem sizes.
type Scale string

const (
	// PaperScale runs Table 1's data sets.
	PaperScale Scale = "paper"
	// MidScale runs reduced sizes that preserve the page-granularity
	// regime (rows/vectors of at least a page) at a fraction of the time.
	MidScale Scale = "mid"
	// SmallScale runs the tiny test sizes.
	SmallScale Scale = "small"
)

// Runner executes and caches application runs.
type Runner struct {
	Procs    int
	Scale    Scale
	Costs    model.Costs
	App      model.AppCosts
	Protocol proto.Name // DSM coherence protocol (empty: homeless LRC)
	cache    map[string]core.Result
}

// NewRunner builds a Runner with the calibrated SP/2 model.
func NewRunner(procs int, scale Scale) *Runner {
	return &Runner{
		Procs: procs,
		Scale: scale,
		Costs: model.SP2(),
		App:   model.DefaultAppCosts(),
		cache: map[string]core.Result{},
	}
}

// Config resolves the run configuration for an application.
func (r *Runner) Config(app core.App, procs int) core.Config {
	var cfg core.Config
	switch r.Scale {
	case SmallScale:
		cfg = app.SmallConfig(procs)
	case MidScale:
		cfg = app.PaperConfig(procs)
		switch app.Name() {
		case "Jacobi":
			cfg.N1, cfg.Iters = 1024, 20
		case "Shallow":
			cfg.N1, cfg.Iters = 512, 10
		case "MGS":
			// MGS must keep the paper's vector-equals-page geometry: at
			// any narrower width two cyclically owned vectors share a page
			// and false sharing swamps the comparison.
			cfg.N1, cfg.Iters = 1024, 1024
		case "3-D FFT":
			cfg.N1, cfg.N2, cfg.N3, cfg.Iters = 64, 64, 32, 3
		case "IGrid":
			cfg.N1, cfg.Iters = 500, 10
		case "NBF":
			cfg.N1, cfg.N2, cfg.N3, cfg.Iters = 8192, 256, 50, 8
		case "RB-SOR":
			cfg.N1, cfg.Iters = 1024, 20
		}
	default:
		cfg = app.PaperConfig(procs)
	}
	cfg.Costs = r.Costs
	cfg.App = r.App
	cfg.Protocol = r.Protocol
	return cfg
}

// Run executes (and caches) one version of an application.
func (r *Runner) Run(app core.App, v core.Version) (core.Result, error) {
	procs := r.Procs
	if v == core.Seq {
		procs = 1
	}
	key := fmt.Sprintf("%s/%s/%d/%s/%s", app.Name(), v, procs, r.Scale, r.Protocol)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := app.Run(v, r.Config(app, procs))
	if err != nil {
		return core.Result{}, fmt.Errorf("%s/%s: %w", app.Name(), v, err)
	}
	r.cache[key] = res
	return res, nil
}

// Speedup runs the version and its sequential baseline.
func (r *Runner) Speedup(app core.App, v core.Version) (float64, error) {
	seq, err := r.Run(app, core.Seq)
	if err != nil {
		return 0, err
	}
	res, err := r.Run(app, v)
	if err != nil {
		return 0, err
	}
	return res.Speedup(seq.Time), nil
}

func scaleNote(s Scale) string {
	if s == PaperScale {
		return ""
	}
	return fmt.Sprintf(" [%s scale: absolute counts are not comparable to the paper's; rankings are]", s)
}

// Table1 prints data-set sizes and sequential times (paper Table 1).
func Table1(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Table 1: Data Set Sizes and Sequential Execution Time%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s | %-28s | %10s | %10s\n", "App", "Problem Size", "paper (s)", "meas (s)")
	fmt.Fprintln(w, "----------------------------------------------------------------------")
	for _, a := range Apps() {
		seq, err := r.Run(a, core.Seq)
		if err != nil {
			return err
		}
		note := ""
		if SeqEstimated[a.Name()] {
			note = "*"
		}
		fmt.Fprintf(w, "%-9s | %-28s | %9.1f%1s | %10.1f\n",
			a.Name(), PaperDataSet[a.Name()], PaperSeqSeconds[a.Name()], note, seq.Time.Seconds())
	}
	fmt.Fprintln(w, "(*) illegible in our source text of the paper; estimated (DESIGN.md)")
	return nil
}

func figure(w io.Writer, r *Runner, title string, apps []string) error {
	fmt.Fprintf(w, "%s%s\n", title, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s |", "App")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %6s(p) %6s(m) |", v, v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------------")
	for _, name := range apps {
		a, err := AppByName(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s |", name)
		for _, v := range FigureVersions {
			sp, err := r.Speedup(a, v)
			if err != nil {
				return err
			}
			paper := PaperSpeedup[name][v]
			if paper == 0 {
				fmt.Fprintf(w, " %9s %6.2f    |", "-", sp)
			} else {
				fmt.Fprintf(w, " %9.2f %6.2f    |", paper, sp)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure1 prints 8-processor speedups for the regular applications.
func Figure1(w io.Writer, r *Runner) error {
	return figure(w, r, "Figure 1: Speedups, regular applications (paper vs measured)", RegularApps)
}

// Figure2 prints 8-processor speedups for the irregular applications.
func Figure2(w io.Writer, r *Runner) error {
	return figure(w, r, "Figure 2: Speedups, irregular applications (paper vs measured)", IrregularApps)
}

func traffic(w io.Writer, r *Runner, title string, apps []string) error {
	fmt.Fprintf(w, "%s%s\n", title, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-5s |", "App", "")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %8s(p) %8s(m) |", v, v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "-----------------------------------------------------------------------------------------------------------")
	for _, name := range apps {
		a, err := AppByName(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s %-5s |", name, "msgs")
		for _, v := range FigureVersions {
			res, err := r.Run(a, v)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %11d %11d |", PaperMsgs[name][v], res.Stats.TotalMsgs())
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-9s %-5s |", "", "KB")
		for _, v := range FigureVersions {
			res, err := r.Run(a, v)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %11d %11d |", PaperKB[name][v], res.Stats.TotalKB())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table2 prints message and data totals for the regular applications.
func Table2(w io.Writer, r *Runner) error {
	return traffic(w, r, "Table 2: Message totals and data totals (KB), regular applications", RegularApps)
}

// Table3 prints message and data totals for the irregular applications.
func Table3(w io.Writer, r *Runner) error {
	return traffic(w, r, "Table 3: Message totals and data totals (KB), irregular applications", IrregularApps)
}

// handOptCase describes one §5 hand-optimization experiment.
type handOptCase struct {
	app      string
	baseline core.Version
	opt      core.Version
	paperTo  float64
	note     string
}

var handOptCases = []handOptCase{
	{"Jacobi", core.SPF, core.SPFOpt, 7.23, "data aggregation (§5.1)"},
	{"Shallow", core.SPF, core.SPFOpt, 5.96, "merged loops + aggregation (§5.2)"},
	{"MGS", core.Tmk, core.TmkOpt, 5.09, "merged sync+data broadcast (§5.3)"},
	{"3-D FFT", core.SPF, core.SPFOpt, 5.05, "data aggregation (§5.4)"},
}

// HandOpt prints the §5 hand-optimization results.
func HandOpt(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Section 5 hand optimizations (paper vs measured speedup)%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s | %-34s | %19s | %19s\n", "App", "Optimization", "before (p)    (m)", "after (p)    (m)")
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------")
	for _, c := range handOptCases {
		a, err := AppByName(c.app)
		if err != nil {
			return err
		}
		before, err := r.Speedup(a, c.baseline)
		if err != nil {
			return err
		}
		after, err := r.Speedup(a, c.opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s | %-34s | %8.2f %9.2f | %8.2f %9.2f\n",
			c.app, c.note, PaperSpeedup[c.app][c.baseline], before, c.paperTo, after)
	}
	return nil
}

// Interface prints the §2.3 compiler-interface ablation: the improved
// fork-join interface (2(n-1) messages per loop) against the original
// (8(n-1)), measured on Jacobi.
func Interface(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Section 2.3 interface ablation (Jacobi)%s\n", scaleNote(r.Scale))
	a, err := AppByName("Jacobi")
	if err != nil {
		return err
	}
	improved, err := r.Run(a, core.SPF)
	if err != nil {
		return err
	}
	old, err := r.Run(a, core.SPFOld)
	if err != nil {
		return err
	}
	seq, err := r.Run(a, core.Seq)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s | %10s | %10s | %8s\n", "Interface", "msgs", "time (s)", "speedup")
	fmt.Fprintln(w, "--------------------------------------------------------")
	fmt.Fprintf(w, "%-20s | %10d | %10.2f | %8.2f\n", "original (8(n-1))", old.Stats.TotalMsgs(), old.Time.Seconds(), old.Speedup(seq.Time))
	fmt.Fprintf(w, "%-20s | %10d | %10.2f | %8.2f\n", "improved (2(n-1))", improved.Stats.TotalMsgs(), improved.Time.Seconds(), improved.Speedup(seq.Time))
	fmt.Fprintf(w, "paper: the improvement cuts fork-join messages 4x and \"has a significant effect on execution time\"\n")
	return nil
}

// BarrierReduction prints the §8 barrier-merged reduction ablation on
// IGrid-style reductions (extension feature).
func BarrierReduction(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Section 8 extension: reductions through barriers vs locks%s\n", scaleNote(r.Scale))
	fmt.Fprintln(w, "(see BenchmarkSection8BarrierReduce in bench_test.go for the microbenchmark)")
	return nil
}

// All runs every experiment in paper order.
func All(w io.Writer, r *Runner) error {
	steps := []func(io.Writer, *Runner) error{
		Table1, Figure1, Table2, Figure2, Table3, HandOpt, Interface,
	}
	for i, f := range steps {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := f(w, r); err != nil {
			return err
		}
	}
	return nil
}

// CachedKeys lists completed runs (for progress reporting).
func (r *Runner) CachedKeys() []string {
	keys := make([]string, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Scalability sweeps the processor count for one application and prints
// the speedup curve of every version — the paper's §8 closes by
// anticipating behaviour "when scaling to a large number of processors";
// this experiment extends the evaluation in that direction.
func Scalability(w io.Writer, r *Runner, appName string, procCounts []int) error {
	a, err := AppByName(appName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Scalability: %s speedups by processor count%s\n", appName, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-6s |", "procs")
	for _, v := range FigureVersions {
		fmt.Fprintf(w, " %8s |", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "--------------------------------------------------")
	for _, p := range procCounts {
		sub := NewRunner(p, r.Scale)
		sub.Costs, sub.App = r.Costs, r.App
		fmt.Fprintf(w, "%-6d |", p)
		for _, v := range FigureVersions {
			sp, err := sub.Speedup(a, v)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.2f |", sp)
		}
		fmt.Fprintln(w)
	}
	return nil
}
