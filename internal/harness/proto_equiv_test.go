package harness

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// TestProtocolEquivalence is the cross-protocol equivalence table: every
// DSM version of every application — including the optimized variants,
// whose push, broadcast and aggregation paths interact with the
// protocol differently — runs under both coherence protocols at 1, 2, 4
// and 8 nodes. The checksums must be bit-identical — the protocol may
// change only virtual time, message counts and byte volumes — and, for
// the representative version, the three home-placement policies of the
// home-based protocol must also leave the checksum bit-identical (home
// migration moves master copies, never values), and a repeated run must
// reproduce the per-protocol message and byte counts exactly (the
// simulator is deterministic, so any drift is a protocol-state leak).
func TestProtocolEquivalence(t *testing.T) {
	for _, a := range Apps() {
		rep := DSMVersionOf(a)
		for _, v := range DSMVersions(a) {
			for _, procs := range ProtocolProcCounts {
				t.Run(fmt.Sprintf("%s/%s/p%d", a.Name(), v, procs), func(t *testing.T) {
					base := NewRunner(procs, SmallScale)
					first, err := base.RunProtocols(a, v, procs)
					if err != nil {
						t.Fatal(err)
					}
					for _, res := range first[1:] {
						if res.Checksum != first[0].Checksum {
							t.Errorf("checksum under %s = %v, want %v (as under %s)",
								res.Protocol, res.Checksum, first[0].Checksum, first[0].Protocol)
						}
					}
					if v != rep {
						return
					}
					for _, pol := range proto.PolicyNames() {
						res, err := base.policySub(procs, pol).Run(a, v)
						if err != nil {
							t.Fatalf("hlrc/%s: %v", pol, err)
						}
						if res.Checksum != first[0].Checksum {
							t.Errorf("checksum under hlrc/%s = %v, want %v", pol, res.Checksum, first[0].Checksum)
						}
						if procs == 1 && res.Migrations != 0 {
							t.Errorf("single-node run under hlrc/%s migrated %d pages", pol, res.Migrations)
						}
					}
					again, err := base.RunProtocols(a, v, procs)
					if err != nil {
						t.Fatal(err)
					}
					for i, p := range proto.Names() {
						f, g := first[i], again[i]
						if f.Protocol != p || g.Protocol != p {
							t.Fatalf("result order: got %s/%s, want %s", f.Protocol, g.Protocol, p)
						}
						if f.Checksum != g.Checksum || f.Time != g.Time ||
							f.Stats.TotalMsgs() != g.Stats.TotalMsgs() || f.Stats.TotalBytes() != g.Stats.TotalBytes() {
							t.Errorf("%s not repeatable: (checksum %v, time %v, msgs %d, bytes %d) vs (%v, %v, %d, %d)",
								p, f.Checksum, f.Time, f.Stats.TotalMsgs(), f.Stats.TotalBytes(),
								g.Checksum, g.Time, g.Stats.TotalMsgs(), g.Stats.TotalBytes())
						}
					}
				})
			}
		}
	}
}

// TestProtocolEquivalenceCorpus runs the same cross-protocol table over
// a sample of the generated-program corpus: the spf-gen version of each
// sampled program must produce bit-identical checksums under both
// coherence protocols and all three home-placement policies. The
// generated programs mix parity guards, serial interludes and in-place
// multi-writer updates the hand-ported applications never combine —
// the pattern that caught the twin-apply protocol bug (see
// difftest.TestTwinApplyRegression).
func TestProtocolEquivalenceCorpus(t *testing.T) {
	for _, seed := range corpusSampleSeeds(t) {
		a, err := AppByName(fmt.Sprintf("gen-%d", seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range ProtocolProcCounts {
			t.Run(fmt.Sprintf("%s/p%d", a.Name(), procs), func(t *testing.T) {
				base := NewRunner(procs, SmallScale)
				first, err := base.RunProtocols(a, core.SPFGen, procs)
				if err != nil {
					t.Fatal(err)
				}
				for _, res := range first[1:] {
					if res.Checksum != first[0].Checksum {
						t.Errorf("checksum under %s = %v, want %v (as under %s)",
							res.Protocol, res.Checksum, first[0].Checksum, first[0].Protocol)
					}
				}
				for _, pol := range proto.PolicyNames() {
					res, err := base.policySub(procs, pol).Run(a, core.SPFGen)
					if err != nil {
						t.Fatalf("hlrc/%s: %v", pol, err)
					}
					if res.Checksum != first[0].Checksum {
						t.Errorf("checksum under hlrc/%s = %v, want %v", pol, res.Checksum, first[0].Checksum)
					}
					if procs == 1 && res.Migrations != 0 {
						t.Errorf("single-node run under hlrc/%s migrated %d pages", pol, res.Migrations)
					}
				}
			})
		}
	}
}
