package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/stats"
)

// Golden home-policy traffic table: the exact timed-region message and
// byte totals of the representative DSM version under the home-based
// protocol for each home policy, at 4 processors, small scale. At this
// scale MGS packs sixteen cyclic vectors into every page and Jacobi's
// halo pages carry two writers, so the adaptive guards must hold every
// page still (adaptive equals static bit-for-bit) while first-touch
// reassigns pages to their initializing writers. Any policy change that
// silently shifts traffic fails here; deliberate changes regenerate the
// table (run each combination and copy TotalMsgs/TotalBytes).
var policyTrafficGolden = []struct {
	app     string
	version core.Version
	policy  proto.PolicyName
	msgs    int64
	bytes   int64
}{
	{"MGS", core.Version("tmk"), proto.StaticPolicy, 2226, 2460156},
	{"MGS", core.Version("tmk"), proto.FirstTouchPolicy, 1702, 2451652},
	{"MGS", core.Version("tmk"), proto.AdaptivePolicy, 2226, 2460156},
	{"Jacobi", core.Version("tmk"), proto.StaticPolicy, 96, 55680},
	{"Jacobi", core.Version("tmk"), proto.FirstTouchPolicy, 112, 98680},
	{"Jacobi", core.Version("tmk"), proto.AdaptivePolicy, 96, 55680},
}

// TestGoldenTrafficHomePolicies pins the hlrc traffic under every home
// policy, and checks the static rows against the main golden table: the
// policy API must leave the pre-policy protocol untouched.
func TestGoldenTrafficHomePolicies(t *testing.T) {
	r := NewRunner(4, SmallScale)
	for _, g := range policyTrafficGolden {
		a, err := AppByName(g.app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.policySub(4, g.policy).Run(a, g.version)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", g.app, g.version, g.policy, err)
		}
		if res.Stats.TotalMsgs() != g.msgs || res.Stats.TotalBytes() != g.bytes {
			t.Errorf("%s/%s/%s traffic drifted: got %d msgs / %d bytes, golden %d / %d",
				g.app, g.version, g.policy, res.Stats.TotalMsgs(), res.Stats.TotalBytes(), g.msgs, g.bytes)
		}
		if g.policy != proto.StaticPolicy {
			continue
		}
		for _, m := range trafficGolden {
			if m.app == g.app && m.version == g.version && m.protocol == proto.HomeLRC {
				if m.msgs != g.msgs || m.bytes != g.bytes {
					t.Errorf("%s/%s static policy golden (%d/%d) disagrees with main hlrc golden (%d/%d)",
						g.app, g.version, g.msgs, g.bytes, m.msgs, m.bytes)
				}
			}
		}
	}
}

// TestSingleNodeNeverMigrates: at one node every page is self-homed;
// all three policies must produce byte-identical runs with zero
// migration activity.
func TestSingleNodeNeverMigrates(t *testing.T) {
	for _, name := range MigrationApps {
		a, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		v := DSMVersionOf(a)
		r := NewRunner(1, SmallScale)
		static, err := r.policySub(1, proto.StaticPolicy).Run(a, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []proto.PolicyName{proto.FirstTouchPolicy, proto.AdaptivePolicy} {
			res, err := r.policySub(1, pol).Run(a, v)
			if err != nil {
				t.Fatalf("%s/%s %s: %v", name, v, pol, err)
			}
			if res.Migrations != 0 || res.StaleForwards != 0 || res.RedirectedFlushBytes != 0 {
				t.Errorf("%s/%s %s at 1 node: activity (%d, %d, %d), want none",
					name, v, pol, res.Migrations, res.StaleForwards, res.RedirectedFlushBytes)
			}
			if res.Checksum != static.Checksum || res.Time != static.Time ||
				res.Stats.TotalMsgs() != static.Stats.TotalMsgs() ||
				res.Stats.TotalBytes() != static.Stats.TotalBytes() {
				t.Errorf("%s/%s %s at 1 node differs from static: (%v, %v, %d, %d) vs (%v, %v, %d, %d)",
					name, v, pol, res.Checksum, res.Time, res.Stats.TotalMsgs(), res.Stats.TotalBytes(),
					static.Checksum, static.Time, static.Stats.TotalMsgs(), static.Stats.TotalBytes())
			}
		}
	}
}

// TestMigrationExperiment renders the home-policy sweep end to end at
// small scale: the experiment itself verifies checksum equivalence
// across policies and the single-node no-migration invariant for every
// row, so this is the cheap whole-grid regression.
func TestMigrationExperiment(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(8, SmallScale)
	if err := Migration(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range MigrationApps {
		if !strings.Contains(out, name) {
			t.Errorf("migration table is missing %s:\n%s", name, out)
		}
	}
}

// TestAdaptiveReducesMGSFlushTraffic is the ROADMAP's headline
// measurement: at mid scale one MGS vector is one page, every page has
// a single cyclic writer fighting the block-wise static homes, and the
// adaptive policy must recover the bulk of the flush traffic at 8
// nodes. Mid scale takes a few seconds, so -short skips it.
func TestAdaptiveReducesMGSFlushTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale MGS comparison in -short mode")
	}
	a, err := AppByName("MGS")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(8, MidScale)
	static, err := r.policySub(8, proto.StaticPolicy).Run(a, core.Tmk)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := r.policySub(8, proto.AdaptivePolicy).Run(a, core.Tmk)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Checksum != static.Checksum {
		t.Fatalf("adaptive changed the answer: %g != %g", adaptive.Checksum, static.Checksum)
	}
	sf, af := static.Stats.BytesOf(stats.KindDiff), adaptive.Stats.BytesOf(stats.KindDiff)
	if af >= sf/2 {
		t.Errorf("adaptive flush bytes %d not under half of static's %d", af, sf)
	}
	if adaptive.Migrations == 0 {
		t.Errorf("adaptive migrated no pages on mid-scale MGS")
	}
	if adaptive.Time >= static.Time {
		t.Errorf("adaptive time %v not under static's %v", adaptive.Time, static.Time)
	}
}
