package harness

import (
	"io"
	"testing"
)

func TestProtocolsQuick(t *testing.T) {
	r := NewRunner(4, SmallScale)
	if err := Protocols(io.Discard, r); err != nil {
		t.Fatal(err)
	}
}
