package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// Golden traffic table: the exact timed-region message and byte totals
// of every (application, version, protocol) at 4 processors, small
// scale. Message counts and data volumes are the paper's primary
// protocol-behavior observables (Tables 2 and 3), and they fall out of
// the real protocol implementations rather than the cost calibration —
// so any protocol, loopc or runtime change that silently alters traffic
// must fail here loudly, and deliberate changes must regenerate the
// table (run the generator snippet in the test failure's footer).
//
// The contention model never changes the message-passing versions'
// numbers (fixed schedules — it delays their messages but sends
// exactly the same ones) and never changes any answer; the DSM
// runtimes may re-batch a protocol fetch or two when the server's
// interleaving shifts (asserted by
// TestGoldenTrafficContentionInvariant below).

type trafficGold struct {
	app      string
	version  core.Version
	protocol proto.Name
	msgs     int64
	bytes    int64
}

var trafficGolden = []trafficGold{
	{"Jacobi", core.Version("spf"), "lrc", 144, 27776},
	{"Jacobi", core.Version("spf"), "hlrc", 144, 109792},
	{"Jacobi", core.Version("tmk"), "lrc", 96, 13512},
	{"Jacobi", core.Version("tmk"), "hlrc", 96, 55680},
	{"Jacobi", core.Version("xhpf"), "", 72, 8640},
	{"Jacobi", core.Version("pvme"), "", 24, 6912},
	{"Jacobi", core.Version("spf-opt"), "lrc", 144, 27776},
	{"Jacobi", core.Version("spf-opt"), "hlrc", 144, 109792},
	{"Jacobi", core.Version("spf-old"), "lrc", 288, 35360},
	{"Jacobi", core.Version("spf-old"), "hlrc", 288, 314496},
	{"Jacobi", core.Version("tmk-push"), "lrc", 96, 15704},
	{"Jacobi", core.Version("tmk-push"), "hlrc", 96, 55680},
	{"Jacobi", core.Version("spf-gen"), "lrc", 144, 27776},
	{"Jacobi", core.Version("spf-gen"), "hlrc", 144, 109792},
	{"Jacobi", core.Version("xhpf-gen"), "", 72, 8640},
	{"Shallow", core.Version("spf"), "lrc", 432, 496056},
	{"Shallow", core.Version("spf"), "hlrc", 360, 500704},
	{"Shallow", core.Version("tmk"), "lrc", 296, 482696},
	{"Shallow", core.Version("tmk"), "hlrc", 296, 484064},
	{"Shallow", core.Version("xhpf"), "", 184, 34848},
	{"Shallow", core.Version("pvme"), "", 112, 32256},
	{"Shallow", core.Version("spf-opt"), "lrc", 384, 488760},
	{"Shallow", core.Version("spf-opt"), "hlrc", 312, 493408},
	{"MGS", core.Version("spf"), "lrc", 4076, 1913104},
	{"MGS", core.Version("spf"), "hlrc", 2262, 2497680},
	{"MGS", core.Version("tmk"), "lrc", 3942, 1848600},
	{"MGS", core.Version("tmk"), "hlrc", 2226, 2460156},
	{"MGS", core.Version("xhpf"), "", 960, 82944},
	{"MGS", core.Version("pvme"), "", 192, 55296},
	{"MGS", core.Version("tmk-opt"), "lrc", 216, 108960},
	{"MGS", core.Version("tmk-opt"), "hlrc", 444, 242028},
	{"3-D FFT", core.Version("spf"), "lrc", 304, 219072},
	{"3-D FFT", core.Version("spf"), "hlrc", 256, 265536},
	{"3-D FFT", core.Version("tmk"), "lrc", 188, 209272},
	{"3-D FFT", core.Version("tmk"), "hlrc", 164, 232224},
	{"3-D FFT", core.Version("xhpf"), "", 276, 58464},
	{"3-D FFT", core.Version("pvme"), "", 30, 50208},
	{"3-D FFT", core.Version("spf-opt"), "lrc", 256, 217056},
	{"3-D FFT", core.Version("spf-opt"), "hlrc", 208, 263520},
	{"IGrid", core.Version("spf"), "lrc", 227, 21376},
	{"IGrid", core.Version("spf"), "hlrc", 227, 178396},
	{"IGrid", core.Version("tmk"), "lrc", 117, 10248},
	{"IGrid", core.Version("tmk"), "hlrc", 113, 86496},
	{"IGrid", core.Version("xhpf"), "", 108, 212520},
	{"IGrid", core.Version("pvme"), "", 39, 8520},
	{"NBF", core.Version("spf"), "lrc", 528, 287568},
	{"NBF", core.Version("spf"), "hlrc", 264, 427568},
	{"NBF", core.Version("tmk"), "lrc", 432, 231888},
	{"NBF", core.Version("tmk"), "hlrc", 240, 363344},
	{"NBF", core.Version("xhpf"), "", 240, 351936},
	{"NBF", core.Version("pvme"), "", 60, 109440},
	{"RB-SOR", core.Version("spf"), "lrc", 128, 37036},
	{"RB-SOR", core.Version("spf"), "hlrc", 120, 59504},
	{"RB-SOR", core.Version("tmk"), "lrc", 128, 36252},
	{"RB-SOR", core.Version("tmk"), "hlrc", 120, 58800},
	{"RB-SOR", core.Version("xhpf"), "", 96, 15552},
	{"RB-SOR", core.Version("pvme"), "", 48, 13824},
	{"RB-SOR", core.Version("spf-gen"), "lrc", 128, 37036},
	{"RB-SOR", core.Version("spf-gen"), "hlrc", 120, 59504},
	{"RB-SOR", core.Version("xhpf-gen"), "", 96, 15552},
}

// TestGoldenTrafficCoversEveryVersion guards the table itself: every
// (app, version, protocol) combination the harness can run at 4 procs
// must have a golden row, so adding an app or version without pinning
// its traffic fails here.
func TestGoldenTrafficCoversEveryVersion(t *testing.T) {
	have := map[trafficGold]bool{}
	for _, g := range trafficGolden {
		have[trafficGold{app: g.app, version: g.version, protocol: g.protocol}] = true
	}
	for _, a := range AllApps() {
		dsm := map[core.Version]bool{}
		for _, v := range DSMVersions(a) {
			dsm[v] = true
		}
		for _, v := range a.Versions() {
			if v == core.Seq {
				continue
			}
			prots := []proto.Name{""}
			if dsm[v] {
				prots = proto.Names()
			}
			for _, p := range prots {
				if !have[trafficGold{app: a.Name(), version: v, protocol: p}] {
					t.Errorf("no golden traffic row for %s/%s/%s — run the generator in traffic_golden_test.go and add one", a.Name(), v, p)
				}
			}
		}
	}
}

// TestGoldenTraffic pins the exact msgs/bytes of every combination.
func TestGoldenTraffic(t *testing.T) {
	r := NewRunner(4, SmallScale)
	for _, g := range trafficGolden {
		a, err := AppByName(g.app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.sub(4, g.protocol).Run(a, g.version)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", g.app, g.version, g.protocol, err)
		}
		if res.Stats.TotalMsgs() != g.msgs || res.Stats.TotalBytes() != g.bytes {
			t.Errorf("%s/%s/%s traffic drifted: got %d msgs / %d bytes, golden %d / %d\n"+
				"(if the change is deliberate, regenerate: run each combination at 4 procs, "+
				"SmallScale, and copy TotalMsgs/TotalBytes into trafficGolden)",
				g.app, g.version, g.protocol,
				res.Stats.TotalMsgs(), res.Stats.TotalBytes(), g.msgs, g.bytes)
		}
	}
}

// TestGoldenTrafficContentionInvariant re-runs a representative subset
// under the harshest contention point. Message-passing versions have a
// fixed communication schedule, so their traffic must match the golden
// table exactly — queueing delays their messages but never adds, drops
// or resizes them. The DSM runtimes are timing-adaptive (the request
// server's interleaving with the application shifts under contention,
// so the protocol may batch a fetch or two differently); for those the
// answer must still be bit-identical to the uncontended run, and the
// traffic may drift only marginally from golden.
func TestGoldenTrafficContentionInvariant(t *testing.T) {
	r := NewRunner(4, SmallScale)
	for _, g := range trafficGolden {
		switch g.app {
		case "Jacobi", "IGrid", "NBF":
		default:
			continue
		}
		a, err := AppByName(g.app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.ContentionRun(a, g.version, 4, g.protocol, 1)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", g.app, g.version, g.protocol, err)
		}
		base, err := r.sub(4, g.protocol).Run(a, g.version)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checksum != base.Checksum {
			t.Errorf("%s/%s/%s: contention changed the answer: %g != %g",
				g.app, g.version, g.protocol, res.Checksum, base.Checksum)
		}
		if g.protocol == "" {
			// Fixed message-passing schedule: exact.
			if res.Stats.TotalMsgs() != g.msgs || res.Stats.TotalBytes() != g.bytes {
				t.Errorf("%s/%s: contention changed message-passing traffic: got %d msgs / %d bytes, golden %d / %d",
					g.app, g.version, res.Stats.TotalMsgs(), res.Stats.TotalBytes(), g.msgs, g.bytes)
			}
			continue
		}
		// DSM: allow marginal protocol re-batching, nothing more.
		if drift(res.Stats.TotalMsgs(), g.msgs) > 0.05 || drift(res.Stats.TotalBytes(), g.bytes) > 0.05 {
			t.Errorf("%s/%s/%s: contention shifted DSM traffic beyond re-batching: got %d msgs / %d bytes, golden %d / %d",
				g.app, g.version, g.protocol,
				res.Stats.TotalMsgs(), res.Stats.TotalBytes(), g.msgs, g.bytes)
		}
	}
}

// drift returns |a-b| as a fraction of b.
func drift(a, b int64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(b)
}
