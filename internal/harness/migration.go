package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/proto"
	"repro/internal/stats"
)

// The home-policy migration experiment: where a page's master copy
// lives decides where every flushed diff travels, and the ROADMAP's
// adaptive-home-migration item asks exactly how much of MGS's flush
// traffic a dominant-writer policy recovers. The experiment runs the
// hand-coded TreadMarks versions under the home-based protocol with
// each home policy at 1-8 nodes and reports the flush traffic (the
// eager diff flushes only — the bytes home placement can move),
// whole-run migration counts, and the adaptive-vs-static flush delta.
//
// The applications are chosen for their write geometries: MGS's cyclic
// vectors fight the block-wise static homes (at mid scale one vector is
// one page, so adaptive repoints nearly every page to its owner and the
// flush traffic collapses); Jacobi's block rows already match the
// static homes (a good policy must *not* move anything); Shallow's
// thirteen-field layout puts two writers on block-boundary pages (the
// self-write guard must hold them still). First-touch shows the classic
// pathology: process 0 initializes the arrays, touches everything
// first, and captures pages it will never write again.

// MigrationApps are the applications of the home-policy sweep.
var MigrationApps = []string{"MGS", "Jacobi", "Shallow"}

// MigrationProcCounts is the node-count sweep.
var MigrationProcCounts = []int{1, 2, 4, 8}

// MigrationSpecs renders the full (app × procs × policy) grid of the
// experiment under the home-based protocol.
func (r *Runner) MigrationSpecs() []exp.Spec {
	var specs []exp.Spec
	for _, name := range MigrationApps {
		a, err := AppByName(name)
		if err != nil {
			continue
		}
		v := DSMVersionOf(a)
		for _, procs := range MigrationProcCounts {
			for _, pol := range proto.PolicyNames() {
				specs = append(specs, r.policySub(procs, pol).Spec(a.Name(), v))
			}
		}
	}
	return specs
}

// flushBytes is the traffic component home placement moves: the eager
// diff flushes of the home-based protocol.
func flushBytes(res core.Result) int64 { return res.Stats.BytesOf(stats.KindDiff) }

// Migration prints the home-policy sweep. Checksums must be
// bit-identical across policies — placement may change only time and
// traffic — so a divergence is an error, not a table entry; single-node
// runs must never migrate.
func Migration(w io.Writer, r *Runner) error {
	if _, err := r.Sweep(r.MigrationSpecs()); err != nil {
		return err
	}
	fmt.Fprintf(w, "Home-policy migration under hlrc: static vs firsttouch vs adaptive%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-8s %5s |", "App", "procs")
	for _, pol := range proto.PolicyNames() {
		fmt.Fprintf(w, " %11s(t) %7s(flKB) %4s(mig) |", pol, pol, pol)
	}
	fmt.Fprintf(w, " %9s\n", "adpt/stat")
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------------------------------------")
	for _, name := range MigrationApps {
		a, err := AppByName(name)
		if err != nil {
			return err
		}
		v := DSMVersionOf(a)
		for _, procs := range MigrationProcCounts {
			var static, adaptive core.Result
			var base float64
			fmt.Fprintf(w, "%-8s %5d |", name, procs)
			for i, pol := range proto.PolicyNames() {
				res, err := r.policySub(procs, pol).Run(a, v)
				if err != nil {
					return fmt.Errorf("%s/%s procs=%d %s: %w", name, v, procs, pol, err)
				}
				if i == 0 {
					base = res.Checksum
					static = res
				} else if res.Checksum != base {
					return fmt.Errorf("home policy changed the answer: %s/%s procs=%d %s checksum %g != static %g",
						name, v, procs, pol, res.Checksum, base)
				}
				if procs == 1 && res.Migrations != 0 {
					return fmt.Errorf("single-node run migrated pages: %s/%s %s", name, v, pol)
				}
				if pol == proto.AdaptivePolicy {
					adaptive = res
				}
				fmt.Fprintf(w, " %14v %13d %9d |", res.Time, flushBytes(res)/1024, res.Migrations)
			}
			delta := "-"
			if fb := flushBytes(static); fb > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*float64(flushBytes(adaptive)-fb)/float64(fb))
			}
			fmt.Fprintf(w, " %9s\n", delta)
		}
	}
	fmt.Fprintln(w, "(flKB = eager diff-flush traffic; mig = whole-run home migrations; adpt/stat = adaptive flush bytes vs static;")
	fmt.Fprintln(w, " checksums verified bit-identical across policies for every row)")
	return nil
}
