// Package harness regenerates every table and figure of the paper's
// evaluation: Table 1 (data sets and sequential times), Figures 1 and 2
// (8-processor speedups for the regular and irregular applications),
// Tables 2 and 3 (message and data totals), the §5 hand-optimization
// results, and the §2.3 compiler-interface ablation. Each experiment
// prints measured values next to the paper's, so the shape comparison is
// visible at a glance. EXPERIMENTS.md records a full run.
package harness

import "repro/internal/core"

// PaperSpeedup holds Figure 1/2 reference values (8 processors).
var PaperSpeedup = map[string]map[core.Version]float64{
	"Jacobi":  {core.SPF: 6.99, core.Tmk: 7.13, core.XHPF: 7.39, core.PVMe: 7.55, core.SPFOpt: 7.23},
	"Shallow": {core.SPF: 5.71, core.Tmk: 6.21, core.XHPF: 6.60, core.PVMe: 6.77, core.SPFOpt: 5.96},
	"MGS":     {core.SPF: 3.35, core.Tmk: 4.19, core.XHPF: 5.06, core.PVMe: 6.55, core.TmkOpt: 5.09},
	"3-D FFT": {core.SPF: 2.65, core.Tmk: 3.06, core.XHPF: 4.44, core.PVMe: 5.12, core.SPFOpt: 5.05},
	"IGrid":   {core.SPF: 7.54, core.XHPF: 3.85, core.PVMe: 7.88},
	"NBF":     {core.SPF: 5.31, core.Tmk: 5.86, core.XHPF: 3.85, core.PVMe: 6.18},
}

// PaperMsgs holds Table 2/3 message totals.
var PaperMsgs = map[string]map[core.Version]int64{
	"Jacobi":  {core.SPF: 8538, core.Tmk: 8407, core.XHPF: 4207, core.PVMe: 1400},
	"Shallow": {core.SPF: 13034, core.Tmk: 11767, core.XHPF: 7792, core.PVMe: 1985},
	"MGS":     {core.SPF: 57283, core.Tmk: 30457, core.XHPF: 38905, core.PVMe: 7168},
	"3-D FFT": {core.SPF: 52818, core.Tmk: 36477, core.XHPF: 33913, core.PVMe: 1155},
	"IGrid":   {core.SPF: 3806, core.Tmk: 1246, core.XHPF: 34769, core.PVMe: 320},
	"NBF":     {core.SPF: 14836, core.Tmk: 13194, core.XHPF: 45895, core.PVMe: 960},
}

// PaperKB holds Table 2/3 data totals in kilobytes.
var PaperKB = map[string]map[core.Version]int64{
	"Jacobi":  {core.SPF: 989, core.Tmk: 862, core.XHPF: 11458, core.PVMe: 11469},
	"Shallow": {core.SPF: 10814, core.Tmk: 10400, core.XHPF: 18407, core.PVMe: 7328},
	"MGS":     {core.SPF: 59724, core.Tmk: 55681, core.XHPF: 29430, core.PVMe: 29360},
	"3-D FFT": {core.SPF: 103228, core.Tmk: 74107, core.XHPF: 102763, core.PVMe: 73401},
	"IGrid":   {core.SPF: 7374, core.Tmk: 131, core.XHPF: 140001, core.PVMe: 640},
	"NBF":     {core.SPF: 1543, core.Tmk: 228, core.XHPF: 163775, core.PVMe: 31457},
}

// PaperSeqSeconds holds Table 1's sequential times. The Jacobi and
// Shallow rows are illegible in our source scan of the paper; their
// entries are estimates at the same sustained rate (see DESIGN.md) and
// are flagged in the output.
var PaperSeqSeconds = map[string]float64{
	"Jacobi":  78.0, // estimated (illegible in source)
	"Shallow": 90.0, // estimated (illegible in source)
	"MGS":     56.4,
	"3-D FFT": 37.7,
	"IGrid":   42.6,
	"NBF":     63.9,
}

// SeqEstimated flags Table 1 entries not legible in the source text.
var SeqEstimated = map[string]bool{"Jacobi": true, "Shallow": true}

// PaperDataSet describes Table 1's data-set column.
var PaperDataSet = map[string]string{
	"Jacobi":  "2048x2048, 100 iterations",
	"Shallow": "1024x1024, 50 iterations",
	"MGS":     "1024x1024",
	"3-D FFT": "128x128x64, 5 iterations",
	"IGrid":   "500x500, 20 iterations",
	"NBF":     "32K molecules, 20 iterations",
}

// RegularApps and IrregularApps order the applications as the paper does.
var RegularApps = []string{"Jacobi", "Shallow", "MGS", "3-D FFT"}
var IrregularApps = []string{"IGrid", "NBF"}

// FigureVersions orders the bars of Figures 1 and 2.
var FigureVersions = []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe}
