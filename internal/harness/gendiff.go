package harness

import (
	"fmt"
	"io"

	"repro/internal/loopc/difftest"
	"repro/internal/loopc/gen"
)

// The generator-differential experiment: random-but-deterministic loopc
// programs (internal/loopc/gen) run through every backend the compiler
// targets — the sequential interpreter, spf-gen under both protocols
// and all home policies, xhpf-gen — and every checksum is compared
// bitwise against the partition-aware oracle, twice per configuration
// for repeat determinism. The hand-ported applications pin a handful of
// carefully chosen access patterns; the generated programs sweep the
// space between them (parity guards, skewed bands, serial interludes,
// scalar reductions) and have already caught a real protocol bug (see
// difftest.TestTwinApplyRegression).

// GenDiffSeeds are the generator seeds the experiment sweeps.
var GenDiffSeeds = func() []int64 {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}()

// GenDiffProcs are the processor counts of the differential lattice.
var GenDiffProcs = []int{2, 4, 8}

// GenDiff runs the differential lattice over GenDiffSeeds and reports
// one line per program. Any divergence fails the experiment.
func GenDiff(w io.Writer, r *Runner) error {
	opts := difftest.Options{Procs: GenDiffProcs, Repeats: 2, Costs: &r.Costs, App: &r.App}
	fmt.Fprintf(w, "Generator differential: seq vs spf-gen (lrc, hlrc x policies) vs xhpf-gen vs oracle, procs=%v\n", GenDiffProcs)
	fmt.Fprintf(w, "%-8s %4s %6s %6s  %s\n", "program", "n", "nests", "iters", "status")
	fmt.Fprintln(w, "----------------------------------------")
	var failed int
	for _, seed := range GenDiffSeeds {
		ps := gen.Generate(seed)
		divs, err := difftest.Check(ps, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", ps.Name, err)
		}
		status := "ok"
		if len(divs) > 0 {
			status = fmt.Sprintf("DIVERGED (%d)", len(divs))
			failed++
		}
		fmt.Fprintf(w, "%-8s %4d %6d %6d  %s\n", ps.Name, ps.N, len(ps.Nests), ps.Iters, status)
		for _, d := range divs {
			fmt.Fprintf(w, "    %s\n", d)
		}
	}
	if failed > 0 {
		return fmt.Errorf("gendiff: %d of %d generated programs diverged (replay: dsmrun -gen <seed>)", failed, len(GenDiffSeeds))
	}
	return nil
}
