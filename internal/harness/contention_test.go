package harness

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// TestContentionOffMatchesBaseline: a sweep point with the contention
// model disabled must reproduce the plain runner's results bit for bit
// — time, traffic and checksum — with no queueing delay recorded.
func TestContentionOffMatchesBaseline(t *testing.T) {
	r := NewRunner(4, SmallScale)
	cases := []struct {
		app  string
		v    core.Version
		prot proto.Name
	}{
		{"Jacobi", core.Tmk, proto.HomelessLRC},
		{"Jacobi", core.Tmk, proto.HomeLRC},
		{"IGrid", core.XHPF, ""},
		{"NBF", core.PVMe, ""},
	}
	for _, c := range cases {
		a, err := AppByName(c.app)
		if err != nil {
			t.Fatal(err)
		}
		base, err := r.sub(4, c.prot).Run(a, c.v)
		if err != nil {
			t.Fatal(err)
		}
		off, err := r.ContentionRun(a, c.v, 4, c.prot, 0)
		if err != nil {
			t.Fatal(err)
		}
		if off.Time != base.Time || off.Checksum != base.Checksum ||
			off.Stats.TotalMsgs() != base.Stats.TotalMsgs() ||
			off.Stats.TotalBytes() != base.Stats.TotalBytes() {
			t.Errorf("%s/%s/%s: contention-off run diverged: (%v,%g,%d,%d) vs baseline (%v,%g,%d,%d)",
				c.app, c.v, c.prot,
				off.Time, off.Checksum, off.Stats.TotalMsgs(), off.Stats.TotalBytes(),
				base.Time, base.Checksum, base.Stats.TotalMsgs(), base.Stats.TotalBytes())
		}
		if off.QueueTime() != 0 {
			t.Errorf("%s/%s: queueing delay %v recorded with contention off", c.app, c.v, off.QueueTime())
		}
	}
}

// TestContentionSuperLinearOnIrregularBroadcasts encodes the
// experiment's headline: under serial NICs, XHPF's end-of-loop
// broadcast storms on the irregular applications accumulate queueing
// delay super-linearly in the node count (each of n nodes serializes
// n-1 copies through one adapter), while the regular application's
// pairwise halo exchanges — spread over disjoint links — barely queue.
func TestContentionSuperLinearOnIrregularBroadcasts(t *testing.T) {
	r := NewRunner(8, SmallScale)
	const nicOnly = -1
	qd := func(app string, v core.Version, procs int) (float64, float64) {
		a, err := AppByName(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.ContentionRun(a, v, procs, "", nicOnly)
		if err != nil {
			t.Fatal(err)
		}
		return res.QueueTime().Seconds(), res.Time.Seconds()
	}
	for _, app := range []string{"IGrid", "NBF"} {
		q4, _ := qd(app, core.XHPF, 4)
		q8, _ := qd(app, core.XHPF, 8)
		if q4 <= 0 || q8 <= 0 {
			t.Fatalf("%s/xhpf: no queueing delay under serial NICs (q4=%g q8=%g)", app, q4, q8)
		}
		// Linear growth in nodes would double the delay from 4 to 8;
		// demand clearly more than that.
		if q8 < 4*q4 {
			t.Errorf("%s/xhpf queueing delay not super-linear: %gs at 4 nodes -> %gs at 8 nodes (%.1fx)",
				app, q4, q8, q8/q4)
		}
	}
	// Jacobi's queueing-delay share of execution time must sit an order
	// of magnitude below the irregular applications'.
	jq, jt := qd("Jacobi", core.XHPF, 8)
	iq, it := qd("IGrid", core.XHPF, 8)
	if jq/jt*10 > iq/it {
		t.Errorf("Jacobi xhpf queue share %.3f not << IGrid's %.3f", jq/jt, iq/it)
	}
}

// TestContentionExperimentRuns exercises the full table writer (and its
// cross-sweep checksum verification) at small scale.
func TestContentionExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not a -short test")
	}
	r := NewRunner(8, SmallScale)
	if err := Contention(io.Discard, r); err != nil {
		t.Fatal(err)
	}
}
