package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestAppsComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 6 {
		t.Fatalf("have %d applications, want 6", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name()] = true
	}
	for _, want := range append(append([]string{}, RegularApps...), IrregularApps...) {
		if !names[want] {
			t.Errorf("missing application %q", want)
		}
	}
}

func TestPaperTablesCoverEveryAppAndVersion(t *testing.T) {
	for _, name := range append(append([]string{}, RegularApps...), IrregularApps...) {
		for _, v := range FigureVersions {
			if _, ok := PaperMsgs[name][v]; !ok {
				t.Errorf("PaperMsgs missing %s/%s", name, v)
			}
			if _, ok := PaperKB[name][v]; !ok {
				t.Errorf("PaperKB missing %s/%s", name, v)
			}
		}
		if _, ok := PaperSeqSeconds[name]; !ok {
			t.Errorf("PaperSeqSeconds missing %s", name)
		}
	}
}

func TestAppByName(t *testing.T) {
	if _, err := AppByName("Jacobi"); err != nil {
		t.Error(err)
	}
	if _, err := AppByName("NoSuchApp"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(2, SmallScale)
	a, _ := AppByName("Jacobi")
	r1, err := r.Run(a, core.Seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Run(a, core.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time {
		t.Error("cache returned a different result")
	}
	if len(r.CachedKeys()) != 1 {
		t.Errorf("cache has %d keys, want 1", len(r.CachedKeys()))
	}
}

// TestAllExperimentsSmall drives every experiment end to end at the
// small scale, checking the output mentions each application.
func TestAllExperimentsSmall(t *testing.T) {
	r := NewRunner(4, SmallScale)
	var sb strings.Builder
	if err := All(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"Jacobi", "Shallow", "MGS", "3-D FFT", "IGrid", "NBF",
		"Table 1", "Figure 1", "Table 2", "Figure 2", "Table 3", "Section 5", "Section 2.3"} {
		if !strings.Contains(out, name) {
			t.Errorf("experiment output missing %q", name)
		}
	}
}

// TestMidScaleRankingsHold runs the headline shape checks at mid scale:
// message passing ahead on the regular applications, DSM far ahead of
// XHPF on the irregular ones.
func TestMidScaleRankingsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("mid scale takes tens of seconds")
	}
	r := NewRunner(8, MidScale)
	for _, name := range RegularApps {
		a, _ := AppByName(name)
		spf, err := r.Speedup(a, core.SPF)
		if err != nil {
			t.Fatal(err)
		}
		pvme, err := r.Speedup(a, core.PVMe)
		if err != nil {
			t.Fatal(err)
		}
		if pvme <= spf {
			t.Errorf("%s: PVMe %.2f should beat SPF %.2f (regular apps)", name, pvme, spf)
		}
	}
	for _, name := range IrregularApps {
		a, _ := AppByName(name)
		spf, err := r.Speedup(a, core.SPF)
		if err != nil {
			t.Fatal(err)
		}
		xhpf, err := r.Speedup(a, core.XHPF)
		if err != nil {
			t.Fatal(err)
		}
		if spf <= xhpf {
			t.Errorf("%s: SPF %.2f should beat XHPF %.2f (irregular apps)", name, spf, xhpf)
		}
	}
}
