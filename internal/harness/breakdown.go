package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
)

// Breakdown prints the per-node virtual-time attribution of every
// figure version of every application: each run's timed window
// decomposed into compute, page-fault stall, barrier wait, lock wait,
// explicit message wait and contention queueing, as percentages of the
// window. The decomposition is exact (the observability layer asserts
// the components sum to the window), so the table is the reproduction's
// counterpart of the paper's §5/§6 "where does the time go" analysis —
// but measured from the event trace rather than from per-subsystem
// timers. Requires an observing runner (Runner.Observe).
func Breakdown(w io.Writer, r *Runner) error {
	if !r.Engine().Observe {
		return fmt.Errorf("harness: Breakdown needs an observing runner (set Runner.Observe before first use)")
	}
	apps := append(append([]string{}, RegularApps...), IrregularApps...)
	res, err := r.results(r.figureSpecs(apps))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Time attribution: percent of summed node time by category%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-6s | %8s | %7s %7s %7s %7s %7s %7s %7s\n",
		"App", "ver", "time (s)", "compute", "fault", "barrier", "lock", "data", "queue", "other")
	fmt.Fprintln(w, "--------------------------------------------------------------------------------------------")
	for _, name := range apps {
		for _, v := range FigureVersions {
			rr := res[r.Spec(name, v).Key()]
			if rr.Breakdown == nil {
				continue
			}
			bd := obs.Sum(rr.Breakdown)
			pct := func(part int64) float64 {
				if bd.Total == 0 {
					return 0
				}
				return 100 * float64(part) / float64(bd.Total)
			}
			fmt.Fprintf(w, "%-9s %-6s | %8.2f | %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
				name, v, rr.Time.Seconds(), pct(bd.Compute), pct(bd.Fault), pct(bd.Barrier),
				pct(bd.Lock), pct(bd.Data), pct(bd.Queue), pct(bd.Other))
		}
	}
	return nil
}

// BreakdownTable renders one result's per-node breakdown (plus the
// all-node sum) as a fixed-width table; the dsmrun -breakdown flag and
// the experiments CLI share it.
func BreakdownTable(w io.Writer, res core.Result) {
	if res.Breakdown == nil {
		fmt.Fprintln(w, "(no breakdown: run without observability)")
		return
	}
	fmt.Fprintf(w, "%-5s | %12s | %12s %12s %12s %12s %12s %12s %12s\n",
		"node", "total ms", "compute", "fault", "barrier", "lock", "data", "queue", "other")
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------------------------------------------")
	row := func(label string, b obs.NodeBreakdown) {
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		fmt.Fprintf(w, "%-5s | %12.3f | %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
			label, ms(b.Total), ms(b.Compute), ms(b.Fault), ms(b.Barrier),
			ms(b.Lock), ms(b.Data), ms(b.Queue), ms(b.Other))
	}
	for _, b := range res.Breakdown {
		row(fmt.Sprintf("%d", b.Node), b)
	}
	row("sum", obs.Sum(res.Breakdown))
}

// ObservedRun executes one spec on a throwaway observing engine sharing
// the runner's calibration, leaving the runner's own cache (whose
// results have no traces) untouched. Single-run tooling — dsmrun's
// -trace/-breakdown path — uses it.
func ObservedRun(r *Runner, s exp.Spec) (core.Result, error) {
	eng := exp.NewEngine(r.Costs, r.App)
	eng.Workers = 1
	eng.Observe = true
	return eng.Run(s)
}
