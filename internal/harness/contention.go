package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/proto"
)

// The contention experiment: the paper attributes XHPF's collapse on
// the irregular applications to broadcast/gather message storms on the
// SP/2's two-level crossbar. With the serial-NIC contention model on,
// those storms queue on the sending node's outgoing link (broadcast)
// and the root's incoming link (gather) instead of overlapping for
// free, so their cost degrades super-linearly with node count — while
// Jacobi's pairwise halo exchanges, which spread load over disjoint
// links, are barely affected. The experiment sweeps the backplane
// capacity at 1-8 nodes for one regular and both irregular applications
// under both coherence protocols and all three runtimes.

// ContentionApps are the applications of the contention sweep: the
// regular control (halo exchanges) and the two irregular applications
// (broadcast storms).
var ContentionApps = []string{"Jacobi", "IGrid", "NBF"}

// ContentionProcCounts is the node-count sweep.
var ContentionProcCounts = []int{1, 2, 4, 8}

// ContentionSweep lists the swept backplane capacities: 0 is the ideal
// infinite-capacity interconnect (contention off — the pre-contention
// model), -1 enables the serial NICs over an ideal backplane, and a
// positive value additionally bounds the backplane to that many
// concurrent full-rate transfers.
var ContentionSweep = []int{0, -1, 4, 1}

// contentionLabel names one sweep point.
func contentionLabel(ways int) string {
	switch {
	case ways == 0:
		return "ideal"
	case ways < 0:
		return "nic"
	default:
		return fmt.Sprintf("nic+bp%d", ways)
	}
}

// contendedSub derives a runner at the given node count, protocol and
// contention point, overriding whatever contention setting the parent
// runner carries while keeping its other calibrations (and its engine).
func (r *Runner) contendedSub(procs int, p proto.Name, ways int) *Runner {
	nr := r.sub(procs, p)
	nr.Costs = nr.Costs.WithContention(ways)
	return nr
}

// ContentionSpec renders one (app, version, procs, protocol, sweep
// point) run.
func (r *Runner) ContentionSpec(a core.App, v core.Version, procs int, p proto.Name, ways int) exp.Spec {
	return r.contendedSub(procs, p, ways).Spec(a.Name(), v)
}

// ContentionRun executes one (app, version, procs, protocol, sweep
// point) run.
func (r *Runner) ContentionRun(a core.App, v core.Version, procs int, p proto.Name, ways int) (core.Result, error) {
	return r.Engine().Run(r.ContentionSpec(a, v, procs, p, ways))
}

// contentionColumns are the per-row runs of the contention table.
func contentionColumns(v core.Version) []struct {
	col  string
	ver  core.Version
	prot proto.Name
} {
	return []struct {
		col  string
		ver  core.Version
		prot proto.Name
	}{
		{"tmk/lrc", v, proto.HomelessLRC},
		{"tmk/hlrc", v, proto.HomeLRC},
		{"xhpf", core.XHPF, ""},
		{"pvme", core.PVMe, ""},
	}
}

// Contention prints the contention sweep. Per row (app, procs, sweep
// point) it reports virtual time and total queueing delay for the
// hand-coded TreadMarks version under both protocols, XHPF, and PVMe.
// Checksums must not depend on the contention point — queueing delays
// messages but never reorders matching ones — so any divergence from
// the ideal-interconnect run is an error, not a table entry. The full
// grid sweeps through the engine up front.
func Contention(w io.Writer, r *Runner) error {
	var specs []exp.Spec
	for _, name := range ContentionApps {
		a, err := AppByName(name)
		if err != nil {
			return err
		}
		v := DSMVersionOf(a)
		for _, procs := range ContentionProcCounts {
			for _, ways := range ContentionSweep {
				for _, c := range contentionColumns(v) {
					specs = append(specs, r.ContentionSpec(a, c.ver, procs, c.prot, ways))
				}
			}
		}
	}
	if _, err := r.Sweep(specs); err != nil {
		return err
	}
	fmt.Fprintf(w, "Network contention: serial NICs + backplane sweep%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-7s %5s %-8s |", "App", "procs", "switch")
	cols := []string{"tmk/lrc", "tmk/hlrc", "xhpf", "pvme"}
	for _, c := range cols {
		fmt.Fprintf(w, " %10s(t) %8s(qd) |", c, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "--------------------------------------------------------------------------------------------------------------------")
	for _, name := range ContentionApps {
		a, err := AppByName(name)
		if err != nil {
			return err
		}
		v := DSMVersionOf(a)
		for _, procs := range ContentionProcCounts {
			baseline := map[string]float64{}
			for _, ways := range ContentionSweep {
				fmt.Fprintf(w, "%-7s %5d %-8s |", name, procs, contentionLabel(ways))
				for _, c := range contentionColumns(v) {
					res, err := r.ContentionRun(a, c.ver, procs, c.prot, ways)
					if err != nil {
						return fmt.Errorf("%s/%s procs=%d %s: %w", name, c.ver, procs, contentionLabel(ways), err)
					}
					if base, ok := baseline[c.col]; !ok {
						baseline[c.col] = res.Checksum
					} else if res.Checksum != base {
						return fmt.Errorf("contention changed the answer: %s/%s procs=%d %s checksum %g != ideal %g",
							name, c.ver, procs, contentionLabel(ways), res.Checksum, base)
					}
					fmt.Fprintf(w, " %13v %12v |", res.Time, res.QueueTime())
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintln(w, "(qd = queueing delay summed over nodes; checksums verified identical across the sweep for every column)")
	return nil
}
