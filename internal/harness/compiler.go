package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/jacobi"
	"repro/internal/apps/rbsor"
	"repro/internal/core"
	"repro/internal/exp"
)

// The compiler experiment: for every kernel expressed in the
// internal/loopc loop-nest IR, run the hand-coded compiler-model
// versions next to the loopc-generated ones. The generated code must be
// bit-identical in its numerical result (verified here and, across
// protocols and node counts, by TestCompiledEquivalence); the table
// shows that its time, message and byte costs also match the
// hand-written rendition of the same compiler output.

// CompiledApps returns the applications that carry a loopc IR
// description and therefore support the spf-gen and xhpf-gen versions.
func CompiledApps() []core.App {
	return []core.App{jacobi.New(), rbsor.New()}
}

// CompiledPairs lists the hand-vs-generated version pairs.
func CompiledPairs() [][2]core.Version {
	return [][2]core.Version{
		{core.SPF, core.SPFGen},
		{core.XHPF, core.XHPFGen},
	}
}

// Compiler prints the compiled-vs-hand comparison and verifies the
// result equivalence as it goes: a checksum divergence is an error,
// not a table entry. The hand/generated grid sweeps through the engine
// up front.
func Compiler(w io.Writer, r *Runner) error {
	var specs []exp.Spec
	for _, a := range CompiledApps() {
		for _, pair := range CompiledPairs() {
			specs = append(specs, r.Spec(a.Name(), pair[0]), r.Spec(a.Name(), pair[1]))
		}
	}
	res, err := r.results(specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Compiler front end: hand-coded vs loopc-generated versions (%d procs)%s\n",
		r.Procs, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-9s | %13s | %9s | %8s | %s\n", "App", "version", "time", "msgs", "KB", "checksum")
	fmt.Fprintln(w, "-------------------------------------------------------------------------")
	for _, a := range CompiledApps() {
		for _, pair := range CompiledPairs() {
			hand := res[r.Spec(a.Name(), pair[0]).Key()]
			gen := res[r.Spec(a.Name(), pair[1]).Key()]
			if gen.Checksum != hand.Checksum {
				return fmt.Errorf("compiler divergence: %s: %s checksum %g != %s checksum %g",
					a.Name(), pair[1], gen.Checksum, pair[0], hand.Checksum)
			}
			for _, re := range []core.Result{hand, gen} {
				fmt.Fprintf(w, "%-9s %-9s | %13v | %9d | %8d | %g\n",
					a.Name(), re.Version, re.Time, re.Stats.TotalMsgs(), re.Stats.TotalKB(), re.Checksum)
			}
		}
	}
	fmt.Fprintln(w, "(generated checksums verified bit-identical to the hand-coded versions)")
	return nil
}
