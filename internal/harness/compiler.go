package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/jacobi"
	"repro/internal/apps/rbsor"
	"repro/internal/core"
)

// The compiler experiment: for every kernel expressed in the
// internal/loopc loop-nest IR, run the hand-coded compiler-model
// versions next to the loopc-generated ones. The generated code must be
// bit-identical in its numerical result (verified here and, across
// protocols and node counts, by TestCompiledEquivalence); the table
// shows that its time, message and byte costs also match the
// hand-written rendition of the same compiler output.

// CompiledApps returns the applications that carry a loopc IR
// description and therefore support the spf-gen and xhpf-gen versions.
func CompiledApps() []core.App {
	return []core.App{jacobi.New(), rbsor.New()}
}

// CompiledPairs lists the hand-vs-generated version pairs.
func CompiledPairs() [][2]core.Version {
	return [][2]core.Version{
		{core.SPF, core.SPFGen},
		{core.XHPF, core.XHPFGen},
	}
}

// Compiler prints the compiled-vs-hand comparison and verifies the
// result equivalence as it goes: a checksum divergence is an error,
// not a table entry.
func Compiler(w io.Writer, r *Runner) error {
	fmt.Fprintf(w, "Compiler front end: hand-coded vs loopc-generated versions (%d procs)%s\n",
		r.Procs, scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-9s | %13s | %9s | %8s | %s\n", "App", "version", "time", "msgs", "KB", "checksum")
	fmt.Fprintln(w, "-------------------------------------------------------------------------")
	for _, a := range CompiledApps() {
		for _, pair := range CompiledPairs() {
			hand, err := r.Run(a, pair[0])
			if err != nil {
				return err
			}
			gen, err := r.Run(a, pair[1])
			if err != nil {
				return err
			}
			if gen.Checksum != hand.Checksum {
				return fmt.Errorf("compiler divergence: %s: %s checksum %g != %s checksum %g",
					a.Name(), pair[1], gen.Checksum, pair[0], hand.Checksum)
			}
			for _, res := range []core.Result{hand, gen} {
				fmt.Fprintf(w, "%-9s %-9s | %13v | %9d | %8d | %g\n",
					a.Name(), res.Version, res.Time, res.Stats.TotalMsgs(), res.Stats.TotalKB(), res.Checksum)
			}
		}
	}
	fmt.Fprintln(w, "(generated checksums verified bit-identical to the hand-coded versions)")
	return nil
}
