package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/proto"
)

// The protocol-comparison experiment: every application runs under each
// coherence protocol (homeless TreadMarks LRC and home-based LRC) at a
// sweep of node counts. The numerical results must be bit-identical —
// the protocol choice may change only virtual time, message counts and
// byte volumes, which is precisely what the table reports.

// ProtocolProcCounts is the node-count sweep of the protocol experiment.
var ProtocolProcCounts = []int{1, 2, 4, 8}

// DSMVersionOf picks the application's representative DSM version for
// protocol comparisons: the hand-coded TreadMarks version when the
// application has one, otherwise the compiler-generated SPF version.
func DSMVersionOf(a core.App) core.Version {
	for _, v := range a.Versions() {
		if v == core.Tmk {
			return core.Tmk
		}
	}
	return core.SPF
}

// DSMVersions filters an application's versions to those that run on
// the DSM and therefore under a coherence protocol — including the
// optimized and legacy-interface variants, whose push/broadcast/
// aggregation paths interact with the protocol differently than the
// base versions do.
func DSMVersions(a core.App) []core.Version {
	var out []core.Version
	for _, v := range a.Versions() {
		switch v {
		case core.Tmk, core.TmkOpt, core.TmkPush, core.SPF, core.SPFOpt, core.SPFOld, core.SPFGen:
			out = append(out, v)
		}
	}
	return out
}

// sub derives a runner with the same calibration at a different node
// count and protocol. Sub-runners share the parent's engine — the
// result cache is keyed by the full spec, so runs never collide and
// every experiment reuses everything already computed.
func (r *Runner) sub(procs int, p proto.Name) *Runner {
	return &Runner{
		Procs: procs, Scale: r.Scale, Costs: r.Costs, App: r.App,
		Protocol: p, HomePolicy: r.HomePolicy, Workers: r.Workers, eng: r.Engine(),
	}
}

// policySub derives a runner at the given node count and home policy,
// pinned to the home-based protocol (the only one with homes), sharing
// the parent's engine.
func (r *Runner) policySub(procs int, pol proto.PolicyName) *Runner {
	nr := r.sub(procs, proto.HomeLRC)
	nr.HomePolicy = pol
	return nr
}

// ProtocolSpecs renders one (application, version, procs) run under
// every protocol, in proto.Names() order.
func (r *Runner) ProtocolSpecs(a core.App, v core.Version, procs int) []exp.Spec {
	specs := make([]exp.Spec, 0, len(proto.Names()))
	for _, p := range proto.Names() {
		specs = append(specs, r.sub(procs, p).Spec(a.Name(), v))
	}
	return specs
}

// RunProtocols executes one (application, version, procs) run under
// every protocol and returns the results in proto.Names() order.
func (r *Runner) RunProtocols(a core.App, v core.Version, procs int) ([]core.Result, error) {
	out, err := r.Sweep(r.ProtocolSpecs(a, v, procs))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	return out, nil
}

// Protocols prints the protocol-comparison experiment and verifies the
// cross-protocol result equivalence as it goes: a checksum divergence is
// an error, not a table entry. The whole (app × procs × protocol) grid
// is swept through the engine up front, saturating host cores.
func Protocols(w io.Writer, r *Runner) error {
	var specs []exp.Spec
	for _, a := range Apps() {
		for _, procs := range ProtocolProcCounts {
			specs = append(specs, r.ProtocolSpecs(a, DSMVersionOf(a), procs)...)
		}
	}
	if _, err := r.Sweep(specs); err != nil {
		return err
	}
	fmt.Fprintf(w, "Protocol comparison: homeless LRC (lrc) vs home-based LRC (hlrc)%s\n", scaleNote(r.Scale))
	fmt.Fprintf(w, "%-9s %-8s %5s |", "App", "version", "procs")
	for _, p := range proto.Names() {
		fmt.Fprintf(w, " %10s(t) %9s(msg) %7s(KB) |", p, p, p)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "--------------------------------------------------------------------------------------------------")
	for _, a := range Apps() {
		v := DSMVersionOf(a)
		for _, procs := range ProtocolProcCounts {
			results, err := r.RunProtocols(a, v, procs)
			if err != nil {
				return err
			}
			for _, res := range results[1:] {
				if res.Checksum != results[0].Checksum {
					return fmt.Errorf("protocol divergence: %s/%s procs=%d: %s checksum %g != %s checksum %g",
						a.Name(), v, procs, res.Protocol, res.Checksum, results[0].Protocol, results[0].Checksum)
				}
			}
			fmt.Fprintf(w, "%-9s %-8s %5d |", a.Name(), v, procs)
			for _, res := range results {
				fmt.Fprintf(w, " %13v %14d %11d |", res.Time, res.Stats.TotalMsgs(), res.Stats.TotalKB())
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "(checksums verified bit-identical across protocols for every row)")
	return nil
}
