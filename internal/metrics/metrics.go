// Package metrics is the host-side telemetry registry: zero-dependency
// counters, gauges and fixed-bucket histograms behind a Registry with
// deterministic sorted snapshots and a Prometheus text-format
// (exposition 0.0.4) encoder.
//
// Host-side means wall-clock seconds, allocated bytes, cache hits —
// properties of the machine *running* the sweeps. Virtual time, traffic
// and checksums belong to the simulated machine and live in
// internal/stats and internal/obs; nothing in this package may feed
// back into a simulation, and the sweep engines keep their JSON-lines
// output byte-identical whether a registry is attached or not.
//
// Handles follow the internal/obs nil-disabled convention: every method
// on a nil *Registry, *Counter, *Gauge or *Histogram is a no-op, so
// instrumented code threads one optional pointer instead of branching.
//
// Snapshots are deterministic: families sort by name, series by their
// canonical label string, and the text encoder renders from a snapshot,
// so equal registry contents produce equal bytes regardless of
// registration order or scrape timing.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as the exposition format spells them.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one metric dimension. Series of one family differ only in
// label values (e.g. the per-application host-time histograms).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds metric families. The zero value is not usable; build
// one with NewRegistry. A nil *Registry disables every operation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: a type, help text, optional
// histogram buckets, and the series (one per label set).
type family struct {
	name    string
	help    string
	typ     string
	uppers  []float64 // histogram upper bounds, strictly increasing, no +Inf
	series  map[string]*series
	ordered []*series // insertion order; snapshot re-sorts
}

// series is one (family, label set) time series. Counters and gauges
// use bits (float64 bits) or fn (callback-backed); histograms use
// counts (per-bucket, last = +Inf overflow), sumBits and the family's
// shared bucket bounds.
type series struct {
	labels  []Label // sorted by key
	bits    atomic.Uint64
	fn      func() float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	uppers  []float64 // histogram bucket upper bounds (family-shared)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for (name, labels), creating it at zero
// on first use. Counters only go up.
type Counter struct{ s *series }

// Gauge returns-by-handle a value that can go up and down.
type Gauge struct{ s *series }

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ s *series }

// Counter registers (or finds) a counter series. A nil registry
// returns a nil handle (whose methods no-op).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.getOrCreate(name, help, TypeCounter, nil, nil, labels)}
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.getOrCreate(name, help, TypeGauge, nil, nil, labels)}
}

// Histogram registers (or finds) a histogram series with the family's
// fixed buckets (upper bounds, strictly increasing; the +Inf overflow
// bucket is implicit). Every series of one family shares one bucket
// layout: a mismatch panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{s: r.getOrCreate(name, help, TypeHistogram, checkBuckets(name, buckets), nil, labels)}
}

// CounterFunc registers a callback-backed counter (read at snapshot
// time). Registering the same (name, labels) twice panics: a callback
// cannot be merged.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("metrics: nil CounterFunc for " + name)
	}
	r.getOrCreate(name, help, TypeCounter, nil, fn, labels)
}

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("metrics: nil GaugeFunc for " + name)
	}
	r.getOrCreate(name, help, TypeGauge, nil, fn, labels)
}

// DeclareHistogram registers a histogram family with no series yet, so
// scrapes show its HELP/TYPE header before the first observation
// (series appear lazily as labeled Histogram calls arrive).
func (r *Registry) DeclareHistogram(name, help string, buckets []float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureFamily(name, help, TypeHistogram, checkBuckets(name, buckets))
}

// ensureFamily finds or creates a family, panicking on an identity
// mismatch (same name, different type/help/buckets): metric names are
// a process-wide vocabulary and a collision is a programming error.
func (r *Registry) ensureFamily(name, help, typ string, uppers []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, uppers: uppers, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("metrics: %s re-registered with different help", name))
	}
	if typ == TypeHistogram && !equalFloats(f.uppers, uppers) {
		panic(fmt.Sprintf("metrics: %s re-registered with different buckets", name))
	}
	return f
}

// getOrCreate resolves the series for (name, labels).
func (r *Registry) getOrCreate(name, help, typ string, uppers []float64, fn func() float64, labels []Label) *series {
	ls := canonLabels(name, labels)
	key := labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensureFamily(name, help, typ, uppers)
	if s, ok := f.series[key]; ok {
		if fn != nil || s.fn != nil {
			panic(fmt.Sprintf("metrics: %s%s already registered (func-backed series cannot be shared)", name, renderLabels(ls)))
		}
		return s
	}
	s := &series{labels: ls, fn: fn}
	if typ == TypeHistogram {
		s.counts = make([]atomic.Uint64, len(f.uppers)+1)
		s.uppers = f.uppers
	}
	f.series[key] = s
	f.ordered = append(f.ordered, s)
	return s
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative or NaN deltas panic: counters
// only go up.
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		panic("metrics: counter decreased")
	}
	addFloat(&c.s.bits, v)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// SetMax raises the gauge to v if v is larger (a monotone
// high-water-mark update, e.g. peak queue depth).
func (g *Gauge) SetMax(v float64) {
	if g == nil || g.s == nil {
		return
	}
	for {
		old := g.s.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Observe records one sample. The bucket layout is fixed at
// registration; out-of-range samples land in the +Inf overflow bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	i := sort.SearchFloat64s(h.s.uppers, v) // smallest i with uppers[i] >= v: the le bucket
	h.s.counts[i].Add(1)
	addFloat(&h.s.sumBits, v)
}

// Count returns the total number of observations (summed over buckets,
// so a concurrent scrape always sees count == the +Inf bucket).
func (h *Histogram) Count() uint64 {
	if h == nil || h.s == nil {
		return 0
	}
	var n uint64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil {
		return 0
	}
	return math.Float64frombits(h.s.sumBits.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// checkBuckets validates histogram upper bounds: non-empty, finite,
// strictly increasing. A trailing +Inf is stripped (it is implicit).
func checkBuckets(name string, buckets []float64) []float64 {
	if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], 1) {
		buckets = buckets[:n-1]
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s has no buckets", name))
	}
	out := make([]float64, len(buckets))
	copy(out, buckets)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram %s has non-finite bucket %g", name, b))
		}
		if i > 0 && out[i-1] >= b {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly increasing", name))
		}
	}
	return out
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// canonLabels validates and sorts a label set.
func canonLabels(name string, labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, name))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("metrics: duplicate label %q on %s", l.Key, name))
		}
	}
	return ls
}

// labelKey renders the canonical series key.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// renderLabels formats a label set for the exposition format:
// {k1="v1",k2="v2"} with \, " and newline escaped, empty for none.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]* and
// is not a reserved name.
func validLabelName(s string) bool {
	if s == "" || s == "le" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
