package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Snapshot is a deterministic point-in-time view of a registry:
// families sorted by name, series sorted by canonical label string.
// It is the single source both the text encoder and the JSON
// -metrics-dump render from, so the two stay consistent.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Family is one metric family in a snapshot.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Type   string   `json:"type"`
	Series []Series `json:"series,omitempty"`
}

// Series is one (label set, value) sample. Counters and gauges carry
// Value; histograms carry Hist instead.
type Series struct {
	Labels []Label       `json:"labels,omitempty"`
	Value  float64       `json:"value"`
	Hist   *HistSnapshot `json:"histogram,omitempty"`
}

// HistSnapshot is a histogram series: cumulative buckets in ascending
// le order ending at +Inf, the observation sum, and the total count
// (always equal to the +Inf bucket — the snapshot derives it from the
// buckets, so a concurrent scrape can never show a mismatch).
type HistSnapshot struct {
	Sum     float64  `json:"sum"`
	Count   uint64   `json:"count"`
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket. LE is the rendered upper
// bound ("0.001", "+Inf"), exactly as the text format prints it, so
// the JSON dump round-trips into exposition series names.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot captures the registry. Safe to call concurrently with
// metric updates; each series is read atomically (histogram counts may
// lag each other by in-flight observations, but cumulative buckets and
// count stay internally consistent).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Snapshot the series lists under the registry lock; values are
	// read atomically afterwards.
	ordered := make(map[*family][]*series, len(fams))
	for _, f := range fams {
		ordered[f] = append([]*series(nil), f.ordered...)
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	snap := Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		fs := Family{Name: f.name, Help: f.help, Type: f.typ}
		ser := ordered[f]
		sort.Slice(ser, func(i, j int) bool {
			return labelKey(ser[i].labels) < labelKey(ser[j].labels)
		})
		for _, s := range ser {
			fs.Series = append(fs.Series, snapshotSeries(f, s))
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

func snapshotSeries(f *family, s *series) Series {
	out := Series{Labels: s.labels}
	if len(out.Labels) == 0 {
		out.Labels = nil
	}
	switch f.typ {
	case TypeHistogram:
		h := &HistSnapshot{Sum: math.Float64frombits(s.sumBits.Load())}
		var cum uint64
		for i := range s.counts {
			cum += s.counts[i].Load()
			le := "+Inf"
			if i < len(f.uppers) {
				le = formatFloat(f.uppers[i])
			}
			h.Buckets = append(h.Buckets, Bucket{LE: le, Count: cum})
		}
		h.Count = cum
		out.Hist = h
	default:
		if s.fn != nil {
			out.Value = s.fn()
		} else {
			out.Value = math.Float64frombits(s.bits.Load())
		}
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format, version 0.0.4: # HELP and # TYPE headers followed by one
// sample line per series (histograms expand to _bucket/_sum/_count).
// Output bytes are a pure function of the snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText renders a snapshot in the exposition format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, ser := range f.Series {
			if err := writeSeries(w, f, ser); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f Family, ser Series) error {
	if f.Type != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(ser.Labels), formatFloat(ser.Value))
		return err
	}
	for _, b := range ser.Hist.Buckets {
		ls := append(append([]Label(nil), ser.Labels...), Label{Key: "le", Value: b.LE})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, renderLabelsRaw(ls), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(ser.Labels), formatFloat(ser.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(ser.Labels), ser.Hist.Count)
	return err
}

// renderLabelsRaw renders a label set that may include the reserved
// "le" label (bucket lines only).
func renderLabelsRaw(ls []Label) string { return renderLabels(ls) }

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
