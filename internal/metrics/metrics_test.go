package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives counters, gauges and histograms from many
// goroutines (the -race CI job runs this under the race detector) and
// checks the final values are exact: every increment lands.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "concurrent counter")
	g := r.Gauge("hammer_gauge", "concurrent gauge")
	peak := r.Gauge("hammer_peak", "concurrent high-water mark")
	h := r.Histogram("hammer_seconds", "concurrent histogram", ExpBuckets(0.001, 10, 4))

	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Labeled series resolved concurrently exercise the
			// registry's get-or-create path too.
			lc := r.Counter("hammer_labeled_total", "labeled counter", L("worker", "shared"))
			for i := 0; i < per; i++ {
				c.Inc()
				lc.Add(2)
				g.Add(1)
				g.Dec()
				peak.SetMax(float64(w*per + i))
				h.Observe(rng.Float64() * 10)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %g, want %d", got, workers*per)
	}
	lc := r.Counter("hammer_labeled_total", "labeled counter", L("worker", "shared"))
	if got := lc.Value(); got != 2*workers*per {
		t.Errorf("labeled counter = %g, want %d", got, 2*workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0 (adds and decs balance)", got)
	}
	if want := float64(workers*per - 1); peak.Value() != want {
		t.Errorf("peak = %g, want %g", peak.Value(), want)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Name != "hammer_seconds" {
			continue
		}
		hs := f.Series[0].Hist
		if hs.Count != workers*per {
			t.Errorf("snapshot count = %d, want %d", hs.Count, workers*per)
		}
		last := hs.Buckets[len(hs.Buckets)-1]
		if last.LE != "+Inf" || last.Count != hs.Count {
			t.Errorf("+Inf bucket %+v disagrees with count %d", last, hs.Count)
		}
		for i := 1; i < len(hs.Buckets); i++ {
			if hs.Buckets[i-1].Count > hs.Buckets[i].Count {
				t.Errorf("cumulative buckets decrease at %d", i)
			}
		}
	}
}

// TestSnapshotDeterminism pins the registry's ordering guarantee: two
// registries populated with the same values in different orders render
// byte-identical text, and repeated renders of one registry are stable.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(perm []int) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("b_total", "second counter").Add(7) },
			func() { r.Gauge("a_gauge", "a gauge", L("node", "1")).Set(2.5) },
			func() { r.Gauge("a_gauge", "a gauge", L("node", "0")).Set(1.5) },
			func() {
				r.Histogram("c_seconds", "a histogram", []float64{0.1, 1}, L("app", "Jacobi")).Observe(0.05)
			},
			func() {
				r.Histogram("c_seconds", "a histogram", []float64{0.1, 1}, L("app", "MGS")).Observe(3)
			},
			func() { r.Counter("a_total", "first counter").Inc() },
		}
		for _, i := range perm {
			ops[i]()
		}
		return r
	}
	render := func(r *Registry) string {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	golden := render(build([]int{0, 1, 2, 3, 4, 5}))
	if golden == "" {
		t.Fatal("empty exposition")
	}
	for _, perm := range [][]int{{5, 4, 3, 2, 1, 0}, {3, 1, 5, 0, 4, 2}} {
		if got := render(build(perm)); got != golden {
			t.Errorf("registration order changed the bytes:\nwant:\n%s\ngot:\n%s", golden, got)
		}
	}
	r := build([]int{0, 1, 2, 3, 4, 5})
	if render(r) != render(r) {
		t.Error("repeated renders of one registry differ")
	}
}

// TestExpositionGolden pins the exact text-format bytes of a small
// registry: the encoder is the wire format CI curls and scrapers parse.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "Completed runs.").Add(3)
	r.Gauge("inflight", "In-flight runs.", L("pool", `a"b\c`)).Set(2)
	r.Histogram("host_seconds", "Host wall time.", []float64{0.5, 2}).Observe(0.4)
	r.Histogram("host_seconds", "Host wall time.", []float64{0.5, 2}).Observe(8)
	want := strings.Join([]string{
		`# HELP host_seconds Host wall time.`,
		`# TYPE host_seconds histogram`,
		`host_seconds_bucket{le="0.5"} 1`,
		`host_seconds_bucket{le="2"} 1`,
		`host_seconds_bucket{le="+Inf"} 2`,
		`host_seconds_sum 8.4`,
		`host_seconds_count 2`,
		`# HELP inflight In-flight runs.`,
		`# TYPE inflight gauge`,
		`inflight{pool="a\"b\\c"} 2`,
		`# HELP runs_total Completed runs.`,
		`# TYPE runs_total counter`,
		`runs_total 3`,
		``,
	}, "\n")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("exposition bytes:\nwant:\n%s\ngot:\n%s", want, buf.String())
	}
}

// TestEncoderOutputValidates closes the loop: everything the encoder
// can produce must pass the validator, including func-backed metrics,
// declared-but-empty histogram families and escaped label values.
func TestEncoderOutputValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counter").Add(4)
	r.CounterFunc("b_total", "func counter", func() float64 { return 11 })
	r.GaugeFunc("c_gauge", "func gauge", func() float64 { return -3.25 })
	r.DeclareHistogram("empty_seconds", "declared, no series yet", []float64{1, 2})
	h := r.Histogram("d_seconds", "histogram", ExpBuckets(0.001, 2, 10), L("app", "RB-SOR"), L("version", "tmk"))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	r.Gauge("e_gauge", "escapes", L("path", "a\\b\nc\"d")).Set(1)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("encoder output rejected: %v\n%s", err, buf.String())
	}
	// 1 counter + 1 func counter + 1 func gauge + 1 escaped gauge +
	// histogram (10 buckets + +Inf + sum + count) = 17 samples.
	if n != 17 {
		t.Errorf("validator counted %d samples, want 17", n)
	}
}

// TestValidateTextRejects feeds structurally broken documents to the
// validator; each must fail.
func TestValidateTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"unknown type":        "# TYPE x summary\nx 1\n",
		"TYPE after samples":  "# TYPE a counter\na 1\n# TYPE a counter\n",
		"negative counter":    "# TYPE a counter\na -1\n",
		"duplicate series":    "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
		"bad label syntax":    "# TYPE a gauge\na{x=1} 1\n",
		"bad value":           "# TYPE a gauge\na one\n",
		"histogram no +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n" +
			"h_sum 1\nh_count 1\n",
		"histogram decreasing": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\n" +
			"h_sum 1\nh_count 4\n",
		"histogram missing sum":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"histogram bare sample":   "# TYPE h histogram\nh 3\n",
		"unterminated labels":     "# TYPE a gauge\na{x=\"1\" 1\n",
		"non-integer bucket":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\nh_sum 1\nh_count 1.5\n",
		"suffix on non-histogram": "# TYPE a counter\na 1\na_bucket{le=\"+Inf\"} 1\n",
	}
	for name, doc := range cases {
		if _, err := ValidateText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
}

// TestNilSafety pins the nil-disabled convention: every operation on a
// nil registry or nil handle is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("y", "y")
	h := r.Histogram("z", "z", []float64{1})
	r.CounterFunc("f", "f", func() float64 { return 1 })
	r.GaugeFunc("g", "g", func() float64 { return 1 })
	r.DeclareHistogram("d", "d", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles returned non-zero values")
	}
	if len(r.Snapshot().Families) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
	if err := r.WriteText(io.Discard); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}
}

// TestRegistrationPanics pins the identity rules: mismatched
// re-registration is a programming error, not a silent merge.
func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a_total", "help")
	expectPanic("type mismatch", func() { r.Gauge("a_total", "help") })
	expectPanic("help mismatch", func() { r.Counter("a_total", "other") })
	expectPanic("bad name", func() { r.Counter("bad name", "h") })
	expectPanic("bad label", func() { r.Counter("b_total", "h", L("le", "x")) })
	expectPanic("negative add", func() { r.Counter("c_total", "h").Add(-1) })
	r.Histogram("h_seconds", "h", []float64{1, 2})
	expectPanic("bucket mismatch", func() { r.Histogram("h_seconds", "h", []float64{1, 3}) })
	expectPanic("empty buckets", func() { r.Histogram("h2_seconds", "h", nil) })
	expectPanic("unsorted buckets", func() { r.Histogram("h3_seconds", "h", []float64{2, 1}) })
	r.CounterFunc("fn_total", "h", func() float64 { return 1 })
	expectPanic("func re-registration", func() { r.CounterFunc("fn_total", "h", func() float64 { return 2 }) })
}

// TestSnapshotJSONRoundTrip checks the -metrics-dump shape: the
// snapshot marshals (no +Inf leaks into JSON numbers) and carries the
// bucket bounds as exposition-formatted strings.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", "h", []float64{0.5}).Observe(99)
	r.Counter("c_total", "c").Add(2)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Families) != 2 {
		t.Fatalf("got %d families, want 2", len(back.Families))
	}
	hist := back.Families[1]
	if hist.Name != "h_seconds" || hist.Series[0].Hist == nil {
		t.Fatalf("unexpected family order/shape: %+v", back)
	}
	buckets := hist.Series[0].Hist.Buckets
	if buckets[len(buckets)-1].LE != "+Inf" || buckets[len(buckets)-1].Count != 1 {
		t.Errorf("bad +Inf bucket: %+v", buckets)
	}
}

// TestHTTPHandler serves a scrape over HTTP and validates it.
func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_total", "served").Add(1)
	srv := httptest.NewServer(NewMux(r, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateText(bytes.NewReader(body)); err != nil {
		t.Errorf("scrape invalid: %v", err)
	}
	if !bytes.Contains(body, []byte("http_total 1")) {
		t.Errorf("scrape missing sample:\n%s", body)
	}
	// pprof index must be mounted too.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Errorf("pprof index status %d", pp.StatusCode)
	}
}

// TestBucketSearch pins le semantics: a sample equal to an upper bound
// lands in that bucket (le is inclusive).
func TestBucketSearch(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(1.5)
	h.Observe(math.Inf(1) - 1e308) // finite huge -> +Inf bucket
	snap := r.Snapshot()
	bk := snap.Families[0].Series[0].Hist.Buckets
	if bk[0].Count != 1 || bk[1].Count != 2 || bk[2].Count != 3 {
		t.Errorf("bucket placement wrong: %+v", bk)
	}
}
