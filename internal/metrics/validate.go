package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateText structurally checks a Prometheus text-format (0.0.4)
// document — the check `sweeplint -metrics` applies to a live /metrics
// scrape. It returns the number of sample lines on success.
//
// Checked: every sample belongs to a family declared by a preceding
// # TYPE line with a known type; names and label syntax are well
// formed; values parse; no series appears twice; counter samples are
// non-negative; and every histogram series carries ascending cumulative
// _bucket counts ending at le="+Inf", a _sum, and a _count equal to its
// +Inf bucket.
func ValidateText(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	v := &textValidator{
		types:  map[string]string{},
		seen:   map[string]bool{},
		hists:  map[string]*histCheck{},
		sealed: map[string]bool{},
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := v.line(line); err != nil {
			return 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if err := v.finish(); err != nil {
		return 0, err
	}
	return v.samples, nil
}

// histCheck accumulates one histogram series (family + labels sans le).
type histCheck struct {
	name    string
	buckets []histBucket
	sum     bool
	count   bool
	countV  uint64
}

type histBucket struct {
	le    float64
	count uint64
}

type textValidator struct {
	types   map[string]string // family -> declared type
	seen    map[string]bool   // exact series (name + labels) seen
	hists   map[string]*histCheck
	sealed  map[string]bool // family -> samples started (TYPE must precede)
	samples int
}

func (v *textValidator) line(line string) error {
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *textValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if v.sealed[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		v.types[name] = typ
	}
	return nil
}

// familyOf resolves a sample name to its declared family, peeling the
// histogram suffixes.
func (v *textValidator) familyOf(name string) (family, suffix string, typ string, err error) {
	if t, ok := v.types[name]; ok {
		if t == TypeHistogram {
			return "", "", "", fmt.Errorf("histogram %s sampled without _bucket/_sum/_count suffix", name)
		}
		return name, "", t, nil
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := v.types[base]; ok {
				if t != TypeHistogram {
					return "", "", "", fmt.Errorf("%s sample for non-histogram family %s", name, base)
				}
				return base, suf, t, nil
			}
		}
	}
	return "", "", "", fmt.Errorf("sample %s has no preceding # TYPE", name)
}

func (v *textValidator) sample(line string) error {
	name, labels, value, err := parseSample(line)
	if err != nil {
		return err
	}
	fam, suffix, typ, err := v.familyOf(name)
	if err != nil {
		return err
	}
	v.sealed[fam] = true
	v.samples++

	seriesKey := name + "{" + strings.Join(labels, ",") + "}"
	if v.seen[seriesKey] {
		return fmt.Errorf("duplicate series %s", seriesKey)
	}
	v.seen[seriesKey] = true

	if typ == TypeCounter && (value < 0 || math.IsNaN(value)) {
		return fmt.Errorf("counter %s has invalid value %g", name, value)
	}
	if typ != TypeHistogram {
		return nil
	}

	// Histogram bookkeeping: group by family + labels without le.
	var le string
	rest := make([]string, 0, len(labels))
	for _, l := range labels {
		if after, ok := strings.CutPrefix(l, `le="`); ok && suffix == "_bucket" {
			le = strings.TrimSuffix(after, `"`)
			continue
		}
		rest = append(rest, l)
	}
	hk := fam + "{" + strings.Join(rest, ",") + "}"
	h := v.hists[hk]
	if h == nil {
		h = &histCheck{name: hk}
		v.hists[hk] = h
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("bucket of %s has no le label", fam)
		}
		bound, err := parseLE(le)
		if err != nil {
			return fmt.Errorf("bucket of %s: %v", fam, err)
		}
		if value < 0 || value != math.Trunc(value) {
			return fmt.Errorf("bucket count %g of %s is not a non-negative integer", value, fam)
		}
		h.buckets = append(h.buckets, histBucket{le: bound, count: uint64(value)})
	case "_sum":
		h.sum = true
	case "_count":
		if value < 0 || value != math.Trunc(value) {
			return fmt.Errorf("count %g of %s is not a non-negative integer", value, fam)
		}
		h.count, h.countV = true, uint64(value)
	}
	return nil
}

// finish applies the whole-series histogram checks.
func (v *textValidator) finish() error {
	for _, h := range v.hists {
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %s has no buckets", h.name)
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s does not end at le=\"+Inf\"", h.name)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i-1].le >= h.buckets[i].le {
				return fmt.Errorf("histogram %s bucket bounds not increasing", h.name)
			}
			if h.buckets[i-1].count > h.buckets[i].count {
				return fmt.Errorf("histogram %s cumulative counts decrease", h.name)
			}
		}
		if !h.sum {
			return fmt.Errorf("histogram %s has no _sum", h.name)
		}
		if !h.count {
			return fmt.Errorf("histogram %s has no _count", h.name)
		}
		if h.countV != last.count {
			return fmt.Errorf("histogram %s _count %d != +Inf bucket %d", h.name, h.countV, last.count)
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return f, nil
}

// parseSample splits a sample line into name, raw label tokens
// (`key="value"` with escapes intact) and the value. A trailing
// timestamp (allowed by the format, never emitted by this package) is
// accepted and ignored.
func parseSample(line string) (name string, labels []string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes a {k="v",...} block, returning the raw
// `k="v"` tokens and the remainder of the line.
func parseLabels(s string) (labels []string, rest string, err error) {
	s = s[1:] // consume '{'
	for {
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if key != "le" && !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if len(s) <= eq+1 || s[eq+1] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		// Scan the quoted value honoring escapes.
		j := eq + 2
		for j < len(s) {
			if s[j] == '\\' {
				if j+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[j+1] {
				case '\\', '"', 'n':
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[j+1], key)
				}
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return nil, "", fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, s[:j+1])
		s = s[j+1:]
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}
