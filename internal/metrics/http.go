package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in the text exposition format. A nil
// registry serves an empty document (still a valid scrape).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w) //nolint:errcheck // client went away; nothing to do
	})
}

// NewMux builds the telemetry endpoint surface: /metrics (Prometheus
// text) and /debug/pprof/* (the runtime profiles, mounted explicitly so
// the process never depends on http.DefaultServeMux). Extra handlers
// (e.g. a /progress JSON snapshot) are mounted at their given paths.
func NewMux(r *Registry, extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range extra {
		mux.Handle(path, h)
	}
	return mux
}

// StartServer binds addr and serves h in a background goroutine,
// returning the server and the concrete bound address (useful with
// ":0"). The caller owns shutdown; CLI processes simply exit.
func StartServer(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // ends when the process exits
	return srv, ln.Addr().String(), nil
}
