package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/store"
)

// Engine executes specs against one machine calibration, fanning
// independent simulations out across host cores behind a shared,
// concurrency-safe result cache. Each simulated run is internally
// deterministic (virtual time, one sim process at a time) and shares
// no mutable state with other runs, so host-level parallelism cannot
// perturb results: a sweep's output is bit-identical at any worker
// count.
type Engine struct {
	// Costs is the interconnect/protocol calibration. Its contention
	// and FIFO knobs are overridden per spec (Spec.Contention,
	// Spec.FIFO), so the identity of a run is the spec alone.
	Costs model.Costs
	// App is the per-application compute calibration.
	App model.AppCosts
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// JoinSpeedup joins every non-seq record the engine emits with its
	// sequential baseline (run and cached like any other spec), so the
	// JSON-lines stream carries seq_ns/seq_seconds/speedup and plots
	// need no post-join.
	JoinSpeedup bool
	// Observe gives every run its own obs.Trace, attaching the per-node
	// time breakdown (and the trace itself) to each core.Result and the
	// bd_* fields to each record. Off by default: observability never
	// changes virtual times or traffic, but the default keeps sweep
	// output byte-identical with earlier releases.
	Observe bool
	// Lookup resolves application names; nil means the built-in
	// registry (AppByName).
	Lookup func(name string) (core.App, error)

	// Metrics, when non-nil, exposes the engine's host-side telemetry
	// on that registry: func-backed counters/gauges over the always-on
	// HostStats atomics plus per-(app, version) host-time and
	// alloc-volume histograms (see telemetry.go). One registry serves
	// one engine — a second engine registering on the same registry
	// panics on the duplicate func families. Telemetry is strictly
	// host-side: virtual times, traffic and sweep output bytes are
	// identical with or without it.
	Metrics *metrics.Registry
	// OnRunDone, when non-nil, is called once per executed run (cache
	// misses only, after the result is final) with the spec, the host
	// wall time, and the run error. Called from worker goroutines; the
	// callback must be concurrency-safe. Progress.RunDone fits here.
	OnRunDone func(s Spec, hostNS int64, err error)

	// Store, when non-nil, is the persistent record cache underneath
	// the in-memory result cache: the record paths (Record, Stream,
	// StreamWith) serve a stored spec byte-identically without running
	// the simulation, and every successful execution writes its record
	// back. The Result paths (Run, Sweep) always execute — a Record
	// does not carry enough to rebuild a core.Result — but still write
	// back, so harness runs warm the store too. Set it before the first
	// run and do not change it after.
	Store *store.Store
	// OnStoreHit, when non-nil, is called once per spec served from
	// Store (record paths only). Called from worker goroutines; must be
	// concurrency-safe. Progress.StoreHit fits here.
	OnStoreHit func(s Spec)

	mu    sync.Mutex
	cache map[string]*entry

	// recMu/recCache single-flight the record paths the way mu/cache
	// single-flight Run: at most one store lookup (and, on a miss, one
	// run + write-back) per key, everyone else waits for its record.
	recMu    sync.Mutex
	recCache map[string]*recEntry

	host          hostStats
	telemetryOnce sync.Once
}

// entry is one cached (possibly in-flight) run. done closes when res,
// err and hostNS are final.
type entry struct {
	done   chan struct{}
	res    core.Result
	err    error
	hostNS int64
}

// recEntry is one cached (possibly in-flight) record. done closes when
// rec is final.
type recEntry struct {
	done chan struct{}
	rec  Record
}

// New builds an engine with the calibrated SP/2 model.
func New() *Engine {
	return NewEngine(model.SP2(), model.DefaultAppCosts())
}

// NewEngine builds an engine with an explicit calibration.
func NewEngine(costs model.Costs, app model.AppCosts) *Engine {
	return &Engine{Costs: costs, App: app}
}

// Config resolves the concrete run configuration for a spec: the
// application's sizing for (scale, procs) plus the engine calibration
// with the spec's contention and delivery-order knobs applied.
func (e *Engine) Config(a core.App, s Spec) core.Config {
	cfg := a.Config(s.Scale, s.Procs)
	cfg.Costs = e.Costs.WithContention(s.Contention).WithFIFOPairs(s.FIFO)
	cfg.App = e.App
	cfg.Protocol = s.Protocol
	cfg.HomePolicy = s.HomePolicy
	return cfg
}

// Run executes one spec, deduplicating concurrent and repeated
// requests: the first caller for a key runs the simulation, everyone
// else waits for (or immediately receives) its result.
func (e *Engine) Run(s Spec) (core.Result, error) {
	e.telemetryInit()
	key := s.Key()
	e.mu.Lock()
	if e.cache == nil {
		e.cache = map[string]*entry{}
	}
	en, ok := e.cache[key]
	if !ok {
		en = &entry{done: make(chan struct{})}
		e.cache[key] = en
		e.mu.Unlock()
		e.host.runsStarted.Add(1)
		e.host.inflight.Add(1)
		alloc0 := heapAllocBytes()
		start := time.Now()
		en.res, en.err = e.execute(s)
		en.hostNS = time.Since(start).Nanoseconds()
		allocDelta := heapAllocBytes() - alloc0
		e.host.inflight.Add(-1)
		e.host.runsCompleted.Add(1)
		e.observeRun(s, en.hostNS, allocDelta)
		close(en.done)
		e.writeBack(s, en.res, en.err)
		if f := e.OnRunDone; f != nil {
			f(s, en.hostNS, en.err)
		}
		return en.res, en.err
	}
	e.mu.Unlock()
	// Classify the duplicate: a closed done channel is a plain cache
	// hit; an open one means we latched onto an in-flight run.
	select {
	case <-en.done:
		e.host.cacheHits.Add(1)
	default:
		e.host.cacheWaits.Add(1)
		<-en.done
	}
	return en.res, en.err
}

// HostRunNanos returns the host wall time of the spec's execution, or
// 0 if the spec has not finished running on this engine. Informational
// only — host time is machine- and load-dependent, never a gated
// result field.
func (e *Engine) HostRunNanos(s Spec) int64 {
	e.mu.Lock()
	en := e.cache[s.Key()]
	e.mu.Unlock()
	if en == nil {
		return 0
	}
	select {
	case <-en.done:
		return en.hostNS
	default:
		return 0
	}
}

// writeBack persists one successful execution's record. Error records
// are never stored: a deterministic failure re-executes (and fails
// identically) on every run, so storing it buys nothing and a
// transient failure must not become permanent. Store errors are
// deliberately swallowed — the store is an accelerator, never a
// correctness dependency; its counters record the failure.
func (e *Engine) writeBack(s Spec, res core.Result, err error) {
	st := e.Store
	if st == nil || err != nil {
		return
	}
	b, merr := json.Marshal(RecordOf(s, res, nil))
	if merr != nil {
		return
	}
	st.Put(e.storeKey(s), b) //nolint:errcheck // best-effort persistence
}

// recordFor returns the record for one spec, single-flighted per key:
// served from the persistent store when possible, executed (and
// written back) otherwise. It never joins the sequential baseline —
// Record layers that on top.
func (e *Engine) recordFor(s Spec) Record {
	e.telemetryInit()
	key := s.Key()
	e.recMu.Lock()
	if e.recCache == nil {
		e.recCache = map[string]*recEntry{}
	}
	en, ok := e.recCache[key]
	if !ok {
		en = &recEntry{done: make(chan struct{})}
		e.recCache[key] = en
		e.recMu.Unlock()
		en.rec = e.computeRecord(s)
		close(en.done)
		return en.rec
	}
	e.recMu.Unlock()
	<-en.done
	return en.rec
}

// computeRecord resolves one record: persistent store first, then a
// real run. A stored entry that fails validation (corrupt, tampered,
// schema drift) is treated as a miss and recomputed; the write-back
// then heals the store.
func (e *Engine) computeRecord(s Spec) Record {
	if st := e.Store; st != nil {
		if b, ok := st.Get(e.storeKey(s)); ok {
			if rec, err := decodeStored(b, s); err == nil {
				e.host.storeHits.Add(1)
				if f := e.OnStoreHit; f != nil {
					f(s)
				}
				return rec
			}
		}
	}
	res, err := e.Run(s)
	return RecordOf(s, res, err)
}

// execute performs the simulation for one spec (no caching).
func (e *Engine) execute(s Spec) (core.Result, error) {
	if err := s.Validate(); err != nil {
		return core.Result{}, err
	}
	lookup := e.Lookup
	if lookup == nil {
		lookup = AppByName
	}
	a, err := lookup(s.App)
	if err != nil {
		return core.Result{}, err
	}
	cfg := e.Config(a, s)
	if e.Observe {
		// Per run, not per engine: the trace buffer is single-run state
		// and concurrent sweep workers must not share one.
		cfg.Costs.Trace = obs.New()
	}
	res, err := a.Run(s.Version, cfg)
	if err != nil {
		return core.Result{}, fmt.Errorf("%s/%s: %w", s.App, s.Version, err)
	}
	return res, nil
}

// CachedKeys lists completed or in-flight run keys in sorted order.
func (e *Engine) CachedKeys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.cache))
	for k := range e.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// workers resolves the pool width.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// prefetch warms the cache for every spec using the worker pool,
// resolving each through run (nil means Engine.Run; the record paths
// pass recordFor so store hits skip the simulation). It returns when
// all specs have completed (or failed). A non-nil cancel flag stops
// new runs from starting (in-flight runs still finish).
func (e *Engine) prefetch(specs []Spec, cancel *atomic.Bool, run func(Spec)) {
	if run == nil {
		run = func(s Spec) { e.Run(s) } //nolint:errcheck // errors surface on the ordered pass
	}
	canceled := func() bool { return cancel != nil && cancel.Load() }
	unique := make([]Spec, 0, len(specs))
	seen := map[string]bool{}
	for _, s := range specs {
		if k := s.Key(); !seen[k] {
			seen[k] = true
			unique = append(unique, s)
		}
	}
	w := e.workers()
	if w > len(unique) {
		w = len(unique)
	}
	if w <= 1 {
		for _, s := range unique {
			if canceled() {
				return
			}
			busy := time.Now()
			run(s)
			e.host.workerBusyNS.Add(time.Since(busy).Nanoseconds())
		}
		return
	}
	jobs := make(chan Spec)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idle := time.Now()
			for s := range jobs {
				e.host.workerIdleNS.Add(time.Since(idle).Nanoseconds())
				busy := time.Now()
				if !canceled() { // else drain without running
					run(s)
				}
				e.host.workerBusyNS.Add(time.Since(busy).Nanoseconds())
				idle = time.Now()
			}
			e.host.workerIdleNS.Add(time.Since(idle).Nanoseconds())
		}()
	}
	for _, s := range unique {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
}

// Sweep executes every spec across the worker pool and returns results
// in spec order. The returned error joins every distinct run failure
// (in spec order); results at failed positions are zero.
func (e *Engine) Sweep(specs []Spec) ([]core.Result, error) {
	e.prefetch(specs, nil, nil)
	out := make([]core.Result, len(specs))
	var errs []error
	seenErr := map[string]bool{}
	for i, s := range specs {
		res, err := e.Run(s) // cache hit: prefetch completed every key
		out[i] = res
		if err != nil && !seenErr[s.Key()] {
			seenErr[s.Key()] = true
			errs = append(errs, err)
		}
	}
	return out, errors.Join(errs...)
}

// Record executes one spec and renders it as a JSON-lines record,
// joining the sequential baseline when JoinSpeedup is set. A baseline
// failure surfaces on the record's own error field only if the run
// itself failed; an unjoinable baseline leaves the join fields absent.
func (e *Engine) Record(s Spec) Record {
	rec := e.recordFor(s)
	if e.JoinSpeedup && rec.Error == "" && s.Version != core.Seq {
		if seq := e.recordFor(SeqSpecOf(s)); seq.Error == "" {
			rec.JoinSeqNanos(seq.TimeNanos)
		}
	}
	return rec
}

// StreamStats is the failure accounting of one streamed spec list: how
// many records were emitted and how many of them carried a run error.
// dsmrun's sweep exit status and the fabric coordinator's merge both
// report from it, so local and distributed sweeps fail identically.
type StreamStats struct {
	Records int
	Failed  int
}

// Stream executes every spec across the worker pool and writes one
// JSON-lines record per spec to w, in spec order, emitting each record
// as soon as it and all its predecessors have finished. With
// JoinSpeedup set, every non-seq record is joined with its sequential
// baseline (prefetched alongside the specs). Run failures become error
// records (and are joined into the returned error); a write failure
// aborts the stream, cancelling the runs not yet started.
func (e *Engine) Stream(w io.Writer, specs []Spec) error {
	_, err := e.StreamWith(w, specs, nil)
	return err
}

// StreamWith is Stream with a range-execution hook: decorate, when
// non-nil, is applied to each record immediately before encoding (the
// fabric worker stamps SchemaVersion there), and the returned stats
// count emitted and failed records. The hook must not change spec
// identity fields — the record's bytes are the sweep's contract.
func (e *Engine) StreamWith(w io.Writer, specs []Spec, decorate func(*Record)) (StreamStats, error) {
	run := specs
	if e.JoinSpeedup {
		run = make([]Spec, 0, 2*len(specs))
		run = append(run, specs...)
		for _, s := range specs {
			if s.Version != core.Seq {
				run = append(run, SeqSpecOf(s))
			}
		}
	}
	var cancel atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.prefetch(run, &cancel, func(s Spec) { e.recordFor(s) })
	}()
	enc := json.NewEncoder(w)
	var stats StreamStats
	var errs []error
	seenErr := map[string]bool{}
	for _, s := range specs {
		rec := e.Record(s) // blocks until this spec's result is final
		if rec.Error != "" {
			stats.Failed++
			if !seenErr[s.Key()] {
				seenErr[s.Key()] = true
				errs = append(errs, errors.New(rec.Error))
			}
		}
		if decorate != nil {
			decorate(&rec)
		}
		if werr := enc.Encode(rec); werr != nil {
			cancel.Store(true)
			<-done
			return stats, werr
		}
		stats.Records++
	}
	<-done
	return stats, errors.Join(errs...)
}
