package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRecordSchemaVersion pins the wire-stamp contract: a record with
// no stamp validates (local sweeps never stamp), a record stamped with
// this build's SchemaVersion validates, and any other stamp is
// rejected — mismatched builds must fail validation, never merge.
func TestRecordSchemaVersion(t *testing.T) {
	e := New()
	rec := e.Record(Spec{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale})
	if err := rec.Validate(); err != nil {
		t.Fatalf("unstamped record: %v", err)
	}
	rec.SchemaVersion = SchemaVersion
	if err := rec.Validate(); err != nil {
		t.Errorf("record stamped with this build's version: %v", err)
	}
	rec.SchemaVersion = SchemaVersion + 1
	err := rec.Validate()
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("mismatched stamp validated: %v", err)
	}
}

// TestSchemaStampKeepsSweepBytes: stamping a decoded record and then
// clearing the stamp must reproduce the original line exactly — the
// fabric strips the wire stamp before merging, and byte identity with
// local sweeps depends on the round trip being lossless.
func TestSchemaStampKeepsSweepBytes(t *testing.T) {
	e := New()
	e.Workers = 1
	specs := testGrid()
	var plain bytes.Buffer
	if err := e.Stream(&plain, specs); err != nil {
		t.Fatal(err)
	}

	// Stamp every record (the worker's wire encoding)...
	e2 := New()
	e2.Workers = 1
	var wire bytes.Buffer
	if _, err := e2.StreamWith(&wire, specs, func(rec *Record) {
		rec.SchemaVersion = SchemaVersion
	}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain.Bytes(), wire.Bytes()) {
		t.Fatal("stamped stream should differ from the plain stream")
	}

	// ...then decode, strip, re-encode (the coordinator's merge).
	var merged bytes.Buffer
	enc := json.NewEncoder(&merged)
	for _, line := range bytes.Split(bytes.TrimSpace(wire.Bytes()), []byte("\n")) {
		rec, err := ValidateLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if rec.SchemaVersion != SchemaVersion {
			t.Fatalf("wire record not stamped: %s", line)
		}
		rec.SchemaVersion = 0
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(plain.Bytes(), merged.Bytes()) {
		t.Errorf("strip round trip not lossless:\nplain:\n%s\nmerged:\n%s", plain.String(), merged.String())
	}
}

// TestStreamWithStats checks the shared failure accounting dsmrun and
// the fabric both surface: records and failures are counted, failures
// join into the returned error, and the decorate hook sees every
// record before it is encoded.
func TestStreamWithStats(t *testing.T) {
	e := New()
	e.Workers = 1
	specs := []Spec{
		{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale},
		{App: "Jacobi", Version: "bogus", Procs: 2, Scale: core.SmallScale},
		{App: "MGS", Version: core.Tmk, Procs: 2, Scale: core.SmallScale},
	}
	var decorated int
	var buf bytes.Buffer
	stats, err := e.StreamWith(&buf, specs, func(*Record) { decorated++ })
	if stats.Records != 3 || stats.Failed != 1 {
		t.Errorf("stats = %+v, want 3 records / 1 failed", stats)
	}
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("err = %v, want joined run failure", err)
	}
	if decorated != 3 {
		t.Errorf("decorate saw %d records, want 3", decorated)
	}
	if got := len(bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))); got != 3 {
		t.Errorf("stream has %d lines, want 3", got)
	}
}
