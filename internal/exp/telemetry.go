package exp

import (
	rtmetrics "runtime/metrics"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
)

// HostStats are the engine's host-side execution counters: how much
// real work the sweep machinery did, as opposed to the virtual-time
// results it produced. They are always collected (cheap atomics) and
// never influence run results — a sweep's JSON-lines output is
// byte-identical whether or not anybody reads them.
type HostStats struct {
	// RunsStarted / RunsCompleted count cache misses: specs this
	// engine actually executed (started may briefly exceed completed).
	RunsStarted   int64
	RunsCompleted int64
	// CacheHits counts Run calls answered by a finished cache entry;
	// CacheWaits counts calls that latched onto an in-flight run.
	CacheHits  int64
	CacheWaits int64
	// Inflight is the number of simulations executing right now.
	Inflight int64
	// WorkerBusyNS / WorkerIdleNS split the sweep pool's wall time
	// between running simulations and waiting for work.
	WorkerBusyNS int64
	WorkerIdleNS int64
	// StoreHits counts specs served from the persistent store (record
	// paths; each skipped an entire simulation).
	StoreHits int64
}

// hostStats is the atomic backing store for HostStats.
type hostStats struct {
	runsStarted   atomic.Int64
	runsCompleted atomic.Int64
	cacheHits     atomic.Int64
	cacheWaits    atomic.Int64
	inflight      atomic.Int64
	workerBusyNS  atomic.Int64
	workerIdleNS  atomic.Int64
	storeHits     atomic.Int64
}

// HostStats returns a snapshot of the engine's host-side counters.
func (e *Engine) HostStats() HostStats {
	return HostStats{
		RunsStarted:   e.host.runsStarted.Load(),
		RunsCompleted: e.host.runsCompleted.Load(),
		CacheHits:     e.host.cacheHits.Load(),
		CacheWaits:    e.host.cacheWaits.Load(),
		Inflight:      e.host.inflight.Load(),
		WorkerBusyNS:  e.host.workerBusyNS.Load(),
		WorkerIdleNS:  e.host.workerIdleNS.Load(),
		StoreHits:     e.host.storeHits.Load(),
	}
}

// Metric names and help strings. The engine's registry families are
// func-backed views over the always-on atomics above (no double
// bookkeeping); only the two histograms are registry-native.
const (
	mRunSeconds    = "dsm_engine_run_host_seconds"
	helpRunSeconds = "Host wall time of one simulated run, by app and version."
	mAllocBytes    = "dsm_engine_run_alloc_bytes"
	helpAllocBytes = "Heap bytes allocated process-wide during one run (approximate under concurrency), by app and version."
	mRunsStarted   = "dsm_engine_runs_started_total"
	mRunsCompleted = "dsm_engine_runs_completed_total"
	mCacheHits     = "dsm_engine_cache_hits_total"
	mCacheWaits    = "dsm_engine_cache_wait_total"
	mInflight      = "dsm_engine_runs_inflight"
	mWorkers       = "dsm_engine_workers"
	mWorkerBusy    = "dsm_engine_worker_busy_seconds_total"
	mWorkerIdle    = "dsm_engine_worker_idle_seconds_total"
	mSimDispatches = "dsm_sim_dispatches_total"
	mSimDelivered  = "dsm_sim_messages_delivered_total"
	mSimPeakQueue  = "dsm_sim_peak_event_queue"

	mStoreHits      = "dsm_store_hits_total"
	mStoreMisses    = "dsm_store_misses_total"
	mStorePuts      = "dsm_store_puts_total"
	mStoreEvictions = "dsm_store_evictions_total"
	mStoreCorrupt   = "dsm_store_corrupt_frames_total"
	mStoreBytes     = "dsm_store_bytes"
	mStoreEntries   = "dsm_store_entries"
	mStoreOpenErrs  = "dsm_store_open_errors_total"
)

// Histogram bounds: run host time from 100µs to ~13s, alloc volume
// from 64KiB to ~16GiB. Shared by every (app, version) series of the
// family, so cross-series sums stay meaningful.
var (
	runSecondsBuckets = metrics.ExpBuckets(0.0001, 2, 18)
	allocBuckets      = metrics.ExpBuckets(65536, 4, 10)
)

// telemetryInit registers the engine's metric families on e.Metrics,
// once. Func-backed families close over this engine's atomics, so one
// registry serves exactly one engine (a second registration of the
// same func family panics by design). The sim totals are process-wide.
func (e *Engine) telemetryInit() {
	r := e.Metrics
	if r == nil {
		return
	}
	e.telemetryOnce.Do(func() {
		iv := func(a *atomic.Int64) func() float64 {
			return func() float64 { return float64(a.Load()) }
		}
		secs := func(a *atomic.Int64) func() float64 {
			return func() float64 { return float64(a.Load()) / 1e9 }
		}
		r.CounterFunc(mRunsStarted, "Simulated runs started (cache misses).", iv(&e.host.runsStarted))
		r.CounterFunc(mRunsCompleted, "Simulated runs completed.", iv(&e.host.runsCompleted))
		r.CounterFunc(mCacheHits, "Run requests answered from the finished-result cache.", iv(&e.host.cacheHits))
		r.CounterFunc(mCacheWaits, "Run requests that waited on an in-flight duplicate.", iv(&e.host.cacheWaits))
		r.GaugeFunc(mInflight, "Simulated runs executing right now.", iv(&e.host.inflight))
		r.GaugeFunc(mWorkers, "Resolved sweep worker-pool width.",
			func() float64 { return float64(e.workers()) })
		r.CounterFunc(mWorkerBusy, "Sweep-pool worker time spent running simulations.", secs(&e.host.workerBusyNS))
		r.CounterFunc(mWorkerIdle, "Sweep-pool worker time spent waiting for work.", secs(&e.host.workerIdleNS))
		r.CounterFunc(mSimDispatches, "Simulator scheduler dispatches, process-wide.",
			func() float64 { return float64(sim.HostTotals().Dispatches) })
		r.CounterFunc(mSimDelivered, "Simulated messages delivered, process-wide.",
			func() float64 { return float64(sim.HostTotals().Delivered) })
		r.GaugeFunc(mSimPeakQueue, "Peak simulated-message queue depth over any run, process-wide.",
			func() float64 { return float64(sim.HostTotals().PeakQueue) })
		// Declare the histogram families eagerly so a scrape before the
		// first run already shows them (with no series yet).
		r.DeclareHistogram(mRunSeconds, helpRunSeconds, runSecondsBuckets)
		r.DeclareHistogram(mAllocBytes, helpAllocBytes, allocBuckets)
		if st := e.Store; st != nil {
			r.CounterFunc(mStoreHits, "Persistent-store reads served from disk.",
				func() float64 { return float64(st.Stats().Hits) })
			r.CounterFunc(mStoreMisses, "Persistent-store reads that found no entry.",
				func() float64 { return float64(st.Stats().Misses) })
			r.CounterFunc(mStorePuts, "Records written back to the persistent store.",
				func() float64 { return float64(st.Stats().Puts) })
			r.CounterFunc(mStoreEvictions, "Persistent-store entries evicted by the size cap.",
				func() float64 { return float64(st.Stats().Evictions) })
			r.CounterFunc(mStoreCorrupt, "Persistent-store frames skipped for failed checksums.",
				func() float64 { return float64(st.Stats().CorruptFrames) })
			r.GaugeFunc(mStoreBytes, "Persistent-store segment size in bytes.",
				func() float64 { return float64(st.SizeBytes()) })
			r.GaugeFunc(mStoreEntries, "Live entries in the persistent store.",
				func() float64 { return float64(st.Len()) })
			r.CounterFunc(mStoreOpenErrs, "Failed persistent-store opens, process-wide.",
				func() float64 { return float64(store.OpenErrors()) })
		}
	})
}

// observeRun records one executed run into the registry histograms.
func (e *Engine) observeRun(s Spec, hostNS int64, allocBytes uint64) {
	r := e.Metrics
	if r == nil {
		return
	}
	ls := []metrics.Label{metrics.L("app", s.App), metrics.L("version", string(s.Version))}
	r.Histogram(mRunSeconds, helpRunSeconds, runSecondsBuckets, ls...).Observe(float64(hostNS) / 1e9)
	r.Histogram(mAllocBytes, helpAllocBytes, allocBuckets, ls...).Observe(float64(allocBytes))
}

// heapAllocBytes reads the runtime's cumulative heap-allocation
// counter. Process-wide: concurrent runs inflate each other's deltas,
// which is acceptable for an informational histogram.
func heapAllocBytes() uint64 {
	s := []rtmetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
