package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// Progress aggregates Engine.OnRunDone callbacks into a live sweep
// progress view: a throttled one-line stderr report and a JSON
// snapshot (served at /progress by dsmrun -metrics-addr). Purely
// host-side — it never touches the sweep's JSON-lines output.
type Progress struct {
	// Total is the number of unique runs expected (see UniqueRuns).
	Total int
	// Out, when non-nil, receives a progress line at most every
	// Interval (and one final line when the count reaches Total).
	Out io.Writer
	// Interval throttles Out; zero means one second.
	Interval time.Duration
	// Engine, when non-nil, lets progress lines and snapshots report
	// cache hits and in-flight runs alongside the completion count.
	Engine *Engine

	mu       sync.Mutex
	start    time.Time
	executed int // runs actually simulated (RunDone)
	diskHits int // specs served from the persistent store (StoreHit)
	errs     int
	hostNS   int64
	lastLine time.Time
}

// NewProgress builds a Progress for total unique runs reporting to out
// (nil for snapshot-only use). Hook it up with
// eng.OnRunDone = p.RunDone.
func NewProgress(total int, out io.Writer, eng *Engine) *Progress {
	return &Progress{Total: total, Out: out, Engine: eng}
}

// UniqueRuns returns the number of distinct engine executions a sweep
// over specs will perform: unique keys, plus each non-seq spec's
// sequential baseline when joinSpeedup is set. This is the Total a
// Progress should be built with.
func UniqueRuns(specs []Spec, joinSpeedup bool) int {
	seen := map[string]bool{}
	n := 0
	add := func(s Spec) {
		if k := s.Key(); !seen[k] {
			seen[k] = true
			n++
		}
	}
	for _, s := range specs {
		add(s)
		if joinSpeedup && s.Version != core.Seq {
			add(SeqSpecOf(s))
		}
	}
	return n
}

// AddTotal grows the expected-run count by n. A fabric worker learns
// its workload one lease at a time, so its Progress starts at zero and
// accumulates; safe for concurrent use.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.Total += n
	p.mu.Unlock()
}

// RunDone records one completed run. It matches the Engine.OnRunDone
// signature and is safe for concurrent use; on a nil Progress it is a
// no-op.
func (p *Progress) RunDone(s Spec, hostNS int64, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.executed++
	p.hostNS += hostNS
	if err != nil {
		p.errs++
	}
	p.advanceLocked()
}

// StoreHit records one spec served from the persistent store. It
// matches the Engine.OnStoreHit signature; store hits advance the
// completion count but are excluded from the ETA estimate — a disk
// read says nothing about how long the remaining simulations take.
func (p *Progress) StoreHit(s Spec) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.diskHits++
	p.advanceLocked()
}

// advanceLocked finishes a completion event: starts the clock, emits a
// throttled line, and releases p.mu.
func (p *Progress) advanceLocked() {
	now := time.Now()
	if p.start.IsZero() {
		p.start = now
	}
	line := ""
	interval := p.Interval
	if interval <= 0 {
		interval = time.Second
	}
	if p.Out != nil && (p.executed+p.diskHits == p.Total || now.Sub(p.lastLine) >= interval) {
		p.lastLine = now
		line = p.lineLocked(now)
	}
	p.mu.Unlock()
	if line != "" {
		fmt.Fprintln(p.Out, line)
	}
}

// lineLocked renders the stderr progress line. Caller holds p.mu.
func (p *Progress) lineLocked(now time.Time) string {
	elapsed := now.Sub(p.start)
	completed := p.executed + p.diskHits
	line := fmt.Sprintf("sweep: %d/%d runs", completed, p.Total)
	if p.errs > 0 {
		line += fmt.Sprintf(", %d failed", p.errs)
	}
	mem := int64(0)
	if e := p.Engine; e != nil {
		mem = e.HostStats().CacheHits
	}
	if p.Engine != nil || p.diskHits > 0 {
		line += fmt.Sprintf(", hits %d mem/%d disk", mem, p.diskHits)
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(100*time.Millisecond))
	// The ETA extrapolates from executed runs only: store and cache
	// hits are effectively instant, and averaging them in would
	// collapse the estimate toward zero on a half-warm sweep.
	if p.executed > 0 && completed < p.Total {
		perRun := float64(elapsed) / float64(p.executed)
		eta := time.Duration(perRun * float64(p.Total-completed))
		line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
	}
	return line
}

// ProgressSnapshot is the JSON shape served at /progress. Done counts
// every completed spec (executed plus store hits); Executed and
// DiskHits split it.
type ProgressSnapshot struct {
	Done           int     `json:"done"`
	Executed       int     `json:"executed"`
	DiskHits       int     `json:"disk_hits,omitempty"`
	Total          int     `json:"total"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// RunHostSeconds is the summed host wall time of the completed
	// runs (exceeds ElapsedSeconds when workers overlap).
	RunHostSeconds float64 `json:"run_host_seconds"`
	EtaSeconds     float64 `json:"eta_seconds,omitempty"`
	CacheHits      int64   `json:"cache_hits,omitempty"`
	Inflight       int64   `json:"inflight,omitempty"`
}

// Snapshot returns the current progress state.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	snap := ProgressSnapshot{
		Done:           p.executed + p.diskHits,
		Executed:       p.executed,
		DiskHits:       p.diskHits,
		Total:          p.Total,
		Errors:         p.errs,
		RunHostSeconds: float64(p.hostNS) / 1e9,
	}
	if !p.start.IsZero() {
		snap.ElapsedSeconds = time.Since(p.start).Seconds()
	}
	// ETA from executed runs only; see lineLocked.
	if snap.Executed > 0 && snap.Done < snap.Total {
		snap.EtaSeconds = snap.ElapsedSeconds / float64(snap.Executed) * float64(snap.Total-snap.Done)
	}
	p.mu.Unlock()
	if e := p.Engine; e != nil {
		hs := e.HostStats()
		snap.CacheHits = hs.CacheHits
		snap.Inflight = hs.Inflight
	}
	return snap
}

// ServeHTTP serves the snapshot as JSON.
func (p *Progress) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.Snapshot()) //nolint:errcheck // client went away
}
