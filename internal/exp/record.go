package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/stats"
)

// SchemaVersion identifies this build's Record wire schema. Records
// that cross a process boundary (the internal/fabric coordinator/worker
// protocol) are stamped with it, and Validate rejects any other value:
// a worker built before a schema change must not silently merge its
// records into a newer coordinator's stream, or vice versa. Bump it
// whenever a Record field is added, removed, or changes meaning.
const SchemaVersion = 1

// Record is one JSON-lines measurement: the spec that identifies the
// run plus the timed-region observables. Field order is the wire
// order; encoding/json renders structs deterministically (and sorts
// the queue_kind_ns map keys), so a record's bytes depend only on its
// values — the foundation of the sweep engine's byte-identical output
// guarantee.
type Record struct {
	Spec

	// SchemaVersion stamps records exchanged between fabric coordinator
	// and workers; when set it must equal this build's SchemaVersion.
	// Local sweep output leaves it zero (omitted), and the coordinator
	// strips it before merging, so distributed output stays
	// byte-identical to a single-process sweep.
	SchemaVersion int `json:"schema_version,omitempty"`

	// TimeNanos is the timed-region elapsed virtual time, exact.
	TimeNanos int64 `json:"time_ns"`
	// TimeSeconds is the same duration in float seconds, for plotting.
	TimeSeconds float64 `json:"time_seconds"`
	// Msgs and Bytes are the Table 2/3 traffic totals.
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// Checksum is the run's numerical result.
	Checksum float64 `json:"checksum"`

	// Overhead attribution (DSM versions only), in virtual nanoseconds
	// summed over application processes.
	FaultNanos int64 `json:"fault_ns,omitempty"`
	SyncNanos  int64 `json:"sync_ns,omitempty"`
	WriteNanos int64 `json:"write_ns,omitempty"`

	// Contention queueing delay, total and split by the binding
	// resource; zero (omitted) when the contention model is off.
	QueueNanos          int64 `json:"queue_ns,omitempty"`
	QueuedMsgs          int64 `json:"queued_msgs,omitempty"`
	QueueOutNanos       int64 `json:"queue_out_ns,omitempty"`
	QueueInNanos        int64 `json:"queue_in_ns,omitempty"`
	QueueBackplaneNanos int64 `json:"queue_backplane_ns,omitempty"`
	// QueueKindNanos splits the queueing delay by traffic category
	// (barrier storms vs page fetches vs data shifts).
	QueueKindNanos map[string]int64 `json:"queue_kind_ns,omitempty"`

	// Per-node time attribution summed over nodes (engine option
	// Observe): the timed windows' total virtual time decomposed into
	// compute, page-fault stall, barrier wait, lock wait, explicit
	// message wait, contention queueing and untracked waits. The
	// components sum exactly to bd_total_ns. All absent when
	// observability is off.
	BDTotalNanos   int64 `json:"bd_total_ns,omitempty"`
	BDComputeNanos int64 `json:"bd_compute_ns,omitempty"`
	BDFaultNanos   int64 `json:"bd_fault_ns,omitempty"`
	BDBarrierNanos int64 `json:"bd_barrier_ns,omitempty"`
	BDLockNanos    int64 `json:"bd_lock_ns,omitempty"`
	BDDataNanos    int64 `json:"bd_data_ns,omitempty"`
	BDQueueNanos   int64 `json:"bd_queue_ns,omitempty"`
	BDOtherNanos   int64 `json:"bd_other_ns,omitempty"`

	// Home-policy activity, whole-run sums over nodes (home-based
	// protocol under a migrating policy only; zero and omitted under
	// static homes and the homeless protocol).
	Migrations           int64 `json:"migrations,omitempty"`
	RedirectedFlushBytes int64 `json:"redirected_flush_bytes,omitempty"`
	StaleForwards        int64 `json:"stale_forwards,omitempty"`

	// Sequential-baseline join (engine option JoinSpeedup, or the
	// dsmrun single-run path): the seq baseline's timed-region duration
	// and this run's speedup over it. Absent on seq records and when
	// the join is off.
	SeqNanos   int64   `json:"seq_ns,omitempty"`
	SeqSeconds float64 `json:"seq_seconds,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`

	// HostNanos is the host (real) wall time the run took to execute,
	// informational only: machine- and load-dependent, never gated, and
	// never set by the sweep engine's Stream path (which must stay
	// byte-identical across hosts and worker counts). cmd/benchtraj
	// records it when writing trajectory files.
	HostNanos int64 `json:"host_ns,omitempty"`

	// Error carries a run failure; all measurement fields are zero.
	Error string `json:"error,omitempty"`
}

// RecordOf renders a completed run as a record. On error the record
// carries only the spec and the error string.
func RecordOf(s Spec, res core.Result, err error) Record {
	rec := Record{Spec: s}
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	rec.TimeNanos = int64(res.Time)
	rec.TimeSeconds = res.Time.Seconds()
	rec.Msgs = res.Stats.TotalMsgs()
	rec.Bytes = res.Stats.TotalBytes()
	rec.Checksum = res.Checksum
	rec.FaultNanos = int64(res.FaultTime)
	rec.SyncNanos = int64(res.SyncTime)
	rec.WriteNanos = int64(res.WriteTime)
	rec.QueueNanos = res.Stats.TotalQueueNanos()
	rec.QueuedMsgs = res.Stats.TotalQueuedMsgs()
	rec.QueueOutNanos = res.Stats.QueueResNanosOf(stats.QueueOut)
	rec.QueueInNanos = res.Stats.QueueResNanosOf(stats.QueueIn)
	rec.QueueBackplaneNanos = res.Stats.QueueResNanosOf(stats.QueueBackplane)
	for _, k := range stats.AllKinds() {
		if n := res.Stats.QueueKindNanosOf(k); n != 0 {
			if rec.QueueKindNanos == nil {
				rec.QueueKindNanos = map[string]int64{}
			}
			rec.QueueKindNanos[k.String()] = n
		}
	}
	if res.Breakdown != nil {
		bd := obs.Sum(res.Breakdown)
		rec.BDTotalNanos = bd.Total
		rec.BDComputeNanos = bd.Compute
		rec.BDFaultNanos = bd.Fault
		rec.BDBarrierNanos = bd.Barrier
		rec.BDLockNanos = bd.Lock
		rec.BDDataNanos = bd.Data
		rec.BDQueueNanos = bd.Queue
		rec.BDOtherNanos = bd.Other
	}
	rec.Migrations = res.Migrations
	rec.RedirectedFlushBytes = res.RedirectedFlushBytes
	rec.StaleForwards = res.StaleForwards
	return rec
}

// JoinSeq adds the sequential-baseline join to a record: the baseline's
// duration and the run's speedup over it. No-op on seq and error
// records.
func (r *Record) JoinSeq(seq core.Result) {
	r.JoinSeqNanos(int64(seq.Time))
}

// JoinSeqNanos is JoinSeq from the baseline's raw duration, as carried
// by a baseline record's time_ns field. It reconstructs seq_seconds
// through time.Duration.Seconds so a join computed from a stored
// baseline is byte-identical to one computed from a live run.
func (r *Record) JoinSeqNanos(seqNS int64) {
	if r.Error != "" || r.Version == core.Seq || r.TimeNanos == 0 {
		return
	}
	r.SeqNanos = seqNS
	r.SeqSeconds = time.Duration(seqNS).Seconds()
	r.Speedup = float64(seqNS) / float64(r.TimeNanos)
}

// SeqSpecOf returns the sequential-baseline spec a record of s joins
// with: the same application, scale and machine knobs at one
// processor. The home policy is dropped — at one node every page is
// self-homed and the policies are byte-identical (pinned by
// TestSingleNodeNeverMigrates), so one cached baseline serves a whole
// policy axis.
func SeqSpecOf(s Spec) Spec {
	s.Version = core.Seq
	s.HomePolicy = ""
	return s.Normalize()
}

// Validate checks a record against the JSON-lines schema: a coherent
// spec, non-negative measurements, internally consistent queue splits.
// Error records validate when they carry a spec and an error string.
func (r Record) Validate() error {
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if r.SchemaVersion != 0 && r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("exp: record schema_version %d does not match this build's %d in record %s",
			r.SchemaVersion, SchemaVersion, r.Key())
	}
	if r.Error != "" {
		return nil
	}
	if r.TimeNanos < 0 || r.Msgs < 0 || r.Bytes < 0 {
		return fmt.Errorf("exp: negative measurement in record %s", r.Key())
	}
	if math.Abs(r.TimeSeconds-float64(r.TimeNanos)/1e9) > 1e-6 {
		return fmt.Errorf("exp: time_seconds %g disagrees with time_ns %d", r.TimeSeconds, r.TimeNanos)
	}
	if math.IsNaN(r.Checksum) || math.IsInf(r.Checksum, 0) {
		return fmt.Errorf("exp: non-finite checksum in record %s", r.Key())
	}
	if r.FaultNanos < 0 || r.SyncNanos < 0 || r.WriteNanos < 0 {
		return fmt.Errorf("exp: negative overhead attribution in record %s", r.Key())
	}
	if r.QueueNanos < 0 || r.QueuedMsgs < 0 {
		return fmt.Errorf("exp: negative queue totals in record %s", r.Key())
	}
	if sum := r.QueueOutNanos + r.QueueInNanos + r.QueueBackplaneNanos; sum != r.QueueNanos {
		return fmt.Errorf("exp: queue resource split %d != total %d in record %s", sum, r.QueueNanos, r.Key())
	}
	var kindSum int64
	for k, n := range r.QueueKindNanos {
		if _, ok := kindByName(k); !ok {
			return fmt.Errorf("exp: unknown traffic kind %q in record %s", k, r.Key())
		}
		kindSum += n
	}
	if kindSum != r.QueueNanos {
		return fmt.Errorf("exp: queue kind split %d != total %d in record %s", kindSum, r.QueueNanos, r.Key())
	}
	if r.Contention == 0 && r.QueueNanos != 0 {
		return fmt.Errorf("exp: queueing delay without contention in record %s", r.Key())
	}
	if r.BDTotalNanos < 0 || r.BDComputeNanos < 0 || r.BDFaultNanos < 0 || r.BDBarrierNanos < 0 ||
		r.BDLockNanos < 0 || r.BDDataNanos < 0 || r.BDQueueNanos < 0 || r.BDOtherNanos < 0 {
		return fmt.Errorf("exp: negative time-attribution component in record %s", r.Key())
	}
	bdSum := r.BDComputeNanos + r.BDFaultNanos + r.BDBarrierNanos +
		r.BDLockNanos + r.BDDataNanos + r.BDQueueNanos + r.BDOtherNanos
	if bdSum != r.BDTotalNanos {
		return fmt.Errorf("exp: time-attribution components %d != total %d in record %s", bdSum, r.BDTotalNanos, r.Key())
	}
	if r.Contention == 0 && r.BDQueueNanos != 0 {
		return fmt.Errorf("exp: queueing attribution without contention in record %s", r.Key())
	}
	if r.Migrations < 0 || r.RedirectedFlushBytes < 0 || r.StaleForwards < 0 {
		return fmt.Errorf("exp: negative home-policy activity in record %s", r.Key())
	}
	switch r.HomePolicy {
	case "", proto.StaticPolicy:
		if r.Migrations != 0 || r.RedirectedFlushBytes != 0 || r.StaleForwards != 0 {
			return fmt.Errorf("exp: home-policy activity under static homes in record %s", r.Key())
		}
	}
	if r.Procs == 1 && r.Migrations != 0 {
		return fmt.Errorf("exp: single-node run migrated pages in record %s", r.Key())
	}
	if r.SeqNanos != 0 || r.SeqSeconds != 0 || r.Speedup != 0 {
		if r.Version == core.Seq {
			return fmt.Errorf("exp: seq record carries a baseline join in record %s", r.Key())
		}
		if r.SeqNanos <= 0 || r.TimeNanos <= 0 {
			return fmt.Errorf("exp: incoherent baseline join in record %s", r.Key())
		}
		if math.Abs(r.SeqSeconds-float64(r.SeqNanos)/1e9) > 1e-6 {
			return fmt.Errorf("exp: seq_seconds %g disagrees with seq_ns %d", r.SeqSeconds, r.SeqNanos)
		}
		want := float64(r.SeqNanos) / float64(r.TimeNanos)
		if math.Abs(r.Speedup-want) > 1e-9*want {
			return fmt.Errorf("exp: speedup %g disagrees with seq_ns/time_ns %g in record %s", r.Speedup, want, r.Key())
		}
	}
	if r.HostNanos < 0 {
		return fmt.Errorf("exp: negative host_ns in record %s", r.Key())
	}
	if _, err := AppByName(r.App); err != nil {
		return err
	}
	if _, err := proto.Parse(string(r.Protocol)); err != nil {
		return err
	}
	return nil
}

// kindByName resolves a traffic-category name.
func kindByName(name string) (stats.Kind, bool) {
	for _, k := range stats.AllKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// ValidateLine parses one JSON-lines record strictly (unknown fields
// rejected) and validates it. It is the schema check the CI sweep
// smoke job and cmd/sweeplint apply to engine output.
func ValidateLine(line []byte) (Record, error) {
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("exp: malformed record: %v", err)
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}
