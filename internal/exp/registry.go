package exp

import (
	"fmt"

	"repro/internal/apps/fft3d"
	"repro/internal/apps/igrid"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/mgs"
	"repro/internal/apps/nbf"
	"repro/internal/apps/rbsor"
	"repro/internal/apps/shallow"
	"repro/internal/core"
	"repro/internal/loopc/gen"
)

// PaperApps returns the six applications in the paper's order.
func PaperApps() []core.App {
	return []core.App{
		jacobi.New(), shallow.New(), mgs.New(), fft3d.New(),
		igrid.New(), nbf.New(),
	}
}

// Apps returns every application: the paper's six plus the kernels
// added through the internal/loopc compiler front end.
func Apps() []core.App {
	return append(PaperApps(), rbsor.New())
}

// AppByName finds an application (including the non-paper kernels).
// Names of the form "gen-<seed>" resolve to generated loopc programs
// (see internal/loopc/gen); they are constructed on demand and stay out
// of Apps(), so registry-driven sweeps and golden tables never pick
// them up implicitly.
func AppByName(name string) (core.App, error) {
	if seed, ok := gen.ParseSeed(name); ok {
		return gen.AppForSeed(seed), nil
	}
	for _, a := range Apps() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("exp: unknown application %q", name)
}

// AppNames lists every application name in registry order.
func AppNames() []string {
	var out []string
	for _, a := range Apps() {
		out = append(out, a.Name())
	}
	return out
}
