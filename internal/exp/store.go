package exp

import (
	"fmt"

	"repro/internal/store"
)

// StoreObserveSuffix distinguishes observed records in the persistent
// store. An observed run bakes bd_* breakdown fields into its record
// bytes, so it must never be served to an unobserved sweep (or vice
// versa): the two populations get disjoint store keys.
const StoreObserveSuffix = "|obs=1"

// StoreKey is the persistent-store key for a spec: Spec.Key() plus the
// observe marker. The schema version is not part of the key — the
// store frames carry it and treat a mismatch as a miss.
func StoreKey(s Spec, observed bool) string {
	if observed {
		return s.Key() + StoreObserveSuffix
	}
	return s.Key()
}

// StoreOptions is the store configuration every CLI opens its `-store`
// directory with: this build's record schema version, so a store
// written by a build with a different record shape reads as empty
// rather than serving stale bytes.
func StoreOptions(maxBytes int64) store.Options {
	return store.Options{MaxBytes: maxBytes, SchemaVersion: SchemaVersion}
}

// storeKey resolves the engine's store key for a spec.
func (e *Engine) storeKey(s Spec) string {
	return StoreKey(s, e.Observe)
}

// decodeStored turns stored bytes back into a servable record for s.
// It re-validates everything a fresh RecordOf guarantees — schema,
// invariants, spec identity, no error, no wire stamp, no host time —
// so a tampered or drifted entry is recomputed rather than served.
func decodeStored(b []byte, s Spec) (Record, error) {
	rec, err := ValidateLine(b)
	if err != nil {
		return Record{}, err
	}
	if rec.SchemaVersion != 0 {
		return Record{}, fmt.Errorf("exp: stored record carries wire stamp %d", rec.SchemaVersion)
	}
	if rec.Error != "" {
		return Record{}, fmt.Errorf("exp: stored record carries an error: %s", rec.Error)
	}
	if rec.HostNanos != 0 {
		return Record{}, fmt.Errorf("exp: stored record carries host time")
	}
	if rec.SeqNanos != 0 || rec.SeqSeconds != 0 || rec.Speedup != 0 {
		return Record{}, fmt.Errorf("exp: stored record carries a speedup join")
	}
	if rec.Spec != s {
		return Record{}, fmt.Errorf("exp: stored record is for %s, wanted %s", rec.Key(), s.Key())
	}
	return rec, nil
}
