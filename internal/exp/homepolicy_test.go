package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// TestSpecKeyHomePolicyRoundTrip: the homepolicy field round-trips
// through Key/ParseKey, and — critically for the cache and for
// pre-policy JSON-lines streams — an empty policy is omitted from the
// key, so old keys parse unchanged and old cached streams stay valid.
func TestSpecKeyHomePolicyRoundTrip(t *testing.T) {
	withPolicy := Spec{App: "MGS", Version: core.Tmk, Procs: 4, Scale: core.SmallScale,
		Protocol: proto.HomeLRC, HomePolicy: proto.AdaptivePolicy}
	got, err := ParseKey(withPolicy.Key())
	if err != nil || got != withPolicy {
		t.Fatalf("round trip: got (%+v, %v), want %+v", got, err, withPolicy)
	}
	if !strings.Contains(withPolicy.Key(), "|homepolicy=adaptive") {
		t.Fatalf("key %q does not carry the policy", withPolicy.Key())
	}

	noPolicy := withPolicy
	noPolicy.HomePolicy = ""
	if strings.Contains(noPolicy.Key(), "homepolicy") {
		t.Fatalf("empty policy leaked into key %q", noPolicy.Key())
	}
	legacy := "app=MGS|version=tmk|procs=4|scale=small|protocol=hlrc|contention=0|fifo=0"
	got, err = ParseKey(legacy)
	if err != nil || got != noPolicy {
		t.Fatalf("legacy key: got (%+v, %v), want %+v", got, err, noPolicy)
	}
}

func TestParseAxesHomePolicy(t *testing.T) {
	a, err := ParseAxes([]string{"app=MGS", "homepolicy=static,firsttouch,adaptive", "procs=2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.HomePolicies) != 3 || a.HomePolicies[2] != proto.AdaptivePolicy {
		t.Fatalf("HomePolicies = %v", a.HomePolicies)
	}
	specs := a.Specs(Spec{Version: core.Tmk, Scale: core.SmallScale, Protocol: proto.HomeLRC})
	if len(specs) != 3 {
		t.Fatalf("cross product size %d, want 3", len(specs))
	}
	if specs[1].HomePolicy != proto.FirstTouchPolicy {
		t.Fatalf("specs[1] policy = %q", specs[1].HomePolicy)
	}
	if _, err := ParseAxes([]string{"homepolicy=roundrobin"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestStreamJoinSpeedup: with the engine-side join on, every non-seq
// record carries a validated seq baseline join, seq records stay bare,
// and the stream remains byte-identical at any worker count.
func TestStreamJoinSpeedup(t *testing.T) {
	axes := Axes{Versions: []core.Version{core.Seq, core.Tmk}, Procs: []int{1, 2}}
	specs := axes.Specs(Spec{App: "Jacobi", Scale: core.SmallScale})
	for i := range specs {
		specs[i] = specs[i].Normalize()
	}
	streams := make([]string, 2)
	for i, workers := range []int{1, 4} {
		eng := New()
		eng.Workers = workers
		eng.JoinSpeedup = true
		var buf bytes.Buffer
		if err := eng.Stream(&buf, specs); err != nil {
			t.Fatal(err)
		}
		streams[i] = buf.String()
	}
	if streams[0] != streams[1] {
		t.Fatalf("joined stream not byte-identical across worker counts:\n%s\nvs\n%s", streams[0], streams[1])
	}
	lines := strings.Split(strings.TrimSpace(streams[0]), "\n")
	if len(lines) != len(specs) {
		t.Fatalf("%d records for %d specs", len(lines), len(specs))
	}
	for i, line := range lines {
		rec, err := ValidateLine([]byte(line))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Version == core.Seq {
			if rec.Speedup != 0 || rec.SeqNanos != 0 {
				t.Errorf("seq record %d carries a join: %s", i, line)
			}
		} else if rec.Speedup == 0 || rec.SeqNanos == 0 {
			t.Errorf("record %d missing the seq join: %s", i, line)
		}
	}
}

// TestRecordValidateHomePolicyAndSpeedup exercises the new schema
// rules: migration activity demands a migrating policy and more than
// one node, and a baseline join must be internally consistent.
func TestRecordValidateHomePolicyAndSpeedup(t *testing.T) {
	base := func() Record {
		return Record{
			Spec: Spec{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale,
				Protocol: proto.HomeLRC, HomePolicy: proto.AdaptivePolicy},
			TimeNanos: 2e9, TimeSeconds: 2, Msgs: 10, Bytes: 100, Checksum: 1,
		}
	}
	ok := base()
	ok.Migrations = 3
	ok.SeqNanos = 4e9
	ok.SeqSeconds = 4
	ok.Speedup = 2
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}

	static := base()
	static.HomePolicy = proto.StaticPolicy
	static.Migrations = 1
	if err := static.Validate(); err == nil {
		t.Error("migrations under static homes accepted")
	}

	single := base()
	single.Procs = 1
	single.Migrations = 1
	if err := single.Validate(); err == nil {
		t.Error("single-node migrations accepted")
	}

	badJoin := base()
	badJoin.SeqNanos = 4e9
	badJoin.SeqSeconds = 4
	badJoin.Speedup = 3 // 4e9 / 2e9 = 2
	if err := badJoin.Validate(); err == nil {
		t.Error("inconsistent speedup accepted")
	}

	seqJoin := base()
	seqJoin.Version = core.Seq
	seqJoin.Procs = 1
	seqJoin.SeqNanos = 4e9
	seqJoin.SeqSeconds = 4
	seqJoin.Speedup = 2
	if err := seqJoin.Validate(); err == nil {
		t.Error("seq record with a baseline join accepted")
	}

	badPolicy := base()
	badPolicy.HomePolicy = "roundrobin"
	if err := badPolicy.Validate(); err == nil {
		t.Error("unknown home policy accepted")
	}
}
