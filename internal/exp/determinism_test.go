package exp

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// TestSweepDeterminism is the engine's central guarantee: a parallel
// sweep with N workers produces byte-identical JSON-lines to a serial
// run of the same specs. Each engine gets a cold cache so every run
// actually executes under the given parallelism.
func TestSweepDeterminism(t *testing.T) {
	specs := testGrid()

	var serial bytes.Buffer
	es := New()
	es.Workers = 1
	if err := es.Stream(&serial, specs); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		var parallel bytes.Buffer
		ep := New()
		ep.Workers = workers
		if err := ep.Stream(&parallel, specs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Errorf("workers=%d: JSON-lines differ from serial run:\nserial:\n%s\nparallel:\n%s",
				workers, serial.String(), parallel.String())
		}
	}

	// One record per spec, each schema-valid, in spec order.
	lines := bytes.Split(bytes.TrimSpace(serial.Bytes()), []byte("\n"))
	if len(lines) != len(specs) {
		t.Fatalf("emitted %d records for %d specs", len(lines), len(specs))
	}
	for i, line := range lines {
		rec, err := ValidateLine(line)
		if err != nil {
			t.Errorf("record %d: %v", i, err)
			continue
		}
		if rec.Spec != specs[i] {
			t.Errorf("record %d is %s, want spec order %s", i, rec.Key(), specs[i].Key())
		}
	}
}

// TestConcurrentRunsIndependent hammers one engine with concurrent Run
// calls over a mixed grid (DSM and MP runtimes, both protocols) and
// checks every result matches a fresh serial engine's: simulations
// must share no mutable state.
func TestConcurrentRunsIndependent(t *testing.T) {
	specs := testGrid()
	ref := New()
	refResults := make([]core.Result, len(specs))
	for i, s := range specs {
		r, err := ref.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		refResults[i] = r
	}

	e := New()
	var wg sync.WaitGroup
	errs := make([]error, len(specs)*2)
	results := make([]core.Result, len(specs)*2)
	for round := 0; round < 2; round++ {
		for i := range specs {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				results[slot], errs[slot] = e.Run(specs[i])
			}(round*len(specs)+i, i)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	for round := 0; round < 2; round++ {
		for i, want := range refResults {
			got := results[round*len(specs)+i]
			if got.Time != want.Time || got.Checksum != want.Checksum ||
				got.Stats.TotalMsgs() != want.Stats.TotalMsgs() ||
				got.Stats.TotalBytes() != want.Stats.TotalBytes() {
				t.Errorf("concurrent run of %s diverged: got %v, want %v", specs[i].Key(), got, want)
			}
		}
	}
}

// TestStreamOrderWithContention sweeps the contention axis in parallel
// and checks records stay in axes order with consistent queue splits.
func TestStreamOrderWithContention(t *testing.T) {
	axes := Axes{
		Apps:        []string{"Jacobi"},
		Versions:    []core.Version{core.XHPF, core.PVMe},
		Contentions: []int{0, -1, 1},
	}
	specs := axes.Specs(Spec{Procs: 4, Scale: core.SmallScale})
	e := New()
	var out bytes.Buffer
	if err := e.Stream(&out, specs); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n"))
	if len(lines) != len(specs) {
		t.Fatalf("emitted %d records for %d specs", len(lines), len(specs))
	}
	for i, line := range lines {
		rec, err := ValidateLine(line)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Spec != specs[i] {
			t.Errorf("record %d out of order: %s", i, rec.Key())
		}
		if rec.Contention == 0 && rec.QueueNanos != 0 {
			t.Errorf("record %d reports queueing without contention", i)
		}
		if rec.Contention != 0 && rec.QueueNanos == 0 && rec.Procs > 1 {
			t.Logf("note: %s queued nothing (possible but unusual)", rec.Key())
		}
	}
}

func TestRecordValidateRejectsCorruption(t *testing.T) {
	e := New()
	s := Spec{App: "Jacobi", Version: core.PVMe, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC}
	res, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	good := RecordOf(s, res, nil)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := good
	bad.QueueNanos = 7 // split no longer covers the total
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent queue split accepted")
	}
	bad = good
	bad.TimeSeconds = good.TimeSeconds * 2
	if err := bad.Validate(); err == nil {
		t.Error("time_seconds/time_ns disagreement accepted")
	}
	bad = good
	bad.App = "NoSuchApp"
	if err := bad.Validate(); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := ValidateLine([]byte(`{"app":"Jacobi","version":"tmk","procs":2,"scale":"small","wat":1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := ValidateLine([]byte(`not json`)); err == nil {
		t.Error("malformed line accepted")
	}
}

// TestFullGridSweepDeterminism is the acceptance sweep: the full
// (app × version × procs × protocol) grid — every application, every
// version it supports, 1-4 procs, both protocols — streamed by a
// multi-worker engine must be byte-identical to the serial order.
func TestFullGridSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	var specs []Spec
	for _, a := range Apps() {
		for _, v := range a.Versions() {
			for _, procs := range []int{1, 2, 4} {
				for _, p := range proto.Names() {
					s := Spec{App: a.Name(), Version: v, Procs: procs, Scale: core.SmallScale, Protocol: p}
					specs = append(specs, s.Normalize())
				}
			}
		}
	}
	var serial, parallel bytes.Buffer
	es := New()
	es.Workers = 1
	if err := es.Stream(&serial, specs); err != nil {
		t.Fatal(err)
	}
	ep := New()
	ep.Workers = 8
	if err := ep.Stream(&parallel, specs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Error("full-grid parallel sweep differs from serial output")
	}
	lines := bytes.Split(bytes.TrimSpace(serial.Bytes()), []byte("\n"))
	if len(lines) != len(specs) {
		t.Fatalf("emitted %d records for %d specs", len(lines), len(specs))
	}
	for i, line := range lines {
		if _, err := ValidateLine(line); err != nil {
			t.Errorf("record %d: %v", i, err)
		}
	}
}
