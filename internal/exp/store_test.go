package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/store"
)

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, StoreOptions(0))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// streamT runs one engine over specs and returns the stream bytes.
func streamT(t *testing.T, e *Engine, specs []Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Stream(&buf, specs); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return buf.Bytes()
}

// TestStoreKeepsSweepBytes is the tentpole invariant: sweep output is
// byte-identical with the store disabled, cold, and warm — at 1, 2 and
// 8 workers, with speedup joins on, and with observation on — and a
// warm run executes zero simulations.
func TestStoreKeepsSweepBytes(t *testing.T) {
	for _, mode := range []struct {
		name          string
		join, observe bool
	}{
		{name: "plain"},
		{name: "speedup", join: true},
		{name: "observed", observe: true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			specs := testGrid()
			build := func(workers int, st *store.Store) *Engine {
				e := New()
				e.Workers = workers
				e.JoinSpeedup = mode.join
				e.Observe = mode.observe
				e.Store = st
				return e
			}
			want := streamT(t, build(4, nil), specs) // store disabled

			dir := t.TempDir()
			cold := build(4, openStoreT(t, dir))
			if got := streamT(t, cold, specs); !bytes.Equal(got, want) {
				t.Fatalf("cold store changed the sweep bytes:\nwant:\n%s\ngot:\n%s", want, got)
			}
			if hs := cold.HostStats(); hs.StoreHits != 0 {
				t.Errorf("cold run reported %d store hits", hs.StoreHits)
			}

			for _, workers := range []int{1, 2, 8} {
				warm := build(workers, openStoreT(t, dir))
				if got := streamT(t, warm, specs); !bytes.Equal(got, want) {
					t.Errorf("workers=%d: warm store changed the sweep bytes:\nwant:\n%s\ngot:\n%s",
						workers, want, got)
				}
				hs := warm.HostStats()
				if hs.RunsStarted != 0 {
					t.Errorf("workers=%d: warm run executed %d simulations, want 0", workers, hs.RunsStarted)
				}
				if want := int64(UniqueRuns(specs, mode.join)); hs.StoreHits != want {
					t.Errorf("workers=%d: %d store hits, want %d", workers, hs.StoreHits, want)
				}
			}
		})
	}
}

// TestStoreObservedAndPlainRecordsAreDisjoint pins the key split: an
// observed sweep must never serve (or be served) a plain record, whose
// bytes lack the bd_* fields.
func TestStoreObservedAndPlainRecordsAreDisjoint(t *testing.T) {
	specs := testGrid()[:2]
	dir := t.TempDir()

	plain := New()
	plain.Store = openStoreT(t, dir)
	plainBytes := streamT(t, plain, specs)

	obs := New()
	obs.Observe = true
	obs.Store = openStoreT(t, dir)
	obsBytes := streamT(t, obs, specs)
	if hs := obs.HostStats(); hs.StoreHits != 0 {
		t.Errorf("observed sweep hit %d plain store entries", hs.StoreHits)
	}
	if !strings.Contains(string(obsBytes), `"bd_`) {
		t.Fatalf("observed sweep lost its breakdown fields:\n%s", obsBytes)
	}
	if strings.Contains(string(plainBytes), `"bd_`) {
		t.Fatalf("plain sweep gained breakdown fields:\n%s", plainBytes)
	}

	// Both populations stored: a warm engine of each flavor hits.
	plain2 := New()
	plain2.Store = openStoreT(t, dir)
	if got := streamT(t, plain2, specs); !bytes.Equal(got, plainBytes) {
		t.Error("warm plain sweep diverged")
	}
	if hs := plain2.HostStats(); hs.RunsStarted != 0 {
		t.Errorf("warm plain sweep executed %d runs", hs.RunsStarted)
	}
}

// TestStoreCorruptEntryRecomputed corrupts one stored frame in place:
// the engine must detect it, re-execute that spec, emit identical
// bytes, and heal the store so the next run is all hits again.
func TestStoreCorruptEntryRecomputed(t *testing.T) {
	specs := testGrid()
	dir := t.TempDir()

	cold := New()
	cold.Store = openStoreT(t, dir)
	want := streamT(t, cold, specs)

	// Flip a byte in the middle of the segment (inside some frame's
	// payload — the store's CRC must catch it).
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, strings.TrimSpace(string(cur)))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := New()
	warm.Store = openStoreT(t, dir)
	if got := streamT(t, warm, specs); !bytes.Equal(got, want) {
		t.Fatalf("sweep over corrupted store diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
	hs := warm.HostStats()
	if hs.RunsStarted == 0 {
		t.Error("corrupted entry was served instead of recomputed")
	}
	if hs.RunsStarted >= int64(UniqueRuns(specs, false)) {
		t.Errorf("corruption of one frame re-executed %d runs", hs.RunsStarted)
	}

	healed := New()
	healed.Store = openStoreT(t, dir)
	if got := streamT(t, healed, specs); !bytes.Equal(got, want) {
		t.Fatal("sweep over healed store diverged")
	}
	if hs := healed.HostStats(); hs.RunsStarted != 0 {
		t.Errorf("healed store still forced %d executions", hs.RunsStarted)
	}
}

// TestStoreNeverStoresErrors: failed runs re-execute every time and
// never land in the store.
func TestStoreNeverStoresErrors(t *testing.T) {
	dir := t.TempDir()
	bad := Spec{App: "NoSuchApp", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC}.Normalize()
	failStream := func(e *Engine) []byte {
		var buf bytes.Buffer
		stats, err := e.StreamWith(&buf, []Spec{bad}, nil)
		if err == nil || stats.Failed != 1 {
			t.Fatalf("expected one failed record, got stats %+v err %v", stats, err)
		}
		return buf.Bytes()
	}
	e1 := New()
	e1.Store = openStoreT(t, dir)
	want := failStream(e1)
	if !strings.Contains(string(want), `"error"`) {
		t.Fatalf("expected an error record, got:\n%s", want)
	}
	e2 := New()
	e2.Store = openStoreT(t, dir)
	if got := failStream(e2); !bytes.Equal(got, want) {
		t.Fatal("error record bytes diverged")
	}
	if hs := e2.HostStats(); hs.StoreHits != 0 || hs.RunsStarted != 1 {
		t.Errorf("error spec: hits=%d runs=%d, want 0 hits and a re-execution", hs.StoreHits, hs.RunsStarted)
	}
}

// TestProgressSplitsHitsAndSkewsNoETA: store hits advance progress but
// not the ETA sample, and the line carries the mem/disk split.
func TestProgressStoreHits(t *testing.T) {
	specs := testGrid()[:4]
	dir := t.TempDir()
	cold := New()
	cold.Store = openStoreT(t, dir)
	streamT(t, cold, specs)

	warm := New()
	warm.Store = openStoreT(t, dir)
	var lines bytes.Buffer
	p := NewProgress(UniqueRuns(specs, false), &lines, warm)
	warm.OnRunDone = p.RunDone
	warm.OnStoreHit = p.StoreHit
	streamT(t, warm, specs)
	snap := p.Snapshot()
	if snap.Done != snap.Total || snap.Total != len(specs) {
		t.Fatalf("progress %d/%d after a warm sweep of %d specs", snap.Done, snap.Total, len(specs))
	}
	if snap.Executed != 0 || snap.DiskHits != len(specs) {
		t.Errorf("executed/disk = %d/%d, want 0/%d", snap.Executed, snap.DiskHits, len(specs))
	}
	if snap.EtaSeconds != 0 {
		t.Errorf("warm sweep produced an ETA (%v) from zero executed runs", snap.EtaSeconds)
	}
	if !strings.Contains(lines.String(), "disk") {
		t.Errorf("progress line lacks the mem/disk hit split:\n%s", lines.String())
	}
}
