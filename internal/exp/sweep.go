package exp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// Axes describes a sweep as per-axis value lists. Specs expands the
// cross-product in fixed nested order — app outermost, then version,
// procs, scale, protocol, contention, fifo, homepolicy innermost —
// which defines the canonical output order of every sweep. An empty
// axis is pinned to the base spec's value for that field.
type Axes struct {
	Apps         []string
	Versions     []core.Version
	Procs        []int
	Scales       []core.Scale
	Protocols    []proto.Name
	Contentions  []int
	FIFOs        []bool
	HomePolicies []proto.PolicyName
}

// Specs expands the cross-product over base. Axis values appear in the
// order given; duplicates are preserved (the engine caches, so they
// cost nothing to run but keep positional output stable).
func (a Axes) Specs(base Spec) []Spec {
	apps := a.Apps
	if len(apps) == 0 {
		apps = []string{base.App}
	}
	versions := a.Versions
	if len(versions) == 0 {
		versions = []core.Version{base.Version}
	}
	procs := a.Procs
	if len(procs) == 0 {
		procs = []int{base.Procs}
	}
	scales := a.Scales
	if len(scales) == 0 {
		scales = []core.Scale{base.Scale}
	}
	protocols := a.Protocols
	if len(protocols) == 0 {
		protocols = []proto.Name{base.Protocol}
	}
	contentions := a.Contentions
	if len(contentions) == 0 {
		contentions = []int{base.Contention}
	}
	fifos := a.FIFOs
	if len(fifos) == 0 {
		fifos = []bool{base.FIFO}
	}
	policies := a.HomePolicies
	if len(policies) == 0 {
		policies = []proto.PolicyName{base.HomePolicy}
	}
	var out []Spec
	for _, app := range apps {
		for _, v := range versions {
			for _, p := range procs {
				for _, sc := range scales {
					for _, pr := range protocols {
						for _, ct := range contentions {
							for _, ff := range fifos {
								for _, hp := range policies {
									out = append(out, Spec{
										App: app, Version: v, Procs: p, Scale: sc,
										Protocol: pr, Contention: ct, FIFO: ff,
										HomePolicy: hp,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// ParseAxes builds Axes from `key=v1,v2,...` tokens — the CLI sweep
// syntax (e.g. "procs=1,2,4,8 protocol=lrc,hlrc" split into tokens).
// Keys: app, version, procs, scale, protocol, contention, fifo,
// homepolicy. Blank
// tokens are ignored; repeated keys append. A token without '=' is a
// continuation of the previous token's value list, rejoined with a
// space — application names contain spaces ("3-D FFT"), and shells
// split them into separate tokens (`-sweep "app=Jacobi,3-D FFT"`).
func ParseAxes(tokens []string) (Axes, error) {
	var joined []string
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !strings.Contains(tok, "=") && len(joined) > 0 {
			joined[len(joined)-1] += " " + tok
			continue
		}
		joined = append(joined, tok)
	}
	var a Axes
	for _, tok := range joined {
		key, vals, ok := strings.Cut(tok, "=")
		if !ok {
			return Axes{}, fmt.Errorf("exp: sweep token %q is not key=v1,v2,...", tok)
		}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return Axes{}, fmt.Errorf("exp: empty value in sweep token %q", tok)
			}
			switch key {
			case "app":
				a.Apps = append(a.Apps, v)
			case "version":
				a.Versions = append(a.Versions, core.Version(v))
			case "procs":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return Axes{}, fmt.Errorf("exp: bad procs %q in sweep", v)
				}
				a.Procs = append(a.Procs, n)
			case "scale":
				switch core.Scale(v) {
				case core.PaperScale, core.MidScale, core.SmallScale:
				default:
					return Axes{}, fmt.Errorf("exp: unknown scale %q in sweep", v)
				}
				a.Scales = append(a.Scales, core.Scale(v))
			case "protocol":
				p, err := proto.Parse(v)
				if err != nil {
					return Axes{}, err
				}
				a.Protocols = append(a.Protocols, p)
			case "homepolicy":
				hp, err := proto.ParsePolicy(v)
				if err != nil {
					return Axes{}, err
				}
				a.HomePolicies = append(a.HomePolicies, hp)
			case "contention":
				n, err := strconv.Atoi(v)
				if err != nil || n < -1 {
					return Axes{}, fmt.Errorf("exp: bad contention %q in sweep (want 0, -1, or a positive backplane bound)", v)
				}
				a.Contentions = append(a.Contentions, n)
			case "fifo":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return Axes{}, fmt.Errorf("exp: bad fifo %q in sweep", v)
				}
				a.FIFOs = append(a.FIFOs, b)
			default:
				return Axes{}, fmt.Errorf("exp: unknown sweep axis %q (have app, version, procs, scale, protocol, contention, fifo, homepolicy)", key)
			}
		}
	}
	return a, nil
}
