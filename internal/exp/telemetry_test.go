package exp

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proto"
)

// TestTelemetryKeepsSweepBytes is the PR's central guarantee: a sweep
// with a live metrics registry, an OnRunDone progress hook and the
// speedup join enabled produces JSON-lines byte-identical to a bare
// engine's, at every worker count.
func TestTelemetryKeepsSweepBytes(t *testing.T) {
	specs := testGrid()

	var bare bytes.Buffer
	eb := New()
	eb.Workers = 1
	eb.JoinSpeedup = true
	if err := eb.Stream(&bare, specs); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		var out bytes.Buffer
		e := New()
		e.Workers = workers
		e.JoinSpeedup = true
		e.Metrics = metrics.NewRegistry()
		p := NewProgress(UniqueRuns(specs, true), io.Discard, e)
		e.OnRunDone = p.RunDone
		if err := e.Stream(&out, specs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bare.Bytes(), out.Bytes()) {
			t.Errorf("workers=%d: telemetry changed the sweep bytes:\nbare:\n%s\ninstrumented:\n%s",
				workers, bare.String(), out.String())
		}
		if snap := p.Snapshot(); snap.Done != snap.Total || snap.Done == 0 {
			t.Errorf("workers=%d: progress %d/%d after a completed sweep", workers, snap.Done, snap.Total)
		}
	}
}

// TestEngineHostStats checks the cache-outcome classification: every
// unique spec executes once, repeats count as hits, and the registry's
// counter families agree with HostStats.
func TestEngineHostStats(t *testing.T) {
	e := New()
	e.Metrics = metrics.NewRegistry()
	s := Spec{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC}
	s = s.Normalize()
	for i := 0; i < 3; i++ {
		if _, err := e.Run(s); err != nil {
			t.Fatal(err)
		}
	}
	hs := e.HostStats()
	if hs.RunsStarted != 1 || hs.RunsCompleted != 1 {
		t.Errorf("started/completed = %d/%d, want 1/1", hs.RunsStarted, hs.RunsCompleted)
	}
	if hs.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", hs.CacheHits)
	}
	if hs.Inflight != 0 {
		t.Errorf("inflight = %d, want 0", hs.Inflight)
	}
	if got := e.HostRunNanos(s); got <= 0 {
		t.Errorf("HostRunNanos = %d, want > 0", got)
	}
	if got := e.HostRunNanos(Spec{App: "Jacobi", Version: core.Seq, Procs: 1, Scale: core.SmallScale}); got != 0 {
		t.Errorf("HostRunNanos of never-run spec = %d, want 0", got)
	}

	var buf bytes.Buffer
	if err := e.Metrics.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"dsm_engine_cache_hits_total 2",
		"dsm_engine_runs_completed_total 1",
		`dsm_engine_run_host_seconds_bucket{app="Jacobi",version="tmk",le="+Inf"} 1`,
		`dsm_engine_run_alloc_bytes_count{app="Jacobi",version="tmk"} 1`,
		"dsm_sim_dispatches_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := metrics.ValidateText(strings.NewReader(text)); err != nil {
		t.Errorf("engine exposition invalid: %v", err)
	}
}

// TestProgressSnapshot drives the hook directly and checks the JSON
// shape /progress serves, including the stderr line path.
func TestProgressSnapshot(t *testing.T) {
	var lines bytes.Buffer
	p := NewProgress(2, &lines, nil)
	p.Interval = -1 // fall back to the 1s default; only the final line prints
	s := Spec{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC}
	p.RunDone(s, 5e6, nil)
	mid := p.Snapshot()
	if mid.Done != 1 || mid.Total != 2 || mid.EtaSeconds <= 0 {
		t.Errorf("mid snapshot %+v, want done=1 total=2 eta>0", mid)
	}
	p.RunDone(s, 7e6, errTest)
	snap := p.Snapshot()
	if snap.Done != 2 || snap.Errors != 1 || snap.EtaSeconds != 0 {
		t.Errorf("final snapshot %+v, want done=2 errors=1 eta=0", snap)
	}
	if want := 0.012; snap.RunHostSeconds != want {
		t.Errorf("run host seconds = %g, want %g", snap.RunHostSeconds, want)
	}
	if b, err := json.Marshal(snap); err != nil || !bytes.Contains(b, []byte(`"done":2`)) {
		t.Errorf("snapshot JSON = %s, err %v", b, err)
	}
	got := lines.String()
	if !strings.Contains(got, "sweep: 2/2 runs") || !strings.Contains(got, "1 failed") {
		t.Errorf("final progress line %q", got)
	}
	// Nil progress: the hook must be safely ignorable.
	var np *Progress
	np.RunDone(s, 1, nil)
	if np.Snapshot().Total != 0 {
		t.Error("nil progress snapshot non-zero")
	}
}

var errTest = errInstance{}

type errInstance struct{}

func (errInstance) Error() string { return "test failure" }

// TestUniqueRuns pins the progress denominator: duplicates collapse,
// and the speedup join adds one seq baseline per distinct non-seq
// configuration.
func TestUniqueRuns(t *testing.T) {
	mk := func(v core.Version, procs int) Spec {
		s := Spec{App: "Jacobi", Version: v, Procs: procs, Scale: core.SmallScale, Protocol: proto.HomelessLRC}
		return s.Normalize()
	}
	specs := []Spec{mk(core.Tmk, 2), mk(core.Tmk, 2), mk(core.Tmk, 4), mk(core.Seq, 1)}
	if got := UniqueRuns(specs, false); got != 3 {
		t.Errorf("UniqueRuns(join=false) = %d, want 3", got)
	}
	// Both non-seq specs share one seq baseline, and it is the same run
	// as the explicit seq spec — the join adds nothing here.
	if got := UniqueRuns(specs, true); got != 3 {
		t.Errorf("UniqueRuns(join=true) = %d, want 3", got)
	}
	// Without the explicit seq spec the join adds exactly one baseline.
	if got := UniqueRuns(specs[:3], true); got != 3 {
		t.Errorf("UniqueRuns(no explicit seq, join=true) = %d, want 3", got)
	}
	if got := UniqueRuns(specs[:3], false); got != 2 {
		t.Errorf("UniqueRuns(no explicit seq, join=false) = %d, want 2", got)
	}
}
