// Package exp is the declarative experiment API: the paper's
// contribution is a grid of measurements — (application × version ×
// processors × protocol) — and this package turns that grid into data.
// A Spec value fully identifies one simulated run; Axes expand
// cross-products of axis values into spec lists; and the Engine
// executes specs across host cores behind a concurrency-safe result
// cache, streaming deterministic, spec-ordered JSON-lines that are
// bit-identical regardless of worker count (the simulator itself is
// deterministic, and runs share no mutable state).
//
// Layering: exp sits above the application packages and below the
// harness — the harness's paper tables, the protocol/compiler/
// contention experiments, and both CLIs are all thin renderers over
// this engine.
package exp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// Spec fully identifies one simulated run. Two runs with equal specs
// (under one engine calibration) produce bit-identical results, which
// is what makes the spec a sound cache key.
type Spec struct {
	// App is the application name as the paper uses it (see Apps).
	App string `json:"app"`
	// Version is the implementation strategy to run.
	Version core.Version `json:"version"`
	// Procs is the simulated processor count.
	Procs int `json:"procs"`
	// Scale selects the problem-size regime; the application maps it to
	// concrete sizes through core.App.Config. Empty resolves like
	// core.PaperScale.
	Scale core.Scale `json:"scale"`
	// Protocol selects the DSM coherence protocol (empty: the homeless
	// TreadMarks LRC). Message-passing versions ignore it but keep it
	// in the identity so DSM/MP sweeps stay uniform.
	Protocol proto.Name `json:"protocol,omitempty"`
	// Contention is the shared contention encoding of
	// model.Costs.WithContention: 0 off, -1 serial NICs over an ideal
	// backplane, N > 0 serial NICs plus an N-way backplane bound.
	Contention int `json:"contention,omitempty"`
	// FIFO opts in to non-overtaking (src, dst)-pair delivery
	// (sim.Config.FIFOPairs).
	FIFO bool `json:"fifo,omitempty"`
	// HomePolicy selects the home-placement policy of the home-based
	// protocol (empty: static homes). Non-hlrc runs ignore it but keep
	// it in the identity so policy sweeps stay uniform. The field is
	// default-empty and omitted from keys when empty, so pre-policy
	// spec keys and cached streams stay valid.
	HomePolicy proto.PolicyName `json:"homepolicy,omitempty"`
}

// Normalize returns the spec with the run conventions applied: the
// sequential baseline always runs on one processor, and an explicit
// "static" home policy canonicalizes to empty (the default) so the
// same simulation never gets two spec identities.
func (s Spec) Normalize() Spec {
	if s.Version == core.Seq {
		s.Procs = 1
	}
	if s.HomePolicy == proto.StaticPolicy {
		s.HomePolicy = ""
	}
	return s
}

// Key encodes the spec as a canonical, order-stable string: the cache
// key and the determinism anchor of sweep output. ParseKey inverts it.
func (s Spec) Key() string {
	fifo := 0
	if s.FIFO {
		fifo = 1
	}
	key := fmt.Sprintf("app=%s|version=%s|procs=%d|scale=%s|protocol=%s|contention=%d|fifo=%d",
		s.App, s.Version, s.Procs, s.Scale, s.Protocol, s.Contention, fifo)
	if s.HomePolicy != "" {
		key += fmt.Sprintf("|homepolicy=%s", s.HomePolicy)
	}
	return key
}

// ParseKey decodes a Key back into a Spec. It round-trips exactly:
// ParseKey(s.Key()) == s for every spec whose fields contain no '|' or
// '=' (no application or version name does).
func ParseKey(key string) (Spec, error) {
	var s Spec
	for _, field := range strings.Split(key, "|") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("exp: malformed key field %q in %q", field, key)
		}
		switch k {
		case "app":
			s.App = v
		case "version":
			s.Version = core.Version(v)
		case "scale":
			s.Scale = core.Scale(v)
		case "protocol":
			s.Protocol = proto.Name(v)
		case "homepolicy":
			s.HomePolicy = proto.PolicyName(v)
		case "procs", "contention", "fifo":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: bad %s in key %q: %v", k, key, err)
			}
			switch k {
			case "procs":
				s.Procs = n
			case "contention":
				s.Contention = n
			case "fifo":
				s.FIFO = n != 0
			}
		default:
			return Spec{}, fmt.Errorf("exp: unknown key field %q in %q", k, key)
		}
	}
	return s, nil
}

// String returns the key (specs print as their identity).
func (s Spec) String() string { return s.Key() }

// Validate reports structural problems a run would only discover late:
// unknown protocol names, impossible processor counts, invalid
// contention encodings. Unknown app/version names are left to the
// engine, whose registry is the source of truth.
func (s Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("exp: spec has no application")
	}
	if s.Version == "" {
		return fmt.Errorf("exp: spec has no version")
	}
	if s.Procs < 1 {
		return fmt.Errorf("exp: spec procs %d < 1", s.Procs)
	}
	if s.Contention < -1 {
		return fmt.Errorf("exp: invalid contention %d (want 0, -1, or a positive backplane bound)", s.Contention)
	}
	switch s.Scale {
	case "", core.PaperScale, core.MidScale, core.SmallScale:
	default:
		return fmt.Errorf("exp: unknown scale %q", s.Scale)
	}
	if _, err := proto.Parse(string(s.Protocol)); err != nil {
		return err
	}
	if _, err := proto.ParsePolicy(string(s.HomePolicy)); err != nil {
		return err
	}
	return nil
}
