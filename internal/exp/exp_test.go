package exp

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// testGrid is the small cross-product the determinism and round-trip
// tests sweep: two apps × DSM and MP versions × 1-2 procs × both
// protocols, small scale.
func testGrid() []Spec {
	axes := Axes{
		Apps:      []string{"Jacobi", "RB-SOR"},
		Versions:  []core.Version{core.Tmk, core.XHPF},
		Procs:     []int{1, 2},
		Protocols: proto.Names(),
	}
	return axes.Specs(Spec{Scale: core.SmallScale})
}

func TestSpecKeyRoundTrip(t *testing.T) {
	specs := append(testGrid(),
		Spec{App: "3-D FFT", Version: core.SPFOpt, Procs: 8, Scale: core.PaperScale, Protocol: proto.HomeLRC, Contention: -1, FIFO: true},
		Spec{App: "NBF", Version: core.Seq, Procs: 1, Scale: core.MidScale, Contention: 4},
	)
	seen := map[string]bool{}
	for _, s := range specs {
		key := s.Key()
		if seen[key] {
			t.Errorf("duplicate key %q for distinct grid point", key)
		}
		seen[key] = true
		back, err := ParseKey(key)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", key, err)
		}
		if back != s {
			t.Errorf("key round-trip: %+v -> %q -> %+v", s, key, back)
		}
	}
	if _, err := ParseKey("app=Jacobi|bogus"); err == nil {
		t.Error("ParseKey accepted a malformed field")
	}
	if _, err := ParseKey("app=Jacobi|procs=x"); err == nil {
		t.Error("ParseKey accepted a non-numeric procs")
	}
}

func TestAxesCrossProductOrder(t *testing.T) {
	axes := Axes{
		Versions: []core.Version{core.Tmk, core.XHPF},
		Procs:    []int{1, 2},
	}
	got := axes.Specs(Spec{App: "Jacobi", Scale: core.SmallScale, Protocol: proto.HomelessLRC})
	want := []Spec{
		{App: "Jacobi", Version: core.Tmk, Procs: 1, Scale: core.SmallScale, Protocol: proto.HomelessLRC},
		{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC},
		{App: "Jacobi", Version: core.XHPF, Procs: 1, Scale: core.SmallScale, Protocol: proto.HomelessLRC},
		{App: "Jacobi", Version: core.XHPF, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomelessLRC},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cross-product order:\n got %v\nwant %v", got, want)
	}
}

func TestParseAxes(t *testing.T) {
	a, err := ParseAxes([]string{"procs=1,2,4,8", "protocol=lrc,hlrc", "fifo=true"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Procs, []int{1, 2, 4, 8}) {
		t.Errorf("procs = %v", a.Procs)
	}
	if !reflect.DeepEqual(a.Protocols, []proto.Name{proto.HomelessLRC, proto.HomeLRC}) {
		t.Errorf("protocols = %v", a.Protocols)
	}
	if !reflect.DeepEqual(a.FIFOs, []bool{true}) {
		t.Errorf("fifos = %v", a.FIFOs)
	}
	for _, bad := range []string{"procs", "procs=0", "scale=huge", "protocol=zzz", "contention=-2", "nope=1", "fifo=maybe", "procs="} {
		if _, err := ParseAxes([]string{bad}); err == nil {
			t.Errorf("ParseAxes accepted %q", bad)
		}
	}
}

// TestParseAxesSpacedAppNames: shells split "app=Jacobi,3-D FFT" into
// two tokens; a token without '=' rejoins the previous one so every
// registered application is reachable from the sweep syntax.
func TestParseAxesSpacedAppNames(t *testing.T) {
	a, err := ParseAxes([]string{"app=Jacobi,3-D", "FFT", "procs=2"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Apps, []string{"Jacobi", "3-D FFT"}) {
		t.Errorf("apps = %q, want [Jacobi, 3-D FFT]", a.Apps)
	}
	if !reflect.DeepEqual(a.Procs, []int{2}) {
		t.Errorf("procs = %v", a.Procs)
	}
	a, err = ParseAxes([]string{"app=3-D", "FFT", "version=tmk,pvme"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Apps, []string{"3-D FFT"}) {
		t.Errorf("apps = %q, want [3-D FFT]", a.Apps)
	}
	// Every registered app name must survive a shell-style round trip.
	for _, name := range AppNames() {
		toks := strings.Fields("app=" + name)
		a, err := ParseAxes(toks)
		if err != nil {
			t.Errorf("app %q: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(a.Apps, []string{name}) {
			t.Errorf("app %q parsed as %q", name, a.Apps)
		}
	}
	// A leading continuation token still errors.
	if _, err := ParseAxes([]string{"FFT", "procs=2"}); err == nil {
		t.Error("leading continuation token accepted")
	}
}

func TestEngineCachesAndDeduplicates(t *testing.T) {
	e := New()
	var executions int
	e.Lookup = func(name string) (core.App, error) {
		executions++ // called once per execute, under singleflight
		return AppByName(name)
	}
	s := Spec{App: "Jacobi", Version: core.Seq, Procs: 1, Scale: core.SmallScale}
	r1, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum || r1.Time != r2.Time {
		t.Error("cached result differs from first run")
	}
	if executions != 1 {
		t.Errorf("app resolved %d times, want 1 (cache miss only)", executions)
	}
	if keys := e.CachedKeys(); len(keys) != 1 || keys[0] != s.Key() {
		t.Errorf("CachedKeys = %v, want [%s]", keys, s.Key())
	}

	// A sweep with duplicate specs executes each unique key once.
	executions = 0
	specs := []Spec{s, s, s}
	results, err := e.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if executions != 0 {
		t.Errorf("sweep re-executed a cached spec %d times", executions)
	}
	for _, r := range results {
		if r.Checksum != r1.Checksum {
			t.Error("sweep result differs from cached run")
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := New()
	if _, err := e.Run(Spec{App: "NoSuchApp", Version: core.Seq, Procs: 1, Scale: core.SmallScale}); err == nil {
		t.Error("unknown app did not error")
	}
	if _, err := e.Run(Spec{App: "IGrid", Version: core.Version("tmk-push"), Procs: 2, Scale: core.SmallScale}); err == nil {
		t.Error("unsupported version did not error")
	}
	if _, err := e.Run(Spec{App: "Jacobi", Version: core.Tmk, Procs: 0, Scale: core.SmallScale}); err == nil {
		t.Error("invalid procs did not error")
	}
	// Sweep surfaces run failures as a joined error and error records.
	specs := []Spec{
		{App: "Jacobi", Version: core.Seq, Procs: 1, Scale: core.SmallScale},
		{App: "NoSuchApp", Version: core.Seq, Procs: 1, Scale: core.SmallScale},
	}
	if _, err := e.Sweep(specs); err == nil || !strings.Contains(err.Error(), "NoSuchApp") {
		t.Errorf("sweep error = %v, want mention of NoSuchApp", err)
	}
	var sb strings.Builder
	if err := e.Stream(&sb, specs); err == nil {
		t.Error("stream swallowed the run failure")
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream emitted %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[1], `"error"`) {
		t.Errorf("failed spec's record carries no error field: %s", lines[1])
	}
}

// TestEngineMatchesDirectRun pins the engine's Config plumbing: running
// a spec through the engine must reproduce a direct app.Run with the
// historical configuration exactly.
func TestEngineMatchesDirectRun(t *testing.T) {
	e := New()
	s := Spec{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: proto.HomeLRC}
	got, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AppByName("Jacobi")
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config(core.SmallScale, 2)
	cfg.Costs = e.Costs
	cfg.App = e.App
	cfg.Protocol = proto.HomeLRC
	want, err := a.Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Checksum != want.Checksum ||
		got.Stats.TotalMsgs() != want.Stats.TotalMsgs() ||
		got.Stats.TotalBytes() != want.Stats.TotalBytes() {
		t.Errorf("engine run diverged from direct run:\n got %v\nwant %v", got, want)
	}
}

// failAfterWriter fails every write after the first n.
type failAfterWriter struct {
	n      int
	writes int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errShortPipe
	}
	return len(p), nil
}

var errShortPipe = fmt.Errorf("short pipe")

// TestStreamWriteErrorCancels: a failing writer aborts the stream with
// the write error and stops the prefetch pool from starting the
// remaining runs (the engine's cache holds fewer keys than the grid).
func TestStreamWriteErrorCancels(t *testing.T) {
	e := New()
	e.Workers = 1 // serial pool: cancellation is deterministic
	specs := testGrid()
	err := e.Stream(&failAfterWriter{n: 1}, specs)
	if err != errShortPipe {
		t.Fatalf("stream error = %v, want the write error", err)
	}
	if got := len(e.CachedKeys()); got >= len(specs) {
		t.Errorf("prefetch ran all %d specs despite the aborted stream", got)
	}
}

func TestNormalize(t *testing.T) {
	s := Spec{App: "Jacobi", Version: core.Seq, Procs: 8, Scale: core.SmallScale}
	if n := s.Normalize(); n.Procs != 1 {
		t.Errorf("seq normalized to %d procs, want 1", n.Procs)
	}
	s.Version = core.Tmk
	if n := s.Normalize(); n.Procs != 8 {
		t.Errorf("non-seq normalize changed procs to %d", n.Procs)
	}
}
