package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
)

// obsGrid is the observability test grid: every runtime, both
// protocols, an adaptive-migration case and a contended-network case,
// at the sizes the golden virtual-time tests use.
func obsGrid() []Spec {
	specs := []Spec{
		{App: "Jacobi", Version: core.Tmk, Procs: 4, Scale: core.SmallScale},
		{App: "Jacobi", Version: core.SPF, Procs: 4, Scale: core.SmallScale},
		{App: "Jacobi", Version: core.PVMe, Procs: 4, Scale: core.SmallScale},
		{App: "Jacobi", Version: core.XHPF, Procs: 4, Scale: core.SmallScale},
		{App: "MGS", Version: core.Tmk, Procs: 4, Scale: core.SmallScale, Protocol: proto.HomeLRC},
		{App: "MGS", Version: core.Tmk, Procs: 4, Scale: core.SmallScale, Protocol: proto.HomeLRC, HomePolicy: proto.AdaptivePolicy},
		{App: "MGS", Version: core.Tmk, Procs: 4, Scale: core.SmallScale, Contention: -1},
		{App: "NBF", Version: core.Tmk, Procs: 4, Scale: core.SmallScale},
	}
	for i := range specs {
		if specs[i].Protocol == "" {
			specs[i].Protocol = proto.HomelessLRC
		}
		specs[i] = specs[i].Normalize()
	}
	return specs
}

// TestObserveDoesNotPerturb is the zero-overhead guarantee at the
// engine level: an observing run's virtual time, traffic and numerical
// result are bit-identical to a plain run's. Event emission must never
// advance virtual time.
func TestObserveDoesNotPerturb(t *testing.T) {
	for _, s := range obsGrid() {
		plain := New()
		res, err := plain.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		observing := New()
		observing.Observe = true
		ores, err := observing.Run(s)
		if err != nil {
			t.Fatalf("%s (observed): %v", s.Key(), err)
		}
		if ores.Time != res.Time {
			t.Errorf("%s: observing changed time %v -> %v", s.Key(), res.Time, ores.Time)
		}
		if ores.Checksum != res.Checksum {
			t.Errorf("%s: observing changed checksum %g -> %g", s.Key(), res.Checksum, ores.Checksum)
		}
		if ores.Stats != res.Stats {
			t.Errorf("%s: observing changed traffic stats", s.Key())
		}
		if res.Trace != nil || res.Breakdown != nil {
			t.Errorf("%s: plain run carries observability state", s.Key())
		}
		if ores.Trace == nil || ores.Trace.Len() == 0 {
			t.Errorf("%s: observing run collected no events", s.Key())
		}
	}
}

// TestBreakdownSumsExactly pins the attribution invariant over real
// runs: every node's components sum to its timed window, and the
// engine-level record mirrors the summed breakdown.
func TestBreakdownSumsExactly(t *testing.T) {
	e := New()
	e.Observe = true
	for _, s := range obsGrid() {
		res, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		if len(res.Breakdown) == 0 {
			t.Errorf("%s: no breakdown", s.Key())
			continue
		}
		var total int64
		for _, b := range res.Breakdown {
			if b.Compute+b.WaitSum() != b.Total {
				t.Errorf("%s node %d: compute %d + waits %d != window %d",
					s.Key(), b.Node, b.Compute, b.WaitSum(), b.Total)
			}
			if b.Compute < 0 || b.Fault < 0 || b.Barrier < 0 || b.Lock < 0 ||
				b.Data < 0 || b.Queue < 0 || b.Other < 0 {
				t.Errorf("%s node %d: negative component: %+v", s.Key(), b.Node, b)
			}
			total += b.Total
		}
		if total == 0 {
			t.Errorf("%s: all timed windows empty", s.Key())
		}
		// Contention off means no queueing attribution anywhere.
		if s.Contention == 0 && obs.Sum(res.Breakdown).Queue != 0 {
			t.Errorf("%s: queue attribution without a contention model", s.Key())
		}
		// The record mirrors the sum and revalidates.
		rec := RecordOf(s, res, nil)
		bd := obs.Sum(res.Breakdown)
		if rec.BDTotalNanos != bd.Total || rec.BDComputeNanos != bd.Compute {
			t.Errorf("%s: record bd_* fields disagree with the breakdown sum", s.Key())
		}
		if err := rec.Validate(); err != nil {
			t.Errorf("%s: observed record invalid: %v", s.Key(), err)
		}
	}
	// The contended MGS run must attribute some queueing delay.
	contended, err := e.Run(Spec{App: "MGS", Version: core.Tmk, Procs: 4,
		Scale: core.SmallScale, Protocol: proto.HomelessLRC, Contention: -1}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	if obs.Sum(contended.Breakdown).Queue == 0 {
		t.Error("contended MGS run attributed no queueing delay")
	}
}

// TestGoldenTraceBytes pins the trace exporter end to end: a 2-node
// Jacobi run's Chrome JSON is byte-identical across repeated runs and
// engine worker counts, and passes the trace validator with an event
// count matching the trace.
func TestGoldenTraceBytes(t *testing.T) {
	s := Spec{App: "Jacobi", Version: core.Tmk, Procs: 2,
		Scale: core.SmallScale, Protocol: proto.HomelessLRC}.Normalize()
	render := func(workers int) []byte {
		e := New()
		e.Observe = true
		e.Workers = workers
		// Warm the cache through a sweep so the run executes under the
		// given parallelism, then fetch the cached result.
		if _, err := e.Sweep([]Spec{s}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Trace.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		n, err := obs.ValidateChrome(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("workers=%d: invalid trace: %v", workers, err)
		}
		if n != res.Trace.Len() {
			t.Fatalf("workers=%d: validator counted %d events, trace has %d", workers, n, res.Trace.Len())
		}
		return buf.Bytes()
	}
	golden := render(1)
	if len(golden) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{1, 4} {
		if !bytes.Equal(render(workers), golden) {
			t.Errorf("workers=%d: trace bytes differ from the serial golden", workers)
		}
	}
}

// TestObserveKeepsSweepBytes pins that the bd_* fields are the *only*
// record difference observability introduces: an observing sweep with
// the fields stripped is byte-identical to a plain sweep.
func TestObserveKeepsSweepBytes(t *testing.T) {
	specs := obsGrid()[:4]
	stream := func(observe bool) []Record {
		e := New()
		e.Observe = observe
		var buf bytes.Buffer
		if err := e.Stream(&buf, specs); err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
		recs := make([]Record, len(lines))
		for i, line := range lines {
			rec, err := ValidateLine(line)
			if err != nil {
				t.Fatalf("observe=%v record %d: %v", observe, i, err)
			}
			recs[i] = rec
		}
		return recs
	}
	plain, observed := stream(false), stream(true)
	if len(plain) != len(observed) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(observed))
	}
	for i := range observed {
		if observed[i].BDTotalNanos == 0 {
			t.Errorf("%s: observing sweep emitted no bd_* fields", observed[i].Key())
		}
		stripped := observed[i]
		stripped.BDTotalNanos, stripped.BDComputeNanos = 0, 0
		stripped.BDFaultNanos, stripped.BDBarrierNanos = 0, 0
		stripped.BDLockNanos, stripped.BDDataNanos = 0, 0
		stripped.BDQueueNanos, stripped.BDOtherNanos = 0, 0
		sj, _ := json.Marshal(stripped)
		pj, _ := json.Marshal(plain[i])
		if !bytes.Equal(sj, pj) {
			t.Errorf("%s: observing changed a non-bd_* field:\nplain:    %s\nstripped: %s",
				plain[i].Key(), pj, sj)
		}
	}
}
