package sim

import "sync/atomic"

// HostStats are host-side execution counters for the simulator itself:
// how much real scheduling and delivery work a run performed, as
// opposed to the virtual-time costs it modeled. They exist for the
// telemetry surface (internal/metrics) and never influence virtual
// time, message contents or ordering — a run with nobody reading them
// is bit-identical to one scraped continuously.
type HostStats struct {
	// Dispatches counts scheduler handoffs: each time the Run loop
	// resumed a process goroutine.
	Dispatches int64
	// Delivered counts messages consumed by Recv.
	Delivered int64
	// PeakQueue is the high-water mark of messages sent but not yet
	// received, summed over all inboxes of the cluster.
	PeakQueue int64
}

// Process-wide totals, folded in once per completed Cluster.Run. The
// per-cluster counters themselves are plain ints — exactly one process
// executes at a time (the same channel-handoff argument that makes
// c.seq safe) — so the hot path pays no atomic traffic; only the
// once-per-run fold does.
var (
	hostDispatches atomic.Int64
	hostDelivered  atomic.Int64
	hostPeakQueue  atomic.Int64
)

// HostTotals returns the process-wide counters accumulated by every
// Cluster.Run completed so far (including runs that returned an error
// or panicked). PeakQueue is the maximum over runs, not a sum.
func HostTotals() HostStats {
	return HostStats{
		Dispatches: hostDispatches.Load(),
		Delivered:  hostDelivered.Load(),
		PeakQueue:  hostPeakQueue.Load(),
	}
}

// HostStats returns this cluster's host-side counters. Stable only
// after Run returns.
func (c *Cluster) HostStats() HostStats { return c.host }

// foldHost publishes the cluster's counters into the process totals.
func (c *Cluster) foldHost() {
	hostDispatches.Add(c.host.Dispatches)
	hostDelivered.Add(c.host.Delivered)
	for {
		cur := hostPeakQueue.Load()
		if c.host.PeakQueue <= cur || hostPeakQueue.CompareAndSwap(cur, c.host.PeakQueue) {
			return
		}
	}
}
