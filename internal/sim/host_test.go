package sim

import (
	"testing"

	"repro/internal/stats"
)

// TestHostStats checks the host-side counters: a ping-pong run counts
// its deliveries and its peak queue depth, the per-cluster numbers fold
// into the process totals, and the counters never touch virtual time.
func TestHostStats(t *testing.T) {
	run := func() (*Cluster, Time) {
		c := New(Config{Procs: 2, Latency: 10 * Microsecond})
		var end Time
		err := c.Run(func(p *Proc) {
			const rounds = 5
			for i := 0; i < rounds; i++ {
				if p.ID() == 0 {
					p.Send(1, 1, nil, 8, stats.KindData)
					p.Recv(1, 2)
				} else {
					p.Recv(0, 1)
					p.Send(0, 2, nil, 8, stats.KindData)
				}
			}
			if p.ID() == 0 {
				end = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, end
	}

	before := HostTotals()
	c1, end1 := run()
	hs := c1.HostStats()
	if hs.Delivered != 10 {
		t.Errorf("Delivered = %d, want 10", hs.Delivered)
	}
	// Ping-pong keeps at most one message in flight.
	if hs.PeakQueue != 1 {
		t.Errorf("PeakQueue = %d, want 1", hs.PeakQueue)
	}
	if hs.Dispatches <= 0 {
		t.Errorf("Dispatches = %d, want > 0", hs.Dispatches)
	}
	after := HostTotals()
	if got := after.Delivered - before.Delivered; got != 10 {
		t.Errorf("global Delivered grew by %d, want 10", got)
	}
	if got := after.Dispatches - before.Dispatches; got != hs.Dispatches {
		t.Errorf("global Dispatches grew by %d, want %d", got, hs.Dispatches)
	}
	if after.PeakQueue < 1 {
		t.Errorf("global PeakQueue = %d, want >= 1", after.PeakQueue)
	}

	// Counting must not perturb the schedule: a second identical run
	// lands on the identical virtual end time.
	_, end2 := run()
	if end1 != end2 {
		t.Errorf("virtual end times differ: %v vs %v", end1, end2)
	}
}
