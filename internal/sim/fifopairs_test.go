package sim

import (
	"testing"

	"repro/internal/stats"
)

// sendBigThenSmall has proc 0 send a large message and then a tiny one
// to proc 1 back-to-back, and returns the delivery times observed by
// the receiver in *send* order plus the source order in which the
// receiver's wildcard Recv consumed them.
func sendBigThenSmall(t *testing.T, cfg Config) (bigDeliver, smallDeliver Time, firstTag int) {
	t.Helper()
	const big, small = 8192, 0
	c := New(cfg)
	if err := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, nil, big, stats.KindData)
			p.Send(1, 2, nil, small, stats.KindData)
			return
		}
		m := p.Recv(AnySrc, AnyTag)
		firstTag = m.Tag
		m2 := p.Recv(AnySrc, AnyTag)
		for _, mm := range []*Message{m, m2} {
			if mm.Tag == 1 {
				bigDeliver = mm.Deliver
			} else {
				smallDeliver = mm.Deliver
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return bigDeliver, smallDeliver, firstTag
}

// TestPairOvertakingDefault documents the hazard the FIFOPairs mode
// exists for: on the default infinite-capacity interconnect, a small
// message sent immediately after a large one to the same destination
// overtakes it (its serialization time is shorter than the gap the
// sender's SendOverhead leaves).
func TestPairOvertakingDefault(t *testing.T) {
	big, small, firstTag := sendBigThenSmall(t, testConfig(2))
	if small >= big {
		t.Fatalf("expected overtaking on the default config: small deliver %v, big deliver %v", small, big)
	}
	if firstTag != 2 {
		t.Errorf("wildcard Recv consumed tag %d first, want the overtaking small message (tag 2)", firstTag)
	}
}

// TestFIFOPairsNonOvertaking checks the opt-in guarantee: with
// Config.FIFOPairs set, the small message's delivery is clamped to the
// large one's, messages arrive in send order, and traffic counters are
// untouched.
func TestFIFOPairsNonOvertaking(t *testing.T) {
	cfg := testConfig(2)
	cfg.FIFOPairs = true
	big, small, firstTag := sendBigThenSmall(t, cfg)
	if small != big {
		t.Errorf("FIFOPairs: small message delivered at %v, want clamped to the big message's %v", small, big)
	}
	if firstTag != 1 {
		t.Errorf("FIFOPairs: wildcard Recv consumed tag %d first, want send order (tag 1)", firstTag)
	}

	// The big message itself is unaffected: identical delivery to the
	// default path (only would-be overtakers are clamped).
	bigDefault, _, _ := sendBigThenSmall(t, testConfig(2))
	if big != bigDefault {
		t.Errorf("FIFOPairs moved the first message: %v != default %v", big, bigDefault)
	}
}

// TestFIFOPairsScriptedPatternIdentity runs the reference mixed
// workload of the zero-config bit-identity test with FIFOPairs on: its
// per-pair traffic never overtakes (each round's sends are matched by
// receives before the next), so the mode must leave the schedule — end
// clocks and traffic — bit-identical.
func TestFIFOPairsScriptedPatternIdentity(t *testing.T) {
	base := testConfig(4)
	fifo := testConfig(4)
	fifo.FIFOPairs = true
	ends, msgs, bytes := scriptedPattern(t, base)
	fends, fmsgs, fbytes := scriptedPattern(t, fifo)
	if ends != fends {
		t.Errorf("FIFOPairs changed the scripted pattern's end clocks: %v != %v", fends, ends)
	}
	if msgs != fmsgs || bytes != fbytes {
		t.Errorf("FIFOPairs changed traffic: %d msgs/%d bytes != %d/%d", fmsgs, fbytes, msgs, bytes)
	}
}

// TestFIFOPairsIndependentPairs checks the guarantee is scoped to one
// (src, dst) pair: a message to a *different* destination is not
// delayed by another pair's large transfer.
func TestFIFOPairsIndependentPairs(t *testing.T) {
	cfg := testConfig(3)
	cfg.FIFOPairs = true
	const big, small = 8192, 0
	var smallDeliver Time
	c := New(cfg)
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, nil, big, stats.KindData)
			p.Send(2, 2, nil, small, stats.KindData)
		case 1:
			p.Recv(0, 1)
		case 2:
			smallDeliver = p.Recv(0, 2).Deliver
		}
	}); err != nil {
		t.Fatal(err)
	}
	// The small message left at clock 2*SendOverhead and pays only its
	// own wire time.
	want := 2*cfg.SendOverhead + cfg.Latency + Time(float64(small+cfg.HeaderBytes)*cfg.NanosPerByte)
	if smallDeliver != want {
		t.Errorf("cross-pair message delivered at %v, want uncontended %v", smallDeliver, want)
	}
}

// TestQueueAttributionByResourceAndKind pins the contention model's
// split queueing accounting: an out-link storm binds on QueueOut, a
// gather binds the root's incoming link on QueueIn, a disjoint-pair
// transfer under a 1-way backplane binds on QueueBackplane — and every
// delay is simultaneously attributed to the message's traffic category.
func TestQueueAttributionByResourceAndKind(t *testing.T) {
	// Out-link: one sender, two back-to-back data messages to distinct
	// nodes queue on the sender's outgoing link.
	c := New(contendedConfig(3, 0))
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, nil, 968, stats.KindData)
			p.Send(2, 1, nil, 968, stats.KindBarrier)
		default:
			p.Recv(0, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	total := st.TotalQueueNanos()
	if total == 0 {
		t.Fatal("expected out-link queueing")
	}
	if got := st.QueueResNanosOf(stats.QueueOut); got != total {
		t.Errorf("out-link delay = %d, want all of %d", got, total)
	}
	if got := st.QueueKindNanosOf(stats.KindBarrier); got != total {
		t.Errorf("kind split: barrier delay = %d, want %d (the queued message was the barrier one)", got, total)
	}
	if got := st.NodeQueueResNanos(0, stats.QueueOut); got != total {
		t.Errorf("node 0 out-link delay = %d, want %d", got, total)
	}

	// In-link: two senders to one root at the same virtual time; the
	// second binds on the root's incoming link.
	c = New(contendedConfig(3, 0))
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0, 1:
			p.Send(2, 1, nil, 968, stats.KindData)
		case 2:
			p.Recv(AnySrc, 1)
			p.Recv(AnySrc, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.TotalQueueNanos() == 0 || st.QueueResNanosOf(stats.QueueIn) != st.TotalQueueNanos() {
		t.Errorf("gather delay: in-link = %d, want all of %d", st.QueueResNanosOf(stats.QueueIn), st.TotalQueueNanos())
	}

	// Backplane: disjoint pairs under a 1-way backplane; the second
	// transfer binds on the backplane (its own NICs are idle).
	c = New(contendedConfig(4, 1))
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, nil, 968, stats.KindData)
		case 2:
			p.Send(3, 1, nil, 968, stats.KindData)
		case 1:
			p.Recv(0, 1)
		case 3:
			p.Recv(2, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.TotalQueueNanos() == 0 || st.QueueResNanosOf(stats.QueueBackplane) != st.TotalQueueNanos() {
		t.Errorf("backplane delay = %d, want all of %d", st.QueueResNanosOf(stats.QueueBackplane), st.TotalQueueNanos())
	}

	// The per-resource split always sums to the per-node totals.
	var resSum int64
	for _, r := range stats.AllQueueResources() {
		resSum += st.QueueResNanosOf(r)
	}
	if resSum != st.TotalQueueNanos() {
		t.Errorf("resource split sums to %d, want %d", resSum, st.TotalQueueNanos())
	}
}
