// Package sim implements a deterministic, conservative discrete-event
// simulator whose processes are ordinary goroutines with virtual clocks.
//
// The simulator stands in for the paper's 8-node IBM SP/2 (see DESIGN.md,
// substitution table). Each simulated processor runs real Go code on real
// data, but time is virtual: computation advances a processor's clock by
// explicitly charged amounts, and messages pay a configurable
// latency + size/bandwidth + software-overhead cost on the simulated
// interconnect.
//
// # Determinism
//
// Exactly one process executes at a time: the one with the minimum
// "effective" virtual time (ties broken by process id). A process blocked
// in Recv has effective time max(clock, earliest matching delivery); a
// ready process has its clock. Because the global minimum effective time
// is nondecreasing, any message consumed by a Recv is guaranteed to be the
// earliest-delivered match that will ever exist, so runs are
// bit-reproducible: identical virtual times, identical message orders,
// identical floating-point results.
//
// A running process is handed a "horizon" — the effective time of the
// next-best process. It may keep executing without rescheduling until its
// clock passes the horizon, which keeps scheduling overhead low without
// giving up determinism.
//
// # Contention
//
// By default links are infinite-capacity pipes: every message pays
// latency + size/bandwidth but concurrent transfers overlap perfectly.
// Setting Config.Nodes enables the serial-NIC contention model: the
// cluster's processes belong to Nodes physical nodes (process p lives on
// node p mod Nodes), and each node has one outgoing and one incoming
// link. A link transmits messages back-to-back in the order they reach
// it (FIFO per link), so concurrent sends through one NIC queue behind
// each other instead of overlapping. Config.BackplaneWays additionally
// bounds the switch backplane to that many concurrent full-rate
// transfers. Contention never reorders or drops messages — it only adds
// queueing delay — so the conservative scheduling argument above is
// unchanged: delivery times are fixed at send time, and queueing only
// pushes them later. Sends are processed in nondecreasing send-time
// order — a sender's clock never exceeds the minimum effective time of
// the other processes at the moment of a send, because each send
// tightens the sender's horizon to its own delivery time, the earliest
// instant the destination could act — so the link-busy bookkeeping is
// deterministic and FIFO in virtual time. See DESIGN.md, "Network
// contention".
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Time is virtual time in nanoseconds.
type Time int64

// Forever is a time later than any event.
const Forever Time = math.MaxInt64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a virtual duration to float seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// AnySrc and AnyTag are wildcards for Recv.
const (
	AnySrc = -1
	AnyTag = -1
)

// Message is a simulated network message.
type Message struct {
	Src, Dst int
	Tag      int
	Payload  any
	Bytes    int        // modeled wire size, including header
	Kind     stats.Kind // accounting category
	SendTime Time       // sender clock when the message left
	Deliver  Time       // arrival time at the destination
	Queued   Time       // time spent waiting for busy links (contention)
	seq      uint64     // global sequence number, for deterministic ties
}

// Config describes the simulated machine.
type Config struct {
	// Procs is the number of simulated processes. Runtimes typically
	// create 2N processes for an N-node machine: N application processes
	// and N request-server processes (see DESIGN.md on interrupt-driven
	// request servicing).
	Procs int

	// Latency is the one-way wire latency of the interconnect.
	Latency Time

	// NanosPerByte is the inverse bandwidth of a link (ns per byte).
	NanosPerByte float64

	// SendOverhead and RecvOverhead are the per-message software costs
	// charged to the sender and receiver CPUs.
	SendOverhead Time
	RecvOverhead Time

	// HeaderBytes is added to every message's payload size for transfer
	// time and accounting.
	HeaderBytes int

	// Nodes, when positive, enables the serial-NIC contention model:
	// the processes belong to Nodes physical nodes (process p on node
	// p mod Nodes; runtimes that pair an application process with a
	// request server per node get both mapped to the same node), and
	// each node's single outgoing and single incoming link transmit
	// messages back-to-back, FIFO per link. Sends between processes of
	// the same node are loopback and bypass the NIC. Zero keeps the
	// original infinite-capacity links, bit-for-bit.
	Nodes int

	// BackplaneWays, when positive, models the shared switch backplane
	// as sustaining at most that many concurrent full-rate transfers:
	// each message occupies the backplane for wireTime/BackplaneWays.
	// Zero models an ideal non-blocking crossbar.
	BackplaneWays int

	// FIFOPairs, when set, guarantees non-overtaking delivery within
	// each (src, dst) process pair, as the real PVMe/MPL transports did:
	// a message's delivery time is clamped to at least the delivery time
	// of the pair's previous message, so a small message sent after a
	// large one can no longer arrive first on the infinite-capacity
	// interconnect. Ties preserve send order (the receiver breaks equal
	// delivery times by send sequence). The default (off) reproduces the
	// historical schedule bit for bit.
	FIFOPairs bool

	// Stats receives per-message accounting. Optional.
	Stats *stats.Stats

	// Trace, when non-nil, receives observability events: a wait span
	// for every Recv clock jump (categorized by the received message's
	// kind, carrying the contention-queueing share) and a queueing span
	// for every message that waited for a busy link. Emission never
	// advances virtual time: a traced run's virtual times, message
	// counts and byte volumes are bit-identical to an untraced one.
	Trace *obs.Trace
}

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked // blocked in Recv
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Proc is a simulated process. All methods must be called only from the
// goroutine running the process body.
type Proc struct {
	id      int
	c       *Cluster
	clock   Time
	horizon Time
	state   procState
	inbox   []*Message
	waitSrc int
	waitTag int
	resume  chan Time
	err     any // recovered panic, if the body panicked
}

// Cluster is a set of simulated processes plus the scheduler state.
type Cluster struct {
	cfg   Config
	procs []*Proc
	yield chan int
	seq   uint64
	stats *stats.Stats

	// Contention state (Nodes > 0 or BackplaneWays > 0): the virtual
	// time at which each node's outgoing/incoming link and the shared
	// backplane finish their last accepted transfer. Monotone, because
	// sends are processed in nondecreasing send-time order.
	outFree []Time
	inFree  []Time
	bpFree  Time

	// FIFO-per-pair state (FIFOPairs): the delivery time of the last
	// message accepted for each (src, dst) pair, indexed src*Procs+dst.
	// Monotone per pair by construction.
	pairLast []Time

	// Host-side counters (see host.go). Plain ints: updates happen
	// either in the scheduler loop or in the single running process,
	// never concurrently. hostPending tracks the current total inbox
	// depth feeding host.PeakQueue.
	host        HostStats
	hostPending int64
}

// New creates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Procs <= 0 {
		panic("sim: Config.Procs must be positive")
	}
	st := cfg.Stats
	if st == nil {
		st = &stats.Stats{}
	}
	if cfg.Nodes < 0 || cfg.BackplaneWays < 0 {
		panic("sim: negative Config.Nodes or Config.BackplaneWays")
	}
	c := &Cluster{
		cfg:   cfg,
		yield: make(chan int),
		stats: st,
	}
	if cfg.Nodes > 0 {
		c.outFree = make([]Time, cfg.Nodes)
		c.inFree = make([]Time, cfg.Nodes)
	}
	if cfg.FIFOPairs {
		c.pairLast = make([]Time, cfg.Procs*cfg.Procs)
	}
	c.procs = make([]*Proc, cfg.Procs)
	for i := range c.procs {
		c.procs[i] = &Proc{
			id:      i,
			c:       c,
			resume:  make(chan Time),
			waitSrc: AnySrc,
			waitTag: AnyTag,
		}
	}
	return c
}

// Stats returns the cluster's statistics collector.
func (c *Cluster) Stats() *stats.Stats { return c.stats }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// TransferTime returns latency plus size-dependent wire time for a payload
// of the given size (header added automatically). It is the uncontended
// transfer cost; queueing delay under the contention model comes on top.
func (c *Cluster) TransferTime(payloadBytes int) Time {
	wire := payloadBytes + c.cfg.HeaderBytes
	return c.cfg.Latency + Time(float64(wire)*c.cfg.NanosPerByte)
}

// NodeOf maps a process id to its physical node under the contention
// model. Without one (Config.Nodes == 0) every process is its own node.
func (c *Cluster) NodeOf(proc int) int {
	if c.cfg.Nodes > 0 {
		return proc % c.cfg.Nodes
	}
	return proc
}

// DeadlockError reports that no process could make progress.
type DeadlockError struct {
	States []string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock: no runnable process\n  " + strings.Join(e.States, "\n  ")
}

// Run starts every process executing body and drives the scheduler until
// all processes finish. It returns a *DeadlockError if the processes
// deadlock. If a process body panics, Run re-panics with the same value
// after shutting down cleanly, so tests see the original failure.
func (c *Cluster) Run(body func(p *Proc)) error {
	defer c.foldHost()
	for _, p := range c.procs {
		go func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					p.err = r
				}
				p.state = stateDone
				c.yield <- p.id
			}()
			p.horizon = <-p.resume
			p.state = stateRunning
			body(p)
		}(p)
	}
	remaining := len(c.procs)
	for remaining > 0 {
		p := c.pick()
		if p == nil {
			// Unblock every goroutine so they do not leak, then report.
			states := make([]string, len(c.procs))
			for i, q := range c.procs {
				states[i] = fmt.Sprintf("proc %d: %s clock=%v wait=(src=%d,tag=%d) inbox=%d",
					i, q.state, q.clock, q.waitSrc, q.waitTag, len(q.inbox))
			}
			return &DeadlockError{States: states}
		}
		c.host.Dispatches++
		p.resume <- c.horizonFor(p)
		id := <-c.yield
		if c.procs[id].state == stateDone {
			remaining--
			if c.procs[id].err != nil {
				// Drain remaining procs is impossible mid-panic; report.
				panic(c.procs[id].err)
			}
		}
	}
	return nil
}

// effective returns the scheduling priority time of p, or Forever if p
// cannot run.
func (c *Cluster) effective(p *Proc) Time {
	switch p.state {
	case stateReady:
		return p.clock
	case stateBlocked:
		if m := p.minMatch(p.waitSrc, p.waitTag); m >= 0 {
			d := p.inbox[m].Deliver
			if d < p.clock {
				return p.clock
			}
			return d
		}
		return Forever
	default:
		return Forever
	}
}

// pick chooses the runnable process with minimum (effective, id).
func (c *Cluster) pick() *Proc {
	var best *Proc
	bestT := Forever
	for _, p := range c.procs {
		t := c.effective(p)
		if t == Forever {
			continue
		}
		if best == nil || t < bestT {
			best, bestT = p, t
		}
	}
	return best
}

// horizonFor computes the second-best effective time: the chosen process
// may run freely while its clock does not exceed this value.
func (c *Cluster) horizonFor(chosen *Proc) Time {
	h := Forever
	for _, p := range c.procs {
		if p == chosen {
			continue
		}
		if t := c.effective(p); t < h {
			h = t
		}
	}
	return h
}

// yieldTo hands control back to the scheduler with the given state and
// waits to be rescheduled.
func (p *Proc) yieldTo(s procState) {
	p.state = s
	p.c.yield <- p.id
	p.horizon = <-p.resume
	p.state = stateRunning
}

// ID returns the process id in [0, Config.Procs).
func (p *Proc) ID() int { return p.id }

// N returns the total number of simulated processes.
func (p *Proc) N() int { return len(p.c.procs) }

// Cluster returns the owning cluster.
func (p *Proc) Cluster() *Cluster { return p.c }

// Now returns the process's virtual clock.
func (p *Proc) Now() Time { return p.clock }

// Advance charges d of virtual compute time to the process.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.clock += d
	if p.clock > p.horizon {
		p.yieldTo(stateReady)
	}
}

// AdvanceTo moves the clock forward to at least t.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.clock {
		p.Advance(t - p.clock)
	}
}

// Send transmits a message to process dst. The sender is charged
// SendOverhead; the message arrives at
// sendTime + Latency + bytes*NanosPerByte. Self-sends are forbidden:
// runtimes service local requests inline (a function call, not a message).
func (p *Proc) Send(dst, tag int, payload any, payloadBytes int, kind stats.Kind) {
	if dst == p.id {
		panic("sim: self-send; handle local requests inline")
	}
	if dst < 0 || dst >= len(p.c.procs) {
		panic(fmt.Sprintf("sim: send to invalid proc %d", dst))
	}
	p.Advance(p.c.cfg.SendOverhead)
	c := p.c
	wire := payloadBytes + c.cfg.HeaderBytes
	wireT := Time(float64(wire) * c.cfg.NanosPerByte)
	start, queued, binder := c.admit(p.id, dst, wireT)
	deliver := start + c.cfg.Latency + wireT
	if c.cfg.FIFOPairs {
		// Non-overtaking within the (src, dst) pair: never deliver
		// before the pair's previous message. Only this process's own
		// earlier sends touch the pair slot, so the clamp is
		// deterministic without any extra scheduling constraint, and
		// delivery times stay monotone per pair.
		pair := p.id*len(c.procs) + dst
		if c.pairLast[pair] > deliver {
			deliver = c.pairLast[pair]
		}
		c.pairLast[pair] = deliver
	}
	c.seq++
	m := &Message{
		Src:      p.id,
		Dst:      dst,
		Tag:      tag,
		Payload:  payload,
		Bytes:    wire,
		Kind:     kind,
		SendTime: p.clock,
		Deliver:  deliver,
		Queued:   queued,
		seq:      c.seq,
	}
	c.procs[dst].inbox = append(c.procs[dst].inbox, m)
	c.hostPending++
	if c.hostPending > c.host.PeakQueue {
		c.host.PeakQueue = c.hostPending
	}
	c.stats.Record(kind, wire)
	if queued > 0 {
		c.stats.RecordQueue(c.NodeOf(p.id), int64(queued), binder, kind)
		c.cfg.Trace.Span(obs.EvQueue, p.id, int64(p.clock), int64(queued), kind, -1, int64(binder))
	}
	// Keep the horizon honest under contention: this send may let dst
	// act as early as m.Deliver, but the horizon handed to this process
	// predates the send. Without tightening it, the sender could keep
	// executing past that time and admit *later* sends to the links
	// first, breaking the nondecreasing-send-time order the link
	// bookkeeping's FIFO-per-link property rests on. The tightening is
	// gated on the contention model because the extra yields reorder
	// same-virtual-time interleavings (runtimes share per-node state
	// between application and server processes), and the zero-value
	// configuration must reproduce the historical schedule bit for bit.
	if (c.cfg.Nodes > 0 || c.cfg.BackplaneWays > 0) && m.Deliver < p.horizon {
		p.horizon = m.Deliver
	}
}

// admit pushes a wireT-long transfer from proc src to proc dst through
// the contention model at the sender's current clock. It returns the
// time the transfer begins occupying the wire (== the sender's clock
// when contention modeling is off or no resource is busy), the queueing
// delay, and the binding resource — the one whose busy-until time set
// the start (meaningful only when queued > 0; on ties the earliest
// resource in path order out, in, backplane binds) — and marks the
// sender's outgoing link, the receiver's incoming link and the
// backplane busy for the transfer.
//
// The model is cut-through, in the spirit of the SP/2's wormhole-routed
// two-level crossbar: once every resource on the path is free the
// message streams through all of them simultaneously, paying its
// serialization time wireT exactly once (so the uncontended delivery
// time is bit-identical to the infinite-capacity model). Each link is
// FIFO: because sends are processed in nondecreasing send-time order,
// busy-until times only move forward and messages through one link
// transmit back-to-back in send order.
func (c *Cluster) admit(src, dst int, wireT Time) (start, queued Time, binder stats.QueueResource) {
	start = c.procs[src].clock
	binder = stats.QueueOut
	nicOn := c.cfg.Nodes > 0
	var sn, dn int
	if nicOn {
		sn, dn = src%c.cfg.Nodes, dst%c.cfg.Nodes
		if sn == dn {
			// Loopback between processes of one node (e.g. an
			// application process and its own request server) does not
			// cross the NIC or the switch.
			return start, 0, binder
		}
		if c.outFree[sn] > start {
			start = c.outFree[sn]
			binder = stats.QueueOut
		}
		if c.inFree[dn] > start {
			start = c.inFree[dn]
			binder = stats.QueueIn
		}
	}
	if c.cfg.BackplaneWays > 0 && c.bpFree > start {
		start = c.bpFree
		binder = stats.QueueBackplane
	}
	if nicOn {
		c.outFree[sn] = start + wireT
		c.inFree[dn] = start + wireT
	}
	if c.cfg.BackplaneWays > 0 {
		c.bpFree = start + wireT/Time(c.cfg.BackplaneWays)
	}
	return start, start - c.procs[src].clock, binder
}

// minMatch returns the index of the earliest-delivered message matching
// (src, tag), or -1. Ties are broken by send sequence number.
func (p *Proc) minMatch(src, tag int) int {
	best := -1
	for i, m := range p.inbox {
		if src != AnySrc && m.Src != src {
			continue
		}
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		if best < 0 || m.Deliver < p.inbox[best].Deliver ||
			(m.Deliver == p.inbox[best].Deliver && m.seq < p.inbox[best].seq) {
			best = i
		}
	}
	return best
}

// Recv blocks until a message matching (src, tag) is available and safe to
// consume, removes it from the inbox, charges RecvOverhead, and returns
// it. Use AnySrc / AnyTag as wildcards.
func (p *Proc) Recv(src, tag int) *Message {
	for {
		if i := p.minMatch(src, tag); i >= 0 {
			m := p.inbox[i]
			// Safe to consume only if no other process could still send
			// an earlier-delivered match. All other processes sit at
			// effective time >= horizon, and any message they send will
			// deliver strictly after that, so a match delivered at or
			// before the horizon is final.
			if m.Deliver <= p.horizon {
				p.inbox = append(p.inbox[:i], p.inbox[i+1:]...)
				p.c.hostPending--
				p.c.host.Delivered++
				if m.Deliver > p.clock {
					// The clock jump is the process's idle wait for this
					// message: the fundamental stall the per-node time
					// attribution is built from. The contention-queueing
					// share rides along (clamped: delivery pipelining can
					// hide part of the queueing behind the wait).
					if tr := p.c.cfg.Trace; tr != nil {
						wait := int64(m.Deliver - p.clock)
						q := int64(m.Queued)
						if q > wait {
							q = wait
						}
						tr.Span(obs.EvWait, p.id, int64(p.clock), wait, m.Kind, -1, q)
					}
					p.clock = m.Deliver
				}
				p.Advance(p.c.cfg.RecvOverhead)
				return m
			}
		}
		p.waitSrc, p.waitTag = src, tag
		p.yieldTo(stateBlocked)
	}
}

// Pending reports whether a message matching (src, tag) has already been
// *sent*, regardless of virtual delivery time. It does not advance time.
// Useful for draining inboxes at shutdown.
func (p *Proc) Pending(src, tag int) bool { return p.minMatch(src, tag) >= 0 }

// Yield gives other processes at the same virtual time a chance to run.
// It is a scheduling hint only and does not advance the clock.
func (p *Proc) Yield() { p.yieldTo(stateReady) }

// DumpInbox formats the pending messages for debugging.
func (p *Proc) DumpInbox() string {
	msgs := make([]string, len(p.inbox))
	idx := make([]int, len(p.inbox))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.inbox[idx[a]].seq < p.inbox[idx[b]].seq })
	for i, j := range idx {
		m := p.inbox[j]
		msgs[i] = fmt.Sprintf("{src=%d tag=%d bytes=%d deliver=%v}", m.Src, m.Tag, m.Bytes, m.Deliver)
	}
	return strings.Join(msgs, " ")
}
