package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func testConfig(n int) Config {
	return Config{
		Procs:        n,
		Latency:      40 * Microsecond,
		NanosPerByte: 28.6,
		SendOverhead: 15 * Microsecond,
		RecvOverhead: 15 * Microsecond,
		HeaderBytes:  32,
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New(testConfig(1))
	var end Time
	if err := c.Run(func(p *Proc) {
		p.Advance(5 * Microsecond)
		p.Advance(10 * Microsecond)
		p.AdvanceTo(100 * Microsecond)
		p.AdvanceTo(50 * Microsecond) // no-op: earlier than now
		end = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if end != 100*Microsecond {
		t.Fatalf("clock = %v, want 100µs", end)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := New(testConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Advance")
		}
	}()
	_ = c.Run(func(p *Proc) { p.Advance(-1) })
}

func TestSelfSendPanics(t *testing.T) {
	c := New(testConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-send")
		}
	}()
	_ = c.Run(func(p *Proc) { p.Send(0, 1, nil, 0, stats.KindData) })
}

func TestPingPongTiming(t *testing.T) {
	cfg := testConfig(2)
	c := New(cfg)
	var t0Recv, t1Recv Time
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 7, "ping", 100, stats.KindData)
			m := p.Recv(1, 8)
			if m.Payload.(string) != "pong" {
				t.Errorf("bad payload %v", m.Payload)
			}
			t0Recv = p.Now()
		case 1:
			p.Recv(0, 7)
			t1Recv = p.Now()
			p.Send(0, 8, "pong", 100, stats.KindData)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// One-way: send overhead + latency + (100+32)*28.6ns + recv overhead.
	oneWay := cfg.SendOverhead + cfg.Latency + Time(float64(132)*cfg.NanosPerByte) + cfg.RecvOverhead
	if t1Recv != oneWay {
		t.Errorf("receiver clock = %v, want %v", t1Recv, oneWay)
	}
	if t0Recv != 2*oneWay {
		t.Errorf("round trip clock = %v, want %v", t0Recv, 2*oneWay)
	}
}

func TestRecvClampsForwardOnly(t *testing.T) {
	// A receiver whose clock is already beyond the delivery time must not
	// travel backwards.
	c := New(testConfig(2))
	var got Time
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, nil, 0, stats.KindData)
		case 1:
			p.Advance(Second) // way past delivery
			p.Recv(0, 1)
			got = p.Now()
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := Second + testConfig(2).RecvOverhead
	if got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestMessagesDeliveredInTimestampOrder(t *testing.T) {
	// Two senders at different virtual times; the receiver must see the
	// earlier message first even though the later sender's goroutine may
	// run first in real time.
	c := New(testConfig(3))
	var order []int
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Advance(10 * Millisecond)
			p.Send(2, 1, nil, 0, stats.KindData)
		case 1:
			p.Advance(1 * Millisecond)
			p.Send(2, 1, nil, 0, stats.KindData)
		case 2:
			a := p.Recv(AnySrc, 1)
			b := p.Recv(AnySrc, 1)
			order = []int{a.Src, b.Src}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("delivery order = %v, want [1 0]", order)
	}
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	c := New(testConfig(3))
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(2, 5, "a", 0, stats.KindData)
		case 1:
			p.Send(2, 6, "b", 0, stats.KindData)
		case 2:
			// Ask for tag 6 first even though tag 5 arrives earlier.
			m := p.Recv(AnySrc, 6)
			if m.Payload.(string) != "b" {
				t.Errorf("tag match failed: %v", m.Payload)
			}
			m = p.Recv(0, AnyTag)
			if m.Payload.(string) != "a" {
				t.Errorf("src match failed: %v", m.Payload)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	c := New(testConfig(2))
	err := c.Run(func(p *Proc) {
		p.Recv(AnySrc, AnyTag) // everyone waits forever
	})
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestStatsRecorded(t *testing.T) {
	c := New(testConfig(2))
	if err := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, nil, 1000, stats.KindData)
			p.Send(1, 1, nil, 500, stats.KindBarrier)
			p.Send(1, 2, nil, 9, stats.KindShutdown)
		} else {
			p.Recv(0, 1)
			p.Recv(0, 1)
			p.Recv(0, 2)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if got := s.TotalMsgs(); got != 2 {
		t.Errorf("TotalMsgs = %d, want 2 (shutdown excluded)", got)
	}
	if got := s.TotalBytes(); got != 1000+500+2*32 {
		t.Errorf("TotalBytes = %d, want %d", got, 1000+500+2*32)
	}
	if s.MsgsOf(stats.KindShutdown) != 1 {
		t.Errorf("shutdown msgs = %d, want 1", s.MsgsOf(stats.KindShutdown))
	}
}

// barrierVia implements a flat barrier over raw messages, used both as a
// stress test and as the reference for the message-count formula
// 2*(n-1) that the paper quotes for TreadMarks barriers.
func barrierVia(p *Proc, tag int) {
	n := p.N()
	if p.ID() == 0 {
		for i := 1; i < n; i++ {
			p.Recv(AnySrc, tag)
		}
		for i := 1; i < n; i++ {
			p.Send(i, tag+1, nil, 0, stats.KindBarrier)
		}
	} else {
		p.Send(0, tag, nil, 0, stats.KindBarrier)
		p.Recv(0, tag+1)
	}
}

func TestBarrierMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c := New(testConfig(n))
		if err := c.Run(func(p *Proc) { barrierVia(p, 10) }); err != nil {
			t.Fatal(err)
		}
		want := int64(2 * (n - 1))
		if got := c.Stats().TotalMsgs(); got != want {
			t.Errorf("n=%d: barrier msgs = %d, want %d", n, got, want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(testConfig(4))
	ends := make([]Time, 4)
	if err := c.Run(func(p *Proc) {
		p.Advance(Time(p.ID()) * Millisecond) // skewed arrival
		barrierVia(p, 10)
		ends[p.ID()] = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	// After the barrier every proc must be at or beyond the slowest
	// arrival (3ms).
	for i, e := range ends {
		if e < 3*Millisecond {
			t.Errorf("proc %d ended at %v, before slowest arrival", i, e)
		}
	}
}

// TestDeterminism runs a contended workload twice and demands identical
// virtual end times, message totals and per-proc receive orders.
func TestDeterminism(t *testing.T) {
	run := func() (Time, int64, string) {
		c := New(testConfig(8))
		var end Time
		trace := ""
		if err := c.Run(func(p *Proc) {
			n := p.N()
			// Everyone sends to everyone with data-dependent sizes, then
			// a barrier, twice.
			for round := 0; round < 2; round++ {
				for d := 0; d < n; d++ {
					if d != p.ID() {
						p.Send(d, 100+round, nil, 64*(p.ID()+1), stats.KindData)
					}
				}
				for i := 0; i < n-1; i++ {
					m := p.Recv(AnySrc, 100+round)
					if p.ID() == 0 {
						trace += fmt.Sprintf("%d,", m.Src)
					}
				}
				barrierVia(p, 200+10*round)
			}
			if p.ID() == 0 {
				end = p.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end, c.Stats().TotalMsgs(), trace
	}
	e1, m1, tr1 := run()
	e2, m2, tr2 := run()
	if e1 != e2 || m1 != m2 || tr1 != tr2 {
		t.Errorf("nondeterministic: (%v,%d,%q) vs (%v,%d,%q)", e1, m1, tr1, e2, m2, tr2)
	}
}

// TestCausality uses testing/quick to check that, for random compute
// skews, a receiver never observes a message whose delivery time exceeds
// its own post-receive clock, and sender timestamps are consistent.
func TestCausality(t *testing.T) {
	f := func(skews [6]uint16) bool {
		c := New(testConfig(3))
		ok := true
		err := c.Run(func(p *Proc) {
			switch p.ID() {
			case 0, 1:
				for r := 0; r < 3; r++ {
					p.Advance(Time(skews[p.ID()*3+r]) * Microsecond)
					p.Send(2, 1, nil, int(skews[p.ID()*3+r])%256, stats.KindData)
				}
			case 2:
				var last Time
				for i := 0; i < 6; i++ {
					m := p.Recv(AnySrc, 1)
					if m.Deliver < last {
						ok = false // consumed out of delivery order
					}
					last = m.Deliver
					if p.Now() < m.Deliver {
						ok = false // clock behind the message it consumed
					}
					if m.Deliver <= m.SendTime {
						ok = false // zero/negative transit
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	c := New(testConfig(2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	_ = c.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Recv(AnySrc, AnyTag)
	})
}

func TestTransferTime(t *testing.T) {
	c := New(testConfig(2))
	got := c.TransferTime(4096)
	bytes := 4096 + 32
	want := 40*Microsecond + Time(float64(bytes)*28.6)
	if got != want {
		t.Errorf("TransferTime(4096) = %v, want %v", got, want)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ns",
		2 * Microsecond: "2.000µs",
		3 * Millisecond: "3.000ms",
		2 * Second:      "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestYieldDoesNotAdvanceClock(t *testing.T) {
	c := New(testConfig(2))
	if err := c.Run(func(p *Proc) {
		before := p.Now()
		p.Yield()
		if p.Now() != before {
			t.Errorf("Yield advanced clock from %v to %v", before, p.Now())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	const n, rounds = 16, 50
	c := New(testConfig(n))
	if err := c.Run(func(p *Proc) {
		// Token ring: proc 0 injects hop 1; every proc receives exactly
		// `rounds` tokens and forwards all but the final hop.
		next := (p.ID() + 1) % n
		if p.ID() == 0 {
			p.Send(next, 1, 1, 8, stats.KindData)
		}
		for i := 0; i < rounds; i++ {
			m := p.Recv(AnySrc, 1)
			hops := m.Payload.(int)
			if hops < rounds*n {
				p.Send(next, 1, hops+1, 8, stats.KindData)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().MsgsOf(stats.KindData); got != rounds*n {
		t.Errorf("ring hops = %d, want %d", got, rounds*n)
	}
}

func TestProcStateStringAndAccessors(t *testing.T) {
	for s, want := range map[procState]string{
		stateReady: "ready", stateRunning: "running",
		stateBlocked: "blocked", stateDone: "done", procState(99): "?",
	} {
		if got := s.String(); got != want {
			t.Errorf("procState(%d).String() = %q, want %q", s, got, want)
		}
	}
	cfg := testConfig(2)
	c := New(cfg)
	if c.Config().Procs != 2 {
		t.Errorf("Config().Procs = %d", c.Config().Procs)
	}
	if err := c.Run(func(p *Proc) {
		if p.Cluster() != c {
			t.Error("Proc.Cluster mismatch")
		}
		if p.N() != 2 {
			t.Errorf("Proc.N = %d", p.N())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	c := New(testConfig(2))
	err := c.Run(func(p *Proc) { p.Recv(AnySrc, 7) })
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "proc 0") {
		t.Errorf("unhelpful deadlock message: %q", msg)
	}
}

func TestPendingAndDumpInbox(t *testing.T) {
	c := New(testConfig(2))
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 9, nil, 16, stats.KindData)
		case 1:
			p.Advance(10 * Millisecond) // let the message be sent
			if !p.Pending(0, 9) {
				t.Error("Pending(0,9) = false with a message in flight")
			}
			if p.Pending(0, 8) {
				t.Error("Pending(0,8) = true for a tag never sent")
			}
			if dump := p.DumpInbox(); !strings.Contains(dump, "tag=9") {
				t.Errorf("DumpInbox = %q", dump)
			}
			p.Recv(0, 9)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
