package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// contendedConfig is testConfig with the serial-NIC model on: one proc
// per node, plus an optional backplane bound.
func contendedConfig(n, ways int) Config {
	cfg := testConfig(n)
	cfg.Nodes = n
	cfg.BackplaneWays = ways
	return cfg
}

// scriptedPattern runs a fixed mixed workload — skewed all-to-all
// exchanges with per-proc message sizes, interleaved with flat barriers
// — and returns the per-proc end clocks. It is the reference pattern for
// the zero-config bit-identity test.
func scriptedPattern(t *testing.T, cfg Config) ([4]Time, int64, int64) {
	t.Helper()
	c := New(cfg)
	var ends [4]Time
	if err := c.Run(func(p *Proc) {
		n := p.N()
		for r := 0; r < 3; r++ {
			p.Advance(Time(p.ID()*7+r) * Microsecond)
			for d := 0; d < n; d++ {
				if d != p.ID() {
					p.Send(d, 50+r, nil, 128*(p.ID()+1)+r, stats.KindData)
				}
			}
			for i := 0; i < n-1; i++ {
				p.Recv(AnySrc, 50+r)
			}
			barrierVia(p, 80+2*r)
		}
		ends[p.ID()] = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	return ends, c.Stats().TotalMsgs(), c.Stats().TotalBytes()
}

// TestZeroConfigBitIdentity pins the scripted pattern's virtual times
// against golden values captured before the contention model existed:
// a zero-value contention config must reproduce the infinite-capacity
// model bit for bit.
func TestZeroConfigBitIdentity(t *testing.T) {
	goldenEnds := [4]Time{900472, 926387, 941387, 956387}
	const goldenMsgs, goldenBytes = 54, 13284

	ends, msgs, bytes := scriptedPattern(t, testConfig(4))
	if ends != goldenEnds {
		t.Errorf("zero-config end clocks = %v, want golden %v", ends, goldenEnds)
	}
	if msgs != goldenMsgs || bytes != goldenBytes {
		t.Errorf("zero-config traffic = %d msgs/%d bytes, want %d/%d",
			msgs, bytes, goldenMsgs, goldenBytes)
	}

	// And the contended run of the same pattern must be strictly slower
	// on at least one proc and never faster on any.
	cends, cmsgs, cbytes := scriptedPattern(t, contendedConfig(4, 1))
	if cmsgs != goldenMsgs || cbytes != goldenBytes {
		t.Errorf("contention changed traffic: %d msgs/%d bytes, want %d/%d",
			cmsgs, cbytes, goldenMsgs, goldenBytes)
	}
	slower := false
	for i := range cends {
		if cends[i] < ends[i] {
			t.Errorf("proc %d finished earlier under contention: %v < %v", i, cends[i], ends[i])
		}
		if cends[i] > ends[i] {
			slower = true
		}
	}
	if !slower {
		t.Error("contention had no effect on the scripted pattern")
	}
}

// TestContentionFIFOPerLink checks back-to-back serialization on a
// single outgoing link: three equal-size messages from one sender reach
// the receiver exactly one serialization time apart, in send order, and
// the queueing delays grow by a full wire time per message.
func TestContentionFIFOPerLink(t *testing.T) {
	cfg := contendedConfig(2, 0)
	const payload = 968 // wire = 1000 bytes -> wireT = 28600ns
	wireT := Time(float64(payload+cfg.HeaderBytes) * cfg.NanosPerByte)
	c := New(cfg)
	var deliver [3]Time
	var queued [3]Time
	if err := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			for k := 0; k < 3; k++ {
				p.Send(1, k, nil, payload, stats.KindData)
			}
			return
		}
		for k := 0; k < 3; k++ {
			m := p.Recv(0, k)
			deliver[k], queued[k] = m.Deliver, m.Queued
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Send k leaves the sender at (k+1)*SendOverhead; the link finishes
	// message k-1 only wireT after it started, so from message 1 on the
	// spacing is exactly wireT (back-to-back) and the queueing delay
	// grows by wireT - SendOverhead per message.
	for k := 1; k < 3; k++ {
		if got := deliver[k] - deliver[k-1]; got != wireT {
			t.Errorf("delivery spacing %d = %v, want wireT %v", k, got, wireT)
		}
	}
	wantQ := [3]Time{0,
		wireT - cfg.SendOverhead,
		2*wireT - 2*cfg.SendOverhead}
	if queued != wantQ {
		t.Errorf("queueing delays = %v, want %v", queued, wantQ)
	}
	if got := c.Stats().TotalQueueNanos(); got != int64(wantQ[1]+wantQ[2]) {
		t.Errorf("TotalQueueNanos = %d, want %d", got, int64(wantQ[1]+wantQ[2]))
	}
	if got := c.Stats().QueueNanosOf(0); got != int64(wantQ[1]+wantQ[2]) {
		t.Errorf("node 0 queue delay = %d, want %d (delay charged to the sender's node)", got, int64(wantQ[1]+wantQ[2]))
	}
}

// TestContentionIncomingLinkSerializes checks the gather side: two
// senders transmitting to one receiver at the same virtual time queue on
// the receiver's incoming link rather than overlapping.
func TestContentionIncomingLinkSerializes(t *testing.T) {
	cfg := contendedConfig(3, 0)
	const payload = 968
	wireT := Time(float64(payload+cfg.HeaderBytes) * cfg.NanosPerByte)
	c := New(cfg)
	var deliver [2]Time
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0, 1:
			p.Send(2, 1, nil, payload, stats.KindData)
		case 2:
			for k := 0; k < 2; k++ {
				m := p.Recv(AnySrc, 1)
				if m.Src != k {
					t.Errorf("arrival %d came from %d, want FIFO by send order", k, m.Src)
				}
				deliver[k] = m.Deliver
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := deliver[1] - deliver[0]; got != wireT {
		t.Errorf("incoming-link spacing = %v, want %v", got, wireT)
	}
}

// TestBackplaneCapacity checks the shared-switch bound: transfers
// between disjoint node pairs don't touch each other's NICs, but with
// BackplaneWays=1 the second pays the first's full serialization time.
func TestBackplaneCapacity(t *testing.T) {
	const payload = 968
	for _, ways := range []int{0, 1, 2} {
		cfg := contendedConfig(4, ways)
		wireT := Time(float64(payload+cfg.HeaderBytes) * cfg.NanosPerByte)
		c := New(cfg)
		var deliver [2]Time
		if err := c.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Send(1, 1, nil, payload, stats.KindData)
			case 2:
				p.Send(3, 1, nil, payload, stats.KindData)
			case 1:
				deliver[0] = p.Recv(0, 1).Deliver
			case 3:
				deliver[1] = p.Recv(2, 1).Deliver
			}
		}); err != nil {
			t.Fatal(err)
		}
		var want Time
		if ways > 0 {
			want = wireT / Time(ways) // backplane occupancy of msg 1
		}
		if got := deliver[1] - deliver[0]; got != want {
			t.Errorf("ways=%d: disjoint-pair spacing = %v, want %v", ways, got, want)
		}
	}
}

// TestLoopbackBypassesNIC checks that messages between two processes of
// the same physical node (an application process and its request
// server) never queue, even while the node's NIC is saturated.
func TestLoopbackBypassesNIC(t *testing.T) {
	// 4 procs on 2 nodes: procs 0,2 are node 0; procs 1,3 are node 1.
	cfg := contendedConfig(4, 0)
	cfg.Nodes = 2
	c := New(cfg)
	if err := c.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			// Saturate node 0's outgoing link toward node 1...
			for k := 0; k < 4; k++ {
				p.Send(1, 1, nil, 4096, stats.KindData)
			}
			// ...then message the same-node proc 2: must not queue.
			p.Send(2, 2, nil, 4096, stats.KindData)
		case 1:
			for k := 0; k < 4; k++ {
				p.Recv(0, 1)
			}
		case 2:
			if m := p.Recv(0, 2); m.Queued != 0 {
				t.Errorf("loopback message queued %v behind the NIC", m.Queued)
			}
		case 3:
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestContentionMessageConservation floods a contended cluster with a
// seeded random all-to-all pattern and checks that every message sent is
// received exactly once, per (src, dst) pair.
func TestContentionMessageConservation(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		const rounds = 20
		c := New(contendedConfig(n, 2))
		rng := rand.New(rand.NewSource(int64(41 + n)))
		sizes := make([][]int, n) // per proc, per round
		for i := range sizes {
			sizes[i] = make([]int, rounds)
			for r := range sizes[i] {
				sizes[i][r] = rng.Intn(4096)
			}
		}
		recvCount := make([][]int, n) // [dst][src]
		for i := range recvCount {
			recvCount[i] = make([]int, n)
		}
		if err := c.Run(func(p *Proc) {
			for r := 0; r < rounds; r++ {
				for d := 0; d < n; d++ {
					if d != p.ID() {
						p.Send(d, 7, nil, sizes[p.ID()][r], stats.KindData)
					}
				}
				for i := 0; i < n-1; i++ {
					m := p.Recv(AnySrc, 7)
					recvCount[p.ID()][m.Src]++
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		for dst := range recvCount {
			for src, got := range recvCount[dst] {
				want := rounds
				if src == dst {
					want = 0
				}
				if got != want {
					t.Errorf("n=%d: %d->%d received %d, want %d", n, src, dst, got, want)
				}
			}
		}
		if got, want := c.Stats().TotalMsgs(), int64(rounds*n*(n-1)); got != want {
			t.Errorf("n=%d: total msgs = %d, want %d", n, got, want)
		}
	}
}

// TestContentionDeadlockFreeStress drives randomized (seeded) send
// patterns at 2-8 procs under every contention configuration and
// demands that each run completes — delivery times that depend on queue
// state must never wedge the conservative scheduler — and that repeated
// runs are bit-identical.
func TestContentionDeadlockFreeStress(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for _, ways := range []int{0, 1, 4} {
			run := func() (Time, int64) {
				c := New(contendedConfig(n, ways))
				rng := rand.New(rand.NewSource(int64(1000*n + ways)))
				const rounds = 12
				// Pre-draw all random choices so every proc's behavior is a
				// pure function of (proc, round) and the two runs match.
				skew := make([][]Time, n)
				size := make([][]int, n)
				for i := 0; i < n; i++ {
					skew[i] = make([]Time, rounds)
					size[i] = make([]int, rounds)
					for r := 0; r < rounds; r++ {
						skew[i][r] = Time(rng.Intn(2000)) * Microsecond
						size[i][r] = rng.Intn(8192)
					}
				}
				var end Time
				if err := c.Run(func(p *Proc) {
					for r := 0; r < rounds; r++ {
						p.Advance(skew[p.ID()][r])
						// Ring exchange: send to the next proc, receive
						// from the previous; deadlock-free by construction.
						next := (p.ID() + 1) % n
						prev := (p.ID() + n - 1) % n
						p.Send(next, 30+r, nil, size[p.ID()][r], stats.KindData)
						p.Recv(prev, 30+r)
						// All-to-all burst every third round: the storm
						// pattern that exercises deep link queues.
						if r%3 == 0 {
							for d := 0; d < n; d++ {
								if d != p.ID() {
									p.Send(d, 60+r, nil, size[d][r], stats.KindData)
								}
							}
							for i := 0; i < n-1; i++ {
								p.Recv(AnySrc, 60+r)
							}
						}
						barrierVia(p, 100+2*r)
					}
					if p.ID() == 0 {
						end = p.Now()
					}
				}); err != nil {
					t.Fatalf("n=%d ways=%d: %v", n, ways, err)
				}
				return end, c.Stats().TotalMsgs()
			}
			e1, m1 := run()
			e2, m2 := run()
			if e1 != e2 || m1 != m2 {
				t.Errorf("n=%d ways=%d nondeterministic: (%v,%d) vs (%v,%d)", n, ways, e1, m1, e2, m2)
			}
		}
	}
}

// TestContentionDelaysAreMonotone checks, on the stress pattern, two
// ordering properties the model guarantees: per-link busy times only
// move forward (no message is delivered while its link is still
// transmitting an earlier one), and contention never delivers earlier
// than the uncontended formula.
func TestContentionDelaysAreMonotone(t *testing.T) {
	cfg := contendedConfig(4, 1)
	c := New(cfg)
	type arrival struct{ deliver, sendTime Time }
	perLink := map[string][]arrival{} // "src->dst" node link
	if err := c.Run(func(p *Proc) {
		n := p.N()
		for r := 0; r < 5; r++ {
			for d := 0; d < n; d++ {
				if d != p.ID() {
					p.Send(d, 9, nil, 1024*(1+(p.ID()+r)%3), stats.KindData)
				}
			}
			for i := 0; i < n-1; i++ {
				m := p.Recv(AnySrc, 9)
				key := fmt.Sprintf("%d->%d", m.Src, m.Dst)
				perLink[key] = append(perLink[key], arrival{m.Deliver, m.SendTime})
				uncontended := m.SendTime + cfg.Latency + Time(float64(m.Bytes)*cfg.NanosPerByte)
				if m.Deliver < uncontended {
					t.Fatalf("%s delivered at %v, before uncontended %v", key, m.Deliver, uncontended)
				}
				if m.Deliver-uncontended != m.Queued {
					t.Fatalf("%s queued = %v, want deliver-uncontended = %v", key, m.Queued, m.Deliver-uncontended)
				}
			}
			barrierVia(p, 200+2*r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for key, as := range perLink {
		for i := 1; i < len(as); i++ {
			if as[i].deliver < as[i-1].deliver {
				t.Errorf("%s: deliveries out of order: %v then %v", key, as[i-1].deliver, as[i].deliver)
			}
		}
	}
}
