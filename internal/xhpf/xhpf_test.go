package xhpf

import (
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func newSys(n int) *System { return NewSystem(n, model.SP2()) }

func TestBlockOf(t *testing.T) {
	cases := []struct {
		p, nprocs, n, lo, hi int
	}{
		{0, 4, 100, 0, 25},
		{3, 4, 100, 75, 100},
		{3, 4, 10, 9, 10},
		{3, 4, 3, 3, 3},
		{0, 1, 7, 0, 7},
	}
	for _, c := range cases {
		lo, hi := BlockOf(c.p, c.nprocs, c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BlockOf(%d,%d,%d) = (%d,%d), want (%d,%d)", c.p, c.nprocs, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestOwnerOfInvertsBlockOf(t *testing.T) {
	for _, n := range []int{8, 100, 500, 501} {
		for i := 0; i < n; i++ {
			p := OwnerOf(i, 8, n)
			lo, hi := BlockOf(p, 8, n)
			if i < lo || i >= hi {
				t.Fatalf("OwnerOf(%d,8,%d)=%d but block=(%d,%d)", i, n, p, lo, hi)
			}
		}
	}
}

func TestBroadcastPartition(t *testing.T) {
	const n, size = 4, 100
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, size)
		lo, hi := x.Block(size)
		for i := lo; i < hi; i++ {
			arr[i] = float32(100*x.ID() + i)
		}
		BroadcastPartition(x, arr, size, 4)
		for i := 0; i < size; i++ {
			want := float32(100*OwnerOf(i, n, size) + i)
			if arr[i] != want {
				t.Errorf("proc %d: arr[%d] = %v, want %v", x.ID(), i, arr[i], want)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// n*(n-1) messages, full array shipped n-1 times.
	if got := sys.Stats().MsgsOf(stats.KindData); got != n*(n-1) {
		t.Errorf("msgs = %d, want %d", got, n*(n-1))
	}
	wantBytes := int64((n - 1) * size * 4) // payloads only
	gotPayload := sys.Stats().BytesOf(stats.KindData) - int64(n*(n-1)*32)
	if gotPayload != wantBytes {
		t.Errorf("payload bytes = %d, want %d", gotPayload, wantBytes)
	}
}

func TestExchangeHalo(t *testing.T) {
	const n, size = 4, 64
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, size)
		lo, hi := x.Block(size)
		for i := lo; i < hi; i++ {
			arr[i] = float32(i)
		}
		ExchangeHalo(x, arr, size, 2)
		if lo >= 2 {
			if arr[lo-1] != float32(lo-1) || arr[lo-2] != float32(lo-2) {
				t.Errorf("proc %d: lower halo wrong: %v %v", x.ID(), arr[lo-2], arr[lo-1])
			}
		}
		if hi+2 <= size {
			if arr[hi] != float32(hi) || arr[hi+1] != float32(hi+1) {
				t.Errorf("proc %d: upper halo wrong", x.ID())
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Interior boundaries: (n-1) boundaries * 2 directions.
	if got := sys.Stats().MsgsOf(stats.KindData); got != 2*(n-1) {
		t.Errorf("halo msgs = %d, want %d", got, 2*(n-1))
	}
}

func TestLoopSyncCount(t *testing.T) {
	const n = 8
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		for i := 0; i < 5; i++ {
			x.LoopSync()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 5*2*(n-1) {
		t.Errorf("sync msgs = %d, want %d", got, 5*2*(n-1))
	}
}

func TestAllReduce(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(x *XHPF) {
		out := AllReduceSum(x, []float64{float64(x.ID())})
		if out[0] != 28 {
			t.Errorf("proc %d: allreduce = %v, want 28", x.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionAllToAllTransposesBlocks(t *testing.T) {
	// 8x8 matrix, row-block distributed; transpose into column blocks.
	const n, dim = 4, 8
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		m := make([]float64, dim*dim)  // row-major, rows distributed
		tr := make([]float64, dim*dim) // transposed result
		rlo, rhi := x.Block(dim)
		for r := rlo; r < rhi; r++ {
			for c := 0; c < dim; c++ {
				m[r*dim+c] = float64(r*100 + c)
			}
		}
		// Sections for destination q: my rows' columns in q's block,
		// gathered densely for transmission.
		sectionsFor := func(q int) [][]float64 {
			qlo, qhi := BlockOf(q, n, dim)
			var secs [][]float64
			for r := rlo; r < rhi; r++ {
				secs = append(secs, m[r*dim+qlo:r*dim+qhi])
			}
			return secs
		}
		placeFor := func(q int) [][]float64 {
			qlo, qhi := BlockOf(q, n, dim)
			var secs [][]float64
			for r := qlo; r < qhi; r++ {
				// row r of m lands in column r of tr; my rows of tr are rlo..rhi
				sec := make([]float64, rhi-rlo)
				secs = append(secs, sec)
				_ = sec
				_ = r
			}
			return secs
		}
		_ = placeFor
		// Simpler check: count messages with 2-element sections.
		SectionAllToAll(x, 2, 8, sectionsFor, sectionsFor)
		_ = tr
	}); err != nil {
		t.Fatal(err)
	}
	// per proc: 3 dests * 2 rows * ceil(2/2)=1 msg per section... each
	// section is 2 elements, sectionLen=2 -> 1 msg per row per dest.
	want := int64(n * (n - 1) * 2)
	if got := sys.Stats().MsgsOf(stats.KindData); got != want {
		t.Errorf("msgs = %d, want %d", got, want)
	}
}

func TestBroadcastGatherOrderedParts(t *testing.T) {
	const n, m = 4, 2000 // m spans several 1024-element chunks
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		parts := make([][]float32, n)
		for q := range parts {
			parts[q] = make([]float32, m)
		}
		for i := range parts[x.ID()] {
			parts[x.ID()][i] = float32(100*x.ID() + i%7)
		}
		BroadcastGather(x, parts)
		for q := 0; q < n; q++ {
			for i := 0; i < m; i += 997 {
				want := float32(100*q + i%7)
				if parts[q][i] != want {
					t.Errorf("proc %d: parts[%d][%d] = %v, want %v", x.ID(), q, i, parts[q][i], want)
					return
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Everyone ships its whole buffer to everyone: n*(n-1)*ceil(m/chunk).
	chunks := (m + 1023) / 1024
	want := int64(n * (n - 1) * chunks)
	if got := sys.Stats().MsgsOf(stats.KindData); got != want {
		t.Errorf("gather msgs = %d, want %d", got, want)
	}
}

func TestXHPFBcastDeliversEverywhere(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		row := make([]float32, 64)
		if x.ID() == 2 {
			for i := range row {
				row[i] = 5
			}
		}
		Bcast(x, 2, row)
		if row[63] != 5 {
			t.Errorf("proc %d: bcast missed", x.ID())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceWithMax(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(x *XHPF) {
		out := AllReduceWith(x, []float64{float64(x.ID())},
			func(a, b float64) float64 { return max(a, b) })
		if out[0] != 7 {
			t.Errorf("proc %d: max = %v, want 7", x.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastBlocksRaggedRows(t *testing.T) {
	// Whole-row blocks over 10 rows of width 8, 4 procs: 3/3/3/1.
	const rows, width, n = 10, 8, 4
	sys := newSys(n)
	blockOf := func(q int) (int, int) {
		lo, hi := BlockOf(q, n, rows)
		return lo * width, hi * width
	}
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, rows*width)
		lo, hi := blockOf(x.ID())
		for i := lo; i < hi; i++ {
			arr[i] = float32(i)
		}
		BroadcastBlocks(x, arr, blockOf, 4)
		for i := 0; i < rows*width; i++ {
			if arr[i] != float32(i) {
				t.Errorf("proc %d: arr[%d] = %v", x.ID(), i, arr[i])
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundarySyncUntracked(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		x.BoundarySync()
		if x.NProcs() != 4 {
			t.Errorf("NProcs = %d", x.NProcs())
		}
		x.Advance(1000)
		_ = x.Now()
		_ = x.PVM()
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 0 {
		t.Errorf("boundary sync counted %d messages", got)
	}
}

// TestBroadcastChunkTailNoOvertake is the regression test for the
// chunk-overtaking bug: the simulated network does not guarantee
// non-overtaking delivery within a (src, dst) pair, so a broadcast
// block whose ragged tail chunk is tiny (here 36 elements after a full
// 1024-element chunk) used to arrive *before* its predecessor, and the
// shared-tag receive loop would install both chunks at the wrong
// offsets. Per-chunk tags fixed it; this pins the placement for every
// (full + tiny tail) block on an uncontended network, where the
// overtake window is widest.
func TestBroadcastChunkTailNoOvertake(t *testing.T) {
	const per = 1024 + 36 // one full 4 KB chunk + a 144-byte tail
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		n := x.NProcs()
		arr := make([]float32, n*per)
		lo, hi := x.ID()*per, (x.ID()+1)*per
		for i := lo; i < hi; i++ {
			arr[i] = float32(1000*x.ID() + i)
		}
		BroadcastBlocks(x, arr, func(q int) (int, int) { return q * per, (q + 1) * per }, 4)
		for q := 0; q < n; q++ {
			for i := q * per; i < (q+1)*per; i++ {
				if arr[i] != float32(1000*q+i) {
					t.Errorf("proc %d: arr[%d] = %v, want %v (chunk placement scrambled)",
						x.ID(), i, arr[i], float32(1000*q+i))
					return
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastPartitionRaggedTail covers the same overtake window in
// BroadcastPartition.
func TestBroadcastPartitionRaggedTail(t *testing.T) {
	const extent = 4 * (1024 + 36)
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, extent)
		lo, hi := x.Block(extent)
		for i := lo; i < hi; i++ {
			arr[i] = float32(7*x.ID() + i)
		}
		BroadcastPartition(x, arr, extent, 4)
		for q := 0; q < x.NProcs(); q++ {
			qlo, qhi := BlockOf(q, x.NProcs(), extent)
			for i := qlo; i < qhi; i++ {
				if arr[i] != float32(7*q+i) {
					t.Errorf("proc %d: arr[%d] = %v, want %v", x.ID(), i, arr[i], float32(7*q+i))
					return
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSectionAllToAllUnevenSections covers the overtake window in
// SectionAllToAll: each (src, dst) pair exchanges one long section
// whose final chunk is tiny (1024+36 elements at sectionLen=1024)
// followed by a short 7-element section, so without per-message tags
// the small trailing messages would overtake the full chunk and land
// at its offsets. The per-pair message indexes on the send and receive
// sides must mirror each other exactly for uneven section lists.
func TestSectionAllToAllUnevenSections(t *testing.T) {
	const long, short = 1024 + 36, 7
	sys := newSys(3)
	if err := sys.Run(func(x *XHPF) {
		n := x.NProcs()
		me := x.ID()
		// out[d] / in[s]: a long and a short section per remote peer,
		// filled with values identifying (owner, section, index).
		mk := func(owner, peer int) [][]float32 {
			a := make([]float32, long)
			b := make([]float32, short)
			for i := range a {
				a[i] = float32(owner*100000 + peer*10000 + i)
			}
			for i := range b {
				b[i] = float32(owner*100000 + peer*10000 + 5000 + i)
			}
			return [][]float32{a, b}
		}
		out := make([][][]float32, n)
		in := make([][][]float32, n)
		for q := 0; q < n; q++ {
			if q == me {
				continue
			}
			out[q] = mk(me, q)
			in[q] = [][]float32{make([]float32, long), make([]float32, short)}
		}
		SectionAllToAll(x, 1024, 4,
			func(dst int) [][]float32 { return out[dst] },
			func(src int) [][]float32 { return in[src] })
		for q := 0; q < n; q++ {
			if q == me {
				continue
			}
			want := mk(q, me)
			for s := range want {
				for i := range want[s] {
					if in[q][s][i] != want[s][i] {
						t.Errorf("proc %d: in[%d][%d][%d] = %v, want %v (section placement scrambled)",
							me, q, s, i, in[q][s][i], want[s][i])
						return
					}
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
