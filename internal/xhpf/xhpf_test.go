package xhpf

import (
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func newSys(n int) *System { return NewSystem(n, model.SP2()) }

func TestBlockOf(t *testing.T) {
	cases := []struct {
		p, nprocs, n, lo, hi int
	}{
		{0, 4, 100, 0, 25},
		{3, 4, 100, 75, 100},
		{3, 4, 10, 9, 10},
		{3, 4, 3, 3, 3},
		{0, 1, 7, 0, 7},
	}
	for _, c := range cases {
		lo, hi := BlockOf(c.p, c.nprocs, c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BlockOf(%d,%d,%d) = (%d,%d), want (%d,%d)", c.p, c.nprocs, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestOwnerOfInvertsBlockOf(t *testing.T) {
	for _, n := range []int{8, 100, 500, 501} {
		for i := 0; i < n; i++ {
			p := OwnerOf(i, 8, n)
			lo, hi := BlockOf(p, 8, n)
			if i < lo || i >= hi {
				t.Fatalf("OwnerOf(%d,8,%d)=%d but block=(%d,%d)", i, n, p, lo, hi)
			}
		}
	}
}

func TestBroadcastPartition(t *testing.T) {
	const n, size = 4, 100
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, size)
		lo, hi := x.Block(size)
		for i := lo; i < hi; i++ {
			arr[i] = float32(100*x.ID() + i)
		}
		BroadcastPartition(x, arr, size, 4)
		for i := 0; i < size; i++ {
			want := float32(100*OwnerOf(i, n, size) + i)
			if arr[i] != want {
				t.Errorf("proc %d: arr[%d] = %v, want %v", x.ID(), i, arr[i], want)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// n*(n-1) messages, full array shipped n-1 times.
	if got := sys.Stats().MsgsOf(stats.KindData); got != n*(n-1) {
		t.Errorf("msgs = %d, want %d", got, n*(n-1))
	}
	wantBytes := int64((n - 1) * size * 4) // payloads only
	gotPayload := sys.Stats().BytesOf(stats.KindData) - int64(n*(n-1)*32)
	if gotPayload != wantBytes {
		t.Errorf("payload bytes = %d, want %d", gotPayload, wantBytes)
	}
}

func TestExchangeHalo(t *testing.T) {
	const n, size = 4, 64
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, size)
		lo, hi := x.Block(size)
		for i := lo; i < hi; i++ {
			arr[i] = float32(i)
		}
		ExchangeHalo(x, arr, size, 2)
		if lo >= 2 {
			if arr[lo-1] != float32(lo-1) || arr[lo-2] != float32(lo-2) {
				t.Errorf("proc %d: lower halo wrong: %v %v", x.ID(), arr[lo-2], arr[lo-1])
			}
		}
		if hi+2 <= size {
			if arr[hi] != float32(hi) || arr[hi+1] != float32(hi+1) {
				t.Errorf("proc %d: upper halo wrong", x.ID())
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Interior boundaries: (n-1) boundaries * 2 directions.
	if got := sys.Stats().MsgsOf(stats.KindData); got != 2*(n-1) {
		t.Errorf("halo msgs = %d, want %d", got, 2*(n-1))
	}
}

func TestLoopSyncCount(t *testing.T) {
	const n = 8
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		for i := 0; i < 5; i++ {
			x.LoopSync()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 5*2*(n-1) {
		t.Errorf("sync msgs = %d, want %d", got, 5*2*(n-1))
	}
}

func TestAllReduce(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(x *XHPF) {
		out := AllReduceSum(x, []float64{float64(x.ID())})
		if out[0] != 28 {
			t.Errorf("proc %d: allreduce = %v, want 28", x.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionAllToAllTransposesBlocks(t *testing.T) {
	// 8x8 matrix, row-block distributed; transpose into column blocks.
	const n, dim = 4, 8
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		m := make([]float64, dim*dim)  // row-major, rows distributed
		tr := make([]float64, dim*dim) // transposed result
		rlo, rhi := x.Block(dim)
		for r := rlo; r < rhi; r++ {
			for c := 0; c < dim; c++ {
				m[r*dim+c] = float64(r*100 + c)
			}
		}
		// Sections for destination q: my rows' columns in q's block,
		// gathered densely for transmission.
		sectionsFor := func(q int) [][]float64 {
			qlo, qhi := BlockOf(q, n, dim)
			var secs [][]float64
			for r := rlo; r < rhi; r++ {
				secs = append(secs, m[r*dim+qlo:r*dim+qhi])
			}
			return secs
		}
		placeFor := func(q int) [][]float64 {
			qlo, qhi := BlockOf(q, n, dim)
			var secs [][]float64
			for r := qlo; r < qhi; r++ {
				// row r of m lands in column r of tr; my rows of tr are rlo..rhi
				sec := make([]float64, rhi-rlo)
				secs = append(secs, sec)
				_ = sec
				_ = r
			}
			return secs
		}
		_ = placeFor
		// Simpler check: count messages with 2-element sections.
		SectionAllToAll(x, 2, 8, sectionsFor, sectionsFor)
		_ = tr
	}); err != nil {
		t.Fatal(err)
	}
	// per proc: 3 dests * 2 rows * ceil(2/2)=1 msg per section... each
	// section is 2 elements, sectionLen=2 -> 1 msg per row per dest.
	want := int64(n * (n - 1) * 2)
	if got := sys.Stats().MsgsOf(stats.KindData); got != want {
		t.Errorf("msgs = %d, want %d", got, want)
	}
}

func TestBroadcastGatherOrderedParts(t *testing.T) {
	const n, m = 4, 2000 // m spans several 1024-element chunks
	sys := newSys(n)
	if err := sys.Run(func(x *XHPF) {
		parts := make([][]float32, n)
		for q := range parts {
			parts[q] = make([]float32, m)
		}
		for i := range parts[x.ID()] {
			parts[x.ID()][i] = float32(100*x.ID() + i%7)
		}
		BroadcastGather(x, parts)
		for q := 0; q < n; q++ {
			for i := 0; i < m; i += 997 {
				want := float32(100*q + i%7)
				if parts[q][i] != want {
					t.Errorf("proc %d: parts[%d][%d] = %v, want %v", x.ID(), q, i, parts[q][i], want)
					return
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Everyone ships its whole buffer to everyone: n*(n-1)*ceil(m/chunk).
	chunks := (m + 1023) / 1024
	want := int64(n * (n - 1) * chunks)
	if got := sys.Stats().MsgsOf(stats.KindData); got != want {
		t.Errorf("gather msgs = %d, want %d", got, want)
	}
}

func TestXHPFBcastDeliversEverywhere(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		row := make([]float32, 64)
		if x.ID() == 2 {
			for i := range row {
				row[i] = 5
			}
		}
		Bcast(x, 2, row)
		if row[63] != 5 {
			t.Errorf("proc %d: bcast missed", x.ID())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceWithMax(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(x *XHPF) {
		out := AllReduceWith(x, []float64{float64(x.ID())},
			func(a, b float64) float64 { return max(a, b) })
		if out[0] != 7 {
			t.Errorf("proc %d: max = %v, want 7", x.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastBlocksRaggedRows(t *testing.T) {
	// Whole-row blocks over 10 rows of width 8, 4 procs: 3/3/3/1.
	const rows, width, n = 10, 8, 4
	sys := newSys(n)
	blockOf := func(q int) (int, int) {
		lo, hi := BlockOf(q, n, rows)
		return lo * width, hi * width
	}
	if err := sys.Run(func(x *XHPF) {
		arr := make([]float32, rows*width)
		lo, hi := blockOf(x.ID())
		for i := lo; i < hi; i++ {
			arr[i] = float32(i)
		}
		BroadcastBlocks(x, arr, blockOf, 4)
		for i := 0; i < rows*width; i++ {
			if arr[i] != float32(i) {
				t.Errorf("proc %d: arr[%d] = %v", x.ID(), i, arr[i])
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundarySyncUntracked(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(x *XHPF) {
		x.BoundarySync()
		if x.NProcs() != 4 {
			t.Errorf("NProcs = %d", x.NProcs())
		}
		x.Advance(1000)
		_ = x.Now()
		_ = x.PVM()
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 0 {
		t.Errorf("boundary sync counted %d messages", got)
	}
}
