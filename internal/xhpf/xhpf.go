// Package xhpf implements the runtime targeted by the APR Forge XHPF
// High Performance Fortran compiler (paper §2.4) on the simulated
// message-passing machine. XHPF transforms an annotated sequential
// program into an SPMD program: every processor executes the sequential
// code (replicated, partially guarded), DO loops are distributed by the
// owner-computes rule over user-specified data decompositions, and a
// small runtime performs the communication the compiler generated.
//
// Two communication regimes mirror the compiler's abilities:
//
//   - Known access patterns (the regular applications): exact section
//     sends — halo exchanges and transposes — although in the
//     unaggregated, section-at-a-time form compiler-generated code
//     produces.
//   - Unknown access patterns (the irregular applications, where an
//     indirection array defeats analysis): each processor broadcasts its
//     whole partition to all other processors at the end of the parallel
//     loop, "regardless of whether the data will actually be used".
//
// The generated code also synchronizes at parallel-loop boundaries
// (LoopSync) and implements recognized reductions as all-reduces so the
// replicated sequential code has the result everywhere.
package xhpf

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/stats"
)

// System is an XHPF execution: an SPMD program on the message-passing
// machine (XHPF and TreadMarks both use the user-level MPL library, so
// the interconnect costs are shared).
type System struct {
	pv *pvm.System
}

// NewSystem creates an XHPF machine with nprocs processors.
func NewSystem(nprocs int, costs model.Costs) *System {
	return &System{pv: pvm.NewSystem(nprocs, costs)}
}

// Stats returns the interconnect statistics.
func (s *System) Stats() *stats.Stats { return s.pv.Stats() }

// NProcs returns the processor count.
func (s *System) NProcs() int { return s.pv.NProcs() }

// Run executes the SPMD body on every processor.
func (s *System) Run(body func(x *XHPF)) error {
	return s.pv.Run(func(pv *pvm.PVM) {
		body(&XHPF{pv: pv, n: s.pv.NProcs()})
	})
}

// XHPF is the per-processor runtime handle.
type XHPF struct {
	pv  *pvm.PVM
	n   int
	seq int // rolling tag sequence for runtime-generated communication
}

// ID returns the processor id.
func (x *XHPF) ID() int { return x.pv.ID() }

// NProcs returns the processor count.
func (x *XHPF) NProcs() int { return x.n }

// Advance charges compute time.
func (x *XHPF) Advance(d sim.Time) { x.pv.Advance(d) }

// Now returns the virtual clock.
func (x *XHPF) Now() sim.Time { return x.pv.Now() }

// PVM exposes the underlying message-passing handle for compiler-
// generated explicit sends.
func (x *XHPF) PVM() *pvm.PVM { return x.pv }

// chargeSection bills the runtime's descriptor-driven gather/scatter
// cost for moving n bytes through array sections.
func (x *XHPF) chargeSection(bytes int) {
	x.pv.Advance(x.pv.Costs().SectionCost(bytes))
}

// collective opens an EvCollective trace span covering one runtime
// collective and returns its closer: `defer x.collective(obs.CollBcast,
// stats.KindData)()`. Disabled tracing returns a shared no-op closer
// without reading the clock.
func (x *XHPF) collective(op int64, kind stats.Kind) func() {
	tr := x.pv.Costs().Trace
	if !tr.Enabled() {
		return nopClose
	}
	start := int64(x.Now())
	return func() {
		tr.Span(obs.EvCollective, x.ID(), start, int64(x.Now())-start, kind, -1, op)
	}
}

func nopClose() {}

// Block returns this processor's owned block [lo,hi) of a dimension of
// extent n under BLOCK distribution.
func (x *XHPF) Block(n int) (lo, hi int) {
	return BlockOf(x.ID(), x.n, n)
}

// BlockOf returns processor p's block of extent-n under BLOCK
// distribution.
func BlockOf(p, nprocs, n int) (lo, hi int) {
	chunk := (n + nprocs - 1) / nprocs
	lo = p * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// OwnerOf returns the owner of index i under BLOCK distribution.
func OwnerOf(i, nprocs, n int) int {
	chunk := (n + nprocs - 1) / nprocs
	return i / chunk
}

// LoopSync is the synchronization the generated code performs at a
// parallel-loop boundary: a runtime barrier, 2(n-1) messages.
func (x *XHPF) LoopSync() {
	defer x.collective(obs.CollLoopSync, stats.KindData)()
	x.seq += 2
	x.pv.Barrier(1<<12 + x.seq)
}

// BroadcastPartition is the unknown-pattern fallback: every processor
// broadcasts the owned section [lo,hi) of arr to every other processor,
// and installs the sections it receives. n*(n-1) messages carrying the
// entire array (n-1) times — the communication blow-up Table 3 shows for
// the irregular applications under XHPF.
// XHPF stages transfers through fixed-size runtime buffers; large
// sections go out in chunks of this many bytes.
const chunkBytes = 4096

// chunkTagStride separates the per-chunk tags of one multi-message
// transfer. The simulated network does not guarantee non-overtaking
// delivery within a (src, dst) pair the way PVMe/MPL did: a small
// ragged tail chunk's wire time can undercut a full chunk's, so with a
// shared tag the receiver — which consumes matching messages in
// delivery order — would place chunk payloads at the wrong offsets
// (observed on IGrid/xhpf at 4 nodes, where a 36-element tail overtook
// its 1024-element predecessor and silently corrupted every broadcast
// block). Each in-flight message of a pair therefore carries a distinct
// tag, derived identically on both sides from the chunk index. The
// stride keeps these tags disjoint from every rolling x.seq tag.
const chunkTagStride = 1 << 20

// chunkTag derives the wire tag of the idx-th in-flight message of one
// (src, dst) stream within a collective. Send and receive sides must
// derive idx identically — both count chunks (or sections × chunks) in
// the same deterministic loop order — or the transfer deadlocks.
func chunkTag(base, idx int) int { return base + idx*chunkTagStride }

func BroadcastPartition[T pvm.Scalar](x *XHPF, arr []T, extent, elemSize int) {
	defer x.collective(obs.CollPartition, stats.KindData)()
	x.seq += 2
	tag := 1<<13 + x.seq
	chunk := chunkBytes / elemSize
	mylo, myhi := x.Block(extent)
	if myhi > mylo {
		x.chargeSection((myhi - mylo) * elemSize * (x.n - 1))
	}
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		for off := mylo; off < myhi; off += chunk {
			pvm.Send(x.pv, q, chunkTag(tag, (off-mylo)/chunk), arr[off:min(off+chunk, myhi)])
		}
	}
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		qlo, qhi := BlockOf(q, x.n, extent)
		x.chargeSection((qhi - qlo) * elemSize)
		for off := qlo; off < qhi; off += chunk {
			pvm.Recv(x.pv, q, chunkTag(tag, (off-qlo)/chunk), arr[off:min(off+chunk, qhi)])
		}
	}
}

// BroadcastGather is the unknown-pattern fallback for reduction
// buffers: every processor broadcasts its *entire* contribution buffer
// (the compiler cannot tell which entries were touched through the
// indirection array). parts[x.ID()] must hold this processor's own
// contribution on entry; on return parts[q] holds processor q's buffer
// on every processor, so callers can combine in a deterministic order.
func BroadcastGather[T pvm.Scalar](x *XHPF, parts [][]T) {
	defer x.collective(obs.CollGather, stats.KindData)()
	x.seq += 2
	tag := 1<<13 + x.seq
	chunk := chunkBytes / 4
	mine := parts[x.ID()]
	x.chargeSection(len(mine) * 4 * (x.n - 1))
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		for off := 0; off < len(mine); off += chunk {
			pvm.Send(x.pv, q, chunkTag(tag, off/chunk), mine[off:min(off+chunk, len(mine))])
		}
	}
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		buf := parts[q]
		x.chargeSection(len(buf) * 4)
		for off := 0; off < len(buf); off += chunk {
			pvm.Recv(x.pv, q, chunkTag(tag, off/chunk), buf[off:min(off+chunk, len(buf))])
		}
	}
}

// ExchangeHalo performs the known-pattern nearest-neighbor exchange: the
// owned block's first and last `width` elements go to the lower and
// upper neighbor respectively, filling this processor's halo copies.
// Column-distributed 2-D arrays pass width = column height.
func ExchangeHalo[T pvm.Scalar](x *XHPF, arr []T, extent, width int) {
	ExchangeHaloBlocks(x, arr, extent, width, func(q int) (int, int) {
		return BlockOf(q, x.n, extent)
	})
}

// ExchangeHaloBlocks is ExchangeHalo with a caller-supplied contiguous
// block decomposition (lo, hi per processor, covering [0, extent) with
// any empty blocks trailing): the owned block's first and last `width`
// elements go to the lower and upper neighbor. The compiler back end
// (internal/loopc) uses it with whole-row blocks; when those coincide
// with the flat element blocks of ExchangeHalo, the messages are
// byte-identical.
func ExchangeHaloBlocks[T pvm.Scalar](x *XHPF, arr []T, extent, width int, blockOf func(q int) (lo, hi int)) {
	defer x.collective(obs.CollHalo, stats.KindData)()
	x.seq += 2
	tag := 1<<13 + x.seq
	me := x.ID()
	lo, hi := blockOf(me)
	if lo >= hi {
		return
	}
	nonempty := func(q int) bool {
		qlo, qhi := blockOf(q)
		return qhi > qlo
	}
	down := me > 0 && nonempty(me-1)
	up := me < x.n-1 && nonempty(me+1)
	if down {
		x.chargeSection((min(lo+width, hi) - lo) * 4)
		pvm.Send(x.pv, me-1, tag, arr[lo:min(lo+width, hi)])
	}
	if up {
		x.chargeSection((hi - max(hi-width, lo)) * 4)
		pvm.Send(x.pv, me+1, tag, arr[max(hi-width, lo):hi])
	}
	if down {
		pvm.Recv(x.pv, me-1, tag, arr[max(lo-width, 0):lo])
	}
	if up {
		pvm.Recv(x.pv, me+1, tag, arr[hi:min(hi+width, extent)])
	}
}

// SectionAllToAll redistributes arr (length n*n conceptual matrix of
// rows×cols elements handled by the caller through the section callback)
// in the unaggregated per-section form XHPF generates for transposes:
// each (source, destination) pair exchanges its intersection in chunks
// of sectionLen elements, one message per chunk.
func SectionAllToAll[T pvm.Scalar](x *XHPF, sectionLen, elemSize int,
	sectionsFor func(dst int) [][]T, placeFor func(src int) [][]T) {
	defer x.collective(obs.CollAllToAll, stats.KindData)()
	x.seq += 2
	tag := 1<<13 + x.seq
	me := x.ID()
	for q := 0; q < x.n; q++ {
		if q == me {
			continue
		}
		// Per-pair message index: placeFor on the receiver mirrors
		// sectionsFor on the sender, so both sides count identically.
		msg := 0
		for _, sec := range sectionsFor(q) {
			x.chargeSection(len(sec) * elemSize)
			for off := 0; off < len(sec); off += sectionLen {
				end := min(off+sectionLen, len(sec))
				pvm.Send(x.pv, q, chunkTag(tag, msg), sec[off:end])
				msg++
			}
		}
	}
	for q := 0; q < x.n; q++ {
		if q == me {
			continue
		}
		msg := 0
		for _, sec := range placeFor(q) {
			x.chargeSection(len(sec) * elemSize)
			for off := 0; off < len(sec); off += sectionLen {
				end := min(off+sectionLen, len(sec))
				pvm.Recv(x.pv, q, chunkTag(tag, msg), sec[off:end])
				msg++
			}
		}
	}
}

// Bcast is generated one-to-all communication: the owner of replicated
// data updated under owner-computes ships it to every processor before
// replicated sequential code uses it.
func Bcast[T pvm.Scalar](x *XHPF, root int, vals []T) {
	defer x.collective(obs.CollBcast, stats.KindData)()
	x.seq += 2
	x.chargeSection(len(vals) * 4)
	pvm.Bcast(x.pv, root, 1<<13+x.seq, vals)
}

// BoundarySync is an untracked barrier for measurement-region
// boundaries (harness infrastructure, not generated code).
func (x *XHPF) BoundarySync() {
	defer x.collective(obs.CollBarrier, stats.KindShutdown)()
	x.seq += 2
	x.pv.BarrierSilent(1<<12 + x.seq)
}

// AllReduceSum is a recognized reduction: summed to processor 0 and
// rebroadcast, so the replicated sequential code has the value
// everywhere.
func AllReduceSum[T pvm.Scalar](x *XHPF, vals []T) []T {
	defer x.collective(obs.CollReduce, stats.KindData)()
	x.seq += 4
	return pvm.AllReduceSum(x.pv, 1<<13+x.seq, vals)
}

// AllReduceWith is a recognized reduction with an arbitrary operator
// (MAX, MIN): folded to processor 0 and rebroadcast.
func AllReduceWith[T pvm.Scalar](x *XHPF, vals []T, op func(a, b T) T) []T {
	defer x.collective(obs.CollReduce, stats.KindData)()
	x.seq += 4
	return pvm.AllReduce(x.pv, 1<<13+x.seq, vals, op)
}

// BroadcastBlocks is BroadcastPartition with a caller-supplied block
// decomposition, for distributions that do not coincide with a flat
// element block (e.g. whole-row blocks over a ragged row count).
func BroadcastBlocks[T pvm.Scalar](x *XHPF, arr []T, blockOf func(q int) (lo, hi int), elemSize int) {
	defer x.collective(obs.CollPartition, stats.KindData)()
	x.seq += 2
	tag := 1<<13 + x.seq
	chunk := chunkBytes / elemSize
	mylo, myhi := blockOf(x.ID())
	if myhi > mylo {
		x.chargeSection((myhi - mylo) * elemSize * (x.n - 1))
	}
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		for off := mylo; off < myhi; off += chunk {
			pvm.Send(x.pv, q, chunkTag(tag, (off-mylo)/chunk), arr[off:min(off+chunk, myhi)])
		}
	}
	for q := 0; q < x.n; q++ {
		if q == x.ID() {
			continue
		}
		qlo, qhi := blockOf(q)
		x.chargeSection((qhi - qlo) * elemSize)
		for off := qlo; off < qhi; off += chunk {
			pvm.Recv(x.pv, q, chunkTag(tag, (off-qlo)/chunk), arr[off:min(off+chunk, qhi)])
		}
	}
}
