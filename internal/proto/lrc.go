package proto

import (
	"repro/internal/sim"
)

// This file is the lazy-release-consistency core shared by both
// protocols: vector timestamps, intervals, write notices and their
// run-length-encoded wire format. It was extracted from internal/tmk's
// system.go when the protocol layer became pluggable. The two protocols
// differ only in how modified *data* travels; the invalidation
// information modeled here is common.

// IntervalRec is a released interval: the pages its owner wrote.
type IntervalRec struct {
	Interval int32
	Pages    []int32
}

// NoticeBatch is consistency information in flight: per-process interval
// records the receiver has not seen.
type NoticeBatch struct {
	Proc      int
	Intervals []IntervalRec
}

// BatchBytes models the wire size of a batch of notices. Write notices
// for consecutive pages are run-length encoded — an interval that
// dirtied a contiguous block of pages (every regular application) costs
// one range record, while scattered writes (MGS's cyclic vectors) cost
// one record per run. This matches the linear-in-runs notice volumes of
// Tables 2 and 3.
func BatchBytes(bs []NoticeBatch) int {
	n := 0
	for _, b := range bs {
		for _, iv := range b.Intervals {
			n += 16 // interval header
			n += PageRuns(iv.Pages) * 8
		}
	}
	return n
}

// PageRuns counts maximal runs of consecutive page ids (the pages slice
// is in write-touch order, which is ascending for sweeps).
func PageRuns(pages []int32) int {
	runs := 0
	for i, pg := range pages {
		if i == 0 || pg != pages[i-1]+1 {
			runs++
		}
	}
	return runs
}

// pageCommon is the protocol metadata both protocols keep for one page.
type pageCommon struct {
	hasTwin   bool
	twinWrite int32   // interval of the most recent write fault
	notice    []int32 // notice[q]: highest pending interval of writer q
	applied   []int32 // applied[q]: highest interval of q applied here
	lastSelf  int32   // last interval in which this node noticed the page
}

// invalid reports whether the page has unapplied remote write notices.
func (pc *pageCommon) invalid() bool {
	for q := range pc.notice {
		if pc.notice[q] > pc.applied[q] {
			return true
		}
	}
	return false
}

// lrcCore is the consistency state shared by both protocol
// implementations.
type lrcCore struct {
	h      Host
	id     int
	nprocs int

	vc          []int32         // vc[q] = latest interval of q incorporated
	curInterval int32           // my open (unreleased) interval
	dirty       []int32         // pages write-noticed in the open interval
	log         [][]IntervalRec // released intervals per process
	orders      []int64         // orders[k-1]: causal sort key of own interval k
	pages       []pageCommon
	ctr         Counters
}

func (lc *lrcCore) init(h Host) {
	lc.h = h
	lc.id = h.NodeID()
	lc.nprocs = h.NProcs()
	lc.vc = make([]int32, lc.nprocs)
	lc.curInterval = 1
	lc.log = make([][]IntervalRec, lc.nprocs)
}

func (lc *lrcCore) addPages(npages int) {
	for i := 0; i < npages; i++ {
		lc.pages = append(lc.pages, pageCommon{
			notice:  make([]int32, lc.nprocs),
			applied: make([]int32, lc.nprocs),
		})
	}
}

// writeTouch performs the write-access bookkeeping for page gp: twin the
// page on the first write of an interval (the mprotect write-trap
// equivalent, when the protocol needs a twin) and register it for a
// write notice at the next release.
// Concurrency note (applies to every protocol mutation in this package):
// Advance is a scheduler yield point, so the node's server process may run
// in the middle of any sequence that calls it. All protocol state must
// therefore be mutated *first* and the virtual CPU time charged *after*,
// keeping every critical section atomic between scheduling points.
// needTwin is false for pages whose live copy already is the master copy
// (a home node's own pages): write detection still happens, twinning
// does not.
func (lc *lrcCore) writeTouch(gp int32, needTwin bool) {
	pc := &lc.pages[gp]
	c := lc.h.Costs()
	var cost sim.Time
	if needTwin && !pc.hasTwin {
		lc.h.MakeTwin(gp)
		lc.ctr.Twins++
		pc.hasTwin = true
		pc.twinWrite = lc.curInterval
		cost = c.WriteFault + c.TwinPage
	} else if pc.twinWrite < lc.curInterval {
		// New interval: the page was write-protected again at the last
		// release, so pay the re-protection fault.
		pc.twinWrite = lc.curInterval
		cost = c.WriteFault
	}
	if pc.lastSelf != lc.curInterval {
		pc.lastSelf = lc.curInterval
		lc.dirty = append(lc.dirty, gp)
	}
	if cost > 0 {
		lc.h.AppProc().Advance(cost)
	}
}

// closeInterval closes the open interval: every dirtied page gets a
// write notice, the interval is logged, the interval's causal order key
// is recorded, and the vector clock advances. Called at lock release and
// barrier arrival (an RC release operation). The caller (the protocol's
// Release) performs any data movement first.
func (lc *lrcCore) closeInterval() {
	if len(lc.dirty) > 0 {
		pages := make([]int32, len(lc.dirty))
		copy(pages, lc.dirty)
		lc.log[lc.id] = append(lc.log[lc.id], IntervalRec{Interval: lc.curInterval, Pages: pages})
		lc.dirty = lc.dirty[:0]
	}
	lc.vc[lc.id] = lc.curInterval
	var sum int64
	for _, v := range lc.vc {
		sum += int64(v)
	}
	lc.orders = append(lc.orders, sum)
	lc.curInterval++
}

// orderEstimate is the causal sort key an interval would get if released
// right now: the current vector-clock sum with this node's entry replaced
// by the open interval number.
func (lc *lrcCore) orderEstimate() int64 {
	var s int64
	for q, v := range lc.vc {
		if q == lc.id {
			s += int64(lc.curInterval)
		} else {
			s += int64(v)
		}
	}
	return s
}

// noticesSince collects the interval records of process q with interval
// numbers in (from, to].
func (lc *lrcCore) noticesSince(q int, from, to int32) []IntervalRec {
	var out []IntervalRec
	for _, ir := range lc.log[q] {
		if ir.Interval > from && ir.Interval <= to {
			out = append(out, ir)
		}
	}
	return out
}

// BatchSince builds the notice batches for a receiver whose vector clock
// is rvc, based on everything this node knows.
func (lc *lrcCore) BatchSince(rvc []int32) []NoticeBatch {
	var out []NoticeBatch
	for q := 0; q < lc.nprocs; q++ {
		if lc.vc[q] > rvc[q] {
			ivs := lc.noticesSince(q, rvc[q], lc.vc[q])
			out = append(out, NoticeBatch{Proc: q, Intervals: ivs})
		}
	}
	return out
}

// OwnBatch collects this node's own released intervals later than since.
func (lc *lrcCore) OwnBatch(since int32) []NoticeBatch {
	ivs := lc.noticesSince(lc.id, since, lc.vc[lc.id])
	if len(ivs) == 0 {
		return nil
	}
	return []NoticeBatch{{Proc: lc.id, Intervals: ivs}}
}

// ApplyBatches incorporates received notices: log them, register page
// invalidations, and advance the vector clock. Batches always carry the
// contiguous interval range (receiver.vc, sender.vc] per process (see the
// invariant comment in tmk's barrier.go), so advancing vc to the batch
// maximum never skips intervals.
func (lc *lrcCore) ApplyBatches(bs []NoticeBatch) {
	for _, b := range bs {
		if b.Proc == lc.id {
			continue // never accept notices about our own intervals
		}
		for _, iv := range b.Intervals {
			if iv.Interval <= lc.vc[b.Proc] {
				continue // already known
			}
			lc.log[b.Proc] = append(lc.log[b.Proc], iv)
			for _, pg := range iv.Pages {
				pc := &lc.pages[pg]
				if iv.Interval > pc.notice[b.Proc] {
					pc.notice[b.Proc] = iv.Interval
				}
			}
			lc.vc[b.Proc] = iv.Interval
		}
	}
}

// VC returns the node's live vector clock. Callers must not mutate it.
func (lc *lrcCore) VC() []int32 { return lc.vc }

// MarkApplied records externally installed data (broadcast optimization).
func (lc *lrcCore) MarkApplied(gp int32, writer int, upto int32) {
	pc := &lc.pages[gp]
	if upto > pc.applied[writer] {
		pc.applied[writer] = upto
	}
}

// Invalid reports whether gp has unapplied remote write notices.
func (lc *lrcCore) Invalid(gp int32) bool { return lc.pages[gp].invalid() }

// Counters returns the node's protocol event counts.
func (lc *lrcCore) Counters() *Counters { return &lc.ctr }
