package proto

import (
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip fuzzes the RLE write-notice wire format from the
// byte side. Any input DecodeBatches accepts must re-encode to a
// canonical form that (a) matches the BatchBytes size model, (b) never
// grows past the input (canonicalization only merges abutting runs),
// and (c) decodes back to the identical batch list. Rejected inputs
// just return — the decoder's error paths (truncation, bad reserved
// words, non-positive or implausible run lengths) are themselves what
// the fuzzer explores. A regression corpus of the interesting shapes
// lives in testdata/fuzz/FuzzCodecRoundTrip.
func FuzzCodecRoundTrip(f *testing.F) {
	// Structured seeds: the shapes real protocol traffic produces.
	for _, bs := range [][]NoticeBatch{
		nil,
		{{Proc: 2, Intervals: []IntervalRec{{Interval: 7, Pages: []int32{42}}}}},
		{{Proc: 0, Intervals: []IntervalRec{{Interval: 1, Pages: []int32{10, 11, 12, 13}}}}},
		{{Proc: 1, Intervals: []IntervalRec{{Interval: 3, Pages: []int32{5, 3, 9, 10, 2}}}}},
		{
			{Proc: 0, Intervals: []IntervalRec{
				{Interval: 1, Pages: []int32{0, 1}},
				{Interval: 2, Pages: []int32{1}},
			}},
			{Proc: 3, Intervals: []IntervalRec{{Interval: 9, Pages: []int32{100, 101, 102, 200}}}},
		},
	} {
		f.Add(EncodeBatches(bs))
	}
	// Byte-level seeds the encoder never emits: an interval with no
	// runs, two abutting runs (canonicalization must merge them), a
	// truncated header, and a run claiming 2^31-1 pages.
	f.Add([]byte("\x02\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x00\x01\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00" +
		"\x03\x00\x00\x00\x02\x00\x00\x00\x05\x00\x00\x00\x01\x00\x00\x00"))
	f.Add([]byte("\x01\x00\x00\x00\x02\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x00\x00\x00\x00\xff\xff\xff\x7f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		bs, err := DecodeBatches(data)
		if err != nil {
			return
		}
		enc := EncodeBatches(bs)
		if got, want := len(enc), BatchBytes(bs); got != want {
			t.Fatalf("encoded %d bytes, BatchBytes models %d (batches %+v)", got, want, bs)
		}
		if len(enc) > len(data) {
			t.Fatalf("canonical encoding grew: %d bytes from %d input bytes", len(enc), len(data))
		}
		bs2, err := DecodeBatches(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v (batches %+v)", err, bs)
		}
		if len(bs) == 0 && len(bs2) == 0 {
			return
		}
		if !reflect.DeepEqual(bs, bs2) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", bs2, bs)
		}
	})
}

// TestDecodeRejectsImplausibleRunLength pins the decoder's allocation
// bound: a single run claiming more pages than maxDecodePages is an
// error, not a multi-gigabyte allocation.
func TestDecodeRejectsImplausibleRunLength(t *testing.T) {
	buf := []byte("\x00\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x00\x00\x00\x00\xff\xff\xff\x7f")
	if _, err := DecodeBatches(buf); err == nil {
		t.Fatal("2^31-1 page run accepted")
	}
	// Across records, too: many maximal runs must trip the same bound.
	rec := []byte("\x00\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x00\x00\x00\x00\x00\x00\x10\x00") // one run of 2^20 pages
	if _, err := DecodeBatches(rec); err != nil {
		t.Fatalf("exactly maxDecodePages rejected: %v", err)
	}
	two := append(append([]byte(nil), rec...), rec...)
	if _, err := DecodeBatches(two); err == nil {
		t.Fatal("2*maxDecodePages across records accepted")
	}
}
