package proto

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// White-box tests of the home protocol's stale-home NACK paths: a flush
// racing a directory update. The synchronization layer normally
// installs every directory update as it leaves the deciding barrier, so
// a writer never targets a stale home and a home is never more than one
// epoch behind its clients — these tests construct exactly those
// windows by driving protocol instances over a raw simulator cluster
// with a byte-array page host, without the tmk layer on top.

const (
	testPageBytes = 64
	testExitTag   = 1
)

// testNode is one simulated DSM node for the white-box tests: a home
// protocol instance over simple byte-array pages.
type testNode struct {
	id     int
	nprocs int
	app    *sim.Proc
	pages  [][]byte
	twins  map[int32][]byte
	prot   Protocol
}

func newTestNode(id, nprocs, npages int, policy PolicyName) *testNode {
	n := &testNode{id: id, nprocs: nprocs, twins: map[int32][]byte{}}
	for i := 0; i < npages; i++ {
		n.pages = append(n.pages, make([]byte, testPageBytes))
	}
	n.prot = New(HomeLRC, policy, (*testHost)(n))
	n.prot.AddPages(npages)
	return n
}

func (n *testNode) home() *home { return n.prot.(*home) }

// testHost adapts a testNode to the Host interface. Diffs and
// snapshots are whole-page byte copies.
type testHost testNode

func (h *testHost) NodeID() int           { return h.id }
func (h *testHost) NProcs() int           { return h.nprocs }
func (h *testHost) AppProc() *sim.Proc    { return h.app }
func (h *testHost) ServerOf(node int) int { return h.nprocs + node }
func (h *testHost) Costs() model.Costs    { return model.SP2() }

func (h *testHost) MakeTwin(gp int32) {
	tw := make([]byte, testPageBytes)
	copy(tw, h.pages[gp])
	h.twins[gp] = tw
}

func (h *testHost) ExtractDiff(gp int32, keepTwin bool) (any, int) {
	if !keepTwin {
		delete(h.twins, gp)
	}
	out := make([]byte, testPageBytes)
	copy(out, h.pages[gp])
	return out, testPageBytes
}

func (h *testHost) ApplyDiff(gp int32, payload any) { copy(h.pages[gp], payload.([]byte)) }

func (h *testHost) MergeDiffs(gp int32, payloads []any) (any, int) {
	return payloads[len(payloads)-1], testPageBytes
}

func (h *testHost) SnapshotPage(gp int32) (any, int) {
	out := make([]byte, testPageBytes)
	copy(out, h.pages[gp])
	return out, testPageBytes
}

func (h *testHost) InstallPage(gp int32, payload any) { copy(h.pages[gp], payload.([]byte)) }

// runTestCluster runs one scripted application body per node plus the
// standard protocol server loop. Bodies run on procs 0..n-1; servers on
// n..2n-1 until they receive testExitTag.
func runTestCluster(t *testing.T, nodes []*testNode, bodies []func(p *sim.Proc)) {
	t.Helper()
	n := len(nodes)
	cl := sim.New(model.SP2().SimConfigNodes(2*n, n))
	err := cl.Run(func(p *sim.Proc) {
		if p.ID() < n {
			nodes[p.ID()].app = p
			bodies[p.ID()](p)
			return
		}
		nd := nodes[p.ID()-n]
		for {
			m := p.Recv(sim.AnySrc, sim.AnyTag)
			if m.Tag == testExitTag {
				return
			}
			if !nd.prot.HandleServer(p, m) {
				t.Errorf("node %d server: unexpected message tag %d", nd.id, m.Tag)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlushRedirectAfterMigration: the directory moved a page from node
// 1 to node 2, but the writer (node 0) releases under the old epoch.
// The stale home NACKs the flush with its newer directory; the writer
// learns the mapping, re-sends to the new home, and the release
// completes with the new home holding the data.
func TestFlushRedirectAfterMigration(t *testing.T) {
	const n, npages = 3, 3
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = newTestNode(i, n, npages, StaticPolicy)
	}
	// Page 1 (initially homed at node 1) moves to node 2. Nodes 1 and 2
	// install the update; writer node 0 does not — the in-flight window
	// the barrier piggyback normally closes.
	move := []DirUpdate{{Page: 1, Home: 2}}
	nodes[1].prot.ApplyDirectory(move, stats.KindBarrier)
	nodes[2].prot.ApplyDirectory(move, stats.KindBarrier)
	if got := nodes[2].prot.Counters().Migrations; got != 1 {
		t.Fatalf("new home migrations = %d, want 1", got)
	}

	payload := byte(0xA5)
	bodies := []func(p *sim.Proc){
		func(p *sim.Proc) {
			hb := nodes[0].home()
			nodes[0].pages[1][0] = payload
			hb.WriteTouch(1)
			hb.Release(stats.KindBarrier)
			for s := 0; s < n; s++ {
				p.Send(n+s, testExitTag, nil, 0, stats.KindShutdown)
			}
		},
		func(p *sim.Proc) {},
		func(p *sim.Proc) {},
	}
	runTestCluster(t, nodes, bodies)

	if got := nodes[1].prot.Counters().StaleForwards; got != 1 {
		t.Errorf("old home stale forwards = %d, want 1", got)
	}
	if got := nodes[0].prot.Counters().RedirectedFlushBytes; got <= 0 {
		t.Errorf("writer redirected flush bytes = %d, want > 0", got)
	}
	if got := nodes[0].home().homeOf(1); got != 2 {
		t.Errorf("writer learned home %d for page 1, want 2", got)
	}
	if nodes[2].pages[1][0] != payload {
		t.Errorf("new home's copy = %#x, want %#x (flush lost)", nodes[2].pages[1][0], payload)
	}
	if nodes[1].pages[1][0] == payload {
		t.Errorf("old home applied a flush for a page it no longer homes")
	}
	if got := nodes[2].prot.Counters().DiffsApplied; got != 1 {
		t.Errorf("new home diffs applied = %d, want 1", got)
	}
}

// TestFlushRetryWhileHomeLags: the writer has installed a directory
// epoch the new home has not processed yet (its application process is
// still short of the departure). The new home NACKs with its *older*
// directory; the writer must not follow it backwards — it retries the
// same home until the epoch catches up.
func TestFlushRetryWhileHomeLags(t *testing.T) {
	const n, npages = 3, 3
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = newTestNode(i, n, npages, StaticPolicy)
	}
	move := []DirUpdate{{Page: 1, Home: 2}}
	// Only the writer (and the old home) installed the update; the new
	// home (node 2) lags and applies mid-run.
	nodes[0].prot.ApplyDirectory(move, stats.KindBarrier)
	nodes[1].prot.ApplyDirectory(move, stats.KindBarrier)

	payload := byte(0x5A)
	bodies := []func(p *sim.Proc){
		func(p *sim.Proc) {
			hb := nodes[0].home()
			nodes[0].pages[1][0] = payload
			hb.WriteTouch(1)
			hb.Release(stats.KindBarrier) // blocks until node 2 accepts
			for s := 0; s < n; s++ {
				p.Send(n+s, testExitTag, nil, 0, stats.KindShutdown)
			}
		},
		func(p *sim.Proc) {},
		func(p *sim.Proc) {
			// The lagging departure: the update installs two
			// milliseconds into the run, while the writer's flush is
			// already bouncing.
			p.Advance(2 * sim.Millisecond)
			nodes[2].prot.ApplyDirectory(move, stats.KindBarrier)
		},
	}
	runTestCluster(t, nodes, bodies)

	if got := nodes[2].prot.Counters().StaleForwards; got < 1 {
		t.Errorf("lagging home stale forwards = %d, want >= 1", got)
	}
	if got := nodes[0].home().homeOf(1); got != 2 {
		t.Errorf("writer's directory rolled back to %d, want 2", got)
	}
	if nodes[2].pages[1][0] != payload {
		t.Errorf("new home's copy = %#x, want %#x (flush lost)", nodes[2].pages[1][0], payload)
	}
	if got := nodes[0].prot.Counters().RedirectedFlushBytes; got <= 0 {
		t.Errorf("writer redirected flush bytes = %d, want > 0", got)
	}
	if !bytes.Equal(nodes[1].pages[1], make([]byte, testPageBytes)) {
		t.Errorf("old home applied a flush for a page it no longer homes")
	}
}
