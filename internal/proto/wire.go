package proto

// Protocol message tags. The synchronization layer (internal/tmk) owns
// tags 1<<16 through 11<<16; the protocol subsystem reserves the 16<<16
// through 31<<16 range. Push tags are offset by the barrier's rolling
// sequence number, like barrier tags.
const (
	tagDiffReq  = 16 << 16 // homeless: diff request (to server)
	tagDiffResp = 17 << 16 // homeless: diff reply (to application)
	tagPush     = 18 << 16 // homeless: pushed diffs (+ barrier seq)
	tagFlush    = 19 << 16 // home: eager diff flush (to home's server)
	tagFlushAck = 20 << 16 // home: flush acknowledgment (to application)
	tagPageReq  = 21 << 16 // home: whole-page fetch request (to server)
	tagPageResp = 22 << 16 // home: whole-page reply (to application)
	tagMigReq   = 23 << 16 // home: new-home migration pull (to old home's server)
	tagMigResp  = 24 << 16 // home: migration pull reply (to application)
)

// Wire-format size constants (bytes) for control payloads.
const (
	// DiffRecHdr and DiffSegHdr are the per-record and per-segment diff
	// encoding overheads; the region layer's diff encoder charges them.
	DiffRecHdr = 8
	DiffSegHdr = 4

	diffReqHdr     = 12
	diffReqPerPage = 16
	pushHdr        = 16
	flushHdr       = 16
	flushAckBytes  = 8
	pageReqHdr     = 12
	pageReqPerPage = 8 // + one vector timestamp per page
	pageRespHdr    = 8
	pageRespPerVC  = 4 // per process entry of a piggybacked applied vector

	// dirUpdateRecBytes is one home-directory update record (page id +
	// new home) in barrier piggybacks and stale-home NACKs.
	dirUpdateRecBytes = 8
)
