package proto

import (
	"fmt"
	"sort"
)

// Home placement is a *policy*, distinct from the home-based coherence
// *mechanism* (eager flushes, whole-page fetches): where a page's master
// copy lives decides where modified data travels, but not how. This file
// defines the pluggable HomePolicy API and its three implementations:
//
//   - static: the original assignment — homes are fixed block-wise
//     within each region at allocation time and never move. Bit-for-bit
//     identical to the pre-policy HomeLRC (the golden traffic tables and
//     virtual times pin this).
//   - firsttouch: pages start on the static assignment but are claimed
//     by the first writer to fault on them; claims are arbitrated at the
//     next barrier (lowest node id wins a same-epoch tie) and broadcast
//     so every node agrees before the next release.
//   - adaptive: every flush is accounted per page and per writer at the
//     page's home; when one remote writer's share of a page's flush
//     bytes over the last AdaptiveWindow barrier epochs crosses
//     AdaptiveShare, the home proposes migrating the page to that
//     writer. Hysteresis (a full window of history, a majority share,
//     and a post-move accounting reset) keeps pages whose dominant
//     writer alternates from ping-ponging.
//
// A policy instance is per node and purely local bookkeeping: it never
// sends messages and costs no virtual time. Directory *changes* travel
// through the synchronization layer — proposals ride barrier arrivals,
// the barrier manager arbitrates (MergeDirProposals), and the agreed
// updates ride the departures, so every node installs the same directory
// before any post-barrier release can flush. The home protocol's
// redirect/retry paths (home.go) cover the in-flight window where a
// server has not yet installed the epoch its clients already run.

// PolicyName identifies a home-placement policy of the home-based
// protocol. The homeless protocol has no homes and ignores it.
type PolicyName string

const (
	// StaticPolicy keeps the fixed block-wise assignment (the default).
	StaticPolicy PolicyName = "static"
	// FirstTouchPolicy homes a page at its first faulting writer.
	FirstTouchPolicy PolicyName = "firsttouch"
	// AdaptivePolicy migrates a page's home to its dominant writer.
	AdaptivePolicy PolicyName = "adaptive"
)

// PolicyNames lists the available home policies.
func PolicyNames() []PolicyName {
	return []PolicyName{StaticPolicy, FirstTouchPolicy, AdaptivePolicy}
}

// ParsePolicy resolves a policy name; the empty string means the
// default (static) policy.
func ParsePolicy(s string) (PolicyName, error) {
	switch s {
	case "", string(StaticPolicy):
		return StaticPolicy, nil
	case string(FirstTouchPolicy), "first-touch":
		return FirstTouchPolicy, nil
	case string(AdaptivePolicy):
		return AdaptivePolicy, nil
	}
	return "", fmt.Errorf("proto: unknown home policy %q (have static, firsttouch, adaptive)", s)
}

// Adaptive-policy hysteresis constants, exported so tests can reason
// about the trigger exactly.
const (
	// AdaptiveWindow is the number of completed barrier epochs of flush
	// accounting a page needs before it may migrate (and the depth of
	// the per-page accounting ring).
	AdaptiveWindow = 4
	// AdaptiveShareNum/AdaptiveShareDen is the flush-byte share a writer
	// must hold over the window to capture the page: 3/5 = 60%, so two
	// writers alternating epochs (50% each) never trigger a move.
	AdaptiveShareNum = 3
	AdaptiveShareDen = 5
)

// DirUpdate is one home-directory change: page Page is henceforth homed
// at node Home. Updates are proposed by policies, arbitrated by the
// barrier manager, and installed identically on every node.
type DirUpdate struct {
	Page int32
	Home int32
}

// DirUpdateBytes models the wire size of a directory-update list
// (piggybacked on barrier arrivals and departures, or carried by a
// stale-home NACK).
func DirUpdateBytes(us []DirUpdate) int { return len(us) * dirUpdateRecBytes }

// HomePolicy decides where pages live. One instance exists per node,
// inside the home protocol; all methods are local bookkeeping (no
// messages, no virtual time). Every node's policy instance observes the
// same arbitrated update stream, so the directories never diverge
// between epochs.
type HomePolicy interface {
	// Name returns the policy's identifier.
	Name() PolicyName
	// AddPages extends the directory with npages fresh pages on the
	// initial (static block-wise) assignment, identical on every node.
	AddPages(npages int)
	// HomeOf returns the current home of page gp.
	HomeOf(gp int32) int
	// NoteWrite observes a local write touch of gp (writer side; feeds
	// first-touch claims).
	NoteWrite(gp int32)
	// NoteFlush observes a flush of bytes for gp from writer, received
	// at this node as gp's home (feeds adaptive accounting).
	NoteFlush(gp int32, writer, bytes int)
	// Rebalance closes a barrier epoch and returns this node's proposed
	// directory updates, in ascending page order. The caller piggybacks
	// them on its barrier arrival for arbitration.
	Rebalance() []DirUpdate
	// Apply installs arbitrated directory updates. Every node applies
	// the same list in the same epoch; it is also used to learn current
	// homes from a stale-home NACK.
	Apply(us []DirUpdate)
}

// NewHomePolicy builds a policy instance for one node. The name goes
// through ParsePolicy, so everything Spec.Validate accepts (including
// aliases) constructs.
func NewHomePolicy(p PolicyName, nprocs, self int) HomePolicy {
	name, err := ParsePolicy(string(p))
	if err != nil {
		panic(err.Error())
	}
	switch name {
	case StaticPolicy:
		return &staticPolicy{directory{nprocs: nprocs}}
	case FirstTouchPolicy:
		return &firstTouch{directory: directory{nprocs: nprocs}, self: self}
	default:
		return &adaptive{directory: directory{nprocs: nprocs}, self: self, acct: map[int32]*pageAcct{}}
	}
}

// directory is the shared page→home map. The initial assignment is
// block-wise within each region (page i of an npages region is homed on
// node i*nprocs/npages), matching the BLOCK data distribution every
// regular application uses so the common case writes self-homed pages.
type directory struct {
	nprocs int
	homes  []int32
}

func (d *directory) AddPages(npages int) {
	for i := 0; i < npages; i++ {
		d.homes = append(d.homes, int32(i*d.nprocs/npages))
	}
}

func (d *directory) HomeOf(gp int32) int { return int(d.homes[gp]) }

func (d *directory) Apply(us []DirUpdate) {
	for _, u := range us {
		d.homes[u.Page] = u.Home
	}
}

// staticPolicy: the directory never changes.
type staticPolicy struct{ directory }

func (*staticPolicy) Name() PolicyName          { return StaticPolicy }
func (*staticPolicy) NoteWrite(int32)           {}
func (*staticPolicy) NoteFlush(int32, int, int) {}
func (*staticPolicy) Rebalance() []DirUpdate    { return nil }

// firstTouch claims a page for the first writer that faults on it. A
// claim is proposed once; the barrier manager keeps the lowest node id
// among same-epoch claimants, and the broadcast marks the page claimed
// everywhere — including at the claimant that lost the tie.
type firstTouch struct {
	directory
	self    int
	claimed []bool  // page has an arbitrated first-touch owner
	mine    []bool  // this node already proposed a claim for the page
	fresh   []int32 // unclaimed pages first written this epoch, touch order
}

func (*firstTouch) Name() PolicyName { return FirstTouchPolicy }

func (ft *firstTouch) AddPages(npages int) {
	ft.directory.AddPages(npages)
	ft.claimed = append(ft.claimed, make([]bool, npages)...)
	ft.mine = append(ft.mine, make([]bool, npages)...)
}

func (ft *firstTouch) NoteWrite(gp int32) {
	if ft.claimed[gp] || ft.mine[gp] {
		return
	}
	ft.mine[gp] = true
	ft.fresh = append(ft.fresh, gp)
}

func (*firstTouch) NoteFlush(int32, int, int) {}

func (ft *firstTouch) Rebalance() []DirUpdate {
	if len(ft.fresh) == 0 {
		return nil
	}
	out := make([]DirUpdate, 0, len(ft.fresh))
	for _, gp := range ft.fresh {
		if ft.claimed[gp] {
			continue // lost an earlier arbitration in the meantime
		}
		out = append(out, DirUpdate{Page: gp, Home: int32(ft.self)})
	}
	ft.fresh = ft.fresh[:0]
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

func (ft *firstTouch) Apply(us []DirUpdate) {
	ft.directory.Apply(us)
	for _, u := range us {
		ft.claimed[u.Page] = true
	}
}

// pageAcct is the adaptive policy's per-page flush accounting at the
// page's current home: a ring of per-writer byte counts for the last
// AdaptiveWindow epochs plus the open epoch's counts.
type pageAcct struct {
	epochs int                     // completed epochs since (re)homed here
	ring   [AdaptiveWindow][]int64 // per-writer bytes, one slot per epoch
	cur    []int64                 // open epoch's per-writer bytes
}

// adaptive migrates a page to the writer dominating its flush traffic.
// Accounting exists only at the page's current home — exactly the node
// that observes the flushes — so proposals never conflict. The home
// itself never appears as a writer (self-homed writes do not flush):
// migration chases the dominant *remote* writer, which is what turns
// flush traffic into local writes. Three hysteresis guards keep the
// directory from churning:
//
//   - a page needs a full window of history at its current home, and
//     loses it whenever it moves (fresh accounting at the new home);
//   - the dominant writer must hold an AdaptiveShare majority of the
//     window's flush bytes *and* have flushed in the closing epoch, so
//     alternating writers (50% each) never trigger and a one-time
//     burst (initialization) cannot capture a page it no longer
//     touches;
//   - a page the home itself wrote within the window never migrates
//     away — the home's writes generate no flushes, so without this
//     guard two nodes sharing a page would steal it back and forth.
type adaptive struct {
	directory
	self  int
	epoch int32 // completed accounting epochs
	acct  map[int32]*pageAcct
	selfW map[int32]int32 // last epoch this node wrote the page
}

func (*adaptive) Name() PolicyName { return AdaptivePolicy }

func (ad *adaptive) NoteWrite(gp int32) {
	if ad.HomeOf(gp) == ad.self {
		if ad.selfW == nil {
			ad.selfW = map[int32]int32{}
		}
		ad.selfW[gp] = ad.epoch
	}
}

func (ad *adaptive) NoteFlush(gp int32, writer, bytes int) {
	pa := ad.acct[gp]
	if pa == nil {
		pa = &pageAcct{cur: make([]int64, ad.nprocs)}
		ad.acct[gp] = pa
	}
	pa.cur[writer] += int64(bytes)
}

// Rebalance rolls every tracked page's accounting ring and proposes a
// move for each page whose dominant writer crossed the share threshold
// over a full window. Pages with no flush traffic across the whole
// window are dropped from the accounting (their directory entry is
// fine where it is).
func (ad *adaptive) Rebalance() []DirUpdate {
	defer func() { ad.epoch++ }()
	if len(ad.acct) == 0 {
		return nil
	}
	pages := make([]int32, 0, len(ad.acct))
	for gp := range ad.acct {
		pages = append(pages, gp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var out []DirUpdate
	for _, gp := range pages {
		pa := ad.acct[gp]
		slot := pa.epochs % AdaptiveWindow
		pa.ring[slot] = pa.cur
		pa.cur = make([]int64, ad.nprocs)
		pa.epochs++
		if pa.epochs < AdaptiveWindow {
			continue // hysteresis: a full window of history first
		}
		var total int64
		sums := make([]int64, ad.nprocs)
		for _, ep := range pa.ring {
			for q, b := range ep {
				sums[q] += b
				total += b
			}
		}
		if total == 0 {
			delete(ad.acct, gp) // quiesced: stop tracking
			continue
		}
		if last, ok := ad.selfW[gp]; ok && ad.epoch-last < AdaptiveWindow {
			continue // the home writes this page itself: keep it
		}
		top := 0
		for q := 1; q < ad.nprocs; q++ {
			if sums[q] > sums[top] {
				top = q // ties keep the lowest id
			}
		}
		if top == ad.self || sums[top]*AdaptiveShareDen < total*AdaptiveShareNum {
			continue
		}
		if pa.ring[slot][top] == 0 {
			continue // dominant writer inactive this epoch: stale burst
		}
		out = append(out, DirUpdate{Page: gp, Home: int32(top)})
		delete(ad.acct, gp) // the new home starts its own accounting
	}
	return out
}

// Apply resets accounting for every repointed page: whichever node is
// the new home accumulates fresh history before the page may move
// again (the second half of the hysteresis).
func (ad *adaptive) Apply(us []DirUpdate) {
	ad.directory.Apply(us)
	for _, u := range us {
		delete(ad.acct, u.Page)
	}
}

// MergeDirProposals arbitrates the per-node directory proposals
// gathered at a barrier: iterating nodes in id order, the first
// proposal for a page wins (so a same-epoch first-touch tie goes to the
// lowest node id; adaptive proposals come only from a page's unique
// home and never collide). The result is sorted by page — every node
// applies the identical list.
func MergeDirProposals(perNode [][]DirUpdate) []DirUpdate {
	var out []DirUpdate
	seen := map[int32]bool{}
	for _, props := range perNode {
		for _, u := range props {
			if !seen[u.Page] {
				seen[u.Page] = true
				out = append(out, u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}
