package proto

import (
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The homeless (TreadMarks) protocol, moved from internal/tmk: lazy
// invalidate release consistency where diffs stay distributed at their
// writers. A faulting node fetches the missing diffs from every writer
// with pending notices; diff creation is lazy and one diff can satisfy a
// whole run of write notices from the same process (diff accumulation).

// GCThreshold is the per-page diff-record count that triggers a squash,
// bounding diff storage like TreadMarks' garbage collection. The squash
// is only applied to pages this node is the sole writer of — merging
// records across an interference boundary could reorder causally related
// writes from different nodes. Exported so tests can size workloads
// past the trigger.
const GCThreshold = 32

// diffRec is one extracted diff for a page: a payload of typed segments.
// Records for one page form a chain at the writer (seq ascending); a
// requester holding the chain through some seq needs only newer records.
// upto is the highest *released* writer interval the record covers (for
// settling write notices) and order is the causal sort key (vector-clock
// sum at release), strictly increasing along happens-before.
type diffRec struct {
	page    int32
	seq     int32
	upto    int32
	order   int64
	payload any
	bytes   int
}

// homelessPage is the homeless protocol's extra per-page state.
type homelessPage struct {
	appliedSeq []int32 // appliedSeq[q]: highest record seq of q applied here
	recSeq     int32   // this node's record chain position for the page
}

type homeless struct {
	lrcCore
	meta []homelessPage
	recs map[int32][]*diffRec
}

func newHomeless(h Host) *homeless {
	hl := &homeless{recs: map[int32][]*diffRec{}}
	hl.init(h)
	return hl
}

func (hl *homeless) Name() Name { return HomelessLRC }

func (hl *homeless) AddPages(npages int) {
	hl.addPages(npages)
	for i := 0; i < npages; i++ {
		hl.meta = append(hl.meta, homelessPage{appliedSeq: make([]int32, hl.nprocs)})
	}
}

func (hl *homeless) WriteTouch(gp int32) { hl.writeTouch(gp, true) }

// Release is a pure local operation under the homeless protocol: diffs
// stay here until requested.
func (hl *homeless) Release(stats.Kind) { hl.closeInterval() }

// The homeless protocol has no homes: nothing to rebalance, nothing to
// install.
func (hl *homeless) Rebalance() []DirUpdate                 { return nil }
func (hl *homeless) ApplyDirectory([]DirUpdate, stats.Kind) {}

// diffRequest asks a writer for the diffs of a set of pages.
type diffRequest struct {
	pages []pageAsk
}

type pageAsk struct {
	page    int32
	fromSeq int32 // requester's appliedSeq[writer]: send newer records only
}

// diffResponse carries the records satisfying one request.
type diffResponse struct {
	recs []*diffRec
}

// extractPending encodes the pending diff for gp (if any), appending it
// to the page's record chain, and runs GC when the chain grows long. p is
// the process paying the CPU cost: the application process at faults, the
// server process when answering requests.
//
// Labeling: upto is capped at the last *released* interval — a record
// extracted mid-interval carries this node's partial current-interval
// writes (harmless for race-free programs: nobody may conflict with
// unreleased data), but it must not claim to cover the open interval, or
// readers would mark it applied and miss the writes made after
// extraction. order is the causal sort key: the vector-clock sum at the
// covering interval's release (strictly increasing along happens-before),
// estimated as if released now for mid-interval extractions.
func (hl *homeless) extractPending(gp int32, p *sim.Proc) {
	pc := &hl.pages[gp]
	if !pc.hasTwin {
		return
	}
	keep := pc.twinWrite == hl.curInterval
	payload, bytes := hl.h.ExtractDiff(gp, keep)
	pc.hasTwin = keep
	hl.ctr.DiffsMade++

	upto := pc.lastSelf
	var order int64
	if upto < hl.curInterval {
		order = hl.orders[upto-1]
	} else {
		upto = hl.curInterval - 1
		order = hl.orderEstimate()
	}
	mp := &hl.meta[gp]
	mp.recSeq++
	rec := &diffRec{
		page: gp, seq: mp.recSeq, upto: upto, order: order,
		payload: payload, bytes: bytes,
	}
	hl.recs[gp] = append(hl.recs[gp], rec)
	gc := len(hl.recs[gp]) > GCThreshold && hl.soleWriter(pc)
	if gc {
		hl.gcPage(gp)
	}
	p.Advance(hl.h.Costs().DiffCreateCost(diffChangedBytes(bytes)))
	if gc {
		p.Advance(hl.h.Costs().DiffCreateCost(model.PageSize))
	}
}

// soleWriter reports whether no other node has ever write-noticed pc.
func (hl *homeless) soleWriter(pc *pageCommon) bool {
	for q := range pc.notice {
		if q != hl.id && pc.notice[q] != 0 {
			return false
		}
	}
	return true
}

// gcPage squashes a sole-writer page's diff records into one dominating
// record carrying the latest sequence number. Pure mutation: the caller
// charges the CPU cost afterwards.
func (hl *homeless) gcPage(gp int32) {
	recs := hl.recs[gp]
	payloads := make([]any, len(recs))
	var maxUpto int32
	var maxOrder int64
	for i, r := range recs {
		payloads[i] = r.payload
		if r.upto > maxUpto {
			maxUpto = r.upto
		}
		if r.order > maxOrder {
			maxOrder = r.order
		}
	}
	payload, bytes := hl.h.MergeDiffs(gp, payloads)
	mp := &hl.meta[gp]
	mp.recSeq++
	hl.recs[gp] = []*diffRec{{
		page: gp, seq: mp.recSeq, upto: maxUpto, order: maxOrder,
		payload: payload, bytes: bytes,
	}}
}

// recsSinceSeq returns the records for page gp with seq > fromSeq, in
// chain order.
func (hl *homeless) recsSinceSeq(gp, fromSeq int32) []*diffRec {
	var out []*diffRec
	for _, r := range hl.recs[gp] {
		if r.seq > fromSeq {
			out = append(out, r)
		}
	}
	return out
}

// Fault repairs an invalid page on the application process: extract any
// pending local diff first (the multiple-writer protocol preserves this
// node's concurrent writes and keeps the twin honest), then fetch the
// missing diffs from every writer with pending notices — one request per
// writer, one page per request, as in base TreadMarks.
func (hl *homeless) Fault(gp int32) {
	p := hl.h.AppProc()
	c := hl.h.Costs()
	var writers []int
	if tr := c.Trace; tr.Enabled() {
		start := int64(p.Now())
		defer func() {
			tr.Span(obs.EvFault, p.ID(), start, int64(p.Now())-start, stats.KindPage, gp, int64(len(writers)))
		}()
	}
	p.Advance(c.ReadFault)
	hl.ctr.Faults++
	hl.extractPending(gp, p)

	pc := &hl.pages[gp]
	mp := &hl.meta[gp]
	for q := 0; q < hl.nprocs; q++ {
		if q == hl.id || pc.notice[q] <= pc.applied[q] {
			continue
		}
		writers = append(writers, q)
		req := diffRequest{pages: []pageAsk{{page: gp, fromSeq: mp.appliedSeq[q]}}}
		p.Send(hl.h.ServerOf(q), tagDiffReq, req, diffReqHdr+diffReqPerPage, stats.KindDiffReq)
		c.Trace.Instant(obs.EvDiffReq, p.ID(), int64(p.Now()), stats.KindDiffReq, gp, int64(q))
	}
	hl.collectAndApply(writers, []int32{gp})
}

// FetchAggregated repairs all invalid pages of gps with a single request
// per remote writer — the data-aggregation hand optimization of §5 (the
// enhanced interface of Dwarkadas et al. [7]). No communication happens
// if nothing is pending.
func (hl *homeless) FetchAggregated(gps []int32) {
	p := hl.h.AppProc()
	c := hl.h.Costs()
	perWriter := make(map[int][]pageAsk)
	var pages []int32
	for _, gp := range gps {
		pc := &hl.pages[gp]
		if !pc.invalid() {
			continue
		}
		hl.extractPending(gp, p)
		pages = append(pages, gp)
		for q := 0; q < hl.nprocs; q++ {
			if q == hl.id || pc.notice[q] <= pc.applied[q] {
				continue
			}
			perWriter[q] = append(perWriter[q], pageAsk{page: gp, fromSeq: hl.meta[gp].appliedSeq[q]})
		}
	}
	if len(perWriter) == 0 {
		return
	}
	writers := make([]int, 0, len(perWriter))
	if tr := c.Trace; tr.Enabled() {
		start := int64(p.Now())
		defer func() {
			tr.Span(obs.EvFault, p.ID(), start, int64(p.Now())-start, stats.KindPage, pages[0], int64(len(writers)))
		}()
	}
	p.Advance(c.ReadFault) // one access miss covers the whole range
	hl.ctr.Faults++
	for q := range perWriter {
		writers = append(writers, q)
	}
	sort.Ints(writers)
	for _, q := range writers {
		req := diffRequest{pages: perWriter[q]}
		bytes := diffReqHdr + len(req.pages)*diffReqPerPage
		p.Send(hl.h.ServerOf(q), tagDiffReq, req, bytes, stats.KindDiffReq)
		c.Trace.Instant(obs.EvDiffReq, p.ID(), int64(p.Now()), stats.KindDiffReq, -1, int64(q))
	}
	hl.collectAndApply(writers, pages)
}

// collectAndApply receives one diffResponse per writer and applies all
// received records in causal order: ascending release-order label, which
// is strictly increasing along happens-before, with writer id breaking
// ties among concurrent records (whose byte ranges are disjoint in
// race-free programs). Finally the repaired pages' notice tables are
// settled: everything noticed from the queried writers is now applied.
func (hl *homeless) collectAndApply(writers []int, pages []int32) {
	p := hl.h.AppProc()
	c := hl.h.Costs()
	type recFrom struct {
		writer int
		rec    *diffRec
	}
	var all []recFrom
	for _, q := range writers {
		m := p.Recv(hl.h.ServerOf(q), tagDiffResp)
		c.Trace.Instant(obs.EvDiffReply, p.ID(), int64(p.Now()), stats.KindDiff, -1, int64(q))
		for _, r := range m.Payload.(diffResponse).recs {
			all = append(all, recFrom{writer: q, rec: r})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].rec.order != all[j].rec.order {
			return all[i].rec.order < all[j].rec.order
		}
		return all[i].writer < all[j].writer
	})
	for _, rf := range all {
		pc := &hl.pages[rf.rec.page]
		mp := &hl.meta[rf.rec.page]
		hl.h.ApplyDiff(rf.rec.page, rf.rec.payload)
		hl.ctr.DiffsApplied++
		if rf.rec.upto > pc.applied[rf.writer] {
			pc.applied[rf.writer] = rf.rec.upto
		}
		if rf.rec.seq > mp.appliedSeq[rf.writer] {
			mp.appliedSeq[rf.writer] = rf.rec.seq
		}
		p.Advance(c.DiffApplyCost(diffChangedBytes(rf.rec.bytes)))
	}
	// The writers have, by construction, answered with their complete
	// chains: every pending notice from them on the asked pages is
	// satisfied even when the matching diff was empty.
	for _, gp := range pages {
		pc := &hl.pages[gp]
		for _, q := range writers {
			if pc.notice[q] > pc.applied[q] {
				pc.applied[q] = pc.notice[q]
			}
		}
	}
}

// pushMsg carries pushed diffs.
type pushMsg struct {
	proc int
	recs []*diffRec
}

// FirePushes implements the §8 producer-push optimization: send all
// registered pushes, then consume all expected ones.
func (hl *homeless) FirePushes(p *sim.Proc, seq int, kind stats.Kind, pushes []*PushDirective, expects []int) {
	c := hl.h.Costs()
	for _, d := range pushes {
		var recs []*diffRec
		bytes := pushHdr
		for gp := d.First; gp <= d.Last; gp++ {
			hl.extractPending(gp, p)
			for _, r := range hl.recsSinceSeq(gp, d.SentSeq[gp-d.First]) {
				recs = append(recs, r)
				bytes += r.bytes
				if r.seq > d.SentSeq[gp-d.First] {
					d.SentSeq[gp-d.First] = r.seq
				}
			}
		}
		k := stats.KindDiff
		if kind == stats.KindShutdown {
			k = stats.KindShutdown
		}
		p.Send(d.Dest, tagPush+seq, pushMsg{proc: hl.id, recs: recs}, bytes, k)
	}
	for _, src := range expects {
		m := p.Recv(src, tagPush+seq)
		pm := m.Payload.(pushMsg)
		for _, r := range pm.recs {
			pc := &hl.pages[r.page]
			mp := &hl.meta[r.page]
			hl.h.ApplyDiff(r.page, r.payload)
			hl.ctr.DiffsApplied++
			if r.upto > pc.applied[pm.proc] {
				pc.applied[pm.proc] = r.upto
			}
			if r.seq > mp.appliedSeq[pm.proc] {
				mp.appliedSeq[pm.proc] = r.seq
			}
			p.Advance(c.DiffApplyCost(diffChangedBytes(r.bytes)))
		}
	}
}

// HandleServer services a diff request on the server process.
func (hl *homeless) HandleServer(p *sim.Proc, m *sim.Message) bool {
	if m.Tag != tagDiffReq {
		return false
	}
	p.Advance(hl.h.Costs().HandlerWake)
	req := m.Payload.(diffRequest)
	var resp diffResponse
	bytes := 8
	for _, ask := range req.pages {
		hl.extractPending(ask.page, p)
		for _, r := range hl.recsSinceSeq(ask.page, ask.fromSeq) {
			resp.recs = append(resp.recs, r)
			bytes += r.bytes
		}
	}
	p.Send(m.Src, tagDiffResp, resp, bytes, stats.KindDiff)
	return true
}

// diffChangedBytes estimates the changed-data volume in a payload for
// CPU cost charging.
func diffChangedBytes(bytes int) int {
	if bytes < DiffRecHdr {
		return 0
	}
	return bytes - DiffRecHdr
}
