package proto

import (
	"encoding/binary"
	"fmt"
)

// Concrete wire format for write-notice batches. BatchBytes has always
// *modeled* the run-length-encoded size of consistency information in
// flight; this codec realizes the format those numbers describe, so the
// byte model is pinned by round-trip tests instead of being a free
// constant:
//
//	per interval: 16-byte header  [proc, interval, nruns, reserved]  (int32 LE)
//	per run:       8-byte record  [first page, run length]           (int32 LE)
//
// A run covers consecutive ascending page ids, split exactly where
// PageRuns splits them, so len(EncodeBatches(bs)) == BatchBytes(bs) for
// every batch list the protocols produce (batches and intervals are
// never empty on the wire; an interval's page list is preserved
// verbatim, including write-touch order).

// intervalHdrBytes and runBytes are the record sizes of the format.
const (
	intervalHdrBytes = 16
	runBytes         = 8
)

// maxDecodePages bounds the total number of pages one DecodeBatches
// call will materialize (a 4 MB page list). Legitimate notice batches
// are orders of magnitude smaller; without the bound a corrupt 24-byte
// record claiming a 2^31-page run would amplify into a gigabyte
// allocation.
const maxDecodePages = 1 << 20

// EncodeBatches serializes notice batches into the RLE wire format.
func EncodeBatches(bs []NoticeBatch) []byte {
	out := make([]byte, 0, BatchBytes(bs))
	put := func(v int32) {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	for _, b := range bs {
		for _, iv := range b.Intervals {
			put(int32(b.Proc))
			put(iv.Interval)
			put(int32(PageRuns(iv.Pages)))
			put(0) // reserved
			for i := 0; i < len(iv.Pages); {
				j := i + 1
				for j < len(iv.Pages) && iv.Pages[j] == iv.Pages[j-1]+1 {
					j++
				}
				put(iv.Pages[i])
				put(int32(j - i))
				i = j
			}
		}
	}
	return out
}

// DecodeBatches parses the RLE wire format back into notice batches,
// grouping consecutive intervals of the same process into one batch —
// the inverse of EncodeBatches for every batch list the protocols
// produce (per-process batches in order, each non-empty).
func DecodeBatches(buf []byte) ([]NoticeBatch, error) {
	var out []NoticeBatch
	off := 0
	var pages int64
	get := func() int32 {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		return v
	}
	for off < len(buf) {
		if len(buf)-off < intervalHdrBytes {
			return nil, fmt.Errorf("proto: truncated interval header at byte %d", off)
		}
		proc := int(get())
		interval := get()
		nruns := int(get())
		if reserved := get(); reserved != 0 {
			return nil, fmt.Errorf("proto: bad reserved word %d at byte %d", reserved, off-4)
		}
		if nruns < 0 || len(buf)-off < nruns*runBytes {
			return nil, fmt.Errorf("proto: truncated runs (%d) at byte %d", nruns, off)
		}
		iv := IntervalRec{Interval: interval}
		for r := 0; r < nruns; r++ {
			first := get()
			count := get()
			if count <= 0 {
				return nil, fmt.Errorf("proto: bad run length %d at byte %d", count, off-4)
			}
			pages += int64(count)
			if pages > maxDecodePages {
				return nil, fmt.Errorf("proto: implausible page total %d at byte %d", pages, off-4)
			}
			for k := int32(0); k < count; k++ {
				iv.Pages = append(iv.Pages, first+k)
			}
		}
		if len(out) == 0 || out[len(out)-1].Proc != proc {
			out = append(out, NoticeBatch{Proc: proc})
		}
		last := &out[len(out)-1]
		last.Intervals = append(last.Intervals, iv)
	}
	return out, nil
}
