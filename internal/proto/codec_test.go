package proto

import (
	"reflect"
	"testing"
)

// roundTrip asserts encode→decode equality and that the encoded length
// matches the modeled BatchBytes.
func roundTrip(t *testing.T, name string, bs []NoticeBatch) {
	t.Helper()
	enc := EncodeBatches(bs)
	if got, want := len(enc), BatchBytes(bs); got != want {
		t.Errorf("%s: encoded %d bytes, BatchBytes models %d", name, got, want)
	}
	dec, err := DecodeBatches(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(bs) == 0 {
		if len(dec) != 0 {
			t.Errorf("%s: decoded %v from empty input", name, dec)
		}
		return
	}
	if !reflect.DeepEqual(dec, bs) {
		t.Errorf("%s: round trip\n got %+v\nwant %+v", name, dec, bs)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		bs   []NoticeBatch
	}{
		{"empty", nil},
		{"single page", []NoticeBatch{
			{Proc: 2, Intervals: []IntervalRec{{Interval: 7, Pages: []int32{42}}}},
		}},
		{"one contiguous run", []NoticeBatch{
			{Proc: 0, Intervals: []IntervalRec{{Interval: 1, Pages: []int32{10, 11, 12, 13}}}},
		}},
		{"scattered pages", []NoticeBatch{
			{Proc: 1, Intervals: []IntervalRec{{Interval: 3, Pages: []int32{5, 3, 9, 10, 2}}}},
		}},
		{"descending touch order", []NoticeBatch{
			{Proc: 4, Intervals: []IntervalRec{{Interval: 12, Pages: []int32{6, 5, 4}}}},
		}},
		{"multiple procs and intervals", []NoticeBatch{
			{Proc: 0, Intervals: []IntervalRec{
				{Interval: 1, Pages: []int32{0, 1}},
				{Interval: 2, Pages: []int32{1}},
			}},
			{Proc: 3, Intervals: []IntervalRec{
				{Interval: 9, Pages: []int32{100, 101, 102, 200}},
			}},
		}},
	}
	for _, c := range cases {
		roundTrip(t, c.name, c.bs)
	}
}

// TestBatchCodecMatchesPageRuns cross-checks the codec's run splitting
// against PageRuns on generated page lists.
func TestBatchCodecMatchesPageRuns(t *testing.T) {
	lists := [][]int32{
		{0},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 2, 4, 6},
		{7, 6, 5},
		{1, 2, 3, 10, 11, 30},
	}
	for _, pages := range lists {
		bs := []NoticeBatch{{Proc: 1, Intervals: []IntervalRec{{Interval: 1, Pages: pages}}}}
		enc := EncodeBatches(bs)
		wantLen := intervalHdrBytes + PageRuns(pages)*runBytes
		if len(enc) != wantLen {
			t.Errorf("pages %v: %d bytes, want %d (%d runs)", pages, len(enc), wantLen, PageRuns(pages))
		}
		roundTrip(t, "generated", bs)
	}
}

func TestBatchCodecRejectsCorruptInput(t *testing.T) {
	good := EncodeBatches([]NoticeBatch{
		{Proc: 0, Intervals: []IntervalRec{{Interval: 1, Pages: []int32{3, 4}}}},
	})
	if _, err := DecodeBatches(good[:len(good)-3]); err == nil {
		t.Error("truncated runs accepted")
	}
	if _, err := DecodeBatches(good[:intervalHdrBytes-1]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), good...)
	bad[12] = 0xff // reserved word
	if _, err := DecodeBatches(bad); err == nil {
		t.Error("corrupt reserved word accepted")
	}
}
