// Package proto is the pluggable coherence-protocol subsystem of the
// DSM. It defines the Protocol interface — page-fault repair, write
// detection, interval/write-notice propagation at synchronization
// points, and per-node statistics — plus two implementations:
//
//   - the paper's TreadMarks protocol (HomelessLRC): homeless lazy
//     release consistency with twins and run-length-encoded diffs, lazy
//     diff creation and accumulation, moved here from internal/tmk;
//   - a home-based LRC (HomeLRC): every page has a statically assigned
//     home node, writers eagerly flush diffs to the home at each release
//     (acknowledged before the release completes), and a faulting node
//     fetches the whole page from the home with a single round trip.
//
// Both protocols share the lazy-release-consistency core (vector
// timestamps, intervals, write notices — lrc.go); they differ in how
// modified data travels. Race-free programs produce bit-identical
// numerical results under either protocol; only virtual time, message
// counts and byte volumes differ, which is exactly what the protocol
// comparison experiments measure.
//
// The protocol runs below the synchronization layer: barriers, locks and
// the enhanced interface live in internal/tmk and call into a Protocol
// through the hooks defined here, passing consistency batches through
// their own messages. The protocol's own traffic (diff requests, home
// flushes, page fetches) travels on the tag ranges reserved in wire.go.
package proto

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Name identifies a coherence protocol.
type Name string

const (
	// HomelessLRC is TreadMarks' homeless lazy release consistency with
	// distributed diffs (the paper's protocol, and the default).
	HomelessLRC Name = "lrc"
	// HomeLRC is home-based lazy release consistency: eager diff flushes
	// to per-page homes at release, whole-page fetches at faults.
	HomeLRC Name = "hlrc"
)

// Names lists the available protocols.
func Names() []Name { return []Name{HomelessLRC, HomeLRC} }

// Parse resolves a protocol name; the empty string means the default
// (homeless) protocol. Aliases "homeless" and "home" are accepted.
func Parse(s string) (Name, error) {
	switch s {
	case "", string(HomelessLRC), "homeless", "treadmarks":
		return HomelessLRC, nil
	case string(HomeLRC), "home", "home-based":
		return HomeLRC, nil
	}
	return "", fmt.Errorf("proto: unknown protocol %q (have lrc, hlrc)", s)
}

// Host is the runtime surface a protocol instance operates through: the
// node's identity, its processes, the cost model, and the page-level
// data mechanism (twinning, diffing, whole-page copies) provided by the
// region layer. All methods are local — the protocol alone decides what
// travels on the wire.
type Host interface {
	// NodeID returns this node's id in [0, NProcs).
	NodeID() int
	// NProcs returns the number of DSM nodes.
	NProcs() int
	// AppProc returns the node's application process.
	AppProc() *sim.Proc
	// ServerOf maps a node id to its request-server process id.
	ServerOf(node int) int
	// Costs returns the machine cost model.
	Costs() model.Costs

	// MakeTwin snapshots page gp for write detection.
	MakeTwin(gp int32)
	// ExtractDiff encodes the diff of gp against its twin and refreshes
	// (keepTwin) or drops the twin. Returns the payload and its modeled
	// wire size.
	ExtractDiff(gp int32, keepTwin bool) (payload any, bytes int)
	// ApplyDiff writes a diff payload into page gp.
	ApplyDiff(gp int32, payload any)
	// MergeDiffs combines several diff payloads for gp into one.
	MergeDiffs(gp int32, payloads []any) (payload any, bytes int)
	// SnapshotPage returns the full contents of page gp with wire size.
	SnapshotPage(gp int32) (payload any, bytes int)
	// InstallPage overwrites page gp from a snapshot payload.
	InstallPage(gp int32, payload any)
}

// Counters are the per-node protocol event counts.
type Counters struct {
	Faults       int64 // access faults taken
	Twins        int64 // twins created
	DiffsMade    int64 // diffs extracted (lazily or at flush)
	DiffsApplied int64 // diffs applied to local pages
	PageFetches  int64 // whole-page fetches (home-based protocol)

	// Home-policy activity (home-based protocol under a migrating
	// policy; always zero under static homes or the homeless protocol).
	Migrations           int64 // pages whose home moved *to* this node
	StaleForwards        int64 // protocol requests NACKed because the directory moved (server side)
	RedirectedFlushBytes int64 // flush bytes this node re-sent after a stale-home NACK
}

// Add accumulates o into c, field by field — the per-system aggregation
// lives here so a new counter cannot be dropped from run results.
func (c *Counters) Add(o *Counters) {
	c.Faults += o.Faults
	c.Twins += o.Twins
	c.DiffsMade += o.DiffsMade
	c.DiffsApplied += o.DiffsApplied
	c.PageFetches += o.PageFetches
	c.Migrations += o.Migrations
	c.StaleForwards += o.StaleForwards
	c.RedirectedFlushBytes += o.RedirectedFlushBytes
}

// PushDirective is a registered producer-push pairing (the §8 "push
// instead of pull" optimization): at every barrier the owner ships its
// new modifications for the page range [First, Last] to Dest. How — or
// whether — data actually travels is up to the protocol.
type PushDirective struct {
	Dest        int
	First, Last int32   // inclusive global page range
	SentSeq     []int32 // per page: highest record seq already pushed
}

// Protocol is one coherence protocol instance, bound to a node. The
// synchronization layer calls the application-side methods from the
// node's application process; HandleServer runs on the request server.
// A Protocol's state is shared between the two processes; the
// simulator's sequential scheduler serializes all access.
type Protocol interface {
	// Name returns the protocol's identifier.
	Name() Name

	// AddPages registers npages freshly allocated global pages. Pages are
	// numbered sequentially across calls, matching the host's layout.
	AddPages(npages int)

	// WriteTouch performs write-detection bookkeeping for page gp: twin
	// it if the protocol needs a twin, and record it for a write notice
	// at the next release.
	WriteTouch(gp int32)

	// Invalid reports whether gp has unapplied remote modifications.
	Invalid(gp int32) bool

	// Fault repairs one invalid page on the application process.
	Fault(gp int32)

	// FetchAggregated repairs all invalid pages of gps with one request
	// per remote peer (the enhanced interface's data aggregation).
	FetchAggregated(gps []int32)

	// Release closes the open interval: an RC release operation. kind
	// classifies any traffic the protocol generates (KindShutdown during
	// teardown barriers; otherwise the protocol picks its categories).
	Release(kind stats.Kind)

	// VC returns the node's live vector clock (read-only).
	VC() []int32

	// BatchSince builds the notice batches a receiver with vector clock
	// rvc lacks, based on everything this node knows.
	BatchSince(rvc []int32) []NoticeBatch

	// OwnBatch collects this node's own released intervals later than
	// since.
	OwnBatch(since int32) []NoticeBatch

	// ApplyBatches incorporates received write notices (an RC acquire).
	ApplyBatches(bs []NoticeBatch)

	// MarkApplied records that writer's modifications to gp through
	// interval upto are already installed (used by the broadcast
	// optimization, which ships data outside the protocol).
	MarkApplied(gp int32, writer int, upto int32)

	// Rebalance closes a barrier epoch and returns the node's proposed
	// home-directory updates for arbitration at the barrier (home
	// placement policy; nil under the homeless protocol and the static
	// policy). Called after Release on every barrier arrival.
	Rebalance() []DirUpdate

	// ApplyDirectory installs the barrier-arbitrated directory updates,
	// identical on every node. New homes pull pages they cannot prove
	// current; kind classifies that traffic (KindShutdown during
	// teardown barriers). No-op for protocols without homes.
	ApplyDirectory(us []DirUpdate, kind stats.Kind)

	// FirePushes runs at the end of every barrier on the application
	// process: service the registered push directives, then consume the
	// expected incoming pushes. Protocols without push support treat both
	// as no-ops (consumers then fault and fetch as usual).
	FirePushes(p *sim.Proc, seq int, kind stats.Kind, pushes []*PushDirective, expects []int)

	// HandleServer dispatches one protocol message on the request-server
	// process. It reports whether the message belonged to the protocol.
	HandleServer(p *sim.Proc, m *sim.Message) bool

	// Counters returns the node's protocol event counts.
	Counters() *Counters
}

// New creates a protocol instance bound to host. policy selects the
// home-placement policy of the home-based protocol (empty: static); the
// homeless protocol has no homes and ignores it.
func New(name Name, policy PolicyName, h Host) Protocol {
	switch name {
	case "", HomelessLRC:
		return newHomeless(h)
	case HomeLRC:
		return newHome(h, policy)
	}
	panic(fmt.Sprintf("proto: unknown protocol %q", name))
}
