package proto

import (
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want PolicyName
		ok   bool
	}{
		{"", StaticPolicy, true},
		{"static", StaticPolicy, true},
		{"firsttouch", FirstTouchPolicy, true},
		{"first-touch", FirstTouchPolicy, true},
		{"adaptive", AdaptivePolicy, true},
		{"roundrobin", "", false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePolicy(%q) = (%q, %v), want (%q, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range PolicyNames() {
		if got, err := ParsePolicy(string(p)); err != nil || got != p {
			t.Errorf("PolicyNames entry %q does not parse to itself: (%q, %v)", p, got, err)
		}
	}
}

// TestInitialHomesMatchStaticBlocks pins the initial directory to the
// pre-policy block-wise assignment (page i of an npages region homed on
// node i*nprocs/npages) for every policy — the static policy's traffic
// goldens depend on it bit-for-bit.
func TestInitialHomesMatchStaticBlocks(t *testing.T) {
	const nprocs, npages = 4, 32
	for _, name := range PolicyNames() {
		pol := NewHomePolicy(name, nprocs, 0)
		pol.AddPages(npages)
		pol.AddPages(npages) // a second region restarts the block map
		for i := 0; i < npages; i++ {
			want := i * nprocs / npages
			for _, gp := range []int32{int32(i), int32(npages + i)} {
				if got := pol.HomeOf(gp); got != want {
					t.Fatalf("%s: HomeOf(%d) = %d, want %d", name, gp, got, want)
				}
			}
		}
	}
}

func TestStaticPolicyNeverProposes(t *testing.T) {
	pol := NewHomePolicy(StaticPolicy, 4, 1)
	pol.AddPages(8)
	for e := 0; e < 10; e++ {
		for gp := int32(0); gp < 8; gp++ {
			pol.NoteWrite(gp)
			pol.NoteFlush(gp, 3, 4096)
		}
		if props := pol.Rebalance(); len(props) != 0 {
			t.Fatalf("static policy proposed %v", props)
		}
	}
}

// TestFirstTouchClaims: a page is claimed by its first writer, the
// claim is proposed exactly once, and an applied arbitration settles
// the page everywhere — including at a claimant that lost the tie.
func TestFirstTouchClaims(t *testing.T) {
	pol := NewHomePolicy(FirstTouchPolicy, 4, 2).(*firstTouch)
	pol.AddPages(8)
	pol.NoteWrite(5)
	pol.NoteWrite(5) // same epoch: deduplicated
	props := pol.Rebalance()
	if len(props) != 1 || props[0] != (DirUpdate{Page: 5, Home: 2}) {
		t.Fatalf("claims = %v, want [{5 2}]", props)
	}
	if props := pol.Rebalance(); len(props) != 0 {
		t.Fatalf("re-proposed already-sent claim: %v", props)
	}
	// Arbitration went to node 1: the page is claimed and never
	// re-proposed, and the directory follows the broadcast.
	pol.Apply([]DirUpdate{{Page: 5, Home: 1}})
	if pol.HomeOf(5) != 1 {
		t.Fatalf("HomeOf(5) = %d after arbitration, want 1", pol.HomeOf(5))
	}
	pol.NoteWrite(5)
	if props := pol.Rebalance(); len(props) != 0 {
		t.Fatalf("claimed page re-proposed: %v", props)
	}
}

// TestMergeDirProposals: first proposal per page in node order wins (a
// same-epoch first-touch tie goes to the lowest node id) and the merged
// list is page-sorted.
func TestMergeDirProposals(t *testing.T) {
	merged := MergeDirProposals([][]DirUpdate{
		1: {{Page: 7, Home: 1}, {Page: 3, Home: 1}},
		2: {{Page: 3, Home: 2}, {Page: 9, Home: 2}},
		3: {{Page: 7, Home: 3}},
	})
	want := []DirUpdate{{Page: 3, Home: 1}, {Page: 7, Home: 1}, {Page: 9, Home: 2}}
	if len(merged) != len(want) {
		t.Fatalf("merged = %v, want %v", merged, want)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged = %v, want %v", merged, want)
		}
	}
}

// rebalanceEpoch drives one accounting epoch of an adaptive policy:
// per-writer flush bytes for one page, then the epoch close.
func rebalanceEpoch(ad *adaptive, gp int32, bytesByWriter map[int]int) []DirUpdate {
	for q, b := range bytesByWriter {
		ad.NoteFlush(gp, q, b)
	}
	return ad.Rebalance()
}

// TestAdaptiveMigratesToDominantWriter: a steady single remote writer
// captures the page after exactly AdaptiveWindow epochs, and the
// proposal resets the accounting.
func TestAdaptiveMigratesToDominantWriter(t *testing.T) {
	ad := NewHomePolicy(AdaptivePolicy, 4, 0).(*adaptive)
	ad.AddPages(4)
	for e := 1; e < AdaptiveWindow; e++ {
		if props := rebalanceEpoch(ad, 0, map[int]int{3: 4096}); len(props) != 0 {
			t.Fatalf("epoch %d: proposed %v before a full window", e, props)
		}
	}
	props := rebalanceEpoch(ad, 0, map[int]int{3: 4096})
	if len(props) != 1 || props[0] != (DirUpdate{Page: 0, Home: 3}) {
		t.Fatalf("full-window proposals = %v, want [{0 3}]", props)
	}
	// The page needs a fresh window at its new home before moving again.
	ad.Apply(props)
	for e := 0; e < AdaptiveWindow-1; e++ {
		if props := rebalanceEpoch(ad, 0, map[int]int{2: 4096}); len(props) != 0 {
			t.Fatalf("post-move epoch %d: proposed %v without fresh history", e, props)
		}
	}
}

// TestAdaptiveHysteresisPingPong: a page whose dominant writer
// alternates every epoch holds a 50% share, below the 60% migration
// threshold, so the page never moves — the migration count stays at
// zero no matter how long the pattern runs.
func TestAdaptiveHysteresisPingPong(t *testing.T) {
	ad := NewHomePolicy(AdaptivePolicy, 4, 0).(*adaptive)
	ad.AddPages(4)
	moves := 0
	for e := 0; e < 50; e++ {
		writer := 2 + e%2 // writers 2 and 3 alternate epochs
		props := rebalanceEpoch(ad, 1, map[int]int{writer: 4096})
		moves += len(props)
	}
	if moves != 0 {
		t.Fatalf("alternating writers moved the page %d times, want 0", moves)
	}
}

// TestAdaptiveShareThreshold: a 3/4 share triggers, a 1/2 share does
// not (the threshold is 3/5).
func TestAdaptiveShareThreshold(t *testing.T) {
	ad := NewHomePolicy(AdaptivePolicy, 4, 0).(*adaptive)
	ad.AddPages(4)
	for e := 0; e < AdaptiveWindow-1; e++ {
		rebalanceEpoch(ad, 2, map[int]int{1: 3 * 1024, 2: 1024})
	}
	props := rebalanceEpoch(ad, 2, map[int]int{1: 3 * 1024, 2: 1024})
	if len(props) != 1 || props[0] != (DirUpdate{Page: 2, Home: 1}) {
		t.Fatalf("75%% share proposals = %v, want [{2 1}]", props)
	}
}

// TestAdaptiveSelfWriteGuard: a page the home itself keeps writing
// never migrates away, however dominant the remote flusher looks —
// without the guard two nodes sharing a page would steal it back and
// forth (the home's own writes generate no flushes).
func TestAdaptiveSelfWriteGuard(t *testing.T) {
	ad := NewHomePolicy(AdaptivePolicy, 4, 0).(*adaptive)
	ad.AddPages(4)
	for e := 0; e < 3*AdaptiveWindow; e++ {
		ad.NoteWrite(0) // the home writes the page every epoch
		if props := rebalanceEpoch(ad, 0, map[int]int{3: 8192}); len(props) != 0 {
			t.Fatalf("epoch %d: self-written page proposed away: %v", e, props)
		}
	}
	// Once the home stops writing for a full window, the dominant
	// remote writer may take the page.
	var props []DirUpdate
	for e := 0; e < AdaptiveWindow+1 && len(props) == 0; e++ {
		props = rebalanceEpoch(ad, 0, map[int]int{3: 8192})
	}
	if len(props) != 1 || props[0] != (DirUpdate{Page: 0, Home: 3}) {
		t.Fatalf("quiesced home kept the page: %v", props)
	}
}

// TestAdaptiveStaleBurstGuard: a one-time flush burst (initialization)
// cannot capture a page once its writer goes quiet — the dominant
// writer must have flushed in the closing epoch.
func TestAdaptiveStaleBurstGuard(t *testing.T) {
	ad := NewHomePolicy(AdaptivePolicy, 4, 0).(*adaptive)
	ad.AddPages(4)
	rebalanceEpoch(ad, 0, map[int]int{1: 1 << 20}) // epoch 1: huge burst
	for e := 0; e < 2*AdaptiveWindow; e++ {
		if props := rebalanceEpoch(ad, 0, nil); len(props) != 0 {
			t.Fatalf("quiet epoch %d: stale burst captured the page: %v", e, props)
		}
	}
}
