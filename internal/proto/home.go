package proto

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The home-based LRC protocol (HLRC, after Zhou/Iftode/Li's home-based
// protocols and Cudennec's survey of S-DSM design axes): every page has
// a home node whose copy is the master copy.
//
//   - Home *placement* is a policy (policy.go): static block-wise
//     assignment by default, or the migrating first-touch/adaptive
//     policies, which repoint pages through barrier-arbitrated
//     directory updates. The coherence mechanism below is identical
//     under every policy.
//   - At every release, the writer extracts the diffs of its dirtied
//     remote-homed pages and flushes them to the homes, one message per
//     home, and waits for the acknowledgments before the release
//     completes. This makes the home's copy current before any causally
//     later acquire can observe the release — the invariant the fetch
//     path relies on.
//   - Write notices (invalidations) propagate exactly as in the homeless
//     protocol, through the shared LRC core.
//   - A fault fetches the whole page from its home in one round trip,
//     regardless of how many writers modified it: fewer messages than
//     homeless diff collection on multi-writer pages, more bytes than a
//     sparse diff.
//
// Directory changes and staleness. Every directory update is decided at
// one barrier (the manager arbitrates the policies' proposals) and
// installed by each node as it leaves that barrier, so a node never
// *sends* protocol traffic under a directory older than the newest
// decided epoch. A *server*, however, can still be an epoch behind its
// clients — its application process may not have processed its own
// barrier departure yet — and during a migration the new home may still
// be pulling the page's contents from the old home. Both windows are
// closed by NACKs: a flush or page request that cannot be served is
// rejected page-by-page with the server's directory mapping and epoch,
// and the sender re-sends — to the corrected home when the NACK carries
// a newer directory, to the same home (a pure retry) when it does not.
// The migration pull itself travels on dedicated tags and is served
// from the old home's retained copy, which is current through every
// release the new home can have heard of; diffs that arrive at the new
// home while the pull is in flight are stashed and re-applied over the
// installed snapshot.
//
// The protocol trades release latency (synchronous flush round trip) and
// whole-page transfer volume for single-round-trip faults and zero diff
// storage at third parties. Race-free programs compute bit-identical
// results under both protocols and all home policies; the equivalence
// tests in internal/harness assert this on every application.

// staleRetryLimit bounds the redirect/retry rounds of one flush or
// fetch. Directory epochs advance once per barrier and servers lag
// their clients by at most one epoch, so a handful of rounds settles
// any race; hitting the bound means the directory never converged.
const staleRetryLimit = 64

// pullState tracks one in-flight migration pull at a page's new home:
// diffs flushed to the new home before the old home's snapshot arrives
// are stashed and re-applied over the installed snapshot.
type pullState struct {
	stash []any
}

type home struct {
	lrcCore
	pol      HomePolicy
	dirEpoch int32                // barrier epochs with directory updates installed
	pulls    map[int32]*pullState // pages this node gained and is still pulling
}

func newHome(h Host, policy PolicyName) *home {
	hb := &home{pulls: map[int32]*pullState{}}
	hb.init(h)
	hb.pol = NewHomePolicy(policy, hb.nprocs, hb.id)
	return hb
}

func (hb *home) Name() Name { return HomeLRC }

// AddPages registers the new region's pages with the home policy, which
// assigns the initial block-wise homes (identical on every node).
func (hb *home) AddPages(npages int) {
	hb.addPages(npages)
	hb.pol.AddPages(npages)
}

func (hb *home) homeOf(gp int32) int { return hb.pol.HomeOf(gp) }

// WriteTouch: self-homed pages skip twinning — the node's copy is the
// master copy, so write detection (for notices) is all that is needed.
// The policy observes every write touch (first-touch claims).
func (hb *home) WriteTouch(gp int32) {
	hb.pol.NoteWrite(gp)
	hb.writeTouch(gp, hb.homeOf(gp) != hb.id)
}

// flushPage is one page's diff inside a flush message.
type flushPage struct {
	page    int32
	payload any
	bytes   int
}

// flushMsg carries a release's diffs for the pages homed at one node,
// stamped with the writer's directory epoch so a lagging home can tell
// a misdirected flush from one it should retry-NACK.
type flushMsg struct {
	writer   int
	interval int32 // the releasing interval the diffs belong to
	epoch    int32 // the writer's installed directory epoch
	shutdown bool  // classify the ack as shutdown traffic too
	pages    []flushPage
}

// flushAck acknowledges a flush. rejected lists the pages the server
// could not accept, each mapped to the server's current home for it,
// together with the server's directory epoch: the writer re-sends those
// pages — to the corrected homes when the NACK's directory is no older
// than its own, to the same home otherwise (a retry while the server
// catches up).
type flushAck struct {
	epoch    int32
	rejected []DirUpdate
}

// Release closes the open interval after eagerly flushing the dirtied
// remote-homed pages' diffs to their homes. The release blocks until
// every home has acknowledged every page, re-sending any page that a
// stale or mid-migration home NACKed, so the homes are current before
// any causally later acquire.
func (hb *home) Release(kind stats.Kind) {
	p := hb.h.AppProc()
	c := hb.h.Costs()
	flushKind := stats.KindDiff
	shutdown := kind == stats.KindShutdown
	if shutdown {
		flushKind = stats.KindShutdown
	}

	perHome := map[int][]flushPage{}
	for _, gp := range hb.dirty {
		hm := hb.homeOf(gp)
		if hm == hb.id {
			continue // the live copy is the master copy
		}
		pc := &hb.pages[gp]
		if !pc.hasTwin {
			panic("proto: dirty remote-homed page without twin")
		}
		payload, bytes := hb.h.ExtractDiff(gp, false)
		pc.hasTwin = false
		hb.ctr.DiffsMade++
		perHome[hm] = append(perHome[hm], flushPage{page: gp, payload: payload, bytes: bytes})
		p.Advance(c.DiffCreateCost(diffChangedBytes(bytes)))
	}
	interval := hb.curInterval
	sendFlush := func(hm int, pages []flushPage, resend bool) {
		msg := flushMsg{writer: hb.id, interval: interval, epoch: hb.dirEpoch, shutdown: shutdown, pages: pages}
		bytes := flushHdr
		for _, fp := range pages {
			bytes += fp.bytes
		}
		if resend {
			hb.ctr.RedirectedFlushBytes += int64(bytes)
		}
		p.Send(hb.h.ServerOf(hm), tagFlush, msg, bytes, flushKind)
	}
	ackFrom := make([]int, 0, len(perHome))
	for _, hm := range sortedHomes(perHome) {
		sendFlush(hm, perHome[hm], false)
		ackFrom = append(ackFrom, hm)
	}
	hb.closeInterval()
	// sent indexes every flushed page for NACK re-sends; built lazily
	// on the first rejection so the common settled path (always, under
	// the static policy) pays nothing for it.
	var sent map[int32]flushPage
	for round := 0; len(ackFrom) > 0; round++ {
		if round > staleRetryLimit {
			panic("proto: home flush never settled (directory did not converge)")
		}
		hm := ackFrom[0]
		ackFrom = ackFrom[1:]
		m := p.Recv(hb.h.ServerOf(hm), tagFlushAck)
		ack, _ := m.Payload.(flushAck)
		if len(ack.rejected) == 0 {
			continue
		}
		if ack.epoch >= hb.dirEpoch {
			hb.pol.Apply(ack.rejected) // learn the newer directory
		}
		if sent == nil {
			sent = map[int32]flushPage{}
			for _, pages := range perHome {
				for _, fp := range pages {
					sent[fp.page] = fp
				}
			}
		}
		re := map[int][]flushPage{}
		for _, u := range ack.rejected {
			nh := hb.homeOf(u.Page)
			re[nh] = append(re[nh], sent[u.Page])
		}
		for _, nh := range sortedHomes(re) {
			sendFlush(nh, re[nh], true)
			ackFrom = append(ackFrom, nh)
		}
	}
}

// pageNeed asks the home for a page, carrying the requester's pending
// notice vector for it. The home asserts its copy already covers the
// need — guaranteed by the acknowledged-flush-before-release invariant.
type pageNeed struct {
	page int32
	need []int32
}

type pageReq struct {
	epoch int32 // the requester's installed directory epoch
	pages []pageNeed
}

// pageCopy is one page in a reply: the full contents plus the home's
// applied vector, which settles the requester's notices for every
// writer at once.
type pageCopy struct {
	page    int32
	data    any
	bytes   int
	applied []int32
}

// pageResp answers a page request. rejected lists pages the server
// could not serve (not homed here, or mid-migration), mapped to the
// server's current home for them; the requester re-asks as for a flush
// NACK.
type pageResp struct {
	epoch    int32
	pages    []pageCopy
	rejected []DirUpdate
}

// migReq is a new home's migration pull: after a directory update moved
// pages here, fetch their contents from the old home. Served from the
// old home's retained copy regardless of its directory state.
type migReq struct {
	shutdown bool
	pages    []pageNeed
}

// Fault repairs an invalid page with a single whole-page fetch from its
// home: a one-page aggregated fetch (same messages, bytes and costs).
func (hb *home) Fault(gp int32) { hb.FetchAggregated([]int32{gp}) }

// FetchAggregated repairs all invalid pages of gps with one whole-page
// request per distinct home, re-asking per the NACKed directory when a
// home moved underneath the fault.
func (hb *home) FetchAggregated(gps []int32) {
	p := hb.h.AppProc()
	c := hb.h.Costs()
	needs := map[int32]pageNeed{}
	local := map[int32]any{}
	perHome := map[int][]int32{}
	for _, gp := range gps {
		if !hb.pages[gp].invalid() {
			continue
		}
		hm := hb.homeOf(gp)
		if hm == hb.id {
			panic("proto: home node faulted on its own page (flush invariant broken)")
		}
		if payload, ok := hb.extractLocal(gp, p); ok {
			local[gp] = payload
		}
		needs[gp] = hb.needOf(gp)
		perHome[hm] = append(perHome[hm], gp)
	}
	if len(perHome) == 0 {
		return
	}
	peers := 0
	if tr := c.Trace; tr.Enabled() {
		start := int64(p.Now())
		first := perHome[sortedHomes(perHome)[0]][0]
		defer func() {
			tr.Span(obs.EvFault, p.ID(), start, int64(p.Now())-start, stats.KindPage, first, int64(peers))
		}()
	}
	p.Advance(c.ReadFault) // one access miss covers the whole range
	hb.ctr.Faults++
	for round := 0; len(perHome) > 0; round++ {
		if round > staleRetryLimit {
			panic("proto: page fetch never settled (directory did not converge)")
		}
		homes := sortedHomes(perHome)
		for _, hm := range homes {
			req := pageReq{epoch: hb.dirEpoch}
			for _, gp := range perHome[hm] {
				req.pages = append(req.pages, needs[gp])
			}
			bytes := pageReqHdr + len(req.pages)*(pageReqPerPage+pageRespPerVC*hb.nprocs)
			p.Send(hb.h.ServerOf(hm), tagPageReq, req, bytes, stats.KindPageReq)
			peers++
			c.Trace.Instant(obs.EvPageReq, p.ID(), int64(p.Now()), stats.KindPageReq, perHome[hm][0], int64(hm))
		}
		next := map[int][]int32{}
		for _, hm := range homes {
			m := p.Recv(hb.h.ServerOf(hm), tagPageResp)
			resp := m.Payload.(pageResp)
			for _, pg := range resp.pages {
				hb.installPage(p, pg, local)
			}
			if len(resp.rejected) == 0 {
				continue
			}
			if resp.epoch >= hb.dirEpoch {
				hb.pol.Apply(resp.rejected)
			}
			for _, u := range resp.rejected {
				nh := hb.homeOf(u.Page)
				next[nh] = append(next[nh], u.Page)
			}
		}
		perHome = next
	}
}

// extractLocal preserves this node's unreleased writes to gp before the
// page is overwritten by the home's copy (the multiple-writer case). It
// returns the diff payload to re-apply after installation, if any.
func (hb *home) extractLocal(gp int32, p *sim.Proc) (any, bool) {
	pc := &hb.pages[gp]
	if !pc.hasTwin {
		return nil, false
	}
	payload, bytes := hb.h.ExtractDiff(gp, false)
	pc.hasTwin = false
	hb.ctr.DiffsMade++
	p.Advance(hb.h.Costs().DiffCreateCost(diffChangedBytes(bytes)))
	return payload, true
}

// needOf snapshots the page's pending notice vector for a request.
func (hb *home) needOf(gp int32) pageNeed {
	need := make([]int32, hb.nprocs)
	copy(need, hb.pages[gp].notice)
	return pageNeed{page: gp, need: need}
}

// installPage installs a fetched page copy: overwrite the local page,
// settle the notice table from the home's applied vector, and re-apply
// any preserved local writes on a refreshed twin (so the next flush
// diffs against the home image).
func (hb *home) installPage(p *sim.Proc, pg pageCopy, local map[int32]any) {
	c := hb.h.Costs()
	pc := &hb.pages[pg.page]
	hb.h.InstallPage(pg.page, pg.data)
	hb.ctr.PageFetches++
	c.Trace.Instant(obs.EvPageFetch, p.ID(), int64(p.Now()), stats.KindPage, pg.page, 0)
	for q := 0; q < hb.nprocs; q++ {
		if q != hb.id && pg.applied[q] > pc.applied[q] {
			pc.applied[q] = pg.applied[q]
		}
	}
	p.Advance(c.PageCopy)
	if payload, ok := local[pg.page]; ok {
		hb.h.MakeTwin(pg.page) // twin = home image: next diff is ours alone
		pc.hasTwin = true
		pc.twinWrite = hb.curInterval
		hb.h.ApplyDiff(pg.page, payload)
		hb.ctr.DiffsApplied++
		p.Advance(c.DiffApply)
	}
}

// Rebalance closes a barrier epoch for the home policy and returns its
// directory proposals for arbitration.
func (hb *home) Rebalance() []DirUpdate { return hb.pol.Rebalance() }

// ApplyDirectory installs the barrier-arbitrated directory updates.
// For every page this node gained whose local copy it cannot prove
// current (pending write notices), it synchronously pulls the contents
// from the old home before returning — i.e. before this node can leave
// the barrier — stashing and re-applying any diffs that race the pull.
func (hb *home) ApplyDirectory(us []DirUpdate, kind stats.Kind) {
	if len(us) == 0 {
		return
	}
	olds := make([]int, len(us))
	for i, u := range us {
		olds[i] = hb.homeOf(u.Page)
	}
	hb.pol.Apply(us)
	hb.dirEpoch++
	tr := hb.h.Costs().Trace
	if tr.Enabled() && hb.id == 0 {
		// One epoch marker per directory decision, on the manager node.
		tr.Instant(obs.EvMigrationEpoch, hb.h.AppProc().ID(), int64(hb.h.AppProc().Now()), kind, -1, int64(len(us)))
	}
	perOld := map[int][]int32{}
	for i, u := range us {
		if int(u.Home) != hb.id || olds[i] == hb.id {
			continue
		}
		hb.ctr.Migrations++
		if tr.Enabled() {
			tr.Instant(obs.EvHomeMove, hb.h.AppProc().ID(), int64(hb.h.AppProc().Now()), kind, u.Page, int64(olds[i]))
		}
		if hb.pages[u.Page].invalid() {
			perOld[olds[i]] = append(perOld[olds[i]], u.Page)
			hb.pulls[u.Page] = &pullState{}
		}
	}
	if len(perOld) == 0 {
		return
	}
	p := hb.h.AppProc()
	c := hb.h.Costs()
	reqKind := stats.KindPageReq
	shutdown := kind == stats.KindShutdown
	if shutdown {
		reqKind = stats.KindShutdown
	}
	homes := sortedHomes(perOld)
	for _, hm := range homes {
		req := migReq{shutdown: shutdown}
		for _, gp := range perOld[hm] {
			req.pages = append(req.pages, hb.needOf(gp))
		}
		bytes := pageReqHdr + len(req.pages)*(pageReqPerPage+pageRespPerVC*hb.nprocs)
		p.Send(hb.h.ServerOf(hm), tagMigReq, req, bytes, reqKind)
	}
	for _, hm := range homes {
		m := p.Recv(hb.h.ServerOf(hm), tagMigResp)
		for _, pg := range m.Payload.(pageResp).pages {
			hb.installPage(p, pg, nil)
			ps := hb.pulls[pg.page]
			for _, payload := range ps.stash {
				// A diff flushed here while the pull was in flight:
				// re-apply it over the installed snapshot (its notice
				// bookkeeping already happened at first application).
				hb.h.ApplyDiff(pg.page, payload)
				hb.ctr.DiffsApplied++
				p.Advance(c.DiffApply)
			}
			delete(hb.pulls, pg.page)
		}
	}
}

// FirePushes: the push optimization ships diff records, which only the
// homeless protocol keeps; under HLRC every release already pushes diffs
// to the home eagerly, so directives and expectations are ignored and
// consumers fetch from the home on demand.
func (hb *home) FirePushes(p *sim.Proc, seq int, kind stats.Kind, pushes []*PushDirective, expects []int) {
}

// HandleServer services home-side traffic: eager flushes, whole-page
// fetch requests, and migration pulls.
func (hb *home) HandleServer(p *sim.Proc, m *sim.Message) bool {
	c := hb.h.Costs()
	switch m.Tag {
	case tagFlush:
		p.Advance(c.HandlerWake)
		fm := m.Payload.(flushMsg)
		var rejected []DirUpdate
		for _, fp := range fm.pages {
			hm := hb.homeOf(fp.page)
			switch {
			case hm != hb.id:
				// Misdirected: the writer's directory (or ours) is
				// stale. NACK with our mapping and let the writer
				// re-send.
				hb.ctr.StaleForwards++
				rejected = append(rejected, DirUpdate{Page: fp.page, Home: int32(hm)})
				continue
			case fm.epoch > hb.dirEpoch:
				// The writer runs a directory epoch we have not
				// installed yet — we may be about to lose this page.
				// Don't guess; the writer retries once we catch up.
				hb.ctr.StaleForwards++
				rejected = append(rejected, DirUpdate{Page: fp.page, Home: int32(hb.id)})
				continue
			}
			pc := &hb.pages[fp.page]
			hb.h.ApplyDiff(fp.page, fp.payload)
			hb.ctr.DiffsApplied++
			if fm.interval > pc.applied[fm.writer] {
				pc.applied[fm.writer] = fm.interval
			}
			hb.pol.NoteFlush(fp.page, fm.writer, fp.bytes)
			if ps := hb.pulls[fp.page]; ps != nil {
				ps.stash = append(ps.stash, fp.payload)
			}
			p.Advance(c.DiffApplyCost(diffChangedBytes(fp.bytes)))
		}
		ackKind := stats.KindControl
		if fm.shutdown {
			ackKind = stats.KindShutdown
		}
		ack := flushAck{epoch: hb.dirEpoch, rejected: rejected}
		p.Send(m.Src, tagFlushAck, ack, flushAckBytes+DirUpdateBytes(rejected), ackKind)
		return true
	case tagPageReq:
		p.Advance(c.HandlerWake)
		req := m.Payload.(pageReq)
		resp := pageResp{epoch: hb.dirEpoch}
		bytes := pageRespHdr
		for _, pn := range req.pages {
			hm := hb.homeOf(pn.page)
			switch {
			case hm != hb.id:
				hb.ctr.StaleForwards++
				resp.rejected = append(resp.rejected, DirUpdate{Page: pn.page, Home: int32(hm)})
				continue
			case hb.pulls[pn.page] != nil || req.epoch > hb.dirEpoch:
				// Mid-migration (our pull of the page is in flight) or
				// the requester is an epoch ahead: have it retry.
				hb.ctr.StaleForwards++
				resp.rejected = append(resp.rejected, DirUpdate{Page: pn.page, Home: int32(hb.id)})
				continue
			}
			pc := &hb.pages[pn.page]
			for q := 0; q < hb.nprocs; q++ {
				if q == hb.id {
					continue // own writes are in the live copy by definition
				}
				if pn.need[q] > pc.applied[q] {
					panic(fmt.Sprintf(
						"proto: home %d behind on page %d: need interval %d of writer %d, have %d "+
							"(flush-before-release invariant broken)",
						hb.id, pn.page, pn.need[q], q, pc.applied[q]))
				}
			}
			resp.pages = append(resp.pages, hb.copyOf(pn.page))
			bytes += resp.pages[len(resp.pages)-1].bytes + pageRespPerVC*hb.nprocs
		}
		bytes += DirUpdateBytes(resp.rejected)
		p.Send(m.Src, tagPageResp, resp, bytes, stats.KindPage)
		return true
	case tagMigReq:
		p.Advance(c.HandlerWake)
		req := m.Payload.(migReq)
		var resp pageResp
		bytes := pageRespHdr
		for _, pn := range req.pages {
			// Served regardless of our directory state: we were the
			// page's home when the update was decided, and our retained
			// copy is current through every release the new home can
			// have heard of.
			pc := &hb.pages[pn.page]
			for q := 0; q < hb.nprocs; q++ {
				if q == hb.id {
					continue
				}
				if pn.need[q] > pc.applied[q] {
					panic(fmt.Sprintf(
						"proto: old home %d behind on migrating page %d: need interval %d of writer %d, have %d",
						hb.id, pn.page, pn.need[q], q, pc.applied[q]))
				}
			}
			resp.pages = append(resp.pages, hb.copyOf(pn.page))
			bytes += resp.pages[len(resp.pages)-1].bytes + pageRespPerVC*hb.nprocs
		}
		respKind := stats.KindPage
		if req.shutdown {
			respKind = stats.KindShutdown
		}
		p.Send(m.Src, tagMigResp, resp, bytes, respKind)
		return true
	}
	return false
}

// copyOf snapshots a page and its applied vector for a reply. The copy
// carries every released write of this node itself.
func (hb *home) copyOf(gp int32) pageCopy {
	pc := &hb.pages[gp]
	data, sz := hb.h.SnapshotPage(gp)
	applied := make([]int32, hb.nprocs)
	copy(applied, pc.applied)
	applied[hb.id] = hb.vc[hb.id]
	return pageCopy{page: gp, data: data, bytes: sz, applied: applied}
}

// sortedHomes returns a map's home-node keys in ascending order (the
// deterministic send order every multi-home operation uses).
func sortedHomes[T any](m map[int][]T) []int {
	out := make([]int, 0, len(m))
	for hm := range m {
		out = append(out, hm)
	}
	sort.Ints(out)
	return out
}
