package proto

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The home-based LRC protocol (HLRC, after Zhou/Iftode/Li's home-based
// protocols and Cudennec's survey of S-DSM design axes): every page has
// a statically assigned home node whose copy is the master copy.
//
//   - Homes are assigned block-wise within each region, so under an
//     owner-computes block distribution most writes land on self-homed
//     pages, which need neither twins nor flushes.
//   - At every release, the writer extracts the diffs of its dirtied
//     remote-homed pages and flushes them to the homes, one message per
//     home, and waits for the acknowledgments before the release
//     completes. This makes the home's copy current before any causally
//     later acquire can observe the release — the invariant the fetch
//     path relies on.
//   - Write notices (invalidations) propagate exactly as in the homeless
//     protocol, through the shared LRC core.
//   - A fault fetches the whole page from its home in one round trip,
//     regardless of how many writers modified it: fewer messages than
//     homeless diff collection on multi-writer pages, more bytes than a
//     sparse diff.
//
// The protocol trades release latency (synchronous flush round trip) and
// whole-page transfer volume for single-round-trip faults and zero diff
// storage at third parties. Race-free programs compute bit-identical
// results under both protocols; the equivalence tests in
// internal/harness assert this on every application.

// homePage is the home protocol's extra per-page state.
type homePage struct {
	home int // statically assigned home node
}

type home struct {
	lrcCore
	meta []homePage
}

func newHome(h Host) *home {
	hb := &home{}
	hb.init(h)
	return hb
}

func (hb *home) Name() Name { return HomeLRC }

// AddPages assigns homes block-wise across the new region's pages: page
// i of an npages region is homed on node i*nprocs/npages, matching the
// BLOCK data distribution every regular application uses, so the common
// case writes self-homed pages.
func (hb *home) AddPages(npages int) {
	hb.addPages(npages)
	for i := 0; i < npages; i++ {
		hb.meta = append(hb.meta, homePage{home: i * hb.nprocs / npages})
	}
}

func (hb *home) homeOf(gp int32) int { return hb.meta[gp].home }

// WriteTouch: self-homed pages skip twinning — the node's copy is the
// master copy, so write detection (for notices) is all that is needed.
func (hb *home) WriteTouch(gp int32) {
	hb.writeTouch(gp, hb.homeOf(gp) != hb.id)
}

// flushPage is one page's diff inside a flush message.
type flushPage struct {
	page    int32
	payload any
	bytes   int
}

// flushMsg carries a release's diffs for the pages homed at one node.
type flushMsg struct {
	writer   int
	interval int32 // the releasing interval the diffs belong to
	shutdown bool  // classify the ack as shutdown traffic too
	pages    []flushPage
}

// Release closes the open interval after eagerly flushing the dirtied
// remote-homed pages' diffs to their homes. The release blocks until
// every home has acknowledged, so the homes are current before any
// causally later acquire.
func (hb *home) Release(kind stats.Kind) {
	p := hb.h.AppProc()
	c := hb.h.Costs()
	flushKind := stats.KindDiff
	shutdown := kind == stats.KindShutdown
	if shutdown {
		flushKind = stats.KindShutdown
	}

	perHome := map[int][]flushPage{}
	for _, gp := range hb.dirty {
		hm := hb.homeOf(gp)
		if hm == hb.id {
			continue // the live copy is the master copy
		}
		pc := &hb.pages[gp]
		if !pc.hasTwin {
			panic("proto: dirty remote-homed page without twin")
		}
		payload, bytes := hb.h.ExtractDiff(gp, false)
		pc.hasTwin = false
		hb.ctr.DiffsMade++
		perHome[hm] = append(perHome[hm], flushPage{page: gp, payload: payload, bytes: bytes})
		p.Advance(c.DiffCreateCost(diffChangedBytes(bytes)))
	}
	homes := make([]int, 0, len(perHome))
	for hm := range perHome {
		homes = append(homes, hm)
	}
	sort.Ints(homes)
	for _, hm := range homes {
		msg := flushMsg{writer: hb.id, interval: hb.curInterval, shutdown: shutdown, pages: perHome[hm]}
		bytes := flushHdr
		for _, fp := range msg.pages {
			bytes += fp.bytes
		}
		p.Send(hb.h.ServerOf(hm), tagFlush, msg, bytes, flushKind)
	}
	hb.closeInterval()
	for _, hm := range homes {
		p.Recv(hb.h.ServerOf(hm), tagFlushAck)
	}
}

// pageNeed asks the home for a page, carrying the requester's pending
// notice vector for it. The home asserts its copy already covers the
// need — guaranteed by the acknowledged-flush-before-release invariant.
type pageNeed struct {
	page int32
	need []int32
}

type pageReq struct {
	pages []pageNeed
}

// pageCopy is one page in a reply: the full contents plus the home's
// applied vector, which settles the requester's notices for every
// writer at once.
type pageCopy struct {
	page    int32
	data    any
	bytes   int
	applied []int32
}

type pageResp struct {
	pages []pageCopy
}

// Fault repairs an invalid page with a single whole-page fetch from its
// home: a one-page aggregated fetch (same messages, bytes and costs).
func (hb *home) Fault(gp int32) { hb.FetchAggregated([]int32{gp}) }

// FetchAggregated repairs all invalid pages of gps with one whole-page
// request per distinct home.
func (hb *home) FetchAggregated(gps []int32) {
	p := hb.h.AppProc()
	c := hb.h.Costs()
	perHome := map[int][]pageNeed{}
	local := map[int32]any{}
	for _, gp := range gps {
		if !hb.pages[gp].invalid() {
			continue
		}
		hm := hb.homeOf(gp)
		if hm == hb.id {
			panic("proto: home node faulted on its own page (flush invariant broken)")
		}
		if payload, ok := hb.extractLocal(gp, p); ok {
			local[gp] = payload
		}
		perHome[hm] = append(perHome[hm], hb.needOf(gp))
	}
	if len(perHome) == 0 {
		return
	}
	p.Advance(c.ReadFault) // one access miss covers the whole range
	hb.ctr.Faults++
	homes := make([]int, 0, len(perHome))
	for hm := range perHome {
		homes = append(homes, hm)
	}
	sort.Ints(homes)
	for _, hm := range homes {
		req := pageReq{pages: perHome[hm]}
		bytes := pageReqHdr + len(req.pages)*(pageReqPerPage+pageRespPerVC*hb.nprocs)
		p.Send(hb.h.ServerOf(hm), tagPageReq, req, bytes, stats.KindPageReq)
	}
	for _, hm := range homes {
		m := p.Recv(hb.h.ServerOf(hm), tagPageResp)
		for _, pg := range m.Payload.(pageResp).pages {
			hb.installPage(p, pg, local)
		}
	}
}

// extractLocal preserves this node's unreleased writes to gp before the
// page is overwritten by the home's copy (the multiple-writer case). It
// returns the diff payload to re-apply after installation, if any.
func (hb *home) extractLocal(gp int32, p *sim.Proc) (any, bool) {
	pc := &hb.pages[gp]
	if !pc.hasTwin {
		return nil, false
	}
	payload, bytes := hb.h.ExtractDiff(gp, false)
	pc.hasTwin = false
	hb.ctr.DiffsMade++
	p.Advance(hb.h.Costs().DiffCreateCost(diffChangedBytes(bytes)))
	return payload, true
}

// needOf snapshots the page's pending notice vector for a request.
func (hb *home) needOf(gp int32) pageNeed {
	need := make([]int32, hb.nprocs)
	copy(need, hb.pages[gp].notice)
	return pageNeed{page: gp, need: need}
}

// installPage installs a fetched page copy: overwrite the local page,
// settle the notice table from the home's applied vector, and re-apply
// any preserved local writes on a refreshed twin (so the next flush
// diffs against the home image).
func (hb *home) installPage(p *sim.Proc, pg pageCopy, local map[int32]any) {
	c := hb.h.Costs()
	pc := &hb.pages[pg.page]
	hb.h.InstallPage(pg.page, pg.data)
	hb.ctr.PageFetches++
	for q := 0; q < hb.nprocs; q++ {
		if q != hb.id && pg.applied[q] > pc.applied[q] {
			pc.applied[q] = pg.applied[q]
		}
	}
	p.Advance(c.PageCopy)
	if payload, ok := local[pg.page]; ok {
		hb.h.MakeTwin(pg.page) // twin = home image: next diff is ours alone
		pc.hasTwin = true
		pc.twinWrite = hb.curInterval
		hb.h.ApplyDiff(pg.page, payload)
		hb.ctr.DiffsApplied++
		p.Advance(c.DiffApply)
	}
}

// FirePushes: the push optimization ships diff records, which only the
// homeless protocol keeps; under HLRC every release already pushes diffs
// to the home eagerly, so directives and expectations are ignored and
// consumers fetch from the home on demand.
func (hb *home) FirePushes(p *sim.Proc, seq int, kind stats.Kind, pushes []*PushDirective, expects []int) {
}

// HandleServer services home-side traffic: eager flushes and whole-page
// fetch requests.
func (hb *home) HandleServer(p *sim.Proc, m *sim.Message) bool {
	c := hb.h.Costs()
	switch m.Tag {
	case tagFlush:
		p.Advance(c.HandlerWake)
		fm := m.Payload.(flushMsg)
		for _, fp := range fm.pages {
			if hb.homeOf(fp.page) != hb.id {
				panic("proto: flush for a page not homed here")
			}
			pc := &hb.pages[fp.page]
			hb.h.ApplyDiff(fp.page, fp.payload)
			hb.ctr.DiffsApplied++
			if fm.interval > pc.applied[fm.writer] {
				pc.applied[fm.writer] = fm.interval
			}
			p.Advance(c.DiffApplyCost(diffChangedBytes(fp.bytes)))
		}
		ackKind := stats.KindControl
		if fm.shutdown {
			ackKind = stats.KindShutdown
		}
		p.Send(m.Src, tagFlushAck, nil, flushAckBytes, ackKind)
		return true
	case tagPageReq:
		p.Advance(c.HandlerWake)
		req := m.Payload.(pageReq)
		var resp pageResp
		bytes := pageRespHdr
		for _, pn := range req.pages {
			if hb.homeOf(pn.page) != hb.id {
				panic("proto: page request for a page not homed here")
			}
			pc := &hb.pages[pn.page]
			for q := 0; q < hb.nprocs; q++ {
				if q == hb.id {
					continue // own writes are in the live copy by definition
				}
				if pn.need[q] > pc.applied[q] {
					panic(fmt.Sprintf(
						"proto: home %d behind on page %d: need interval %d of writer %d, have %d "+
							"(flush-before-release invariant broken)",
						hb.id, pn.page, pn.need[q], q, pc.applied[q]))
				}
			}
			data, sz := hb.h.SnapshotPage(pn.page)
			applied := make([]int32, hb.nprocs)
			copy(applied, pc.applied)
			// The copy carries every released write of the home itself.
			applied[hb.id] = hb.vc[hb.id]
			resp.pages = append(resp.pages, pageCopy{page: pn.page, data: data, bytes: sz, applied: applied})
			bytes += sz + pageRespPerVC*hb.nprocs
		}
		p.Send(m.Src, tagPageResp, resp, bytes, stats.KindPage)
		return true
	}
	return false
}
