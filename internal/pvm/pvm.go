// Package pvm provides the hand-coded message-passing substrate of the
// paper: an interface in the style of PVMe, IBM's SP/2-optimized
// implementation of PVM, which the paper's hand-coded message-passing
// programs run on. It offers typed point-to-point sends, broadcast,
// reduction and exchange over the simulated switch, charging the pack/
// unpack CPU costs message-passing libraries of the era paid for staging
// data through transmit buffers.
package pvm

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scalar is the set of element types messages may carry.
type Scalar interface {
	~float32 | ~float64 | ~int32 | ~int64 | ~complex64 | ~complex128
}

func sizeOf[T Scalar]() int {
	var z T
	switch any(z).(type) {
	case float32, int32:
		return 4
	case float64, int64, complex64:
		return 8
	case complex128:
		return 16
	}
	panic("pvm: unsupported element type")
}

const tagBase = 20 << 16

// System is a PVMe virtual machine: n tasks on the simulated switch.
type System struct {
	nprocs  int
	costs   model.Costs
	cluster *sim.Cluster
}

// NewSystem creates a message-passing machine with nprocs tasks.
func NewSystem(nprocs int, costs model.Costs) *System {
	if nprocs < 1 {
		panic("pvm: need at least one task")
	}
	return &System{
		nprocs:  nprocs,
		costs:   costs,
		cluster: sim.New(costs.SimConfig(nprocs)),
	}
}

// Stats returns the interconnect statistics.
func (s *System) Stats() *stats.Stats { return s.cluster.Stats() }

// Costs returns the machine cost model.
func (s *System) Costs() model.Costs { return s.costs }

// NProcs returns the task count.
func (s *System) NProcs() int { return s.nprocs }

// Run executes body on every task.
func (s *System) Run(body func(pv *PVM)) error {
	return s.cluster.Run(func(p *sim.Proc) {
		body(&PVM{p: p, sys: s})
	})
}

// PVM is the per-task handle.
type PVM struct {
	p   *sim.Proc
	sys *System
}

// Costs returns the machine cost model.
func (pv *PVM) Costs() model.Costs { return pv.sys.costs }

// ID returns the task id.
func (pv *PVM) ID() int { return pv.p.ID() }

// NProcs returns the task count.
func (pv *PVM) NProcs() int { return pv.sys.nprocs }

// Advance charges virtual compute time.
func (pv *PVM) Advance(d sim.Time) { pv.p.Advance(d) }

// Now returns the virtual clock.
func (pv *PVM) Now() sim.Time { return pv.p.Now() }

// Send packs and transmits vals to task dst under tag. The values are
// snapshotted (as pvm_pack does), so the caller may reuse the buffer.
func Send[T Scalar](pv *PVM, dst, tag int, vals []T) {
	buf := make([]T, len(vals))
	copy(buf, vals)
	bytes := len(vals) * sizeOf[T]()
	pv.p.Advance(pv.sys.costs.PackCost(bytes))
	pv.p.Send(dst, tagBase+tag, buf, bytes, stats.KindData)
}

// Recv blocks for a message from src (AnySrc for a wildcard) under tag
// and unpacks it into dst, returning the element count.
func Recv[T Scalar](pv *PVM, src, tag int, dst []T) int {
	m := pv.p.Recv(src, tagBase+tag)
	vals := m.Payload.([]T)
	n := copy(dst, vals)
	pv.p.Advance(pv.sys.costs.UnpackCost(n * sizeOf[T]()))
	return n
}

// AnySrc is the wildcard source for Recv.
const AnySrc = sim.AnySrc

// Bcast sends vals from root to every other task (n-1 messages, as PVMe
// broadcast on the SP/2 switch). The transmit buffer is packed once and
// reused for every destination, as pvm_mcast does. Non-root tasks
// receive into vals.
func Bcast[T Scalar](pv *PVM, root, tag int, vals []T) {
	if pv.ID() == root {
		buf := make([]T, len(vals))
		copy(buf, vals)
		bytes := len(vals) * sizeOf[T]()
		pv.p.Advance(pv.sys.costs.PackCost(bytes))
		for q := 0; q < pv.sys.nprocs; q++ {
			if q != root {
				pv.p.Send(q, tagBase+tag, buf, bytes, stats.KindData)
			}
		}
		return
	}
	Recv(pv, root, tag, vals)
}

// Exchange swaps equal-length slices with a partner task: both sides
// send, then receive. Used for nearest-neighbor boundary exchange.
func Exchange[T Scalar](pv *PVM, partner, tag int, send, recv []T) {
	Send(pv, partner, tag, send)
	Recv(pv, partner, tag, recv)
}

// gatherContribs receives one contribution from every other task,
// charging the same per-message unpack costs as Recv, and returns them
// indexed by sender. Reductions fold the gathered contributions in
// task order, never in arrival order — the repo-wide reduction rule
// (DESIGN.md): virtual-time perturbations such as network contention
// legitimately reorder arrivals, and a floating-point sum's association
// must not depend on them. Contributions are truncated to width.
func gatherContribs[T Scalar](pv *PVM, tag, width int) [][]T {
	out := make([][]T, pv.sys.nprocs)
	for i := 0; i < pv.sys.nprocs-1; i++ {
		m := pv.p.Recv(sim.AnySrc, tagBase+tag)
		vals := m.Payload.([]T)
		if len(vals) > width {
			vals = vals[:width]
		}
		pv.p.Advance(pv.sys.costs.UnpackCost(len(vals) * sizeOf[T]()))
		out[m.Src] = vals
	}
	return out
}

// ReduceSum performs a sum reduction of vals to root (every non-root
// task sends its contribution; root accumulates in task order), then
// returns the result on root. Non-root tasks return their own
// contribution.
func ReduceSum[T Scalar](pv *PVM, root, tag int, vals []T) []T {
	out := make([]T, len(vals))
	copy(out, vals)
	if pv.ID() == root {
		for _, c := range gatherContribs[T](pv, tag, len(out)) {
			for k := range c {
				out[k] += c[k]
			}
		}
		return out
	}
	Send(pv, root, tag, vals)
	return out
}

// AllReduceSum is ReduceSum followed by a broadcast of the result.
func AllReduceSum[T Scalar](pv *PVM, tag int, vals []T) []T {
	out := ReduceSum(pv, 0, tag, vals)
	Bcast(pv, 0, tag+1, out)
	return out
}

// Reduce folds every task's contribution into root element-wise with op
// (max, min, ...), in task order. Concurrent reductions must use
// distinct tags.
func Reduce[T Scalar](pv *PVM, root, tag int, vals []T, op func(a, b T) T) []T {
	out := make([]T, len(vals))
	copy(out, vals)
	if pv.ID() == root {
		for _, c := range gatherContribs[T](pv, tag, len(out)) {
			for k := range c {
				out[k] = op(out[k], c[k])
			}
		}
		return out
	}
	Send(pv, root, tag, vals)
	return out
}

// AllReduce is Reduce to task 0 followed by a broadcast of the result.
func AllReduce[T Scalar](pv *PVM, tag int, vals []T, op func(a, b T) T) []T {
	out := Reduce(pv, 0, tag, vals, op)
	Bcast(pv, 0, tag+1, out)
	return out
}

// BarrierSilent is Barrier with its messages recorded under the
// untracked category; the measurement harness uses it for timed-region
// boundaries.
func (pv *PVM) BarrierSilent(tag int) {
	if tr := pv.sys.costs.Trace; tr.Enabled() {
		tr.Instant(obs.EvBarrierArrive, pv.ID(), int64(pv.Now()), stats.KindShutdown, -1, int64(tag))
		defer func() {
			tr.Instant(obs.EvBarrierDepart, pv.ID(), int64(pv.Now()), stats.KindShutdown, -1, int64(tag))
		}()
	}
	if pv.ID() == 0 {
		for i := 0; i < pv.sys.nprocs-1; i++ {
			pv.p.Recv(AnySrc, tagBase+tag)
		}
		for q := 1; q < pv.sys.nprocs; q++ {
			pv.p.Send(q, tagBase+tag+1, nil, 4, stats.KindShutdown)
		}
		return
	}
	pv.p.Send(0, tagBase+tag, nil, 4, stats.KindShutdown)
	pv.p.Recv(0, tagBase+tag+1)
}

// SendUntracked transmits vals without traffic accounting or pack cost.
// The harness uses it to gather results (checksums) after measurement.
func SendUntracked[T Scalar](pv *PVM, dst, tag int, vals []T) {
	buf := make([]T, len(vals))
	copy(buf, vals)
	pv.p.Send(dst, tagBase+tag, buf, len(vals)*sizeOf[T](), stats.KindShutdown)
}

// RecvUntracked receives a message sent with SendUntracked.
func RecvUntracked[T Scalar](pv *PVM, src, tag int, dst []T) int {
	m := pv.p.Recv(src, tagBase+tag)
	return copy(dst, m.Payload.([]T))
}

// Barrier synchronizes all tasks through task 0 (gather + release).
// Hand-coded message-passing programs rarely need it — data messages
// carry the synchronization — but the XHPF runtime uses it.
func (pv *PVM) Barrier(tag int) {
	if tr := pv.sys.costs.Trace; tr.Enabled() {
		tr.Instant(obs.EvBarrierArrive, pv.ID(), int64(pv.Now()), stats.KindData, -1, int64(tag))
		defer func() {
			tr.Instant(obs.EvBarrierDepart, pv.ID(), int64(pv.Now()), stats.KindData, -1, int64(tag))
		}()
	}
	one := []int32{0}
	if pv.ID() == 0 {
		buf := []int32{0}
		for i := 0; i < pv.sys.nprocs-1; i++ {
			Recv(pv, AnySrc, tag, buf)
		}
		for q := 1; q < pv.sys.nprocs; q++ {
			Send(pv, q, tag+1, one)
		}
		return
	}
	Send(pv, 0, tag, one)
	Recv(pv, 0, tag+1, one)
}
