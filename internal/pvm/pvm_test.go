package pvm

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newSys(n int) *System { return NewSystem(n, model.SP2()) }

func TestSendRecv(t *testing.T) {
	sys := newSys(2)
	if err := sys.Run(func(pv *PVM) {
		if pv.ID() == 0 {
			Send(pv, 1, 5, []float32{1, 2, 3})
		} else {
			buf := make([]float32, 3)
			n := Recv(pv, 0, 5, buf)
			if n != 3 || buf[2] != 3 {
				t.Errorf("recv n=%d buf=%v", n, buf)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().MsgsOf(stats.KindData); got != 1 {
		t.Errorf("msgs = %d, want 1", got)
	}
	if got := sys.Stats().BytesOf(stats.KindData); got != 12+32 {
		t.Errorf("bytes = %d, want 44", got)
	}
}

func TestSendSnapshotsBuffer(t *testing.T) {
	sys := newSys(2)
	if err := sys.Run(func(pv *PVM) {
		if pv.ID() == 0 {
			buf := []float32{7}
			Send(pv, 1, 1, buf)
			buf[0] = 99 // must not affect the in-flight message
			Send(pv, 1, 2, buf)
		} else {
			buf := make([]float32, 1)
			Recv(pv, 0, 1, buf)
			if buf[0] != 7 {
				t.Errorf("first message = %v, want 7 (pack must snapshot)", buf[0])
			}
			Recv(pv, 0, 2, buf)
			if buf[0] != 99 {
				t.Errorf("second message = %v, want 99", buf[0])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(pv *PVM) {
		buf := []float64{0}
		if pv.ID() == 3 {
			buf[0] = 42
		}
		Bcast(pv, 3, 9, buf)
		if buf[0] != 42 {
			t.Errorf("proc %d: bcast value %v", pv.ID(), buf[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().MsgsOf(stats.KindData); got != 7 {
		t.Errorf("bcast msgs = %d, want n-1 = 7", got)
	}
}

func TestExchange(t *testing.T) {
	sys := newSys(2)
	if err := sys.Run(func(pv *PVM) {
		me := float32(pv.ID())
		recv := make([]float32, 1)
		Exchange(pv, 1-pv.ID(), 4, []float32{me}, recv)
		if recv[0] != float32(1-pv.ID()) {
			t.Errorf("proc %d got %v", pv.ID(), recv[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(pv *PVM) {
		vals := []float64{float64(pv.ID()), 1}
		out := ReduceSum(pv, 0, 11, vals)
		if pv.ID() == 0 {
			if out[0] != 28 || out[1] != 8 {
				t.Errorf("reduce = %v, want [28 8]", out)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(pv *PVM) {
		out := AllReduceSum(pv, 20, []int64{int64(pv.ID() + 1)})
		if out[0] != 10 {
			t.Errorf("proc %d: allreduce = %v, want 10", pv.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(pv *PVM) {
		for i := 0; i < 3; i++ {
			pv.Barrier(100 + 2*i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// 3 barriers * 2*(n-1) messages.
	if got := sys.Stats().TotalMsgs(); got != 18 {
		t.Errorf("barrier msgs = %d, want 18", got)
	}
}

func TestPackCostCharged(t *testing.T) {
	costs := model.SP2()
	sys := NewSystem(2, costs)
	var sendTime int64
	if err := sys.Run(func(pv *PVM) {
		if pv.ID() == 0 {
			big := make([]float64, 100000)
			Send(pv, 1, 1, big)
			sendTime = int64(pv.Now())
		} else {
			buf := make([]float64, 100000)
			Recv(pv, 0, 1, buf)
		}
	}); err != nil {
		t.Fatal(err)
	}
	wantMin := int64(costs.PackCost(800000)) + int64(costs.SendOverhead)
	if sendTime < wantMin {
		t.Errorf("send time %d < pack+overhead %d: pack cost not charged", sendTime, wantMin)
	}
}

func TestDeterministicWildcardRecv(t *testing.T) {
	run := func() string {
		sys := newSys(4)
		order := ""
		if err := sys.Run(func(pv *PVM) {
			if pv.ID() == 0 {
				buf := make([]int32, 1)
				for i := 0; i < 3; i++ {
					Recv(pv, AnySrc, 7, buf)
					order += string(rune('0' + buf[0]))
				}
			} else {
				pv.Advance(sim.Time(1000 * pv.ID() * pv.ID()))
				Send(pv, 0, 7, []int32{int32(pv.ID())})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic wildcard order: %q vs %q", a, b)
	}
}

func TestReduceWithMax(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(pv *PVM) {
		out := Reduce(pv, 0, 30, []float64{float64(pv.ID() * pv.ID())},
			func(a, b float64) float64 { return max(a, b) })
		if pv.ID() == 0 && out[0] != 49 {
			t.Errorf("max reduce = %v, want 49", out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMin(t *testing.T) {
	sys := newSys(4)
	if err := sys.Run(func(pv *PVM) {
		out := AllReduce(pv, 32, []float32{float32(10 - pv.ID())},
			func(a, b float32) float32 { return min(a, b) })
		if out[0] != 7 {
			t.Errorf("proc %d: min allreduce = %v, want 7", pv.ID(), out[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierSilentUntracked: boundary barriers must not pollute the
// Table 2/3 totals.
func TestBarrierSilentUntracked(t *testing.T) {
	sys := newSys(8)
	if err := sys.Run(func(pv *PVM) {
		pv.BarrierSilent(40)
		pv.BarrierSilent(42)
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 0 {
		t.Errorf("silent barriers counted %d messages", got)
	}
	if got := sys.Stats().MsgsOf(stats.KindShutdown); got != 2*2*7 {
		t.Errorf("untracked msgs = %d, want %d", got, 2*2*7)
	}
}

func TestUntrackedTransfer(t *testing.T) {
	sys := newSys(2)
	if err := sys.Run(func(pv *PVM) {
		if pv.ID() == 0 {
			SendUntracked(pv, 1, 50, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			if n := RecvUntracked(pv, 0, 50, buf); n != 3 || buf[2] != 3 {
				t.Errorf("untracked recv n=%d buf=%v", n, buf)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 0 {
		t.Errorf("untracked transfer counted %d messages", got)
	}
}

func TestAccessors(t *testing.T) {
	sys := newSys(3)
	if sys.NProcs() != 3 {
		t.Errorf("System.NProcs = %d", sys.NProcs())
	}
	if sys.Costs().Latency <= 0 {
		t.Error("System.Costs not wired")
	}
	if err := sys.Run(func(pv *PVM) {
		if pv.NProcs() != 3 {
			t.Errorf("PVM.NProcs = %d", pv.NProcs())
		}
		if pv.Costs().Latency != sys.Costs().Latency {
			t.Error("PVM.Costs mismatch")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestComplexScalars(t *testing.T) {
	sys := newSys(2)
	if err := sys.Run(func(pv *PVM) {
		if pv.ID() == 0 {
			Send(pv, 1, 60, []complex128{complex(1, 2)})
		} else {
			buf := make([]complex128, 1)
			Recv(pv, 0, 60, buf)
			if buf[0] != complex(1, 2) {
				t.Errorf("complex transfer got %v", buf[0])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
