// Package fft provides the radix-2 complex FFT used by the 3-D FFT
// application (the NAS FT kernel of the paper §5.4). It is a standard
// iterative in-place Cooley-Tukey transform; all problem dimensions in
// the paper (128, 128, 64) are powers of two.
package fft

import "math"

// twiddleCache memoizes per-size twiddle tables. The simulator runs the
// same transform sizes millions of times, and regenerating twiddles
// dominates otherwise. Not safe for concurrent mutation, which is fine:
// the simulator serializes all execution.
var twiddleCache = map[int][]complex128{}

func twiddles(n int, inverse bool) []complex128 {
	key := n
	if inverse {
		key = -n
	}
	if tw, ok := twiddleCache[key]; ok {
		return tw
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	tw := make([]complex128, n/2)
	for i := range tw {
		ang := sign * 2 * math.Pi * float64(i) / float64(n)
		tw[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	twiddleCache[key] = tw
	return tw
}

// Pow2 reports whether n is a positive power of two.
func Pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Transform computes the in-place DFT of x. len(x) must be a power of
// two. inverse computes the unnormalized inverse (divide by len(x) to
// invert a forward transform).
func Transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if !Pow2(n) {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := twiddles(n, inverse)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			k := 0
			for off := 0; off < half; off++ {
				u := x[base+off]
				v := x[base+off+half] * tw[k]
				x[base+off] = u + v
				x[base+off+half] = u - v
				k += step
			}
		}
	}
}

// Butterflies returns the number of butterfly operations Transform
// performs for length n: (n/2)·log2(n). Used for virtual-time charging.
func Butterflies(n int) int {
	if n <= 1 {
		return 0
	}
	lg := 0
	for m := n; m > 1; m >>= 1 {
		lg++
	}
	return n / 2 * lg
}

// Forward computes the in-place forward DFT.
func Forward(x []complex128) { Transform(x, false) }

// Inverse computes the in-place unnormalized inverse DFT.
func Inverse(x []complex128) { Transform(x, true) }
