package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func approxEqual(a, b []complex128, tol float64) bool {
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func ramp(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7)-3, float64((i*i)%5)-2)
	}
	return x
}

func TestMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		x := ramp(n)
		want := naiveDFT(x, false)
		Forward(x)
		if !approxEqual(x, want, 1e-9*float64(n)) {
			t.Errorf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	n := 32
	x := ramp(n)
	want := naiveDFT(x, true)
	Inverse(x)
	if !approxEqual(x, want, 1e-9*float64(n)) {
		t.Error("inverse FFT disagrees with naive inverse DFT")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(re, im [16]float64) bool {
		x := make([]complex128, 16)
		orig := make([]complex128, 16)
		for i := range x {
			x[i] = complex(math.Mod(re[i], 100), math.Mod(im[i], 100))
			orig[i] = x[i]
		}
		Forward(x)
		Inverse(x)
		for i := range x {
			x[i] /= 16
		}
		return approxEqual(x, orig, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(re [32]float64) bool {
		x := make([]complex128, 32)
		var tEnergy float64
		for i := range x {
			x[i] = complex(math.Mod(re[i], 10), 0)
			tEnergy += real(x[i] * cmplx.Conj(x[i]))
		}
		Forward(x)
		var fEnergy float64
		for i := range x {
			fEnergy += real(x[i] * cmplx.Conj(x[i]))
		}
		return math.Abs(fEnergy-32*tEnergy) < 1e-6*(1+fEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(re1, re2 [8]float64) bool {
		a := make([]complex128, 8)
		b := make([]complex128, 8)
		sum := make([]complex128, 8)
		for i := range a {
			a[i] = complex(math.Mod(re1[i], 50), 0)
			b[i] = complex(0, math.Mod(re2[i], 50))
			sum[i] = a[i] + b[i]
		}
		Forward(a)
		Forward(b)
		Forward(sum)
		for i := range a {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", i, v)
		}
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=12")
		}
	}()
	Transform(make([]complex128, 12), false)
}

func TestButterflies(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 4, 8: 12, 128: 448, 64: 192}
	for n, want := range cases {
		if got := Butterflies(n); got != want {
			t.Errorf("Butterflies(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPow2(t *testing.T) {
	for n, want := range map[int]bool{1: true, 2: true, 3: false, 64: true, 0: false, -4: false, 96: false} {
		if Pow2(n) != want {
			t.Errorf("Pow2(%d) = %v", n, Pow2(n))
		}
	}
}

func BenchmarkTransform128(b *testing.B) {
	x := ramp(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
