package fabric

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/store"
)

// stalledWorker starts a worker that sleeps d per streamed record (the
// deliberately-slow-worker hook for adaptive sizing tests).
func stalledWorker(t *testing.T, d time.Duration) (*Worker, string) {
	t.Helper()
	w := NewWorker(nil)
	w.Workers = 2
	w.StallPerRecord = d
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv.URL
}

// storeWorker starts a worker backed by a persistent store in dir.
func storeWorker(t *testing.T, dir string) (*Worker, string) {
	t.Helper()
	st, err := store.Open(dir, exp.StoreOptions(0))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	w := NewWorker(nil)
	w.Workers = 2
	w.Store = st
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv.URL
}

// TestAdaptiveRangeSizingSlowWorker pairs a fast worker with a
// deliberately slow one (4x the per-record stall). Once measured, the
// slow worker's grants must shrink below the configured range size —
// splitting pending ranges, which grows the range count — while the
// merged bytes stay identical to a local sweep.
func TestAdaptiveRangeSizingSlowWorker(t *testing.T) {
	base := testGrid(t)
	var specs []exp.Spec
	for i := 0; i < 8; i++ {
		specs = append(specs, base...) // 64 positions; dedup keeps runs cheap
	}
	_, fastURL := stalledWorker(t, 20*time.Millisecond)
	_, slowURL := stalledWorker(t, 80*time.Millisecond)
	c := runFleet(t, &Coordinator{
		Workers:   []string{fastURL, slowURL},
		RangeSize: 4,
	}, specs, false)

	var slow *workerState
	for _, ws := range c.workers {
		if ws.addr == NormalizeAddr(slowURL) {
			slow = ws
		}
	}
	if slow == nil {
		t.Fatal("slow worker missing from the registered fleet")
	}
	if len(slow.grantSizes) < 2 {
		t.Fatalf("slow worker served only %d leases; sizing never had a measurement to act on", len(slow.grantSizes))
	}
	if slow.grantSizes[0] != 4 {
		t.Errorf("first (unmeasured) grant was %d specs, want the configured 4", slow.grantSizes[0])
	}
	shrunk := false
	for _, n := range slow.grantSizes[1:] {
		if n < 4 {
			shrunk = true
		}
	}
	if !shrunk {
		t.Errorf("slow worker's grants never shrank below the base size: %v", slow.grantSizes)
	}
	if got := c.Snapshot().RangesTotal; got <= len(specs)/4 {
		t.Errorf("range count %d after adaptive grants, want splits to grow it past %d", got, len(specs)/4)
	}
}

// TestWorkerStoreWarmRerun re-runs a fleet sweep against a fresh
// worker sharing the first worker's store directory: every leased spec
// must be served from disk (zero simulations) with identical bytes.
func TestWorkerStoreWarmRerun(t *testing.T) {
	specs := testGrid(t)
	dir := t.TempDir()

	cold, coldURL := storeWorker(t, dir)
	runFleet(t, &Coordinator{Workers: []string{coldURL}, RangeSize: 3}, specs, false)
	if snap := cold.Progress.Snapshot(); snap.Executed != len(specs) || snap.DiskHits != 0 {
		t.Errorf("cold worker executed/disk = %d/%d, want %d/0", snap.Executed, snap.DiskHits, len(specs))
	}

	warm, warmURL := storeWorker(t, dir)
	runFleet(t, &Coordinator{Workers: []string{warmURL}, RangeSize: 3}, specs, false)
	snap := warm.Progress.Snapshot()
	if snap.Executed != 0 {
		t.Errorf("warm worker executed %d simulations, want 0 (all leases should hit the store)", snap.Executed)
	}
	if snap.DiskHits != len(specs) {
		t.Errorf("warm worker served %d specs from the store, want %d", snap.DiskHits, len(specs))
	}
}

// TestDrainFinishesInflightLease drains a worker mid-lease: the
// in-flight lease must stream to completion, the store must close
// flushed and verifiable, later leases must answer 503, and the
// coordinator must finish the sweep locally — byte-identically.
func TestDrainFinishesInflightLease(t *testing.T) {
	specs := testGrid(t)
	dir := t.TempDir()
	st, err := store.Open(dir, exp.StoreOptions(0))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	w := NewWorker(nil)
	w.Workers = 2
	w.Store = st
	w.StallPerRecord = 50 * time.Millisecond
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	c := &Coordinator{Workers: []string{srv.URL}, RangeSize: 4, MaxWorkerFailures: 1, Logf: t.Logf}
	var got bytes.Buffer
	var runErr error
	done := make(chan struct{})
	go func() {
		_, runErr = c.Run(&got, specs)
		close(done)
	}()

	// Wait until the first lease is executing, then drain under it.
	deadline := time.Now().Add(10 * time.Second)
	for w.Progress.Snapshot().Executed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no lease started within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	<-done
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if want := localBytes(t, specs, false, false); !bytes.Equal(want, got.Bytes()) {
		t.Errorf("drained sweep diverged from the local reference:\nlocal:\n%s\nfabric:\n%s", want, got.Bytes())
	}
	if c.Snapshot().LocalRecords == 0 {
		t.Error("post-drain ranges did not fall back to local execution")
	}

	// A post-drain lease is refused outright.
	body, _ := json.Marshal(RunRequest{SchemaVersion: exp.SchemaVersion, Lease: "post-drain", Keys: []string{specs[0].Key()}})
	resp, err := http.Post(srv.URL+RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain lease answered %s, want 503", resp.Status)
	}

	// Drain closed the store; a fresh handle sees the completed lease's
	// records, all frames intact.
	st2, err := store.Open(dir, exp.StoreOptions(0))
	if err != nil {
		t.Fatalf("reopening drained store: %v", err)
	}
	defer st2.Close()
	rep, err := st2.Verify(nil)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.CorruptFrames != 0 || rep.BadValues != 0 {
		t.Errorf("drained store verify: %+v, want no corruption", rep)
	}
	if rep.Entries < 4 {
		t.Errorf("drained store holds %d records, want at least the completed lease's 4", rep.Entries)
	}
}
