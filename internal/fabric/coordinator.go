package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
)

// Coordinator distributes a spec list across HTTP workers and merges
// their record streams into spec order, byte-identically to a local
// sweep. Zero values get sane defaults; a Coordinator is good for one
// Run at a time.
type Coordinator struct {
	// Workers are worker base addresses (host:port or full URLs). An
	// empty or unreachable fleet degrades to local execution.
	Workers []string
	// RangeSize is the number of specs per lease; 0 means 4.
	RangeSize int
	// LeaseTimeout bounds one lease's wall time before the coordinator
	// abandons it and reassigns the range; 0 means 2 minutes.
	LeaseTimeout time.Duration
	// MaxAttempts caps remote attempts per range before it falls back
	// to local execution; 0 means 3.
	MaxAttempts int
	// MaxWorkerFailures retires a worker after that many consecutive
	// failed leases; 0 means 3.
	MaxWorkerFailures int
	// Speedup and Observe mirror exp.Engine.JoinSpeedup / Observe on
	// the workers and the local fallback engine.
	Speedup bool
	Observe bool
	// Engine is the local fallback engine; nil builds exp.New(). Its
	// JoinSpeedup/Observe are forced to match Speedup/Observe.
	Engine *exp.Engine
	// Client performs worker requests; nil uses a fresh http.Client
	// (per-request contexts carry the deadlines).
	Client *http.Client
	// Metrics, when non-nil, carries the coordinator's fleet counters
	// (and the local engine's host telemetry).
	Metrics *metrics.Registry
	// Out, when non-nil, receives a throttled fleet progress line.
	Out io.Writer
	// Logf, when non-nil, receives one line per fleet event (worker
	// registered/rejected/retired, lease expiry, local fallback).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	start    time.Time
	lastLine time.Time
	workers  []*workerState

	rangesTotal  int
	recordsTotal int64

	recordsDone   atomic.Int64
	recordsFailed atomic.Int64
	duplicates    atomic.Int64
	localRecords  atomic.Int64

	metricsOnce sync.Once
	tbl         *leaseTable
}

// workerState is one registered worker's live accounting.
type workerState struct {
	addr string // normalized base URL

	leases   atomic.Int64
	records  atomic.Int64
	expiries atomic.Int64
	failures atomic.Int64
	inflight atomic.Int64
	retired  atomic.Bool

	// ewmaNS is an exponentially weighted moving average of this
	// worker's wall time per spec (successful leases only); 0 means no
	// observation yet. Adaptive range sizing reads every worker's value
	// to scale grants, so it is atomic; writes come only from the
	// worker's own dispatch goroutine.
	ewmaNS atomic.Int64

	consecFail int   // touched only by the worker's own goroutine
	grantSizes []int // spec counts granted, in order; same ownership
}

// observeLease folds one successful lease into the worker's per-spec
// pace estimate (alpha = 0.4: responsive to a worker going slow,
// stable against one noisy lease).
func (ws *workerState) observeLease(nspecs int, d time.Duration) {
	if nspecs <= 0 {
		return
	}
	per := d.Nanoseconds() / int64(nspecs)
	if per <= 0 {
		per = 1
	}
	if old := ws.ewmaNS.Load(); old > 0 {
		per = (2*per + 3*old) / 5
	}
	ws.ewmaNS.Store(per)
}

func (c *Coordinator) rangeSize() int {
	if c.RangeSize > 0 {
		return c.RangeSize
	}
	return 4
}

func (c *Coordinator) leaseTimeout() time.Duration {
	if c.LeaseTimeout > 0 {
		return c.LeaseTimeout
	}
	return 2 * time.Minute
}

func (c *Coordinator) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c *Coordinator) maxWorkerFailures() int {
	if c.MaxWorkerFailures > 0 {
		return c.MaxWorkerFailures
	}
	return 3
}

// grantSpecs sizes the next lease for ws: the configured RangeSize
// while the fleet is unmeasured or ws roughly keeps pace, scaled down
// toward one spec once ws falls at least 2x behind the fastest live
// worker (per-spec EWMA ratio — the hysteresis keeps ordinary timing
// jitter from fragmenting leases). Sizing only repartitions leases —
// the merge reassembles spec order whatever the granularity, so output
// bytes never depend on it.
func (c *Coordinator) grantSpecs(ws *workerState) int {
	base := c.rangeSize()
	mine := ws.ewmaNS.Load()
	if mine <= 0 {
		return base
	}
	fastest := int64(0)
	c.mu.Lock()
	for _, o := range c.workers {
		if o.retired.Load() {
			continue
		}
		if v := o.ewmaNS.Load(); v > 0 && (fastest == 0 || v < fastest) {
			fastest = v
		}
	}
	c.mu.Unlock()
	if fastest <= 0 || mine < 2*fastest {
		return base
	}
	size := int(float64(base) * float64(fastest) / float64(mine))
	if size < 1 {
		size = 1
	}
	return size
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// localEngine resolves the fallback engine with the coordinator's
// options applied.
func (c *Coordinator) localEngine() *exp.Engine {
	e := c.Engine
	if e == nil {
		e = exp.New()
		c.Engine = e
	}
	e.JoinSpeedup = c.Speedup
	e.Observe = c.Observe
	if e.Metrics == nil {
		e.Metrics = c.Metrics
	}
	return e
}

// Run executes specs across the fleet and writes one JSON-lines record
// per spec to out, in spec order. The stats and joined error follow
// the same failure accounting as exp.Engine.StreamWith: run failures
// are error records counted in stats.Failed and joined into err, and a
// write failure aborts the merge. The bytes written are identical to a
// local sweep of the same specs, whatever the fleet does.
func (c *Coordinator) Run(out io.Writer, specs []exp.Spec) (exp.StreamStats, error) {
	eng := c.localEngine()
	if len(specs) == 0 {
		return exp.StreamStats{}, nil
	}
	c.mu.Lock()
	c.start = time.Now()
	c.recordsTotal = int64(len(specs))
	c.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live := c.handshake(ctx)
	c.registerMetrics()
	if len(live) == 0 {
		c.logf("fabric: no workers registered; running the sweep locally")
		stats, err := eng.StreamWith(out, specs, func(rec *exp.Record) {
			c.recordsDone.Add(1)
			c.localRecords.Add(1)
			if rec.Error != "" {
				c.recordsFailed.Add(1)
			}
			c.progressLine()
		})
		return stats, err
	}

	tbl := newLeaseTable(len(specs), c.rangeSize(), c.maxAttempts(), len(live))
	c.mu.Lock()
	c.rangesTotal = len(tbl.ranges)
	c.tbl = tbl
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, ws := range live {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			c.serveWorker(ctx, ws, tbl, specs)
		}(ws)
	}
	// The local executor picks up ranges the fleet cannot finish:
	// attempt-exhausted ranges, and everything once all workers retire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.serveLocal(eng, tbl, specs)
	}()

	// Merge: emit ranges strictly in spec order as their records land.
	// The walk is by position, not index — adaptive sizing can split
	// ranges (growing the slice) while the merge runs.
	enc := json.NewEncoder(out)
	var stats exp.StreamStats
	var errs []error
	seenErr := map[string]bool{}
	for pos := 0; pos < len(specs); {
		recs, next, ok := tbl.waitDoneAt(pos)
		if !ok {
			break // canceled — only the write-failure path below does that
		}
		pos = next
		for _, rec := range recs {
			if rec.Error != "" {
				stats.Failed++
				c.recordsFailed.Add(1)
				if k := rec.Key(); !seenErr[k] {
					seenErr[k] = true
					errs = append(errs, errors.New(rec.Error))
				}
			}
			if werr := enc.Encode(rec); werr != nil {
				tbl.cancel()
				cancel()
				wg.Wait()
				return stats, werr
			}
			stats.Records++
			c.recordsDone.Add(1)
			c.progressLine()
		}
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}

// handshake probes every configured worker address and registers the
// ones that answer /healthz with a matching schema version.
func (c *Coordinator) handshake(ctx context.Context) []*workerState {
	var live []*workerState
	for _, addr := range c.Workers {
		base := NormalizeAddr(addr)
		if base == "" {
			continue
		}
		hello, err := c.probe(ctx, base)
		switch {
		case err != nil:
			c.logf("fabric: worker %s not registered: %v", base, err)
		case !hello.OK || hello.SchemaVersion != exp.SchemaVersion:
			c.logf("fabric: worker %s rejected: schema_version %d, this build %d",
				base, hello.SchemaVersion, exp.SchemaVersion)
		default:
			c.logf("fabric: worker %s registered (schema_version %d)", base, hello.SchemaVersion)
			live = append(live, &workerState{addr: base})
		}
	}
	c.mu.Lock()
	c.workers = live
	c.mu.Unlock()
	return live
}

// probe performs one /healthz request.
func (c *Coordinator) probe(ctx context.Context, base string) (Hello, error) {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+HealthPath, nil)
	if err != nil {
		return Hello{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return Hello{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("healthz status %s", resp.Status)
	}
	var hello Hello
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hello); err != nil {
		return Hello{}, fmt.Errorf("malformed healthz body: %v", err)
	}
	return hello, nil
}

// serveWorker is one registered worker's dispatch loop: lease, run,
// deliver; on failure back off, and retire after too many consecutive
// failed leases.
func (c *Coordinator) serveWorker(ctx context.Context, ws *workerState, tbl *leaseTable, specs []exp.Spec) {
	for {
		g, ok := tbl.next(false, c.grantSpecs(ws))
		if !ok {
			return
		}
		r := g.r
		ws.grantSizes = append(ws.grantSizes, r.hi-r.lo)
		ws.leases.Add(1)
		ws.inflight.Add(1)
		leaseStart := time.Now()
		recs, err := c.runRemote(ctx, ws, g, specs[r.lo:r.hi])
		ws.inflight.Add(-1)
		if err != nil {
			expired := errors.Is(err, context.DeadlineExceeded)
			if expired {
				ws.expiries.Add(1)
			} else {
				ws.failures.Add(1)
			}
			tbl.fail(g)
			ws.consecFail++
			c.logf("fabric: worker %s lease %s failed (expired=%v, consecutive %d): %v",
				ws.addr, leaseID(g), expired, ws.consecFail, err)
			if ws.consecFail >= c.maxWorkerFailures() {
				ws.retired.Store(true)
				tbl.retireWorker()
				c.logf("fabric: worker %s retired after %d consecutive failures", ws.addr, ws.consecFail)
				return
			}
			// Exponential backoff before the next lease, context-aware.
			backoff := 100 * time.Millisecond << (ws.consecFail - 1)
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		ws.consecFail = 0
		ws.observeLease(len(recs), time.Since(leaseStart))
		ws.records.Add(int64(len(recs)))
		if !tbl.deliver(g, recs) {
			c.duplicates.Add(int64(len(recs)))
		}
	}
}

// leaseID names one grant for logs and the wire: spec bounds plus the
// attempt ordinal. Bounds are frozen while leased, so the ID is
// stable.
func leaseID(g grant) string {
	return fmt.Sprintf("r%d-%d.%d", g.r.lo, g.r.hi, g.attempt)
}

// serveLocal is the fallback executor: it runs attempt-exhausted
// ranges (and, once no live workers remain, everything unfinished)
// through the local engine.
func (c *Coordinator) serveLocal(eng *exp.Engine, tbl *leaseTable, specs []exp.Spec) {
	for {
		g, ok := tbl.next(true, 0)
		if !ok {
			return
		}
		r := g.r
		c.logf("fabric: running range r%d-%d (%d specs) locally", r.lo, r.hi, r.hi-r.lo)
		recs := make([]exp.Record, 0, r.hi-r.lo)
		for _, s := range specs[r.lo:r.hi] {
			recs = append(recs, eng.Record(s))
		}
		c.localRecords.Add(int64(len(recs)))
		if !tbl.deliver(g, recs) {
			c.duplicates.Add(int64(len(recs)))
		}
	}
}

// runRemote executes one lease against one worker: POST the range,
// validate the streamed records (strict schema, matching stamp, lease
// order), and strip the wire stamp so merged bytes equal local bytes.
// Short, over-long, misordered and malformed streams all fail the
// lease the same way.
func (c *Coordinator) runRemote(ctx context.Context, ws *workerState, g grant, specs []exp.Spec) ([]exp.Record, error) {
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	body, err := json.Marshal(RunRequest{
		SchemaVersion: exp.SchemaVersion,
		Lease:         leaseID(g),
		Speedup:       c.Speedup,
		Observe:       c.Observe,
		Keys:          keys,
	})
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.leaseTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, ws.addr+RunPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		if rctx.Err() != nil {
			err = fmt.Errorf("%w: %v", context.DeadlineExceeded, err)
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("run status %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	recs := make([]exp.Record, 0, len(specs))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := exp.ValidateLine(line)
		if err != nil {
			return nil, fmt.Errorf("record %d: %v", len(recs)+1, err)
		}
		if rec.SchemaVersion != exp.SchemaVersion {
			return nil, fmt.Errorf("record %d: missing or mismatched schema_version %d (want %d)",
				len(recs)+1, rec.SchemaVersion, exp.SchemaVersion)
		}
		if len(recs) >= len(specs) {
			return nil, fmt.Errorf("worker streamed more records than the %d leased specs", len(specs))
		}
		rec.SchemaVersion = 0 // strip the wire stamp: merged bytes == local bytes
		if rec.Spec != specs[len(recs)] {
			return nil, fmt.Errorf("record %d is %s, want lease order %s",
				len(recs)+1, rec.Key(), specs[len(recs)].Key())
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		if rctx.Err() != nil {
			err = fmt.Errorf("%w: %v", context.DeadlineExceeded, err)
		}
		return nil, fmt.Errorf("after %d of %d records: %v", len(recs), len(specs), err)
	}
	if len(recs) != len(specs) {
		err := fmt.Errorf("stream truncated at %d of %d records", len(recs), len(specs))
		if rctx.Err() != nil {
			err = fmt.Errorf("%w: %v", context.DeadlineExceeded, err)
		}
		return nil, err
	}
	return recs, nil
}
