package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// Coordinator-side metric family names. Per-worker families carry a
// worker="<addr>" label.
const (
	mRangesTotal    = "dsm_fabric_ranges_total"
	mRangesDone     = "dsm_fabric_ranges_done"
	mRecordsMerged  = "dsm_fabric_records_merged_total"
	mRecordsFailed  = "dsm_fabric_record_failures_total"
	mDuplicates     = "dsm_fabric_duplicate_records_total"
	mLocalRecords   = "dsm_fabric_local_records_total"
	mWorkersLive    = "dsm_fabric_workers_live"
	mLeasesGranted  = "dsm_fabric_leases_granted_total"
	mLeaseExpiries  = "dsm_fabric_lease_expiries_total"
	mLeaseFailures  = "dsm_fabric_lease_failures_total"
	mWorkerMerged   = "dsm_fabric_worker_merged_records_total"
	mWorkerInflight = "dsm_fabric_worker_leases_inflight"
)

// registerMetrics exposes the coordinator's fleet state on c.Metrics
// as func-backed families over the live atomics. Called once per
// coordinator, after the handshake fixed the worker set.
func (c *Coordinator) registerMetrics() {
	r := c.Metrics
	if r == nil {
		return
	}
	c.metricsOnce.Do(func() {
		r.GaugeFunc(mRangesTotal, "Leased ranges in the current sweep (splits grow it).", func() float64 {
			c.mu.Lock()
			tbl, total := c.tbl, c.rangesTotal
			c.mu.Unlock()
			if tbl != nil {
				return float64(tbl.totalRanges())
			}
			return float64(total)
		})
		r.GaugeFunc(mRangesDone, "Leased ranges completed.", func() float64 {
			c.mu.Lock()
			tbl := c.tbl
			c.mu.Unlock()
			if tbl == nil {
				return 0
			}
			return float64(tbl.doneRanges())
		})
		r.CounterFunc(mRecordsMerged, "Records merged into the ordered output stream.",
			func() float64 { return float64(c.recordsDone.Load()) })
		r.CounterFunc(mRecordsFailed, "Merged records that carried a run failure.",
			func() float64 { return float64(c.recordsFailed.Load()) })
		r.CounterFunc(mDuplicates, "Duplicate straggler records dropped by first-result-wins dedup.",
			func() float64 { return float64(c.duplicates.Load()) })
		r.CounterFunc(mLocalRecords, "Records executed by the coordinator's local fallback engine.",
			func() float64 { return float64(c.localRecords.Load()) })
		r.GaugeFunc(mWorkersLive, "Registered workers not yet retired.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, ws := range c.workers {
				if !ws.retired.Load() {
					n++
				}
			}
			return float64(n)
		})
		c.mu.Lock()
		workers := c.workers
		c.mu.Unlock()
		for _, ws := range workers {
			ws := ws
			l := metrics.L("worker", ws.addr)
			r.CounterFunc(mLeasesGranted, "Leases granted, by worker.",
				func() float64 { return float64(ws.leases.Load()) }, l)
			r.CounterFunc(mLeaseExpiries, "Leases lost to the deadline, by worker.",
				func() float64 { return float64(ws.expiries.Load()) }, l)
			r.CounterFunc(mLeaseFailures, "Leases lost to errors or malformed streams, by worker.",
				func() float64 { return float64(ws.failures.Load()) }, l)
			r.CounterFunc(mWorkerMerged, "Validated records received, by worker.",
				func() float64 { return float64(ws.records.Load()) }, l)
			r.GaugeFunc(mWorkerInflight, "Leases outstanding right now, by worker.",
				func() float64 { return float64(ws.inflight.Load()) }, l)
		}
	})
}

// WorkerSnapshot is one worker's row in the fleet /progress view.
type WorkerSnapshot struct {
	Addr     string `json:"addr"`
	Leases   int64  `json:"leases"`
	Records  int64  `json:"records"`
	Expiries int64  `json:"lease_expiries,omitempty"`
	Failures int64  `json:"lease_failures,omitempty"`
	Inflight int64  `json:"inflight"`
	Retired  bool   `json:"retired,omitempty"`
}

// FleetSnapshot is the JSON shape the coordinator serves at /progress:
// aggregated merge progress with a fleet ETA plus per-worker rows.
type FleetSnapshot struct {
	RecordsDone      int64            `json:"records_done"`
	RecordsTotal     int64            `json:"records_total"`
	RecordsFailed    int64            `json:"records_failed,omitempty"`
	RangesDone       int              `json:"ranges_done"`
	RangesTotal      int              `json:"ranges_total"`
	DuplicateRecords int64            `json:"duplicate_records,omitempty"`
	LocalRecords     int64            `json:"local_records,omitempty"`
	ElapsedSeconds   float64          `json:"elapsed_seconds"`
	EtaSeconds       float64          `json:"eta_seconds,omitempty"`
	Workers          []WorkerSnapshot `json:"workers"`
}

// Snapshot returns the fleet's current progress state.
func (c *Coordinator) Snapshot() FleetSnapshot {
	c.mu.Lock()
	snap := FleetSnapshot{
		RecordsTotal: c.recordsTotal,
		RangesTotal:  c.rangesTotal,
	}
	if !c.start.IsZero() {
		snap.ElapsedSeconds = time.Since(c.start).Seconds()
	}
	tbl := c.tbl
	workers := c.workers
	c.mu.Unlock()
	if tbl != nil {
		snap.RangesDone = tbl.doneRanges()
		snap.RangesTotal = tbl.totalRanges()
	}
	snap.RecordsDone = c.recordsDone.Load()
	snap.RecordsFailed = c.recordsFailed.Load()
	snap.DuplicateRecords = c.duplicates.Load()
	snap.LocalRecords = c.localRecords.Load()
	if snap.RecordsDone > 0 && snap.RecordsDone < snap.RecordsTotal {
		snap.EtaSeconds = snap.ElapsedSeconds / float64(snap.RecordsDone) * float64(snap.RecordsTotal-snap.RecordsDone)
	}
	for _, ws := range workers {
		snap.Workers = append(snap.Workers, WorkerSnapshot{
			Addr:     ws.addr,
			Leases:   ws.leases.Load(),
			Records:  ws.records.Load(),
			Expiries: ws.expiries.Load(),
			Failures: ws.failures.Load(),
			Inflight: ws.inflight.Load(),
			Retired:  ws.retired.Load(),
		})
	}
	return snap
}

// ServeHTTP serves the fleet snapshot as JSON (the coordinator's
// /progress endpoint under dsmrun -metrics-addr).
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Snapshot()) //nolint:errcheck // client went away
}

// progressLine emits a throttled fleet progress line to c.Out.
func (c *Coordinator) progressLine() {
	if c.Out == nil {
		return
	}
	c.mu.Lock()
	now := time.Now()
	done := c.recordsDone.Load()
	final := done == c.recordsTotal
	if !final && now.Sub(c.lastLine) < time.Second {
		c.mu.Unlock()
		return
	}
	c.lastLine = now
	total := c.recordsTotal
	rangesTotal := c.rangesTotal
	var rangesDone int
	if c.tbl != nil {
		// done/totalRanges take the table lock, never the coordinator's.
		rangesDone = c.tbl.doneRanges()
		rangesTotal = c.tbl.totalRanges()
	}
	live := 0
	for _, ws := range c.workers {
		if !ws.retired.Load() {
			live++
		}
	}
	elapsed := now.Sub(c.start)
	c.mu.Unlock()

	line := fmt.Sprintf("fabric: %d/%d records, %d/%d ranges, %d workers", done, total, rangesDone, rangesTotal, live)
	if n := c.recordsFailed.Load(); n > 0 {
		line += fmt.Sprintf(", %d failed", n)
	}
	if n := c.localRecords.Load(); n > 0 {
		line += fmt.Sprintf(", %d local", n)
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(100*time.Millisecond))
	if done > 0 && done < total {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
	}
	fmt.Fprintln(c.Out, line)
}
