package fabric

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/proto"
)

// testGrid is the distributed-identity grid: two applications, DSM and
// message-passing runtimes, both protocols, 1-2 processors at small
// scale — small enough to run many fleet shapes, wide enough to cover
// every record field family.
func testGrid(t *testing.T) []exp.Spec {
	t.Helper()
	axes := exp.Axes{
		Apps:      []string{"Jacobi", "MGS"},
		Versions:  []core.Version{core.Tmk},
		Procs:     []int{1, 2},
		Protocols: []proto.Name{proto.HomelessLRC, proto.HomeLRC},
	}
	specs := axes.Specs(exp.Spec{Scale: core.SmallScale})
	for i := range specs {
		specs[i] = specs[i].Normalize()
	}
	return specs
}

// localBytes renders the single-process reference output for specs.
func localBytes(t *testing.T, specs []exp.Spec, speedup, observe bool) []byte {
	t.Helper()
	e := exp.New()
	e.Workers = 1
	e.JoinSpeedup = speedup
	e.Observe = observe
	var buf bytes.Buffer
	if _, err := e.StreamWith(&buf, specs, nil); err != nil {
		t.Fatalf("local reference sweep: %v", err)
	}
	return buf.Bytes()
}

// startWorkers launches n independent fabric workers (each with a cold
// engine) on httptest servers and returns their base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w := NewWorker(nil)
		w.Workers = 2
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestMergeByteIdentical is the subsystem's central guarantee: the
// coordinator's merged output is byte-identical to a single-process
// sweep at 1, 2 and 4 workers, with small leases so every fleet shape
// exercises reassignment-free multi-range scheduling.
func TestMergeByteIdentical(t *testing.T) {
	specs := testGrid(t)
	want := localBytes(t, specs, false, false)
	for _, workers := range []int{1, 2, 4} {
		c := &Coordinator{
			Workers:   startWorkers(t, workers),
			RangeSize: 3, // ragged tail: 8 specs -> 3+3+2
			Logf:      t.Logf,
		}
		var got bytes.Buffer
		stats, err := c.Run(&got, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Records != len(specs) || stats.Failed != 0 {
			t.Errorf("workers=%d: stats = %+v, want %d records, 0 failed", workers, stats, len(specs))
		}
		if !bytes.Equal(want, got.Bytes()) {
			t.Errorf("workers=%d: merged output differs from local sweep:\nlocal:\n%s\nfabric:\n%s",
				workers, want, got.Bytes())
		}
	}
}

// TestMergeByteIdenticalWithJoins re-checks identity with the
// seq-baseline join and observability on — the full record schema
// crossing the wire (speedup, bd_* attribution fields).
func TestMergeByteIdenticalWithJoins(t *testing.T) {
	specs := testGrid(t)
	want := localBytes(t, specs, true, true)
	c := &Coordinator{
		Workers:   startWorkers(t, 2),
		RangeSize: 2,
		Speedup:   true,
		Observe:   true,
		Logf:      t.Logf,
	}
	var got bytes.Buffer
	if _, err := c.Run(&got, specs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Errorf("merged output with joins differs from local sweep:\nlocal:\n%s\nfabric:\n%s", want, got.Bytes())
	}
}

// TestNoWorkersDegradesToLocal pins the graceful-degradation path: an
// empty (and an unreachable) fleet runs the sweep locally with
// identical bytes and the same failure accounting.
func TestNoWorkersDegradesToLocal(t *testing.T) {
	specs := testGrid(t)
	want := localBytes(t, specs, false, false)
	for _, fleet := range [][]string{nil, {"127.0.0.1:1"}} {
		c := &Coordinator{Workers: fleet, Logf: t.Logf}
		var got bytes.Buffer
		stats, err := c.Run(&got, specs)
		if err != nil {
			t.Fatalf("fleet=%v: %v", fleet, err)
		}
		if !bytes.Equal(want, got.Bytes()) {
			t.Errorf("fleet=%v: local-degraded output differs from reference", fleet)
		}
		if stats.Records != len(specs) {
			t.Errorf("fleet=%v: stats = %+v", fleet, stats)
		}
	}
}

// TestRunFailureAccounting: run failures travel as error records and
// surface in the coordinator's stats and joined error exactly like a
// local sweep's (the dsmrun exit-nonzero contract).
func TestRunFailureAccounting(t *testing.T) {
	specs := []exp.Spec{
		{App: "Jacobi", Version: core.Tmk, Procs: 2, Scale: core.SmallScale, Protocol: "lrc"},
		{App: "Jacobi", Version: "bogus", Procs: 2, Scale: core.SmallScale, Protocol: "lrc"},
	}
	ref := exp.New()
	ref.Workers = 1
	var want bytes.Buffer
	refStats, refErr := ref.StreamWith(&want, specs, nil)
	if refErr == nil || refStats.Failed != 1 {
		t.Fatalf("local reference: stats %+v, err %v — want 1 failure", refStats, refErr)
	}
	c := &Coordinator{Workers: startWorkers(t, 2), RangeSize: 1, Logf: t.Logf}
	var got bytes.Buffer
	stats, err := c.Run(&got, specs)
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("want joined run failure, got %v", err)
	}
	if stats.Failed != 1 || stats.Records != 2 {
		t.Errorf("stats = %+v, want 2 records / 1 failed", stats)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("error records not byte-identical:\nlocal:\n%s\nfabric:\n%s", want.Bytes(), got.Bytes())
	}
}

// TestSchemaMismatchRejectedAtHandshake: a worker advertising another
// build's schema version is never registered; with no other worker the
// sweep degrades to local execution, still byte-identical.
func TestSchemaMismatchRejectedAtHandshake(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == HealthPath {
			json.NewEncoder(w).Encode(Hello{OK: true, SchemaVersion: exp.SchemaVersion + 1})
			return
		}
		t.Errorf("mismatched worker received %s — lease must not be granted", r.URL.Path)
		http.Error(w, "unexpected", http.StatusTeapot)
	}))
	defer srv.Close()

	specs := testGrid(t)[:4]
	want := localBytes(t, specs, false, false)
	var rejected bool
	c := &Coordinator{Workers: []string{srv.URL}, Logf: func(format string, args ...any) {
		if strings.Contains(format, "rejected") {
			rejected = true
		}
		t.Logf(format, args...)
	}}
	var got bytes.Buffer
	if _, err := c.Run(&got, specs); err != nil {
		t.Fatal(err)
	}
	if !rejected {
		t.Error("schema-mismatched worker was not rejected")
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Error("degraded output differs from local sweep")
	}
}

// TestWireRecordsCarrySchemaVersion hits a worker's /run directly and
// checks every streamed record is stamped with this build's schema
// version and validates (the sweeplint -require-schema contract), while
// the coordinator-merged stream carries no stamp at all.
func TestWireRecordsCarrySchemaVersion(t *testing.T) {
	addr := startWorkers(t, 1)[0]
	specs := testGrid(t)[:3]
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	body, _ := json.Marshal(RunRequest{SchemaVersion: exp.SchemaVersion, Lease: "t0", Keys: keys})
	resp, err := http.Post(addr+RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %s", resp.Status)
	}
	var wire bytes.Buffer
	if _, err := wire.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(wire.Bytes()), []byte("\n"))
	if len(lines) != len(specs) {
		t.Fatalf("worker streamed %d records for %d keys", len(lines), len(specs))
	}
	for i, line := range lines {
		rec, err := exp.ValidateLine(line)
		if err != nil {
			t.Fatalf("wire record %d: %v", i, err)
		}
		if rec.SchemaVersion != exp.SchemaVersion {
			t.Errorf("wire record %d: schema_version %d, want %d", i, rec.SchemaVersion, exp.SchemaVersion)
		}
		if rec.Spec != specs[i] {
			t.Errorf("wire record %d out of order: %s", i, rec.Key())
		}
	}

	// A mismatched RunRequest is refused outright.
	body, _ = json.Marshal(RunRequest{SchemaVersion: exp.SchemaVersion + 1, Lease: "t1", Keys: keys})
	resp2, err := http.Post(addr+RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched run request got status %s, want 400", resp2.Status)
	}
}

// TestFleetTelemetry checks the metrics registry and /progress
// snapshot carry the fleet accounting after a distributed run.
func TestFleetTelemetry(t *testing.T) {
	specs := testGrid(t)
	reg := metrics.NewRegistry()
	c := &Coordinator{Workers: startWorkers(t, 2), RangeSize: 2, Metrics: reg, Logf: t.Logf}
	var got bytes.Buffer
	if _, err := c.Run(&got, specs); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.RecordsDone != int64(len(specs)) || snap.RecordsTotal != int64(len(specs)) {
		t.Errorf("snapshot records %d/%d, want %d/%d", snap.RecordsDone, snap.RecordsTotal, len(specs), len(specs))
	}
	if snap.RangesDone != snap.RangesTotal || snap.RangesTotal != 4 {
		t.Errorf("snapshot ranges %d/%d, want 4/4", snap.RangesDone, snap.RangesTotal)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("snapshot has %d workers, want 2", len(snap.Workers))
	}
	var leased int64
	for _, ws := range snap.Workers {
		leased += ws.Leases
		if ws.Retired {
			t.Errorf("healthy worker %s retired", ws.Addr)
		}
	}
	if leased < 4 {
		t.Errorf("fleet granted %d leases, want >= 4", leased)
	}
	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ValidateText(bytes.NewReader(text.Bytes())); err != nil {
		t.Errorf("fleet metrics scrape invalid: %v\n%s", err, text.String())
	}
	for _, want := range []string{mRecordsMerged, mLeasesGranted, mWorkersLive} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("scrape missing family %s", want)
		}
	}
	// The snapshot serves as JSON.
	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/progress", nil))
	var decoded FleetSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("progress JSON: %v", err)
	}
	if decoded.RecordsDone != int64(len(specs)) {
		t.Errorf("progress records_done = %d", decoded.RecordsDone)
	}
}

// TestLargeGridByteIdentical runs a wider grid (every version both
// test apps support, 1-4 procs, both protocols) through a 4-worker
// fleet — the full-harness-grid acceptance check.
func TestLargeGridByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid in -short mode")
	}
	var specs []exp.Spec
	for _, a := range exp.Apps() {
		name := a.Name()
		if name != "Jacobi" && name != "MGS" && name != "RB-SOR" {
			continue
		}
		for _, v := range a.Versions() {
			for _, procs := range []int{1, 2, 4} {
				for _, p := range []proto.Name{proto.HomelessLRC, proto.HomeLRC} {
					s := exp.Spec{App: name, Version: v, Procs: procs, Scale: core.SmallScale, Protocol: p}
					specs = append(specs, s.Normalize())
				}
			}
		}
	}
	want := localBytes(t, specs, false, false)
	c := &Coordinator{Workers: startWorkers(t, 4), RangeSize: 5, Logf: t.Logf,
		LeaseTimeout: 5 * time.Minute}
	var got bytes.Buffer
	if _, err := c.Run(&got, specs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Error("large-grid merged output differs from local sweep")
	}
}
