package fabric

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
)

// faultServer wraps a healthy worker with middleware that can corrupt
// the /run path; /healthz always passes so the worker registers.
func faultServer(t *testing.T, mw func(http.Handler) http.Handler) string {
	t.Helper()
	w := NewWorker(nil)
	w.Workers = 2
	srv := httptest.NewServer(mw(w.Handler()))
	t.Cleanup(srv.Close)
	return srv.URL
}

// runFleet drives one coordinator run and asserts byte identity
// against the local reference, returning the coordinator for
// telemetry assertions.
func runFleet(t *testing.T, c *Coordinator, specs []exp.Spec, wantErr bool) *Coordinator {
	t.Helper()
	want := localBytes(t, specs, c.Speedup, c.Observe)
	if c.Logf == nil {
		c.Logf = t.Logf
	}
	var got bytes.Buffer
	stats, err := c.Run(&got, specs)
	if (err != nil) != wantErr {
		t.Fatalf("Run error = %v, wantErr %v", err, wantErr)
	}
	if stats.Records != len(specs) {
		t.Errorf("stats = %+v, want %d records", stats, len(specs))
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Errorf("merged output differs from local sweep under fault:\nlocal:\n%s\nfabric:\n%s", want, got.Bytes())
	}
	return c
}

// TestWorkerKilledMidRange injects a crash after two streamed records:
// the dying worker aborts its connection mid-stream and 503s forever
// after, so the coordinator must detect the truncated range, fail the
// lease, and finish through the surviving worker — byte-identically.
func TestWorkerKilledMidRange(t *testing.T) {
	specs := testGrid(t)
	dying := NewWorker(nil)
	dying.Workers = 2
	dying.KillAfterRecords = 2
	dyingSrv := httptest.NewServer(dying.Handler())
	defer dyingSrv.Close()

	c := runFleet(t, &Coordinator{
		Workers:   []string{dyingSrv.URL, startWorkers(t, 1)[0]},
		RangeSize: 3,
	}, specs, false)

	snap := c.Snapshot()
	var dyingRow *WorkerSnapshot
	for i := range snap.Workers {
		if snap.Workers[i].Addr == dyingSrv.URL {
			dyingRow = &snap.Workers[i]
		}
	}
	if dyingRow == nil {
		t.Fatal("dying worker missing from fleet snapshot")
	}
	if dyingRow.Failures+dyingRow.Expiries == 0 {
		t.Errorf("dying worker shows no failed leases: %+v", *dyingRow)
	}
}

// TestAllWorkersDieFallsBackLocal kills the entire fleet mid-sweep;
// the coordinator retires both workers and the local executor finishes
// every remaining range, still byte-identical.
func TestAllWorkersDieFallsBackLocal(t *testing.T) {
	specs := testGrid(t)
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker(nil)
		w.Workers = 2
		w.KillAfterRecords = 1
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.URL)
	}
	c := runFleet(t, &Coordinator{
		Workers:           addrs,
		RangeSize:         2,
		MaxAttempts:       2,
		MaxWorkerFailures: 2,
	}, specs, false)
	if n := c.Snapshot().LocalRecords; n == 0 {
		t.Error("local fallback executed no records after fleet death")
	}
	for _, ws := range c.Snapshot().Workers {
		if !ws.Retired {
			t.Errorf("dead worker %s not retired", ws.Addr)
		}
	}
}

// TestLeaseExpiryReassigned hangs one worker's /run forever. Its lease
// must expire at LeaseTimeout and the range reassign to the healthy
// worker; identity holds and the hang shows up as a lease expiry.
func TestLeaseExpiryReassigned(t *testing.T) {
	specs := testGrid(t)
	hang := make(chan struct{})
	defer close(hang)
	hanging := faultServer(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == RunPath {
				<-hang // never answers within the lease
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	c := runFleet(t, &Coordinator{
		Workers:      []string{hanging, startWorkers(t, 1)[0]},
		RangeSize:    3,
		LeaseTimeout: 200 * time.Millisecond,
	}, specs, false)

	var expiries int64
	for _, ws := range c.Snapshot().Workers {
		expiries += ws.Expiries
	}
	if expiries == 0 {
		t.Error("hung worker produced no lease expiries")
	}
}

// TestDuplicateResultsDeduped forces a straggler duplicate: one range
// covering the whole grid, two workers — the idle worker re-leases the
// in-flight range, both deliver, and first-result-wins drops one full
// copy without disturbing the output bytes.
func TestDuplicateResultsDeduped(t *testing.T) {
	specs := testGrid(t)
	// Delay the first /run just long enough that the second worker
	// grabs the straggler duplicate before either delivers.
	var calls atomic.Int64
	slowOnce := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == RunPath && calls.Add(1) == 1 {
				time.Sleep(300 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}
	c := runFleet(t, &Coordinator{
		Workers:   []string{faultServer(t, slowOnce), faultServer(t, slowOnce)},
		RangeSize: len(specs), // a single range: the only lease to duplicate
	}, specs, false)
	if n := c.Snapshot().DuplicateRecords; n != int64(len(specs)) {
		t.Errorf("deduped %d duplicate records, want %d (one full straggler copy)", n, len(specs))
	}
}

// TestGarbageStreamFailsLease serves JSON garbage on the first lease
// and proxies honestly afterwards: the malformed stream must fail the
// lease (never reach the merge) and the retry restores identity.
func TestGarbageStreamFailsLease(t *testing.T) {
	specs := testGrid(t)
	var calls atomic.Int64
	garbageFirst := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == RunPath && calls.Add(1) == 1 {
				io.WriteString(w, "{\"app\":42,\"nonsense\"\nnot json at all\n")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	c := runFleet(t, &Coordinator{
		Workers:   []string{faultServer(t, garbageFirst)},
		RangeSize: 3,
	}, specs, false)
	var failures int64
	for _, ws := range c.Snapshot().Workers {
		failures += ws.Failures
	}
	if failures == 0 {
		t.Error("garbage stream produced no lease failures")
	}
}

// TestTruncatedStreamFailsLease cuts a valid wire stream off after one
// record (with a clean connection close, not an abort): the
// short-count check must fail the lease and the reassignment restores
// identity.
func TestTruncatedStreamFailsLease(t *testing.T) {
	specs := testGrid(t)
	var calls atomic.Int64
	truncateFirst := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == RunPath && calls.Add(1) == 1 {
				rec := httptest.NewRecorder()
				next.ServeHTTP(rec, r)
				lines := bytes.SplitAfter(rec.Body.Bytes(), []byte("\n"))
				w.Write(lines[0]) // first record only, then EOF
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	c := runFleet(t, &Coordinator{
		Workers:   []string{faultServer(t, truncateFirst)},
		RangeSize: 3,
	}, specs, false)
	var failures int64
	for _, ws := range c.Snapshot().Workers {
		failures += ws.Failures
	}
	if failures == 0 {
		t.Error("truncated stream produced no lease failures")
	}
}

// TestMisorderedStreamFailsLease swaps the first two records of an
// otherwise-valid stream: the lease-order check must reject it — spec
// order is the merge invariant, not something the coordinator re-sorts.
func TestMisorderedStreamFailsLease(t *testing.T) {
	specs := testGrid(t)
	var calls atomic.Int64
	swapFirst := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != RunPath || calls.Add(1) != 1 {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			lines := bytes.SplitAfter(rec.Body.Bytes(), []byte("\n"))
			if len(lines) >= 2 {
				lines[0], lines[1] = lines[1], lines[0]
			}
			for _, l := range lines {
				w.Write(l)
			}
		})
	}
	c := runFleet(t, &Coordinator{
		Workers:   []string{faultServer(t, swapFirst)},
		RangeSize: 3,
	}, specs, false)
	var failures int64
	for _, ws := range c.Snapshot().Workers {
		failures += ws.Failures
	}
	if failures == 0 {
		t.Error("misordered stream produced no lease failures")
	}
}

// TestUnstampedStreamFailsLease strips the schema_version stamp from
// an otherwise-valid stream: records from a build that predates the
// wire stamp must be rejected, not silently merged.
func TestUnstampedStreamFailsLease(t *testing.T) {
	specs := testGrid(t)
	var calls atomic.Int64
	stripStamp := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != RunPath || calls.Add(1) != 1 {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := strings.ReplaceAll(rec.Body.String(), `"schema_version":1,`, "")
			io.WriteString(w, body)
		})
	}
	c := runFleet(t, &Coordinator{
		Workers:   []string{faultServer(t, stripStamp)},
		RangeSize: 3,
	}, specs, false)
	var failures int64
	for _, ws := range c.Snapshot().Workers {
		failures += ws.Failures
	}
	if failures == 0 {
		t.Error("unstamped stream produced no lease failures")
	}
}
