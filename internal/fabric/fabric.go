// Package fabric distributes a sweep's spec list across worker
// processes: a Coordinator splits the list into contiguous leased
// ranges, assigns them over HTTP to Workers (cmd/sweepd daemons or
// dsmrun -worker-listen), and merges the workers' JSON-lines record
// streams back into spec order. The merged output is byte-identical to
// a single-process sweep of the same specs at any worker count — the
// same invariant internal/exp proves for in-process workers, carried
// across process and machine boundaries.
//
// Robustness is the design center, not an afterthought:
//
//   - Every lease has a deadline. A worker that crashes, hangs past the
//     deadline, or streams malformed records loses the lease, and the
//     range returns to the pending queue for reassignment.
//   - Idle workers re-run straggling in-flight ranges (at most one
//     duplicate attempt per range); the first valid result wins and
//     late duplicates are deduplicated by spec key — harmless, because
//     the simulator is deterministic and both copies are bit-equal.
//   - Workers that fail repeatedly are retired; ranges that exhaust
//     their remote attempts fall back to local execution, and a
//     coordinator with no registered workers at all degrades to a plain
//     local sweep. The output bytes are identical on every path.
//   - Coordinator and workers exchange exp.SchemaVersion in the
//     /healthz handshake and stamp it on every wire record, so
//     mismatched builds are rejected instead of silently merged.
//
// The wire protocol is two HTTP endpoints on each worker:
//
//	GET /healthz
//	  -> {"ok":true,"schema_version":N}
//
//	POST /run   {"schema_version":N,"lease":"r3.1","speedup":true,
//	             "observe":false,"keys":["app=Jacobi|version=tmk|..."]}
//	  -> one exp.Record JSON line per key, in key order, each stamped
//	     with schema_version; the stream ends after exactly len(keys)
//	     records. Fewer records mean the worker died mid-range; the
//	     coordinator treats short, over-long, misordered and malformed
//	     streams identically — the lease failed.
//
// Spec ranges travel as canonical spec keys (exp.Spec.Key round-trips
// exactly through exp.ParseKey), and run failures travel as ordinary
// error records, so a distributed sweep fails with the same accounting
// as a local one.
package fabric

import "strings"

// Wire endpoint paths served by every worker.
const (
	HealthPath = "/healthz"
	RunPath    = "/run"
)

// Hello is the /healthz handshake body. A coordinator only registers
// workers whose SchemaVersion matches its own build.
type Hello struct {
	OK            bool `json:"ok"`
	SchemaVersion int  `json:"schema_version"`
}

// RunRequest leases one spec range to a worker. Keys are canonical
// spec keys in range order; the worker must answer with exactly one
// stamped record per key, in the same order.
type RunRequest struct {
	SchemaVersion int    `json:"schema_version"`
	Lease         string `json:"lease"`
	// Speedup and Observe mirror the coordinator's engine options so
	// the worker's records carry the same fields a local sweep would
	// (seq-baseline join, bd_* time attribution).
	Speedup bool     `json:"speedup,omitempty"`
	Observe bool     `json:"observe,omitempty"`
	Keys    []string `json:"keys"`
}

// NormalizeAddr turns a bare host:port into a base URL (http scheme)
// and strips any trailing slash; addresses that already carry a scheme
// pass through.
func NormalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr != "" && !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}
