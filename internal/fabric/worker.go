package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Worker executes leased spec ranges through exp engines and streams
// stamped records back. One Worker serves any number of concurrent
// leases: ranges run through a shared engine per (speedup, observe)
// option combination, so the spec-keyed single-flight cache keeps
// duplicate and overlapping leases cheap.
type Worker struct {
	// Workers bounds each engine's host worker pool; 0 means all cores.
	Workers int
	// Metrics, when non-nil, carries the worker's fabric counters and
	// the first engine's host telemetry.
	Metrics *metrics.Registry
	// Progress aggregates lease workloads into the worker's /progress
	// view (totals grow lease by lease; ETA is informational).
	Progress *exp.Progress
	// Logf, when non-nil, receives one line per lease served/rejected.
	Logf func(format string, args ...any)
	// Store, when non-nil, is the worker's local persistent result
	// store: leased specs already on disk are served without executing,
	// and executed records are written back. Set before the first lease
	// (engines capture it at creation).
	Store *store.Store
	// StallPerRecord, when > 0, sleeps that long per streamed record —
	// a test hook that makes this worker deliberately slow, so adaptive
	// range sizing has something to adapt to.
	StallPerRecord time.Duration

	// KillAfterRecords > 0 injects a fault: after streaming that many
	// records (across all leases), the worker invokes Kill. The default
	// Kill marks the worker dead (every later request answers 503) and
	// aborts the in-flight connection mid-stream — the client sees a
	// truncated range, exactly like a crashed process. cmd/sweepd
	// replaces Kill with os.Exit for whole-process kills in CI.
	KillAfterRecords int64
	Kill             func()

	mu      sync.Mutex
	engines map[engineKey]*exp.Engine

	streamed atomic.Int64
	dead     atomic.Bool
	draining atomic.Bool

	// activeMu guards activeN, the in-flight /run count; Drain flips
	// draining under the same lock, so a lease either registers before
	// the drain (and is awaited) or observes it (and is refused).
	activeMu   sync.Mutex
	activeIdle *sync.Cond
	activeN    int

	leasesActive  *metrics.Gauge
	leasesServed  *metrics.Counter
	leasesDenied  *metrics.Counter
	recordsOut    *metrics.Counter
	recordsFailed *metrics.Counter
}

// engineKey identifies one engine option combination. Engine options
// are fields, not per-call parameters, so concurrent leases with
// different options get distinct engines (and distinct caches).
type engineKey struct {
	speedup bool
	observe bool
}

// Worker-side metric family names.
const (
	mWorkerLeasesActive = "dsm_fabric_worker_leases_active"
	mWorkerLeases       = "dsm_fabric_worker_leases_total"
	mWorkerDenied       = "dsm_fabric_worker_leases_denied_total"
	mWorkerRecords      = "dsm_fabric_worker_records_total"
	mWorkerFailed       = "dsm_fabric_worker_record_failures_total"
)

// NewWorker builds a worker registering its fabric counters on r (nil
// disables telemetry; the handles no-op).
func NewWorker(r *metrics.Registry) *Worker {
	w := &Worker{
		Metrics:  r,
		Progress: exp.NewProgress(0, nil, nil),
		engines:  map[engineKey]*exp.Engine{},
	}
	w.activeIdle = sync.NewCond(&w.activeMu)
	w.leasesActive = r.Gauge(mWorkerLeasesActive, "Fabric leases streaming right now.")
	w.leasesServed = r.Counter(mWorkerLeases, "Fabric leases accepted and streamed.")
	w.leasesDenied = r.Counter(mWorkerDenied, "Fabric leases rejected (schema mismatch, bad keys, dead worker).")
	w.recordsOut = r.Counter(mWorkerRecords, "Records streamed back to coordinators.")
	w.recordsFailed = r.Counter(mWorkerFailed, "Streamed records that carried a run failure.")
	return w
}

// engine resolves the engine for one option combination, creating it
// on first use. The first engine created attaches the worker's
// registry (engine host telemetry is one-registry-one-engine, so later
// combinations run without it).
func (w *Worker) engine(k engineKey) *exp.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.engines[k]; ok {
		return e
	}
	e := exp.New()
	e.Workers = w.Workers
	e.JoinSpeedup = k.speedup
	e.Observe = k.observe
	if len(w.engines) == 0 {
		e.Metrics = w.Metrics
	}
	e.Store = w.Store
	e.OnRunDone = w.Progress.RunDone
	e.OnStoreHit = w.Progress.StoreHit
	w.engines[k] = e
	return e
}

// Routes returns the worker's endpoint handlers keyed by path, for
// mounting next to /metrics and /debug/pprof/* via metrics.NewMux.
func (w *Worker) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		HealthPath:  http.HandlerFunc(w.handleHealth),
		RunPath:     http.HandlerFunc(w.handleRun),
		"/progress": w.Progress,
	}
}

// Handler builds a standalone mux over Routes (tests and embedded
// workers; daemons use metrics.NewMux to add /metrics and pprof).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	for path, h := range w.Routes() {
		mux.Handle(path, h)
	}
	return mux
}

// handleHealth serves the schema handshake. A dead (killed) or
// draining worker answers 503 so coordinators stop considering it.
func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	if w.dead.Load() {
		http.Error(rw, "fabric: worker killed", http.StatusServiceUnavailable)
		return
	}
	if w.draining.Load() {
		http.Error(rw, "fabric: worker draining", http.StatusServiceUnavailable)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(Hello{OK: true, SchemaVersion: exp.SchemaVersion}) //nolint:errcheck // client went away
}

// beginLease registers an in-flight /run; false means the worker is
// draining and the lease must be refused.
func (w *Worker) beginLease() bool {
	w.activeMu.Lock()
	defer w.activeMu.Unlock()
	if w.draining.Load() {
		return false
	}
	w.activeN++
	return true
}

func (w *Worker) endLease() {
	w.activeMu.Lock()
	w.activeN--
	if w.activeN == 0 {
		w.activeIdle.Broadcast()
	}
	w.activeMu.Unlock()
}

// handleRun leases one range: decode, validate, execute, stream.
func (w *Worker) handleRun(rw http.ResponseWriter, req *http.Request) {
	if w.dead.Load() {
		w.leasesDenied.Inc()
		http.Error(rw, "fabric: worker killed", http.StatusServiceUnavailable)
		return
	}
	if !w.beginLease() {
		w.leasesDenied.Inc()
		http.Error(rw, "fabric: worker draining", http.StatusServiceUnavailable)
		return
	}
	defer w.endLease()
	var rr RunRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		w.leasesDenied.Inc()
		http.Error(rw, fmt.Sprintf("fabric: malformed run request: %v", err), http.StatusBadRequest)
		return
	}
	if rr.SchemaVersion != exp.SchemaVersion {
		w.leasesDenied.Inc()
		w.logf("fabric worker: lease %s rejected: coordinator schema_version %d, this build %d",
			rr.Lease, rr.SchemaVersion, exp.SchemaVersion)
		http.Error(rw, fmt.Sprintf("fabric: schema_version %d does not match this build's %d",
			rr.SchemaVersion, exp.SchemaVersion), http.StatusBadRequest)
		return
	}
	if len(rr.Keys) == 0 {
		w.leasesDenied.Inc()
		http.Error(rw, "fabric: empty lease", http.StatusBadRequest)
		return
	}
	specs := make([]exp.Spec, len(rr.Keys))
	for i, key := range rr.Keys {
		s, err := exp.ParseKey(key)
		if err == nil {
			err = s.Validate()
		}
		if err != nil {
			w.leasesDenied.Inc()
			http.Error(rw, fmt.Sprintf("fabric: bad spec key %q: %v", key, err), http.StatusBadRequest)
			return
		}
		specs[i] = s
	}

	w.leasesActive.Inc()
	defer w.leasesActive.Dec()
	w.leasesServed.Inc()
	w.Progress.AddTotal(exp.UniqueRuns(specs, rr.Speedup))
	w.logf("fabric worker: lease %s: %d specs (%s .. %s)", rr.Lease, len(specs), rr.Keys[0], rr.Keys[len(rr.Keys)-1])

	eng := w.engine(engineKey{speedup: rr.Speedup, observe: rr.Observe})
	rw.Header().Set("Content-Type", "application/x-ndjson")
	out := &flushWriter{w: rw}
	stats, err := eng.StreamWith(out, specs, func(rec *exp.Record) {
		if d := w.StallPerRecord; d > 0 {
			time.Sleep(d)
		}
		rec.SchemaVersion = exp.SchemaVersion
		if rec.Error != "" {
			w.recordsFailed.Inc()
		}
		w.recordsOut.Inc()
		if n := w.KillAfterRecords; n > 0 && w.streamed.Add(1) >= n {
			w.die()
		}
	})
	if err != nil {
		// Run failures already travelled as error records; a write error
		// means the coordinator hung up — nothing left to tell it.
		w.logf("fabric worker: lease %s: %d/%d records failed: %v", rr.Lease, stats.Failed, stats.Records, err)
	}
}

// Drain shuts the worker down gracefully: new leases (and health
// checks) answer 503 immediately, in-flight leases run to completion,
// and the local store — if any — is flushed and closed so every record
// streamed so far survives on disk. It returns an error if the
// in-flight leases do not finish within timeout (the store is still
// closed: appends are durable frame by frame, so at worst the store
// misses the interrupted lease's tail).
func (w *Worker) Drain(timeout time.Duration) error {
	w.activeMu.Lock()
	w.draining.Store(true)
	w.activeMu.Unlock()
	done := make(chan struct{})
	go func() {
		w.activeMu.Lock()
		for w.activeN > 0 {
			w.activeIdle.Wait()
		}
		w.activeMu.Unlock()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("fabric: drain timed out after %s with leases still in flight", timeout)
	}
	if w.Store != nil {
		if cerr := w.Store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	w.logf("fabric worker: drained (%d records streamed)", int64(w.recordsOut.Value()))
	return err
}

// die executes the injected kill: by default the worker goes dead
// (503s from now on) and the current stream is aborted mid-record.
func (w *Worker) die() {
	w.dead.Store(true)
	w.logf("fabric worker: injected kill after %d records", w.streamed.Load())
	if w.Kill != nil {
		w.Kill()
		return
	}
	panic(http.ErrAbortHandler)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// flushWriter flushes the HTTP response after every write, so the
// coordinator sees each record as soon as it is final (liveness, and
// partial streams on crash rather than an empty buffered response).
type flushWriter struct {
	w http.ResponseWriter
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
