package fabric

import (
	"sort"
	"sync"
	"time"

	"repro/internal/exp"
)

// rangeStatus is one range's lease state. The state machine:
//
//	pending --grant--> leased --deliver--> done
//	   ^                  |
//	   +------fail--------+   (attempts exhausted => localOnly)
//
// A leased range may hold up to two concurrent attempts (the original
// plus one straggler duplicate); it returns to pending only when every
// outstanding attempt has failed. done is terminal — late duplicate
// deliveries are dropped.
type rangeStatus int

const (
	rangePending rangeStatus = iota
	rangeLeased
	rangeDone
)

// maxInflightPerRange bounds concurrent attempts on one range: the
// original lease plus one straggler duplicate.
const maxInflightPerRange = 2

// specRange is one leased unit: the half-open slice specs[lo:hi] plus
// its lease state and, once done, its validated records.
type specRange struct {
	lo, hi    int
	status    rangeStatus
	inflight  int       // outstanding lease attempts
	attempts  int       // attempts granted so far (success or not)
	localOnly bool      // remote attempts exhausted; only local may run it
	started   time.Time // start of the oldest outstanding attempt
	records   []exp.Record
}

// leaseTable is the coordinator's shared scheduling state: which
// ranges are pending, leased, or done, how many live workers remain,
// and whether the merge was canceled. One mutex + condition variable
// serialize it; grants, deliveries, failures and retirements all
// broadcast so blocked workers and the in-order emitter re-evaluate.
//
// ranges stays sorted by lo and contiguous over [0, n): adaptive
// sizing may split a pending range into a granted head and a pending
// remainder, growing the slice, but never changes a leased or done
// range's bounds — so the merge can walk spec positions and every
// grant's slice is stable for its whole lease.
type leaseTable struct {
	mu   sync.Mutex
	cond *sync.Cond

	ranges      []*specRange
	done        int
	liveWorkers int
	maxAttempts int
	canceled    bool
}

// newLeaseTable splits n specs into ranges of size (the last may be
// ragged) for liveWorkers registered workers.
func newLeaseTable(n, size, maxAttempts, liveWorkers int) *leaseTable {
	t := &leaseTable{liveWorkers: liveWorkers, maxAttempts: maxAttempts}
	t.cond = sync.NewCond(&t.mu)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		t.ranges = append(t.ranges, &specRange{lo: lo, hi: hi})
	}
	return t
}

// grant is one lease assignment: the granted range (its bounds are
// frozen while leased) and the attempt ordinal (1-based, for lease IDs
// and logs). Splits shift slice indices, so grants hold the pointer.
type grant struct {
	r       *specRange
	attempt int
}

// next blocks until work is available and returns the next grant, or
// ok=false when every range is done (or the table was canceled) and
// the caller should exit.
//
// Remote callers (local=false) get the first pending non-localOnly
// range; with nothing pending they duplicate the longest-running
// in-flight range that has capacity (straggler re-issue). Local
// callers (local=true) get ranges whose remote attempts are exhausted
// — or any unfinished range once no live workers remain — and never
// duplicate in-flight work.
//
// maxSpecs > 0 caps the grant for remote callers (adaptive range
// sizing): a larger pending range is split at maxSpecs and only the
// head granted, leaving the remainder pending for faster hands.
// Straggler duplicates are never split — the original attempt's bounds
// are already fixed.
func (t *leaseTable) next(local bool, maxSpecs int) (grant, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.canceled || t.done == len(t.ranges) {
			return grant{}, false
		}
		if idx, ok := t.pickLocked(local); ok {
			r := t.ranges[idx]
			if !local && maxSpecs > 0 && r.status == rangePending && r.hi-r.lo > maxSpecs {
				t.splitLocked(idx, maxSpecs)
				r = t.ranges[idx]
			}
			r.status = rangeLeased
			if r.inflight == 0 {
				r.started = time.Now()
			}
			r.inflight++
			r.attempts++
			return grant{r: r, attempt: r.attempts}, true
		}
		t.cond.Wait()
	}
}

// splitLocked splits the pending range at idx into [lo, lo+keep) and a
// pending remainder [lo+keep, hi), inserted right after it. The new
// pending work wakes anything blocked in next. Caller holds t.mu.
func (t *leaseTable) splitLocked(idx, keep int) {
	r := t.ranges[idx]
	rest := &specRange{lo: r.lo + keep, hi: r.hi}
	r.hi = r.lo + keep
	t.ranges = append(t.ranges, nil)
	copy(t.ranges[idx+2:], t.ranges[idx+1:])
	t.ranges[idx+1] = rest
	t.cond.Broadcast()
}

// pickLocked chooses a range for a grant. Caller holds t.mu.
func (t *leaseTable) pickLocked(local bool) (int, bool) {
	if local {
		for i, r := range t.ranges {
			if r.status == rangeDone || r.inflight > 0 {
				continue
			}
			if r.localOnly || t.liveWorkers == 0 {
				return i, true
			}
		}
		return 0, false
	}
	for i, r := range t.ranges {
		if r.status == rangePending && !r.localOnly {
			return i, true
		}
	}
	// Straggler re-issue: duplicate the oldest outstanding lease.
	best, found := 0, false
	for i, r := range t.ranges {
		if r.status != rangeLeased || r.localOnly || r.inflight >= maxInflightPerRange {
			continue
		}
		if !found || r.started.Before(t.ranges[best].started) {
			best, found = i, true
		}
	}
	return best, found
}

// deliver completes one attempt with validated records. The first
// delivery wins and returns true; late duplicates return false and are
// dropped (both copies are bit-equal anyway — the simulator is
// deterministic).
func (t *leaseTable) deliver(g grant, recs []exp.Record) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := g.r
	if r.inflight > 0 {
		r.inflight--
	}
	defer t.cond.Broadcast()
	if r.status == rangeDone {
		return false
	}
	r.status = rangeDone
	r.records = recs
	t.done++
	return true
}

// fail aborts one attempt. With no other attempt outstanding the range
// returns to pending; once its attempts reach maxAttempts it is marked
// localOnly so only the local executor will touch it again.
func (t *leaseTable) fail(g grant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := g.r
	if r.inflight > 0 {
		r.inflight--
	}
	if r.status != rangeDone {
		if r.inflight == 0 {
			r.status = rangePending
		}
		if r.attempts >= t.maxAttempts {
			r.localOnly = true
		}
	}
	t.cond.Broadcast()
}

// retireWorker removes one live worker from the table's accounting;
// at zero the local executor may claim anything unfinished.
func (t *leaseTable) retireWorker() {
	t.mu.Lock()
	t.liveWorkers--
	t.mu.Unlock()
	t.cond.Broadcast()
}

// cancel aborts the merge: blocked callers drain and exit.
func (t *leaseTable) cancel() {
	t.mu.Lock()
	t.canceled = true
	t.mu.Unlock()
	t.cond.Broadcast()
}

// waitDoneAt blocks until the range starting at spec position lo is
// done, returning its records and the next position; ok=false means
// the table was canceled first. Splits only touch pending ranges, so
// the range at lo may gain a smaller hi while still pending, but once
// done its bounds are final — the emitter walks positions, immune to
// the slice growing under it.
func (t *leaseTable) waitDoneAt(lo int) ([]exp.Record, int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if r := t.rangeAtLocked(lo); r != nil && r.status == rangeDone {
			return r.records, r.hi, true
		}
		if t.canceled {
			return nil, 0, false
		}
		t.cond.Wait()
	}
}

// rangeAtLocked finds the range whose lo matches, by binary search
// (ranges stay sorted and contiguous). Caller holds t.mu.
func (t *leaseTable) rangeAtLocked(lo int) *specRange {
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].lo >= lo })
	if i < len(t.ranges) && t.ranges[i].lo == lo {
		return t.ranges[i]
	}
	return nil
}

// doneRanges returns how many ranges have completed (for progress).
func (t *leaseTable) doneRanges() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// totalRanges returns the current range count; splits grow it.
func (t *leaseTable) totalRanges() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ranges)
}
