package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestRegionElapsed(t *testing.T) {
	r := NewRegion(3)
	r.Start(0, 100)
	r.Start(1, 120)
	r.Start(2, 110)
	r.End(0, 500)
	r.End(1, 540)
	r.End(2, 530)
	if got := r.Elapsed(); got != 440 {
		t.Errorf("Elapsed = %v, want 440 (540-100)", got)
	}
}

func TestRegionElapsedEmpty(t *testing.T) {
	r := NewRegion(2)
	if got := r.Elapsed(); got != 0 {
		t.Errorf("Elapsed on empty region = %v, want 0", got)
	}
}

func TestRegionTraffic(t *testing.T) {
	r := NewRegion(1)
	var st stats.Stats
	st.Record(stats.KindData, 100)
	st.Record(stats.KindBarrier, 10)
	r.Baseline(&st)
	st.Record(stats.KindData, 50)
	st.Record(stats.KindDiff, 4096)
	r.Final(&st)
	tr := r.Traffic()
	if tr.TotalMsgs() != 2 {
		t.Errorf("region msgs = %d, want 2", tr.TotalMsgs())
	}
	if tr.BytesOf(stats.KindData) != 50 {
		t.Errorf("region data bytes = %d, want 50", tr.BytesOf(stats.KindData))
	}
	if tr.BytesOf(stats.KindDiff) != 4096 {
		t.Errorf("region diff bytes = %d, want 4096", tr.BytesOf(stats.KindDiff))
	}
}

func TestRegionTrafficWithoutBaseline(t *testing.T) {
	r := NewRegion(1)
	var st stats.Stats
	st.Record(stats.KindData, 77)
	r.Final(&st)
	tr := r.Traffic()
	if got := tr.TotalBytes(); got != 77 {
		t.Errorf("traffic without baseline = %d, want 77", got)
	}
}

func TestSpeedup(t *testing.T) {
	r := Result{Time: 2 * sim.Second}
	if got := r.Speedup(16 * sim.Second); got != 8 {
		t.Errorf("Speedup = %v, want 8", got)
	}
	zero := Result{}
	if got := zero.Speedup(sim.Second); got != 0 {
		t.Errorf("Speedup with zero time = %v, want 0", got)
	}
}

func TestResultString(t *testing.T) {
	r := Result{App: "Jacobi", Version: Tmk, Procs: 8, Time: sim.Second}
	s := r.String()
	if s == "" {
		t.Error("empty String()")
	}
}
