// Package core is the evaluation framework of the reproduction — the
// paper's primary contribution is the head-to-head comparison of four
// ways to run the same program on a message-passing machine:
//
//	SPF   compiler-generated shared memory on TreadMarks
//	Tmk   hand-coded shared memory on TreadMarks
//	XHPF  compiler-generated message passing
//	PVMe  hand-coded message passing
//
// plus the hand-optimized variants of §5. This package defines the
// version vocabulary, run configuration, results, and the timed-region
// bookkeeping shared by all application implementations (the paper
// excludes the first iteration from measurement; so do we).
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Version names one implementation strategy of an application.
type Version string

const (
	// Seq is the sequential baseline: the TreadMarks program with all
	// synchronization removed, run on one processor (paper §3).
	Seq Version = "seq"
	// SPF is compiler-generated shared memory (Forge SPF → TreadMarks).
	SPF Version = "spf"
	// Tmk is hand-coded shared memory on TreadMarks.
	Tmk Version = "tmk"
	// XHPF is compiler-generated message passing (Forge XHPF).
	XHPF Version = "xhpf"
	// PVMe is hand-coded message passing.
	PVMe Version = "pvme"
	// SPFOpt is the hand-optimized SPF version of §5 (aggregation,
	// merged loops — whichever optimization the paper applied).
	SPFOpt Version = "spf-opt"
	// TmkOpt is the hand-optimized TreadMarks version where the paper
	// reports one (MGS's merged broadcast).
	TmkOpt Version = "tmk-opt"
	// SPFOld is SPF under the original §2.3 compiler-runtime interface
	// (8(n-1) messages per loop); used by the interface ablation.
	SPFOld Version = "spf-old"
	// TmkPush replaces the default request-response page fetching with
	// §8's push: producers ship boundary diffs with the barrier, so
	// consumers never fault.
	TmkPush Version = "tmk-push"
	// SPFGen is the internal/loopc-compiled fork-join DSM version: the
	// same runtime as SPF, but the code is derived from the kernel's
	// loop-nest IR instead of written by hand. Bit-identical to SPF.
	SPFGen Version = "spf-gen"
	// XHPFGen is the internal/loopc-compiled message-passing version,
	// derived from the same IR. Bit-identical to XHPF.
	XHPFGen Version = "xhpf-gen"
)

// Scale selects a problem-size regime. Sizing lives with the
// application: every app package maps (scale, procs) to a concrete
// Config through App.Config, so no runner needs a per-app size table.
type Scale string

const (
	// PaperScale runs Table 1's data sets.
	PaperScale Scale = "paper"
	// MidScale runs reduced sizes that preserve the page-granularity
	// regime (rows/vectors of at least a page) at a fraction of the time.
	MidScale Scale = "mid"
	// SmallScale runs the tiny test sizes.
	SmallScale Scale = "small"
)

// Config carries a run's parameters. The per-application meaning of N1,
// N2, N3 is documented by each application package.
type Config struct {
	Procs  int
	N1     int
	N2     int
	N3     int
	Iters  int // timed iterations
	Warmup int // untimed leading iterations (paper: 1)
	// Costs carries the interconnect and protocol cost model, including
	// the network-contention knobs (SerialNIC, BackplaneWays) that every
	// runtime threads through to the simulator.
	Costs model.Costs
	App   model.AppCosts

	// Protocol selects the DSM coherence protocol for the TreadMarks
	// based versions (empty: the homeless TreadMarks LRC). Message
	// passing versions ignore it.
	Protocol proto.Name

	// HomePolicy selects the home-placement policy of the home-based
	// protocol (empty: static homes). The homeless protocol and the
	// message-passing versions ignore it.
	HomePolicy proto.PolicyName
}

// Result is the outcome of one (application, version, procs) run.
type Result struct {
	App      string
	Version  Version
	Procs    int
	Protocol proto.Name // coherence protocol (DSM versions only)
	Time     sim.Time   // elapsed virtual time of the timed region
	Stats    stats.Stats
	Checksum float64

	// Overhead attribution summed over application processes (DSM
	// versions only): time in page repair, synchronization and write
	// detection — the decomposition of the paper's §5/§6 analysis.
	FaultTime, SyncTime, WriteTime sim.Time

	// HomePolicy is the home-placement policy the run used (home-based
	// protocol only). The activity counters below are whole-run sums
	// over nodes (warm-up included — migrations concentrate in the
	// first epochs, which the timed region excludes): pages whose home
	// moved, flush bytes re-sent after a stale-home NACK, and protocol
	// requests NACKed while a directory update was in flight. All zero
	// under static homes and the homeless protocol.
	HomePolicy           proto.PolicyName
	Migrations           int64
	RedirectedFlushBytes int64
	StaleForwards        int64

	// Breakdown is the per-node virtual-time attribution of the timed
	// region (observability runs only — nil when the run's cost model
	// carried no trace). Each node's components sum exactly to its timed
	// window; obs.Sum aggregates across nodes.
	Breakdown []obs.NodeBreakdown
	// Trace is the run's full event trace (observability runs only).
	// Exported with obs.(*Trace).WriteChrome.
	Trace *obs.Trace
}

// QueueTime returns the contention queueing delay accumulated over the
// timed region, summed over nodes. Zero when the run's cost model left
// contention off (Config.Costs.SerialNIC / BackplaneWays unset).
func (r Result) QueueTime() sim.Time { return sim.Time(r.Stats.TotalQueueNanos()) }

// QueueTimeBy returns the part of the queueing delay bound by one
// contention resource (out link, in link, or backplane), summed over
// nodes.
func (r Result) QueueTimeBy(res stats.QueueResource) sim.Time {
	return sim.Time(r.Stats.QueueResNanosOf(res))
}

// QueueTimeOf returns the part of the queueing delay accumulated by
// messages of one traffic category.
func (r Result) QueueTimeOf(k stats.Kind) sim.Time {
	return sim.Time(r.Stats.QueueKindNanosOf(k))
}

// Speedup computes seqTime / r.Time.
func (r Result) Speedup(seqTime sim.Time) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(seqTime) / float64(r.Time)
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s p=%d t=%v msgs=%d kb=%d sum=%g",
		r.App, r.Version, r.Procs, r.Time, r.Stats.TotalMsgs(), r.Stats.TotalKB(), r.Checksum)
}

// App is the interface every application package satisfies.
type App interface {
	// Name returns the application name as the paper uses it.
	Name() string
	// Config maps a problem-size regime and processor count to the
	// application's run parameters (sizes, iterations, warm-up). The
	// caller fills in the machine-level fields (Costs, App, Protocol).
	// Unknown scales resolve to PaperScale.
	Config(scale Scale, procs int) Config
	// Versions lists the supported versions.
	Versions() []Version
	// Run executes one version.
	Run(v Version, cfg Config) (Result, error)
}

// Region tracks the timed region of a parallel run: per-process start
// and end clocks plus a baseline traffic snapshot. The measurement
// protocol (all versions):
//
//	warmup iterations
//	barrier                      ← all warm-up work quiesced
//	proc 0: reg.Baseline(stats)  ← nothing timed can have run yet
//	barrier                      ← nobody starts until baseline is taken
//	per proc: reg.Start(id, now)
//	timed iterations
//	final barrier
//	per proc: reg.End(id, now)
//	proc 0: reg.Final(stats)
//
// Because the simulator executes one process at a time in virtual-time
// order, and a process can pass the second barrier only after process 0
// (the barrier manager) has taken the baseline, the snapshot cleanly
// separates warm-up traffic from timed traffic.
type Region struct {
	start, end []sim.Time
	base, last stats.Stats
	haveBase   bool
}

// NewRegion prepares bookkeeping for nprocs processes.
func NewRegion(nprocs int) *Region {
	return &Region{
		start: make([]sim.Time, nprocs),
		end:   make([]sim.Time, nprocs),
	}
}

// Baseline snapshots traffic at the end of warm-up (process 0 only,
// between the two boundary barriers).
func (r *Region) Baseline(st *stats.Stats) {
	r.base = *st
	r.haveBase = true
}

// Start records a process's clock at the beginning of the timed region.
func (r *Region) Start(id int, now sim.Time) { r.start[id] = now }

// End records a process's clock at the end of the timed region.
func (r *Region) End(id int, now sim.Time) { r.end[id] = now }

// Final snapshots traffic at the end of the timed region (process 0,
// after the final barrier, before any untimed postlude like checksums).
func (r *Region) Final(st *stats.Stats) { r.last = *st }

// Elapsed returns the timed-region wall time: latest end minus earliest
// start.
func (r *Region) Elapsed() sim.Time {
	var lo, hi sim.Time
	lo = sim.Forever
	for i := range r.start {
		if r.start[i] < lo {
			lo = r.start[i]
		}
		if r.end[i] > hi {
			hi = r.end[i]
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Traffic returns the messages, bytes and contention queueing delay
// recorded during the timed region.
func (r *Region) Traffic() stats.Stats {
	out := r.last
	if r.haveBase {
		out.Sub(&r.base)
	}
	return out
}

// NProcs returns the number of processes the region tracks.
func (r *Region) NProcs() int { return len(r.start) }

// Window returns process id's timed window as [start, end] virtual
// nanoseconds, for obs.(*Trace).Attribute.
func (r *Region) Window(id int) [2]int64 {
	return [2]int64{int64(r.start[id]), int64(r.end[id])}
}

// AttachObs fills a result's observability fields from a run's trace and
// timed region: the trace rides along for export, and the region's
// per-process windows become per-node breakdowns. A single-process
// region under a multi-node run (the SPF master-only window) is
// replicated to every node: the fork-join versions time only the master,
// but every node's activity spans the same window. A nil trace attaches
// nothing.
func AttachObs(res *Result, tr *obs.Trace, reg *Region, nodes int) {
	if !tr.Enabled() {
		return
	}
	windows := make([][2]int64, nodes)
	for i := range windows {
		if reg.NProcs() == 1 {
			windows[i] = reg.Window(0)
		} else {
			windows[i] = reg.Window(i)
		}
	}
	res.Trace = tr
	res.Breakdown = tr.Attribute(windows)
}
