package obs

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Category is the time-attribution bucket of a wait.
type Category uint8

const (
	// CatFault is page-repair stall: waiting for diff or page traffic.
	CatFault Category = iota
	// CatBarrier is barrier wait (including the fork-join interface's
	// control messages, which travel under the barrier category).
	CatBarrier
	// CatLock is lock-acquisition wait.
	CatLock
	// CatData is explicit message-passing data wait (PVMe/XHPF sends,
	// broadcasts, exchanges).
	CatData
	// CatOther is everything else (untracked shutdown/boundary traffic).
	CatOther
)

// CategoryOf maps a traffic category to its attribution bucket.
func CategoryOf(k stats.Kind) Category {
	switch k {
	case stats.KindDiffReq, stats.KindDiff, stats.KindPageReq, stats.KindPage:
		return CatFault
	case stats.KindBarrier, stats.KindControl:
		return CatBarrier
	case stats.KindLock:
		return CatLock
	case stats.KindData:
		return CatData
	}
	return CatOther
}

// NodeBreakdown is one node's virtual-time attribution over its timed
// window: the window's length decomposed into categories that sum to
// it exactly (Attribute asserts this by construction — Compute is the
// remainder and must be non-negative).
//
// Compute is everything the node's application process did while not
// blocked: application work plus protocol CPU costs charged locally
// (twinning, diff creation/application, pack/unpack). The wait
// categories come from the simulator's Recv clock jumps, categorized
// by the received message's traffic kind; Queue is the part of those
// waits caused by contention queueing (busy NIC links or backplane).
type NodeBreakdown struct {
	Node    int   `json:"node"`
	Total   int64 `json:"total_ns"`
	Compute int64 `json:"compute_ns"`
	Fault   int64 `json:"fault_ns"`
	Barrier int64 `json:"barrier_ns"`
	Lock    int64 `json:"lock_ns"`
	Data    int64 `json:"data_ns"`
	Queue   int64 `json:"queue_ns"`
	Other   int64 `json:"other_ns"`
}

// WaitSum returns the non-compute components' sum.
func (b NodeBreakdown) WaitSum() int64 {
	return b.Fault + b.Barrier + b.Lock + b.Data + b.Queue + b.Other
}

// Sum aggregates breakdowns (Node = -1 in the result).
func Sum(bds []NodeBreakdown) NodeBreakdown {
	out := NodeBreakdown{Node: -1}
	for _, b := range bds {
		out.Total += b.Total
		out.Compute += b.Compute
		out.Fault += b.Fault
		out.Barrier += b.Barrier
		out.Lock += b.Lock
		out.Data += b.Data
		out.Queue += b.Queue
		out.Other += b.Other
	}
	return out
}

// Attribute folds the trace's wait events into per-node breakdowns
// over the given timed windows: windows[i] is node i's [start, end]
// clocks (application process i — request-server processes are
// measurement infrastructure and are excluded). Waits are clipped to
// the window; the remainder of the window is compute.
//
// The decomposition is exact by construction and Attribute asserts its
// preconditions: windows must be well-formed, and each process's wait
// events must be monotone and non-overlapping (they are — a wait spans
// a Recv clock jump, and clocks never go backwards). A violated
// assertion panics: it means an emitter, not the caller, is broken.
//
// A nil trace attributes every window entirely to compute.
func (t *Trace) Attribute(windows [][2]int64) []NodeBreakdown {
	out := make([]NodeBreakdown, len(windows))
	lastEnd := make([]int64, len(windows))
	for i, w := range windows {
		if w[1] < w[0] {
			panic(fmt.Sprintf("obs: window %d ends (%d) before it starts (%d)", i, w[1], w[0]))
		}
		out[i] = NodeBreakdown{Node: i, Total: w[1] - w[0]}
		lastEnd[i] = math.MinInt64
	}
	if t == nil {
		for i := range out {
			out[i].Compute = out[i].Total
		}
		return out
	}
	for _, e := range t.events {
		if e.Type != EvWait || int(e.Proc) >= len(windows) || e.Proc < 0 {
			continue
		}
		i := int(e.Proc)
		if e.Dur < 0 {
			panic(fmt.Sprintf("obs: negative wait duration %d on proc %d", e.Dur, i))
		}
		if e.T < lastEnd[i] {
			panic(fmt.Sprintf("obs: wait events overlap on proc %d (start %d < previous end %d)", i, e.T, lastEnd[i]))
		}
		lastEnd[i] = e.T + e.Dur
		lo, hi := e.T, e.T+e.Dur
		if lo < windows[i][0] {
			lo = windows[i][0]
		}
		if hi > windows[i][1] {
			hi = windows[i][1]
		}
		if hi <= lo {
			continue
		}
		d := hi - lo
		q := e.Arg // contention-queueing part of the wait
		if q < 0 {
			q = 0
		}
		if q > d {
			q = d
		}
		b := &out[i]
		b.Queue += q
		rest := d - q
		switch CategoryOf(e.Kind) {
		case CatFault:
			b.Fault += rest
		case CatBarrier:
			b.Barrier += rest
		case CatLock:
			b.Lock += rest
		case CatData:
			b.Data += rest
		default:
			b.Other += rest
		}
	}
	for i := range out {
		b := &out[i]
		b.Compute = b.Total - b.WaitSum()
		if b.Compute < 0 {
			panic(fmt.Sprintf("obs: node %d waits (%d ns) exceed its window (%d ns)", i, b.WaitSum(), b.Total))
		}
	}
	return out
}
