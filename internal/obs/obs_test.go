package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestNilTraceIsDisabled pins the zero-overhead-when-disabled contract:
// every method of a nil *Trace is a safe no-op, so call sites need no
// guards.
func TestNilTraceIsDisabled(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil trace reports enabled")
	}
	tr.SetTopology(8, 4)
	tr.Span(EvWait, 0, 10, 5, stats.KindData, -1, 0)
	tr.Instant(EvBarrierArrive, 0, 10, stats.KindBarrier, -1, 1)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil trace collected events")
	}
	if tr.Procs() != 0 || tr.Nodes() != 0 {
		t.Error("nil trace has a topology")
	}
	if tr.NodeOf(3) != 3 {
		t.Errorf("nil trace NodeOf(3) = %d, want identity", tr.NodeOf(3))
	}
	if tr.IsServer(7) {
		t.Error("nil trace claims a server process")
	}
	bds := tr.Attribute([][2]int64{{100, 300}})
	if bds[0].Compute != 200 || bds[0].Total != 200 || bds[0].WaitSum() != 0 {
		t.Errorf("nil trace attribution = %+v, want all-compute", bds[0])
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Errorf("nil trace Chrome doc: %d events, err %v; want an empty valid doc", n, err)
	}
}

// TestTopology pins the process-to-node mapping conventions, including
// the paired app+server layout (procs = 2*nodes, upper half servers).
func TestTopology(t *testing.T) {
	tr := New()
	tr.SetTopology(8, 4)
	for p := 0; p < 8; p++ {
		if got := tr.NodeOf(p); got != p%4 {
			t.Errorf("NodeOf(%d) = %d, want %d", p, got, p%4)
		}
		if got := tr.IsServer(p); got != (p >= 4) {
			t.Errorf("IsServer(%d) = %v, want %v", p, got, p >= 4)
		}
	}
	tr.SetTopology(4, 4) // no paired servers
	if tr.IsServer(3) {
		t.Error("unpaired topology claims a server process")
	}
}

// TestAttribute exercises the synthetic attribution cases: kind
// categorization, the queue carve-out, window clipping, and events
// outside the window or on unknown processes.
func TestAttribute(t *testing.T) {
	tr := New()
	tr.SetTopology(2, 2)
	// Node 0: one wait per category, plus a queueing carve.
	tr.Span(EvWait, 0, 100, 50, stats.KindDiff, -1, 0)     // fault
	tr.Span(EvWait, 0, 200, 30, stats.KindBarrier, -1, 0)  // barrier
	tr.Span(EvWait, 0, 300, 20, stats.KindLock, -1, 0)     // lock
	tr.Span(EvWait, 0, 400, 40, stats.KindData, -1, 15)    // data 25 + queue 15
	tr.Span(EvWait, 0, 500, 10, stats.KindShutdown, -1, 0) // other
	// Instants and non-wait spans never count toward attribution.
	tr.Instant(EvBarrierArrive, 0, 550, stats.KindBarrier, -1, 7)
	tr.Span(EvFault, 0, 560, 100, stats.KindPage, 3, 2)
	// Node 1: a wait straddling the window start is clipped, one fully
	// outside is dropped, and an oversized queue arg clamps to the wait.
	tr.Span(EvWait, 1, 50, 100, stats.KindPage, -1, 0)  // clips to [100,150]
	tr.Span(EvWait, 1, 950, 100, stats.KindData, -1, 0) // clips to [950,1000]
	tr.Span(EvWait, 1, 1200, 50, stats.KindData, -1, 0) // outside entirely
	// Unknown process ids are ignored.
	tr.Span(EvWait, 5, 100, 50, stats.KindData, -1, 0)

	bds := tr.Attribute([][2]int64{{0, 1000}, {100, 1000}})
	b0 := bds[0]
	if b0.Fault != 50 || b0.Barrier != 30 || b0.Lock != 20 || b0.Data != 25 ||
		b0.Queue != 15 || b0.Other != 10 {
		t.Errorf("node 0 = %+v, want fault 50 barrier 30 lock 20 data 25 queue 15 other 10", b0)
	}
	if b0.Compute != 1000-b0.WaitSum() {
		t.Errorf("node 0 compute = %d, want window remainder %d", b0.Compute, 1000-b0.WaitSum())
	}
	b1 := bds[1]
	if b1.Fault != 50 || b1.Data != 50 || b1.Compute != 800 {
		t.Errorf("node 1 = %+v, want fault 50 data 50 compute 800 (clipping)", b1)
	}
	// The exactness invariant: components sum to the window everywhere.
	for _, b := range bds {
		if b.Compute+b.WaitSum() != b.Total {
			t.Errorf("node %d: compute %d + waits %d != total %d", b.Node, b.Compute, b.WaitSum(), b.Total)
		}
	}
	// Queue args clamp to the wait duration.
	tr2 := New()
	tr2.Span(EvWait, 0, 0, 10, stats.KindData, -1, 99)
	if b := tr2.Attribute([][2]int64{{0, 100}})[0]; b.Queue != 10 || b.Data != 0 {
		t.Errorf("oversized queue arg: %+v, want queue 10 data 0", b)
	}
}

// TestAttributePanics pins the assertion behaviour: malformed windows
// and broken emitters (overlap, negative duration) panic rather than
// producing a silently wrong decomposition.
func TestAttributePanics(t *testing.T) {
	mustPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Errorf("%s: panic %v, want mention of %q", name, r, want)
			}
		}()
		f()
	}
	mustPanic("inverted window", "before it starts", func() {
		New().Attribute([][2]int64{{100, 50}})
	})
	mustPanic("negative duration", "negative wait", func() {
		tr := New()
		tr.Span(EvWait, 0, 100, -5, stats.KindData, -1, 0)
		tr.Attribute([][2]int64{{0, 1000}})
	})
	mustPanic("overlapping waits", "overlap", func() {
		tr := New()
		tr.Span(EvWait, 0, 100, 50, stats.KindData, -1, 0)
		tr.Span(EvWait, 0, 120, 50, stats.KindData, -1, 0)
		tr.Attribute([][2]int64{{0, 1000}})
	})
	// Note the negative-compute assertion in Attribute is defensive-only:
	// non-overlapping waits clipped to the window can never exceed it,
	// and overlap panics first. No test can reach it through the API.
}

// TestCategoryOf pins the kind-to-bucket mapping the breakdown tables
// depend on.
func TestCategoryOf(t *testing.T) {
	want := map[stats.Kind]Category{
		stats.KindDiffReq:  CatFault,
		stats.KindDiff:     CatFault,
		stats.KindPageReq:  CatFault,
		stats.KindPage:     CatFault,
		stats.KindBarrier:  CatBarrier,
		stats.KindControl:  CatBarrier,
		stats.KindLock:     CatLock,
		stats.KindData:     CatData,
		stats.KindShutdown: CatOther,
	}
	for k, cat := range want {
		if got := CategoryOf(k); got != cat {
			t.Errorf("CategoryOf(%v) = %v, want %v", k, got, cat)
		}
	}
}

// TestWriteChromeDeterministic pins the exporter's byte determinism (a
// pure function of the event stream) and its round trip through the
// validator.
func TestWriteChromeDeterministic(t *testing.T) {
	build := func() *Trace {
		tr := New()
		tr.SetTopology(4, 2)
		tr.Span(EvWait, 0, 1234567, 890, stats.KindDiff, -1, 123)
		tr.Span(EvQueue, 1, 2000, 500, stats.KindPage, -1, int64(stats.QueueBackplane))
		tr.Span(EvFault, 0, 1000, 2000, stats.KindPage, 17, 3)
		tr.Instant(EvDiffReq, 0, 1100, stats.KindDiffReq, 17, 2)
		tr.Instant(EvDiffReply, 0, 1900, stats.KindDiff, -1, 2)
		tr.Instant(EvPageReq, 1, 50, stats.KindPageReq, 8, 0)
		tr.Instant(EvPageFetch, 1, 99, stats.KindPage, 8, 0)
		tr.Instant(EvBarrierArrive, 2, 5000, stats.KindBarrier, -1, 4)
		tr.Instant(EvBarrierDepart, 2, 5600, stats.KindBarrier, -1, 4)
		tr.Instant(EvLockRequest, 3, 7000, stats.KindLock, -1, 9)
		tr.Instant(EvLockGrant, 3, 7500, stats.KindLock, -1, 9)
		tr.Instant(EvMigrationEpoch, 0, 8000, stats.KindControl, -1, 5)
		tr.Instant(EvHomeMove, 1, 8001, stats.KindControl, 42, 0)
		tr.Span(EvCollective, 2, 9000, 300, stats.KindData, -1, CollHalo)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event streams produced different Chrome JSON")
	}
	n, err := ValidateChrome(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("exporter output fails its own validator: %v", err)
	}
	if n != build().Len() {
		t.Errorf("validator counted %d events, trace has %d", n, build().Len())
	}
	// The timestamp formatting is fixed-point microseconds.
	if !strings.Contains(a.String(), `"ts":1234.567`) {
		t.Error("ns->us fixed-point formatting drifted (want ts 1234.567)")
	}
}

// TestValidateChromeRejects pins the validator's error cases.
func TestValidateChromeRejects(t *testing.T) {
	bad := map[string]string{
		"not json":       `{`,
		"no traceEvents": `{"foo":[]}`,
		"nameless event": `{"traceEvents":[{"ph":"i","pid":0,"tid":0,"ts":1}]}`,
		"missing ts":     `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0,"ts":-1}]}`,
		"durless span":   `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":1}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"B","pid":0,"tid":0,"ts":1}]}`,
	}
	for name, doc := range bad {
		if _, err := ValidateChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// TestTypeAndCollNames pins the display vocabulary.
func TestTypeAndCollNames(t *testing.T) {
	for i := 0; i < NumTypes(); i++ {
		if s := Type(i).String(); strings.HasPrefix(s, "type(") {
			t.Errorf("Type(%d) has no name", i)
		}
	}
	if s := Type(200).String(); s != "type(200)" {
		t.Errorf("unknown type renders %q", s)
	}
	if CollName(CollHalo) != "halo" || CollName(99) != "coll(99)" {
		t.Error("collective naming drifted")
	}
}
