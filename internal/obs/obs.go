// Package obs is the observability layer of the simulator: typed trace
// events with virtual timestamps, collected during a run and folded
// into per-node time attributions or exported as a Chrome trace_event
// JSON timeline (Perfetto-compatible).
//
// The layer is zero-overhead when disabled: a nil *Trace is the
// disabled state, every emit method nil-checks its receiver, and — the
// load-bearing guarantee — event emission never advances virtual time
// or sends messages, so a run's virtual times, message counts and byte
// volumes are bit-identical whether tracing is on or off. The golden
// virtual-time and traffic tests pin the disabled path; the exp-level
// observability tests pin the enabled path against it.
//
// obs sits below everything that emits: it imports only internal/stats
// (for the traffic-category vocabulary) and carries timestamps as raw
// int64 nanoseconds, so sim, model, proto, tmk, pvm, xhpf, core and exp
// can all import it without cycles.
package obs

import (
	"fmt"

	"repro/internal/stats"
)

// Type classifies a trace event.
type Type uint8

const (
	// EvWait is a span: a process sat idle in Recv until its message's
	// delivery time (the clock jump). Kind is the received message's
	// traffic category; Arg is the part of the wait caused by contention
	// queueing (the message's Queued time, clamped to the wait).
	EvWait Type = iota
	// EvQueue is a span: a message waited for a busy link before
	// transmission (contention model only). Emitted on the *sending*
	// process; Arg is the binding stats.QueueResource.
	EvQueue
	// EvFault is a span: a page-fault repair on the application process,
	// from access miss to all diffs/pages applied. Page is the first
	// faulted page; Arg is the number of remote peers consulted.
	EvFault
	// EvDiffReq is an instant: a diff request left for a writer (Arg).
	EvDiffReq
	// EvDiffReply is an instant: a writer's (Arg) diff response was
	// received.
	EvDiffReply
	// EvPageReq is an instant: a whole-page request left for a home
	// node (Arg).
	EvPageReq
	// EvPageFetch is an instant: a full page copy (Page) was installed.
	EvPageFetch
	// EvBarrierArrive is an instant: the process arrived at barrier
	// sequence Arg (manager: entered the gather).
	EvBarrierArrive
	// EvBarrierDepart is an instant: the process left barrier sequence
	// Arg with consistency information applied.
	EvBarrierDepart
	// EvLockRequest is an instant: an acquire of lock Arg started.
	EvLockRequest
	// EvLockGrant is an instant: lock Arg was acquired.
	EvLockGrant
	// EvMigrationEpoch is an instant (manager node only): a home-
	// directory epoch closed with Arg arbitrated updates.
	EvMigrationEpoch
	// EvHomeMove is an instant: page Page's home moved to this node from
	// node Arg.
	EvHomeMove
	// EvCollective is a span: a message-passing runtime collective
	// (barrier, broadcast, halo exchange, ...). Arg is a Coll* code.
	EvCollective
	numTypes
)

var typeNames = [numTypes]string{
	"wait", "queue", "fault", "diff-req", "diff-reply", "page-req",
	"page-fetch", "barrier-arrive", "barrier-depart", "lock-request",
	"lock-grant", "dir-epoch", "home-move", "collective",
}

// String returns the lower-case event-type name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// NumTypes reports the number of defined event types.
func NumTypes() int { return int(numTypes) }

// Collective operation codes (EvCollective's Arg).
const (
	CollBarrier int64 = iota
	CollLoopSync
	CollBcast
	CollHalo
	CollPartition
	CollGather
	CollAllToAll
	CollReduce
)

var collNames = []string{
	"barrier", "loopsync", "bcast", "halo", "partition", "gather",
	"alltoall", "reduce",
}

// CollName returns the collective-operation name for an EvCollective
// Arg code.
func CollName(op int64) string {
	if op >= 0 && int(op) < len(collNames) {
		return collNames[op]
	}
	return fmt.Sprintf("coll(%d)", op)
}

// Event is one trace event. T and Dur are virtual nanoseconds; Dur is
// zero for instants. Page is -1 when the event concerns no page. The
// meaning of Arg depends on Type (see the Type constants).
type Event struct {
	T    int64
	Dur  int64
	Arg  int64
	Proc int32
	Page int32
	Type Type
	Kind stats.Kind
}

// Trace collects the events of one run. The zero value is usable; a
// nil *Trace is the disabled state: every method nil-checks, so
// call sites need no guards (though hot paths may use Enabled to skip
// argument construction). A Trace is single-run, single-goroutine
// state — the simulator's sequential scheduler serializes all access
// during a run, and each engine run gets its own instance.
type Trace struct {
	procs  int
	nodes  int
	events []Event
}

// New creates an enabled, empty trace.
func New() *Trace { return &Trace{} }

// Enabled reports whether events are being collected.
func (t *Trace) Enabled() bool { return t != nil }

// SetTopology records the simulated machine shape: procs simulated
// processes on nodes physical nodes (process p on node p mod nodes,
// matching the simulator's contention-model convention). Runtimes that
// pair an application process with a request server per node pass
// procs = 2*nodes; the upper half are then the server processes.
func (t *Trace) SetTopology(procs, nodes int) {
	if t == nil {
		return
	}
	t.procs, t.nodes = procs, nodes
}

// Procs returns the simulated process count (0 until SetTopology).
func (t *Trace) Procs() int {
	if t == nil {
		return 0
	}
	return t.procs
}

// Nodes returns the physical node count (0 until SetTopology).
func (t *Trace) Nodes() int {
	if t == nil {
		return 0
	}
	return t.nodes
}

// NodeOf maps a process id to its physical node.
func (t *Trace) NodeOf(proc int) int {
	if t == nil || t.nodes == 0 {
		return proc
	}
	return proc % t.nodes
}

// IsServer reports whether a process id is a request-server process
// (the upper half of a paired app+server topology).
func (t *Trace) IsServer(proc int) bool {
	return t != nil && t.procs == 2*t.nodes && proc >= t.nodes
}

// Span appends a duration event. Emission never advances virtual time.
func (t *Trace) Span(typ Type, proc int, start, dur int64, kind stats.Kind, page int32, arg int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		T: start, Dur: dur, Arg: arg,
		Proc: int32(proc), Page: page, Type: typ, Kind: kind,
	})
}

// Instant appends a zero-duration event.
func (t *Trace) Instant(typ Type, proc int, at int64, kind stats.Kind, page int32, arg int64) {
	t.Span(typ, proc, at, 0, kind, page, arg)
}

// Events returns the collected events in emission order (which is
// deterministic: the simulator runs one process at a time). The slice
// is owned by the trace; callers must not mutate it.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of collected events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}
