package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// WriteChrome renders the trace as Chrome trace_event JSON (the JSON
// Object Format with a traceEvents array), which opens directly in
// Perfetto or chrome://tracing. Processes in the timeline are physical
// nodes; threads are simulated processes ("app N" / "server N").
// Timestamps are microseconds with fixed three-decimal formatting, so
// the output bytes are a pure function of the event stream — the
// golden trace test pins byte identity across repeats and engine
// worker counts.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	if t != nil {
		for n := 0; n < t.nodes; n++ {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"node %d"}}`, n, n))
		}
		for p := 0; p < t.procs; p++ {
			role := "app"
			if t.IsServer(p) {
				role = "server"
			}
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s %d"}}`,
				t.NodeOf(p), p, role, t.NodeOf(p)))
		}
		for _, e := range t.events {
			emit(t.chromeLine(e))
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// usec formats virtual nanoseconds as fixed-point microseconds.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// chromeLine renders one event as a trace_event JSON object.
func (t *Trace) chromeLine(e Event) string {
	name, cat, args := chromeFields(e)
	head := fmt.Sprintf(`{"pid":%d,"tid":%d,"ts":%s`, t.NodeOf(int(e.Proc)), e.Proc, usec(e.T))
	var body string
	switch e.Type {
	case EvWait, EvQueue, EvFault, EvCollective:
		body = fmt.Sprintf(`,"ph":"X","dur":%s`, usec(e.Dur))
	default:
		body = `,"ph":"i","s":"t"`
	}
	return fmt.Sprintf(`%s%s,"name":"%s","cat":"%s","args":{%s}}`, head, body, name, cat, args)
}

// chromeFields maps an event to its display name, category and args.
func chromeFields(e Event) (name, cat, args string) {
	switch e.Type {
	case EvWait:
		return "wait:" + e.Kind.String(), "wait",
			fmt.Sprintf(`"kind":"%s","queued_ns":%d`, e.Kind, e.Arg)
	case EvQueue:
		return "queue:" + stats.QueueResource(e.Arg).String(), "queue",
			fmt.Sprintf(`"kind":"%s"`, e.Kind)
	case EvFault:
		return "fault", "protocol",
			fmt.Sprintf(`"page":%d,"peers":%d`, e.Page, e.Arg)
	case EvDiffReq:
		return "diff-req", "protocol",
			fmt.Sprintf(`"page":%d,"writer":%d`, e.Page, e.Arg)
	case EvDiffReply:
		return "diff-reply", "protocol", fmt.Sprintf(`"writer":%d`, e.Arg)
	case EvPageReq:
		return "page-req", "protocol",
			fmt.Sprintf(`"page":%d,"home":%d`, e.Page, e.Arg)
	case EvPageFetch:
		return "page-fetch", "protocol", fmt.Sprintf(`"page":%d`, e.Page)
	case EvBarrierArrive, EvBarrierDepart:
		return e.Type.String(), "sync",
			fmt.Sprintf(`"kind":"%s","seq":%d`, e.Kind, e.Arg)
	case EvLockRequest, EvLockGrant:
		return e.Type.String(), "sync", fmt.Sprintf(`"lock":%d`, e.Arg)
	case EvMigrationEpoch:
		return "dir-epoch", "home", fmt.Sprintf(`"updates":%d`, e.Arg)
	case EvHomeMove:
		return "home-move", "home",
			fmt.Sprintf(`"page":%d,"from":%d`, e.Page, e.Arg)
	case EvCollective:
		return "coll:" + CollName(e.Arg), "collective",
			fmt.Sprintf(`"kind":"%s"`, e.Kind)
	}
	return e.Type.String(), "event", fmt.Sprintf(`"arg":%d`, e.Arg)
}

// chromeEvent is the subset of trace_event fields ValidateChrome
// checks.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

// ValidateChrome parses a Chrome trace_event JSON document and checks
// its structure: a traceEvents array whose entries carry a name and
// phase, with pid/tid/ts on every non-metadata event and a
// non-negative dur on complete events. It returns the number of
// non-metadata events. cmd/sweeplint's -trace mode and the trace tests
// share this check.
func ValidateChrome(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("obs: malformed trace JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	events := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return 0, fmt.Errorf("obs: traceEvents[%d] lacks name or ph", i)
		}
		if e.Ph == "M" {
			continue
		}
		events++
		if e.Pid == nil || e.Tid == nil || e.Ts == nil {
			return 0, fmt.Errorf("obs: traceEvents[%d] (%s) lacks pid/tid/ts", i, e.Name)
		}
		if *e.Ts < 0 {
			return 0, fmt.Errorf("obs: traceEvents[%d] (%s) has negative ts", i, e.Name)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return 0, fmt.Errorf("obs: traceEvents[%d] (%s) lacks a non-negative dur", i, e.Name)
			}
		case "i":
		default:
			return 0, fmt.Errorf("obs: traceEvents[%d] (%s) has unexpected phase %q", i, e.Name, e.Ph)
		}
	}
	return events, nil
}
