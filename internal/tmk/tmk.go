package tmk

import (
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Tmk is the per-process handle to the DSM system: the equivalent of the
// TreadMarks API a program is linked against. One Tmk exists per
// application process; it must only be used from that process.
type Tmk struct {
	p   *sim.Proc
	nd  *node
	sys *System
}

// ID returns this process's id in [0, NProcs).
func (tm *Tmk) ID() int { return tm.nd.id }

// NProcs returns the number of DSM processes.
func (tm *Tmk) NProcs() int { return tm.sys.nprocs }

// Advance charges virtual compute time to this process.
func (tm *Tmk) Advance(d sim.Time) { tm.p.Advance(d) }

// Now returns this process's virtual clock.
func (tm *Tmk) Now() sim.Time { return tm.p.Now() }

// Proc exposes the simulator process, for runtimes layered on TreadMarks
// (the SPF fork-join runtime sends its own control messages).
func (tm *Tmk) Proc() *sim.Proc { return tm.p }

// System returns the owning system.
func (tm *Tmk) System() *System { return tm.sys }

// FaultCount returns the number of access faults taken by this node.
func (tm *Tmk) FaultCount() int64 { return tm.nd.prot.Counters().Faults }

// TwinCount returns the number of twins created by this node.
func (tm *Tmk) TwinCount() int64 { return tm.nd.prot.Counters().Twins }

// DiffCounts returns (created, applied) diff counts for this node.
func (tm *Tmk) DiffCounts() (made, applied int64) {
	c := tm.nd.prot.Counters()
	return c.DiffsMade, c.DiffsApplied
}

// Protocol returns the coherence protocol this system runs.
func (tm *Tmk) Protocol() proto.Name { return tm.sys.protocol }

// Profile is the overhead attribution of one application process — the
// decomposition the paper's §5/§6 analysis reasons with.
type Profile struct {
	Fault   sim.Time // page repair: faults, diff fetches, applies
	Barrier sim.Time // barrier/fork-join wait and processing
	Lock    sim.Time // lock acquisition wait
	Write   sim.Time // write detection: write faults and twinning
}

// Total returns the summed overhead.
func (p Profile) Total() sim.Time { return p.Fault + p.Barrier + p.Lock + p.Write }

// Profile returns this process's accumulated overhead attribution.
func (tm *Tmk) Profile() Profile {
	return Profile{
		Fault:   tm.nd.FaultTime,
		Barrier: tm.nd.BarrierTime,
		Lock:    tm.nd.LockTime,
		Write:   tm.nd.WriteTime,
	}
}

// BarrierSilent is a full barrier whose messages are recorded under the
// untracked (shutdown) category. The measurement harness uses it for
// timed-region boundaries so that Table 2/3 traffic totals contain only
// application traffic.
func (tm *Tmk) BarrierSilent() {
	tm.barrierReduce(nil, nil, stats.KindShutdown)
}

// shutdown quiesces the system and stops this node's request server.
func (tm *Tmk) shutdown() {
	tm.barrierReduce(nil, nil, stats.KindShutdown)
	tm.p.Send(tm.sys.serverOf(tm.nd.id), tagExit, nil, 0, stats.KindShutdown)
}

// serve is the request-server loop: the stand-in for TreadMarks' SIGIO
// handler. It services lock traffic and the coherence protocol's
// requests (diff fetches, home flushes, page fetches) while the node's
// application process computes.
func (nd *node) serve(p *sim.Proc) {
	c := nd.sys.costs
	for {
		m := p.Recv(sim.AnySrc, sim.AnyTag)
		switch {
		case m.Tag == tagExit:
			return
		case m.Tag >= tagLockReq && m.Tag < tagLockReq+(1<<16):
			p.Advance(c.HandlerWake)
			nd.handleLockReq(p, m.Payload.(lockReqMsg))
		case m.Tag >= tagLockForward && m.Tag < tagLockForward+(1<<16):
			p.Advance(c.HandlerWake)
			nd.handleLockForward(p, m.Payload.(lockReqMsg))
		default:
			if !nd.prot.HandleServer(p, m) {
				panic("tmk: server received unexpected message")
			}
		}
	}
}
