package tmk

import (
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// gcThreshold is the per-page diff-record count that triggers a squash,
// bounding diff storage like TreadMarks' garbage collection. The squash
// is only applied to pages this node is the sole writer of — merging
// records across an interference boundary could reorder causally related
// writes from different nodes.
const gcThreshold = 32

// writeTouch performs the write-access bookkeeping for page gp: twin the
// page on the first write of an interval (the mprotect write-trap
// equivalent) and register it for a write notice at the next release.
// Must be called with the page valid, from the application process.
// Concurrency note (applies to every protocol mutation in this package):
// Advance is a scheduler yield point, so the node's server process may run
// in the middle of any sequence that calls it. All protocol state must
// therefore be mutated *first* and the virtual CPU time charged *after*,
// keeping every critical section atomic between scheduling points.
func (nd *node) writeTouch(gp int32) {
	ps := &nd.pageMeta[gp]
	c := nd.sys.costs
	var cost sim.Time
	if !ps.hasTwin {
		nd.regions[ps.region].makeTwin(ps.local)
		nd.Twins++
		ps.hasTwin = true
		ps.twinWrite = nd.curInterval
		cost = c.WriteFault + c.TwinPage
	} else if ps.twinWrite < nd.curInterval {
		// New interval: the page was write-protected again at the last
		// release, so pay the re-protection fault. The twin keeps
		// accumulating (lazy diffing with diff domination).
		ps.twinWrite = nd.curInterval
		cost = c.WriteFault
	}
	if ps.lastSelf != nd.curInterval {
		ps.lastSelf = nd.curInterval
		nd.dirty = append(nd.dirty, gp)
	}
	if cost > 0 {
		nd.tm.p.Advance(cost)
	}
}

// diffRequest asks a writer for the diffs of a set of pages.
type diffRequest struct {
	pages []pageAsk
}

type pageAsk struct {
	page    int32
	fromSeq int32 // requester's appliedSeq[writer]: send newer records only
}

// diffResponse carries the records satisfying one request.
type diffResponse struct {
	recs []*diffRec
}

// extractPending encodes the pending diff for gp (if any), appending it
// to the page's record chain, and runs GC when the chain grows long. p is
// the process paying the CPU cost: the application process at faults, the
// server process when answering requests.
//
// Labeling: upto is capped at the last *released* interval — a record
// extracted mid-interval carries this node's partial current-interval
// writes (harmless for race-free programs: nobody may conflict with
// unreleased data), but it must not claim to cover the open interval, or
// readers would mark it applied and miss the writes made after
// extraction. order is the causal sort key: the vector-clock sum at the
// covering interval's release (strictly increasing along happens-before),
// estimated as if released now for mid-interval extractions.
func (nd *node) extractPending(gp int32, p *sim.Proc) {
	ps := &nd.pageMeta[gp]
	if !ps.hasTwin {
		return
	}
	rh := nd.regions[ps.region]
	keep := ps.twinWrite == nd.curInterval
	payload, bytes := rh.extract(ps.local, keep)
	ps.hasTwin = keep
	nd.DiffsMade++

	upto := ps.lastSelf
	var order int64
	if upto < nd.curInterval {
		order = nd.orders[upto-1]
	} else {
		upto = nd.curInterval - 1
		order = nd.orderEstimate()
	}
	ps.recSeq++
	rec := &diffRec{
		page: gp, seq: ps.recSeq, upto: upto, order: order,
		payload: payload, bytes: bytes,
	}
	nd.recs[gp] = append(nd.recs[gp], rec)
	gc := len(nd.recs[gp]) > gcThreshold && nd.soleWriter(ps)
	if gc {
		nd.gcPage(gp)
	}
	p.Advance(nd.sys.costs.DiffCreateCost(diffChangedBytes(bytes)))
	if gc {
		p.Advance(nd.sys.costs.DiffCreateCost(model.PageSize))
	}
}

// orderEstimate is the causal sort key an interval would get if released
// right now: the current vector-clock sum with this node's entry replaced
// by the open interval number.
func (nd *node) orderEstimate() int64 {
	var s int64
	for q, v := range nd.vc {
		if q == nd.id {
			s += int64(nd.curInterval)
		} else {
			s += int64(v)
		}
	}
	return s
}

// soleWriter reports whether no other node has ever write-noticed ps.
func (nd *node) soleWriter(ps *pageState) bool {
	for q := range ps.notice {
		if q != nd.id && ps.notice[q] != 0 {
			return false
		}
	}
	return true
}

// gcPage squashes a sole-writer page's diff records into one dominating
// record carrying the latest sequence number. Pure mutation: the caller
// charges the CPU cost afterwards.
func (nd *node) gcPage(gp int32) {
	recs := nd.recs[gp]
	payloads := make([]any, len(recs))
	var maxUpto int32
	var maxOrder int64
	for i, r := range recs {
		payloads[i] = r.payload
		if r.upto > maxUpto {
			maxUpto = r.upto
		}
		if r.order > maxOrder {
			maxOrder = r.order
		}
	}
	ps := &nd.pageMeta[gp]
	rh := nd.regions[ps.region]
	payload, bytes := rh.mergeRecs(payloads)
	ps.recSeq++
	nd.recs[gp] = []*diffRec{{
		page: gp, seq: ps.recSeq, upto: maxUpto, order: maxOrder,
		payload: payload, bytes: bytes,
	}}
}

// recsSinceSeq returns the records for page gp with seq > fromSeq, in
// chain order.
func (nd *node) recsSinceSeq(gp, fromSeq int32) []*diffRec {
	var out []*diffRec
	for _, r := range nd.recs[gp] {
		if r.seq > fromSeq {
			out = append(out, r)
		}
	}
	return out
}

// fault repairs an invalid page on the application process: extract any
// pending local diff first (the multiple-writer protocol preserves this
// node's concurrent writes and keeps the twin honest), then fetch the
// missing diffs from every writer with pending notices — one request per
// writer, one page per request, as in base TreadMarks.
func (nd *node) fault(gp int32) {
	p := nd.tm.p
	c := nd.sys.costs
	p.Advance(c.ReadFault)
	nd.Faults++
	nd.extractPending(gp, p)

	ps := &nd.pageMeta[gp]
	var writers []int
	for q := 0; q < nd.sys.nprocs; q++ {
		if q == nd.id || ps.notice[q] <= ps.applied[q] {
			continue
		}
		writers = append(writers, q)
		req := diffRequest{pages: []pageAsk{{page: gp, fromSeq: ps.appliedSeq[q]}}}
		p.Send(nd.sys.serverOf(q), tagDiffReq, req, diffReqHdr+diffReqPerPage, stats.KindDiffReq)
	}
	nd.collectAndApply(writers, []int32{gp})
}

// fetchAggregated repairs all invalid pages in the inclusive global page
// range [firstGp, lastGp] with a single request per remote writer — the
// data-aggregation hand optimization of §5 (the enhanced interface of
// Dwarkadas et al. [7]). No communication happens if nothing is pending.
func (nd *node) fetchAggregated(firstGp, lastGp int) {
	gps := make([]int32, 0, lastGp-firstGp+1)
	for gp := firstGp; gp <= lastGp; gp++ {
		gps = append(gps, int32(gp))
	}
	nd.fetchAggregatedList(gps)
}

// fetchAggregatedList is fetchAggregated over an arbitrary page set
// (e.g. the strided section list of a transpose).
func (nd *node) fetchAggregatedList(gps []int32) {
	p := nd.tm.p
	c := nd.sys.costs
	perWriter := make(map[int][]pageAsk)
	var pages []int32
	for _, gp := range gps {
		ps := &nd.pageMeta[gp]
		if !ps.invalid() {
			continue
		}
		nd.extractPending(gp, p)
		pages = append(pages, gp)
		for q := 0; q < nd.sys.nprocs; q++ {
			if q == nd.id || ps.notice[q] <= ps.applied[q] {
				continue
			}
			perWriter[q] = append(perWriter[q], pageAsk{page: gp, fromSeq: ps.appliedSeq[q]})
		}
	}
	if len(perWriter) == 0 {
		return
	}
	p.Advance(c.ReadFault) // one access miss covers the whole range
	nd.Faults++
	writers := make([]int, 0, len(perWriter))
	for q := range perWriter {
		writers = append(writers, q)
	}
	sort.Ints(writers)
	for _, q := range writers {
		req := diffRequest{pages: perWriter[q]}
		bytes := diffReqHdr + len(req.pages)*diffReqPerPage
		p.Send(nd.sys.serverOf(q), tagDiffReq, req, bytes, stats.KindDiffReq)
	}
	nd.collectAndApply(writers, pages)
}

// collectAndApply receives one diffResponse per writer and applies all
// received records in causal order: ascending release-order label, which
// is strictly increasing along happens-before, with writer id breaking
// ties among concurrent records (whose byte ranges are disjoint in
// race-free programs). Finally the repaired pages' notice tables are
// settled: everything noticed from the queried writers is now applied.
func (nd *node) collectAndApply(writers []int, pages []int32) {
	p := nd.tm.p
	c := nd.sys.costs
	type recFrom struct {
		writer int
		rec    *diffRec
	}
	var all []recFrom
	for _, q := range writers {
		m := p.Recv(nd.sys.serverOf(q), tagDiffResp)
		for _, r := range m.Payload.(diffResponse).recs {
			all = append(all, recFrom{writer: q, rec: r})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].rec.order != all[j].rec.order {
			return all[i].rec.order < all[j].rec.order
		}
		return all[i].writer < all[j].writer
	})
	for _, rf := range all {
		ps := &nd.pageMeta[rf.rec.page]
		nd.regions[ps.region].apply(ps.local, rf.rec.payload)
		nd.DiffsApplied++
		if rf.rec.upto > ps.applied[rf.writer] {
			ps.applied[rf.writer] = rf.rec.upto
		}
		if rf.rec.seq > ps.appliedSeq[rf.writer] {
			ps.appliedSeq[rf.writer] = rf.rec.seq
		}
		p.Advance(c.DiffApplyCost(diffChangedBytes(rf.rec.bytes)))
	}
	// The writers have, by construction, answered with their complete
	// chains: every pending notice from them on the asked pages is
	// satisfied even when the matching diff was empty.
	for _, gp := range pages {
		ps := &nd.pageMeta[gp]
		for _, q := range writers {
			if ps.notice[q] > ps.applied[q] {
				ps.applied[q] = ps.notice[q]
			}
		}
	}
}

// handleDiffReq services a diff request on the server process, returning
// the response and its modeled wire size.
func (nd *node) handleDiffReq(p *sim.Proc, req diffRequest) (diffResponse, int) {
	var resp diffResponse
	bytes := 8
	for _, ask := range req.pages {
		nd.extractPending(ask.page, p)
		for _, r := range nd.recsSinceSeq(ask.page, ask.fromSeq) {
			resp.recs = append(resp.recs, r)
			bytes += r.bytes
		}
	}
	return resp, bytes
}
