package tmk

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/proto"
)

// Elem is the set of element types shared arrays may hold. All are
// comparable, which is what twin/diff comparison needs.
type Elem interface {
	~float32 | ~float64 | ~int32 | ~int64 | ~complex64 | ~complex128
}

func sizeOfElem[T Elem]() int {
	var z T
	switch any(z).(type) {
	case float32, int32:
		return 4
	case float64, int64, complex64:
		return 8
	case complex128:
		return 16
	}
	panic("tmk: unsupported element type")
}

// seg is a run of consecutive changed elements within one page.
type seg[T Elem] struct {
	off  int32
	vals []T
}

// Region is a shared array of T, padded to page boundaries as the SPF
// compiler pads shared arrays (§2.1).
type Region[T Elem] struct {
	nd       *node
	name     string
	n        int
	elemSize int
	epp      int // elements per page
	basePage int
	npages   int
	data     []T
	twins    [][]T // per local page; nil = no twin
}

// regionHandle is the untyped view the node keeps for protocol work.
type regionHandle interface {
	// extract encodes the diff of local page lp against its twin,
	// refreshes or drops the twin, and returns the typed payload with its
	// modeled wire size. keepTwin keeps accumulating (page still dirty).
	extract(lp int32, keepTwin bool) (payload any, bytes int)
	// apply writes a diff payload into local page lp.
	apply(lp int32, payload any)
	// makeTwin snapshots local page lp.
	makeTwin(lp int32)
	// snapshot returns the raw values of elements [lo,hi) with wire size.
	snapshot(lo, hi int) (payload any, bytes int)
	// install overwrites elements [lo,hi) from a snapshot payload.
	install(lo, hi int, payload any)
	// snapshotPage returns the full contents of local page lp.
	snapshotPage(lp int32) (payload any, bytes int)
	// installPage overwrites local page lp from a snapshot payload.
	installPage(lp int32, payload any)
	// mergeRecs combines several diff payloads into one (GC squash).
	mergeRecs(payloads []any) (payload any, bytes int)
}

// Alloc creates a shared region of n elements of type T, identically on
// every process. It must be called in the same order with the same
// arguments on all processes.
func Alloc[T Elem](tm *Tmk, name string, n int) *Region[T] {
	nd := tm.nd
	es := sizeOfElem[T]()
	epp := model.PageSize / es
	npages := (n + epp - 1) / epp
	r := &Region[T]{
		nd:       nd,
		name:     name,
		n:        n,
		elemSize: es,
		epp:      epp,
		npages:   npages,
		data:     make([]T, npages*epp),
		twins:    make([][]T, npages),
	}
	rid := len(nd.regions)
	nd.regions = append(nd.regions, r)
	r.basePage = nd.addPages(rid, npages)
	nd.allocSeq++
	return r
}

// Len returns the logical element count.
func (r *Region[T]) Len() int { return r.n }

// PageOf returns the global page id covering element i.
func (r *Region[T]) PageOf(i int) int { return r.basePage + i/r.epp }

// Pages returns the number of pages the region occupies.
func (r *Region[T]) Pages() int { return r.npages }

// ElemsPerPage returns the page capacity in elements.
func (r *Region[T]) ElemsPerPage() int { return r.epp }

// Read validates the pages covering [lo,hi) for reading and returns the
// backing slice. Index the result with the same [lo,hi) element indices.
func (r *Region[T]) Read(lo, hi int) []T {
	r.validate(lo, hi, false, false)
	return r.data
}

// Write validates the pages covering [lo,hi) for writing (twinning them
// for the multiple-writer protocol) and returns the backing slice.
func (r *Region[T]) Write(lo, hi int) []T {
	r.validate(lo, hi, true, false)
	return r.data
}

// ReadAggregated is Read through the enhanced interface (§5): all pages
// in the range are fetched with one request per remote writer instead of
// one request per page per writer.
func (r *Region[T]) ReadAggregated(lo, hi int) []T {
	r.validate(lo, hi, false, true)
	return r.data
}

// WriteAggregated is Write with aggregated fetching.
func (r *Region[T]) WriteAggregated(lo, hi int) []T {
	r.validate(lo, hi, true, true)
	return r.data
}

// ReadAggregatedRanges validates a set of element ranges for reading
// with a single request per remote peer across all of them — the
// enhanced interface's strided-region aggregation, used by the §5.4
// transpose optimization. Each range is [lo, hi).
func (r *Region[T]) ReadAggregatedRanges(ranges [][2]int) []T {
	start := r.nd.tm.p.Now()
	defer func() { r.nd.FaultTime += r.nd.tm.p.Now() - start }()
	var gps []int32
	last := int32(-1)
	for _, rg := range ranges {
		if rg[1] <= rg[0] {
			continue
		}
		first := r.basePage + rg[0]/r.epp
		end := r.basePage + (rg[1]-1)/r.epp
		for gp := first; gp <= end; gp++ {
			if int32(gp) != last {
				gps = append(gps, int32(gp))
				last = int32(gp)
			}
		}
	}
	r.nd.prot.FetchAggregated(gps)
	return r.data
}

// Data returns the raw backing slice without any validation. Only for
// sequential (1-process) use and tests.
func (r *Region[T]) Data() []T { return r.data }

func (r *Region[T]) validate(lo, hi int, write, aggregated bool) {
	if lo < 0 || hi > r.npages*r.epp || lo > hi {
		panic(fmt.Sprintf("tmk: %s: bad range [%d,%d)", r.name, lo, hi))
	}
	if hi == lo {
		return
	}
	first := lo / r.epp
	last := (hi - 1) / r.epp
	start := r.nd.tm.p.Now()
	if aggregated {
		gps := make([]int32, 0, last-first+1)
		for pg := first; pg <= last; pg++ {
			gps = append(gps, int32(r.basePage+pg))
		}
		r.nd.prot.FetchAggregated(gps)
	}
	for pg := first; pg <= last; pg++ {
		gp := int32(r.basePage + pg)
		if r.nd.prot.Invalid(gp) {
			r.nd.prot.Fault(gp)
		}
	}
	r.nd.FaultTime += r.nd.tm.p.Now() - start
	if write {
		start = r.nd.tm.p.Now()
		for pg := first; pg <= last; pg++ {
			r.nd.prot.WriteTouch(int32(r.basePage + pg))
		}
		r.nd.WriteTime += r.nd.tm.p.Now() - start
	}
}

// --- regionHandle implementation ---

func (r *Region[T]) makeTwin(lp int32) {
	tw := r.twins[lp]
	if tw == nil {
		tw = make([]T, r.epp)
		r.twins[lp] = tw
	}
	copy(tw, r.data[int(lp)*r.epp:(int(lp)+1)*r.epp])
}

func (r *Region[T]) extract(lp int32, keepTwin bool) (any, int) {
	tw := r.twins[lp]
	if tw == nil {
		panic("tmk: extract without twin")
	}
	page := r.data[int(lp)*r.epp : (int(lp)+1)*r.epp]
	var segs []seg[T]
	i := 0
	for i < len(page) {
		if page[i] == tw[i] {
			i++
			continue
		}
		j := i
		for j < len(page) && page[j] != tw[j] {
			j++
		}
		vals := make([]T, j-i)
		copy(vals, page[i:j])
		segs = append(segs, seg[T]{off: int32(i), vals: vals})
		i = j
	}
	if keepTwin {
		copy(tw, page) // refresh: subsequent writes diff against this state
	} else {
		r.twins[lp] = nil
	}
	bytes := proto.DiffRecHdr
	for _, s := range segs {
		bytes += proto.DiffSegHdr + len(s.vals)*r.elemSize
	}
	return segs, bytes
}

func (r *Region[T]) apply(lp int32, payload any) {
	segs := payload.([]seg[T])
	base := int(lp) * r.epp
	for _, s := range segs {
		copy(r.data[base+int(s.off):base+int(s.off)+len(s.vals)], s.vals)
	}
	// An incoming diff must land in the live twin too (as in TreadMarks),
	// keeping the invariant that page-vs-twin shows only *this* node's
	// un-extracted writes. Otherwise a later local write that restores a
	// byte to the twin's now-stale value silently vanishes from the next
	// diff, and remote bytes get re-shipped under this node's interval
	// labels.
	if tw := r.twins[lp]; tw != nil {
		for _, s := range segs {
			copy(tw[int(s.off):int(s.off)+len(s.vals)], s.vals)
		}
	}
}

func (r *Region[T]) snapshot(lo, hi int) (any, int) {
	vals := make([]T, hi-lo)
	copy(vals, r.data[lo:hi])
	return vals, len(vals) * r.elemSize
}

func (r *Region[T]) install(lo, hi int, payload any) {
	copy(r.data[lo:hi], payload.([]T))
}

func (r *Region[T]) snapshotPage(lp int32) (any, int) {
	return r.snapshot(int(lp)*r.epp, (int(lp)+1)*r.epp)
}

func (r *Region[T]) installPage(lp int32, payload any) {
	r.install(int(lp)*r.epp, (int(lp)+1)*r.epp, payload)
}

func (r *Region[T]) mergeRecs(payloads []any) (any, int) {
	// Replay segments in order into a dense page image with a presence
	// mask, then re-encode. Correct because diffs are value writes.
	page := make([]T, r.epp)
	present := make([]bool, r.epp)
	for _, p := range payloads {
		for _, s := range p.([]seg[T]) {
			for k, v := range s.vals {
				page[int(s.off)+k] = v
				present[int(s.off)+k] = true
			}
		}
	}
	var segs []seg[T]
	i := 0
	for i < r.epp {
		if !present[i] {
			i++
			continue
		}
		j := i
		for j < r.epp && present[j] {
			j++
		}
		vals := make([]T, j-i)
		copy(vals, page[i:j])
		segs = append(segs, seg[T]{off: int32(i), vals: vals})
		i = j
	}
	bytes := proto.DiffRecHdr
	for _, s := range segs {
		bytes += proto.DiffSegHdr + len(s.vals)*r.elemSize
	}
	return segs, bytes
}

var _ regionHandle = (*Region[float32])(nil)
