package tmk

import (
	"repro/internal/stats"
)

// Enhanced compiler-runtime interface (paper §5 hand optimizations and
// §8, after Dwarkadas et al. [7]): data aggregation (ReadAggregated /
// WriteAggregated on regions), broadcast, pushing data with barriers
// instead of the default request-response, and barrier-merged reductions
// (BarrierReduceSum in barrier.go).

// pushDirective asks the runtime to push this node's diffs for a page
// range to a consumer at every barrier, replacing the consumer's
// request-response page faults.
type pushDirective struct {
	dest        int
	first, last int32   // inclusive global page range
	sentSeq     []int32 // per page: highest record seq already pushed
}

// pushMsg carries pushed diffs.
type pushMsg struct {
	proc int
	recs []*diffRec
}

// bcastMsg carries a broadcast snapshot of a region range.
type bcastMsg struct {
	payload any
	upto    int32 // the root's last released interval covered by the data
}

// PushOnBarrier registers a persistent push: at every subsequent barrier
// this node sends its new diffs for region pages covering elements
// [lo,hi) directly to dest. The consumer must register a matching
// ExpectPushOnBarrier. This is the "push instead of pull" optimization.
func PushOnBarrier[T Elem](tm *Tmk, r *Region[T], lo, hi, dest int) {
	if dest == tm.nd.id {
		panic("tmk: push to self")
	}
	first := int32(r.PageOf(lo))
	last := int32(r.PageOf(hi - 1))
	tm.nd.pushes = append(tm.nd.pushes, pushDirective{
		dest:    dest,
		first:   first,
		last:    last,
		sentSeq: make([]int32, last-first+1),
	})
}

// ExpectPushOnBarrier registers the consumer side of a push pairing: at
// every subsequent barrier this node receives and applies one push
// message from src.
func (tm *Tmk) ExpectPushOnBarrier(src int) {
	if src == tm.nd.id {
		panic("tmk: expect push from self")
	}
	tm.nd.expects = append(tm.nd.expects, src)
}

// firePushes runs at the end of every barrier: send all registered
// pushes, then consume all expected ones.
func (nd *node) firePushes(seq int, kind stats.Kind) {
	if len(nd.pushes) == 0 && len(nd.expects) == 0 {
		return
	}
	p := nd.tm.p
	c := nd.sys.costs
	for i := range nd.pushes {
		d := &nd.pushes[i]
		var recs []*diffRec
		bytes := pushHdr
		for gp := d.first; gp <= d.last; gp++ {
			nd.extractPending(gp, p)
			for _, r := range nd.recsSinceSeq(gp, d.sentSeq[gp-d.first]) {
				recs = append(recs, r)
				bytes += r.bytes
				if r.seq > d.sentSeq[gp-d.first] {
					d.sentSeq[gp-d.first] = r.seq
				}
			}
		}
		k := stats.KindDiff
		if kind == stats.KindShutdown {
			k = stats.KindShutdown
		}
		p.Send(d.dest, tagPush+seq, pushMsg{proc: nd.id, recs: recs}, bytes, k)
	}
	for _, src := range nd.expects {
		m := p.Recv(src, tagPush+seq)
		pm := m.Payload.(pushMsg)
		for _, r := range pm.recs {
			ps := &nd.pageMeta[r.page]
			nd.regions[ps.region].apply(ps.local, r.payload)
			nd.DiffsApplied++
			if r.upto > ps.applied[pm.proc] {
				ps.applied[pm.proc] = r.upto
			}
			if r.seq > ps.appliedSeq[pm.proc] {
				ps.appliedSeq[pm.proc] = r.seq
			}
			p.Advance(c.DiffApplyCost(diffChangedBytes(r.bytes)))
		}
	}
}

// BroadcastRegion implements the merged synchronization-and-data
// broadcast used by the optimized MGS (§5.3: "we hand-modified the
// program to merge the data and the synchronization, and modified
// TreadMarks to use a broadcast"). The root releases its interval and
// ships the raw contents of region elements [lo,hi) to every process;
// receivers install the data and mark the fully covered pages as applied,
// so the subsequent write notices for them cause no page faults.
// Collective: every process must call it with the same arguments.
func BroadcastRegion[T Elem](tm *Tmk, r *Region[T], lo, hi, root int) {
	nd := tm.nd
	p := tm.p
	n := nd.sys.nprocs
	c := nd.sys.costs
	seq := nd.bcastSeq % barrierSeqSpace
	nd.bcastSeq++
	if nd.id == root {
		nd.releaseInterval()
		payload, bytes := r.snapshot(lo, hi)
		msg := bcastMsg{payload: payload, upto: nd.vc[nd.id]}
		for q := 0; q < n; q++ {
			if q != root {
				p.Send(q, tagBcast+seq, msg, pushHdr+bytes, stats.KindPage)
			}
		}
		return
	}
	m := p.Recv(root, tagBcast+seq)
	bm := m.Payload.(bcastMsg)
	r.install(lo, hi, bm.payload)
	// Mark fully covered pages as applied up to the root's release.
	firstFull := (lo + r.epp - 1) / r.epp
	lastFull := hi/r.epp - 1
	for pg := firstFull; pg <= lastFull; pg++ {
		ps := &nd.pageMeta[r.basePage+pg]
		if bm.upto > ps.applied[root] {
			ps.applied[root] = bm.upto
		}
	}
	p.Advance(c.DiffApplyCost((hi - lo) * r.elemSize))
}
