package tmk

import (
	"repro/internal/proto"
	"repro/internal/stats"
)

// Enhanced compiler-runtime interface (paper §5 hand optimizations and
// §8, after Dwarkadas et al. [7]): data aggregation (ReadAggregated /
// WriteAggregated on regions), broadcast, pushing data with barriers
// instead of the default request-response, and barrier-merged reductions
// (BarrierReduceSum in barrier.go).

// bcastMsg carries a broadcast snapshot of a region range.
type bcastMsg struct {
	payload any
	upto    int32 // the root's last released interval covered by the data
}

// PushOnBarrier registers a persistent push: at every subsequent barrier
// this node sends its new modifications for region pages covering
// elements [lo,hi) directly to dest. The consumer must register a
// matching ExpectPushOnBarrier. This is the "push instead of pull"
// optimization. Whether data actually travels is up to the coherence
// protocol: the homeless protocol ships diff records, while the
// home-based protocol already pushes diffs to the home at every release
// and ignores the pairing (consumers fetch from the home on demand).
func PushOnBarrier[T Elem](tm *Tmk, r *Region[T], lo, hi, dest int) {
	if dest == tm.nd.id {
		panic("tmk: push to self")
	}
	first := int32(r.PageOf(lo))
	last := int32(r.PageOf(hi - 1))
	tm.nd.pushes = append(tm.nd.pushes, &proto.PushDirective{
		Dest:    dest,
		First:   first,
		Last:    last,
		SentSeq: make([]int32, last-first+1),
	})
}

// ExpectPushOnBarrier registers the consumer side of a push pairing: at
// every subsequent barrier this node receives and applies one push
// message from src (under protocols that implement pushing).
func (tm *Tmk) ExpectPushOnBarrier(src int) {
	if src == tm.nd.id {
		panic("tmk: expect push from self")
	}
	tm.nd.expects = append(tm.nd.expects, src)
}

// firePushes runs at the end of every barrier: the protocol services the
// registered pushes, then consumes the expected ones.
func (nd *node) firePushes(seq int, kind stats.Kind) {
	if len(nd.pushes) == 0 && len(nd.expects) == 0 {
		return
	}
	nd.prot.FirePushes(nd.tm.p, seq, kind, nd.pushes, nd.expects)
}

// BroadcastRegion implements the merged synchronization-and-data
// broadcast used by the optimized MGS (§5.3: "we hand-modified the
// program to merge the data and the synchronization, and modified
// TreadMarks to use a broadcast"). The root releases its interval and
// ships the raw contents of region elements [lo,hi) to every process;
// receivers install the data and mark the fully covered pages as applied,
// so the subsequent write notices for them cause no page faults.
// Collective: every process must call it with the same arguments.
func BroadcastRegion[T Elem](tm *Tmk, r *Region[T], lo, hi, root int) {
	nd := tm.nd
	p := tm.p
	n := nd.sys.nprocs
	c := nd.sys.costs
	seq := nd.bcastSeq % barrierSeqSpace
	nd.bcastSeq++
	if nd.id == root {
		nd.prot.Release(stats.KindPage)
		payload, bytes := r.snapshot(lo, hi)
		msg := bcastMsg{payload: payload, upto: nd.prot.VC()[nd.id]}
		for q := 0; q < n; q++ {
			if q != root {
				p.Send(q, tagBcast+seq, msg, bcastHdr+bytes, stats.KindPage)
			}
		}
		return
	}
	m := p.Recv(root, tagBcast+seq)
	bm := m.Payload.(bcastMsg)
	r.install(lo, hi, bm.payload)
	// Mark fully covered pages as applied up to the root's release.
	firstFull := (lo + r.epp - 1) / r.epp
	lastFull := hi/r.epp - 1
	for pg := firstFull; pg <= lastFull; pg++ {
		nd.prot.MarkApplied(int32(r.basePage+pg), root, bm.upto)
	}
	p.Advance(c.DiffApplyCost((hi - lo) * r.elemSize))
}
