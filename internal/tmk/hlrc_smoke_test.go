package tmk

import (
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
)

func TestHLRCSmoke(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		sys := NewSystem(n, model.SP2(), WithProtocol(proto.HomeLRC))
		err := sys.Run(func(tm *Tmk) {
			r := Alloc[float32](tm, "a", 4096)
			chunk := 4096 / tm.NProcs()
			lo := tm.ID() * chunk
			for k := 0; k < 4; k++ {
				w := r.Write(lo, lo+chunk)
				for i := lo; i < lo+chunk; i++ {
					w[i] = float32(k*10 + tm.ID())
				}
				tm.Barrier()
				g := r.Read(0, 4096)
				for q := 0; q < tm.NProcs(); q++ {
					if g[q*chunk] != float32(k*10+q) {
						t.Errorf("n=%d k=%d: a[%d]=%v want %v", n, k, q*chunk, g[q*chunk], float32(k*10+q))
						return
					}
				}
				tm.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		t.Logf("n=%d msgs=%d kb=%d", n, sys.Stats().TotalMsgs(), sys.Stats().TotalKB())
	}
}
