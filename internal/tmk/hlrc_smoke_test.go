// The home-based LRC smoke tests live in an external test package so
// they can drive the full application suite through internal/harness
// (which imports the apps, which import tmk).
package tmk_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/tmk"
)

// TestHLRCSmoke exercises the home-based protocol directly on the raw
// DSM interface: interleaved writer blocks with cross-node reads.
func TestHLRCSmoke(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		sys := tmk.NewSystem(n, model.SP2(), tmk.WithProtocol(proto.HomeLRC))
		err := sys.Run(func(tm *tmk.Tmk) {
			r := tmk.Alloc[float32](tm, "a", 4096)
			chunk := 4096 / tm.NProcs()
			lo := tm.ID() * chunk
			for k := 0; k < 4; k++ {
				w := r.Write(lo, lo+chunk)
				for i := lo; i < lo+chunk; i++ {
					w[i] = float32(k*10 + tm.ID())
				}
				tm.Barrier()
				g := r.Read(0, 4096)
				for q := 0; q < tm.NProcs(); q++ {
					if g[q*chunk] != float32(k*10+q) {
						t.Errorf("n=%d k=%d: a[%d]=%v want %v", n, k, q*chunk, g[q*chunk], float32(k*10+q))
						return
					}
				}
				tm.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		t.Logf("n=%d msgs=%d kb=%d", n, sys.Stats().TotalMsgs(), sys.Stats().TotalKB())
	}
}

// TestHLRCSmokeAllApps runs every DSM version of every application at
// 2 processors under the home-based protocol, comparing each checksum
// against the homeless-LRC run of the same version. It runs under
// -short (small scale, 2 procs), so every hlrc protocol path — eager
// flushes, whole-page fetches, pushes, broadcasts, the optimized and
// legacy-interface variants — gets smoke coverage in the fast suite,
// not just the one representative version the protocols experiment
// sweeps.
func TestHLRCSmokeAllApps(t *testing.T) {
	const procs = 2
	for _, a := range harness.AllApps() {
		for _, v := range harness.DSMVersions(a) {
			run := func(p proto.Name) core.Result {
				t.Helper()
				r := harness.NewRunner(procs, harness.SmallScale)
				r.Protocol = p
				res, err := r.Run(a, v)
				if err != nil {
					t.Fatalf("%s/%s under %s: %v", a.Name(), v, p, err)
				}
				return res
			}
			hlrc := run(proto.HomeLRC)
			lrc := run(proto.HomelessLRC)
			if hlrc.Checksum != lrc.Checksum {
				t.Errorf("%s/%s: hlrc checksum %g != lrc checksum %g",
					a.Name(), v, hlrc.Checksum, lrc.Checksum)
			}
			if hlrc.Stats.TotalMsgs() == 0 && lrc.Stats.TotalMsgs() != 0 {
				t.Errorf("%s/%s: hlrc sent no messages but lrc sent %d",
					a.Name(), v, lrc.Stats.TotalMsgs())
			}
		}
	}
}
