package tmk

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/stats"
)

func newTestSystem(n int) *System {
	return NewSystem(n, model.SP2())
}

func TestSingleProcWriteRead(t *testing.T) {
	sys := newTestSystem(1)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 2000)
		w := r.Write(0, 2000)
		for i := 0; i < 2000; i++ {
			w[i] = float32(i)
		}
		tm.Barrier()
		g := r.Read(0, 2000)
		for i := 0; i < 2000; i++ {
			if g[i] != float32(i) {
				t.Fatalf("a[%d] = %v", i, g[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().TotalMsgs() != 0 {
		t.Errorf("single proc sent %d messages", sys.Stats().TotalMsgs())
	}
}

func TestWriteVisibleAfterBarrier(t *testing.T) {
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		if tm.ID() == 0 {
			w := r.Write(0, 1024)
			for i := range w[:1024] {
				w[i] = 42
			}
		}
		tm.Barrier()
		if tm.ID() == 1 {
			g := r.Read(0, 1024)
			for i := 0; i < 1024; i++ {
				if g[i] != 42 {
					t.Errorf("a[%d] = %v, want 42", i, g[i])
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	// 1 barrier * 2(n-1) + one page fault (diff req + diff resp).
	if got := s.MsgsOf(stats.KindBarrier); got != 2 {
		t.Errorf("barrier msgs = %d, want 2", got)
	}
	if got := s.MsgsOf(stats.KindDiffReq); got != 1 {
		t.Errorf("diff requests = %d, want 1", got)
	}
	if got := s.MsgsOf(stats.KindDiff); got != 1 {
		t.Errorf("diff replies = %d, want 1", got)
	}
}

func TestBarrierMessageFormula(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		sys := newTestSystem(n)
		const iters = 5
		if err := sys.Run(func(tm *Tmk) {
			for i := 0; i < iters; i++ {
				tm.Barrier()
			}
		}); err != nil {
			t.Fatal(err)
		}
		want := int64(iters * 2 * (n - 1))
		if got := sys.Stats().MsgsOf(stats.KindBarrier); got != want {
			t.Errorf("n=%d: barrier msgs = %d, want %d", n, got, want)
		}
	}
}

// TestMultipleWriterFalseSharing: two processes write disjoint halves of
// the same page between barriers; both must end with the full merged
// page. This is the core of the multiple-writer protocol.
func TestMultipleWriterFalseSharing(t *testing.T) {
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024) // exactly one page
		half := 512
		lo := tm.ID() * half
		w := r.Write(lo, lo+half)
		for i := lo; i < lo+half; i++ {
			w[i] = float32(100*tm.ID() + 1)
		}
		tm.Barrier()
		g := r.Read(0, 1024)
		for i := 0; i < 1024; i++ {
			want := float32(1)
			if i >= half {
				want = 101
			}
			if g[i] != want {
				t.Errorf("proc %d: a[%d] = %v, want %v", tm.ID(), i, g[i], want)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDiffOnlyChangedBytes: rewriting identical values must yield an
// empty diff — the effect behind Jacobi's tiny data totals in Table 2.
func TestDiffOnlyChangedBytes(t *testing.T) {
	sys := newTestSystem(2)
	var diffBytes int64
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		if tm.ID() == 0 {
			w := r.Write(0, 1024)
			for i := range w[:1024] {
				w[i] = 7
			}
		}
		tm.Barrier()
		r.Read(0, 1024)
		tm.Barrier()
		if tm.ID() == 0 {
			w := r.Write(0, 1024)
			for i := range w[:1024] {
				w[i] = 7 // identical values: no changed bytes
			}
			w[3] = 8 // except one word
		}
		tm.Barrier()
		if tm.ID() == 1 {
			g := r.Read(0, 1024)
			if g[3] != 8 || g[4] != 7 {
				t.Errorf("got a[3]=%v a[4]=%v", g[3], g[4])
			}
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	diffBytes = sys.Stats().BytesOf(stats.KindDiff)
	// First fetch carries the 4 KB initialization diff; the second fetch
	// must carry only ~one element. Allow generous headroom for headers.
	if diffBytes > 4096+4+3*64 {
		t.Errorf("diff bytes = %d, want ~4KB + one element", diffBytes)
	}
}

// TestDiffAccumulation: a page written across many intervals with no
// reader must be fetchable with a single diff message (lazy diffing with
// domination) — the effect that keeps MGS traffic linear.
func TestDiffAccumulation(t *testing.T) {
	sys := newTestSystem(2)
	const rounds = 10
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		for k := 0; k < rounds; k++ {
			if tm.ID() == 0 {
				w := r.Write(0, 1024)
				for i := range w[:1024] {
					w[i] = float32(k + 1)
				}
			}
			tm.Barrier()
		}
		if tm.ID() == 1 {
			g := r.Read(0, 1024)
			if g[0] != rounds {
				t.Errorf("a[0] = %v, want %d", g[0], rounds)
			}
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	if got := s.MsgsOf(stats.KindDiffReq); got != 1 {
		t.Errorf("diff requests = %d, want 1 (domination)", got)
	}
	// And the single response must carry roughly one page, not `rounds`.
	if got := s.BytesOf(stats.KindDiff); got > 4096+256 {
		t.Errorf("diff bytes = %d, want about one page", got)
	}
}

func TestLockMutualExclusionAndConsistency(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		counter := Alloc[int64](tm, "counter", 8)
		const rounds = 5
		for k := 0; k < rounds; k++ {
			tm.AcquireLock(3)
			w := counter.Write(0, 1)
			w[0]++
			tm.ReleaseLock(3)
		}
		tm.Barrier()
		g := counter.Read(0, 1)
		if g[0] != 4*rounds {
			t.Errorf("proc %d: counter = %d, want %d", tm.ID(), g[0], 4*rounds)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockReacquireIsFree(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		if tm.ID() == 1 { // lock 1 is managed by node 1: zero-message path
			for k := 0; k < 10; k++ {
				tm.AcquireLock(1)
				tm.ReleaseLock(1)
			}
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().MsgsOf(stats.KindLock); got != 0 {
		t.Errorf("lock msgs = %d, want 0 for manager reacquire", got)
	}
}

func TestLockRemoteAcquireMessageCount(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		if tm.ID() == 2 {
			// Lock 1's manager is node 1, token starts there:
			// request to manager + grant = 2 messages.
			tm.AcquireLock(1)
			tm.ReleaseLock(1)
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().MsgsOf(stats.KindLock); got != 2 {
		t.Errorf("lock msgs = %d, want 2 (request + grant)", got)
	}
}

func TestLockCarriesConsistency(t *testing.T) {
	// Writes made under a lock must be visible to the next acquirer with
	// no barrier in between (lazy release consistency through the grant).
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		if tm.ID() == 0 {
			tm.AcquireLock(0)
			w := r.Write(5, 6)
			w[5] = 99
			tm.ReleaseLock(0)
			tm.Barrier()
		} else {
			tm.Barrier() // order the acquires: proc 0 first
			tm.AcquireLock(0)
			g := r.Read(5, 6)
			if g[5] != 99 {
				t.Errorf("a[5] = %v, want 99", g[5])
			}
			tm.ReleaseLock(0)
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForkJoinMessageFormula(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		sys := newTestSystem(n)
		const loops = 7
		if err := sys.Run(func(tm *Tmk) {
			for k := 0; k < loops; k++ {
				if tm.ID() == 0 {
					tm.Fork(k, 16)
					tm.Collect()
				} else {
					got := tm.WaitFork()
					if got.(int) != k {
						t.Errorf("ctrl = %v, want %d", got, k)
					}
					tm.Join()
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		want := int64(loops * 2 * (n - 1))
		if got := sys.Stats().MsgsOf(stats.KindBarrier); got != want {
			t.Errorf("n=%d: fork-join msgs = %d, want %d (2(n-1) per loop)", n, got, want)
		}
	}
}

func TestForkJoinPropagatesWrites(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 4096)
		n := tm.NProcs()
		chunk := 4096 / n
		for k := 0; k < 3; k++ {
			if tm.ID() == 0 {
				tm.Fork(nil, 8)
				w := r.Write(0, chunk)
				for i := 0; i < chunk; i++ {
					w[i] = float32(k)
				}
				tm.Collect()
				// Master reads everything in the sequential section.
				g := r.Read(0, 4096)
				for i := 0; i < 4096; i++ {
					if g[i] != float32(k) {
						t.Errorf("iter %d: a[%d] = %v, want %d", k, i, g[i], k)
						return
					}
				}
			} else {
				tm.WaitFork()
				lo := tm.ID() * chunk
				w := r.Write(lo, lo+chunk)
				for i := lo; i < lo+chunk; i++ {
					w[i] = float32(k)
				}
				tm.Join()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregatedFetchMessageCount(t *testing.T) {
	const pages = 8
	run := func(aggregated bool) int64 {
		sys := newTestSystem(2)
		if err := sys.Run(func(tm *Tmk) {
			r := Alloc[float32](tm, "a", pages*1024)
			if tm.ID() == 0 {
				w := r.Write(0, pages*1024)
				for i := range w[:pages*1024] {
					w[i] = 5
				}
			}
			tm.Barrier()
			if tm.ID() == 1 {
				var g []float32
				if aggregated {
					g = r.ReadAggregated(0, pages*1024)
				} else {
					g = r.Read(0, pages*1024)
				}
				if g[pages*1024-1] != 5 {
					t.Error("bad data")
				}
			}
			tm.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return sys.Stats().MsgsOf(stats.KindDiffReq)
	}
	if got := run(false); got != pages {
		t.Errorf("per-page faults: %d requests, want %d", got, pages)
	}
	if got := run(true); got != 1 {
		t.Errorf("aggregated: %d requests, want 1", got)
	}
}

func TestBroadcastRegion(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "v", 1024)
		if tm.ID() == 2 {
			w := r.Write(0, 1024)
			for i := range w[:1024] {
				w[i] = 3.5
			}
		}
		BroadcastRegion(tm, r, 0, 1024, 2)
		g := r.Read(0, 1024)
		if g[500] != 3.5 {
			t.Errorf("proc %d: v[500] = %v, want 3.5", tm.ID(), g[500])
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	if got := s.MsgsOf(stats.KindDiffReq); got != 0 {
		t.Errorf("diff requests = %d, want 0 after broadcast", got)
	}
	if got := s.MsgsOf(stats.KindPage); got != 3 {
		t.Errorf("broadcast msgs = %d, want n-1 = 3", got)
	}
}

func TestPushOnBarrier(t *testing.T) {
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		if tm.ID() == 0 {
			PushOnBarrier(tm, r, 0, 1024, 1)
		} else {
			tm.ExpectPushOnBarrier(0)
		}
		for k := 0; k < 3; k++ {
			if tm.ID() == 0 {
				w := r.Write(0, 1024)
				for i := range w[:1024] {
					w[i] = float32(k + 1)
				}
			}
			tm.Barrier()
			if tm.ID() == 1 {
				g := r.Read(0, 1024)
				if g[9] != float32(k+1) {
					t.Errorf("iter %d: a[9] = %v", k, g[9])
				}
			}
			tm.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().MsgsOf(stats.KindDiffReq); got != 0 {
		t.Errorf("diff requests = %d, want 0 with push", got)
	}
}

func TestGCSquashBoundsRecords(t *testing.T) {
	sys := newTestSystem(2)
	// Run well past two squashes.
	rounds := proto.GCThreshold*2 + 5
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		for k := 0; k < rounds; k++ {
			if tm.ID() == 0 {
				w := r.Write(0, 1024)
				w[k%1024] = float32(k + 1)
			}
			tm.Barrier()
			if tm.ID() == 1 {
				// Read every round so diffs are extracted every interval
				// (no accumulation) and records pile up.
				g := r.Read(0, 1024)
				if g[k%1024] != float32(k+1) {
					t.Errorf("round %d: bad value %v", k, g[k%1024])
				}
			}
			tm.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		sys := newTestSystem(4)
		if err := sys.Run(func(tm *Tmk) {
			r := Alloc[float32](tm, "a", 4096)
			n := tm.NProcs()
			chunk := 4096 / n
			for k := 0; k < 4; k++ {
				lo := tm.ID() * chunk
				w := r.Write(lo, lo+chunk)
				for i := lo; i < lo+chunk; i++ {
					w[i] = float32(k*10 + tm.ID())
				}
				tm.AcquireLock(0)
				s := r.Write(4095, 4096)
				s[4095]++
				tm.ReleaseLock(0)
				tm.Barrier()
				r.Read(0, 4096)
				tm.Barrier()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return sys.Stats().TotalMsgs(), sys.Stats().TotalBytes()
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
}

// TestConvergesToSequential is a property test: arbitrary disjoint write
// patterns across processes and rounds must produce exactly the array a
// sequential execution produces.
func TestConvergesToSequential(t *testing.T) {
	f := func(seed [8]uint8) bool {
		const n, size, rounds = 4, 2048, 3
		want := make([]float32, size)
		for k := 0; k < rounds; k++ {
			for p := 0; p < n; p++ {
				stride := int(seed[(k*n+p)%8])%5 + 1
				for i := p; i < size; i += n * stride {
					want[i] = float32(k*100 + p + int(seed[p%8]))
				}
			}
		}
		got := make([]float32, size)
		ok := true
		sys := newTestSystem(n)
		if err := sys.Run(func(tm *Tmk) {
			r := Alloc[float32](tm, "a", size)
			for k := 0; k < rounds; k++ {
				p := tm.ID()
				stride := int(seed[(k*n+p)%8])%5 + 1
				w := r.Write(0, size) // whole-array writes: heavy false sharing
				for i := p; i < size; i += n * stride {
					w[i] = float32(k*100 + p + int(seed[p%8]))
				}
				tm.Barrier()
			}
			g := r.Read(0, size)
			if tm.ID() == 0 {
				copy(got, g[:size])
			}
			tm.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("mismatch at %d: got %v want %v", i, got[i], want[i])
				ok = false
				break
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBarrierReduceSum(t *testing.T) {
	sys := newTestSystem(8)
	err := sys.Run(func(tm *Tmk) {
		got := tm.BarrierReduceSum([]float64{float64(tm.ID()), 1})
		if got[0] != 28 || got[1] != 8 {
			t.Errorf("proc %d: reduce = %v, want [28 8]", tm.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComplexRegion(t *testing.T) {
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[complex128](tm, "c", 256) // exactly one page
		if tm.ID() == 0 {
			w := r.Write(0, 256)
			for i := range w[:256] {
				w[i] = complex(float64(i), -float64(i))
			}
		}
		tm.Barrier()
		g := r.Read(0, 256)
		if g[17] != complex(17, -17) {
			t.Errorf("c[17] = %v", g[17])
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionGeometry(t *testing.T) {
	sys := newTestSystem(1)
	err := sys.Run(func(tm *Tmk) {
		f := Alloc[float32](tm, "f", 1500)
		if f.ElemsPerPage() != 1024 {
			t.Errorf("f32 epp = %d, want 1024", f.ElemsPerPage())
		}
		if f.Pages() != 2 {
			t.Errorf("1500 f32 = %d pages, want 2", f.Pages())
		}
		c := Alloc[complex128](tm, "c", 256)
		if c.ElemsPerPage() != 256 {
			t.Errorf("c128 epp = %d, want 256", c.ElemsPerPage())
		}
		if c.PageOf(0) != f.PageOf(0)+2 {
			t.Errorf("regions overlap: %d vs %d", c.PageOf(0), f.PageOf(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShutdownTrafficNotCounted(t *testing.T) {
	sys := newTestSystem(4)
	if err := sys.Run(func(tm *Tmk) {}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().TotalMsgs(); got != 0 {
		t.Errorf("empty program counted %d messages", got)
	}
	if got := sys.Stats().MsgsOf(stats.KindShutdown); got == 0 {
		t.Error("expected shutdown traffic to be recorded under its own kind")
	}
}

func TestFaultAndTwinCounters(t *testing.T) {
	sys := newTestSystem(2)
	var twins, faults int64
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 1024)
		if tm.ID() == 0 {
			w := r.Write(0, 1024)
			w[0] = 1
		}
		tm.Barrier()
		if tm.ID() == 1 {
			r.Read(0, 1024)
			faults = tm.FaultCount()
		}
		if tm.ID() == 0 {
			twins = tm.TwinCount()
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if twins != 1 {
		t.Errorf("twins = %d, want 1", twins)
	}
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
}

// TestLockChainUnderContention: all processes hammer one lock; the
// manager/last-requester chain must serialize correctly and every
// increment must survive.
func TestLockChainUnderContention(t *testing.T) {
	sys := newTestSystem(8)
	const rounds = 20
	err := sys.Run(func(tm *Tmk) {
		c := Alloc[int64](tm, "c", 8)
		for k := 0; k < rounds; k++ {
			tm.AcquireLock(5)
			w := c.Write(0, 1)
			w[0]++
			tm.ReleaseLock(5)
		}
		tm.Barrier()
		g := c.Read(0, 1)
		if g[0] != 8*rounds {
			t.Errorf("proc %d: counter = %d, want %d", tm.ID(), g[0], 8*rounds)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTwoLocksIndependent: different locks have different managers and
// must not interfere.
func TestTwoLocksIndependent(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		a := Alloc[int64](tm, "a", 8)
		b := Alloc[int64](tm, "b", 512) // second page
		for k := 0; k < 5; k++ {
			if tm.ID()%2 == 0 {
				tm.AcquireLock(2)
				w := a.Write(0, 1)
				w[0]++
				tm.ReleaseLock(2)
			} else {
				tm.AcquireLock(3)
				w := b.Write(0, 1)
				w[0] += 10
				tm.ReleaseLock(3)
			}
		}
		tm.Barrier()
		ga := a.Read(0, 1)
		gb := b.Read(0, 1)
		if ga[0] != 10 || gb[0] != 100 {
			t.Errorf("proc %d: a=%d b=%d, want 10/100", tm.ID(), ga[0], gb[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadAggregatedRangesCorrectness: strided-range aggregation must
// deliver exactly what per-page faulting delivers.
func TestReadAggregatedRangesCorrectness(t *testing.T) {
	sys := newTestSystem(4)
	const pages = 16
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", pages*1024)
		lo, hi := tm.ID()*pages/4, (tm.ID()+1)*pages/4
		w := r.Write(lo*1024, hi*1024)
		for i := lo * 1024; i < hi*1024; i++ {
			w[i] = float32(i)
		}
		tm.Barrier()
		if tm.ID() == 0 {
			// Every fourth page, via range list.
			var ranges [][2]int
			for pg := 0; pg < pages; pg += 4 {
				ranges = append(ranges, [2]int{pg * 1024, (pg + 1) * 1024})
			}
			g := r.ReadAggregatedRanges(ranges)
			for pg := 0; pg < pages; pg += 4 {
				i := pg*1024 + 7
				if g[i] != float32(i) {
					t.Errorf("a[%d] = %v, want %v", i, g[i], float32(i))
				}
			}
		}
		tm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBarrierReduceMatchesLockReduce: the §8 extension computes the same
// sum the lock-based §2.1 scheme does.
func TestBarrierReduceMatchesLockReduce(t *testing.T) {
	sys := newTestSystem(8)
	err := sys.Run(func(tm *Tmk) {
		shared := Alloc[float64](tm, "s", 8)
		part := float64(tm.ID()*tm.ID() + 1)
		tm.AcquireLock(9)
		w := shared.Write(0, 1)
		w[0] += part
		tm.ReleaseLock(9)
		tm.Barrier()
		viaLock := shared.Read(0, 1)[0]
		viaBarrier := tm.BarrierReduceSum([]float64{part})[0]
		if viaLock != viaBarrier {
			t.Errorf("lock-based %v != barrier-merged %v", viaLock, viaBarrier)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMixedBarrierAndForkJoin: interleaving full barriers with the
// split fork/join interface must keep sequence numbers and consistency
// consistent.
func TestMixedBarrierAndForkJoin(t *testing.T) {
	sys := newTestSystem(4)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[int64](tm, "x", 512)
		if tm.ID() == 0 {
			w := r.Write(0, 1)
			w[0] = 11
			tm.Barrier() // plain barrier first
			tm.Fork(nil, 8)
			tm.Collect()
			tm.Barrier()
		} else {
			tm.Barrier()
			tm.WaitFork()
			g := r.Read(0, 1)
			if g[0] != 11 {
				t.Errorf("worker %d sees %d, want 11", tm.ID(), g[0])
			}
			tm.Join()
			tm.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyRegionsIndependent: pages of different regions never alias.
func TestManyRegionsIndependent(t *testing.T) {
	sys := newTestSystem(2)
	err := sys.Run(func(tm *Tmk) {
		regs := make([]*Region[float32], 10)
		for i := range regs {
			regs[i] = Alloc[float32](tm, "r", 100)
		}
		if tm.ID() == 0 {
			for i, r := range regs {
				w := r.Write(0, 100)
				w[0] = float32(i + 1)
			}
		}
		tm.Barrier()
		for i, r := range regs {
			g := r.Read(0, 100)
			if g[0] != float32(i+1) {
				t.Errorf("region %d: got %v", i, g[0])
			}
			if g[1] != 0 {
				t.Errorf("region %d: neighbor element dirtied: %v", i, g[1])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteValidationPanicsOutOfRange guards the access-check API.
func TestWriteValidationPanicsOutOfRange(t *testing.T) {
	sys := newTestSystem(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range validation")
		}
	}()
	_ = sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 100)
		r.Write(0, 5000)
	})
}

// TestPageRunsEncoding pins the write-notice RLE used for wire
// accounting.
func TestPageRunsEncoding(t *testing.T) {
	cases := []struct {
		pages []int32
		want  int
	}{
		{nil, 0},
		{[]int32{5}, 1},
		{[]int32{5, 6, 7}, 1},
		{[]int32{5, 7, 9}, 3},
		{[]int32{1, 2, 3, 10, 11, 20}, 3},
	}
	for _, c := range cases {
		if got := proto.PageRuns(c.pages); got != c.want {
			t.Errorf("PageRuns(%v) = %d, want %d", c.pages, got, c.want)
		}
	}
}

// TestProfileAttribution: the overhead breakdown must attribute time to
// the categories actually exercised.
func TestProfileAttribution(t *testing.T) {
	sys := newTestSystem(2)
	profiles := make([]Profile, 2)
	err := sys.Run(func(tm *Tmk) {
		r := Alloc[float32](tm, "a", 2048)
		if tm.ID() == 0 {
			w := r.Write(0, 2048)
			for i := range w[:2048] {
				w[i] = 1
			}
		}
		tm.AcquireLock(0)
		tm.ReleaseLock(0)
		tm.Barrier()
		if tm.ID() == 1 {
			r.Read(0, 2048)
		}
		tm.Barrier()
		profiles[tm.ID()] = tm.Profile()
	})
	if err != nil {
		t.Fatal(err)
	}
	if profiles[0].Write <= 0 {
		t.Error("writer has no write-detection time")
	}
	if profiles[1].Fault <= 0 {
		t.Error("reader has no fault time")
	}
	for i, p := range profiles {
		if p.Barrier <= 0 {
			t.Errorf("proc %d has no barrier time", i)
		}
		if p.Total() != p.Fault+p.Barrier+p.Lock+p.Write {
			t.Errorf("proc %d: Total() inconsistent", i)
		}
	}
	// Proc 1 acquires lock 0 remotely (manager is node 0).
	if profiles[1].Lock <= 0 {
		t.Error("remote acquirer has no lock time")
	}
}
