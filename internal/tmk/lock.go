package tmk

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Locks, per the paper §2.2: each lock has a statically assigned manager
// (lock id mod n) which records the most recent requester. Acquire
// requests go to the manager and are forwarded, if necessary, to the
// processor that last requested the lock. A release causes no
// communication: the grant is sent when (and only when) a queued request
// is waiting, and carries the consistency information (write notices) the
// acquirer lacks, per lazy release consistency.

type lockManagerState struct {
	lastRequester int
}

type lockHolderState struct {
	token   bool // the lock token is at this node
	inUse   bool // the application holds the lock
	pending *lockReqMsg
}

type lockReqMsg struct {
	lock      int
	requester int
	vc        []int32
}

type lockGrantMsg struct {
	batches []proto.NoticeBatch
}

// managerState lazily initializes manager-side state. The token starts
// at the manager's node.
func (nd *node) managerState(id int) *lockManagerState {
	ms, ok := nd.lockMgr[id]
	if !ok {
		ms = &lockManagerState{lastRequester: nd.id}
		nd.lockMgr[id] = ms
		hs := nd.holderState(id)
		hs.token = true
	}
	return ms
}

func (nd *node) holderState(id int) *lockHolderState {
	hs, ok := nd.lockHold[id]
	if !ok {
		hs = &lockHolderState{}
		nd.lockHold[id] = hs
	}
	return hs
}

// AcquireLock acquires lock id, applying the write notices piggybacked on
// the grant (the RC acquire).
func (tm *Tmk) AcquireLock(id int) {
	nd := tm.nd
	p := tm.p
	c := nd.sys.costs
	mgr := id % nd.sys.nprocs
	startT := p.Now()
	defer func() { nd.LockTime += p.Now() - startT }()
	if tr := c.Trace; tr.Enabled() {
		tr.Instant(obs.EvLockRequest, p.ID(), int64(p.Now()), stats.KindLock, -1, int64(id))
		defer func() {
			tr.Instant(obs.EvLockGrant, p.ID(), int64(p.Now()), stats.KindLock, -1, int64(id))
		}()
	}

	if nd.id == mgr {
		// We are the manager: handle the request locally.
		ms := nd.managerState(id)
		last := ms.lastRequester
		ms.lastRequester = nd.id
		if last == nd.id {
			hs := nd.holderState(id)
			if !hs.token || hs.inUse {
				panic("tmk: lock chain corrupt: token lost")
			}
			hs.inUse = true // silent reacquire, zero messages
			p.Advance(c.LockWork)
			return
		}
		p.Advance(c.LockWork)
		req := lockReqMsg{lock: id, requester: nd.id, vc: vcCopy(nd.prot.VC())}
		p.Send(nd.sys.serverOf(last), tagLockForward+id, req, lockReqBytes+len(req.vc)*vcBytes, stats.KindLock)
	} else {
		req := lockReqMsg{lock: id, requester: nd.id, vc: vcCopy(nd.prot.VC())}
		p.Send(nd.sys.serverOf(mgr), tagLockReq+id, req, lockReqBytes+len(req.vc)*vcBytes, stats.KindLock)
	}
	m := p.Recv(sim.AnySrc, tagLockGrant+id)
	grant := m.Payload.(lockGrantMsg)
	nd.prot.ApplyBatches(grant.batches)
	hs := nd.holderState(id)
	hs.token = true
	hs.inUse = true
	p.Advance(c.LockWork)
}

// ReleaseLock releases lock id: an RC release (the open interval closes)
// with no communication unless a request is queued, in which case the
// grant travels with the consistency information the requester lacks.
func (tm *Tmk) ReleaseLock(id int) {
	nd := tm.nd
	p := tm.p
	hs := nd.holderState(id)
	if !hs.token || !hs.inUse {
		panic(fmt.Sprintf("tmk: release of lock %d not held", id))
	}
	nd.prot.Release(stats.KindLock)
	hs.inUse = false
	if hs.pending != nil {
		req := hs.pending
		hs.pending = nil
		hs.token = false
		nd.sendGrant(p, req)
	}
}

// sendGrant ships the lock token plus piggybacked consistency data to the
// requester's application process. Callable from either the application
// process (at release) or the server process (token already free).
func (nd *node) sendGrant(p *sim.Proc, req *lockReqMsg) {
	batches := nd.prot.BatchSince(req.vc)
	bytes := grantHdr + proto.BatchBytes(batches)
	grant := lockGrantMsg{batches: batches}
	p.Send(req.requester, tagLockGrant+req.lock, grant, bytes, stats.KindLock)
}

// handleLockReq is the manager-side server logic.
func (nd *node) handleLockReq(p *sim.Proc, req lockReqMsg) {
	c := nd.sys.costs
	ms := nd.managerState(req.lock)
	last := ms.lastRequester
	ms.lastRequester = req.requester
	p.Advance(c.LockWork)
	if last == nd.id {
		nd.handleLockForward(p, req) // we are also the holder end of the chain
		return
	}
	p.Send(nd.sys.serverOf(last), tagLockForward+req.lock, req,
		lockReqBytes+len(req.vc)*vcBytes, stats.KindLock)
}

// handleLockForward is the holder-side server logic: grant immediately if
// the token sits here released; queue for the application's release if it
// is in use or if the grant to this node is itself still in flight (the
// manager forwards to the *last requester*, which may not hold the token
// yet).
func (nd *node) handleLockForward(p *sim.Proc, req lockReqMsg) {
	hs := nd.holderState(req.lock)
	if hs.pending != nil {
		panic("tmk: second pending lock request (chain invariant broken)")
	}
	if !hs.token || hs.inUse {
		r := req
		hs.pending = &r
		return
	}
	hs.token = false
	nd.sendGrant(p, &req)
}
