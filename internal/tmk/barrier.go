package tmk

import (
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Barrier traffic, per the paper §2.2: barriers have a centralized
// manager (node 0's application process, which is itself waiting at the
// barrier, so no server process is involved). At arrival each process
// sends a release message carrying its newly released intervals' write
// notices; the manager merges them and broadcasts a departure carrying
// the notices each process lacks: 2(n-1) messages per barrier.
//
// Consistency invariant: a node's vector clock entry vc[q] advances only
// together with the interval records that justify it (ApplyBatches or the
// node's own release). Batches always cover the contiguous range
// (receiver.vc[q], sender.vc[q]], so logs never develop gaps and any node
// can serve consistency information for any older vector clock.

// arrivalMsg is a process's barrier-arrival payload.
type arrivalMsg struct {
	vc      []int32 // the arriver's vector clock (tells the manager what it lacks)
	batches []proto.NoticeBatch
	reduce  []float64 // optional barrier-merged reduction contribution (§8)
	// dir carries the home policy's directory proposals of the closing
	// epoch (home migration / first-touch claims) for arbitration.
	dir []proto.DirUpdate
}

// departMsg is the manager's barrier-departure payload.
type departMsg struct {
	batches []proto.NoticeBatch
	payload any // loop-control data under the improved interface (§2.3)
	reduce  []float64
	// dir is the arbitrated home-directory update list of this epoch,
	// identical in every departure: all nodes install the same homes
	// before any post-barrier release can flush.
	dir []proto.DirUpdate
}

// Barrier performs a full TreadMarks barrier: an RC release followed by
// global synchronization and write-notice exchange.
func (tm *Tmk) Barrier() {
	tm.barrierReduce(nil, nil, stats.KindBarrier)
}

// BarrierReduceSum is the §8 "efficient support for reductions"
// extension: contributions are merged element-wise (sum) through the
// barrier messages themselves and the result is returned to every
// process, avoiding a lock-protected shared reduction variable. Every
// process must pass a slice of the same length.
func (tm *Tmk) BarrierReduceSum(vals []float64) []float64 {
	out := make([]float64, len(vals))
	tm.barrierReduce(vals, out, stats.KindBarrier)
	return out
}

func (tm *Tmk) barrierReduce(reduce, reduceOut []float64, kind stats.Kind) {
	nd := tm.nd
	p := tm.p
	startT := p.Now()
	defer func() { nd.BarrierTime += p.Now() - startT }()
	n := nd.sys.nprocs
	c := nd.sys.costs

	reported := nd.lastReported
	nd.prot.Release(kind)
	nd.lastReported = nd.prot.VC()[nd.id]
	seq := nd.barrierSeq % barrierSeqSpace
	nd.barrierSeq++
	if tr := c.Trace; tr.Enabled() {
		tr.Instant(obs.EvBarrierArrive, p.ID(), int64(p.Now()), kind, -1, int64(seq))
		defer func() {
			tr.Instant(obs.EvBarrierDepart, p.ID(), int64(p.Now()), kind, -1, int64(seq))
		}()
	}
	if n == 1 {
		if reduceOut != nil {
			copy(reduceOut, reduce)
		}
		return
	}
	// Close the home policy's accounting epoch. Proposals ride the
	// arrival, the manager arbitrates, and the agreed updates ride the
	// departures. The hook is skipped at a single node (every page is
	// self-homed and homes never move) and on shutdown-kind barriers:
	// measurement boundaries just stretch the epoch, and the teardown
	// barrier must leave the system quiesced — a migration pull after
	// the final departure would race the request servers' exit.
	var props []proto.DirUpdate
	if kind != stats.KindShutdown {
		props = nd.prot.Rebalance()
	}

	if nd.id == 0 {
		// Contributions are folded in node order, not arrival order:
		// arrival order varies with protocol timing and floating-point
		// summation must not (cross-protocol equivalence).
		contribs := make([][]float64, n)
		contribs[0] = reduce
		nd.dirPending[0] = props
		for i := 1; i < n; i++ {
			m := p.Recv(sim.AnySrc, tagBarrierArrive+seq)
			arr := m.Payload.(arrivalMsg)
			nd.prot.ApplyBatches(arr.batches)
			nd.setWorkerVC(m.Src, arr.vc)
			contribs[m.Src] = arr.reduce
			nd.dirPending[m.Src] = arr.dir
			p.Advance(c.BarrierWork)
		}
		var updates []proto.DirUpdate
		if kind != stats.KindShutdown {
			updates = nd.drainDirProposals()
		}
		var acc []float64
		for _, cv := range contribs {
			if len(cv) > len(acc) {
				grown := make([]float64, len(cv))
				copy(grown, acc)
				acc = grown
			}
			for k, v := range cv {
				acc[k] += v
			}
		}
		for w := 1; w < n; w++ {
			batches := nd.prot.BatchSince(nd.workerVCAt(w))
			bytes := 16 + proto.BatchBytes(batches) + len(acc)*8 + proto.DirUpdateBytes(updates)
			dep := departMsg{batches: batches, reduce: acc, dir: updates}
			p.Send(w, tagBarrierDepart+seq, dep, bytes, kind)
		}
		nd.prot.ApplyDirectory(updates, kind)
		if reduceOut != nil {
			copy(reduceOut, acc)
		}
	} else {
		batches := nd.prot.OwnBatch(reported)
		bytes := n*vcBytes + proto.BatchBytes(batches) + len(reduce)*8 + proto.DirUpdateBytes(props)
		arr := arrivalMsg{vc: vcCopy(nd.prot.VC()), batches: batches, reduce: reduce, dir: props}
		p.Send(0, tagBarrierArrive+seq, arr, bytes, kind)
		m := p.Recv(0, tagBarrierDepart+seq)
		dep := m.Payload.(departMsg)
		nd.prot.ApplyBatches(dep.batches)
		p.Advance(c.BarrierWork)
		nd.prot.ApplyDirectory(dep.dir, kind)
		if reduceOut != nil {
			copy(reduceOut, dep.reduce)
		}
	}
	nd.firePushes(seq, kind)
}

// --- Improved compiler interface (§2.3): split arrival and departure ---
//
// The fork-join model needs only a one-to-all synchronization at the fork
// and an all-to-one at the join. The departure carries the loop-control
// variables (encapsulated-subroutine index and arguments), avoiding the
// two shared-memory control-page faults per worker of the original
// scheme. Per parallel loop: 2(n-1) messages instead of 8(n-1).

// Fork is the master-side barrier departure: it releases the master's
// interval and wakes the workers, piggybacking the loop-control payload
// ctrl (modeled size ctrlBytes) and the consistency information each
// worker lacks.
func (tm *Tmk) Fork(ctrl any, ctrlBytes int) {
	nd := tm.nd
	p := tm.p
	n := nd.sys.nprocs
	startT := p.Now()
	defer func() { nd.BarrierTime += p.Now() - startT }()
	if nd.id != 0 {
		panic("tmk: Fork must be called on the master")
	}
	nd.prot.Release(stats.KindBarrier)
	nd.lastReported = nd.prot.VC()[nd.id]
	var updates []proto.DirUpdate
	if n > 1 {
		// The fork-join epoch hook: the workers' proposals arrived with
		// their Joins; arbitrate them with the master's own and ship
		// the agreed updates in the departures.
		nd.dirPending[0] = nd.prot.Rebalance()
		updates = nd.drainDirProposals()
	}
	seq := nd.barrierSeq % barrierSeqSpace
	nd.barrierSeq++
	for w := 1; w < n; w++ {
		batches := nd.prot.BatchSince(nd.workerVCAt(w))
		bytes := 16 + proto.BatchBytes(batches) + ctrlBytes + proto.DirUpdateBytes(updates)
		dep := departMsg{batches: batches, payload: ctrl, dir: updates}
		p.Send(w, tagBarrierDepart+seq, dep, bytes, stats.KindBarrier)
	}
	nd.prot.ApplyDirectory(updates, stats.KindBarrier)
	nd.sys.costs.Trace.Instant(obs.EvBarrierDepart, p.ID(), int64(p.Now()), stats.KindBarrier, -1, int64(seq))
}

// WaitFork is the worker-side wait for the master's departure; it is an
// RC acquire (invalidations are applied) but not a release. It returns
// the piggybacked loop-control payload.
func (tm *Tmk) WaitFork() any {
	nd := tm.nd
	p := tm.p
	startT := p.Now()
	defer func() { nd.BarrierTime += p.Now() - startT }()
	if nd.id == 0 {
		panic("tmk: WaitFork must be called on a worker")
	}
	seq := nd.barrierSeq % barrierSeqSpace
	nd.barrierSeq++
	m := p.Recv(0, tagBarrierDepart+seq)
	dep := m.Payload.(departMsg)
	nd.prot.ApplyBatches(dep.batches)
	p.Advance(nd.sys.costs.BarrierWork)
	nd.prot.ApplyDirectory(dep.dir, stats.KindBarrier)
	nd.sys.costs.Trace.Instant(obs.EvBarrierDepart, p.ID(), int64(p.Now()), stats.KindBarrier, -1, int64(seq))
	return dep.payload
}

// Join is the worker-side barrier arrival after a parallel loop: an RC
// release that reports the worker's write notices to the master.
func (tm *Tmk) Join() {
	nd := tm.nd
	p := tm.p
	startT := p.Now()
	defer func() { nd.BarrierTime += p.Now() - startT }()
	if nd.id == 0 {
		panic("tmk: Join must be called on a worker")
	}
	reported := nd.lastReported
	nd.prot.Release(stats.KindBarrier)
	nd.lastReported = nd.prot.VC()[nd.id]
	props := nd.prot.Rebalance()
	seq := nd.barrierSeq % barrierSeqSpace
	nd.barrierSeq++
	batches := nd.prot.OwnBatch(reported)
	bytes := nd.sys.nprocs*vcBytes + proto.BatchBytes(batches) + proto.DirUpdateBytes(props)
	arr := arrivalMsg{vc: vcCopy(nd.prot.VC()), batches: batches, dir: props}
	p.Send(0, tagBarrierArrive+seq, arr, bytes, stats.KindBarrier)
	nd.sys.costs.Trace.Instant(obs.EvBarrierArrive, p.ID(), int64(p.Now()), stats.KindBarrier, -1, int64(seq))
}

// Collect is the master-side join: it gathers the workers' arrivals,
// merging their write notices (an RC acquire for the master).
func (tm *Tmk) Collect() {
	nd := tm.nd
	p := tm.p
	n := nd.sys.nprocs
	startT := p.Now()
	defer func() { nd.BarrierTime += p.Now() - startT }()
	if nd.id != 0 {
		panic("tmk: Collect must be called on the master")
	}
	seq := nd.barrierSeq % barrierSeqSpace
	nd.barrierSeq++
	nd.sys.costs.Trace.Instant(obs.EvBarrierArrive, p.ID(), int64(p.Now()), stats.KindBarrier, -1, int64(seq))
	for i := 1; i < n; i++ {
		m := p.Recv(sim.AnySrc, tagBarrierArrive+seq)
		arr := m.Payload.(arrivalMsg)
		nd.prot.ApplyBatches(arr.batches)
		nd.setWorkerVC(m.Src, arr.vc)
		nd.dirPending[m.Src] = arr.dir
		p.Advance(nd.sys.costs.BarrierWork)
	}
}

// drainDirProposals arbitrates the gathered directory proposals of one
// epoch (manager only): first proposal per page in node-id order wins,
// the result is page-sorted and identical in every departure.
func (nd *node) drainDirProposals() []proto.DirUpdate {
	updates := proto.MergeDirProposals(nd.dirPending)
	for i := range nd.dirPending {
		nd.dirPending[i] = nil
	}
	return updates
}

// vcCopy snapshots a vector clock for a message payload.
func vcCopy(vc []int32) []int32 {
	out := make([]int32, len(vc))
	copy(out, vc)
	return out
}
