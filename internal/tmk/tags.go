package tmk

// Message tags of the synchronization layer. Barrier tags are offset by
// a rolling sequence number so that a fast process arriving at barrier
// k+1 cannot have its arrival consumed by the manager still collecting
// barrier k. The coherence-protocol subsystem (internal/proto) owns the
// 16<<16 and up tag range for its own traffic (diff requests, pushes,
// home flushes, page fetches); tmk must stay below it.
const (
	tagBarrierArrive = 1 << 16
	tagBarrierDepart = 2 << 16
	tagLockReq       = 3 << 16 // + lock id
	tagLockForward   = 4 << 16 // + lock id
	tagLockGrant     = 5 << 16 // + lock id
	tagBcast         = 8 << 16
	tagExit          = 10 << 16
	tagUser          = 11 << 16 // reserved for runtimes layered on tmk

	barrierSeqSpace = 1 << 14
)

// wire-format size constants (bytes) for control payloads.
const (
	vcBytes      = 4 // per process entry in a vector clock
	lockReqBytes = 16
	grantHdr     = 16
	bcastHdr     = 16
)
