package tmk

// Message tags. Barrier tags are offset by a rolling sequence number so
// that a fast process arriving at barrier k+1 cannot have its arrival
// consumed by the manager still collecting barrier k.
const (
	tagBarrierArrive = 1 << 16
	tagBarrierDepart = 2 << 16
	tagLockReq       = 3 << 16 // + lock id
	tagLockForward   = 4 << 16 // + lock id
	tagLockGrant     = 5 << 16 // + lock id
	tagDiffReq       = 6 << 16
	tagDiffResp      = 7 << 16
	tagBcast         = 8 << 16
	tagPush          = 9 << 16
	tagExit          = 10 << 16
	tagUser          = 11 << 16 // reserved for runtimes layered on tmk

	barrierSeqSpace = 1 << 14
)

// wire-format size constants (bytes) for control payloads.
const (
	vcBytes        = 4 // per process entry in a vector clock
	diffReqHdr     = 12
	diffReqPerPage = 16
	diffRecHdr     = 8
	diffSegHdr     = 4
	lockReqBytes   = 16
	grantHdr       = 16
	pushHdr        = 16
)
