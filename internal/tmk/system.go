// Package tmk implements the TreadMarks software distributed shared
// memory system of the paper (§2.2) on the simulated SP/2 cluster:
//
//   - a paged global shared address space with access detection at 4 KB
//     granularity (software page table with compiler-style hoisted range
//     checks standing in for mprotect/SIGSEGV — see DESIGN.md);
//   - a pluggable coherence protocol (internal/proto): lazy invalidate
//     release consistency with vector timestamps, intervals and write
//     notices, as either the paper's homeless multiple-writer protocol
//     based on twins and run-length-encoded diffs (default) or a
//     home-based LRC with eager diff flushes and whole-page fetches;
//   - locks with statically assigned managers and last-requester
//     forwarding, where a release sends no messages;
//   - barriers with a centralized manager, costing 2(n-1) messages;
//   - the improved compiler interface of §2.3 (split barrier
//     arrival/departure carrying loop-control data); and
//   - the enhanced interface used for the paper's hand optimizations
//     (§5, §8): aggregated validation, broadcast, push, and
//     barrier-merged reductions.
//
// Each node contributes two simulated processes: an application process
// (ids 0..n-1) that runs user code, and a request-server process
// (ids n..2n-1) standing in for TreadMarks' SIGIO handler, which services
// diff, page and lock traffic while the application computes.
package tmk

import (
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// System is a TreadMarks machine: n nodes on a simulated interconnect.
type System struct {
	nprocs   int
	costs    model.Costs
	cluster  *sim.Cluster
	protocol proto.Name
	policy   proto.PolicyName
	nodes    []*node
}

// Option configures a System.
type Option func(*System)

// WithProtocol selects the coherence protocol (default: the homeless
// TreadMarks LRC).
func WithProtocol(name proto.Name) Option {
	return func(s *System) {
		if name != "" {
			s.protocol = name
		}
	}
}

// WithHomePolicy selects the home-placement policy of the home-based
// protocol (default: static). The homeless protocol ignores it.
func WithHomePolicy(p proto.PolicyName) Option {
	return func(s *System) {
		if p != "" {
			s.policy = p
		}
	}
}

// NewSystem creates a TreadMarks system with nprocs nodes using the given
// cost model. The underlying simulator gets 2*nprocs processes.
func NewSystem(nprocs int, costs model.Costs, opts ...Option) *System {
	if nprocs < 1 {
		panic("tmk: need at least one process")
	}
	// 2*nprocs simulated processes on nprocs physical nodes: each
	// node's application process and request server share its NIC
	// under the contention model.
	cfg := costs.SimConfigNodes(2*nprocs, nprocs)
	s := &System{
		nprocs:   nprocs,
		costs:    costs,
		cluster:  sim.New(cfg),
		protocol: proto.HomelessLRC,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns the interconnect statistics collector.
func (s *System) Stats() *stats.Stats { return s.cluster.Stats() }

// NProcs returns the number of DSM nodes.
func (s *System) NProcs() int { return s.nprocs }

// Costs returns the cost model.
func (s *System) Costs() model.Costs { return s.costs }

// Protocol returns the coherence protocol the system runs.
func (s *System) Protocol() proto.Name { return s.protocol }

// HomePolicy returns the home-placement policy the system runs (empty:
// static, or a homeless system where homes do not exist).
func (s *System) HomePolicy() proto.PolicyName { return s.policy }

// ProtocolCounters returns the protocol event counts summed over every
// node, for the whole run (warm-up included — home migrations mostly
// happen in the first epochs, which the timed region excludes). Valid
// after Run returns.
func (s *System) ProtocolCounters() proto.Counters {
	var out proto.Counters
	for _, nd := range s.nodes {
		out.Add(nd.prot.Counters())
	}
	return out
}

// Run executes body on every node's application process and returns when
// all have finished. Region allocation must be performed inside body,
// identically on every process (SPMD style), exactly as Fortran common
// blocks give every TreadMarks process the same shared layout.
func (s *System) Run(body func(tm *Tmk)) error {
	nodes := make([]*node, s.nprocs)
	for i := range nodes {
		nodes[i] = newNode(i, s)
	}
	s.nodes = nodes
	return s.cluster.Run(func(p *sim.Proc) {
		if p.ID() < s.nprocs {
			tm := &Tmk{p: p, nd: nodes[p.ID()], sys: s}
			tm.nd.tm = tm
			body(tm)
			tm.shutdown()
		} else {
			nd := nodes[p.ID()-s.nprocs]
			nd.serve(p)
		}
	})
}

// serverOf maps a node id to its request-server process id.
func (s *System) serverOf(nodeID int) int { return s.nprocs + nodeID }

// pageLoc maps a global page to its region-local position.
type pageLoc struct {
	region int16 // index into node.regions
	local  int32 // page index within the region
}

// node holds the per-node DSM state above the coherence protocol: the
// shared-memory layout, synchronization state, and the enhanced
// interface's registrations. It is shared between the node's application
// process and its server process; the simulator's sequential scheduler
// serializes all access. All coherence state lives in nd.prot.
type node struct {
	id  int
	sys *System
	tm  *Tmk // the application-side handle, set in Run

	// Coherence protocol instance (page metadata, vector clocks,
	// intervals, diff or home state).
	prot proto.Protocol

	// Shared-memory layout. Allocation is deterministic and identical on
	// all nodes, so global page ids agree everywhere.
	regions    []regionHandle
	pageLocs   []pageLoc
	nextPage   int
	allocSeq   int
	barrierSeq int

	// Synchronization bookkeeping.
	lastReported int32     // own intervals reported to the barrier manager
	workerVC     [][]int32 // manager only: last-known vc per worker
	// dirPending gathers the home-policy directory proposals of one
	// barrier epoch, indexed by proposing node (manager only). Full
	// barriers consume them in place; the fork-join interface fills
	// them at Collect and drains them at the next Fork.
	dirPending [][]proto.DirUpdate

	// Locks.
	lockMgr  map[int]*lockManagerState // locks this node manages
	lockHold map[int]*lockHolderState  // token state for locks seen here

	// Enhanced-interface state: push pairings fired at every barrier and
	// the broadcast sequence counter.
	pushes   []*proto.PushDirective
	expects  []int
	bcastSeq int

	// Overhead attribution for the application process (the paper's
	// §5/§6 analysis decomposes exactly these): virtual time spent
	// repairing pages (faults, fetching and applying diffs), waiting at
	// and processing barriers, waiting for locks, and write-detection
	// (twins + write faults).
	FaultTime, BarrierTime, LockTime, WriteTime sim.Time
}

func newNode(id int, s *System) *node {
	nd := &node{
		id:       id,
		sys:      s,
		lockMgr:  map[int]*lockManagerState{},
		lockHold: map[int]*lockHolderState{},
	}
	nd.prot = proto.New(s.protocol, s.policy, (*nodeHost)(nd))
	if id == 0 {
		nd.workerVC = make([][]int32, s.nprocs)
		for w := range nd.workerVC {
			nd.workerVC[w] = make([]int32, s.nprocs)
		}
		nd.dirPending = make([][]proto.DirUpdate, s.nprocs)
	}
	return nd
}

// setWorkerVC records a worker's vector clock as of its latest arrival
// (barrier manager bookkeeping).
func (nd *node) setWorkerVC(w int, vc []int32) {
	copy(nd.workerVC[w], vc)
}

// workerVCAt returns the manager's last-known vector clock for worker w.
func (nd *node) workerVCAt(w int) []int32 { return nd.workerVC[w] }

// addPages registers npages fresh global pages belonging to region rid,
// both in the layout map and with the protocol.
func (nd *node) addPages(rid, npages int) int {
	base := nd.nextPage
	for i := 0; i < npages; i++ {
		nd.pageLocs = append(nd.pageLocs, pageLoc{region: int16(rid), local: int32(i)})
	}
	nd.nextPage += npages
	nd.prot.AddPages(npages)
	return base
}

// nodeHost adapts a node to the proto.Host interface: it exposes the
// node's identity, processes, cost model, and the region layer's
// page-level data mechanism to the protocol, keyed by global page id.
type nodeHost node

func (h *nodeHost) NodeID() int           { return h.id }
func (h *nodeHost) NProcs() int           { return h.sys.nprocs }
func (h *nodeHost) AppProc() *sim.Proc    { return h.tm.p }
func (h *nodeHost) ServerOf(node int) int { return h.sys.serverOf(node) }
func (h *nodeHost) Costs() model.Costs    { return h.sys.costs }

func (h *nodeHost) MakeTwin(gp int32) {
	loc := h.pageLocs[gp]
	h.regions[loc.region].makeTwin(loc.local)
}

func (h *nodeHost) ExtractDiff(gp int32, keepTwin bool) (any, int) {
	loc := h.pageLocs[gp]
	return h.regions[loc.region].extract(loc.local, keepTwin)
}

func (h *nodeHost) ApplyDiff(gp int32, payload any) {
	loc := h.pageLocs[gp]
	h.regions[loc.region].apply(loc.local, payload)
}

func (h *nodeHost) MergeDiffs(gp int32, payloads []any) (any, int) {
	loc := h.pageLocs[gp]
	return h.regions[loc.region].mergeRecs(payloads)
}

func (h *nodeHost) SnapshotPage(gp int32) (any, int) {
	loc := h.pageLocs[gp]
	return h.regions[loc.region].snapshotPage(loc.local)
}

func (h *nodeHost) InstallPage(gp int32, payload any) {
	loc := h.pageLocs[gp]
	h.regions[loc.region].installPage(loc.local, payload)
}
