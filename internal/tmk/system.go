// Package tmk implements the TreadMarks software distributed shared
// memory system of the paper (§2.2) on the simulated SP/2 cluster:
//
//   - a paged global shared address space with access detection at 4 KB
//     granularity (software page table with compiler-style hoisted range
//     checks standing in for mprotect/SIGSEGV — see DESIGN.md);
//   - lazy invalidate release consistency with vector timestamps,
//     intervals and write notices;
//   - a multiple-writer protocol based on twins and run-length-encoded
//     diffs, with lazy diff creation and diff accumulation (one diff can
//     satisfy a whole run of write notices from the same process);
//   - locks with statically assigned managers and last-requester
//     forwarding, where a release sends no messages;
//   - barriers with a centralized manager, costing 2(n-1) messages;
//   - the improved compiler interface of §2.3 (split barrier
//     arrival/departure carrying loop-control data); and
//   - the enhanced interface used for the paper's hand optimizations
//     (§5, §8): aggregated validation, broadcast, push, and
//     barrier-merged reductions.
//
// Each node contributes two simulated processes: an application process
// (ids 0..n-1) that runs user code, and a request-server process
// (ids n..2n-1) standing in for TreadMarks' SIGIO handler, which services
// diff and lock traffic while the application computes.
package tmk

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// System is a TreadMarks machine: n nodes on a simulated interconnect.
type System struct {
	nprocs  int
	costs   model.Costs
	cluster *sim.Cluster
}

// NewSystem creates a TreadMarks system with nprocs nodes using the given
// cost model. The underlying simulator gets 2*nprocs processes.
func NewSystem(nprocs int, costs model.Costs) *System {
	if nprocs < 1 {
		panic("tmk: need at least one process")
	}
	cfg := costs.SimConfig(2 * nprocs)
	return &System{
		nprocs:  nprocs,
		costs:   costs,
		cluster: sim.New(cfg),
	}
}

// Stats returns the interconnect statistics collector.
func (s *System) Stats() *stats.Stats { return s.cluster.Stats() }

// NProcs returns the number of DSM nodes.
func (s *System) NProcs() int { return s.nprocs }

// Costs returns the cost model.
func (s *System) Costs() model.Costs { return s.costs }

// Run executes body on every node's application process and returns when
// all have finished. Region allocation must be performed inside body,
// identically on every process (SPMD style), exactly as Fortran common
// blocks give every TreadMarks process the same shared layout.
func (s *System) Run(body func(tm *Tmk)) error {
	nodes := make([]*node, s.nprocs)
	for i := range nodes {
		nodes[i] = newNode(i, s)
	}
	return s.cluster.Run(func(p *sim.Proc) {
		if p.ID() < s.nprocs {
			tm := &Tmk{p: p, nd: nodes[p.ID()], sys: s}
			tm.nd.tm = tm
			body(tm)
			tm.shutdown()
		} else {
			nd := nodes[p.ID()-s.nprocs]
			nd.serve(p)
		}
	})
}

// serverOf maps a node id to its request-server process id.
func (s *System) serverOf(nodeID int) int { return s.nprocs + nodeID }

// node holds the per-node DSM state. It is shared between the node's
// application process and its server process; the simulator's sequential
// scheduler serializes all access.
type node struct {
	id  int
	sys *System
	tm  *Tmk // the application-side handle, set in Run

	// Shared-memory layout. Allocation is deterministic and identical on
	// all nodes, so global page ids agree everywhere.
	regions    []regionHandle
	pageMeta   []pageState
	nextPage   int
	allocSeq   int
	barrierSeq int

	// Consistency state.
	vc           []int32         // vc[q] = latest interval of q incorporated
	curInterval  int32           // my open (unreleased) interval
	dirty        []int32         // pages write-noticed in the open interval
	log          [][]intervalRec // released intervals per process
	recs         map[int32][]*diffRec
	lastReported int32     // own intervals reported to the barrier manager
	workerVC     [][]int32 // manager only: last-known vc per worker
	orders       []int64   // orders[k-1]: causal sort key of own interval k

	// Locks.
	lockMgr  map[int]*lockManagerState // locks this node manages
	lockHold map[int]*lockHolderState  // token state for locks seen here

	// Enhanced-interface state: push pairings fired at every barrier and
	// the broadcast sequence counter.
	pushes   []pushDirective
	expects  []int
	bcastSeq int

	// Statistics local to the node (fault/twin/diff event counts).
	Faults, Twins, DiffsMade, DiffsApplied int64

	// Overhead attribution for the application process (the paper's
	// §5/§6 analysis decomposes exactly these): virtual time spent
	// repairing pages (faults, fetching and applying diffs), waiting at
	// and processing barriers, waiting for locks, and write-detection
	// (twins + write faults).
	FaultTime, BarrierTime, LockTime, WriteTime sim.Time
}

// intervalRec is a released interval: the pages its owner wrote.
type intervalRec struct {
	interval int32
	pages    []int32
}

// diffRec is one extracted diff for a page: a payload of typed segments.
// Records for one page form a chain at the writer (seq ascending); a
// requester holding the chain through some seq needs only newer records.
// upto is the highest *released* writer interval the record covers (for
// settling write notices) and order is the causal sort key (vector-clock
// sum at release), strictly increasing along happens-before.
type diffRec struct {
	page    int32
	seq     int32
	upto    int32
	order   int64
	payload any
	bytes   int
}

// pageState is the protocol metadata for one global page.
type pageState struct {
	region     int16 // index into node.regions
	local      int32 // page index within the region
	hasTwin    bool
	twinWrite  int32   // interval of the most recent write fault
	notice     []int32 // notice[q]: highest pending interval of writer q
	applied    []int32 // applied[q]: highest interval of q applied here
	appliedSeq []int32 // appliedSeq[q]: highest record seq of q applied here
	recSeq     int32   // this node's record chain position for the page
	lastSelf   int32   // last interval in which this node noticed the page
}

func newNode(id int, s *System) *node {
	nd := &node{
		id:          id,
		sys:         s,
		vc:          make([]int32, s.nprocs),
		curInterval: 1,
		log:         make([][]intervalRec, s.nprocs),
		recs:        make(map[int32][]*diffRec),
		lockMgr:     make(map[int]*lockManagerState),
		lockHold:    make(map[int]*lockHolderState),
	}
	if id == 0 {
		nd.workerVC = make([][]int32, s.nprocs)
		for w := range nd.workerVC {
			nd.workerVC[w] = make([]int32, s.nprocs)
		}
	}
	return nd
}

// setWorkerVC records a worker's vector clock as of its latest arrival
// (barrier manager bookkeeping).
func (nd *node) setWorkerVC(w int, vc []int32) {
	copy(nd.workerVC[w], vc)
}

// workerVCAt returns the manager's last-known vector clock for worker w.
func (nd *node) workerVCAt(w int) []int32 { return nd.workerVC[w] }

// invalid reports whether the page has unapplied remote write notices.
func (ps *pageState) invalid() bool {
	for q := range ps.notice {
		if ps.notice[q] > ps.applied[q] {
			return true
		}
	}
	return false
}

// addPages registers npages fresh global pages belonging to region rid.
func (nd *node) addPages(rid, npages int) int {
	base := nd.nextPage
	for i := 0; i < npages; i++ {
		nd.pageMeta = append(nd.pageMeta, pageState{
			region:     int16(rid),
			local:      int32(i),
			notice:     make([]int32, nd.sys.nprocs),
			applied:    make([]int32, nd.sys.nprocs),
			appliedSeq: make([]int32, nd.sys.nprocs),
		})
	}
	nd.nextPage += npages
	return base
}

// releaseInterval closes the open interval: every dirtied page gets a
// write notice, the interval is logged, the interval's causal order key
// is recorded, and the vector clock advances. Called at lock release and
// barrier arrival (an RC release operation).
func (nd *node) releaseInterval() {
	if len(nd.dirty) > 0 {
		pages := make([]int32, len(nd.dirty))
		copy(pages, nd.dirty)
		nd.log[nd.id] = append(nd.log[nd.id], intervalRec{interval: nd.curInterval, pages: pages})
		nd.dirty = nd.dirty[:0]
	}
	nd.vc[nd.id] = nd.curInterval
	var sum int64
	for _, v := range nd.vc {
		sum += int64(v)
	}
	nd.orders = append(nd.orders, sum)
	nd.curInterval++
}

// noticesSince collects the interval records of process q with interval
// numbers in (from, to].
func (nd *node) noticesSince(q int, from, to int32) []intervalRec {
	var out []intervalRec
	for _, ir := range nd.log[q] {
		if ir.interval > from && ir.interval <= to {
			out = append(out, ir)
		}
	}
	return out
}

// noticeBatch is consistency information in flight: per-process interval
// records the receiver has not seen.
type noticeBatch struct {
	proc      int
	intervals []intervalRec
}

// batchSince builds the notice batches for a receiver whose vector clock
// is rvc, based on everything this node knows.
func (nd *node) batchSince(rvc []int32) []noticeBatch {
	var out []noticeBatch
	for q := 0; q < nd.sys.nprocs; q++ {
		if nd.vc[q] > rvc[q] {
			ivs := nd.noticesSince(q, rvc[q], nd.vc[q])
			out = append(out, noticeBatch{proc: q, intervals: ivs})
		}
	}
	return out
}

// batchBytes models the wire size of a batch of notices. Write notices
// for consecutive pages are run-length encoded — an interval that
// dirtied a contiguous block of pages (every regular application) costs
// one range record, while scattered writes (MGS's cyclic vectors) cost
// one record per run. This matches the linear-in-runs notice volumes of
// Tables 2 and 3.
func batchBytes(bs []noticeBatch) int {
	n := 0
	for _, b := range bs {
		for _, iv := range b.intervals {
			n += 16 // interval header
			n += pageRuns(iv.pages) * 8
		}
	}
	return n
}

// pageRuns counts maximal runs of consecutive page ids (the pages slice
// is in write-touch order, which is ascending for sweeps).
func pageRuns(pages []int32) int {
	runs := 0
	for i, pg := range pages {
		if i == 0 || pg != pages[i-1]+1 {
			runs++
		}
	}
	return runs
}

// applyBatches incorporates received notices: log them, register page
// invalidations, and advance the vector clock. Batches always carry the
// contiguous interval range (receiver.vc, sender.vc] per process (see the
// invariant comment in barrier.go), so advancing vc to the batch maximum
// never skips intervals.
func (nd *node) applyBatches(bs []noticeBatch) {
	for _, b := range bs {
		if b.proc == nd.id {
			continue // never accept notices about our own intervals
		}
		for _, iv := range b.intervals {
			if iv.interval <= nd.vc[b.proc] {
				continue // already known
			}
			nd.log[b.proc] = append(nd.log[b.proc], iv)
			for _, pg := range iv.pages {
				ps := &nd.pageMeta[pg]
				if iv.interval > ps.notice[b.proc] {
					ps.notice[b.proc] = iv.interval
				}
			}
			nd.vc[b.proc] = iv.interval
		}
	}
}

func (nd *node) String() string {
	return fmt.Sprintf("node%d(vc=%v,int=%d)", nd.id, nd.vc, nd.curInterval)
}
