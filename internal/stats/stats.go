// Package stats accumulates message and data-volume statistics for a
// simulated cluster run. The paper reports, for every application and
// version, the total number of messages and the total kilobytes of data
// exchanged during the timed portion of the execution (Tables 2 and 3);
// this package provides those totals broken down by traffic category so
// the harness can also explain *why* a version communicates.
package stats

import (
	"fmt"
	"strings"
)

// Kind classifies a message for accounting purposes.
type Kind uint8

const (
	// KindData is application payload carried by explicit message passing
	// (PVMe sends, XHPF shifts and broadcasts).
	KindData Kind = iota
	// KindBarrier is barrier arrival/departure traffic, including the
	// split arrival/departure operations of the improved compiler
	// interface (paper §2.3).
	KindBarrier
	// KindLock is lock acquire/forward/grant traffic.
	KindLock
	// KindDiffReq is a request for the diffs of a page.
	KindDiffReq
	// KindDiff is a reply carrying one or more diffs.
	KindDiff
	// KindPageReq is a request for a full page copy.
	KindPageReq
	// KindPage is a reply carrying a full page.
	KindPage
	// KindControl is miscellaneous runtime control traffic (fork-join
	// loop dispatch under the unimproved interface, XHPF bookkeeping).
	KindControl
	// KindShutdown is end-of-run teardown traffic. It is *excluded* from
	// the totals because the paper's counters stop at the final barrier.
	KindShutdown
	numKinds
)

var kindNames = [numKinds]string{
	"data", "barrier", "lock", "diffreq", "diff", "pagereq", "page",
	"control", "shutdown",
}

// String returns the lower-case category name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counted reports whether messages of this kind contribute to the
// Table 2/3 totals.
func (k Kind) Counted() bool { return k != KindShutdown }

// MaxNodes bounds the per-node queueing-delay accounting of the
// contention model. Nodes beyond the bound accumulate into the last
// slot (the simulator never runs that wide today).
const MaxNodes = 64

// QueueResource identifies the contention resource that bound a queued
// message: the resource whose busy-until time set the transfer's start.
type QueueResource uint8

const (
	// QueueOut is the sending node's outgoing NIC link.
	QueueOut QueueResource = iota
	// QueueIn is the receiving node's incoming NIC link.
	QueueIn
	// QueueBackplane is the shared switch backplane.
	QueueBackplane
	numQueueResources
)

var queueResourceNames = [numQueueResources]string{"out", "in", "backplane"}

// String returns the lower-case resource name.
func (r QueueResource) String() string {
	if int(r) < len(queueResourceNames) {
		return queueResourceNames[r]
	}
	return fmt.Sprintf("resource(%d)", uint8(r))
}

// NumQueueResources reports the number of binding resources.
func NumQueueResources() int { return int(numQueueResources) }

// AllQueueResources lists every binding resource in declaration order.
func AllQueueResources() []QueueResource {
	rs := make([]QueueResource, numQueueResources)
	for i := range rs {
		rs[i] = QueueResource(i)
	}
	return rs
}

// Stats holds per-kind message counts and byte totals, plus the
// contention model's per-node queueing-delay accounting. The zero value
// is ready to use. It is safe for single-threaded use only; the
// simulator's scheduler serializes all access during a run.
type Stats struct {
	Msgs  [numKinds]int64
	Bytes [numKinds]int64

	// QueueNanos is the virtual time messages spent waiting for a busy
	// NIC link or backplane before transmission, accumulated per
	// sending node. All zero when contention modeling is off.
	QueueNanos [MaxNodes]int64
	// QueuedMsgs counts the messages per sending node that waited at
	// all.
	QueuedMsgs [MaxNodes]int64
	// QueueResNanos splits each sending node's queueing delay by the
	// binding resource — the one whose busy-until time the transfer
	// actually waited on. A broadcast storm shows up on the sender's
	// out link; a gather's root congestion shows up on in links; an
	// undersized switch shows up on the backplane.
	QueueResNanos [MaxNodes][numQueueResources]int64
	// QueueKindNanos splits the total queueing delay by the message's
	// traffic category, locating which protocol activity queued.
	QueueKindNanos [numKinds]int64
}

// Record adds one message of kind k carrying the given number of bytes
// (payload plus header).
func (s *Stats) Record(k Kind, bytes int) {
	s.Msgs[k]++
	s.Bytes[k] += int64(bytes)
}

// RecordQueue adds contention queueing delay for one message of kind k
// sent by the given node, attributed to the binding resource res.
func (s *Stats) RecordQueue(node int, nanos int64, res QueueResource, k Kind) {
	if node < 0 {
		return
	}
	if node >= MaxNodes {
		node = MaxNodes - 1
	}
	s.QueueNanos[node] += nanos
	s.QueuedMsgs[node]++
	if res < numQueueResources {
		s.QueueResNanos[node][res] += nanos
	}
	if k < numKinds {
		s.QueueKindNanos[k] += nanos
	}
}

// QueueNanosOf returns the accumulated queueing delay of one node's
// outgoing traffic.
func (s *Stats) QueueNanosOf(node int) int64 {
	if node < 0 || node >= MaxNodes {
		return 0
	}
	return s.QueueNanos[node]
}

// TotalQueueNanos returns the queueing delay summed over all nodes.
func (s *Stats) TotalQueueNanos() int64 {
	var t int64
	for _, v := range s.QueueNanos {
		t += v
	}
	return t
}

// TotalQueuedMsgs returns the number of messages that waited for a busy
// link, summed over all nodes.
func (s *Stats) TotalQueuedMsgs() int64 {
	var t int64
	for _, v := range s.QueuedMsgs {
		t += v
	}
	return t
}

// QueueResNanosOf returns the queueing delay bound by one resource,
// summed over all sending nodes.
func (s *Stats) QueueResNanosOf(res QueueResource) int64 {
	if res >= numQueueResources {
		return 0
	}
	var t int64
	for n := 0; n < MaxNodes; n++ {
		t += s.QueueResNanos[n][res]
	}
	return t
}

// NodeQueueResNanos returns one node's queueing delay bound by one
// resource.
func (s *Stats) NodeQueueResNanos(node int, res QueueResource) int64 {
	if node < 0 || node >= MaxNodes || res >= numQueueResources {
		return 0
	}
	return s.QueueResNanos[node][res]
}

// QueueKindNanosOf returns the queueing delay accumulated by messages
// of one traffic category.
func (s *Stats) QueueKindNanosOf(k Kind) int64 {
	if k >= numKinds {
		return 0
	}
	return s.QueueKindNanos[k]
}

// Reset zeroes every counter. The harness calls this at the end of the
// warm-up iteration, mirroring the paper's practice of excluding the
// first iteration from measurement.
func (s *Stats) Reset() {
	*s = Stats{}
}

// TotalMsgs returns the number of counted messages.
func (s *Stats) TotalMsgs() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		if k.Counted() {
			t += s.Msgs[k]
		}
	}
	return t
}

// TotalBytes returns the counted data volume in bytes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		if k.Counted() {
			t += s.Bytes[k]
		}
	}
	return t
}

// TotalKB returns the counted data volume in kilobytes (1024 bytes), the
// unit used by Tables 2 and 3.
func (s *Stats) TotalKB() int64 { return s.TotalBytes() / 1024 }

// MsgsOf returns the message count for one category.
func (s *Stats) MsgsOf(k Kind) int64 { return s.Msgs[k] }

// BytesOf returns the byte count for one category.
func (s *Stats) BytesOf(k Kind) int64 { return s.Bytes[k] }

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	for k := Kind(0); k < numKinds; k++ {
		s.Msgs[k] += o.Msgs[k]
		s.Bytes[k] += o.Bytes[k]
	}
	for n := 0; n < MaxNodes; n++ {
		s.QueueNanos[n] += o.QueueNanos[n]
		s.QueuedMsgs[n] += o.QueuedMsgs[n]
		for r := QueueResource(0); r < numQueueResources; r++ {
			s.QueueResNanos[n][r] += o.QueueResNanos[n][r]
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		s.QueueKindNanos[k] += o.QueueKindNanos[k]
	}
}

// Sub subtracts o from s, counter by counter. The timed-region
// bookkeeping uses it to strip a warm-up baseline snapshot.
func (s *Stats) Sub(o *Stats) {
	for k := Kind(0); k < numKinds; k++ {
		s.Msgs[k] -= o.Msgs[k]
		s.Bytes[k] -= o.Bytes[k]
	}
	for n := 0; n < MaxNodes; n++ {
		s.QueueNanos[n] -= o.QueueNanos[n]
		s.QueuedMsgs[n] -= o.QueuedMsgs[n]
		for r := QueueResource(0); r < numQueueResources; r++ {
			s.QueueResNanos[n][r] -= o.QueueResNanos[n][r]
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		s.QueueKindNanos[k] -= o.QueueKindNanos[k]
	}
}

// String formats the non-zero categories, for debugging and reports.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d kb=%d", s.TotalMsgs(), s.TotalKB())
	for k := Kind(0); k < numKinds; k++ {
		if s.Msgs[k] != 0 {
			fmt.Fprintf(&b, " %s=%d/%dB", k, s.Msgs[k], s.Bytes[k])
		}
	}
	if q := s.TotalQueueNanos(); q != 0 {
		fmt.Fprintf(&b, " queued=%d/%dns", s.TotalQueuedMsgs(), q)
		for r := QueueResource(0); r < numQueueResources; r++ {
			if n := s.QueueResNanosOf(r); n != 0 {
				fmt.Fprintf(&b, " q.%s=%dns", r, n)
			}
		}
	}
	return b.String()
}

// NumKinds reports the number of defined categories (for table layouts).
func NumKinds() int { return int(numKinds) }

// AllKinds lists every category in declaration order.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}
