package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAndTotals(t *testing.T) {
	var s Stats
	s.Record(KindData, 100)
	s.Record(KindData, 200)
	s.Record(KindBarrier, 50)
	s.Record(KindShutdown, 999)

	if got := s.TotalMsgs(); got != 3 {
		t.Errorf("TotalMsgs = %d, want 3", got)
	}
	if got := s.TotalBytes(); got != 350 {
		t.Errorf("TotalBytes = %d, want 350", got)
	}
	if got := s.MsgsOf(KindData); got != 2 {
		t.Errorf("MsgsOf(data) = %d, want 2", got)
	}
	if got := s.BytesOf(KindBarrier); got != 50 {
		t.Errorf("BytesOf(barrier) = %d, want 50", got)
	}
}

func TestShutdownExcluded(t *testing.T) {
	if KindShutdown.Counted() {
		t.Error("shutdown traffic must not be counted")
	}
	for _, k := range AllKinds() {
		if k != KindShutdown && !k.Counted() {
			t.Errorf("kind %v should be counted", k)
		}
	}
}

func TestReset(t *testing.T) {
	var s Stats
	s.Record(KindDiff, 4096)
	s.Reset()
	if s.TotalMsgs() != 0 || s.TotalBytes() != 0 {
		t.Errorf("after Reset: %v", s.String())
	}
}

func TestTotalKB(t *testing.T) {
	var s Stats
	s.Record(KindPage, 4096)
	s.Record(KindPage, 4096)
	if got := s.TotalKB(); got != 8 {
		t.Errorf("TotalKB = %d, want 8", got)
	}
}

func TestAdd(t *testing.T) {
	var a, b Stats
	a.Record(KindData, 10)
	b.Record(KindData, 20)
	b.Record(KindLock, 5)
	a.Add(&b)
	if a.TotalMsgs() != 3 || a.TotalBytes() != 35 {
		t.Errorf("after Add: %s", a.String())
	}
}

func TestStringMentionsNonZeroKinds(t *testing.T) {
	var s Stats
	s.Record(KindDiffReq, 32)
	out := s.String()
	if !strings.Contains(out, "diffreq") {
		t.Errorf("String() = %q, want mention of diffreq", out)
	}
	if strings.Contains(out, "lock=") {
		t.Errorf("String() = %q mentions zero category", out)
	}
}

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		KindData: "data", KindBarrier: "barrier", KindLock: "lock",
		KindDiffReq: "diffreq", KindDiff: "diff", KindPageReq: "pagereq",
		KindPage: "page", KindControl: "control", KindShutdown: "shutdown",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind = %q", got)
	}
}

// Property: totals always equal the sum over counted kinds, regardless of
// the record sequence.
func TestTotalsConsistentProperty(t *testing.T) {
	f := func(events []uint16) bool {
		var s Stats
		for _, e := range events {
			k := Kind(e % uint16(NumKinds()))
			s.Record(k, int(e%4097))
		}
		var msgs, bytes int64
		for _, k := range AllKinds() {
			if k.Counted() {
				msgs += s.MsgsOf(k)
				bytes += s.BytesOf(k)
			}
		}
		return msgs == s.TotalMsgs() && bytes == s.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordQueueSplit(t *testing.T) {
	var s Stats
	s.RecordQueue(1, 100, QueueOut, KindData)
	s.RecordQueue(1, 40, QueueIn, KindDiff)
	s.RecordQueue(2, 60, QueueBackplane, KindData)
	if got := s.TotalQueueNanos(); got != 200 {
		t.Errorf("TotalQueueNanos = %d, want 200", got)
	}
	if got := s.TotalQueuedMsgs(); got != 3 {
		t.Errorf("TotalQueuedMsgs = %d, want 3", got)
	}
	if got := s.QueueResNanosOf(QueueOut); got != 100 {
		t.Errorf("QueueOut = %d, want 100", got)
	}
	if got := s.QueueResNanosOf(QueueIn); got != 40 {
		t.Errorf("QueueIn = %d, want 40", got)
	}
	if got := s.QueueResNanosOf(QueueBackplane); got != 60 {
		t.Errorf("QueueBackplane = %d, want 60", got)
	}
	if got := s.NodeQueueResNanos(1, QueueIn); got != 40 {
		t.Errorf("node 1 QueueIn = %d, want 40", got)
	}
	if got := s.QueueKindNanosOf(KindData); got != 160 {
		t.Errorf("KindData queue = %d, want 160", got)
	}
	if got := s.QueueKindNanosOf(KindDiff); got != 40 {
		t.Errorf("KindDiff queue = %d, want 40", got)
	}
	// The resource split and the kind split each cover the total.
	var byRes, byKind int64
	for _, r := range AllQueueResources() {
		byRes += s.QueueResNanosOf(r)
	}
	for _, k := range AllKinds() {
		byKind += s.QueueKindNanosOf(k)
	}
	if byRes != 200 || byKind != 200 {
		t.Errorf("splits cover %d (resource) / %d (kind), want 200 each", byRes, byKind)
	}

	// Add then Sub round-trips every new counter back to the original.
	var o Stats
	o.RecordQueue(1, 7, QueueOut, KindLock)
	snap := s
	s.Add(&o)
	s.Sub(&o)
	if s != snap {
		t.Error("Add/Sub did not round-trip the queue split counters")
	}
}

func TestQueueResourceNames(t *testing.T) {
	want := []string{"out", "in", "backplane"}
	rs := AllQueueResources()
	if len(rs) != len(want) || NumQueueResources() != len(want) {
		t.Fatalf("have %d resources, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.String() != want[i] {
			t.Errorf("resource %d = %q, want %q", i, r, want[i])
		}
	}
}
