package stats

import (
	"strings"
	"testing"
)

// TestKindOrderPinned pins the canonical traffic-category order and
// names. The order is wire format: the sweep records' queue_kind_ns
// keys, Stats.String()'s breakdown segments and the obs attribution
// buckets all build on it, so reordering or renaming a Kind is a
// breaking schema change — this table must be updated deliberately
// alongside the trajectory file.
func TestKindOrderPinned(t *testing.T) {
	want := []struct {
		kind Kind
		name string
	}{
		{KindData, "data"},
		{KindBarrier, "barrier"},
		{KindLock, "lock"},
		{KindDiffReq, "diffreq"},
		{KindDiff, "diff"},
		{KindPageReq, "pagereq"},
		{KindPage, "page"},
		{KindControl, "control"},
		{KindShutdown, "shutdown"},
	}
	if NumKinds() != len(want) {
		t.Fatalf("NumKinds() = %d, want %d — a new Kind must be added to this pinning table", NumKinds(), len(want))
	}
	all := AllKinds()
	for i, w := range want {
		if w.kind != Kind(i) {
			t.Errorf("position %d: %s declared out of canonical order", i, w.name)
		}
		if all[i] != w.kind {
			t.Errorf("AllKinds()[%d] = %v, want %v", i, all[i], w.kind)
		}
		if got := w.kind.String(); got != w.name {
			t.Errorf("Kind(%d).String() = %q, want %q", i, got, w.name)
		}
	}
}

// TestStatsStringCanonicalOrder pins that Stats.String() renders its
// per-kind segments in declaration order regardless of recording
// order, so log lines and golden outputs are stable.
func TestStatsStringCanonicalOrder(t *testing.T) {
	var s Stats
	// Record in scrambled order; rendering must come out canonical.
	s.Record(KindPage, 100)
	s.Record(KindBarrier, 50)
	s.Record(KindData, 200)
	s.Record(KindDiff, 70)
	out := s.String()
	idx := func(seg string) int {
		i := strings.Index(out, " "+seg+"=")
		if i < 0 {
			t.Fatalf("segment %q missing from %q", seg, out)
		}
		return i
	}
	if !(idx("data") < idx("barrier") && idx("barrier") < idx("diff") && idx("diff") < idx("page")) {
		t.Errorf("segments out of canonical order: %q", out)
	}
}
