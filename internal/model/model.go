// Package model holds the virtual-machine cost model: the constants that
// convert protocol events (messages, page faults, twins, diffs, packing)
// into virtual time on the simulated IBM SP/2.
//
// The paper's testbed was an 8-node SP/2 (thin nodes, 64 KB data cache,
// 128 MB memory) connected by the high-performance two-level crossbar
// switch, with TreadMarks 0.10.1 and XHPF over the user-level MPL library
// and the hand-coded message-passing programs over PVMe. None of that
// hardware is available, so these constants are *calibrated*, not
// measured: they are chosen in the mid-1990s ballpark (tens of
// microseconds of per-message software overhead, tens of MB/s of link
// bandwidth, a millisecond-class remote page fetch) and then tuned so the
// 1-processor virtual times land near Table 1 and the 8-processor
// speedups land near Figures 1 and 2. EXPERIMENTS.md records the
// resulting paper-vs-measured numbers. The *counts* of messages and bytes
// are not modeled at all — they fall out of the real protocol
// implementations — so the shape of every comparison is insensitive to
// moderate changes in these constants (see the sensitivity benchmarks).
package model

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// PageSize is the DSM page size in bytes, matching AIX's 4 KB pages.
const PageSize = 4096

// Costs describes one machine configuration.
type Costs struct {
	// Interconnect.
	Latency      sim.Time // one-way wire latency
	NanosPerByte float64  // inverse link bandwidth
	SendOverhead sim.Time // per-message sender CPU cost
	RecvOverhead sim.Time // per-message receiver CPU cost
	HeaderBytes  int      // per-message envelope

	// Contention (zero values: the infinite-capacity interconnect all
	// pre-contention experiments ran on). SerialNIC gives each node one
	// outgoing and one incoming link that transmit messages
	// back-to-back, FIFO per link, so concurrent sends through one
	// adapter queue instead of overlapping. BackplaneWays, when
	// positive, bounds the switch backplane to that many concurrent
	// full-rate transfers. See internal/sim's contention model.
	SerialNIC     bool
	BackplaneWays int

	// Trace, when non-nil, enables observability: the simulator and the
	// protocol layers append typed events (waits, queueing spans, fault
	// repairs, barrier/lock sync, home migrations) to it as the run
	// executes. Emission never advances virtual time, so enabling a
	// trace leaves every virtual time, message count and byte volume
	// bit-identical. Each run needs its own instance (the event buffer
	// is single-run state).
	Trace *obs.Trace

	// FIFOPairs opts in to non-overtaking delivery within each
	// (src, dst) process pair, as the real PVMe/MPL transports
	// guaranteed. Off by default: the infinite-capacity interconnect
	// historically let a small message overtake a larger one in the
	// same pair, and the golden virtual times pin that default.
	FIFOPairs bool

	// Message-passing library (PVMe/XHPF) data handling: packing data
	// into and out of transmit buffers costs CPU per byte. PVM-family
	// libraries were notorious for this; it is what keeps the large
	// message-passing transfers (e.g. the 3-D FFT transpose) from being
	// free even with few messages. The XHPF runtime pays an additional
	// per-byte cost for gathering and scattering array sections through
	// its distributed-array descriptors.
	PackNanosPerByte    float64
	UnpackNanosPerByte  float64
	SectionNanosPerByte float64

	// DSM (TreadMarks) costs.
	ReadFault        sim.Time // access-check miss servicing, requester side
	WriteFault       sim.Time // write detection (mprotect trap equivalent)
	TwinPage         sim.Time // copy a page to its twin
	DiffCreate       sim.Time // fixed cost to scan one page against its twin
	DiffPerByte      float64  // per changed byte, encode side
	DiffApply        sim.Time // fixed cost to apply one diff
	ApplyPerByte     float64  // per changed byte, apply side
	PageCopy         sim.Time // copy a full page into place
	HandlerWake      sim.Time // request-server dispatch (SIGIO handler entry)
	BarrierWork      sim.Time // manager bookkeeping per barrier
	LockWork         sim.Time // manager bookkeeping per lock transfer
	WriteNoticeBytes int      // wire size of one write notice
	IntervalBytes    int      // wire size of one interval record header
}

// SP2 returns the calibrated cost model used for all paper-reproduction
// experiments.
func SP2() Costs {
	return Costs{
		Latency:      60 * sim.Microsecond,
		NanosPerByte: 28.6, // ~35 MB/s user-level MPL bandwidth
		SendOverhead: 20 * sim.Microsecond,
		RecvOverhead: 20 * sim.Microsecond,
		HeaderBytes:  32,

		PackNanosPerByte:    90,
		UnpackNanosPerByte:  90,
		SectionNanosPerByte: 60,

		ReadFault:    150 * sim.Microsecond, // AIX signal delivery + handler entry
		WriteFault:   5 * sim.Microsecond,
		TwinPage:     4 * sim.Microsecond,
		DiffCreate:   25 * sim.Microsecond,
		DiffPerByte:  120,
		DiffApply:    10 * sim.Microsecond,
		ApplyPerByte: 120,
		PageCopy:     20 * sim.Microsecond,
		HandlerWake:  200 * sim.Microsecond, // request interrupt service
		BarrierWork:  10 * sim.Microsecond,
		LockWork:     5 * sim.Microsecond,

		WriteNoticeBytes: 8,
		IntervalBytes:    16,
	}
}

// WithContention applies the shared contention encoding to an existing
// calibration: 0 turns contention off, -1 serializes the NICs over an
// ideal backplane (the SP/2's micro-channel adapters without a switch
// bound), and N > 0 additionally bounds the backplane to N concurrent
// full-rate transfers. The paper attributes XHPF's collapse on the
// irregular applications to exactly the broadcast/gather storms the
// contended calibration makes expensive. Both CLIs' -contention flags
// and the harness sweep use this one encoding; other negative values
// are invalid (the CLIs reject them).
func (c Costs) WithContention(ways int) Costs {
	c.SerialNIC = ways != 0
	c.BackplaneWays = 0
	if ways > 0 {
		c.BackplaneWays = ways
	}
	return c
}

// Contention reads back the shared contention encoding WithContention
// applies: 0 when contention is off, -1 for serial NICs over an ideal
// backplane, N > 0 for serial NICs plus an N-way backplane bound.
func (c Costs) Contention() int {
	if !c.SerialNIC {
		return 0
	}
	if c.BackplaneWays > 0 {
		return c.BackplaneWays
	}
	return -1
}

// WithFIFOPairs returns the calibration with non-overtaking
// (src, dst)-pair delivery switched on or off.
func (c Costs) WithFIFOPairs(on bool) Costs {
	c.FIFOPairs = on
	return c
}

// SimConfig renders the interconnect part of the cost model as a
// simulator configuration for n processes, each on its own node.
func (c Costs) SimConfig(procs int) sim.Config {
	return c.SimConfigNodes(procs, procs)
}

// SimConfigNodes renders the interconnect model for procs simulated
// processes belonging to nodes physical nodes. Runtimes that pair an
// application process with a request-server process per node (the
// TreadMarks systems) pass procs = 2*nodes so both share the node's
// NIC under the contention model.
func (c Costs) SimConfigNodes(procs, nodes int) sim.Config {
	cfg := sim.Config{
		Procs:         procs,
		Latency:       c.Latency,
		NanosPerByte:  c.NanosPerByte,
		SendOverhead:  c.SendOverhead,
		RecvOverhead:  c.RecvOverhead,
		HeaderBytes:   c.HeaderBytes,
		BackplaneWays: c.BackplaneWays,
		FIFOPairs:     c.FIFOPairs,
		Trace:         c.Trace,
	}
	if c.SerialNIC {
		cfg.Nodes = nodes
	}
	// Every runtime builds its simulator through here, so this is the
	// one place the trace learns the machine shape (procs = 2*nodes
	// marks the upper half as request-server processes).
	c.Trace.SetTopology(procs, nodes)
	return cfg
}

// PackCost returns the sender-side CPU time to pack n bytes for
// transmission through the message-passing library.
func (c Costs) PackCost(n int) sim.Time {
	return sim.Time(float64(n) * c.PackNanosPerByte)
}

// UnpackCost returns the receiver-side CPU time to unpack n bytes.
func (c Costs) UnpackCost(n int) sim.Time {
	return sim.Time(float64(n) * c.UnpackNanosPerByte)
}

// SectionCost returns the XHPF runtime's descriptor-driven gather or
// scatter cost for an n-byte array section.
func (c Costs) SectionCost(n int) sim.Time {
	return sim.Time(float64(n) * c.SectionNanosPerByte)
}

// DiffCreateCost returns the CPU time to scan a page and encode a diff of
// changed bytes.
func (c Costs) DiffCreateCost(changed int) sim.Time {
	return c.DiffCreate + sim.Time(float64(changed)*c.DiffPerByte)
}

// DiffApplyCost returns the CPU time to apply a diff of changed bytes.
func (c Costs) DiffApplyCost(changed int) sim.Time {
	return c.DiffApply + sim.Time(float64(changed)*c.ApplyPerByte)
}

// AppCosts is the per-application compute calibration: the virtual CPU
// time charged per innermost-loop element update. Chosen so the
// 1-processor runs land near Table 1's sequential times (MGS 56.4 s,
// 3-D FFT 37.7 s, IGrid 42.6 s, NBF 63.9 s). The Jacobi and Shallow rows
// of Table 1 are illegible in our source scan; their costs target the
// same ~10-40 Mflop/s sustained rate as the legible rows (see
// EXPERIMENTS.md).
type AppCosts struct {
	JacobiUpdate  sim.Time // 4-point stencil update, per element
	JacobiCopy    sim.Time // scratch-to-data copy, per element
	ShallowUpdate sim.Time // per element per array updated in a main loop
	ShallowCopy   sim.Time // wrap-around copy, per element
	MGSNormalize  sim.Time // per element of the pivot vector
	MGSOrtho      sim.Time // per element of dot+subtract update
	FFTButterfly  sim.Time // per complex butterfly
	FFTTouch      sim.Time // per element init/normalize/checksum work
	IGridUpdate   sim.Time // 9-point indirect stencil, per element
	IGridReduce   sim.Time // per element of the final max/min/sum
	NBFPair       sim.Time // per partner interaction
	NBFUpdate     sim.Time // per molecule coordinate/force update
	SORUpdate     sim.Time // red-black SOR 5-point relaxation, per point
}

// DefaultAppCosts returns the Table 1 calibration.
func DefaultAppCosts() AppCosts {
	return AppCosts{
		JacobiUpdate:  130,
		JacobiCopy:    45,
		ShallowUpdate: 160,
		ShallowCopy:   60,
		MGSNormalize:  110,
		MGSOrtho:      104,
		FFTButterfly:  650,
		FFTTouch:      90,
		IGridUpdate:   8900,
		IGridReduce:   120,
		NBFPair:       1030,
		NBFUpdate:     220,
		SORUpdate:     150,
	}
}
