package model

import (
	"testing"

	"repro/internal/sim"
)

func TestSP2Sane(t *testing.T) {
	c := SP2()
	if c.Latency <= 0 || c.NanosPerByte <= 0 {
		t.Fatal("interconnect costs must be positive")
	}
	if c.ReadFault <= 0 || c.HandlerWake <= 0 {
		t.Fatal("DSM costs must be positive")
	}
	// A remote 4 KB page fetch must land in the millisecond class the
	// mid-90s literature reports for SP/2-era software DSM.
	fetch := c.ReadFault + c.SendOverhead + c.Latency +
		sim.Time(float64(64)*c.NanosPerByte) + // request
		c.HandlerWake + c.DiffCreateCost(PageSize) +
		c.SendOverhead + c.Latency + sim.Time(float64(PageSize)*c.NanosPerByte) +
		c.RecvOverhead + c.DiffApplyCost(PageSize)
	if fetch < 500*sim.Microsecond || fetch > 5*sim.Millisecond {
		t.Errorf("modeled page fetch = %v, want 0.5ms..5ms", fetch)
	}
}

func TestSimConfig(t *testing.T) {
	c := SP2()
	cfg := c.SimConfig(16)
	if cfg.Procs != 16 || cfg.Latency != c.Latency || cfg.HeaderBytes != c.HeaderBytes {
		t.Errorf("SimConfig mismatch: %+v", cfg)
	}
}

func TestCostHelpers(t *testing.T) {
	c := SP2()
	if c.PackCost(0) != 0 || c.UnpackCost(0) != 0 || c.SectionCost(0) != 0 {
		t.Error("zero bytes must cost zero")
	}
	if c.PackCost(1000) <= 0 {
		t.Error("pack cost must be positive")
	}
	if c.DiffCreateCost(0) != c.DiffCreate {
		t.Error("empty diff must cost the fixed scan only")
	}
	if c.DiffCreateCost(4096) <= c.DiffCreate {
		t.Error("changed bytes must add cost")
	}
	if c.DiffApplyCost(100) <= c.DiffApply {
		t.Error("apply per-byte cost missing")
	}
}

func TestAppCostsPositive(t *testing.T) {
	a := DefaultAppCosts()
	for name, v := range map[string]sim.Time{
		"JacobiUpdate": a.JacobiUpdate, "JacobiCopy": a.JacobiCopy,
		"ShallowUpdate": a.ShallowUpdate, "ShallowCopy": a.ShallowCopy,
		"MGSNormalize": a.MGSNormalize, "MGSOrtho": a.MGSOrtho,
		"FFTButterfly": a.FFTButterfly, "FFTTouch": a.FFTTouch,
		"IGridUpdate": a.IGridUpdate, "IGridReduce": a.IGridReduce,
		"NBFPair": a.NBFPair, "NBFUpdate": a.NBFUpdate,
	} {
		if v <= 0 {
			t.Errorf("%s must be positive", name)
		}
	}
}

// TestTable1Calibration verifies the per-application element costs put
// the sequential virtual times in the right neighborhood of Table 1
// analytically (the full runs are covered by the harness).
func TestTable1Calibration(t *testing.T) {
	a := DefaultAppCosts()
	// MGS: ~N^3/2 orthogonalization element updates.
	n := 1024.0
	mgs := (n * n * n / 2 * float64(a.MGSOrtho)) / 1e9
	if mgs < 45 || mgs > 70 {
		t.Errorf("MGS calibration gives %.1fs, want ~56.4s", mgs)
	}
	// IGrid: 500x500 interior, 20 iterations.
	ig := (498 * 498 * 20 * float64(a.IGridUpdate)) / 1e9
	if ig < 35 || ig > 52 {
		t.Errorf("IGrid calibration gives %.1fs, want ~42.6s", ig)
	}
	// NBF: 32K molecules x ~100 partners x 20 iterations.
	nbf := (32768 * 100 * 20 * float64(a.NBFPair)) / 1e9
	if nbf < 55 || nbf > 75 {
		t.Errorf("NBF calibration gives %.1fs, want ~63.9s", nbf)
	}
}
