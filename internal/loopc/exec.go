package loopc

import (
	"math"

	"repro/internal/apps/apputil"
)

// frame is the execution context a compiled nest runs against: the
// current point, the size parameter, the array storage (absolute n*n
// row-major indexing, whatever backs it — tmk region slices on the DSM,
// replicated slices under message passing) and the scalar accumulators.
type frame struct {
	n    int
	i, j int
	arr  [][]float32
	scal []float64
}

// valueFn evaluates a float32 expression at the frame's current point.
type valueFn func(fr *frame) float32

// indexFn resolves a flattened element index at the current point.
type indexFn func(fr *frame) int

// compiler carries the name resolution for one nest.
type compiler struct {
	rowVar, colVar string
	arrays         map[string]int
	scalars        map[string]int
}

func (c *compiler) index(a Access) indexFn {
	row := c.axis(a.Row)
	col := c.axis(a.Col)
	return func(fr *frame) int { return row(fr)*fr.n + col(fr) }
}

func (c *compiler) axis(ix Index) func(fr *frame) int {
	off := ix.Off
	switch ix.Var {
	case c.rowVar:
		return func(fr *frame) int { return fr.i + off }
	case c.colVar:
		return func(fr *frame) int { return fr.j + off }
	}
	return func(fr *frame) int { return off }
}

func (c *compiler) expr(e Expr) valueFn {
	switch e := e.(type) {
	case Lit:
		v := float32(e)
		return func(*frame) float32 { return v }
	case Ref:
		slot := c.arrays[e.Array]
		idx := c.index(Access(e))
		return func(fr *frame) float32 { return fr.arr[slot][idx(fr)] }
	case *Bin:
		l, r := c.expr(e.L), c.expr(e.R)
		switch e.Op {
		case '+':
			return func(fr *frame) float32 { return l(fr) + r(fr) }
		case '-':
			return func(fr *frame) float32 { return l(fr) - r(fr) }
		case '*':
			return func(fr *frame) float32 { return l(fr) * r(fr) }
		case '/':
			return func(fr *frame) float32 { return l(fr) / r(fr) }
		}
	}
	panic("loopc: unknown expression node")
}

// execStmt is one compiled statement.
type execStmt struct {
	// Array assignment: store RHS at LHS.
	lhsSlot int
	lhsIdx  indexFn
	// Reduction: accumulate RHS into scalar redSlot with op.
	redSlot int // -1 for array assignments
	op      ReduceOp
	rhs     valueFn
}

// execNest is a nest compiled to closures.
type execNest struct {
	nst   *Nest
	stmts []execStmt
}

// compileNest compiles a nest against a program's name space.
func compileNest(p *Program, nst *Nest) *execNest {
	c := &compiler{
		rowVar:  nst.Row.Var,
		colVar:  nst.Col.Var,
		arrays:  p.arrayIndex(),
		scalars: p.scalarIndex(),
	}
	en := &execNest{nst: nst}
	for _, s := range nst.Stmts {
		es := execStmt{redSlot: -1, rhs: c.expr(s.RHS)}
		if s.ReduceInto != "" {
			es.redSlot = c.scalars[s.ReduceInto]
			es.op = s.Op
		} else {
			es.lhsSlot = c.arrays[s.LHS.Array]
			es.lhsIdx = c.index(s.LHS)
		}
		en.stmts = append(en.stmts, es)
	}
	return en
}

// runRows executes the nest body for rows [rlo, rhi) of its iteration
// space, in ascending (row, col) order, and returns the number of
// points executed (guarded points that were skipped are not counted) —
// the backends charge PointCost per executed point, exactly as the
// hand-coded versions do.
func (en *execNest) runRows(fr *frame, rlo, rhi int) int {
	jlo := en.nst.Col.Lo.Eval(fr.n)
	jhi := en.nst.Col.Hi.Eval(fr.n)
	rem := -1
	if en.nst.Guard != nil {
		rem = mod2(en.nst.Guard.Rem)
	}
	count := 0
	for i := rlo; i < rhi; i++ {
		fr.i = i
		for j := jlo; j < jhi; j++ {
			if rem >= 0 && (i+j)&1 != rem {
				continue
			}
			fr.j = j
			for k := range en.stmts {
				es := &en.stmts[k]
				v := es.rhs(fr)
				if es.redSlot < 0 {
					fr.arr[es.lhsSlot][es.lhsIdx(fr)] = v
				} else if es.op == ReduceSum {
					fr.scal[es.redSlot] += float64(v)
				} else if float64(v) > fr.scal[es.redSlot] {
					fr.scal[es.redSlot] = float64(v)
				}
			}
			count++
		}
	}
	return count
}

// identity returns the reduction identity for a scalar, derived from
// the first statement that reduces into it (Validate guarantees all
// statements use one op per scalar).
func identity(p *Program, slot int) float64 {
	name := p.Scalars[slot]
	for _, nst := range p.Nests {
		for _, s := range nst.Stmts {
			if s.ReduceInto == name && s.Op == ReduceMax {
				return math.Inf(-1)
			}
		}
	}
	return 0
}

// scalarOp returns the combining operator of a scalar.
func scalarOp(p *Program, slot int) ReduceOp {
	name := p.Scalars[slot]
	for _, nst := range p.Nests {
		for _, s := range nst.Stmts {
			if s.ReduceInto == name {
				return s.Op
			}
		}
	}
	return ReduceSum
}

// combine applies a reduction operator in float64.
func combine(op ReduceOp, a, b float64) float64 {
	if op == ReduceMax {
		return math.Max(a, b)
	}
	return a + b
}

// resetScalars sets every scalar to its identity (start of iteration).
func resetScalars(p *Program, scal []float64) {
	for k := range scal {
		scal[k] = identity(p, k)
	}
}

// checksum is the shared checksum convention of compiled programs: the
// float64 index-order sum of the result array plus the final scalar
// values in declaration order. Programs without scalars reduce to
// apputil.Sum64 of the result array — the same convention every
// hand-coded version uses, which is what makes hand-vs-generated
// checksums directly comparable.
func checksum(p *Program, result []float32, n int, scal []float64) float64 {
	s := apputil.Sum64(result[:n*n])
	for _, v := range scal {
		s += v
	}
	return s
}

// Reference executes the program sequentially — single copies of the
// arrays, no distribution — for iters iterations at size n. It is the
// semantic ground truth the backend tests compare against.
func Reference(p *Program, n, iters int) (arrays [][]float32, scalars []float64, sum float64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	arrays = make([][]float32, len(p.Arrays))
	for k, a := range p.Arrays {
		arrays[k] = make([]float32, n*n)
		if a.Init != nil {
			fillInit(arrays[k], a.Init, n)
		}
	}
	scalars = make([]float64, len(p.Scalars))
	fr := &frame{n: n, arr: arrays, scal: scalars}
	ens := make([]*execNest, len(p.Nests))
	for k, nst := range p.Nests {
		ens[k] = compileNest(p, nst)
	}
	for it := 0; it < iters; it++ {
		resetScalars(p, scalars)
		for _, en := range ens {
			en.runRows(fr, en.nst.Row.Lo.Eval(n), en.nst.Row.Hi.Eval(n))
		}
	}
	res := arrays[p.arrayIndex()[p.Result]]
	return arrays, scalars, checksum(p, res, n, scalars)
}

// fillInit fills an n×n array from an element initializer.
func fillInit(dst []float32, init func(i, j, n int) float32, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[i*n+j] = init(i, j, n)
		}
	}
}

// clampRow clamps a row index to [0, n].
func clampRow(r, n int) int {
	if r < 0 {
		return 0
	}
	if r > n {
		return n
	}
	return r
}
