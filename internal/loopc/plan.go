package loopc

import "sort"

// Step is the execution plan for one nest: how it runs and what
// communication the backend must insert before it.
type Step struct {
	Info *NestInfo

	// Parallel nests: BLOCK row distribution over [Row.Lo, Row.Hi).
	Parallel bool

	// Halo lists, in array-declaration order, the arrays a parallel
	// nest reads beyond its own rows, with the exchange width in rows —
	// the maximum absolute row dependence distance of the reads.
	Halo []HaloNeed

	// Bcast lists, in array-declaration order, the arrays a serial nest
	// reads that some nest writes: under message passing the replicated
	// copies must be made current before replicated execution.
	Bcast []string

	// ReadRange gives, per read array, the row-offset window
	// [MinRowOff, MaxRowOff] a parallel slice [lo,hi) must validate:
	// rows [lo+Min, hi+Max), clamped to the array.
	ReadRange map[string][2]int

	// FullRead marks read arrays whose rows cannot be derived from the
	// slice (a non-row row index; legal only for never-written arrays):
	// the DSM backend must validate the whole region. The
	// message-passing backend's replicated copies cover them by
	// construction.
	FullRead map[string]bool
}

// HaloNeed is one halo exchange: array and width in rows.
type HaloNeed struct {
	Array string
	Width int
}

// Plan runs the analyzer and the distribution pass: BLOCK row
// partitions for every DOALL/reduction nest, halo widths from the
// dependence distances, broadcasts for the replicated reads of serial
// nests.
func Plan(p *Program) ([]*Step, error) {
	infos, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	written := map[string]bool{}
	for _, info := range infos {
		for name, u := range info.Uses {
			if u.Written {
				written[name] = true
			}
		}
	}
	declOrder := p.arrayIndex()
	steps := make([]*Step, len(infos))
	for i, info := range infos {
		st := &Step{Info: info, ReadRange: map[string][2]int{}, FullRead: map[string]bool{}}
		steps[i] = st
		if info.Class == Serial {
			for name, u := range info.Uses {
				if u.Read && written[name] {
					st.Bcast = append(st.Bcast, name)
				}
			}
			sort.Slice(st.Bcast, func(a, b int) bool {
				return declOrder[st.Bcast[a]] < declOrder[st.Bcast[b]]
			})
			continue
		}
		st.Parallel = true
		for name, u := range info.Uses {
			if !u.Read {
				continue
			}
			st.ReadRange[name] = [2]int{u.MinRowOff, u.MaxRowOff}
			if u.NonRowRead {
				st.FullRead[name] = true
			}
			w := -u.MinRowOff
			if u.MaxRowOff > w {
				w = u.MaxRowOff
			}
			if w > 0 {
				st.Halo = append(st.Halo, HaloNeed{Array: name, Width: w})
			}
		}
		sort.Slice(st.Halo, func(a, b int) bool {
			return declOrder[st.Halo[a].Array] < declOrder[st.Halo[b].Array]
		})
	}
	return steps, nil
}
