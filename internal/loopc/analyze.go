package loopc

import "fmt"

// Class is the analyzer's verdict on a nest's row loop — the loop the
// backends distribute.
type Class int

const (
	// DOALL: no row-carried dependence; iterations may run in parallel.
	DOALL Class = iota
	// Reduction: DOALL except for recognized scalar reductions, which
	// the backends lower to combining trees.
	Reduction
	// Serial: a row-carried or unanalyzable dependence; the nest runs
	// sequentially (master-only on the DSM, replicated under message
	// passing).
	Serial
)

func (c Class) String() string {
	switch c {
	case DOALL:
		return "DOALL"
	case Reduction:
		return "reduction"
	}
	return "serial"
}

// Dep is one dependence the analyzer tested: a write paired with
// another access to the same array inside one nest. Dist is the
// distance vector (row, col) when both accesses are analyzable;
// Analyzable is false otherwise (mismatched or constant index vars).
// Refuted dependences are disproved by the nest's parity guard: the
// write and the access touch elements of different (row+col) parity.
// WriteStmt and OtherStmt are the statement indexes of the two accesses
// within the nest, so diagnostics name the offending statements.
type Dep struct {
	Array      string
	Dist       [2]int
	Analyzable bool
	Refuted    bool
	WriteStmt  int
	OtherStmt  int
}

// Carried reports whether the dependence constrains row parallelism:
// unanalyzable, or a nonzero row distance, unless parity-refuted.
func (d Dep) Carried() bool {
	if d.Refuted {
		return false
	}
	return !d.Analyzable || d.Dist[0] != 0
}

// ArrayUse summarizes how a nest touches one array.
type ArrayUse struct {
	Read, Written        bool
	MinRowOff, MaxRowOff int // over row-var-matched reads
	// NonRowRead marks a read whose row index is not the row loop var
	// (a constant row, or the column var). Legal in a parallel nest
	// only for never-written arrays, but the rows it touches are
	// unrelated to the executing slice, so the whole array must be
	// validated on the DSM.
	NonRowRead bool
}

// NestInfo is the analysis result for one nest.
type NestInfo struct {
	Nest    *Nest
	Class   Class
	Why     string // Serial only: the disqualifying reason
	WhyStmt int    // Serial only: index of the offending statement (-1 otherwise)
	Deps    []Dep
	Uses    map[string]*ArrayUse
	Reduces []*Stmt // the nest's reduction statements
}

// mod2 is the nonnegative remainder of x by 2.
func mod2(x int) int { return ((x % 2) + 2) % 2 }

// analyzeNest classifies one nest. writtenAnywhere marks arrays any
// nest of the program writes (reads of those through unanalyzable row
// indexes cannot be satisfied from a replicated copy, so they serialize
// the nest).
func analyzeNest(nst *Nest, writtenAnywhere map[string]bool) *NestInfo {
	info := &NestInfo{Nest: nst, WhyStmt: -1, Uses: map[string]*ArrayUse{}}
	use := func(name string) *ArrayUse {
		u := info.Uses[name]
		if u == nil {
			u = &ArrayUse{}
			info.Uses[name] = u
		}
		return u
	}

	// Collect the nest's writes and reads, remembering which statement
	// each access came from so serialization reasons are self-describing
	// (a minimized fuzz repro names the exact offending statement).
	type acc struct {
		a     Access
		write bool
		stmt  int
	}
	var accs []acc
	serialize := func(stmt int, why string) {
		if info.Class != Serial {
			info.Class = Serial
			info.Why = fmt.Sprintf("stmt %d: %s", stmt, why)
			info.WhyStmt = stmt
		}
	}
	for si, s := range nst.Stmts {
		if s.ReduceInto != "" {
			info.Reduces = append(info.Reduces, s)
		} else {
			accs = append(accs, acc{s.LHS, true, si})
			u := use(s.LHS.Array)
			u.Written = true
			// Owner-computes needs the written row to be the iteration's
			// own row.
			if s.LHS.Row.Var != nst.Row.Var || s.LHS.Row.Off != 0 {
				serialize(si, fmt.Sprintf("write %s[%s%+d] not aligned with the row loop",
					s.LHS.Array, s.LHS.Row.Var, s.LHS.Row.Off))
			}
		}
		s.RHS.walk(func(a Access) {
			accs = append(accs, acc{a, false, si})
			u := use(a.Array)
			if a.Row.Var == nst.Row.Var {
				if !u.Read || a.Row.Off < u.MinRowOff {
					u.MinRowOff = a.Row.Off
				}
				if !u.Read || a.Row.Off > u.MaxRowOff {
					u.MaxRowOff = a.Row.Off
				}
			} else {
				u.NonRowRead = true
				if writtenAnywhere[a.Array] {
					// A replicated/owner copy cannot serve this read.
					serialize(si, fmt.Sprintf("read %s through non-row index %q", a.Array, a.Row.Var))
				}
			}
			u.Read = true
		})
	}

	// Pairwise dependence test: every write against every access of the
	// same array (both orders are covered because the pair is symmetric
	// for DOALL purposes — any row-carried dependence disqualifies).
	analyzable := func(a Access) bool {
		return a.Row.Var == nst.Row.Var && a.Col.Var == nst.Col.Var
	}
	for _, w := range accs {
		if !w.write {
			continue
		}
		for _, a := range accs {
			if a.a.Array != w.a.Array || (a.write && a.a == w.a) {
				continue
			}
			d := Dep{Array: w.a.Array, WriteStmt: w.stmt, OtherStmt: a.stmt}
			if analyzable(w.a) && analyzable(a.a) {
				d.Analyzable = true
				d.Dist = [2]int{w.a.Row.Off - a.a.Row.Off, w.a.Col.Off - a.a.Col.Off}
				if nst.Guard != nil {
					// Under the guard, iteration parity (row+col) is fixed,
					// so the element parities the two accesses touch are
					// fixed too; different parities never alias.
					pw := mod2(nst.Guard.Rem + w.a.Row.Off + w.a.Col.Off)
					pa := mod2(nst.Guard.Rem + a.a.Row.Off + a.a.Col.Off)
					d.Refuted = pw != pa
				}
			}
			info.Deps = append(info.Deps, d)
			if d.Carried() {
				serialize(w.stmt, fmt.Sprintf("row-carried dependence on %s against stmt %d (distance %v)",
					d.Array, a.stmt, d.Dist))
			}
		}
	}

	if info.Class != Serial && len(info.Reduces) > 0 {
		info.Class = Reduction
	}
	return info
}

// Analyze validates a program and classifies every nest.
func Analyze(p *Program) ([]*NestInfo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	written := map[string]bool{}
	for _, nst := range p.Nests {
		for _, s := range nst.Stmts {
			if s.ReduceInto == "" {
				written[s.LHS.Array] = true
			}
		}
	}
	infos := make([]*NestInfo, len(p.Nests))
	for i, nst := range p.Nests {
		infos[i] = analyzeNest(nst, written)
	}
	return infos, nil
}
