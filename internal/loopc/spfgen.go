package loopc

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/spf"
	"repro/internal/tmk"
)

// readSpan is one array's read window for a parallel slice: rows
// [lo+min, hi+max), clamped to the array; full means the whole region
// (reads whose rows do not follow the slice).
type readSpan struct {
	slot     int
	min, max int
	full     bool
}

// spfPlan is one nest lowered for the fork-join runtime.
type spfPlan struct {
	step     *Step
	en       *execNest
	loop     int // registered subroutine index (parallel nests)
	reads    []readSpan
	writes   []int // written slots, declaration order
	redSlots []int // scalar slots the nest reduces into
}

// lowerUses computes the declaration-order read spans, write slots and
// reduction slots of a step (shared by both backends).
func lowerUses(p *Program, st *Step) (reads []readSpan, writes, redSlots []int) {
	idx := p.arrayIndex()
	for slot, a := range p.Arrays {
		u := st.Info.Uses[a.Name]
		if u == nil {
			continue
		}
		if u.Read {
			rr := st.ReadRange[a.Name]
			reads = append(reads, readSpan{
				slot: idx[a.Name], min: rr[0], max: rr[1],
				full: st.FullRead[a.Name],
			})
		}
		if u.Written {
			writes = append(writes, slot)
		}
	}
	sidx := p.scalarIndex()
	for _, s := range st.Info.Reduces {
		slot := sidx[s.ReduceInto]
		seen := false
		for _, have := range redSlots {
			if have == slot {
				seen = true
			}
		}
		if !seen {
			redSlots = append(redSlots, slot)
		}
	}
	return reads, writes, redSlots
}

// RunSPF compiles the program for the SPF fork-join DSM runtime and
// measures it under the standard protocol (warm-up exclusion, timed
// region) — the "spf-gen" application version. The lowering is exactly
// what the mechanical compiler model of package spf prescribes: every
// array touched by a parallel loop lives in shared memory, every
// parallel nest is an encapsulated subroutine dispatched with
// ParallelDo under BLOCK scheduling, scalar reductions go through
// lock-protected shared slots, and serial nests run on the master.
func RunSPF(app string, v core.Version, cfg core.Config, p *Program) (core.Result, error) {
	steps, err := Plan(p)
	if err != nil {
		return core.Result{}, err
	}
	n := cfg.N1
	return apputil.RunSPF(app, v, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		regs := make([]*tmk.Region[float32], len(p.Arrays))
		for k, a := range p.Arrays {
			regs[k] = tmk.Alloc[float32](tm, a.Name, n*n)
		}
		reds := make([]*spf.Reduction, len(p.Scalars))
		idents := make([]float64, len(p.Scalars))
		for k, name := range p.Scalars {
			op := scalarOp(p, k)
			reds[k] = spf.NewReduction(rt, name, func(a, b float64) float64 { return combine(op, a, b) })
			idents[k] = identity(p, k)
		}
		fr := &frame{n: n, arr: make([][]float32, len(p.Arrays)), scal: make([]float64, len(p.Scalars))}

		// bind validates a slice's pages (reads first, then writes, in
		// declaration order — the order a hand coder writes) and points
		// the frame at the region backing.
		bind := func(pl *spfPlan, lo, hi int) {
			for _, rs := range pl.reads {
				if rs.full {
					fr.arr[rs.slot] = regs[rs.slot].Read(0, n*n)
					continue
				}
				fr.arr[rs.slot] = regs[rs.slot].Read(clampRow(lo+rs.min, n)*n, clampRow(hi+rs.max, n)*n)
			}
			for _, slot := range pl.writes {
				fr.arr[slot] = regs[slot].Write(lo*n, hi*n)
			}
		}

		plans := make([]*spfPlan, len(steps))
		for k, st := range steps {
			pl := &spfPlan{step: st, en: compileNest(p, st.Info.Nest), loop: -1}
			pl.reads, pl.writes, pl.redSlots = lowerUses(p, st)
			plans[k] = pl
			if !st.Parallel {
				continue
			}
			pl.loop = rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
				if lo >= hi {
					return
				}
				bind(pl, lo, hi)
				for _, slot := range pl.redSlots {
					fr.scal[slot] = idents[slot]
				}
				cnt := pl.en.runRows(fr, lo, hi)
				rt.Advance(apputil.Cost(cnt, pl.en.nst.PointCost))
				for _, slot := range pl.redSlots {
					reds[slot].Combine(rt, fr.scal[slot])
				}
			})
		}

		if rt.IsMaster() {
			for k, a := range p.Arrays {
				if a.Init == nil {
					continue
				}
				w := regs[k].Write(0, n*n)
				fillInit(w[:n*n], a.Init, n)
			}
		}

		resSlot := p.arrayIndex()[p.Result]
		return apputil.SPFProgram{
			IterateMaster: func(it int) {
				for k := range reds {
					reds[k].Reset(idents[k])
				}
				for _, pl := range plans {
					nst := pl.en.nst
					if pl.step.Parallel {
						rt.ParallelDo(pl.loop, nst.Row.Lo.Eval(n), nst.Row.Hi.Eval(n), spf.Block)
						continue
					}
					// Serial nest: the master runs the sequential code, as
					// the fork-join model prescribes.
					for _, rs := range pl.reads {
						fr.arr[rs.slot] = regs[rs.slot].Read(0, n*n)
					}
					for _, slot := range pl.writes {
						fr.arr[slot] = regs[slot].Write(0, n*n)
					}
					for _, slot := range pl.redSlots {
						fr.scal[slot] = idents[slot]
					}
					cnt := pl.en.runRows(fr, nst.Row.Lo.Eval(n), nst.Row.Hi.Eval(n))
					rt.Advance(apputil.Cost(cnt, nst.PointCost))
					for _, slot := range pl.redSlots {
						reds[slot].Combine(rt, fr.scal[slot])
					}
				}
			},
			Checksum: func() float64 {
				g := regs[resSlot].Read(0, n*n)
				finals := make([]float64, len(reds))
				for k := range reds {
					finals[k] = reds[k].Value()
				}
				return checksum(p, g, n, finals)
			},
		}
	})
}
