package gen

import (
	"fmt"
	"math/rand"
)

// Generate builds a random valid program from a seed. It is a pure
// function of the seed: the stream of math/rand draws is fixed by the
// code below, no map iteration or wall-clock input enters, and the Go 1
// compatibility promise pins rand.NewSource's sequence — so the
// committed corpus doubles as a regression pin of this function
// (TestCorpusMatchesGenerator).
//
// Every program mixes features that stress different compiler and
// runtime paths: a parallel stencil over the checksummed result array;
// optional red-black pairs (parity-refuted dependences), narrow
// hot-band nests (skewed writer distributions that exercise adaptive
// home migration), serial nests (misaligned writes, transposed or
// carried reads — master-only DSM execution, broadcast + replicated
// execution under message passing), and scale/copy nests; plus up to
// two scalar reductions (sum and max), each owned by exactly one nest.
// Per-nest PointCost annotations vary the compute/communication ratio.
func Generate(seed int64) *ProgramSpec {
	r := rand.New(rand.NewSource(seed))
	ps := &ProgramSpec{
		Seed:  seed,
		Name:  fmt.Sprintf("gen-%d", seed),
		N:     []int{24, 32}[r.Intn(2)],
		Iters: 2 + r.Intn(2),
	}
	names := []string{"a", "b", "c", "d"}
	nw := 1 + r.Intn(2) // arrays some nest writes
	nr := 1 + r.Intn(2) // read-only input arrays
	inits := InitNames()
	var writable, readonly []string
	for k := 0; k < nw; k++ {
		writable = append(writable, names[k])
	}
	for k := 0; k < nr; k++ {
		readonly = append(readonly, names[nw+k])
	}
	for _, nm := range append(append([]string{}, writable...), readonly...) {
		ps.Arrays = append(ps.Arrays, ArraySpec{Name: nm, Init: inits[r.Intn(len(inits)-1)]})
	}
	ps.Result = writable[0]

	g := &builder{r: r, ps: ps, writable: writable, readonly: readonly}
	// The first nest is always a parallel stencil writing the result
	// array: every program has distributed work on the checksummed data.
	g.addStencil(writable[0])
	for k, extra := 0, 1+r.Intn(3); k < extra; k++ {
		switch g.r.Intn(10) {
		case 0, 1, 2:
			g.addStencil(g.pick(g.writable))
		case 3, 4:
			g.addRedBlack()
		case 5, 6:
			g.addHotBand()
		case 7, 8:
			g.addSerial()
		default:
			g.addCopyScale()
		}
	}
	// Scalar reductions: each scalar owned by exactly one nest (the
	// oracle precondition Check enforces).
	for s, nscal := 0, r.Intn(3); s < nscal; s++ {
		name := fmt.Sprintf("s%d", s)
		ps.Scalars = append(ps.Scalars, name)
		g.addReduction(name)
	}
	if err := ps.Check(); err != nil {
		// Generate's construction rules are a superset of Check's
		// envelope; a violation here is a generator bug, not bad luck.
		panic(fmt.Sprintf("gen: Generate(%d) violated its own envelope: %v", seed, err))
	}
	return ps
}

// builder accumulates nests under the generation constraints.
type builder struct {
	r                  *rand.Rand
	ps                 *ProgramSpec
	writable, readonly []string
	reduced            []int // nest indexes already owning a reduction
}

func (g *builder) pick(xs []string) string { return xs[g.r.Intn(len(xs))] }

// lit returns an exact binary fraction; magnitudes stay ≤ 1.5 so
// value growth over nests × iterations stays far from float32 overflow
// (multiplication is only ever by literals).
func (g *builder) lit() float64 {
	return []float64{0.25, 0.5, 0.75, 1.25, 1.5, 0.0625, -0.5}[g.r.Intn(7)]
}

func (g *builder) cost() int64 {
	return []int64{20, 35, 50, 80, 120}[g.r.Intn(5)]
}

// newNest appends a fresh nest with the given row/col bounds.
func (g *builder) newNest(rlo, rhi, clo, chi ExtentSpec) *NestSpec {
	ns := &NestSpec{
		Name:        fmt.Sprintf("n%d", len(g.ps.Nests)),
		Row:         LoopSpec{Var: "i", Lo: rlo, Hi: rhi},
		Col:         LoopSpec{Var: "j", Lo: clo, Hi: chi},
		PointCostNs: g.cost(),
	}
	g.ps.Nests = append(g.ps.Nests, ns)
	return ns
}

// offRange gives the safe offset interval for an index running over
// [lo, hi) of an n-extent axis, clamped to ±2 (the halo-width cap the
// envelope guarantees at 8 processors).
func offRange(lo, hi, n int) (int, int) {
	min, max := -lo, n-hi
	if min < -2 {
		min = -2
	}
	if max > 2 {
		max = 2
	}
	return min, max
}

func (g *builder) offIn(lo, hi int) int { return lo + g.r.Intn(hi-lo+1) }

// rowRead builds a row-aligned read of array nm within the nest's safe
// offset envelope; inPlace restricts the row offset to 0 (reads of
// arrays the same nest writes must not carry a row dependence).
func (g *builder) rowRead(ns *NestSpec, nm string, inPlace bool) *ExprSpec {
	n := g.ps.N
	roLo, roHi := offRange(ns.Row.Lo.Eval(n), ns.Row.Hi.Eval(n), n)
	coLo, coHi := offRange(ns.Col.Lo.Eval(n), ns.Col.Hi.Eval(n), n)
	ro := 0
	if !inPlace {
		ro = g.offIn(roLo, roHi)
	}
	return &ExprSpec{Ref: &AccessSpec{
		Array: nm,
		Row:   IndexSpec{Var: ns.Row.Var, Off: ro},
		Col:   IndexSpec{Var: ns.Col.Var, Off: g.offIn(coLo, coHi)},
	}}
}

// freeRead builds an arbitrary-shape read of a read-only array:
// straight, transposed, or through a constant index — all legal in
// parallel nests only because the array is never written.
func (g *builder) freeRead(ns *NestSpec) *ExprSpec {
	n := g.ps.N
	nm := g.pick(g.readonly)
	roLo, roHi := offRange(ns.Row.Lo.Eval(n), ns.Row.Hi.Eval(n), n)
	coLo, coHi := offRange(ns.Col.Lo.Eval(n), ns.Col.Hi.Eval(n), n)
	rowIx := IndexSpec{Var: ns.Row.Var, Off: g.offIn(roLo, roHi)}
	colIx := IndexSpec{Var: ns.Col.Var, Off: g.offIn(coLo, coHi)}
	switch g.r.Intn(4) {
	case 0: // transposed: row index runs over the column loop
		rowIx = IndexSpec{Var: ns.Col.Var, Off: g.offIn(coLo, coHi)}
		colIx = IndexSpec{Var: ns.Row.Var, Off: g.offIn(roLo, roHi)}
	case 1: // constant row (a fixed input row read by every iteration)
		rowIx = IndexSpec{Off: g.r.Intn(4)}
	}
	return &ExprSpec{Ref: &AccessSpec{Array: nm, Row: rowIx, Col: colIx}}
}

// combineExpr folds leaves into a random association of + and - nodes
// (multiplication and division only pair with literals, bounding value
// growth and excluding NaN/Inf), optionally scaled by a literal.
func (g *builder) combineExpr(leaves []*ExprSpec) *ExprSpec {
	e := leaves[0]
	for _, leaf := range leaves[1:] {
		op := []string{"+", "-"}[g.r.Intn(2)]
		e = &ExprSpec{Op: op, L: e, R: leaf}
	}
	switch g.r.Intn(4) {
	case 0:
		v := g.lit()
		e = &ExprSpec{Op: "*", L: &ExprSpec{Lit: &v}, R: e}
	case 1:
		v := []float64{2, 4}[g.r.Intn(2)]
		e = &ExprSpec{Op: "/", L: e, R: &ExprSpec{Lit: &v}}
	}
	return e
}

// stencilExpr builds a parallel-safe RHS for a nest whose written
// arrays are writtenHere: reads of those stay on the own row.
func (g *builder) stencilExpr(ns *NestSpec, writtenHere map[string]bool) *ExprSpec {
	var leaves []*ExprSpec
	for k, nleaf := 0, 2+g.r.Intn(3); k < nleaf; k++ {
		switch g.r.Intn(5) {
		case 0:
			leaves = append(leaves, g.freeRead(ns))
		case 1:
			v := g.lit()
			leaves = append(leaves, &ExprSpec{Lit: &v})
		default:
			nm := g.pick(g.writable)
			leaves = append(leaves, g.rowRead(ns, nm, writtenHere[nm]))
		}
	}
	// At least one array read keeps the nest data-dependent.
	if leaves[0].Ref == nil && len(leaves) == 1 {
		leaves = append(leaves, g.freeRead(ns))
	}
	return g.combineExpr(leaves)
}

// addStencil appends a parallel stencil nest writing target (and, with
// some probability, a second written array — an imperfect nest).
func (g *builder) addStencil(target string) {
	ns := g.newNest(ExtentSpec{0, 2}, ExtentSpec{1, -2}, ExtentSpec{0, 2}, ExtentSpec{1, -2})
	writtenHere := map[string]bool{target: true}
	second := ""
	if len(g.writable) > 1 && g.r.Intn(5) < 2 {
		second = g.pick(g.writable)
		writtenHere[second] = true
	}
	ns.Stmts = append(ns.Stmts, StmtSpec{
		LHS: &AccessSpec{Array: target, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}},
		RHS: g.stencilExpr(ns, writtenHere),
	})
	if second != "" && second != target {
		ns.Stmts = append(ns.Stmts, StmtSpec{
			LHS: &AccessSpec{Array: second, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}},
			RHS: g.stencilExpr(ns, writtenHere),
		})
	}
}

// addRedBlack appends a parity-guarded pair of in-place nests whose
// neighbor reads are refuted by the guard (the red-black idiom the
// analyzer must see through).
func (g *builder) addRedBlack() {
	t := g.pick(g.writable)
	for color := 0; color < 2; color++ {
		rem := color
		ns := g.newNest(ExtentSpec{0, 2}, ExtentSpec{1, -2}, ExtentSpec{0, 2}, ExtentSpec{1, -2})
		ns.Parity = &rem
		// Odd-parity neighbor offsets: (row+col) parity differs from the
		// write's, so the guard refutes every dependence.
		nbrs := [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
		var leaves []*ExprSpec
		for _, k := range g.r.Perm(4)[:2+g.r.Intn(3)] {
			d := nbrs[k]
			leaves = append(leaves, &ExprSpec{Ref: &AccessSpec{
				Array: t,
				Row:   IndexSpec{Var: "i", Off: d[0]},
				Col:   IndexSpec{Var: "j", Off: d[1]},
			}})
		}
		if g.r.Intn(2) == 0 {
			leaves = append(leaves, g.freeRead(ns))
		}
		ns.Stmts = append(ns.Stmts, StmtSpec{
			LHS: &AccessSpec{Array: t, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}},
			RHS: g.combineExpr(leaves),
		})
	}
}

// addHotBand appends a parallel nest over a narrow constant row band:
// all its writes land on the low-row owners, the skewed pattern that
// separates adaptive home migration from static placement.
func (g *builder) addHotBand() {
	t := g.pick(g.writable)
	band := 3 + g.r.Intn(3)
	ns := g.newNest(ExtentSpec{0, 1}, ExtentSpec{0, 1 + band}, ExtentSpec{0, 1}, ExtentSpec{1, -1})
	writtenHere := map[string]bool{t: true}
	ns.Stmts = append(ns.Stmts, StmtSpec{
		LHS: &AccessSpec{Array: t, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}},
		RHS: g.stencilExpr(ns, writtenHere),
	})
}

// addSerial appends a nest the analyzer must reject for parallel
// execution: a misaligned write, a transposed read of a written array,
// or a row-carried in-place dependence.
func (g *builder) addSerial() {
	t := g.pick(g.writable)
	ns := g.newNest(ExtentSpec{0, 2}, ExtentSpec{1, -2}, ExtentSpec{0, 2}, ExtentSpec{1, -2})
	writtenHere := map[string]bool{t: true}
	lhs := &AccessSpec{Array: t, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}}
	var rhs *ExprSpec
	switch g.r.Intn(3) {
	case 0: // write not aligned with the row loop
		lhs.Row.Off = []int{-1, 1}[g.r.Intn(2)]
		rhs = g.stencilExpr(ns, writtenHere)
	case 1: // transposed read of a written array
		u := g.pick(g.writable)
		rhs = g.combineExpr([]*ExprSpec{
			{Ref: &AccessSpec{Array: u, Row: IndexSpec{Var: "j"}, Col: IndexSpec{Var: "i"}}},
			g.rowRead(ns, t, true),
		})
	default: // row-carried in-place dependence
		rhs = g.combineExpr([]*ExprSpec{
			{Ref: &AccessSpec{Array: t, Row: IndexSpec{Var: "i", Off: -1}, Col: IndexSpec{Var: "j"}}},
			g.freeRead(ns),
		})
	}
	ns.Stmts = append(ns.Stmts, StmtSpec{LHS: lhs, RHS: rhs})
}

// addCopyScale appends a simple parallel copy/scale nest feeding the
// target from another array.
func (g *builder) addCopyScale() {
	t := g.pick(g.writable)
	ns := g.newNest(ExtentSpec{0, 2}, ExtentSpec{1, -2}, ExtentSpec{0, 2}, ExtentSpec{1, -2})
	src := g.freeRead(ns)
	if len(g.writable) > 1 {
		for _, u := range g.writable {
			if u != t {
				src = g.rowRead(ns, u, false)
				break
			}
		}
	}
	v := g.lit()
	ns.Stmts = append(ns.Stmts, StmtSpec{
		LHS: &AccessSpec{Array: t, Row: IndexSpec{Var: "i"}, Col: IndexSpec{Var: "j"}},
		RHS: &ExprSpec{Op: "*", L: &ExprSpec{Lit: &v}, R: src},
	})
}

// addReduction appends one scalar-reduction statement to a nest that
// does not own one yet (each scalar is reduced in exactly one nest —
// the condition making the per-backend combining trees well-defined).
func (g *builder) addReduction(scalar string) {
	var candidates []int
	for k := range g.ps.Nests {
		owned := false
		for _, used := range g.reduced {
			if used == k {
				owned = true
			}
		}
		if !owned {
			candidates = append(candidates, k)
		}
	}
	if len(candidates) == 0 {
		// Every nest owns a reduction already; grow a dedicated one.
		g.addCopyScale()
		candidates = []int{len(g.ps.Nests) - 1}
	}
	k := candidates[g.r.Intn(len(candidates))]
	ns := g.ps.Nests[k]
	g.reduced = append(g.reduced, k)

	var leaves []*ExprSpec
	for _, ss := range ns.Stmts {
		if ss.LHS != nil {
			// Reads of arrays this nest writes stay on the own row.
			leaves = append(leaves, g.rowRead(ns, ss.LHS.Array, true))
			break
		}
	}
	if len(leaves) == 0 {
		leaves = append(leaves, g.rowRead(ns, g.pick(g.writable), false))
	}
	if g.r.Intn(2) == 0 {
		leaves = append(leaves, g.freeRead(ns))
	}
	op := []string{"sum", "sum", "max"}[g.r.Intn(3)]
	ns.Stmts = append(ns.Stmts, StmtSpec{
		RHS:        g.combineExpr(leaves),
		ReduceInto: scalar,
		ReduceOp:   op,
	})
}
