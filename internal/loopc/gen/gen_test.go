package gen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/loopc"
	"repro/internal/model"
)

// TestGenerateDeterministic pins the seed contract: Generate is a pure
// function of the seed, byte for byte.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1000, 123456789} {
		a, b := Generate(seed).JSON(), Generate(seed).JSON()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenerateValid checks the generator keeps its own envelope promise
// over a seed sweep.
func TestGenerateValid(t *testing.T) {
	for seed := int64(1); seed <= 128; seed++ {
		ps := Generate(seed)
		if err := ps.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ps.Name != "gen-"+itoa(seed) {
			t.Fatalf("seed %d: name %q", seed, ps.Name)
		}
	}
}

func itoa(v int64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestJSONRoundTrip: a spec survives the corpus encoding bitwise.
func TestJSONRoundTrip(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		ps := Generate(seed)
		back, err := Parse(ps.JSON())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(ps.JSON(), back.JSON()) {
			t.Fatalf("seed %d: JSON round trip changed the spec", seed)
		}
	}
}

// TestGoLiteral: the committable repro form parses back to the same
// spec.
func TestGoLiteral(t *testing.T) {
	ps := Generate(5)
	lit := GoLiteral(ps)
	inner := strings.TrimSuffix(strings.TrimPrefix(lit, "gen.MustParse(`"), "`)")
	back := MustParse(inner)
	if !bytes.Equal(ps.JSON(), back.JSON()) {
		t.Fatal("GoLiteral round trip changed the spec")
	}
}

// TestMutateDeterministic: Mutate is a pure function of (spec, data)
// and never touches its input.
func TestMutateDeterministic(t *testing.T) {
	ps := Generate(9)
	orig := ps.JSON()
	data := []byte{0, 3, 5, 17, 7, 2, 9, 1, 4, 0}
	a, b := Mutate(ps, data).JSON(), Mutate(ps, data).JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("two mutations with the same bytes differ")
	}
	if !bytes.Equal(ps.JSON(), orig) {
		t.Fatal("Mutate modified its input spec")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("mutation bytes produced no change")
	}
}

// TestMutateRejectable: some mutations must leave the envelope (that is
// the point — the fuzzer probes the boundary), and Check must catch
// them rather than let an invalid program run.
func TestMutateRejectable(t *testing.T) {
	ps := Generate(2)
	rejected := 0
	for b0 := 0; b0 < 12; b0++ {
		for b1 := 0; b1 < 8; b1++ {
			m := Mutate(ps, []byte{byte(b0), byte(b1)})
			if m.Check() != nil {
				rejected++
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no single-step mutation was rejected; Check is too loose to guard mutation fuzzing")
	}
}

func TestParseSeed(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		ok   bool
	}{
		{"gen-0", 0, true},
		{"gen-42", 42, true},
		{"gen-123456789", 123456789, true},
		{"gen--1", 0, false},
		{"gen-xx", 0, false},
		{"gen-007", 0, false},
		{"jacobi", 0, false},
		{"gen-", 0, false},
	}
	for _, c := range cases {
		seed, ok := ParseSeed(c.name)
		if ok != c.ok || seed != c.seed {
			t.Errorf("ParseSeed(%q) = (%d, %v), want (%d, %v)", c.name, seed, ok, c.seed, c.ok)
		}
	}
}

// TestAppSeqMatchesOracle: the measured sequential runner reproduces
// the oracle checksum exactly (the oracle at one block IS the reference
// semantics).
func TestAppSeqMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 4, 13} {
		a := AppForSeed(seed)
		cfg := a.Config(core.SmallScale, 1)
		cfg.Costs = model.SP2()
		cfg.App = model.DefaultAppCosts()
		res, err := a.Run(core.Seq, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := a.ExpectedChecksum(core.Seq, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Checksum != want {
			t.Fatalf("seed %d: seq checksum %v, oracle %v", seed, res.Checksum, want)
		}
	}
}

// TestOracleStmtErrors: a spec broken at a specific statement reports
// the statement index (the analyzer/validator diagnostics contract).
func TestStmtIndexedErrors(t *testing.T) {
	ps := Generate(1)
	m := ps.Clone()
	// Point the first nest's first RHS ref at an undeclared array.
	var first *AccessSpec
	m.Nests[0].Stmts[0].RHS.walk(func(a *AccessSpec) {
		if first == nil {
			first = a
		}
	})
	if first == nil {
		t.Skip("seed 1 first stmt has no ref")
	}
	first.Array = "nosuch"
	p, err := m.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	err = p.Validate()
	if err == nil || !strings.Contains(err.Error(), "stmt 0") {
		t.Fatalf("want stmt-indexed validate error, got %v", err)
	}
}

// TestSerialAnalysisNamesStmt: loopc analysis reports which statement
// serialized a nest.
func TestSerialAnalysisNamesStmt(t *testing.T) {
	ps := MustParse(`{
  "seed": 0, "name": "serial-probe", "n": 16, "iters": 1,
  "arrays": [{"name": "a", "init": "edges"}],
  "nests": [{
    "name": "n0",
    "row": {"var": "i", "lo": {"ncoeff":0,"const":1}, "hi": {"ncoeff":1,"const":-1}},
    "col": {"var": "j", "lo": {"ncoeff":0,"const":1}, "hi": {"ncoeff":1,"const":-1}},
    "stmts": [
      {"lhs": {"array":"a","row":{"var":"i","off":0},"col":{"var":"j","off":0}},
       "rhs": {"ref": {"array":"a","row":{"var":"i","off":0},"col":{"var":"j","off":0}}}},
      {"lhs": {"array":"a","row":{"var":"i","off":0},"col":{"var":"j","off":0}},
       "rhs": {"ref": {"array":"a","row":{"var":"i","off":-1},"col":{"var":"j","off":0}}}}
    ],
    "point_cost_ns": 20
  }],
  "result": "a"
}`)
	p, err := ps.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	infos, err := loopc.Analyze(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	info := infos[0]
	if info.Class != loopc.Serial {
		t.Fatalf("want serial nest, got %v", info.Class)
	}
	// Blame lands on the writing statement and names the reading one.
	if info.WhyStmt != 0 || !strings.Contains(info.Why, "against stmt 1") {
		t.Fatalf("want write stmt 0 blamed against read stmt 1, got WhyStmt=%d Why=%q", info.WhyStmt, info.Why)
	}
}
