package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proto"
)

// FuzzGenProgram fuzzes the program space itself: a generator seed
// picks a valid corpus-style program, the mutation bytes push it around
// the envelope (Mutate is byte-driven and deliberately allowed to
// produce invalid specs — Check rejects those, so the fuzzer explores
// the boundary from both sides), and every surviving program runs
// differentially: the sequential interpreter and the spf-gen DSM
// backend at two processors, each checked bitwise against the
// partition-aware oracle. This is the open-ended companion of the
// fixed corpus in internal/loopc/testdata/corpus; the committed
// regression inputs live under testdata/fuzz/FuzzGenProgram.
func FuzzGenProgram(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(7), []byte{0, 1})        // resize
	f.Add(int64(13), []byte{9, 1})       // literal scale
	f.Add(int64(30), []byte{4, 0, 7, 3}) // parity toggle + bound nudge (the twin-apply shape)
	f.Add(int64(40), []byte{11, 2, 2, 1})

	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if seed < 0 {
			return
		}
		m := Mutate(Generate(seed%1024), data)
		if m.Check() != nil {
			return // the mutation left the analyzable envelope
		}
		app, err := NewApp(m)
		if err != nil {
			t.Fatalf("Check passed but NewApp failed: %v", err)
		}
		const procs = 2
		run := func(v core.Version, procs int) float64 {
			cfg := app.Config(core.SmallScale, procs)
			cfg.Costs = model.SP2()
			cfg.App = model.DefaultAppCosts()
			cfg.Protocol = proto.HomelessLRC
			res, err := app.Run(v, cfg)
			if err != nil {
				t.Fatalf("%s: %v", v, err)
			}
			return res.Checksum
		}
		oracle := func(v core.Version, procs int) float64 {
			want, err := app.ExpectedChecksum(v, procs)
			if err != nil {
				t.Fatalf("oracle %s: %v", v, err)
			}
			return want
		}
		if got, want := run(core.Seq, 1), oracle(core.Seq, 1); got != want {
			t.Errorf("seq checksum %x, oracle %x\nspec:\n%s", got, want, m.JSON())
		}
		if got, want := run(core.SPFGen, procs), oracle(core.SPFGen, procs); got != want {
			t.Errorf("spf-gen@%d checksum %x, oracle %x\nspec:\n%s", procs, got, want, m.JSON())
		}
	})
}
