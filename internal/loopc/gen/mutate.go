package gen

// Mutate applies a byte-driven sequence of structured edits to a copy
// of ps and returns it. The result is a pure function of (ps, data) —
// mutation fuzzing stays reproducible from the corpus entry alone — and
// is NOT guaranteed valid: callers run Check and reject, so the fuzzer
// explores the envelope's boundary from both sides.
func Mutate(ps *ProgramSpec, data []byte) *ProgramSpec {
	m := ps.Clone()
	m.Name = ps.Name + "-mut"
	for k := 0; k+1 < len(data); k += 2 {
		op, arg := int(data[k]), int(data[k+1])
		mutateOne(m, op%12, arg)
	}
	return m
}

func mutateOne(m *ProgramSpec, op, arg int) {
	if len(m.Nests) == 0 {
		return
	}
	ns := m.Nests[arg%len(m.Nests)]
	switch op {
	case 0: // resize the grid
		m.N = []int{8, 16, 24, 32, 40, 64}[arg%6]
	case 1: // change the iteration count
		m.Iters = 1 + arg%4
	case 2: // drop a statement
		if len(ns.Stmts) > 1 {
			si := arg % len(ns.Stmts)
			ns.Stmts = append(ns.Stmts[:si:si], ns.Stmts[si+1:]...)
		}
	case 3: // duplicate a statement (reduce stmts would double-own a
		// scalar — Check rejects, exercising the oracle precondition)
		ns.Stmts = append(ns.Stmts, ns.Stmts[arg%len(ns.Stmts)])
	case 4: // toggle the parity guard
		if ns.Parity == nil {
			rem := arg % 2
			ns.Parity = &rem
		} else {
			ns.Parity = nil
		}
	case 5, 6: // nudge an access offset (row / col)
		var accs []*AccessSpec
		for si := range ns.Stmts {
			if lhs := ns.Stmts[si].LHS; lhs != nil {
				accs = append(accs, lhs)
			}
			ns.Stmts[si].RHS.walk(func(a *AccessSpec) { accs = append(accs, a) })
		}
		if len(accs) > 0 {
			a := accs[arg%len(accs)]
			d := 1
			if arg&1 == 1 {
				d = -1
			}
			if op == 5 {
				a.Row.Off += d
			} else {
				a.Col.Off += d
			}
		}
	case 7: // nudge a loop bound
		switch arg % 4 {
		case 0:
			ns.Row.Lo.Const++
		case 1:
			ns.Row.Hi.Const--
		case 2:
			ns.Col.Lo.Const++
		default:
			ns.Col.Hi.Const--
		}
	case 8: // swap an array initializer
		if len(m.Arrays) > 0 {
			names := InitNames()
			m.Arrays[arg%len(m.Arrays)].Init = names[arg%len(names)]
		}
	case 9: // scale a literal by an exact factor
		lits := collectLits(ns)
		if len(lits) > 0 {
			*lits[arg%len(lits)] *= []float64{0.5, 2, -1, 0.25}[arg%4]
		}
	case 10: // flip a reduction operator
		for si := range ns.Stmts {
			if ss := &ns.Stmts[si]; ss.ReduceInto != "" {
				if ss.ReduceOp == "sum" {
					ss.ReduceOp = "max"
				} else {
					ss.ReduceOp = "sum"
				}
				break
			}
		}
	case 11: // drop a nest
		if len(m.Nests) > 1 {
			ni := arg % len(m.Nests)
			m.Nests = append(m.Nests[:ni:ni], m.Nests[ni+1:]...)
		}
	}
}

func collectLits(ns *NestSpec) []*float64 {
	var lits []*float64
	for si := range ns.Stmts {
		ns.Stmts[si].RHS.walkLits(func(v *float64) { lits = append(lits, v) })
	}
	return lits
}
