package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/loopc"
)

// App adapts a generated program to core.App, so generated programs run
// through exactly the measurement surface the hand-ported applications
// use — the exp engine, the sweep CLI, the harness experiments.
type App struct {
	ps *ProgramSpec
	p  *loopc.Program
}

// NewApp wraps a spec. The spec must pass Check (Build errors and
// envelope violations surface here, before any run).
func NewApp(ps *ProgramSpec) (*App, error) {
	if err := ps.Check(); err != nil {
		return nil, err
	}
	p, err := ps.Build()
	if err != nil {
		return nil, err
	}
	return &App{ps: ps, p: p}, nil
}

// AppForSeed generates the program for a seed and wraps it. Generated
// programs pass Check by construction, so this cannot fail.
func AppForSeed(seed int64) *App {
	a, err := NewApp(Generate(seed))
	if err != nil {
		panic(fmt.Sprintf("gen: AppForSeed(%d): %v", seed, err))
	}
	return a
}

// ParseSeed recognizes the "gen-<seed>" application-name form used on
// the experiment surface (dsmrun -app gen-42, spec keys) and returns
// the seed.
func ParseSeed(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "gen-")
	if !ok {
		return 0, false
	}
	seed, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seed < 0 || name != fmt.Sprintf("gen-%d", seed) {
		return 0, false
	}
	return seed, true
}

// Spec returns the underlying program spec.
func (a *App) Spec() *ProgramSpec { return a.ps }

// Program returns the built IR.
func (a *App) Program() *loopc.Program { return a.p }

func (a *App) Name() string { return a.ps.Name }

// Config ignores the scale: a generated program has exactly one size,
// carried in its spec, so every scale maps to it (the corpus is sized
// like SmallScale and meant for correctness work, not modeling).
func (a *App) Config(scale core.Scale, procs int) core.Config {
	return core.Config{Procs: procs, N1: a.ps.N, Iters: a.ps.Iters, Warmup: Warmup}
}

func (a *App) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPFGen, core.XHPFGen}
}

func (a *App) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return loopc.RunSeq(a.ps.Name, cfg, a.p)
	case core.SPFGen:
		return loopc.RunSPF(a.ps.Name, core.SPFGen, cfg, a.p)
	case core.XHPFGen:
		return loopc.RunXHPF(a.ps.Name, core.XHPFGen, cfg, a.p)
	}
	return core.Result{}, fmt.Errorf("gen: %s: unsupported version %q", a.ps.Name, v)
}

// ExpectedChecksum is the oracle checksum version v must produce at the
// given processor count (bitwise — see loopc.Oracle). The iteration
// count includes the warm-up iteration, matching the measured runners.
func (a *App) ExpectedChecksum(v core.Version, procs int) (float64, error) {
	part := loopc.PartitionFor(v)
	if part == nil {
		return 0, fmt.Errorf("gen: %s: no oracle partition for version %q", a.ps.Name, v)
	}
	return loopc.Oracle(a.p, a.ps.N, a.ps.Iters+Warmup, procs, part)
}
