// Package gen is a seeded, fully deterministic generator of valid
// loopc IR programs — the synthetic-workload half of the differential
// compiler-fuzzing rig (internal/loopc/difftest is the checking half).
//
// A ProgramSpec is pure data: it serializes to JSON (the committed
// corpus under internal/loopc/testdata/corpus), rebuilds the exact
// loopc.Program via Build (array initializers come from a fixed named
// registry, so a spec read back from disk reproduces the run
// bit-for-bit), and wraps into a core.App named "gen-<seed>" whose
// versions are {seq, spf-gen, xhpf-gen}. Generate(seed) is a pure
// function of the seed: same seed, same program, forever — the corpus
// test pins that contract, and any intentional generator change must
// regenerate the committed corpus and golden tables.
//
// Check enforces the validity envelope Generate promises and mutation
// (fuzzing, minimization) must preserve: all accesses in bounds for the
// program's n, every scalar reduced by exactly one statement of exactly
// one nest (the condition under which the difftest oracle's combining
// trees are exact), and row offsets no wider than the smallest XHPF
// block at 8 processors (nearest-neighbor halo exchange cannot reach
// further).
package gen

import (
	"encoding/json"
	"fmt"

	"repro/internal/loopc"
	"repro/internal/sim"
)

// Warmup is the untimed leading iteration count every generated
// program's Config uses (the paper's convention). Total program
// evolution is Warmup+Iters iterations; oracle checksums must match.
const Warmup = 1

// MaxProcs is the largest processor count the validity envelope
// guarantees: blocks at MaxProcs stay at least as wide as any read's
// row offset, so nearest-neighbor halo exchange suffices.
const MaxProcs = 8

// ExtentSpec mirrors loopc.Extent: NCoeff*n + Const.
type ExtentSpec struct {
	NCoeff int `json:"ncoeff"`
	Const  int `json:"const"`
}

// Eval resolves the extent for a concrete n.
func (e ExtentSpec) Eval(n int) int { return e.NCoeff*n + e.Const }

// LoopSpec mirrors loopc.Loop: a loop variable and [Lo, Hi) bounds.
type LoopSpec struct {
	Var string     `json:"var"`
	Lo  ExtentSpec `json:"lo"`
	Hi  ExtentSpec `json:"hi"`
}

// IndexSpec mirrors loopc.Index: Var+Off, or a constant when Var is "".
type IndexSpec struct {
	Var string `json:"var,omitempty"`
	Off int    `json:"off"`
}

// AccessSpec mirrors loopc.Access.
type AccessSpec struct {
	Array string    `json:"array"`
	Row   IndexSpec `json:"row"`
	Col   IndexSpec `json:"col"`
}

// ExprSpec is a serializable loopc.Expr node: exactly one of Lit, Ref,
// or Op (with L and R) is set. Lit values are exact binary fractions,
// so the float64 JSON round trip is bitwise lossless in float32.
type ExprSpec struct {
	Lit *float64    `json:"lit,omitempty"`
	Ref *AccessSpec `json:"ref,omitempty"`
	Op  string      `json:"op,omitempty"` // "+", "-", "*", "/"
	L   *ExprSpec   `json:"l,omitempty"`
	R   *ExprSpec   `json:"r,omitempty"`
}

// walk visits every array access in the expression.
func (e *ExprSpec) walk(f func(*AccessSpec)) {
	if e == nil {
		return
	}
	if e.Ref != nil {
		f(e.Ref)
	}
	e.L.walk(f)
	e.R.walk(f)
}

// walkLits visits every literal in the expression.
func (e *ExprSpec) walkLits(f func(*float64)) {
	if e == nil {
		return
	}
	if e.Lit != nil {
		f(e.Lit)
	}
	e.L.walkLits(f)
	e.R.walkLits(f)
}

// StmtSpec mirrors loopc.Stmt: an array assignment (LHS set) or a
// scalar reduction (ReduceInto/ReduceOp set).
type StmtSpec struct {
	LHS        *AccessSpec `json:"lhs,omitempty"`
	RHS        *ExprSpec   `json:"rhs"`
	ReduceInto string      `json:"reduce_into,omitempty"`
	ReduceOp   string      `json:"reduce_op,omitempty"` // "sum" or "max"
}

// NestSpec mirrors loopc.Nest.
type NestSpec struct {
	Name        string     `json:"name"`
	Row         LoopSpec   `json:"row"`
	Col         LoopSpec   `json:"col"`
	Parity      *int       `json:"parity,omitempty"`
	Stmts       []StmtSpec `json:"stmts"`
	PointCostNs int64      `json:"point_cost_ns"`
}

// ArraySpec declares an n×n array with a named initializer from the
// fixed registry (see InitNames); "" means zero-filled.
type ArraySpec struct {
	Name string `json:"name"`
	Init string `json:"init,omitempty"`
}

// ProgramSpec is a complete generated program as pure data.
type ProgramSpec struct {
	Seed    int64       `json:"seed"`
	Name    string      `json:"name"`
	N       int         `json:"n"`
	Iters   int         `json:"iters"`
	Arrays  []ArraySpec `json:"arrays"`
	Scalars []string    `json:"scalars,omitempty"`
	Nests   []*NestSpec `json:"nests"`
	Result  string      `json:"result"`
}

// initFns is the fixed registry of named array initializers. Every
// value is an exact binary fraction, so products and halvings stay
// exactly representable and no backend can differ by rounding of the
// initial state. The registry is append-only: removing or changing an
// entry invalidates the committed corpus.
var initFns = map[string]func(i, j, n int) float32{
	"zero": func(i, j, n int) float32 { return 0 },
	"ones": func(i, j, n int) float32 { return 1 },
	"edges": func(i, j, n int) float32 {
		if i == 0 || j == 0 || i == n-1 || j == n-1 {
			return 1
		}
		return 0
	},
	"coords": func(i, j, n int) float32 { return float32(i-j) * 0.03125 },
	"checker": func(i, j, n int) float32 {
		if (i+j)%2 == 0 {
			return 0.5
		}
		return -0.25
	},
	"ramp": func(i, j, n int) float32 { return float32(i)*0.015625 + float32(j)*0.00390625 },
	"hotrow": func(i, j, n int) float32 {
		if i <= 2 {
			return 1.5
		}
		return 0.0625
	},
}

// InitNames lists the initializer registry in the fixed generation
// order (not map order — generation must be deterministic).
func InitNames() []string {
	return []string{"edges", "coords", "checker", "ramp", "hotrow", "ones", "zero"}
}

// Build converts the spec into a loopc.Program. The result is
// independent of when or where the spec was built: initializers resolve
// through the fixed registry and everything else is data.
func (ps *ProgramSpec) Build() (*loopc.Program, error) {
	p := &loopc.Program{Name: ps.Name, Result: ps.Result}
	p.Scalars = append(p.Scalars, ps.Scalars...)
	for _, a := range ps.Arrays {
		fn, ok := initFns[a.Init]
		if a.Init == "" {
			fn, ok = nil, true
		}
		if !ok {
			return nil, fmt.Errorf("gen: %s: unknown initializer %q for array %q", ps.Name, a.Init, a.Name)
		}
		p.Arrays = append(p.Arrays, loopc.ArrayDecl{Name: a.Name, Init: fn})
	}
	for ni, ns := range ps.Nests {
		nst := &loopc.Nest{
			Name:      ns.Name,
			Row:       loopc.Loop{Var: ns.Row.Var, Lo: loopc.Ext(ns.Row.Lo.NCoeff, ns.Row.Lo.Const), Hi: loopc.Ext(ns.Row.Hi.NCoeff, ns.Row.Hi.Const)},
			Col:       loopc.Loop{Var: ns.Col.Var, Lo: loopc.Ext(ns.Col.Lo.NCoeff, ns.Col.Lo.Const), Hi: loopc.Ext(ns.Col.Hi.NCoeff, ns.Col.Hi.Const)},
			PointCost: sim.Time(ns.PointCostNs),
		}
		if ns.Parity != nil {
			nst.Guard = &loopc.Parity{Rem: *ns.Parity}
		}
		for si, ss := range ns.Stmts {
			st := &loopc.Stmt{}
			switch {
			case ss.ReduceInto != "":
				st.ReduceInto = ss.ReduceInto
				switch ss.ReduceOp {
				case "sum":
					st.Op = loopc.ReduceSum
				case "max":
					st.Op = loopc.ReduceMax
				default:
					return nil, fmt.Errorf("gen: %s/%s: stmt %d: unknown reduce op %q", ps.Name, ns.Name, si, ss.ReduceOp)
				}
			case ss.LHS != nil:
				st.LHS = buildAccess(*ss.LHS)
			default:
				return nil, fmt.Errorf("gen: %s/%s: stmt %d: needs an LHS or a reduction target", ps.Name, ns.Name, si)
			}
			rhs, err := buildExpr(ss.RHS)
			if err != nil {
				return nil, fmt.Errorf("gen: %s/%s: stmt %d: %v", ps.Name, ns.Name, si, err)
			}
			st.RHS = rhs
			nst.Stmts = append(nst.Stmts, st)
		}
		if len(nst.Stmts) == 0 {
			return nil, fmt.Errorf("gen: %s: nest %d has no statements", ps.Name, ni)
		}
		p.Nests = append(p.Nests, nst)
	}
	return p, nil
}

func buildAccess(a AccessSpec) loopc.Access {
	return loopc.Access{
		Array: a.Array,
		Row:   loopc.Index{Var: a.Row.Var, Off: a.Row.Off},
		Col:   loopc.Index{Var: a.Col.Var, Off: a.Col.Off},
	}
}

func buildExpr(e *ExprSpec) (loopc.Expr, error) {
	if e == nil {
		return nil, fmt.Errorf("missing expression node")
	}
	set := 0
	if e.Lit != nil {
		set++
	}
	if e.Ref != nil {
		set++
	}
	if e.Op != "" {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("expression node must be exactly one of lit/ref/op")
	}
	switch {
	case e.Lit != nil:
		return loopc.Lit(float32(*e.Lit)), nil
	case e.Ref != nil:
		return loopc.Ref(buildAccess(*e.Ref)), nil
	}
	l, err := buildExpr(e.L)
	if err != nil {
		return nil, err
	}
	r, err := buildExpr(e.R)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "+":
		return loopc.Add(l, r), nil
	case "-":
		return loopc.Sub(l, r), nil
	case "*":
		return loopc.Mul(l, r), nil
	case "/":
		return loopc.Div(l, r), nil
	}
	return nil, fmt.Errorf("unknown operator %q", e.Op)
}

// JSON renders the spec in the committed corpus encoding (indented,
// fixed field order — stable bytes for a given spec).
func (ps *ProgramSpec) JSON() []byte {
	b, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		panic(err) // specs are plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// Parse decodes a corpus entry.
func Parse(data []byte) (*ProgramSpec, error) {
	ps := &ProgramSpec{}
	if err := json.Unmarshal(data, ps); err != nil {
		return nil, fmt.Errorf("gen: bad program spec: %v", err)
	}
	return ps, nil
}

// MustParse decodes a spec literal, panicking on malformed input — the
// committable-repro form the minimizer emits (a Go source file embeds
// the JSON in a raw string).
func MustParse(s string) *ProgramSpec {
	ps, err := Parse([]byte(s))
	if err != nil {
		panic(err)
	}
	return ps
}

// Clone deep-copies a spec (mutation and minimization never alias).
func (ps *ProgramSpec) Clone() *ProgramSpec {
	out, err := Parse(ps.JSON())
	if err != nil {
		panic(err)
	}
	return out
}

// GoLiteral renders the spec as a committable Go expression (the form a
// minimized repro is reported in).
func GoLiteral(ps *ProgramSpec) string {
	return "gen.MustParse(`\n" + string(ps.JSON()) + "`)"
}

// minBlockRows is the smallest nonempty BLOCK row count any processor
// owns at any count up to MaxProcs (the xhpf.BlockOf geometry).
func minBlockRows(n int) int {
	min := n
	for procs := 1; procs <= MaxProcs; procs++ {
		chunk := (n + procs - 1) / procs
		for q := 0; q < procs; q++ {
			lo, hi := q*chunk, (q+1)*chunk
			if lo > n {
				lo = n
			}
			if hi > n {
				hi = n
			}
			if hi > lo && hi-lo < min {
				min = hi - lo
			}
		}
	}
	return min
}

// Check enforces the validity envelope: structural validity of the
// built program, all accesses in bounds for the spec's n at every
// executed point, every scalar reduced by exactly one statement (the
// oracle's precondition), and read row offsets within the smallest
// block at MaxProcs processors (the reach of nearest-neighbor halo
// exchange). Generate always returns a spec that passes; mutated or
// minimized specs must be re-checked and rejected on failure.
func (ps *ProgramSpec) Check() error {
	if ps.N < 8 || ps.N > 64 {
		return fmt.Errorf("gen: %s: n=%d outside [8,64]", ps.Name, ps.N)
	}
	if ps.Iters < 1 || ps.Iters > 4 {
		return fmt.Errorf("gen: %s: iters=%d outside [1,4]", ps.Name, ps.Iters)
	}
	if len(ps.Nests) == 0 || len(ps.Nests) > 8 {
		return fmt.Errorf("gen: %s: %d nests outside [1,8]", ps.Name, len(ps.Nests))
	}
	p, err := ps.Build()
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}

	reduceCount := map[string]int{}
	maxRowOff := 0
	for ni, ns := range ps.Nests {
		if len(ns.Stmts) > 6 {
			return fmt.Errorf("gen: %s/%s: %d statements > 6", ps.Name, ns.Name, len(ns.Stmts))
		}
		if ns.PointCostNs < 0 || ns.PointCostNs > 1000 {
			return fmt.Errorf("gen: %s/%s: point cost %dns outside [0,1000]", ps.Name, ns.Name, ns.PointCostNs)
		}
		rlo, rhi := ns.Row.Lo.Eval(ps.N), ns.Row.Hi.Eval(ps.N)
		clo, chi := ns.Col.Lo.Eval(ps.N), ns.Col.Hi.Eval(ps.N)
		if rlo < 0 || rhi > ps.N || rlo >= rhi {
			return fmt.Errorf("gen: %s/%s: row range [%d,%d) invalid for n=%d", ps.Name, ns.Name, rlo, rhi, ps.N)
		}
		if clo < 0 || chi > ps.N || clo >= chi {
			return fmt.Errorf("gen: %s/%s: col range [%d,%d) invalid for n=%d", ps.Name, ns.Name, clo, chi, ps.N)
		}
		checkAccess := func(si int, a *AccessSpec) error {
			for axis, ix := range []IndexSpec{a.Row, a.Col} {
				lo, hi := 0, 0
				switch ix.Var {
				case ns.Row.Var:
					lo, hi = rlo+ix.Off, rhi-1+ix.Off
				case ns.Col.Var:
					lo, hi = clo+ix.Off, chi-1+ix.Off
				case "":
					lo, hi = ix.Off, ix.Off
				default:
					return fmt.Errorf("gen: %s/%s: stmt %d: index var %q not a loop var", ps.Name, ns.Name, si, ix.Var)
				}
				if lo < 0 || hi >= ps.N {
					return fmt.Errorf("gen: %s/%s: stmt %d: access to %s axis %d spans [%d,%d] outside [0,%d)",
						ps.Name, ns.Name, si, a.Array, axis, lo, hi, ps.N)
				}
			}
			if ix := a.Row; ix.Var == ns.Row.Var {
				off := ix.Off
				if off < 0 {
					off = -off
				}
				if off > maxRowOff {
					maxRowOff = off
				}
			}
			return nil
		}
		for si := range ns.Stmts {
			ss := &ns.Stmts[si]
			if ss.ReduceInto != "" {
				reduceCount[ss.ReduceInto]++
			} else if ss.LHS != nil {
				if err := checkAccess(si, ss.LHS); err != nil {
					return err
				}
			}
			var werr error
			ss.RHS.walk(func(a *AccessSpec) {
				if werr == nil {
					werr = checkAccess(si, a)
				}
			})
			if werr != nil {
				return werr
			}
		}
		_ = ni
	}
	for _, s := range ps.Scalars {
		if reduceCount[s] != 1 {
			return fmt.Errorf("gen: %s: scalar %q reduced by %d statements, want exactly 1 (oracle precondition)",
				ps.Name, s, reduceCount[s])
		}
	}
	if mb := minBlockRows(ps.N); maxRowOff > mb {
		return fmt.Errorf("gen: %s: read row offset %d exceeds the smallest block (%d rows) at %d procs",
			ps.Name, maxRowOff, mb, MaxProcs)
	}
	return nil
}
