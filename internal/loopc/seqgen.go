package loopc

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/tmk"
)

// RunSeq measures the sequential interpreter under the standard
// measurement protocol (warm-up exclusion, timed region, PointCost
// compute charging) — the "seq" version of a program that exists only
// as IR, such as the generated corpus programs. Hand-ported apps keep
// their hand-written sequential codes; this runner gives generated
// programs the same seq baseline shape.
func RunSeq(app string, cfg core.Config, p *Program) (core.Result, error) {
	if err := p.Validate(); err != nil {
		return core.Result{}, err
	}
	n := cfg.N1
	return apputil.RunSeq(app, cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		arrays := make([][]float32, len(p.Arrays))
		for k, a := range p.Arrays {
			arrays[k] = make([]float32, n*n)
			if a.Init != nil {
				fillInit(arrays[k], a.Init, n)
			}
		}
		scal := make([]float64, len(p.Scalars))
		fr := &frame{n: n, arr: arrays, scal: scal}
		ens := make([]*execNest, len(p.Nests))
		for k, nst := range p.Nests {
			ens[k] = compileNest(p, nst)
		}
		resSlot := p.arrayIndex()[p.Result]
		return apputil.SeqProgram{
			Iterate: func(int) {
				resetScalars(p, scal)
				for _, en := range ens {
					cnt := en.runRows(fr, en.nst.Row.Lo.Eval(n), en.nst.Row.Hi.Eval(n))
					tm.Advance(apputil.Cost(cnt, en.nst.PointCost))
				}
			},
			Checksum: func() float64 { return checksum(p, arrays[resSlot], n, scal) },
		}
	})
}
