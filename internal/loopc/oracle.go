package loopc

import (
	"repro/internal/core"
	"repro/internal/xhpf"
)

// RowPartition gives, in combining order, the row sub-ranges a backend
// partitions a parallel nest's row range [lo, hi) into when running on
// procs processors over an n-row iteration space. Entries may be empty
// (lo == hi); an empty entry contributes the reduction identity to the
// combining tree, exactly as an idle processor does.
type RowPartition func(procs, lo, hi, n int) [][2]int

// SPFPartition mirrors the fork-join runtime's BLOCK schedule
// (spf.ParallelDo with spf.Block): ceiling-sized chunks of the nest's
// own [lo, hi) range, one per processor, the tail clamped.
func SPFPartition(procs, lo, hi, n int) [][2]int {
	out := make([][2]int, procs)
	total := hi - lo
	if total < 0 {
		total = 0
	}
	chunk := (total + procs - 1) / procs
	for q := 0; q < procs; q++ {
		mylo := lo + q*chunk
		myhi := mylo + chunk
		if mylo > hi {
			mylo = hi
		}
		if myhi > hi {
			myhi = hi
		}
		out[q] = [2]int{mylo, myhi}
	}
	return out
}

// XHPFPartition mirrors the message-passing runtime's owner-computes
// map: each task owns the xhpf.BlockOf rows of the full 0..n extent and
// executes the intersection of its block with the nest's [lo, hi).
func XHPFPartition(procs, lo, hi, n int) [][2]int {
	out := make([][2]int, procs)
	for q := 0; q < procs; q++ {
		qlo, qhi := xhpf.BlockOf(q, procs, n)
		clo, chi := qlo, qhi
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		if chi < clo {
			clo, chi = lo, lo
		}
		out[q] = [2]int{clo, chi}
	}
	return out
}

// SeqPartition is the single-block partition of a sequential run
// (procs is ignored).
func SeqPartition(procs, lo, hi, n int) [][2]int { return [][2]int{{lo, hi}} }

// PartitionFor returns the partition a backend version uses, or nil for
// versions loopc does not lower.
func PartitionFor(v core.Version) RowPartition {
	switch v {
	case core.SPFGen:
		return SPFPartition
	case core.XHPFGen:
		return XHPFPartition
	case core.Seq:
		return SeqPartition
	}
	return nil
}

// Oracle executes a program sequentially but combines each parallel
// nest's scalar reductions exactly as a distributed backend running on
// procs processors does: per-block partials accumulated from the
// reduction identity, folded in block (processor) order — the combining
// tree both spf.Reduction.Value and pvm.Reduce implement — then
// combined into the running scalar. Array values do not depend on the
// distribution (parallel nests have no row-carried dependences and each
// row runs on exactly one processor in ascending column order), so they
// are computed in place.
//
// The returned checksum is the exact bitwise value a correct backend
// must produce at that processor count. Float sums are not associative,
// so two backends with different partitions legitimately differ at
// procs > 1; the oracle makes that expectation precise per backend.
//
// iters counts total iterations including warm-up (the measured runners
// iterate Warmup+Iters times and checksum the final state).
//
// Precondition: each scalar is reduced by statements of at most one
// nest (the generator's invariant). A scalar accumulated across several
// nests combines differently under the two backends and the oracle does
// not model that split.
func Oracle(p *Program, n, iters, procs int, part RowPartition) (float64, error) {
	steps, err := Plan(p)
	if err != nil {
		return 0, err
	}
	arrays := make([][]float32, len(p.Arrays))
	for k, a := range p.Arrays {
		arrays[k] = make([]float32, n*n)
		if a.Init != nil {
			fillInit(arrays[k], a.Init, n)
		}
	}
	scal := make([]float64, len(p.Scalars))
	fr := &frame{n: n, arr: arrays, scal: scal}

	type plan struct {
		en       *execNest
		step     *Step
		redSlots []int
	}
	plans := make([]*plan, len(steps))
	for k, st := range steps {
		pl := &plan{en: compileNest(p, st.Info.Nest), step: st}
		_, _, pl.redSlots = lowerUses(p, st)
		plans[k] = pl
	}

	resSlot := p.arrayIndex()[p.Result]
	for it := 0; it < iters; it++ {
		resetScalars(p, scal)
		for _, pl := range plans {
			nst := pl.en.nst
			rowLo, rowHi := nst.Row.Lo.Eval(n), nst.Row.Hi.Eval(n)
			if !pl.step.Parallel || len(pl.redSlots) == 0 {
				// Serial nests accumulate straight into the running
				// scalars (replicated execution under message passing,
				// master execution on the DSM — both sequential), and
				// reduction-free parallel nests only touch arrays.
				pl.en.runRows(fr, rowLo, rowHi)
				continue
			}
			blocks := part(procs, rowLo, rowHi, n)
			bases := make([]float64, len(pl.redSlots))
			for bi, slot := range pl.redSlots {
				bases[bi] = scal[slot]
			}
			partials := make([][]float64, len(blocks))
			for q, b := range blocks {
				for _, slot := range pl.redSlots {
					scal[slot] = identity(p, slot)
				}
				pl.en.runRows(fr, b[0], b[1])
				snap := make([]float64, len(pl.redSlots))
				for bi, slot := range pl.redSlots {
					snap[bi] = scal[slot]
				}
				partials[q] = snap
			}
			for bi, slot := range pl.redSlots {
				op := scalarOp(p, slot)
				folded := partials[0][bi]
				for q := 1; q < len(partials); q++ {
					folded = combine(op, folded, partials[q][bi])
				}
				scal[slot] = combine(op, bases[bi], folded)
			}
		}
	}
	return checksum(p, arrays[resSlot], n, scal), nil
}
