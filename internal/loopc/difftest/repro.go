package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/loopc/gen"
)

// WriteRepro writes a minimized failing program to dir as a corpus
// entry (<name>.json, loadable with gen.Parse / the -gen flag) plus a
// report (<name>.repro.txt) carrying the divergences and the spec as a
// committable Go literal — the artifact a CI failure uploads and a
// human pastes into a regression test. Returns the JSON path.
func WriteRepro(dir string, ps *gen.ProgramSpec, divs []Divergence) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	jsonPath := filepath.Join(dir, ps.Name+".json")
	if err := os.WriteFile(jsonPath, ps.JSON(), 0o644); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "differential divergence: %s (seed %d)\n\n", ps.Name, ps.Seed)
	for _, d := range divs {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	fmt.Fprintf(&b, "\nreproduce:\n\n  go run ./cmd/dsmrun -genfile %s\n", jsonPath)
	fmt.Fprintf(&b, "\nminimized spec as a Go literal:\n\n%s\n", gen.GoLiteral(ps))
	if err := os.WriteFile(filepath.Join(dir, ps.Name+".repro.txt"), []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return jsonPath, nil
}
