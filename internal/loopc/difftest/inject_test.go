package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/loopc"
	"repro/internal/loopc/gen"
	"repro/internal/model"
)

// specSize is the minimizer's progress measure.
func specSize(ps *gen.ProgramSpec) int {
	size := ps.N + ps.Iters
	for _, ns := range ps.Nests {
		size += 10 + len(ns.Stmts)
	}
	return size
}

// tamperedOracle fabricates a divergence without touching any product
// code: it compares the real spf-gen run against the oracle of a copy
// whose first reachable literal is doubled (via Mutate's literal-scale
// edit) — the observable a genuine constant-folding bug in the code
// generator would produce. Programs where no literal reaches the
// checksum don't fail, so the minimizer is forced to keep a live one.
func tamperedOracle(t *testing.T, procs int) func(*gen.ProgramSpec) bool {
	t.Helper()
	return func(ps *gen.ProgramSpec) bool {
		base := string(gen.Mutate(ps, nil).JSON())
		var tam *gen.ProgramSpec
		for arg := byte(1); arg < 32; arg += 4 { // factor-2 scale, rotating nests
			if c := gen.Mutate(ps, []byte{9, arg}); string(c.JSON()) != base {
				tam = c
				break
			}
		}
		if tam == nil {
			return false // no literals left to tamper with
		}
		app, err := gen.NewApp(ps)
		if err != nil {
			return false
		}
		cfg := app.Config(core.SmallScale, procs)
		cfg.Costs = model.SP2()
		cfg.App = model.DefaultAppCosts()
		res, err := app.Run(core.SPFGen, cfg)
		if err != nil {
			return false
		}
		p, err := tam.Build()
		if err != nil {
			return false
		}
		want, err := loopc.Oracle(p, tam.N, tam.Iters+gen.Warmup, procs, loopc.SPFPartition)
		if err != nil {
			return false
		}
		return res.Checksum != want
	}
}

// TestInjectedDivergenceShrinksToRepro is the harness's own mutation
// test: inject a divergence (check spf-gen against a tampered oracle),
// confirm the differential machinery sees it, and confirm the
// minimizer produces a strictly smaller, still-valid, still-failing
// spec whose repro files land on disk.
func TestInjectedDivergenceShrinksToRepro(t *testing.T) {
	const procs = 4
	fail := tamperedOracle(t, procs)
	var victim *gen.ProgramSpec
	for _, seed := range CorpusSeeds() {
		ps := gen.Generate(seed)
		if fail(ps) {
			victim = ps
			break
		}
	}
	if victim == nil {
		// Every generated program carries literals in live expressions;
		// doubling one must move some checksum.
		t.Fatal("no corpus seed notices a doubled literal — generator lost its literal coverage")
	}

	min := Minimize(victim, fail)
	if err := min.Check(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if !fail(min) {
		t.Fatal("minimized spec no longer fails")
	}
	if specSize(min) >= specSize(victim) {
		t.Fatalf("minimizer made no progress: size %d -> %d", specSize(victim), specSize(min))
	}

	dir := filepath.Join(t.TempDir(), "failures")
	path, err := WriteRepro(dir, min, []Divergence{{
		Program: min.Name, Seed: min.Seed, Version: core.SPFGen, Procs: procs,
		Kind: "checksum", Detail: "injected: compared against a doubled-literal oracle",
	}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gen.Parse(data)
	if err != nil {
		t.Fatalf("repro JSON does not parse: %v", err)
	}
	if back.Name != min.Name {
		t.Fatalf("repro round trip changed the name: %q != %q", back.Name, min.Name)
	}
	report, err := os.ReadFile(filepath.Join(dir, min.Name+".repro.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "gen.MustParse(`") {
		t.Fatal("repro report lacks the committable Go literal")
	}
}

// TestMinimizeNoFalseFailure: a predicate that never fires leaves the
// spec untouched.
func TestMinimizeUnreproducible(t *testing.T) {
	ps := gen.Generate(6)
	min := Minimize(ps, func(*gen.ProgramSpec) bool { return false })
	if string(min.JSON()) != string(ps.JSON()) {
		t.Fatal("Minimize changed a spec whose failure did not reproduce")
	}
}
