package difftest

import (
	"repro/internal/loopc/gen"
)

// Minimize delta-debugs a failing program: it greedily applies
// shrinking transformations — drop whole nests, drop statements, cut
// the iteration count, shrink the grid, remove parity guards, zero
// access offsets, collapse expression trees — keeping a candidate only
// if it still passes gen.Check (validity never regresses) and still
// fails the caller's predicate. It loops to a fixpoint, so the result
// is 1-minimal with respect to the transformation set.
//
// fail must be deterministic (run a Check lattice, compare a checksum —
// anything pure in the spec). Minimize calls it O(size²) times; keep
// the predicate's lattice small (one backend, one processor count) when
// minimizing interactively.
func Minimize(ps *gen.ProgramSpec, fail func(*gen.ProgramSpec) bool) *gen.ProgramSpec {
	cur := ps.Clone()
	if cur.Check() != nil || !fail(cur) {
		return cur // not a reproducible failure; nothing to shrink
	}
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Check() != nil {
				continue
			}
			if fail(cand) {
				cur = cand
				improved = true
				break // restart candidate generation from the smaller spec
			}
		}
		if !improved {
			return cur
		}
	}
}

// candidates generates every one-step shrink of ps, larger cuts first
// (dropping a nest beats zeroing an offset).
func candidates(ps *gen.ProgramSpec) []*gen.ProgramSpec {
	var out []*gen.ProgramSpec
	add := func(m *gen.ProgramSpec) { out = append(out, prune(m)) }

	// Drop each nest.
	if len(ps.Nests) > 1 {
		for ni := range ps.Nests {
			m := ps.Clone()
			m.Nests = append(m.Nests[:ni:ni], m.Nests[ni+1:]...)
			add(m)
		}
	}
	// Drop each statement.
	for ni := range ps.Nests {
		if len(ps.Nests[ni].Stmts) <= 1 {
			continue
		}
		for si := range ps.Nests[ni].Stmts {
			m := ps.Clone()
			ns := m.Nests[ni]
			ns.Stmts = append(ns.Stmts[:si:si], ns.Stmts[si+1:]...)
			add(m)
		}
	}
	// Fewer iterations.
	if ps.Iters > 1 {
		m := ps.Clone()
		m.Iters = 1
		add(m)
	}
	// Smaller grid.
	for _, n := range []int{8, 16, 24} {
		if n < ps.N {
			m := ps.Clone()
			m.N = n
			add(m)
		}
	}
	// Remove parity guards.
	for ni := range ps.Nests {
		if ps.Nests[ni].Parity == nil {
			continue
		}
		m := ps.Clone()
		m.Nests[ni].Parity = nil
		add(m)
	}
	// Zero each nonzero access offset. The clone has the same offsets
	// in the same stable order, so slot indexes carry over.
	for ni := range ps.Nests {
		for slot := range offsets(ps.Nests[ni]) {
			m := ps.Clone()
			*offsets(m.Nests[ni])[slot].ptr = 0
			add(m)
		}
	}
	// Collapse each binary node to its left operand.
	for ni := range ps.Nests {
		nbin := countBins(ps.Nests[ni])
		for b := 0; b < nbin; b++ {
			m := ps.Clone()
			collapseBin(m.Nests[ni], b)
			add(m)
		}
	}
	return out
}

// offset identifies one nonzero offset inside a nest.
type offset struct {
	slot int
	ptr  *int
}

// offsets lists pointers to every nonzero index offset in the nest, in
// a stable order (statement, LHS then RHS, row then col).
func offsets(ns *gen.NestSpec) []offset {
	var out []offset
	visit := func(a *gen.AccessSpec) {
		for _, p := range []*int{&a.Row.Off, &a.Col.Off} {
			if *p != 0 {
				out = append(out, offset{slot: len(out), ptr: p})
			}
		}
	}
	for si := range ns.Stmts {
		if lhs := ns.Stmts[si].LHS; lhs != nil {
			visit(lhs)
		}
		walkExpr(ns.Stmts[si].RHS, func(e *gen.ExprSpec) {
			if e.Ref != nil {
				visit(e.Ref)
			}
		})
	}
	return out
}

// walkExpr visits every node of an expression tree, parents first.
func walkExpr(e *gen.ExprSpec, f func(*gen.ExprSpec)) {
	if e == nil {
		return
	}
	f(e)
	walkExpr(e.L, f)
	walkExpr(e.R, f)
}

// countBins counts binary nodes in a nest's expressions.
func countBins(ns *gen.NestSpec) int {
	n := 0
	for si := range ns.Stmts {
		walkExpr(ns.Stmts[si].RHS, func(e *gen.ExprSpec) {
			if e.Op != "" {
				n++
			}
		})
	}
	return n
}

// collapseBin replaces the k-th binary node (same traversal order as
// countBins) with its left operand.
func collapseBin(ns *gen.NestSpec, k int) {
	seen := 0
	for si := range ns.Stmts {
		walkExpr(ns.Stmts[si].RHS, func(e *gen.ExprSpec) {
			if e.Op == "" {
				return
			}
			if seen == k && e.L != nil {
				*e = *e.L
			}
			seen++
		})
	}
}

// prune drops declarations a shrink orphaned: scalars no statement
// reduces (and reduce statements whose scalar is gone), arrays nothing
// references except the result array. Without pruning, Check would
// reject most structural shrinks for dangling names.
func prune(ps *gen.ProgramSpec) *gen.ProgramSpec {
	reduced := map[string]bool{}
	for _, ns := range ps.Nests {
		for si := range ns.Stmts {
			if ns.Stmts[si].ReduceInto != "" {
				reduced[ns.Stmts[si].ReduceInto] = true
			}
		}
	}
	var scalars []string
	for _, s := range ps.Scalars {
		if reduced[s] {
			scalars = append(scalars, s)
		}
	}
	ps.Scalars = scalars

	used := map[string]bool{ps.Result: true}
	for _, ns := range ps.Nests {
		for si := range ns.Stmts {
			if lhs := ns.Stmts[si].LHS; lhs != nil {
				used[lhs.Array] = true
			}
			walkExpr(ns.Stmts[si].RHS, func(e *gen.ExprSpec) {
				if e.Ref != nil {
					used[e.Ref.Array] = true
				}
			})
		}
	}
	var arrays []gen.ArraySpec
	for _, a := range ps.Arrays {
		if used[a.Name] {
			arrays = append(arrays, a)
		}
	}
	ps.Arrays = arrays
	return ps
}
