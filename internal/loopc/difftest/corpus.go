package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/loopc/gen"
)

// CorpusSeeds are the generator seeds of the committed corpus under
// internal/loopc/testdata/corpus. Adding a seed here and running the
// corpus test with -update-gen-corpus regenerates the files; removing
// or reordering entries invalidates the golden traffic table.
func CorpusSeeds() []int64 {
	seeds := make([]int64, 0, 40)
	for s := int64(1); s <= 40; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}

// CorpusDir is the committed corpus location relative to this package.
const CorpusDir = "../testdata/corpus"

// LoadCorpus reads every committed corpus entry, sorted by filename.
func LoadCorpus(dir string) ([]*gen.ProgramSpec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("difftest: no corpus entries in %s", dir)
	}
	specs := make([]*gen.ProgramSpec, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		ps, err := gen.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		if err := ps.Check(); err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		specs = append(specs, ps)
	}
	return specs, nil
}
