package difftest

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/loopc/gen"
	"repro/internal/model"
	"repro/internal/proto"
)

var (
	updateCorpus = flag.Bool("update-gen-corpus", false,
		"regenerate internal/loopc/testdata/corpus from CorpusSeeds")
	updateGolden = flag.Bool("update-gen-golden", false,
		"regenerate internal/loopc/testdata/corpus_golden.json")
)

const goldenPath = "../testdata/corpus_golden.json"

// TestCorpusMatchesGenerator pins the generator: every committed corpus
// entry must be byte-identical to Generate(seed). A deliberate
// generator change regenerates with
//
//	go test ./internal/loopc/difftest -run TestCorpus -update-gen-corpus -update-gen-golden
func TestCorpusMatchesGenerator(t *testing.T) {
	if *updateCorpus {
		if err := os.MkdirAll(CorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, _ := filepath.Glob(filepath.Join(CorpusDir, "*.json"))
		for _, f := range old {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
		for _, seed := range CorpusSeeds() {
			ps := gen.Generate(seed)
			path := filepath.Join(CorpusDir, ps.Name+".json")
			if err := os.WriteFile(path, ps.JSON(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	specs, err := LoadCorpus(CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(CorpusSeeds()) {
		t.Fatalf("corpus has %d entries, want %d (rerun with -update-gen-corpus)", len(specs), len(CorpusSeeds()))
	}
	bySeed := map[int64]*gen.ProgramSpec{}
	for _, ps := range specs {
		bySeed[ps.Seed] = ps
	}
	for _, seed := range CorpusSeeds() {
		committed, ok := bySeed[seed]
		if !ok {
			t.Errorf("seed %d missing from corpus", seed)
			continue
		}
		if !bytes.Equal(committed.JSON(), gen.Generate(seed).JSON()) {
			t.Errorf("seed %d: committed corpus entry differs from Generate(%d) — generator changed without -update-gen-corpus", seed, seed)
		}
	}
}

// corpusGold is one program's pinned observables: checksums per backend
// (hex float64, bitwise) and the timed-region traffic of the parallel
// backends at 4 processors — the same observables the hand-ported apps
// pin in internal/harness/traffic_golden_test.go.
type corpusGold struct {
	Name        string `json:"name"`
	SeqChecksum string `json:"seq_checksum"`
	SPF4        string `json:"spf_gen_4_checksum"`
	XHPF4       string `json:"xhpf_gen_4_checksum"`
	SPFLRCMsgs  int64  `json:"spf_gen_lrc_msgs"`
	SPFLRCBytes int64  `json:"spf_gen_lrc_bytes"`
	SPFHomeMsgs int64  `json:"spf_gen_hlrc_msgs"`
	SPFHomeByte int64  `json:"spf_gen_hlrc_bytes"`
	XHPFMsgs    int64  `json:"xhpf_gen_msgs"`
	XHPFBytes   int64  `json:"xhpf_gen_bytes"`
}

func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// goldFor measures one corpus program's golden row at 4 processors.
func goldFor(t *testing.T, ps *gen.ProgramSpec) corpusGold {
	t.Helper()
	app, err := gen.NewApp(ps)
	if err != nil {
		t.Fatal(err)
	}
	run := func(v core.Version, procs int, pn proto.Name) core.Result {
		cfg := app.Config(core.SmallScale, procs)
		cfg.Costs = model.SP2()
		cfg.App = model.DefaultAppCosts()
		cfg.Protocol = pn
		res, err := app.Run(v, cfg)
		if err != nil {
			t.Fatalf("%s/%s procs=%d: %v", ps.Name, v, procs, err)
		}
		return res
	}
	seq := run(core.Seq, 1, proto.HomelessLRC)
	spfLRC := run(core.SPFGen, 4, proto.HomelessLRC)
	spfHome := run(core.SPFGen, 4, proto.HomeLRC)
	xhpf := run(core.XHPFGen, 4, "")
	if spfHome.Checksum != spfLRC.Checksum {
		t.Fatalf("%s: protocol changed the answer: %x vs %x", ps.Name, spfHome.Checksum, spfLRC.Checksum)
	}
	return corpusGold{
		Name:        ps.Name,
		SeqChecksum: hexf(seq.Checksum),
		SPF4:        hexf(spfLRC.Checksum),
		XHPF4:       hexf(xhpf.Checksum),
		SPFLRCMsgs:  spfLRC.Stats.TotalMsgs(),
		SPFLRCBytes: spfLRC.Stats.TotalBytes(),
		SPFHomeMsgs: spfHome.Stats.TotalMsgs(),
		SPFHomeByte: spfHome.Stats.TotalBytes(),
		XHPFMsgs:    xhpf.Stats.TotalMsgs(),
		XHPFBytes:   xhpf.Stats.TotalBytes(),
	}
}

// TestCorpusGoldenTraffic pins checksums and traffic of every corpus
// program, exactly like the hand-ported apps' golden table: silent
// drift in the compiler, the runtimes or the protocols fails loudly;
// deliberate changes regenerate with -update-gen-golden.
func TestCorpusGoldenTraffic(t *testing.T) {
	specs, err := LoadCorpus(CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		rows := make([]corpusGold, 0, len(specs))
		for _, ps := range specs {
			rows = append(rows, goldFor(t, ps))
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (rerun with -update-gen-golden)", err)
	}
	var rows []corpusGold
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	byName := map[string]corpusGold{}
	for _, g := range rows {
		byName[g.Name] = g
	}
	sample := specs
	if testing.Short() {
		sample = specs[:8]
	}
	for _, ps := range sample {
		want, ok := byName[ps.Name]
		if !ok {
			t.Errorf("%s: no golden row (rerun with -update-gen-golden)", ps.Name)
			continue
		}
		if got := goldFor(t, ps); got != want {
			t.Errorf("%s: golden drift:\n got %+v\nwant %+v\n(if deliberate, rerun with -update-gen-golden)", ps.Name, got, want)
		}
	}
}

// TestCorpusDifferential runs the full differential lattice over the
// committed corpus: seq, spf-gen under both protocols and all home
// policies, xhpf-gen — each checked bitwise against the oracle for its
// partition and for repeat determinism. Short mode samples.
func TestCorpusDifferential(t *testing.T) {
	specs, err := LoadCorpus(CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Procs: []int{1, 2, 4, 8}, Repeats: 2}
	if testing.Short() {
		specs = specs[:8]
		opts.Procs = []int{2, 4}
	}
	for _, ps := range specs {
		divs, err := Check(ps, opts)
		if err != nil {
			t.Fatalf("%s: %v", ps.Name, err)
		}
		if len(divs) == 0 {
			continue
		}
		for _, d := range divs {
			t.Errorf("%s", d)
		}
		// Shrink and save a committable repro for the CI artifact.
		min := Minimize(ps, func(c *gen.ProgramSpec) bool {
			d, err := Check(c, Options{Procs: opts.Procs, Repeats: 1})
			return err == nil && len(d) > 0
		})
		minDivs, _ := Check(min, Options{Procs: opts.Procs, Repeats: 1})
		path, werr := WriteRepro("../testdata/failures", min, minDivs)
		if werr != nil {
			t.Errorf("writing repro: %v", werr)
		} else {
			t.Logf("minimized repro written to %s", path)
		}
	}
}
