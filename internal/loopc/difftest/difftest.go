// Package difftest is the checking half of the differential
// compiler-fuzzing rig (internal/loopc/gen generates the workloads). It
// runs a generated program through every backend the compiler lowers to
// — the sequential interpreter, the fork-join DSM runtime under both
// coherence protocols and all home-placement policies, the
// message-passing runtime — across processor counts, and asserts two
// properties:
//
//   - agreement: every run's checksum equals the loopc.Oracle value for
//     that backend's partition, bit for bit (protocols and policies
//     change traffic, never results);
//   - determinism: repeating a configuration reproduces the checksum,
//     the virtual time, and the message/byte totals exactly.
//
// A failing program is shrunk by Minimize (delta debugging over the
// spec: drop nests and statements, shrink the grid and iteration
// counts, zero offsets, simplify expressions) and written out by
// WriteRepro as a committable corpus entry plus a Go literal.
package difftest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loopc/gen"
	"repro/internal/model"
	"repro/internal/proto"
)

// Options configures a differential check.
type Options struct {
	// Procs lists the processor counts to check the parallel backends
	// at. Default: 1, 2, 4, 8 (the envelope's MaxProcs).
	Procs []int
	// Repeats is how many times each configuration runs when checking
	// determinism. Default 2; 1 disables the repeat check.
	Repeats int
	// Costs/App is the cost calibration; defaults to the engine's
	// (model.SP2, model.DefaultAppCosts). Costs do not affect checksums,
	// only the times and traffic the determinism check compares.
	Costs *model.Costs
	App   *model.AppCosts
}

func (o Options) withDefaults() Options {
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4, 8}
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	if o.Costs == nil {
		c := model.SP2()
		o.Costs = &c
	}
	if o.App == nil {
		a := model.DefaultAppCosts()
		o.App = &a
	}
	return o
}

// Divergence describes one failed assertion.
type Divergence struct {
	Program  string
	Seed     int64
	Version  core.Version
	Procs    int
	Protocol proto.Name
	Policy   proto.PolicyName
	Kind     string // "checksum" or "nondeterminism"
	Detail   string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s procs=%d proto=%s policy=%s: %s: %s",
		d.Program, d.Version, d.Procs, d.Protocol, d.Policy, d.Kind, d.Detail)
}

// runConfig is one point of the configuration lattice.
type runConfig struct {
	version  core.Version
	procs    int
	protocol proto.Name
	policy   proto.PolicyName
}

// lattice enumerates the configurations for the given processor counts:
// seq at one processor; spf-gen under {lrc} ∪ {hlrc × policies} at each
// count; xhpf-gen at each count (protocol-free).
func lattice(procs []int) []runConfig {
	out := []runConfig{{version: core.Seq, procs: 1, protocol: proto.HomelessLRC}}
	for _, p := range procs {
		out = append(out, runConfig{version: core.SPFGen, procs: p, protocol: proto.HomelessLRC})
		for _, pol := range proto.PolicyNames() {
			out = append(out, runConfig{version: core.SPFGen, procs: p, protocol: proto.HomeLRC, policy: pol})
		}
		out = append(out, runConfig{version: core.XHPFGen, procs: p})
	}
	return out
}

// Check runs the full differential lattice over one program and returns
// every divergence found. Apps are driven directly (not through the
// exp.Engine cache): the determinism assertion needs genuinely
// independent repeat runs.
func Check(ps *gen.ProgramSpec, opts Options) ([]Divergence, error) {
	opts = opts.withDefaults()
	app, err := gen.NewApp(ps)
	if err != nil {
		return nil, err
	}
	var divs []Divergence
	for _, rc := range lattice(opts.Procs) {
		want, err := app.ExpectedChecksum(rc.version, rc.procs)
		if err != nil {
			return divs, err
		}
		cfg := app.Config(core.SmallScale, rc.procs)
		cfg.Costs = *opts.Costs
		cfg.App = *opts.App
		cfg.Protocol = rc.protocol
		cfg.HomePolicy = rc.policy

		first, err := app.Run(rc.version, cfg)
		if err != nil {
			return divs, fmt.Errorf("%s %s procs=%d: %w", ps.Name, rc.version, rc.procs, err)
		}
		if first.Checksum != want {
			divs = append(divs, Divergence{
				Program: ps.Name, Seed: ps.Seed,
				Version: rc.version, Procs: rc.procs,
				Protocol: rc.protocol, Policy: rc.policy,
				Kind:   "checksum",
				Detail: fmt.Sprintf("got %x, oracle %x", first.Checksum, want),
			})
			continue // determinism of a wrong answer is uninteresting
		}
		for rep := 1; rep < opts.Repeats; rep++ {
			again, err := app.Run(rc.version, cfg)
			if err != nil {
				return divs, fmt.Errorf("%s %s procs=%d repeat: %w", ps.Name, rc.version, rc.procs, err)
			}
			var why string
			switch {
			case again.Checksum != first.Checksum:
				why = fmt.Sprintf("checksum %x then %x", first.Checksum, again.Checksum)
			case again.Time != first.Time:
				why = fmt.Sprintf("time %v then %v", first.Time, again.Time)
			case again.Stats.TotalMsgs() != first.Stats.TotalMsgs():
				why = fmt.Sprintf("msgs %d then %d", first.Stats.TotalMsgs(), again.Stats.TotalMsgs())
			case again.Stats.TotalBytes() != first.Stats.TotalBytes():
				why = fmt.Sprintf("bytes %d then %d", first.Stats.TotalBytes(), again.Stats.TotalBytes())
			}
			if why != "" {
				divs = append(divs, Divergence{
					Program: ps.Name, Seed: ps.Seed,
					Version: rc.version, Procs: rc.procs,
					Protocol: rc.protocol, Policy: rc.policy,
					Kind:   "nondeterminism",
					Detail: fmt.Sprintf("repeat %d: %s", rep, why),
				})
				break
			}
		}
	}
	return divs, nil
}

// CheckSeeds generates and checks a range of seeds — the harness
// experiment and ad-hoc sweeps use this entry point.
func CheckSeeds(seeds []int64, opts Options) ([]Divergence, error) {
	var divs []Divergence
	for _, seed := range seeds {
		d, err := Check(gen.Generate(seed), opts)
		if err != nil {
			return divs, err
		}
		divs = append(divs, d...)
	}
	return divs, nil
}
