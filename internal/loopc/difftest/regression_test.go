package difftest

import (
	"testing"

	"repro/internal/loopc/gen"
)

// twinApplyRepro is the first real divergence this harness found (seed 30
// of the corpus, shrunk by Minimize): a parallel in-place update of a
// multi-writer page, followed by a serial master-only overwrite of the
// same rows, followed by a parallel pure-read reduction. Under the
// homeless protocol the master applied the workers' diffs to its page
// while holding a live twin without refreshing the twin, so its serial
// overwrite — which restored bytes to the twin's stale values — vanished
// from the next extracted diff and the workers reduced over their own
// stale rows. Fixed by applying incoming diffs to the twin as well
// (tmk.Region.apply), the TreadMarks rule that a twin always shows only
// this node's un-extracted writes.
var twinApplyRepro = gen.MustParse(`
{
  "seed": 30,
  "name": "twin-apply-regression",
  "n": 8,
  "iters": 2,
  "arrays": [
    {"name": "a", "init": "coords"},
    {"name": "b", "init": "ramp"}
  ],
  "scalars": ["s1"],
  "nests": [
    {
      "name": "n2",
      "row": {"var": "i", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "col": {"var": "j", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "stmts": [
        {
          "rhs": {"op": "*", "l": {"lit": 1.5}, "r": {"ref": {"array": "b", "row": {"var": "i", "off": 0}, "col": {"var": "j", "off": 0}}}},
          "reduce_into": "s1",
          "reduce_op": "sum"
        }
      ],
      "point_cost_ns": 35
    },
    {
      "name": "n3",
      "row": {"var": "i", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "col": {"var": "j", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "stmts": [
        {
          "lhs": {"array": "b", "row": {"var": "i", "off": 0}, "col": {"var": "j", "off": 0}},
          "rhs": {"op": "+", "l": {"ref": {"array": "b", "row": {"var": "i", "off": 0}, "col": {"var": "j", "off": 0}}}, "r": {"ref": {"array": "b", "row": {"var": "i", "off": 0}, "col": {"var": "j", "off": 0}}}}
        }
      ],
      "point_cost_ns": 35
    },
    {
      "name": "n4",
      "row": {"var": "i", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "col": {"var": "j", "lo": {"ncoeff": 0, "const": 2}, "hi": {"ncoeff": 1, "const": -2}},
      "stmts": [
        {
          "lhs": {"array": "b", "row": {"var": "i", "off": 0}, "col": {"var": "j", "off": 0}},
          "rhs": {"ref": {"array": "b", "row": {"var": "i", "off": -1}, "col": {"var": "j", "off": 0}}}
        }
      ],
      "point_cost_ns": 50
    }
  ],
  "result": "a"
}
`)

// TestTwinApplyRegression keeps the minimized repro honest against every
// backend, protocol and processor count it originally diverged at.
func TestTwinApplyRegression(t *testing.T) {
	if err := twinApplyRepro.Check(); err != nil {
		t.Fatal(err)
	}
	divs, err := Check(twinApplyRepro, Options{Procs: []int{2, 3, 4}, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("%s", d)
	}
}
