// Package loopc is a mini parallelizing-compiler front end: the piece
// the paper presumes but the repo so far only reproduced the *output*
// of. Applications describe a kernel once, as a typed loop-nest IR over
// shared 2-D arrays; the compiler analyzes dependences (distance
// vectors for coefficient-1 affine accesses, parity separation for
// red-black sweeps, recognized scalar reductions), classifies each nest
// as DOALL, reduction, or serial; chooses BLOCK row partitions and the
// communication they imply (halo-exchange widths from dependence
// distances, broadcasts for replicated reads in serial nests); and
// lowers the result onto two runtimes, mirroring the paper's two
// compilers:
//
//   - the SPF fork-join DSM runtime (spf.ParallelDo over tmk regions),
//     registered as application version "spf-gen";
//   - the XHPF message-passing runtime (owner-computes SPMD with
//     xhpf.ExchangeHalo / BroadcastPartition / AllReduce and LoopSync
//     at parallel-loop boundaries), registered as "xhpf-gen".
//
// Compiled versions are required to be bit-identical to their
// hand-coded counterparts: the lowering emits exactly the access
// ranges, schedules and float32 expression shapes a careful hand coder
// writes, so checksums match to the last bit under every coherence
// protocol and node count (asserted by TestCompiledEquivalence in
// internal/harness).
//
// Supported IR shape (restrictions are diagnosed, not silently
// miscompiled): rectangular 2-deep nests (row, col) over n×n float32
// arrays; index expressions are loopvar+constant in the matching
// dimension; an optional (row+col) parity guard per nest; multiple
// statements per innermost body (imperfect nests); scalar sum/max
// reductions. Anything the analyzer cannot prove independent falls back
// to a serial nest, which still lowers correctly (master-only execution
// on the DSM, replicated execution after a broadcast under message
// passing).
package loopc

import (
	"fmt"

	"repro/internal/sim"
)

// Extent is an affine bound in the size parameter n: NCoeff*n + Const.
type Extent struct {
	NCoeff int
	Const  int
}

// Eval resolves the extent for a concrete n.
func (e Extent) Eval(n int) int { return e.NCoeff*n + e.Const }

// Ext is shorthand for an Extent literal.
func Ext(ncoeff, c int) Extent { return Extent{NCoeff: ncoeff, Const: c} }

// Loop is one loop of a nest: var name and half-open bounds [Lo, Hi).
type Loop struct {
	Var    string
	Lo, Hi Extent
}

// Index is a coefficient-1 affine index expression: Var + Off. An empty
// Var is a constant index.
type Index struct {
	Var string
	Off int
}

// Access names one element of a 2-D array: Array[Row][Col].
type Access struct {
	Array    string
	Row, Col Index
}

// At builds the common access A[rowVar+ro][colVar+co].
func At(array, rowVar string, ro int, colVar string, co int) Access {
	return Access{Array: array, Row: Index{Var: rowVar, Off: ro}, Col: Index{Var: colVar, Off: co}}
}

// Expr is a float32 expression tree. Evaluation order is the tree
// shape, so an IR author controls floating-point association exactly —
// that is what makes compiled code bit-identical to hand-written code.
type Expr interface {
	walk(f func(Access))
}

// Lit is a float32 constant.
type Lit float32

// Ref reads an array element.
type Ref Access

// Bin is a binary operation; L is evaluated first.
type Bin struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

func (Lit) walk(func(Access))      {}
func (r Ref) walk(f func(Access))  { f(Access(r)) }
func (b *Bin) walk(f func(Access)) { b.L.walk(f); b.R.walk(f) }

// Add, Sub, Mul and Div build binary nodes (left operand first).
func Add(l, r Expr) Expr { return &Bin{Op: '+', L: l, R: r} }
func Sub(l, r Expr) Expr { return &Bin{Op: '-', L: l, R: r} }
func Mul(l, r Expr) Expr { return &Bin{Op: '*', L: l, R: r} }
func Div(l, r Expr) Expr { return &Bin{Op: '/', L: l, R: r} }

// ReduceOp is a recognized reduction operator.
type ReduceOp byte

const (
	// ReduceSum accumulates by addition (identity 0).
	ReduceSum ReduceOp = '+'
	// ReduceMax keeps the maximum (identity -Inf).
	ReduceMax ReduceOp = 'M'
)

// Stmt is one innermost-body statement. With ReduceInto empty it is the
// array assignment LHS = RHS; otherwise it accumulates RHS into the
// named scalar with Op and LHS is ignored.
type Stmt struct {
	LHS        Access
	RHS        Expr
	ReduceInto string
	Op         ReduceOp
}

// Parity restricts a nest to the points where (row+col) mod 2 == Rem —
// the red-black iteration-space split.
type Parity struct {
	Rem int
}

// Nest is a rectangular 2-deep loop nest executed once per program
// iteration. Stmts run in order at each (row, col) point that passes
// the guard. PointCost is the virtual CPU time charged per executed
// point (the kernel-cost annotation; hand-coded versions charge the
// same way).
type Nest struct {
	Name      string
	Row, Col  Loop
	Guard     *Parity
	Stmts     []*Stmt
	PointCost sim.Time
}

// ArrayDecl declares an n×n row-major float32 array. Init (optional)
// fills element (i, j); every backend initializes identically so the
// versions agree from the first iteration.
type ArrayDecl struct {
	Name string
	Init func(i, j, n int) float32
}

// Program is a complete kernel: arrays, reduction scalars, and the
// nests executed in order each iteration. Result names the array the
// checksum sums (scalar finals are folded in afterwards, in declaration
// order).
type Program struct {
	Name    string
	Arrays  []ArrayDecl
	Scalars []string
	Nests   []*Nest
	Result  string
}

// arrayIndex maps array names to their declaration slot.
func (p *Program) arrayIndex() map[string]int {
	m := make(map[string]int, len(p.Arrays))
	for i, a := range p.Arrays {
		m[a.Name] = i
	}
	return m
}

// scalarIndex maps scalar names to their declaration slot.
func (p *Program) scalarIndex() map[string]int {
	m := make(map[string]int, len(p.Scalars))
	for i, s := range p.Scalars {
		m[s] = i
	}
	return m
}

// Validate checks the structural rules the analyzer and backends rely
// on: declared names, matching loop vars in index expressions, and a
// result array. It does not check bounds — those depend on n and are
// the caller's contract, as in any Fortran program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("loopc: program needs a name")
	}
	arrays := p.arrayIndex()
	scalars := p.scalarIndex()
	if len(arrays) != len(p.Arrays) {
		return fmt.Errorf("loopc: %s: duplicate array declaration", p.Name)
	}
	if _, ok := arrays[p.Result]; !ok {
		return fmt.Errorf("loopc: %s: result array %q not declared", p.Name, p.Result)
	}
	ops := map[string]ReduceOp{}
	for _, nst := range p.Nests {
		if nst.Row.Var == "" || nst.Col.Var == "" || nst.Row.Var == nst.Col.Var {
			return fmt.Errorf("loopc: %s/%s: nests need two distinct loop vars", p.Name, nst.Name)
		}
		if len(nst.Stmts) == 0 {
			return fmt.Errorf("loopc: %s/%s: empty nest", p.Name, nst.Name)
		}
		for si, s := range nst.Stmts {
			// Statement-scoped checks carry the statement index so a
			// generated or minimized program's rejection names the exact
			// offending statement.
			check := func(a Access) error {
				if _, ok := arrays[a.Array]; !ok {
					return fmt.Errorf("loopc: %s/%s: stmt %d: unknown array %q", p.Name, nst.Name, si, a.Array)
				}
				for _, ix := range []Index{a.Row, a.Col} {
					if ix.Var != "" && ix.Var != nst.Row.Var && ix.Var != nst.Col.Var {
						return fmt.Errorf("loopc: %s/%s: stmt %d: index var %q not a loop var", p.Name, nst.Name, si, ix.Var)
					}
				}
				return nil
			}
			var err error
			if s.ReduceInto != "" {
				if _, ok := scalars[s.ReduceInto]; !ok {
					return fmt.Errorf("loopc: %s/%s: stmt %d: unknown scalar %q", p.Name, nst.Name, si, s.ReduceInto)
				}
				if s.Op != ReduceSum && s.Op != ReduceMax {
					return fmt.Errorf("loopc: %s/%s: stmt %d: unknown reduction op %q", p.Name, nst.Name, si, s.Op)
				}
				if prev, seen := ops[s.ReduceInto]; seen && prev != s.Op {
					return fmt.Errorf("loopc: %s/%s: stmt %d: scalar %q reduced with two operators", p.Name, nst.Name, si, s.ReduceInto)
				}
				ops[s.ReduceInto] = s.Op
			} else if err = check(s.LHS); err != nil {
				return err
			}
			s.RHS.walk(func(a Access) {
				if err == nil {
					err = check(a)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
