package loopc

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// stencilIR is a Jacobi-shaped two-nest program: 4-point stencil into
// scratch, copy back.
func stencilIR() *Program {
	ref := func(arr string, ro, co int) Expr { return Ref(At(arr, "i", ro, "j", co)) }
	interior := Loop{Lo: Ext(0, 1), Hi: Ext(1, -1)}
	row, col := interior, interior
	row.Var, col.Var = "i", "j"
	edges := func(i, j, n int) float32 {
		if i == 0 || j == 0 || i == n-1 || j == n-1 {
			return 1
		}
		return 0
	}
	return &Program{
		Name: "stencil",
		Arrays: []ArrayDecl{
			{Name: "data", Init: edges},
			{Name: "scratch", Init: edges},
		},
		Nests: []*Nest{
			{
				Name: "update", Row: row, Col: col,
				Stmts: []*Stmt{{LHS: At("scratch", "i", 0, "j", 0),
					RHS: Mul(Lit(0.25), Add(Add(Add(ref("data", -1, 0), ref("data", 1, 0)), ref("data", 0, -1)), ref("data", 0, 1)))}},
			},
			{
				Name: "copy", Row: row, Col: col,
				Stmts: []*Stmt{{LHS: At("data", "i", 0, "j", 0), RHS: ref("scratch", 0, 0)}},
			},
		},
		Result: "data",
	}
}

// redBlackIR is an in-place guarded 5-point relaxation (two colors).
func redBlackIR(guarded bool) *Program {
	ref := func(ro, co int) Expr { return Ref(At("u", "i", ro, "j", co)) }
	relax := Add(Mul(Lit(-0.25), ref(0, 0)),
		Mul(Lit(0.3125), Add(Add(Add(ref(-1, 0), ref(1, 0)), ref(0, -1)), ref(0, 1))))
	interior := Loop{Lo: Ext(0, 1), Hi: Ext(1, -1)}
	row, col := interior, interior
	row.Var, col.Var = "i", "j"
	edges := func(i, j, n int) float32 {
		if i == 0 || j == 0 || i == n-1 || j == n-1 {
			return 1
		}
		return 0
	}
	var nests []*Nest
	for color := 0; color < 2; color++ {
		nst := &Nest{
			Name: fmt.Sprintf("sweep%d", color), Row: row, Col: col,
			Stmts: []*Stmt{{LHS: At("u", "i", 0, "j", 0), RHS: relax}},
		}
		if guarded {
			nst.Guard = &Parity{Rem: color}
		}
		nests = append(nests, nst)
	}
	return &Program{
		Name:   "redblack",
		Arrays: []ArrayDecl{{Name: "u", Init: edges}},
		Nests:  nests,
		Result: "u",
	}
}

// reductionIR increments an integer-valued grid, then reduces its sum
// and max — exact in floating point, so every combining order agrees.
func reductionIR() *Program {
	full := Loop{Lo: Ext(0, 0), Hi: Ext(1, 0)}
	row, col := full, full
	row.Var, col.Var = "i", "j"
	a := func(ro, co int) Expr { return Ref(At("a", "i", ro, "j", co)) }
	return &Program{
		Name:    "sums",
		Arrays:  []ArrayDecl{{Name: "a", Init: func(i, j, n int) float32 { return float32((i + j) % 7) }}},
		Scalars: []string{"total", "peak"},
		Nests: []*Nest{
			{
				Name: "inc", Row: row, Col: col,
				Stmts: []*Stmt{{LHS: At("a", "i", 0, "j", 0), RHS: Add(a(0, 0), Lit(1))}},
			},
			{
				Name: "fold", Row: row, Col: col,
				Stmts: []*Stmt{
					{ReduceInto: "total", Op: ReduceSum, RHS: a(0, 0)},
					{ReduceInto: "peak", Op: ReduceMax, RHS: a(0, 0)},
				},
			},
		},
		Result: "a",
	}
}

// coeffReadIR reads a never-written coefficient array through a
// constant row index (b[0][j]) inside a DOALL nest. Legal — nothing
// writes b — but the rows read are unrelated to the executing slice,
// so the DSM backend must validate the whole region, not the slice's
// rows (regression: at n large enough that b spans several pages,
// workers used to read stale zeros from unvalidated pages).
func coeffReadIR() *Program {
	full := Loop{Lo: Ext(0, 0), Hi: Ext(1, 0)}
	row, col := full, full
	row.Var, col.Var = "i", "j"
	return &Program{
		Name: "coeff",
		Arrays: []ArrayDecl{
			{Name: "a"},
			{Name: "b", Init: func(i, j, n int) float32 { return float32(j%9 + 1) }},
		},
		Nests: []*Nest{{
			Name: "apply", Row: row, Col: col,
			Stmts: []*Stmt{{LHS: At("a", "i", 0, "j", 0),
				RHS: Add(Ref(At("a", "i", 0, "j", 0)), Ref(Access{Array: "b", Row: Index{Off: 0}, Col: Index{Var: "j"}}))}},
		}},
		Result: "a",
	}
}

// serialIR is a row recurrence: u[i][j] = u[i-1][j] + 1, genuinely
// serial in the row loop.
func serialIR() *Program {
	row := Loop{Var: "i", Lo: Ext(0, 1), Hi: Ext(1, 0)}
	col := Loop{Var: "j", Lo: Ext(0, 0), Hi: Ext(1, 0)}
	return &Program{
		Name:   "recurrence",
		Arrays: []ArrayDecl{{Name: "u", Init: func(i, j, n int) float32 { return float32(j % 3) }}},
		Nests: []*Nest{{
			Name: "scan", Row: row, Col: col,
			Stmts: []*Stmt{{LHS: At("u", "i", 0, "j", 0), RHS: Add(Ref(At("u", "i", -1, "j", 0)), Lit(1))}},
		}},
		Result: "u",
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	p := stencilIR()
	p.Result = "nope"
	if err := p.Validate(); err == nil {
		t.Error("undeclared result array not rejected")
	}
	p = stencilIR()
	p.Nests[0].Stmts[0].LHS.Array = "ghost"
	if err := p.Validate(); err == nil {
		t.Error("unknown LHS array not rejected")
	}
	p = stencilIR()
	p.Nests[0].Stmts[0].LHS.Row.Var = "k"
	if err := p.Validate(); err == nil {
		t.Error("unknown index var not rejected")
	}
	p = reductionIR()
	p.Nests[1].Stmts[1].ReduceInto = "total" // total via sum AND max
	if err := p.Validate(); err == nil {
		t.Error("conflicting reduction operators not rejected")
	}
}

func TestAnalyzeStencil(t *testing.T) {
	infos, err := Analyze(stencilIR())
	if err != nil {
		t.Fatal(err)
	}
	for k, info := range infos {
		if info.Class != DOALL {
			t.Errorf("nest %d: class %v, want DOALL (%s)", k, info.Class, info.Why)
		}
	}
	u := infos[0].Uses["data"]
	if u == nil || u.MinRowOff != -1 || u.MaxRowOff != 1 {
		t.Errorf("data read window = %+v, want [-1, 1]", u)
	}
	// Distance vectors: the copy nest writes data[i][j] while the
	// stencil nest's pairs are cross-array only; within the copy nest
	// the only pair is scratch read vs data write — different arrays,
	// so no deps at all.
	if len(infos[1].Deps) != 0 {
		t.Errorf("copy nest deps = %v, want none", infos[1].Deps)
	}
}

func TestAnalyzeRedBlack(t *testing.T) {
	infos, err := Analyze(redBlackIR(true))
	if err != nil {
		t.Fatal(err)
	}
	for k, info := range infos {
		if info.Class != DOALL {
			t.Errorf("guarded sweep %d: class %v (%s), want DOALL", k, info.Class, info.Why)
		}
		refuted := 0
		for _, d := range info.Deps {
			if d.Refuted {
				refuted++
			}
		}
		if refuted != 4 {
			t.Errorf("sweep %d: %d parity-refuted deps, want 4 (the neighbor reads)", k, refuted)
		}
	}
	// Without the guards the in-place update carries row dependences.
	infos, err = Analyze(redBlackIR(false))
	if err != nil {
		t.Fatal(err)
	}
	for k, info := range infos {
		if info.Class != Serial {
			t.Errorf("unguarded sweep %d: class %v, want Serial", k, info.Class)
		}
	}
}

func TestAnalyzeReduction(t *testing.T) {
	infos, err := Analyze(reductionIR())
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Class != DOALL {
		t.Errorf("inc nest: %v, want DOALL", infos[0].Class)
	}
	if infos[1].Class != Reduction {
		t.Errorf("fold nest: %v, want Reduction", infos[1].Class)
	}
	if infos, err = Analyze(serialIR()); err != nil {
		t.Fatal(err)
	}
	if infos[0].Class != Serial {
		t.Errorf("recurrence: %v, want Serial", infos[0].Class)
	}
	if len(infos[0].Deps) == 0 || !infos[0].Deps[0].Carried() || infos[0].Deps[0].Dist != [2]int{1, 0} {
		t.Errorf("recurrence deps = %+v, want carried distance (1,0)", infos[0].Deps)
	}
}

func TestPlanCommunication(t *testing.T) {
	steps, err := Plan(stencilIR())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps[0].Halo) != 1 || steps[0].Halo[0] != (HaloNeed{Array: "data", Width: 1}) {
		t.Errorf("stencil halo = %v, want data width 1", steps[0].Halo)
	}
	if len(steps[1].Halo) != 0 {
		t.Errorf("copy halo = %v, want none", steps[1].Halo)
	}
	steps, err = Plan(serialIR())
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Parallel {
		t.Fatal("recurrence planned parallel")
	}
	if len(steps[0].Bcast) != 1 || steps[0].Bcast[0] != "u" {
		t.Errorf("recurrence bcast = %v, want [u]", steps[0].Bcast)
	}
	steps, err = Plan(coeffReadIR())
	if err != nil {
		t.Fatal(err)
	}
	if !steps[0].Parallel {
		t.Errorf("coefficient read serialized: %s", steps[0].Info.Why)
	}
	if !steps[0].FullRead["b"] {
		t.Error("constant-row read of b not marked FullRead")
	}
}

// runBoth lowers a program through both backends at the given node
// count and returns the two checksums.
func runBoth(t *testing.T, p *Program, n, iters, procs int) (spfSum, xhpfSum float64) {
	t.Helper()
	cfg := core.Config{
		Procs: procs, N1: n, Iters: iters, Warmup: 1,
		Costs: model.SP2(), App: model.DefaultAppCosts(),
	}
	rs, err := RunSPF("loopc-test", core.SPFGen, cfg, p)
	if err != nil {
		t.Fatalf("spf backend: %v", err)
	}
	rx, err := RunXHPF("loopc-test", core.XHPFGen, cfg, p)
	if err != nil {
		t.Fatalf("xhpf backend: %v", err)
	}
	return rs.Checksum, rx.Checksum
}

// TestBackendsMatchReference checks that both lowerings compute exactly
// what the sequential interpreter computes, for every nest class:
// DOALL (stencil), guarded DOALL (red-black), reduction, and the
// serial fallback, at 1-4 nodes.
func TestBackendsMatchReference(t *testing.T) {
	const n, iters = 32, 3
	cases := []struct {
		name string
		prog func() *Program
		n    int
	}{
		{"stencil", stencilIR, n},
		{"redblack", func() *Program { return redBlackIR(true) }, n},
		{"reduction", reductionIR, n},
		{"serial", serialIR, n},
		// Large enough that the coefficient array spans several DSM
		// pages — the whole-region validation regression shows only
		// then (values stay integer-exact).
		{"coeffread", coeffReadIR, 256},
	}
	for _, c := range cases {
		_, _, want := Reference(c.prog(), c.n, iters+1) // warmup + timed
		for procs := 1; procs <= 4; procs++ {
			t.Run(fmt.Sprintf("%s/p%d", c.name, procs), func(t *testing.T) {
				spfSum, xhpfSum := runBoth(t, c.prog(), c.n, iters, procs)
				if spfSum != want {
					t.Errorf("spf-gen checksum %v, want %v", spfSum, want)
				}
				if xhpfSum != want {
					t.Errorf("xhpf-gen checksum %v, want %v", xhpfSum, want)
				}
			})
		}
	}
}
