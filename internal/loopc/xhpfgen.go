package loopc

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/xhpf"
)

// xhpfPlan is one nest lowered for the SPMD message-passing runtime.
type xhpfPlan struct {
	step     *Step
	en       *execNest
	redSlots []int
}

// RunXHPF compiles the program for the XHPF message-passing runtime —
// the "xhpf-gen" application version. The lowering follows the
// compiler model of package xhpf: replicated arrays with BLOCK
// owner-computes distribution of each parallel loop, exact-section halo
// exchanges whose widths come from the dependence distances, runtime
// synchronization (LoopSync) at every parallel-loop boundary,
// recognized reductions as all-reduces so the replicated sequential
// code has the result everywhere, and whole-partition broadcasts ahead
// of serial (replicated) nests that read distributed data.
func RunXHPF(app string, v core.Version, cfg core.Config, p *Program) (core.Result, error) {
	steps, err := Plan(p)
	if err != nil {
		return core.Result{}, err
	}
	n := cfg.N1
	return apputil.RunXHPF(app, v, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		arrays := make([][]float32, len(p.Arrays))
		for k, a := range p.Arrays {
			arrays[k] = make([]float32, n*n)
			if a.Init != nil {
				fillInit(arrays[k], a.Init, n)
			}
		}
		fr := &frame{n: n, arr: arrays, scal: make([]float64, len(p.Scalars))}
		idents := make([]float64, len(p.Scalars))
		ops := make([]ReduceOp, len(p.Scalars))
		for k := range p.Scalars {
			idents[k] = identity(p, k)
			ops[k] = scalarOp(p, k)
		}
		// BLOCK distribution over whole rows. When the flat element
		// blocks of the hand-coded convention are row-aligned (every
		// hand-vs-generated comparison configuration), this is the same
		// decomposition and the communication is byte-identical; unlike
		// the flat blocks it stays correct when rows do not divide
		// evenly across processors.
		rowBlock := func(q int) (lo, hi int) {
			qlo, qhi := xhpf.BlockOf(q, x.NProcs(), n)
			return qlo * n, qhi * n
		}
		rlo, rhi := xhpf.BlockOf(x.ID(), x.NProcs(), n)
		arrIdx := p.arrayIndex()

		plans := make([]*xhpfPlan, len(steps))
		for k, st := range steps {
			pl := &xhpfPlan{step: st, en: compileNest(p, st.Info.Nest)}
			_, _, pl.redSlots = lowerUses(p, st)
			plans[k] = pl
		}

		resSlot := arrIdx[p.Result]
		return apputil.XHPFProgram{
			Iterate: func(it int) {
				copy(fr.scal, idents)
				for _, pl := range plans {
					nst := pl.en.nst
					rowLo, rowHi := nst.Row.Lo.Eval(n), nst.Row.Hi.Eval(n)
					if pl.step.Parallel {
						for _, h := range pl.step.Halo {
							xhpf.ExchangeHaloBlocks(x, arrays[arrIdx[h.Array]], n*n, h.Width*n, rowBlock)
						}
						// Owner-computes intersection of the owned rows with
						// the nest's iteration space.
						clo, chi := max(rlo, rowLo), min(rhi, rowHi)
						bases := make([]float64, len(pl.redSlots))
						for bi, slot := range pl.redSlots {
							bases[bi] = fr.scal[slot]
							fr.scal[slot] = idents[slot]
						}
						if chi > clo {
							cnt := pl.en.runRows(fr, clo, chi)
							x.Advance(apputil.Cost(cnt, nst.PointCost))
						}
						for bi, slot := range pl.redSlots {
							op := ops[slot]
							folded := xhpf.AllReduceWith(x, []float64{fr.scal[slot]},
								func(a, b float64) float64 { return combine(op, a, b) })
							fr.scal[slot] = combine(op, bases[bi], folded[0])
						}
						x.LoopSync()
						continue
					}
					// Serial nest: replicated execution after making the
					// replicated copies current.
					for _, name := range pl.step.Bcast {
						xhpf.BroadcastBlocks(x, arrays[arrIdx[name]], rowBlock, 4)
					}
					cnt := pl.en.runRows(fr, rowLo, rowHi)
					x.Advance(apputil.Cost(cnt, nst.PointCost))
					x.LoopSync()
				}
			},
			Checksum: func() float64 {
				res := arrays[resSlot]
				gatherBlocks(x.PVM(), res, rowBlock)
				if x.ID() != 0 {
					return 0
				}
				return checksum(p, res, n, fr.scal)
			},
		}
	})
}

// gatherBlocks collects every task's owned block on task 0, untracked
// (measurement postlude, as the hand-coded versions do it).
func gatherBlocks(pv *pvm.PVM, data []float32, blockOf func(q int) (lo, hi int)) {
	if pv.ID() == 0 {
		for q := 1; q < pv.NProcs(); q++ {
			qlo, qhi := blockOf(q)
			pvm.RecvUntracked(pv, q, 90+q, data[qlo:qhi])
		}
		return
	}
	lo, hi := blockOf(pv.ID())
	pvm.SendUntracked(pv, 0, 90+pv.ID(), data[lo:hi])
}
