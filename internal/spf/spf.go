// Package spf implements the runtime targeted by the APR Forge SPF
// shared-memory parallelizing compiler (paper §2.1), layered on the
// TreadMarks DSM. Execution follows the fork-join model: a single master
// processor runs the sequential portions of the program and dispatches
// encapsulated parallel-loop subroutines to worker processors, with
// block or cyclic iteration scheduling and lock-based scalar reductions.
//
// Two compiler-runtime interfaces are provided, mirroring §2.3:
//
//   - the improved interface (default): the fork is a barrier departure
//     carrying the loop-control variables and the join is a barrier
//     arrival — 2(n-1) messages per parallel loop;
//   - the original interface (Old: true): full barriers bracket the loop
//     and the loop-control variables live in two separate shared pages
//     that each worker page-faults in — 8(n-1) messages per loop.
//
// "Compiler-generated" application versions are written mechanically in
// this model: every parallel loop is a registered subroutine, all arrays
// accessed in parallel loops are allocated in shared memory (including
// scratch arrays a hand coder would keep private), and sequential code
// runs only on the master.
package spf

import (
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Sched selects the loop iteration distribution (§2.1: "a simple block
// or cyclic loop distribution mechanism").
type Sched uint8

const (
	// Block gives each processor one contiguous chunk of iterations.
	Block Sched = iota
	// Cyclic deals iterations round-robin across processors.
	Cyclic
	// Dynamic self-schedules: processors repeatedly claim chunks from a
	// lock-protected shared counter until the iteration space is
	// exhausted. This is the §8 "dynamic load balancing support"
	// extension; it trades lock traffic for balance on loops with
	// nonuniform iteration costs. The loop function is invoked once per
	// claimed chunk.
	Dynamic
)

// LoopFunc is an encapsulated parallel-loop subroutine. It must execute
// the iterations {lo, lo+stride, lo+2*stride, ...} < hi. args carries the
// loop-control variables the master passed to ParallelDo.
type LoopFunc func(lo, hi, stride int, args []int64)

// Options configures the runtime.
type Options struct {
	// Old selects the original compiler-runtime interface (§2.3's
	// unoptimized scheme): full barriers around each loop plus shared-
	// memory loop-control pages. Used by the interface ablation.
	Old bool
}

// Runtime is the per-processor SPF runtime handle.
type Runtime struct {
	tm         *tmk.Tmk
	opts       Options
	loops      []LoopFunc
	reductions int

	// Shared control pages for the old interface: the subroutine index
	// and the subroutine arguments live in different shared pages,
	// incurring two page faults per worker per loop (§2.3).
	ctrlIdx  *tmk.Region[int64]
	ctrlArgs *tmk.Region[int64]

	// Self-scheduling state for the Dynamic schedule (§8 extension).
	dynNext *tmk.Region[int64]
}

// dynLock protects the shared chunk counter.
const dynLock = 63

// ctrlMsg is the loop-control payload piggybacked on the fork departure
// under the improved interface.
type ctrlMsg struct {
	loop  int
	lo    int
	hi    int
	sched Sched
	args  []int64
	done  bool
}

// ctrlBytes models the wire size of the loop-control variables.
func ctrlBytes(c ctrlMsg) int { return 32 + 8*len(c.args) }

// Run executes body on every processor of the TreadMarks system with an
// SPF runtime attached. The body must allocate shared regions and
// register loops identically on every processor, then call Master or
// Serve depending on Runtime.IsMaster.
func Run(sys *tmk.System, opts Options, body func(rt *Runtime)) error {
	return sys.Run(func(tm *tmk.Tmk) {
		rt := &Runtime{tm: tm, opts: opts}
		if opts.Old {
			rt.ctrlIdx = tmk.Alloc[int64](tm, "spf.ctrl.idx", 8)
			rt.ctrlArgs = tmk.Alloc[int64](tm, "spf.ctrl.args", 16)
		}
		rt.dynNext = tmk.Alloc[int64](tm, "spf.dyn.next", 8)
		body(rt)
	})
}

// Tmk exposes the underlying DSM handle (for region allocation).
func (rt *Runtime) Tmk() *tmk.Tmk { return rt.tm }

// ID returns this processor's id.
func (rt *Runtime) ID() int { return rt.tm.ID() }

// NProcs returns the processor count.
func (rt *Runtime) NProcs() int { return rt.tm.NProcs() }

// IsMaster reports whether this processor runs the sequential program.
func (rt *Runtime) IsMaster() bool { return rt.tm.ID() == 0 }

// Advance charges compute time.
func (rt *Runtime) Advance(d sim.Time) { rt.tm.Advance(d) }

// Now returns the virtual clock.
func (rt *Runtime) Now() sim.Time { return rt.tm.Now() }

// RegisterLoop registers an encapsulated parallel-loop subroutine and
// returns its dispatch index. Must be called in the same order on every
// processor.
func (rt *Runtime) RegisterLoop(f LoopFunc) int {
	rt.loops = append(rt.loops, f)
	return len(rt.loops) - 1
}

// slice computes this processor's share of iterations [lo,hi).
func slice(id, nprocs, lo, hi int, sched Sched) (mylo, myhi, stride int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo, 1
	}
	switch sched {
	case Block:
		chunk := (n + nprocs - 1) / nprocs
		mylo = lo + id*chunk
		myhi = mylo + chunk
		if myhi > hi {
			myhi = hi
		}
		if mylo > hi {
			mylo = hi
		}
		return mylo, myhi, 1
	case Cyclic:
		// Index-aligned: iteration j runs on processor j mod nprocs, so a
		// triangular loop like MGS's DO j = i+1, N keeps each vector bound
		// to one processor for the whole run.
		mylo = lo + ((id-lo)%nprocs+nprocs)%nprocs
		return mylo, hi, nprocs
	}
	panic("spf: unknown schedule")
}

// dynChunk picks the self-scheduling chunk size: an eighth of a fair
// share, bounded below.
func dynChunk(n, nprocs int) int {
	c := n / (8 * nprocs)
	if c < 1 {
		c = 1
	}
	return c
}

// ParallelDo dispatches parallel loop `loop` over iterations [lo,hi) with
// the given schedule. Master only: the master forks the workers, executes
// its own share, and joins.
func (rt *Runtime) ParallelDo(loop, lo, hi int, sched Sched, args ...int64) {
	if !rt.IsMaster() {
		panic("spf: ParallelDo on a worker")
	}
	c := ctrlMsg{loop: loop, lo: lo, hi: hi, sched: sched, args: args}
	if sched == Dynamic {
		// Reset the shared chunk counter before releasing the workers.
		w := rt.dynNext.Write(0, 1)
		w[0] = int64(lo)
	}
	if rt.opts.Old {
		rt.forkOld(c)
	} else {
		rt.tm.Fork(c, ctrlBytes(c))
	}
	rt.runSlice(c)
	if rt.opts.Old {
		rt.tm.Barrier()
	} else {
		rt.tm.Collect()
	}
}

// runSlice executes this processor's share of a dispatched loop.
func (rt *Runtime) runSlice(c ctrlMsg) {
	if c.sched == Dynamic {
		chunk := dynChunk(c.hi-c.lo, rt.NProcs())
		for {
			rt.tm.AcquireLock(dynLock)
			w := rt.dynNext.Write(0, 1)
			start := int(w[0])
			if start < c.hi {
				w[0] = int64(min(start+chunk, c.hi))
			}
			rt.tm.ReleaseLock(dynLock)
			if start >= c.hi {
				return
			}
			rt.loops[c.loop](start, min(start+chunk, c.hi), 1, c.args)
		}
	}
	mylo, myhi, stride := slice(rt.ID(), rt.NProcs(), c.lo, c.hi, c.sched)
	rt.loops[c.loop](mylo, myhi, stride, c.args)
}

// Serve is the worker dispatch loop: wait for forks, run the assigned
// slice, join; return when the master calls Done.
func (rt *Runtime) Serve() {
	if rt.IsMaster() {
		panic("spf: Serve on the master")
	}
	for {
		var c ctrlMsg
		if rt.opts.Old {
			c = rt.waitOld()
		} else {
			c = rt.tm.WaitFork().(ctrlMsg)
		}
		if c.done {
			return
		}
		rt.runSlice(c)
		if rt.opts.Old {
			rt.tm.Barrier()
		} else {
			rt.tm.Join()
		}
	}
}

// Done releases the workers from their dispatch loops. Master only.
func (rt *Runtime) Done() {
	if !rt.IsMaster() {
		panic("spf: Done on a worker")
	}
	c := ctrlMsg{done: true}
	if rt.opts.Old {
		rt.forkOld(c)
	} else {
		rt.tm.Fork(c, ctrlBytes(c))
	}
}

// forkOld implements the original interface's fork: the master writes
// the subroutine index and arguments into two separate shared pages and
// wakes everyone with a full barrier.
func (rt *Runtime) forkOld(c ctrlMsg) {
	idx := rt.ctrlIdx.Write(0, 5)
	idx[0] = int64(c.loop)
	idx[1] = int64(c.lo)
	idx[2] = int64(c.hi)
	idx[3] = int64(c.sched)
	if c.done {
		idx[4] = 1
	} else {
		idx[4] = 0
	}
	args := rt.ctrlArgs.Write(0, 16)
	for i, a := range c.args {
		args[i+1] = a
	}
	args[0] = int64(len(c.args))
	rt.tm.Barrier()
}

// waitOld is the worker side of the original interface: wait at the
// barrier, then page-fault the two control pages in.
func (rt *Runtime) waitOld() ctrlMsg {
	rt.tm.Barrier()
	idx := rt.ctrlIdx.Read(0, 5)
	args := rt.ctrlArgs.Read(0, 16)
	c := ctrlMsg{
		loop:  int(idx[0]),
		lo:    int(idx[1]),
		hi:    int(idx[2]),
		sched: Sched(idx[3]),
		done:  idx[4] != 0,
	}
	n := int(args[0])
	c.args = make([]int64, n)
	for i := 0; i < n; i++ {
		c.args[i] = args[i+1]
	}
	return c
}

// Reduction implements §2.1 scalar reductions: the reduction variable is
// allocated in shared memory and a lock serializes the cross-processor
// combine; each processor first accumulates into a private copy.
//
// Each processor combines into its own slot of the shared variable and
// the reader folds the slots in processor order, so the reduced value is
// independent of the order in which processors win the lock — lock-grant
// order varies with protocol timing, and floating-point combining must
// not (the cross-protocol equivalence tests rely on this).
type Reduction struct {
	shared *tmk.Region[float64]
	nprocs int
	lock   int
	op     func(a, b float64) float64
}

// NewReduction allocates a shared reduction variable (page-padded) and
// its lock, and fixes the combining op. Must be called in the same
// order, with the same op, on every processor.
func NewReduction(rt *Runtime, name string, op func(a, b float64) float64) *Reduction {
	n := rt.tm.NProcs()
	r := &Reduction{
		shared: tmk.Alloc[float64](rt.tm, "spf.red."+name, max(n, 8)),
		nprocs: n,
		op:     op,
	}
	r.lock = 64 + rt.reductions
	rt.reductions++
	return r
}

// Combine folds a processor's private partial value into its slot of the
// shared reduction variable under the lock.
func (r *Reduction) Combine(rt *Runtime, partial float64) {
	me := rt.tm.ID()
	rt.tm.AcquireLock(r.lock)
	w := r.shared.Write(me, me+1)
	w[me] = r.op(w[me], partial)
	rt.tm.ReleaseLock(r.lock)
}

// Value folds the per-processor slots in processor order (typically on
// the master after the join).
func (r *Reduction) Value() float64 {
	g := r.shared.Read(0, r.nprocs)
	v := g[0]
	for q := 1; q < r.nprocs; q++ {
		v = r.op(v, g[q])
	}
	return v
}

// Reset sets every slot to the reduction identity (master, before the
// loop).
func (r *Reduction) Reset(v float64) {
	w := r.shared.Write(0, r.nprocs)
	for q := 0; q < r.nprocs; q++ {
		w[q] = v
	}
}
