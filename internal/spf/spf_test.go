package spf

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tmk"
)

func newSys(n int) *tmk.System { return tmk.NewSystem(n, model.SP2()) }

// runProgram builds a tiny SPF program: a shared array filled by a
// parallel loop, then doubled by a second loop, with the master summing
// sequentially in between.
func runProgram(t *testing.T, n int, opts Options) (*tmk.System, float64) {
	t.Helper()
	sys := newSys(n)
	const size = 4096
	var total float64
	if err := Run(sys, opts, func(rt *Runtime) {
		a := tmk.Alloc[float32](rt.Tmk(), "a", size)
		fill := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			w := a.Write(lo, hi)
			for i := lo; i < hi; i += stride {
				w[i] = float32(int64(i) * args[0])
			}
		})
		double := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			w := a.Write(lo, hi)
			for i := lo; i < hi; i += stride {
				w[i] *= 2
			}
		})
		if rt.IsMaster() {
			rt.ParallelDo(fill, 0, size, Block, 3)
			// Sequential section on the master.
			g := a.Read(0, size)
			var s float64
			for i := 0; i < size; i++ {
				s += float64(g[i])
			}
			rt.ParallelDo(double, 0, size, Block)
			g = a.Read(0, size)
			var s2 float64
			for i := 0; i < size; i++ {
				s2 += float64(g[i])
			}
			if s2 != 2*s {
				t.Errorf("double loop: sum %v, want %v", s2, 2*s)
			}
			total = s
			rt.Done()
		} else {
			rt.Serve()
		}
	}); err != nil {
		t.Fatal(err)
	}
	return sys, total
}

func TestForkJoinProgram(t *testing.T) {
	_, total := runProgram(t, 4, Options{})
	// sum of 3*i for i in [0,4096) = 3*4095*4096/2
	want := 3.0 * 4095 * 4096 / 2
	if total != want {
		t.Errorf("total = %v, want %v", total, want)
	}
}

func TestOldInterfaceSameResult(t *testing.T) {
	_, a := runProgram(t, 4, Options{})
	_, b := runProgram(t, 4, Options{Old: true})
	if a != b {
		t.Errorf("old interface changed the result: %v vs %v", a, b)
	}
}

// TestInterfaceMessageRatio verifies the §2.3 claim: the improved
// interface needs 2(n-1) messages per parallel loop where the original
// needs 8(n-1): two full barriers (4(n-1)) plus two control-page faults
// per worker (4(n-1)).
func TestInterfaceMessageRatio(t *testing.T) {
	const n, loops = 8, 10
	count := func(old bool) int64 {
		sys := newSys(n)
		if err := Run(sys, Options{Old: old}, func(rt *Runtime) {
			nop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {})
			if rt.IsMaster() {
				for k := 0; k < loops; k++ {
					rt.ParallelDo(nop, 0, 64, Block)
				}
				rt.Done()
			} else {
				rt.Serve()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return sys.Stats().TotalMsgs()
	}
	improved := count(false)
	old := count(true)
	// 2(n-1) per loop, plus Done's final fork (departures only: n-1).
	wantImproved := int64(loops*2*(n-1) + (n - 1))
	if improved != wantImproved {
		t.Errorf("improved msgs = %d, want %d", improved, wantImproved)
	}
	// The old interface: per loop 2 barriers = 4(n-1), plus control-page
	// faults. The first loop faults both pages (2 req + 2 resp per
	// worker); later loops re-fault them after invalidation.
	if old < improved*3 {
		t.Errorf("old interface msgs = %d, improved = %d: expected ~4x ratio", old, improved)
	}
	t.Logf("improved=%d old=%d ratio=%.2f", improved, old, float64(old)/float64(improved))
}

func TestCyclicSchedule(t *testing.T) {
	sys := newSys(4)
	const size = 64
	if err := Run(sys, Options{}, func(rt *Runtime) {
		a := tmk.Alloc[int32](rt.Tmk(), "a", size)
		who := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			w := a.Write(0, size)
			for i := lo; i < hi; i += stride {
				w[i] = int32(rt.ID())
			}
		})
		if rt.IsMaster() {
			rt.ParallelDo(who, 0, size, Cyclic)
			g := a.Read(0, size)
			for i := 0; i < size; i++ {
				if g[i] != int32(i%4) {
					t.Errorf("a[%d] written by %d, want %d (cyclic)", i, g[i], i%4)
					break
				}
			}
			rt.Done()
		} else {
			rt.Serve()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceBounds(t *testing.T) {
	cases := []struct {
		id, nprocs, lo, hi         int
		sched                      Sched
		wantLo, wantHi, wantStride int
	}{
		{0, 4, 0, 100, Block, 0, 25, 1},
		{3, 4, 0, 100, Block, 75, 100, 1},
		{3, 4, 0, 10, Block, 9, 10, 1},    // ragged: last chunk short
		{3, 4, 0, 2, Block, 2, 2, 1},      // ragged: empty chunk
		{2, 4, 10, 50, Cyclic, 10, 50, 4}, // aligned: 10%4 == 2
		{0, 1, 0, 5, Block, 0, 5, 1},
	}
	for _, c := range cases {
		lo, hi, st := slice(c.id, c.nprocs, c.lo, c.hi, c.sched)
		if lo != c.wantLo || hi != c.wantHi || st != c.wantStride {
			t.Errorf("slice(%d,%d,%d,%d,%v) = (%d,%d,%d), want (%d,%d,%d)",
				c.id, c.nprocs, c.lo, c.hi, c.sched, lo, hi, st, c.wantLo, c.wantHi, c.wantStride)
		}
	}
}

func TestReduction(t *testing.T) {
	sys := newSys(8)
	if err := Run(sys, Options{}, func(rt *Runtime) {
		red := NewReduction(rt, "sum", func(a, b float64) float64 { return a + b })
		loop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			var partial float64
			for i := lo; i < hi; i += stride {
				partial += float64(i)
			}
			red.Combine(rt, partial)
		})
		if rt.IsMaster() {
			red.Reset(0)
			rt.ParallelDo(loop, 0, 1000, Block)
			if got := red.Value(); got != 999*1000/2 {
				t.Errorf("reduction = %v, want %v", got, 999*1000/2)
			}
			rt.Done()
		} else {
			rt.Serve()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().MsgsOf(stats.KindLock) == 0 {
		t.Error("expected lock traffic from the reduction")
	}
}

func TestLoopArgsDelivered(t *testing.T) {
	sys := newSys(4)
	if err := Run(sys, Options{Old: true}, func(rt *Runtime) {
		got := make([]int64, 3)
		loop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			copy(got, args)
		})
		if rt.IsMaster() {
			rt.ParallelDo(loop, 0, 4, Block, 10, 20, 30)
			rt.Done()
		} else {
			rt.Serve()
		}
		if got[0] != 10 || got[1] != 20 || got[2] != 30 {
			t.Errorf("proc %d: args = %v", rt.ID(), got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicScheduleCorrect: the §8 self-scheduling extension covers
// every iteration exactly once.
func TestDynamicScheduleCorrect(t *testing.T) {
	sys := newSys(4)
	const size = 1000 // deliberately not a multiple of anything handy
	if err := Run(sys, Options{}, func(rt *Runtime) {
		a := tmk.Alloc[int32](rt.Tmk(), "a", size)
		bump := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			w := a.Write(lo, hi)
			for i := lo; i < hi; i += stride {
				w[i]++
			}
		})
		if rt.IsMaster() {
			rt.ParallelDo(bump, 0, size, Dynamic)
			g := a.Read(0, size)
			for i := 0; i < size; i++ {
				if g[i] != 1 {
					t.Errorf("iteration %d executed %d times", i, g[i])
					break
				}
			}
			rt.Done()
		} else {
			rt.Serve()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicBalancesSkewedLoop: with iteration costs growing as i^2,
// static block scheduling leaves the last processor holding most of the
// work; self-scheduling balances it despite the lock traffic.
func TestDynamicBalancesSkewedLoop(t *testing.T) {
	run := func(sched Sched) sim.Time {
		sys := newSys(8)
		var elapsed sim.Time
		if err := Run(sys, Options{}, func(rt *Runtime) {
			// Iteration i costs i^2 ns — heavy enough that the imbalance
			// dwarfs the self-scheduling lock traffic.
			skewed := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
				var cost sim.Time
				for i := lo; i < hi; i += stride {
					cost += sim.Time(i * i)
				}
				rt.Advance(cost)
			})
			if rt.IsMaster() {
				start := rt.Now()
				rt.ParallelDo(skewed, 0, 2000, sched)
				elapsed = rt.Now() - start
				rt.Done()
			} else {
				rt.Serve()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	static := run(Block)
	dynamic := run(Dynamic)
	t.Logf("static=%v dynamic=%v", static, dynamic)
	if dynamic >= static {
		t.Errorf("dynamic scheduling (%v) should beat static block (%v) on a skewed loop", dynamic, static)
	}
}

func TestDynamicChunkSize(t *testing.T) {
	if c := dynChunk(1000, 8); c != 15 {
		t.Errorf("dynChunk(1000,8) = %d, want 15", c)
	}
	if c := dynChunk(3, 8); c != 1 {
		t.Errorf("dynChunk(3,8) = %d, want 1", c)
	}
}
