// Package store is a zero-dependency, disk-backed record store mapping
// (Spec.Key(), schema version) -> the exact JSON-line record bytes the
// sweep engine would emit. The simulator is deterministic, so a record
// is content-addressable by its spec key: any committed value IS the
// value, forever, and serving it back is byte-identical to re-running.
//
// Layout (one directory per store):
//
//	DIR/LOCK          advisory flock target (never written)
//	DIR/CURRENT       name of the live segment ("seg-<gen>.log"),
//	                  updated via temp+rename and a directory fsync
//	DIR/seg-<g>.log   append-only frames (see below)
//
// Each entry is one frame:
//
//	magic  u32  "DSR1" (little-endian on disk)
//	payLen u32  length of the payload that follows the header
//	crc    u32  IEEE CRC-32 of the payload
//	payload:
//	    schema u32
//	    keyLen u32, key bytes
//	    valLen u32, val bytes
//
// Crash safety: a torn append leaves an incomplete frame at the tail;
// readers stop scanning there (never serving it) and the next writer —
// which holds the exclusive lock, so nothing can be mid-append —
// truncates the garbage before appending. In-place corruption (bad
// CRC, mangled lengths) is skipped by resynchronizing on the magic and
// counted, and the next write compacts the segment to drop the dead
// bytes. Get re-verifies the CRC on every read, so a frame corrupted
// after indexing is still never served.
//
// Concurrency: one *Store is safe for any number of goroutines, and
// any number of OS processes may share a directory. Writers serialize
// on an exclusive flock of DIR/LOCK and re-read CURRENT plus the
// segment tail before every append, so each process sees all committed
// entries; readers are lock-free against their open segment handle
// (a concurrent compaction unlinks it, which POSIX keeps readable).
//
// Eviction is least-recently-used by this process's access order
// (falling back to append order for entries it never touched) and
// triggers when the segment exceeds MaxBytes: survivors are rewritten
// oldest-first into a new segment, CURRENT is swapped atomically, and
// the old segment removed.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	magic       = 0x31525344 // "DSR1" little-endian
	headerSize  = 12         // magic + payLen + crc
	maxKeyLen   = 1 << 12
	maxValLen   = 1 << 24
	currentName = "CURRENT"
	lockName    = "LOCK"
)

// openErrors counts failed Open calls process-wide, for the
// dsm_store_open_errors_total metric family.
var openErrors atomic.Int64

// OpenErrors returns the number of Open calls that failed in this
// process.
func OpenErrors() int64 { return openErrors.Load() }

// Options configures a store.
type Options struct {
	// MaxBytes caps the segment file size; exceeding it evicts
	// least-recently-used entries (the newest entry always survives,
	// even if it alone exceeds the cap). Zero means unbounded.
	MaxBytes int64
	// SchemaVersion is stamped into every frame; frames carrying any
	// other version are never indexed, never served, and dropped at the
	// next compaction. Bump it when the record schema changes shape.
	SchemaVersion uint32
}

// Stats is a snapshot of the store's lifetime counters (this process,
// this *Store).
type Stats struct {
	Hits          int64 // Get calls served from disk
	Misses        int64 // Get calls that found no entry
	Puts          int64 // frames appended (deduplicated Puts excluded)
	Evictions     int64 // entries dropped by the size cap or Evict
	CorruptFrames int64 // frames skipped for bad CRC or mangled framing
	SchemaSkips   int64 // frames skipped for a schema-version mismatch
	Compactions   int64 // segment rewrites
}

// entry is one live key in the in-memory index.
type entry struct {
	key      string
	off      int64 // frame start in the segment
	frameLen int64
	elem     *list.Element
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use.
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	lockFile *os.File
	seg      *os.File
	segName  string
	gen      uint64
	size     int64 // segment bytes covered by the scan (append offset)
	index    map[string]*entry
	lru      *list.List // front = least recently used
	// segDirty is true when the current segment carries dead bytes
	// (corrupt frames, schema mismatches, superseded keys) worth
	// compacting away on the next write.
	segDirty bool
	closed   bool

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	evictions   atomic.Int64
	corrupt     atomic.Int64
	schemaSkips atomic.Int64
	compactions atomic.Int64
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opt Options) (*Store, error) {
	s, err := open(dir, opt)
	if err != nil {
		openErrors.Add(1)
	}
	return s, err
}

func open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		lockFile: lf,
		index:    map[string]*entry{},
		lru:      list.New(),
	}
	// Exclusive init: first opener creates CURRENT and the empty
	// segment; everyone else just scans.
	if err := flockEx(lf); err != nil {
		lf.Close()
		return nil, fmt.Errorf("store: lock %s: %w", dir, err)
	}
	err = s.refreshLocked(true)
	if uerr := flockUn(lf); uerr != nil && err == nil {
		err = uerr
	}
	if err != nil {
		lf.Close()
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return s, nil
}

// Close releases the store's file handles. The store is unusable
// afterwards; on-disk state needs no shutdown beyond what every write
// already fsynced.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.seg != nil {
		err = s.seg.Close()
		s.seg = nil
	}
	if cerr := s.lockFile.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the lifetime counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		Evictions:     s.evictions.Load(),
		CorruptFrames: s.corrupt.Load(),
		SchemaSkips:   s.schemaSkips.Load(),
		Compactions:   s.compactions.Load(),
	}
}

// Get returns the stored value for key, re-verifying its checksum. A
// frame that fails verification is dropped from the index and reported
// as a miss, so a corrupted entry is transparently recomputed by the
// caller and healed by its write-back.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.misses.Add(1)
		return nil, false
	}
	en := s.index[key]
	if en == nil {
		// Another process may have committed the key since our last
		// scan: refresh once, then decide.
		if err := s.refreshLocked(false); err == nil {
			en = s.index[key]
		}
	}
	if en == nil {
		s.misses.Add(1)
		return nil, false
	}
	val, err := s.readEntryLocked(en)
	if err != nil {
		s.dropLocked(en)
		s.corrupt.Add(1)
		s.segDirty = true
		s.misses.Add(1)
		return nil, false
	}
	s.touchLocked(en)
	s.hits.Add(1)
	return val, true
}

// Put stores value under key. Writes go through the exclusive
// directory lock: refresh, truncate any torn tail, compact if the
// segment is dirty or over budget, append, fsync. Re-putting an
// identical value is a no-op; a different value supersedes the old
// frame (determinism makes that unexpected, but the newest write
// wins).
func (s *Store) Put(key string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(value) > maxValLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(value), maxValLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if err := flockEx(s.lockFile); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	defer flockUn(s.lockFile) //nolint:errcheck // advisory unlock
	if err := s.refreshLocked(true); err != nil {
		return err
	}
	if old := s.index[key]; old != nil {
		if oldVal, err := s.readEntryLocked(old); err == nil && string(oldVal) == string(value) {
			s.touchLocked(old)
			return nil
		}
		s.dropLocked(old)
		s.segDirty = true
	}
	if s.segDirty {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	frame := encodeFrame(s.opt.SchemaVersion, key, value)
	if _, err := s.seg.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	en := &entry{key: key, off: s.size, frameLen: int64(len(frame))}
	en.elem = s.lru.PushBack(en)
	s.index[key] = en
	s.size += int64(len(frame))
	s.puts.Add(1)
	if s.opt.MaxBytes > 0 && s.size > s.opt.MaxBytes {
		return s.evictLocked(s.opt.MaxBytes)
	}
	return nil
}

// Len returns the number of live entries (refreshing from disk first).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	s.refreshLocked(false) //nolint:errcheck // stale view on error
	return len(s.index)
}

// SizeBytes returns the current segment size in bytes.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	s.refreshLocked(false) //nolint:errcheck // stale view on error
	return s.size
}

// Keys returns the live keys in sorted order — the store's
// deterministic iteration order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.refreshLocked(false) //nolint:errcheck // stale view on error
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Evict drops least-recently-used entries until the segment fits in
// targetBytes, compacting the segment. It returns the number of
// entries dropped.
func (s *Store) Evict(targetBytes int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("store: closed")
	}
	if err := flockEx(s.lockFile); err != nil {
		return 0, fmt.Errorf("store: lock: %w", err)
	}
	defer flockUn(s.lockFile) //nolint:errcheck // advisory unlock
	if err := s.refreshLocked(true); err != nil {
		return 0, err
	}
	before := len(s.index)
	if err := s.evictLocked(targetBytes); err != nil {
		return before - len(s.index), err
	}
	return before - len(s.index), nil
}

// VerifyReport summarizes a Verify pass.
type VerifyReport struct {
	// Entries is the number of live entries checked.
	Entries int
	// Bytes is the segment size in bytes.
	Bytes int64
	// CorruptFrames counts frames that failed checksum or framing
	// verification — dead bytes found while scanning the segment plus
	// any live entry whose re-read failed.
	CorruptFrames int
	// SchemaSkips counts frames stamped with a different schema
	// version.
	SchemaSkips int
	// BadValues counts live entries the caller's check rejected.
	BadValues int
}

// Verify re-scans the segment from scratch and re-reads every live
// entry, verifying checksums; check, when non-nil, is called with each
// key and value (in sorted key order) and may reject the value. The
// report counts everything found wrong; err is non-nil only when the
// store itself cannot be read.
func (s *Store) Verify(check func(key string, value []byte) error) (VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep VerifyReport
	if s.closed {
		return rep, errors.New("store: closed")
	}
	// Force a from-scratch scan so the report reflects the segment as
	// it is now, not counters accumulated across compactions.
	s.segName = ""
	corrupt0, schema0 := s.corrupt.Load(), s.schemaSkips.Load()
	if err := s.refreshLocked(false); err != nil {
		return rep, err
	}
	rep.CorruptFrames = int(s.corrupt.Load() - corrupt0)
	rep.SchemaSkips = int(s.schemaSkips.Load() - schema0)
	rep.Bytes = s.size
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		en := s.index[k]
		val, err := s.readEntryLocked(en)
		if err != nil {
			s.dropLocked(en)
			s.corrupt.Add(1)
			s.segDirty = true
			rep.CorruptFrames++
			continue
		}
		rep.Entries++
		if check != nil {
			if err := check(k, val); err != nil {
				rep.BadValues++
			}
		}
	}
	return rep, nil
}

// --- internals (all require s.mu) ---

// refreshLocked brings the index up to date with the directory: it
// re-reads CURRENT (rebuilding the index when the segment generation
// changed) and scans any bytes appended since the last scan. With
// writer=true the caller holds the exclusive flock, so an unparseable
// tail cannot be an in-flight append and is truncated away; readers
// leave it for the next writer.
func (s *Store) refreshLocked(writer bool) error {
	name, gen, err := s.readCurrentLocked(writer)
	if err != nil {
		return err
	}
	if name != s.segName {
		seg, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: segment: %w", err)
		}
		if s.seg != nil {
			s.seg.Close()
		}
		s.seg = seg
		s.segName = name
		s.gen = gen
		s.size = 0
		s.segDirty = false
		s.index = map[string]*entry{}
		s.lru.Init()
	}
	st, err := s.seg.Stat()
	if err != nil {
		return fmt.Errorf("store: segment: %w", err)
	}
	if st.Size() > s.size {
		if err := s.scanTailLocked(st.Size(), writer); err != nil {
			return err
		}
	}
	return nil
}

// readCurrentLocked reads CURRENT, initializing the store layout on
// first contact (writer only; a reader racing the very first writer
// retries through the error path).
func (s *Store) readCurrentLocked(writer bool) (string, uint64, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, currentName))
	if err != nil {
		if !os.IsNotExist(err) {
			return "", 0, fmt.Errorf("store: CURRENT: %w", err)
		}
		name := "seg-1.log"
		if !writer {
			// Reader before any writer initialized the directory: treat
			// as the empty first segment without creating files.
			return name, 1, nil
		}
		if err := writeFileAtomic(s.dir, currentName, []byte(name+"\n")); err != nil {
			return "", 0, err
		}
		return name, 1, nil
	}
	name := strings.TrimSpace(string(b))
	gen, err := segGen(name)
	if err != nil {
		return "", 0, err
	}
	return name, gen, nil
}

func segGen(name string) (uint64, error) {
	trimmed := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log")
	if trimmed == name || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, fmt.Errorf("store: malformed CURRENT %q", name)
	}
	gen, err := strconv.ParseUint(trimmed, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: malformed CURRENT %q", name)
	}
	return gen, nil
}

// scanTailLocked parses frames in [s.size, end), indexing every intact
// frame with the right schema version. Corrupt frames are skipped by
// resyncing on the magic; an unparseable tail with no valid frame
// after it stops the scan (a reader may be seeing a torn or in-flight
// append) — unless writer is set, in which case it is truncated away.
func (s *Store) scanTailLocked(end int64, writer bool) error {
	data := make([]byte, end-s.size)
	if _, err := s.seg.ReadAt(data, s.size); err != nil && err != io.EOF {
		return fmt.Errorf("store: read segment: %w", err)
	}
	pos := 0
	for pos < len(data) {
		frameLen, key, ok := parseFrame(data[pos:], s.opt.SchemaVersion)
		if ok {
			if key != "" { // schema match
				if old := s.index[key]; old != nil {
					s.dropLocked(old)
					s.segDirty = true
				}
				en := &entry{key: key, off: s.size + int64(pos), frameLen: int64(frameLen)}
				en.elem = s.lru.PushBack(en)
				s.index[key] = en
			} else {
				s.schemaSkips.Add(1)
				s.segDirty = true
			}
			pos += frameLen
			continue
		}
		// Bad frame: hunt for the next one that parses clean.
		next := resync(data[pos+1:], s.opt.SchemaVersion)
		if next < 0 {
			// Garbage to end-of-data: a torn (or in-flight) tail.
			if writer {
				if err := s.seg.Truncate(s.size + int64(pos)); err != nil {
					return fmt.Errorf("store: truncate torn tail: %w", err)
				}
				s.corrupt.Add(1)
			}
			s.size += int64(pos)
			return nil
		}
		s.corrupt.Add(1)
		s.segDirty = true
		pos += 1 + next
	}
	s.size = end
	return nil
}

// parseFrame parses one frame at the head of data. ok reports an
// intact frame of length frameLen; key is empty when the frame's
// schema version does not match want.
func parseFrame(data []byte, want uint32) (frameLen int, key string, ok bool) {
	if len(data) < headerSize {
		return 0, "", false
	}
	if binary.LittleEndian.Uint32(data[0:4]) != magic {
		return 0, "", false
	}
	payLen := binary.LittleEndian.Uint32(data[4:8])
	if payLen < 12 || payLen > maxKeyLen+maxValLen+12 {
		return 0, "", false
	}
	if len(data) < headerSize+int(payLen) {
		return 0, "", false
	}
	pay := data[headerSize : headerSize+int(payLen)]
	if crc32.ChecksumIEEE(pay) != binary.LittleEndian.Uint32(data[8:12]) {
		return 0, "", false
	}
	schema := binary.LittleEndian.Uint32(pay[0:4])
	keyLen := binary.LittleEndian.Uint32(pay[4:8])
	if keyLen == 0 || keyLen > maxKeyLen || 8+keyLen+4 > payLen {
		return 0, "", false
	}
	valLen := binary.LittleEndian.Uint32(pay[8+keyLen : 12+keyLen])
	if uint64(12)+uint64(keyLen)+uint64(valLen) != uint64(payLen) {
		return 0, "", false
	}
	frameLen = headerSize + int(payLen)
	if schema != want {
		return frameLen, "", true
	}
	return frameLen, string(pay[8 : 8+keyLen]), true
}

// resync finds the offset of the next intact frame in data, or -1.
func resync(data []byte, want uint32) int {
	for i := 0; i+headerSize <= len(data); i++ {
		if binary.LittleEndian.Uint32(data[i:i+4]) != magic {
			continue
		}
		if _, _, ok := parseFrame(data[i:], want); ok {
			return i
		}
	}
	return -1
}

// encodeFrame renders one frame.
func encodeFrame(schema uint32, key string, value []byte) []byte {
	payLen := 12 + len(key) + len(value)
	buf := make([]byte, headerSize+payLen)
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(payLen))
	pay := buf[headerSize:]
	binary.LittleEndian.PutUint32(pay[0:4], schema)
	binary.LittleEndian.PutUint32(pay[4:8], uint32(len(key)))
	copy(pay[8:], key)
	binary.LittleEndian.PutUint32(pay[8+len(key):12+len(key)], uint32(len(value)))
	copy(pay[12+len(key):], value)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(pay))
	return buf
}

// readEntryLocked re-reads and re-verifies one live frame, returning
// its value.
func (s *Store) readEntryLocked(en *entry) ([]byte, error) {
	data := make([]byte, en.frameLen)
	if _, err := s.seg.ReadAt(data, en.off); err != nil {
		return nil, fmt.Errorf("store: read frame: %w", err)
	}
	frameLen, key, ok := parseFrame(data, s.opt.SchemaVersion)
	if !ok || int64(frameLen) != en.frameLen || key != en.key {
		return nil, errors.New("store: frame failed verification")
	}
	pay := data[headerSize:]
	return pay[12+len(key):], nil
}

// touchLocked moves an entry to the most-recently-used position.
func (s *Store) touchLocked(en *entry) {
	s.lru.MoveToBack(en.elem)
}

// dropLocked removes an entry from the index without touching disk.
func (s *Store) dropLocked(en *entry) {
	s.lru.Remove(en.elem)
	delete(s.index, en.key)
}

// evictLocked drops LRU entries until the live bytes fit targetBytes,
// then compacts. The most recently used entry always survives. Caller
// holds the exclusive flock.
func (s *Store) evictLocked(targetBytes int64) error {
	live := int64(0)
	for _, en := range s.index {
		live += en.frameLen
	}
	dropped := 0
	for live > targetBytes && s.lru.Len() > 1 {
		en := s.lru.Front().Value.(*entry)
		live -= en.frameLen
		s.dropLocked(en)
		dropped++
	}
	if dropped > 0 {
		s.evictions.Add(int64(dropped))
		s.segDirty = true
	}
	if s.segDirty {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the live entries (LRU order, oldest first)
// into a fresh segment and swaps CURRENT to it. Caller holds the
// exclusive flock.
func (s *Store) compactLocked() error {
	newGen := s.gen + 1
	newName := fmt.Sprintf("seg-%d.log", newGen)
	tmpPath := filepath.Join(s.dir, newName+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	type placed struct {
		en       *entry
		off      int64
		frameLen int64
	}
	var out []placed
	off := int64(0)
	for el := s.lru.Front(); el != nil; el = el.Next() {
		en := el.Value.(*entry)
		val, rerr := s.readEntryLocked(en)
		if rerr != nil {
			s.corrupt.Add(1)
			continue
		}
		frame := encodeFrame(s.opt.SchemaVersion, en.key, val)
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
		out = append(out, placed{en: en, off: off, frameLen: int64(len(frame))})
		off += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, newName)); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	if err := writeFileAtomic(s.dir, currentName, []byte(newName+"\n")); err != nil {
		f.Close()
		return err
	}
	oldName := s.segName
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = f
	s.segName = newName
	s.gen = newGen
	s.size = off
	s.segDirty = false
	// Re-point live entries at their new frames; dropped (corrupt)
	// ones leave the index.
	kept := map[string]*entry{}
	for _, p := range out {
		p.en.off = p.off
		p.en.frameLen = p.frameLen
		kept[p.en.key] = p.en
	}
	for k, en := range s.index {
		if kept[k] == nil {
			s.lru.Remove(en.elem)
		}
	}
	s.index = kept
	if oldName != "" && oldName != newName {
		os.Remove(filepath.Join(s.dir, oldName)) //nolint:errcheck // stale readers keep their handle
	}
	s.compactions.Add(1)
	return nil
}

// writeFileAtomic writes name under dir via temp+rename+dir-fsync.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync() //nolint:errcheck // content fsync is best-effort on some filesystems
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
