package store

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key, want string) {
	t.Helper()
	got, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%s): miss, want %q", key, want)
	}
	if string(got) != want {
		t.Fatalf("Get(%s) = %q, want %q", key, got, want)
	}
}

func segPath(t *testing.T, dir string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatalf("read CURRENT: %v", err)
	}
	return filepath.Join(dir, strings.TrimSpace(string(b)))
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "a", "alpha")
	mustPut(t, s, "b", "beta")
	mustGet(t, s, "a", "alpha")
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen: everything persisted, iteration order sorted.
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	mustGet(t, s2, "a", "alpha")
	mustGet(t, s2, "b", "beta")
	if keys := s2.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, want [a b]", keys)
	}
	st := s2.Stats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 2 hits 0 misses", st)
	}
}

func TestStorePutDedupAndOverwrite(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "k", "v1")
	size1 := s.SizeBytes()
	mustPut(t, s, "k", "v1") // identical: no growth
	if got := s.SizeBytes(); got != size1 {
		t.Fatalf("identical re-Put grew segment %d -> %d", size1, got)
	}
	mustPut(t, s, "k", "v2") // different: newest wins
	mustGet(t, s, "k", "v2")
	s.Close()
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	mustGet(t, s2, "k", "v2")
	if n := s2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestStoreSchemaMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "k", "v1")
	s.Close()
	// A build with a different schema version must never serve the old
	// frame, and its own writes land under the new version.
	s2 := openT(t, dir, Options{SchemaVersion: 2})
	if _, ok := s2.Get("k"); ok {
		t.Fatal("schema-mismatched frame was served")
	}
	if st := s2.Stats(); st.SchemaSkips == 0 {
		t.Fatalf("stats = %+v, want SchemaSkips > 0", st)
	}
	mustPut(t, s2, "k", "v2")
	mustGet(t, s2, "k", "v2")
	s2.Close()
	s3 := openT(t, dir, Options{SchemaVersion: 1})
	if _, ok := s3.Get("k"); ok {
		t.Fatal("new-schema frame served to old-schema reader")
	}
}

// corruptByte flips one byte inside the value region of the first
// frame holding key.
func corruptFrame(t *testing.T, dir string) {
	t.Helper()
	path := segPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if len(b) < headerSize+13 {
		t.Fatalf("segment too small to corrupt: %d bytes", len(b))
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
}

func TestStoreCorruptFrameSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "k", strings.Repeat("x", 100))
	s.Close()
	corruptFrame(t, dir)
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	if _, ok := s2.Get("k"); ok {
		t.Fatal("corrupt frame was served")
	}
	if st := s2.Stats(); st.CorruptFrames == 0 {
		t.Fatalf("stats = %+v, want CorruptFrames > 0", st)
	}
	// Write-back heals: the new frame is served, and the segment
	// compacts the dead bytes away.
	mustPut(t, s2, "k", "fresh")
	mustGet(t, s2, "k", "fresh")
	s2.Close()
	s3 := openT(t, dir, Options{SchemaVersion: 1})
	mustGet(t, s3, "k", "fresh")
	if st := s3.Stats(); st.CorruptFrames != 0 {
		t.Fatalf("healed store still scans %d corrupt frames", st.CorruptFrames)
	}
}

func TestStoreCorruptionBetweenFramesResyncs(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "first", strings.Repeat("a", 64))
	firstLen := s.SizeBytes()
	mustPut(t, s, "second", strings.Repeat("b", 64))
	s.Close()
	// Mangle the first frame's length field: the scanner must resync
	// on the second frame's magic rather than derail.
	path := segPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[5] ^= 0xA5 // payLen of frame one
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = firstLen
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	if _, ok := s2.Get("first"); ok {
		t.Fatal("frame with mangled length was served")
	}
	mustGet(t, s2, "second", strings.Repeat("b", 64))
}

func TestStoreTornTailTruncatedByWriter(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "whole", "value")
	s.Close()
	// Simulate a crash mid-append: a half-written frame at the tail.
	path := segPath(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := encodeFrame(1, "torn", []byte("never committed"))
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn frame was served")
	}
	mustGet(t, s2, "whole", "value")
	mustPut(t, s2, "after", "append lands cleanly")
	mustGet(t, s2, "after", "append lands cleanly")
	s2.Close()
	s3 := openT(t, dir, Options{SchemaVersion: 1})
	mustGet(t, s3, "whole", "value")
	mustGet(t, s3, "after", "append lands cleanly")
	if st := s3.Stats(); st.CorruptFrames != 0 {
		t.Fatalf("truncated tail still scans as %d corrupt frames", st.CorruptFrames)
	}
}

func TestStoreEvictionRespectsCapAndLRU(t *testing.T) {
	dir := t.TempDir()
	val := strings.Repeat("v", 200)
	frame := int64(len(encodeFrame(1, "key-00", []byte(val))))
	cap := 5 * frame
	s := openT(t, dir, Options{SchemaVersion: 1, MaxBytes: cap})
	for i := 0; i < 4; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), val)
	}
	// Touch key-00 so it is the most recently used of the old entries.
	mustGet(t, s, "key-00", val)
	for i := 4; i < 12; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), val)
	}
	if got := s.SizeBytes(); got > cap {
		t.Fatalf("segment %d bytes exceeds cap %d", got, cap)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions", st)
	}
	// The untouched early keys must have been evicted before the
	// touched one.
	if _, ok := s.Get("key-01"); ok {
		if _, ok00 := s.Get("key-00"); !ok00 {
			t.Fatal("LRU order inverted: untouched key survived, touched key evicted")
		}
	}
	// Explicit Evict down to two frames.
	if _, err := s.Evict(2 * frame); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if got := s.SizeBytes(); got > 2*frame {
		t.Fatalf("after Evict segment is %d bytes, want <= %d", got, 2*frame)
	}
	s.Close()
	s2 := openT(t, dir, Options{SchemaVersion: 1, MaxBytes: cap})
	if n := s2.Len(); n == 0 || n > 2 {
		t.Fatalf("after eviction Len = %d, want 1..2", n)
	}
}

func TestStoreVerify(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "good", "value")
	mustPut(t, s, "bad", "reject me")
	rep, err := s.Verify(func(key string, val []byte) error {
		if key == "bad" {
			return fmt.Errorf("bad value")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Entries != 2 || rep.BadValues != 1 || rep.CorruptFrames != 0 {
		t.Fatalf("report = %+v, want 2 entries, 1 bad, 0 corrupt", rep)
	}
	s.Close()
	// Corrupt the first frame (mid-file, a later frame still intact):
	// truncation cannot heal it, so Verify must report it.
	path := segPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[20] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{SchemaVersion: 1})
	rep2, err := s2.Verify(nil)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep2.CorruptFrames == 0 {
		t.Fatalf("report = %+v, want corrupt frames detected", rep2)
	}
}

func TestStoreConcurrentGoroutines(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	const (
		writers = 4
		readers = 4
		keys    = 32
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%02d", i)
				if err := s.Put(key, []byte("val-"+key)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%02d", i)
				if val, ok := s.Get(key); ok && string(val) != "val-"+key {
					t.Errorf("Get(%s) = %q", key, val)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%02d", i)
		mustGet(t, s, key, "val-"+key)
	}
}

// TestStoreTwoProcesses shares one directory between this process and
// a re-executed copy of the test binary, interleaving writes from both
// sides under the advisory lock.
func TestStoreTwoProcesses(t *testing.T) {
	if os.Getenv("STORE_HELPER_DIR") != "" {
		t.Skip("helper invocation")
	}
	dir := t.TempDir()
	s := openT(t, dir, Options{SchemaVersion: 1})
	mustPut(t, s, "parent-0", "from parent")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_HELPER_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process: %v\n%s", err, out)
	}
	// The child's commits are visible here without reopening.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("child-%d", i)
		mustGet(t, s, key, "from child "+key)
	}
	mustGet(t, s, "parent-0", "from parent")
	mustPut(t, s, "parent-1", "after child")
	if n := s.Len(); n != 10 {
		t.Fatalf("Len = %d, want 10", n)
	}
}

// TestStoreHelperProcess is the child side of TestStoreTwoProcesses;
// it only runs when re-executed with STORE_HELPER_DIR set.
func TestStoreHelperProcess(t *testing.T) {
	dir := os.Getenv("STORE_HELPER_DIR")
	if dir == "" {
		t.Skip("not a helper invocation")
	}
	s, err := Open(dir, Options{SchemaVersion: 1})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	defer s.Close()
	// The parent's pre-existing entry must be visible.
	if val, ok := s.Get("parent-0"); !ok || string(val) != "from parent" {
		t.Fatalf("child Get(parent-0) = %q, %v", val, ok)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("child-%d", i)
		if err := s.Put(key, []byte("from child "+key)); err != nil {
			t.Fatalf("child Put(%s): %v", key, err)
		}
	}
}
