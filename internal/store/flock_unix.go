//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockEx takes the advisory exclusive lock on f, blocking until it is
// granted. flock is per open-file-description, so two *Store handles
// in one process serialize exactly like two processes do.
func flockEx(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

// flockUn releases the advisory lock.
func flockUn(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
