//go:build !unix

package store

import "os"

// Without flock the store is still crash-safe for a single process;
// cross-process sharing of one directory is unsynchronized on this
// platform and should be avoided.
func flockEx(*os.File) error { return nil }

func flockUn(*os.File) error { return nil }
