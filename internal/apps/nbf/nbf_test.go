package nbf

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b))
}

// TestParallelVersionsAgreeBitwise: all parallel versions sum the
// per-processor contribution buffers in processor order, so their
// results are bitwise identical to each other.
func TestParallelVersionsAgreeBitwise(t *testing.T) {
	cfg := cfgSmall(4)
	ref, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []core.Version{core.SPF, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != ref.Checksum {
			t.Errorf("%s checksum = %v, want %v (bitwise vs Tmk)", v, r.Checksum, ref.Checksum)
		}
	}
}

// TestMatchesSequentialWithinTolerance: the sequential version
// accumulates pair forces in a single global order, so it differs from
// the parallel versions only by float32 rounding.
func TestMatchesSequentialWithinTolerance(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(seq.Checksum, par.Checksum, 1e-5) {
		t.Errorf("Tmk checksum = %v, seq = %v: beyond rounding tolerance", par.Checksum, seq.Checksum)
	}
}

func TestPartnerListsRespectWindow(t *testing.T) {
	const m, w, per = 512, 32, 8
	lists := buildPartners(m, w, per)
	far := 0
	for i, list := range lists {
		if i == 0 && len(list) != 0 {
			t.Fatal("molecule 0 cannot have partners")
		}
		for k, j := range list {
			if j >= int32(i) {
				t.Fatalf("molecule %d has partner %d >= itself", i, j)
			}
			if j < int32(max(0, i-w)) {
				// Only the sparse far tail may leave the window.
				if k < len(list)-1 || i%farEvery != farEvery-1 {
					t.Fatalf("molecule %d has out-of-window partner %d at slot %d", i, j, k)
				}
				far++
			}
		}
		if i >= w && len(list) < per {
			t.Fatalf("molecule %d has %d partners, want >= %d", i, len(list), per)
		}
	}
	if far == 0 && m > farEvery {
		t.Error("expected at least one far partner in the tail")
	}
}

func TestPartnerListsDeterministic(t *testing.T) {
	a := buildPartners(256, 32, 8)
	b := buildPartners(256, 32, 8)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("partner lists differ at %d/%d", i, k)
			}
		}
	}
}

// TestForceConservation: every pair adds +g to one molecule and -g to
// the other, so the total force is (exactly, in the absence of float32
// cancellation surprises at this magnitude, approximately) zero.
func TestForceConservation(t *testing.T) {
	const m = 512
	x := make([]float32, m)
	y := make([]float32, m)
	z := make([]float32, m)
	f := make([]float32, m)
	initCoords(x, y, z)
	lists := buildPartners(m, 32, 8)
	forceBlock(f, x, y, z, lists, 0, m)
	var total float64
	for _, v := range f {
		total += float64(v)
	}
	if math.Abs(total) > 1e-4 {
		t.Errorf("net force = %v, want ~0 (Newton's third law)", total)
	}
}

// TestXHPFDataBlowup: Table 3's NBF story — XHPF broadcasts whole force
// buffers and coordinate partitions; TreadMarks moves only the
// boundary-window diffs.
func TestXHPFDataBlowup(t *testing.T) {
	// Needs arrays spanning many pages; at toy sizes whole arrays fit in
	// single pages and false sharing masks the effect.
	cfg := cfgSmall(8)
	cfg.N1, cfg.N2 = 8192, 256
	xr, err := New().Run(core.XHPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At paper scale the ratio is ~700x (163,775 KB vs 228 KB); at this
	// reduced size per-page diff granularity keeps Tmk's volume higher.
	if xr.Stats.TotalBytes() < 8*tr.Stats.TotalBytes() {
		t.Errorf("XHPF bytes = %d, Tmk bytes = %d: expected >= 8x blow-up",
			xr.Stats.TotalBytes(), tr.Stats.TotalBytes())
	}
}

// TestPVMeDataDominatedByForceReduction: the paper's PVMe NBF volume
// (31 MB) comes from the full-buffer force reduction.
func TestPVMeDataDominatedByForceReduction(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.PVMe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: (n-1) gathers + (n-1) broadcasts of m*4 bytes plus
	// small coordinate windows.
	reduction := int64(cfg.Iters * 2 * (cfg.Procs - 1) * cfg.N1 * 4)
	got := r.Stats.TotalBytes()
	if got < reduction || got > reduction*2 {
		t.Errorf("PVMe bytes = %d, want dominated by the %d-byte reduction", got, reduction)
	}
}

// TestIrregularOrdering: Figure 2's NBF shape at a mid size:
// PVMe > Tmk > SPF >> XHPF.
func TestIrregularOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size run")
	}
	cfg := cfgSmall(8)
	cfg.N1, cfg.N2, cfg.N3, cfg.Iters = 8192, 256, 50, 6
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if sp[core.Tmk] <= sp[core.XHPF] || sp[core.SPF] <= sp[core.XHPF] {
		t.Errorf("DSM must beat XHPF: Tmk=%.2f SPF=%.2f XHPF=%.2f", sp[core.Tmk], sp[core.SPF], sp[core.XHPF])
	}
	// The root-serialized force reduction handicaps PVMe relatively more
	// at reduced size (compute shrinks faster than the reduction); the
	// paper-scale comparison lives in the harness. Here PVMe must only
	// stay clearly ahead of XHPF.
	if sp[core.PVMe] <= sp[core.XHPF]*1.1 {
		t.Errorf("PVMe=%.2f should clearly beat XHPF=%.2f", sp[core.PVMe], sp[core.XHPF])
	}
}
