// Package nbf implements the paper's NBF application (§6.2): the
// non-bonded force kernel of a molecular dynamics simulation. Every
// molecule carries a run-time partner list (molecules close enough to
// interact); the force loop walks the lists and scatters updates to both
// molecules of each pair through the indirection, so compilers cannot
// analyze the access pattern. Each processor accumulates force updates
// into a local contribution buffer; the buffers are summed after the
// force loop, and the coordinates move at the end of the iteration.
//
// Partner lists are generated with spatial locality (partners within a
// window of indices), which is what makes the DSM versions cheap: the
// contribution buffers are zero except near block boundaries, so
// TreadMarks diffs carry almost nothing, while XHPF must broadcast whole
// buffers (Table 3: 228 KB vs 163,775 KB of data).
//
// Simplification (documented in DESIGN.md): forces are a single scalar
// per molecule rather than a 3-vector; coordinates remain 3-D. The
// communication structure — full-buffer reduction, coordinate windows —
// is preserved with the paper's array sizes.
package nbf

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

type app struct{}

// New returns the NBF application.
func New() core.App { return app{} }

func (app) Name() string { return "NBF" }

// Config: N1 = molecules, N2 = partner-window, N3 = partners per
// molecule.
func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 1024, N2: 64, N3: 12, Iters: 4, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 8192, N2: 256, N3: 50, Iters: 8, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 32768, N2: 512, N3: 100, Iters: 19, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg)
	case core.SPF:
		return runSPF(cfg)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	}
	return core.Result{}, fmt.Errorf("nbf: unsupported version %q", v)
}

func hash32(x uint32) uint32 {
	x = x*2654435761 + 974711
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return x
}

// farEvery controls the sprinkling of non-local pairs: one molecule in
// every farEvery has a single partner drawn uniformly from [0, i). Real
// neighbor lists are mostly local with a thin far tail; the tail is what
// produces the paper's scattered TreadMarks page faults (660 messages
// per iteration) while staying a "small subsection of the array" (§6.2).
const farEvery = 176

// buildPartners generates each molecule's partner list: N3 partners
// drawn deterministically from the window [i-N2, i), plus the sparse far
// tail. Pairs are stored on the higher-indexed molecule so each pair is
// processed exactly once.
func buildPartners(m, window, per int) [][]int32 {
	lists := make([][]int32, m)
	for i := 0; i < m; i++ {
		span := min(i, window)
		if span == 0 {
			continue
		}
		count := min(per, span)
		seen := make(map[int32]bool, count)
		list := make([]int32, 0, count+1)
		for k := 0; len(list) < count; k++ {
			j := int32(i - 1 - int(hash32(uint32(i*1009+k))%uint32(span)))
			if !seen[j] {
				seen[j] = true
				list = append(list, j)
			}
		}
		if i%farEvery == farEvery-1 {
			far := int32(hash32(uint32(i*31+7)) % uint32(i))
			if !seen[far] {
				list = append(list, far)
			}
		}
		lists[i] = list
	}
	return lists
}

func initCoords(x, y, z []float32) {
	for i := range x {
		x[i] = 0.5 + float32(hash32(uint32(3*i))%1024)/1024
		y[i] = 0.5 + float32(hash32(uint32(3*i+1))%1024)/1024
		z[i] = 0.5 + float32(hash32(uint32(3*i+2))%1024)/1024
	}
}

// pairForce is the interaction kernel: a cheap deterministic function of
// the coordinate difference.
func pairForce(xi, yi, zi, xj, yj, zj float32) float32 {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	return dx*0.001 + dy*0.0005 + dz*0.00025 - (dx*dx+dy*dy+dz*dz)*0.0001
}

// forceBlock accumulates pair forces for molecules [lo,hi) into buf.
// Returns the number of pairs processed (for cost charging).
func forceBlock(buf, x, y, z []float32, lists [][]int32, lo, hi int) int {
	pairs := 0
	for i := lo; i < hi; i++ {
		for _, j := range lists[i] {
			g := pairForce(x[i], y[i], z[i], x[j], y[j], z[j])
			buf[i] += g
			buf[j] -= g
			pairs++
		}
	}
	return pairs
}

// moveBlock applies summed forces to coordinates for [lo,hi).
func moveBlock(x, y, z, f []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		x[i] += f[i] * 0.01
		y[i] += f[i] * 0.005
		z[i] += f[i] * 0.0025
	}
}

func coordSum(x, y, z []float32) float64 {
	return apputil.Sum64(x) + 2*apputil.Sum64(y) + 4*apputil.Sum64(z)
}

// forceBlockDSM is the force phase against shared regions: the local
// window is range-validated once (the checks a compiler hoists), and the
// sparse far partners are demand-faulted page by page, exactly as
// hardware faulting would behave. Far-scattered buffer entries from the
// previous iteration are re-zeroed first.
func forceBlockDSM(buf, x, y, z *tmk.Region[float32], lists [][]int32, lo, hi, wlo int) int {
	bw := buf.Write(wlo, hi)
	for i := wlo; i < hi; i++ {
		bw[i] = 0
	}
	for i := lo; i < hi; i++ {
		for _, j := range lists[i] {
			if int(j) < wlo {
				bw = buf.Write(int(j), int(j)+1)
				bw[j] = 0
			}
		}
	}
	rx := x.Read(wlo, hi)
	ry := y.Read(wlo, hi)
	rz := z.Read(wlo, hi)
	pairs := 0
	for i := lo; i < hi; i++ {
		for _, j := range lists[i] {
			jj := int(j)
			if jj < wlo {
				rx = x.Read(jj, jj+1)
				ry = y.Read(jj, jj+1)
				rz = z.Read(jj, jj+1)
				bw = buf.Write(jj, jj+1)
			}
			g := pairForce(rx[i], ry[i], rz[i], rx[jj], ry[jj], rz[jj])
			bw[i] += g
			bw[jj] -= g
			pairs++
		}
	}
	return pairs
}

func runSeq(cfg core.Config) (core.Result, error) {
	m := cfg.N1
	return apputil.RunSeq("NBF", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		x := make([]float32, m)
		y := make([]float32, m)
		z := make([]float32, m)
		f := make([]float32, m)
		lists := buildPartners(m, cfg.N2, cfg.N3)
		initCoords(x, y, z)
		return apputil.SeqProgram{
			Iterate: func(k int) {
				for i := range f {
					f[i] = 0
				}
				pairs := forceBlock(f, x, y, z, lists, 0, m)
				tm.Advance(apputil.Cost(pairs, cfg.App.NBFPair))
				moveBlock(x, y, z, f, 0, m)
				tm.Advance(apputil.Cost(m, cfg.App.NBFUpdate))
			},
			Checksum: func() float64 { return coordSum(x, y, z) },
		}
	})
}

func runTmk(cfg core.Config) (core.Result, error) {
	m := cfg.N1
	return apputil.RunTmk("NBF", core.Tmk, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		me, nprocs := tm.ID(), tm.NProcs()
		x := tmk.Alloc[float32](tm, "x", m)
		y := tmk.Alloc[float32](tm, "y", m)
		z := tmk.Alloc[float32](tm, "z", m)
		bufs := make([]*tmk.Region[float32], nprocs)
		for p := 0; p < nprocs; p++ {
			bufs[p] = tmk.Alloc[float32](tm, fmt.Sprintf("buf%d", p), m)
		}
		lists := buildPartners(m, cfg.N2, cfg.N3)
		lo, hi := apputil.BlockOf(me, nprocs, m)
		wlo := max(0, lo-cfg.N2) // my contribution window
		f := make([]float32, m)  // private summed force (own block only)
		if me == 0 {
			wx, wy, wz := x.Write(0, m), y.Write(0, m), z.Write(0, m)
			initCoords(wx[:m], wy[:m], wz[:m])
		}
		tm.Barrier()
		return apputil.TmkProgram{
			Iterate: func(k int) {
				// Force phase: window range-validated, far partners
				// demand-faulted, accumulation into my shared buffer.
				pairs := forceBlockDSM(bufs[me], x, y, z, lists, lo, hi, wlo)
				tm.Advance(apputil.Cost(pairs, cfg.App.NBFPair))
				tm.Barrier()
				// Combine: sum every processor's contributions over my
				// block (faults fetch only the buffer pages that were
				// actually written near boundaries), then move my block.
				for i := lo; i < hi; i++ {
					f[i] = 0
				}
				for p := 0; p < nprocs; p++ {
					rb := bufs[p].Read(lo, hi)
					for i := lo; i < hi; i++ {
						f[i] += rb[i]
					}
				}
				wx := x.Write(lo, hi)
				wy := y.Write(lo, hi)
				wz := z.Write(lo, hi)
				moveBlock(wx, wy, wz, f, lo, hi)
				tm.Advance(apputil.Cost(hi-lo, cfg.App.NBFUpdate))
				tm.Barrier()
			},
			Checksum: func() float64 {
				gx, gy, gz := x.Read(0, m), y.Read(0, m), z.Read(0, m)
				return coordSum(gx[:m], gy[:m], gz[:m])
			},
		}
	})
}

func runSPF(cfg core.Config) (core.Result, error) {
	m := cfg.N1
	return apputil.RunSPF("NBF", core.SPF, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		nprocs := rt.NProcs()
		x := tmk.Alloc[float32](tm, "x", m)
		y := tmk.Alloc[float32](tm, "y", m)
		z := tmk.Alloc[float32](tm, "z", m)
		force := tmk.Alloc[float32](tm, "force", m)
		bufs := make([]*tmk.Region[float32], nprocs)
		for p := 0; p < nprocs; p++ {
			bufs[p] = tmk.Alloc[float32](tm, fmt.Sprintf("buf%d", p), m)
		}
		lists := buildPartners(m, cfg.N2, cfg.N3)

		forceLoop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			wlo := max(0, lo-cfg.N2)
			pairs := forceBlockDSM(bufs[rt.ID()], x, y, z, lists, lo, hi, wlo)
			rt.Advance(apputil.Cost(pairs, cfg.App.NBFPair))
		})
		moveLoop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			w := force.Write(lo, hi)
			for i := lo; i < hi; i++ {
				w[i] = 0
			}
			for p := 0; p < nprocs; p++ {
				rb := bufs[p].Read(lo, hi)
				for i := lo; i < hi; i++ {
					w[i] += rb[i]
				}
			}
			wx := x.Write(lo, hi)
			wy := y.Write(lo, hi)
			wz := z.Write(lo, hi)
			moveBlock(wx, wy, wz, w, lo, hi)
			rt.Advance(apputil.Cost(hi-lo, cfg.App.NBFUpdate))
		})

		if rt.IsMaster() {
			wx, wy, wz := x.Write(0, m), y.Write(0, m), z.Write(0, m)
			initCoords(wx[:m], wy[:m], wz[:m])
		}
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(forceLoop, 0, m, spf.Block)
				rt.ParallelDo(moveLoop, 0, m, spf.Block)
			},
			Checksum: func() float64 {
				gx, gy, gz := x.Read(0, m), y.Read(0, m), z.Read(0, m)
				return coordSum(gx[:m], gy[:m], gz[:m])
			},
		}
	})
}

func runXHPF(cfg core.Config) (core.Result, error) {
	m := cfg.N1
	return apputil.RunXHPF("NBF", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		xs := make([]float32, m)
		ys := make([]float32, m)
		zs := make([]float32, m)
		buf := make([]float32, m)
		lists := buildPartners(m, cfg.N2, cfg.N3)
		initCoords(xs, ys, zs)
		me := x.ID()
		lo, hi := x.Block(m)
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				for i := range buf {
					buf[i] = 0
				}
				pairs := forceBlock(buf, xs, ys, zs, lists, lo, hi)
				x.Advance(apputil.Cost(pairs, cfg.App.NBFPair))
				// The compiler cannot tell which buffer entries were
				// touched through the partner lists: broadcast the whole
				// local force buffer and sum (paper §6.2).
				orderedAccumulate(x, buf)
				x.LoopSync()
				moveBlock(xs, ys, zs, buf, lo, hi)
				x.Advance(apputil.Cost(hi-lo, cfg.App.NBFUpdate))
				// Coordinates also defeat analysis: broadcast partitions.
				xhpf.BroadcastPartition(x, xs, m, 4)
				xhpf.BroadcastPartition(x, ys, m, 4)
				xhpf.BroadcastPartition(x, zs, m, 4)
				x.LoopSync()
			},
			Checksum: func() float64 {
				if me != 0 {
					return 0
				}
				return coordSum(xs, ys, zs)
			},
		}
	})
}

// orderedAccumulate sums every processor's full contribution buffer in
// processor order (so all parallel versions produce bitwise-identical
// forces).
func orderedAccumulate(x *xhpf.XHPF, buf []float32) {
	parts := make([][]float32, x.NProcs())
	for q := range parts {
		if q == x.ID() {
			mine := make([]float32, len(buf))
			copy(mine, buf)
			parts[q] = mine
		} else {
			parts[q] = make([]float32, len(buf))
		}
	}
	xhpf.BroadcastGather(x, parts)
	for i := range buf {
		var s float32
		for q := 0; q < x.NProcs(); q++ {
			s += parts[q][i]
		}
		buf[i] = s
	}
}

func runPVM(cfg core.Config) (core.Result, error) {
	m := cfg.N1
	return apputil.RunPVM("NBF", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		xs := make([]float32, m)
		ys := make([]float32, m)
		zs := make([]float32, m)
		buf := make([]float32, m)
		lists := buildPartners(m, cfg.N2, cfg.N3)
		initCoords(xs, ys, zs)
		me, nprocs := pv.ID(), pv.NProcs()
		lo, hi := apputil.BlockOf(me, nprocs, m)
		w := cfg.N2
		return apputil.PVMProgram{
			Iterate: func(k int) {
				for i := range buf {
					buf[i] = 0
				}
				pairs := forceBlock(buf, xs, ys, zs, lists, lo, hi)
				pv.Advance(apputil.Cost(pairs, cfg.App.NBFPair))
				// Hand-coded: sum the full force buffers through task 0 in
				// task order, rebroadcast (paper's PVMe data volume comes
				// from exactly this full-buffer reduction).
				total := orderedReduce(pv, buf)
				copy(buf, total)
				moveBlock(xs, ys, zs, buf, lo, hi)
				pv.Advance(apputil.Cost(hi-lo, cfg.App.NBFUpdate))
				// Partners reach at most N2 below my block: send my lower
				// boundary window up, my upper boundary window down.
				exchangeCoordWindows(pv, xs, ys, zs, lo, hi, w, m)
			},
			Checksum: func() float64 {
				gatherBlocks(pv, xs, ys, zs, m)
				if me != 0 {
					return 0
				}
				return coordSum(xs, ys, zs)
			},
		}
	})
}

// orderedReduce gathers every task's buffer on task 0, sums in task
// order, and broadcasts the total.
func orderedReduce(pv *pvm.PVM, buf []float32) []float32 {
	nprocs := pv.NProcs()
	total := make([]float32, len(buf))
	if pv.ID() == 0 {
		parts := make([][]float32, nprocs)
		parts[0] = buf
		for q := 1; q < nprocs; q++ {
			parts[q] = make([]float32, len(buf))
			pvm.Recv(pv, q, 500, parts[q])
		}
		for i := range total {
			var s float32
			for q := 0; q < nprocs; q++ {
				s += parts[q][i]
			}
			total[i] = s
		}
	} else {
		pvm.Send(pv, 0, 500, buf)
	}
	pvm.Bcast(pv, 0, 502, total)
	return total
}

// exchangeCoordWindows ships updated boundary coordinate windows to the
// neighbors whose partner lists reach into this block.
func exchangeCoordWindows(pv *pvm.PVM, xs, ys, zs []float32, lo, hi, w, m int) {
	me, nprocs := pv.ID(), pv.NProcs()
	for d, arr := range [][]float32{xs, ys, zs} {
		tag := 510 + 4*d
		if me < nprocs-1 { // my upper window feeds the next block's partners
			pvm.Send(pv, me+1, tag, arr[max(hi-w, lo):hi])
		}
		if me > 0 { // their upper window is my lower halo
			pvm.Recv(pv, me-1, tag, arr[max(lo-w, 0):lo])
		}
	}
}

// gatherBlocks collects the coordinate blocks on task 0, untracked.
func gatherBlocks(pv *pvm.PVM, xs, ys, zs []float32, m int) {
	me, nprocs := pv.ID(), pv.NProcs()
	if me == 0 {
		for q := 1; q < nprocs; q++ {
			qlo, qhi := apputil.BlockOf(q, nprocs, m)
			pvm.RecvUntracked(pv, q, 530, xs[qlo:qhi])
			pvm.RecvUntracked(pv, q, 531, ys[qlo:qhi])
			pvm.RecvUntracked(pv, q, 532, zs[qlo:qhi])
		}
		return
	}
	lo, hi := apputil.BlockOf(me, nprocs, m)
	pvm.SendUntracked(pv, 0, 530, xs[lo:hi])
	pvm.SendUntracked(pv, 0, 531, ys[lo:hi])
	pvm.SendUntracked(pv, 0, 532, zs[lo:hi])
}
