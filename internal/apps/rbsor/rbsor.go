// Package rbsor implements red-black successive over-relaxation, the
// first application added through the internal/loopc compiler front
// end rather than reproduced from the paper. The kernel is the classic
// 5-point Gauss-Seidel relaxation with over-relaxation factor ω,
// split into two half-sweeps by the parity of (i+j): the red sweep
// updates even points reading only black neighbors, the black sweep
// the reverse. In-place updates make the nest look serial to a naive
// dependence test; the parity split is exactly what loopc's analyzer
// must see through to classify both sweeps DOALL (and what the paper's
// compilers saw through on real codes).
//
// The grid geometry matches Jacobi: an N×N single-precision grid,
// edges fixed at one, interior starting at zero, row-partitioned with
// single-row halos.
package rbsor

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/loopc"
	"repro/internal/pvm"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

// Over-relaxation factor and the derived update coefficients. Both are
// exactly representable in float32, so constant folding here and
// Lit(...) constants in the IR agree to the bit.
const (
	omega    = 1.25
	cSelf    = 1 - omega    // -0.25
	cStencil = omega * 0.25 // 0.3125
)

// app implements core.App.
type app struct{}

// New returns the red-black SOR application.
func New() core.App { return app{} }

func (app) Name() string { return "RB-SOR" }

func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 64, Iters: 4, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 1024, Iters: 20, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 2048, Iters: 100, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFGen, core.XHPFGen}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg)
	case core.SPF:
		return runSPF(cfg)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	case core.SPFGen:
		return loopc.RunSPF("RB-SOR", core.SPFGen, cfg, IR(cfg))
	case core.XHPFGen:
		return loopc.RunXHPF("RB-SOR", core.XHPFGen, cfg, IR(cfg))
	}
	return core.Result{}, fmt.Errorf("rbsor: unsupported version %q", v)
}

// initGrid sets edges to one and the interior to zero.
func initGrid(g []float32, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				g[i*n+j] = 1
			} else {
				g[i*n+j] = 0
			}
		}
	}
}

// sweepRows relaxes the points of one color ((i+j) mod 2 == color) in
// interior columns of rows [rlo,rhi), in place, and returns the number
// of points updated. The expression shape — cSelf*self +
// cStencil*(((up+down)+left)+right) — is the one the IR encodes.
func sweepRows(u []float32, n, rlo, rhi, color int) int {
	cnt := 0
	for i := rlo; i < rhi; i++ {
		s := i * n
		for j := 1; j < n-1; j++ {
			if (i+j)&1 != color {
				continue
			}
			u[s+j] = cSelf*u[s+j] + cStencil*(u[s-n+j]+u[s+n+j]+u[s+j-1]+u[s+j+1])
			cnt++
		}
	}
	return cnt
}

func runSeq(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSeq("RB-SOR", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		u := make([]float32, n*n)
		initGrid(u, n)
		return apputil.SeqProgram{
			Iterate: func(k int) {
				for color := 0; color < 2; color++ {
					cnt := sweepRows(u, n, 1, n-1, color)
					tm.Advance(apputil.Cost(cnt, cfg.App.SORUpdate))
				}
			},
			Checksum: func() float64 { return apputil.Sum64(u) },
		}
	})
}

// runTmk is the hand-coded TreadMarks version: the grid is shared,
// each process relaxes its own rows in place, and a barrier separates
// the color sweeps (black reads red's boundary updates).
func runTmk(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunTmk("RB-SOR", core.Tmk, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		u := tmk.Alloc[float32](tm, "u", n*n)
		lo, hi := apputil.BlockOf(tm.ID(), tm.NProcs(), n-2)
		lo, hi = lo+1, hi+1 // interior rows
		rows := hi - lo
		if tm.ID() == 0 {
			w := u.Write(0, n*n)
			initGrid(w[:n*n], n)
		}
		tm.Barrier()
		return apputil.TmkProgram{
			Iterate: func(k int) {
				for color := 0; color < 2; color++ {
					if rows > 0 {
						u.Read((lo-1)*n, (hi+1)*n)
						w := u.Write(lo*n, hi*n)
						cnt := sweepRows(w, n, lo, hi, color)
						tm.Advance(apputil.Cost(cnt, cfg.App.SORUpdate))
					}
					tm.Barrier()
				}
			},
			Checksum: func() float64 {
				g := u.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runSPF is the hand-written rendition of what the SPF compiler emits
// for the red-black nest: the grid in shared memory and one
// encapsulated parallel-loop subroutine per color sweep. It is the
// reference the generated spf-gen version must match bit for bit.
func runSPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSPF("RB-SOR", core.SPF, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		u := tmk.Alloc[float32](tm, "u", n*n)
		sweeps := make([]int, 2)
		for color := 0; color < 2; color++ {
			color := color
			sweeps[color] = rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
				if lo >= hi {
					return
				}
				u.Read((lo-1)*n, (hi+1)*n)
				w := u.Write(lo*n, hi*n)
				cnt := sweepRows(w, n, lo, hi, color)
				rt.Advance(apputil.Cost(cnt, cfg.App.SORUpdate))
			})
		}
		if rt.IsMaster() {
			w := u.Write(0, n*n)
			initGrid(w[:n*n], n)
		}
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(sweeps[0], 1, n-1, spf.Block)
				rt.ParallelDo(sweeps[1], 1, n-1, spf.Block)
			},
			Checksum: func() float64 {
				g := u.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runXHPF is the hand-written rendition of the XHPF output: BLOCK row
// distribution, a halo exchange before each color sweep (the stencil
// reads the neighbor's boundary rows, freshly updated by the previous
// sweep), and runtime synchronization at the loop boundaries. The
// generated xhpf-gen version must match it bit for bit.
func runXHPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunXHPF("RB-SOR", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		u := make([]float32, n*n)
		initGrid(u, n)
		elo, ehi := x.Block(n * n)
		rlo, rhi := elo/n, ehi/n
		clo, chi := max(rlo, 1), min(rhi, n-1)
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				for color := 0; color < 2; color++ {
					xhpf.ExchangeHalo(x, u, n*n, n)
					if chi > clo {
						cnt := sweepRows(u, n, clo, chi, color)
						x.Advance(apputil.Cost(cnt, cfg.App.SORUpdate))
					}
					x.LoopSync()
				}
			},
			Checksum: func() float64 {
				gatherRows(x.PVM(), u, n, rlo, rhi)
				if x.ID() != 0 {
					return 0
				}
				return apputil.Sum64(u)
			},
		}
	})
}

// runPVM is the hand-coded message-passing version: each color sweep
// is preceded by a direct boundary-row exchange with the neighbors —
// the message doubles as the synchronization.
func runPVM(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunPVM("RB-SOR", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		u := make([]float32, n*n)
		initGrid(u, n)
		elo, ehi := apputil.BlockOf(pv.ID(), pv.NProcs(), n*n)
		rlo, rhi := elo/n, ehi/n
		clo, chi := max(rlo, 1), min(rhi, n-1)
		me := pv.ID()
		last := pv.NProcs() - 1
		return apputil.PVMProgram{
			Iterate: func(k int) {
				for color := 0; color < 2; color++ {
					up, down := 70+2*color, 71+2*color
					if me > 0 {
						pvm.Send(pv, me-1, up, u[rlo*n:(rlo+1)*n])
					}
					if me < last {
						pvm.Send(pv, me+1, down, u[(rhi-1)*n:rhi*n])
					}
					if me > 0 {
						pvm.Recv(pv, me-1, down, u[(rlo-1)*n:rlo*n])
					}
					if me < last {
						pvm.Recv(pv, me+1, up, u[rhi*n:(rhi+1)*n])
					}
					if chi > clo {
						cnt := sweepRows(u, n, clo, chi, color)
						pv.Advance(apputil.Cost(cnt, cfg.App.SORUpdate))
					}
				}
			},
			Checksum: func() float64 {
				gatherRows(pv, u, n, rlo, rhi)
				if pv.ID() != 0 {
					return 0
				}
				return apputil.Sum64(u)
			},
		}
	})
}

// gatherRows collects every task's row block on task 0, untracked.
func gatherRows(pv *pvm.PVM, data []float32, n, rlo, rhi int) {
	if pv.ID() == 0 {
		for q := 1; q < pv.NProcs(); q++ {
			qlo, qhi := apputil.BlockOf(q, pv.NProcs(), n*n)
			pvm.RecvUntracked(pv, q, 90+q, data[qlo:qhi])
		}
		return
	}
	pvm.SendUntracked(pv, 0, 90+pv.ID(), data[rlo*n:rhi*n])
}
