package rbsor

import (
	"repro/internal/core"
	"repro/internal/loopc"
)

// edgesOne is initGrid in IR form: edges one, interior zero.
func edgesOne(i, j, n int) float32 {
	if i == 0 || j == 0 || i == n-1 || j == n-1 {
		return 1
	}
	return 0
}

// IR describes red-black SOR as a loopc program: two guarded nests
// over the same in-place grid. Without the parity guards the in-place
// 5-point update carries a row dependence and the analyzer would
// (correctly) serialize it; with them each sweep is DOALL with a
// one-row halo. The expression tree matches sweepRows' association
// exactly.
func IR(cfg core.Config) *loopc.Program {
	ref := func(ro, co int) loopc.Expr {
		return loopc.Ref(loopc.At("u", "i", ro, "j", co))
	}
	relax := loopc.Add(
		loopc.Mul(loopc.Lit(cSelf), ref(0, 0)),
		loopc.Mul(loopc.Lit(cStencil),
			loopc.Add(loopc.Add(loopc.Add(ref(-1, 0), ref(1, 0)), ref(0, -1)), ref(0, 1))))
	sweep := func(name string, color int) *loopc.Nest {
		return &loopc.Nest{
			Name:      name,
			Row:       loopc.Loop{Var: "i", Lo: loopc.Ext(0, 1), Hi: loopc.Ext(1, -1)},
			Col:       loopc.Loop{Var: "j", Lo: loopc.Ext(0, 1), Hi: loopc.Ext(1, -1)},
			Guard:     &loopc.Parity{Rem: color},
			Stmts:     []*loopc.Stmt{{LHS: loopc.At("u", "i", 0, "j", 0), RHS: relax}},
			PointCost: cfg.App.SORUpdate,
		}
	}
	return &loopc.Program{
		Name:   "rbsor",
		Arrays: []loopc.ArrayDecl{{Name: "u", Init: edgesOne}},
		Nests:  []*loopc.Nest{sweep("red", 0), sweep("black", 1)},
		Result: "u",
	}
}
