package rbsor

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func cfgFor(procs int) core.Config {
	cfg := New().Config(core.SmallScale, procs)
	cfg.Costs = model.SP2()
	cfg.App = model.DefaultAppCosts()
	return cfg
}

// TestVersionsAgree checks that every version — hand-coded and
// compiler-generated, shared-memory and message-passing — produces the
// sequential checksum bit for bit. Red-black SOR is deterministic
// under any row partition: each half-sweep only reads the other color,
// so the update order within a sweep cannot matter.
func TestVersionsAgree(t *testing.T) {
	a := New()
	seq, err := a.Run(core.Seq, cfgFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum == 0 {
		t.Fatal("sequential checksum is zero; grid never initialized?")
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for _, v := range []core.Version{core.Tmk, core.SPF, core.XHPF, core.PVMe, core.SPFGen, core.XHPFGen} {
			res, err := a.Run(v, cfgFor(procs))
			if err != nil {
				t.Fatalf("%s/p%d: %v", v, procs, err)
			}
			if res.Checksum != seq.Checksum {
				t.Errorf("%s/p%d checksum = %v, want %v", v, procs, res.Checksum, seq.Checksum)
			}
		}
	}
}

// TestSweepColors checks the parity split: one sweep of each color
// touches every interior point exactly once.
func TestSweepColors(t *testing.T) {
	const n = 16
	u := make([]float32, n*n)
	initGrid(u, n)
	red := sweepRows(u, n, 1, n-1, 0)
	black := sweepRows(u, n, 1, n-1, 1)
	if red+black != (n-2)*(n-2) {
		t.Errorf("red %d + black %d points, want %d", red, black, (n-2)*(n-2))
	}
}
