// Package shallow implements the paper's Shallow application (§5.2): the
// shallow-water benchmark from the National Center for Atmospheric
// Research. Thirteen equal-sized single-precision arrays in wrap-around
// format (u, v, p; uold, vold, pold; unew, vnew, pnew; cu, cv, z, h) are
// advanced through three steps per iteration — flux/vorticity (cu, cv,
// z, h), time step (unew, vnew, pnew), and time smoothing — each
// followed by wrap-around copying of the modified arrays.
//
// The wrap-around copying has two halves with very different parallel
// structure (the §5.2 analysis):
//
//   - the contiguous edge (one memcpy of a whole boundary line) is
//     executed sequentially — on the owner in the hand-coded versions,
//     but on the *master* in the SPF fork-join model, which is the extra
//     communication that separates SPF from hand-coded TreadMarks;
//   - the strided edge crosses every processor's partition and is
//     parallelized (each processor wraps its own rows).
//
// Orientation: the paper's Fortran arrays are column-major and
// partitioned by columns; this Go port is row-major and partitioned by
// rows. The paper's "edge column copy" (contiguous, sequential) is our
// edge-row copy; its parallel "edge row copy" is our per-row column
// wrap.
package shallow

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

type app struct{}

// New returns the Shallow application.
func New() core.App { return app{} }

func (app) Name() string { return "Shallow" }

func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 64, Iters: 4, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 512, Iters: 10, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 1024, Iters: 50, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFOpt}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg)
	case core.SPF:
		return runSPF(cfg, false)
	case core.SPFOpt:
		return runSPF(cfg, true)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	}
	return core.Result{}, fmt.Errorf("shallow: unsupported version %q", v)
}

// Model constants (after the NCAR benchmark).
const (
	dtc    = 90.0
	dxc    = 100000.0
	alpha  = 0.001
	fsdx   = 4.0 / dxc
	fsdy   = 4.0 / dxc
	tdts8  = dtc / 8.0 * 2
	tdtsdx = dtc / dxc * 2
	tdtsdy = dtc / dxc * 2
)

// state bundles the 13 arrays so all versions share the kernels.
type state struct {
	n                int
	u, v, p          []float32
	uold, vold, pold []float32
	unew, vnew, pnew []float32
	cu, cv, z, h     []float32
}

// fields enumerates the arrays for allocation order and wraps.
func (s *state) init() {
	n := s.n
	// Initial velocities from a smooth stream function; deterministic
	// across all versions.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := i*n + j
			a := 2 * math.Pi * float64(i) / float64(n-1)
			b := 2 * math.Pi * float64(j) / float64(n-1)
			s.u[c] = float32(math.Sin(a) * math.Cos(b) * 10)
			s.v[c] = float32(-math.Cos(a) * math.Sin(b) * 10)
			s.p[c] = float32(50000 + 1000*math.Cos(a)*math.Cos(b))
			s.uold[c], s.vold[c], s.pold[c] = s.u[c], s.v[c], s.p[c]
		}
	}
}

// loop100 computes cu, cv, z, h for rows [rlo,rhi) (rows run 0..n-2);
// reads rows i and i+1 of p, u, v.
func (s *state) loop100(rlo, rhi int) int {
	n := s.n
	pts := 0
	for i := rlo; i < rhi; i++ {
		for j := 0; j < n-1; j++ {
			c := i*n + j
			s.cu[c] = 0.5 * (s.p[c+n] + s.p[c]) * s.u[c+n]
			s.cv[c] = 0.5 * (s.p[c+1] + s.p[c]) * s.v[c+1]
			s.z[c] = (fsdx*(s.v[c+n+1]-s.v[c+1]) - fsdy*(s.u[c+n+1]-s.u[c+n])) /
				(s.p[c] + s.p[c+n] + s.p[c+n+1] + s.p[c+1])
			s.h[c] = s.p[c] + 0.25*(s.u[c+n]*s.u[c+n]+s.u[c]*s.u[c]+
				s.v[c+1]*s.v[c+1]+s.v[c]*s.v[c])
			pts++
		}
	}
	return pts
}

// loop200 computes unew, vnew, pnew for rows [rlo,rhi); reads rows i and
// i+1 of cu, cv, z, h plus row i of the old arrays.
func (s *state) loop200(rlo, rhi int) int {
	n := s.n
	pts := 0
	for i := rlo; i < rhi; i++ {
		for j := 0; j < n-1; j++ {
			c := i*n + j
			s.unew[c] = s.uold[c] + tdts8*(s.z[c+1]+s.z[c])*
				(s.cv[c+n+1]+s.cv[c+1]+s.cv[c]+s.cv[c+n]) - tdtsdx*(s.h[c+n]-s.h[c])
			s.vnew[c] = s.vold[c] - tdts8*(s.z[c+n]+s.z[c])*
				(s.cu[c+n+1]+s.cu[c+1]+s.cu[c]+s.cu[c+n]) - tdtsdy*(s.h[c+1]-s.h[c])
			s.pnew[c] = s.pold[c] - tdtsdx*(s.cu[c+n]-s.cu[c]) - tdtsdy*(s.cv[c+1]-s.cv[c])
			pts++
		}
	}
	return pts
}

// loop300 applies time smoothing to rows [rlo,rhi) — pointwise, no halo.
func (s *state) loop300(rlo, rhi int) int {
	n := s.n
	pts := 0
	for i := rlo; i < rhi; i++ {
		for j := 0; j < n; j++ {
			c := i*n + j
			s.uold[c] = s.u[c] + alpha*(s.unew[c]-2*s.u[c]+s.uold[c])
			s.vold[c] = s.v[c] + alpha*(s.vnew[c]-2*s.v[c]+s.vold[c])
			s.pold[c] = s.p[c] + alpha*(s.pnew[c]-2*s.p[c]+s.pold[c])
			s.u[c] = s.unew[c]
			s.v[c] = s.vnew[c]
			s.p[c] = s.pnew[c]
			pts++
		}
	}
	return pts
}

// wrapCols wraps the strided edge (column n-1 ← column 0) for rows
// [rlo,rhi) of the given arrays — the parallelized half of the
// wrap-around copying.
func wrapCols(arrs [][]float32, n, rlo, rhi int) int {
	pts := 0
	for _, a := range arrs {
		for i := rlo; i < rhi; i++ {
			a[i*n+n-1] = a[i*n]
			pts++
		}
	}
	return pts
}

// wrapRow wraps the contiguous edge (row n-1 ← row 0) — the sequential
// half.
func wrapRow(a []float32, n int) int {
	copy(a[(n-1)*n:n*n], a[0:n])
	return n
}

func (s *state) checksum() float64 {
	return apputil.Sum64(s.p) + 2*apputil.Sum64(s.u) + 4*apputil.Sum64(s.v)
}

// groupA and groupB are the arrays wrapped after loops 100 and 200.
func (s *state) groupA() [][]float32 { return [][]float32{s.cu, s.cv, s.z, s.h} }
func (s *state) groupB() [][]float32 { return [][]float32{s.unew, s.vnew, s.pnew} }

func runSeq(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSeq("Shallow", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		s := newLocalState(n)
		s.init()
		return apputil.SeqProgram{
			Iterate: func(k int) {
				pts := s.loop100(0, n-1)
				w := wrapCols(s.groupA(), n, 0, n-1)
				for _, a := range s.groupA() {
					w += wrapRow(a, n)
				}
				tm.Advance(apputil.Cost(pts*4, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				pts = s.loop200(0, n-1)
				w = wrapCols(s.groupB(), n, 0, n-1)
				for _, a := range s.groupB() {
					w += wrapRow(a, n)
				}
				tm.Advance(apputil.Cost(pts*3, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				pts = s.loop300(0, n)
				tm.Advance(apputil.Cost(pts*6, cfg.App.ShallowCopy))
			},
			Checksum: func() float64 { return s.checksum() },
		}
	})
}

func newLocalState(n int) *state {
	s := &state{n: n}
	for _, f := range []*[]float32{&s.u, &s.v, &s.p, &s.uold, &s.vold, &s.pold,
		&s.unew, &s.vnew, &s.pnew, &s.cu, &s.cv, &s.z, &s.h} {
		*f = make([]float32, n*n)
	}
	return s
}

// sharedState allocates the 13 arrays as shared regions and exposes the
// same kernels through a state whose slices are the region backings.
type sharedState struct {
	*state
	regs map[string]*tmk.Region[float32]
}

func newSharedState(tm *tmk.Tmk, n int) *sharedState {
	s := &state{n: n}
	ss := &sharedState{state: s, regs: map[string]*tmk.Region[float32]{}}
	names := []string{"u", "v", "p", "uold", "vold", "pold", "unew", "vnew", "pnew", "cu", "cv", "z", "h"}
	ptrs := []*[]float32{&s.u, &s.v, &s.p, &s.uold, &s.vold, &s.pold,
		&s.unew, &s.vnew, &s.pnew, &s.cu, &s.cv, &s.z, &s.h}
	for i, name := range names {
		r := tmk.Alloc[float32](tm, "shallow."+name, n*n)
		ss.regs[name] = r
		*ptrs[i] = r.Data()
	}
	return ss
}

func (ss *sharedState) reg(name string) *tmk.Region[float32] { return ss.regs[name] }

// validatePhase1 performs the access checks for loop100 over rows
// [rlo,rhi): read p,u,v rows [rlo,rhi+1), write cu,cv,z,h rows [rlo,rhi).
func (ss *sharedState) validatePhase1(rlo, rhi int, agg bool) {
	n := ss.n
	for _, in := range []string{"p", "u", "v"} {
		if agg {
			ss.reg(in).ReadAggregated(rlo*n, (rhi+1)*n)
		} else {
			ss.reg(in).Read(rlo*n, (rhi+1)*n)
		}
	}
	for _, out := range []string{"cu", "cv", "z", "h"} {
		ss.reg(out).Write(rlo*n, rhi*n)
	}
}

// validatePhase2: read cu,cv,z,h rows [rlo,rhi+1) and old rows [rlo,rhi);
// write new rows [rlo,rhi).
func (ss *sharedState) validatePhase2(rlo, rhi int, agg bool) {
	n := ss.n
	for _, in := range []string{"cu", "cv", "z", "h"} {
		if agg {
			ss.reg(in).ReadAggregated(rlo*n, (rhi+1)*n)
		} else {
			ss.reg(in).Read(rlo*n, (rhi+1)*n)
		}
	}
	for _, in := range []string{"uold", "vold", "pold"} {
		ss.reg(in).Read(rlo*n, rhi*n)
	}
	for _, out := range []string{"unew", "vnew", "pnew"} {
		ss.reg(out).Write(rlo*n, rhi*n)
	}
}

// validatePhase3: pointwise over rows [rlo,rhi): read new, read+write
// u,v,p and old.
func (ss *sharedState) validatePhase3(rlo, rhi int) {
	n := ss.n
	for _, in := range []string{"unew", "vnew", "pnew"} {
		ss.reg(in).Read(rlo*n, rhi*n)
	}
	for _, io := range []string{"u", "v", "p", "uold", "vold", "pold"} {
		ss.reg(io).Write(rlo*n, rhi*n)
	}
}

// validateWrapCols write-validates column n-1 in rows [rlo,rhi) (the
// rows are typically already writable from the producing loop).
func (ss *sharedState) validateWrapCols(names []string, rlo, rhi int) {
	n := ss.n
	for _, name := range names {
		ss.reg(name).Write(rlo*n, rhi*n)
	}
}

// wrapRowShared performs the contiguous edge copy through the DSM: read
// row 0, write row n-1. Executed by one processor (the owner in the
// hand-coded version, the master under SPF).
func (ss *sharedState) wrapRowShared(names []string) int {
	n := ss.n
	w := 0
	for _, name := range names {
		r := ss.reg(name)
		r.Read(0, n)
		dst := r.Write((n-1)*n, n*n)
		copy(dst[(n-1)*n:n*n], dst[0:n])
		w += n
	}
	return w
}

var groupANames = []string{"cu", "cv", "z", "h"}
var groupBNames = []string{"unew", "vnew", "pnew"}

func runTmk(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunTmk("Shallow", core.Tmk, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		me, nprocs := tm.ID(), tm.NProcs()
		ss := newSharedState(tm, n)
		rlo, rhi := apputil.BlockOf(me, nprocs, n-1)
		isLast := me == nprocs-1
		if me == 0 {
			for _, name := range []string{"u", "v", "p", "uold", "vold", "pold"} {
				ss.reg(name).Write(0, n*n)
			}
			ss.init()
		}
		tm.Barrier()
		adv := func(d sim.Time) { tm.Advance(d) }
		return apputil.TmkProgram{
			Iterate: func(k int) {
				stepTmk(ss, adv, cfg, rlo, rhi, isLast, tm.Barrier)
			},
			Checksum: func() float64 {
				ss.reg("p").Read(0, n*n)
				ss.reg("u").Read(0, n*n)
				ss.reg("v").Read(0, n*n)
				return ss.checksum()
			},
		}
	})
}

// stepTmk is one hand-coded TreadMarks iteration: three barriers. The
// contiguous edge copy runs on the owner of the last row at the *start*
// of the phase that consumes it — after the barrier that orders it
// against processor 0's writes of row 0 (the hand coder's owner-computes
// placement the paper credits the Tmk version with).
func stepTmk(ss *sharedState, adv func(sim.Time), cfg core.Config, rlo, rhi int, isLast bool, barrier func()) {
	n := ss.n
	if rhi > rlo {
		ss.validatePhase1(rlo, rhi, false)
		pts := ss.loop100(rlo, rhi)
		w := wrapCols(ss.groupA(), n, rlo, rhi)
		adv(apputil.Cost(pts*4, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
	}
	barrier()
	if isLast {
		w := ss.wrapRowShared(groupANames)
		adv(apputil.Cost(w, cfg.App.ShallowCopy))
	}
	if rhi > rlo {
		ss.validatePhase2(rlo, rhi, false)
		pts := ss.loop200(rlo, rhi)
		w := wrapCols(ss.groupB(), n, rlo, rhi)
		adv(apputil.Cost(pts*3, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
	}
	barrier()
	hi3 := rhi
	if isLast {
		w := ss.wrapRowShared(groupBNames)
		adv(apputil.Cost(w, cfg.App.ShallowCopy))
		hi3 = n // smoothing covers the wrap row too
	}
	if hi3 > rlo {
		ss.validatePhase3(rlo, hi3)
		pts := ss.loop300(rlo, hi3)
		adv(apputil.Cost(pts*6, cfg.App.ShallowCopy))
	}
	barrier()
}

func runSPF(cfg core.Config, merged bool) (core.Result, error) {
	n := cfg.N1
	v := core.SPF
	if merged {
		v = core.SPFOpt
	}
	return apputil.RunSPF("Shallow", v, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		ss := newSharedState(tm, n)
		adv := func(d sim.Time) { rt.Advance(d) }

		phase1 := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			ss.validatePhase1(lo, hi, merged)
			pts := ss.loop100(lo, hi)
			adv(apputil.Cost(pts*4, cfg.App.ShallowUpdate))
			if merged { // §5.2: the wrap loop is merged into the main loop
				ss.validateWrapCols(groupANames, lo, hi)
				w := wrapCols(ss.groupA(), n, lo, hi)
				adv(apputil.Cost(w, cfg.App.ShallowCopy))
			}
		})
		wrapA := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			ss.validateWrapCols(groupANames, lo, hi)
			w := wrapCols(ss.groupA(), n, lo, hi)
			adv(apputil.Cost(w, cfg.App.ShallowCopy))
		})
		phase2 := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			ss.validatePhase2(lo, hi, merged)
			pts := ss.loop200(lo, hi)
			adv(apputil.Cost(pts*3, cfg.App.ShallowUpdate))
			if merged {
				ss.validateWrapCols(groupBNames, lo, hi)
				w := wrapCols(ss.groupB(), n, lo, hi)
				adv(apputil.Cost(w, cfg.App.ShallowCopy))
			}
		})
		wrapB := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			ss.validateWrapCols(groupBNames, lo, hi)
			w := wrapCols(ss.groupB(), n, lo, hi)
			adv(apputil.Cost(w, cfg.App.ShallowCopy))
		})
		phase3 := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			ss.validatePhase3(lo, hi)
			pts := ss.loop300(lo, hi)
			adv(apputil.Cost(pts*6, cfg.App.ShallowCopy))
		})

		if rt.IsMaster() {
			for _, name := range []string{"u", "v", "p", "uold", "vold", "pold"} {
				ss.reg(name).Write(0, n*n)
			}
			ss.init()
		}
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(phase1, 0, n-1, spf.Block)
				if !merged {
					rt.ParallelDo(wrapA, 0, n-1, spf.Block)
				}
				// Sequential part: the contiguous edge copy on the master
				// (regardless of the owner-computes rule — §5.2's penalty).
				w := ss.wrapRowShared(groupANames)
				adv(apputil.Cost(w, cfg.App.ShallowCopy))
				rt.ParallelDo(phase2, 0, n-1, spf.Block)
				if !merged {
					rt.ParallelDo(wrapB, 0, n-1, spf.Block)
				}
				w = ss.wrapRowShared(groupBNames)
				adv(apputil.Cost(w, cfg.App.ShallowCopy))
				rt.ParallelDo(phase3, 0, n, spf.Block)
			},
			Checksum: func() float64 {
				ss.reg("p").Read(0, n*n)
				ss.reg("u").Read(0, n*n)
				ss.reg("v").Read(0, n*n)
				return ss.checksum()
			},
		}
	})
}

func runXHPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunXHPF("Shallow", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		me, nprocs := x.ID(), x.NProcs()
		s := newLocalState(n)
		s.init()
		rlo, rhi := apputil.BlockOf(me, nprocs, n-1)
		isLast := me == nprocs-1
		last := nprocs - 1
		// haloDown receives row rhi from the next processor (which owns
		// it); generated from the analyzable forward stencil.
		haloDown := func(arrs ...[]float32) {
			for t, a := range arrs {
				if me > 0 && rlo < rhi {
					pvm.Send(x.PVM(), me-1, 700+t, a[rlo*n:(rlo+1)*n])
				}
				if me < last && rhi > rlo {
					pvm.Recv(x.PVM(), me+1, 700+t, a[rhi*n:(rhi+1)*n])
				}
			}
		}
		// wrapRowComm: processor 0 sends row 0 to the owner of row n-1.
		wrapRowComm := func(arrs ...[]float32) int {
			w := 0
			for t, a := range arrs {
				if me == 0 && last != 0 {
					pvm.Send(x.PVM(), last, 720+t, a[0:n])
				}
				if isLast {
					if last != 0 {
						pvm.Recv(x.PVM(), 0, 720+t, a[0:n])
					}
					w += wrapRow(a, n)
				}
			}
			return w
		}
		adv := func(d sim.Time) { x.Advance(d) }
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				haloDown(s.p, s.u, s.v)
				if rhi > rlo {
					pts := s.loop100(rlo, rhi)
					w := wrapCols(s.groupA(), n, rlo, rhi)
					adv(apputil.Cost(pts*4, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				}
				adv(apputil.Cost(wrapRowComm(s.groupA()...), cfg.App.ShallowCopy))
				x.LoopSync()
				haloDown(s.cu, s.cv, s.z, s.h)
				if rhi > rlo {
					pts := s.loop200(rlo, rhi)
					w := wrapCols(s.groupB(), n, rlo, rhi)
					adv(apputil.Cost(pts*3, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				}
				adv(apputil.Cost(wrapRowComm(s.groupB()...), cfg.App.ShallowCopy))
				x.LoopSync()
				hi3 := rhi
				if isLast {
					hi3 = n
				}
				if hi3 > rlo {
					pts := s.loop300(rlo, hi3)
					adv(apputil.Cost(pts*6, cfg.App.ShallowCopy))
				}
				x.LoopSync()
			},
			Checksum: func() float64 {
				for _, a := range [][]float32{s.p, s.u, s.v} {
					gatherRows(x.PVM(), a, n, rlo, rhi, isLast)
				}
				if me != 0 {
					return 0
				}
				return s.checksum()
			},
		}
	})
}

func runPVM(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunPVM("Shallow", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		me, nprocs := pv.ID(), pv.NProcs()
		s := newLocalState(n)
		s.init()
		rlo, rhi := apputil.BlockOf(me, nprocs, n-1)
		isLast := me == nprocs-1
		last := nprocs - 1
		haloDown := func(arrs ...[]float32) {
			for t, a := range arrs {
				if me > 0 && rlo < rhi {
					pvm.Send(pv, me-1, 740+t, a[rlo*n:(rlo+1)*n])
				}
				if me < last && rhi > rlo {
					pvm.Recv(pv, me+1, 740+t, a[rhi*n:(rhi+1)*n])
				}
			}
		}
		wrapRowComm := func(arrs ...[]float32) int {
			w := 0
			for t, a := range arrs {
				if me == 0 && last != 0 {
					pvm.Send(pv, last, 760+t, a[0:n])
				}
				if isLast {
					if last != 0 {
						pvm.Recv(pv, 0, 760+t, a[0:n])
					}
					w += wrapRow(a, n)
				}
			}
			return w
		}
		adv := func(d sim.Time) { pv.Advance(d) }
		return apputil.PVMProgram{
			Iterate: func(k int) {
				haloDown(s.p, s.u, s.v)
				if rhi > rlo {
					pts := s.loop100(rlo, rhi)
					w := wrapCols(s.groupA(), n, rlo, rhi)
					adv(apputil.Cost(pts*4, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				}
				adv(apputil.Cost(wrapRowComm(s.groupA()...), cfg.App.ShallowCopy))
				haloDown(s.cu, s.cv, s.z, s.h)
				if rhi > rlo {
					pts := s.loop200(rlo, rhi)
					w := wrapCols(s.groupB(), n, rlo, rhi)
					adv(apputil.Cost(pts*3, cfg.App.ShallowUpdate) + apputil.Cost(w, cfg.App.ShallowCopy))
				}
				adv(apputil.Cost(wrapRowComm(s.groupB()...), cfg.App.ShallowCopy))
				hi3 := rhi
				if isLast {
					hi3 = n
				}
				if hi3 > rlo {
					pts := s.loop300(rlo, hi3)
					adv(apputil.Cost(pts*6, cfg.App.ShallowCopy))
				}
			},
			Checksum: func() float64 {
				for _, a := range [][]float32{s.p, s.u, s.v} {
					gatherRows(pv, a, n, rlo, rhi, isLast)
				}
				if me != 0 {
					return 0
				}
				return s.checksum()
			},
		}
	})
}

// gatherRows collects row blocks (plus the wrap row from the last
// processor) on task 0, untracked.
func gatherRows(pv *pvm.PVM, a []float32, n, rlo, rhi int, isLast bool) {
	me, nprocs := pv.ID(), pv.NProcs()
	if me == 0 {
		for q := 1; q < nprocs; q++ {
			qlo, qhi := apputil.BlockOf(q, nprocs, n-1)
			if q == nprocs-1 {
				qhi = n
			}
			if qhi > qlo {
				pvm.RecvUntracked(pv, q, 780, a[qlo*n:qhi*n])
			}
		}
		return
	}
	hi := rhi
	if isLast {
		hi = n
	}
	if hi > rlo {
		pvm.SendUntracked(pv, 0, 780, a[rlo*n:hi*n])
	}
}
