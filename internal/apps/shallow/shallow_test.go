package shallow

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func TestAllVersionsMatchSequential(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum == 0 || math.IsNaN(seq.Checksum) {
		t.Fatalf("bad sequential checksum %v", seq.Checksum)
	}
	for _, v := range []core.Version{core.Tmk, core.SPF, core.SPFOpt, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s checksum = %v, want %v (bitwise)", v, r.Checksum, seq.Checksum)
		}
	}
}

func TestRaggedPartition(t *testing.T) {
	cfg := cfgSmall(3) // 63 rows over 3 procs: 21 each; n rows over ceil
	seq, _ := New().Run(core.Seq, cfg)
	for _, v := range []core.Version{core.Tmk, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s ragged checksum = %v, want %v", v, r.Checksum, seq.Checksum)
		}
	}
}

// TestEnergyStaysBounded sanity-checks the physics: the smoothed scheme
// must not blow up over the test horizon.
func TestEnergyStaysBounded(t *testing.T) {
	const n = 32
	s := newLocalState(n)
	s.init()
	for k := 0; k < 20; k++ {
		s.loop100(0, n-1)
		wrapCols(s.groupA(), n, 0, n-1)
		for _, a := range s.groupA() {
			wrapRow(a, n)
		}
		s.loop200(0, n-1)
		wrapCols(s.groupB(), n, 0, n-1)
		for _, a := range s.groupB() {
			wrapRow(a, n)
		}
		s.loop300(0, n)
	}
	for i, v := range s.p {
		if math.IsNaN(float64(v)) || v < 10000 || v > 90000 {
			t.Fatalf("pressure diverged at %d: %v", i, v)
		}
	}
}

// TestTmkThreeBarriers: the hand-coded version synchronizes three times
// per iteration.
func TestTmkThreeBarriers(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 3 * 2 * (cfg.Procs - 1))
	if got := r.Stats.MsgsOf(stats.KindBarrier); got != want {
		t.Errorf("barrier msgs = %d, want %d", got, want)
	}
}

// TestSPFLoopCount: the compiler-generated version dispatches five
// parallel loops per iteration (three main loops plus two wrap loops);
// the merged optimization removes the wrap loops.
func TestSPFLoopCount(t *testing.T) {
	cfg := cfgSmall(8)
	base, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New().Run(core.SPFOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBase := int64(cfg.Iters * 5 * 2 * (cfg.Procs - 1))
	if got := base.Stats.MsgsOf(stats.KindBarrier); got != wantBase {
		t.Errorf("SPF fork-join msgs = %d, want %d (5 loops/iter)", got, wantBase)
	}
	wantOpt := int64(cfg.Iters * 3 * 2 * (cfg.Procs - 1))
	if got := opt.Stats.MsgsOf(stats.KindBarrier); got != wantOpt {
		t.Errorf("merged fork-join msgs = %d, want %d (3 loops/iter)", got, wantOpt)
	}
}

// TestMergedLoopsFaster: §5.2's hand optimization must help.
func TestMergedLoopsFaster(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.N1 = 256
	base, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New().Run(core.SPFOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Time >= base.Time {
		t.Errorf("merged time = %v, want < %v", opt.Time, base.Time)
	}
	if opt.Checksum != base.Checksum {
		t.Error("merged optimization changed the result")
	}
}

// TestSpeedupOrdering: Figure 1's Shallow shape at mid size:
// PVMe > XHPF > Tmk > SPF.
func TestSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size run")
	}
	cfg := cfgSmall(8)
	cfg.N1 = 512
	cfg.Iters = 6
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if !(sp[core.PVMe] > sp[core.Tmk] && sp[core.Tmk] > sp[core.SPF]) {
		t.Errorf("ordering violated: PVMe=%.2f Tmk=%.2f SPF=%.2f", sp[core.PVMe], sp[core.Tmk], sp[core.SPF])
	}
	if sp[core.XHPF] <= sp[core.Tmk] {
		t.Errorf("XHPF=%.2f should beat Tmk=%.2f on a regular app", sp[core.XHPF], sp[core.Tmk])
	}
}
