package igrid

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func TestAllVersionsMatchSequential(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []core.Version{core.Tmk, core.SPF, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s checksum = %v, want %v (bitwise)", v, r.Checksum, seq.Checksum)
		}
	}
}

func TestSpikesPropagate(t *testing.T) {
	const n = 32
	old := make([]float32, n*n)
	cur := make([]float32, n*n)
	idx := buildMap(n)
	initOld(old, n)
	relaxRows(cur, old, idx, n, 1, n-1)
	// The middle spike's neighbors must have risen above the background.
	c := (n/2)*n + n/2
	if cur[c-1] <= 1 || cur[c+n] <= 1 {
		t.Errorf("spike did not spread: left=%v below=%v", cur[c-1], cur[c+n])
	}
	// Far corners stay at the background average of all-ones.
	if cur[1*n+1] != 1 {
		t.Errorf("far corner changed: %v", cur[1*n+1])
	}
}

// TestXHPFDataBlowup: the irregular-application headline (Table 3). The
// XHPF fallback broadcasts every block every iteration; TreadMarks sends
// only the diffs that actually changed (the spike fronts). The paper's
// ratio is 140001 KB vs 131 KB — three orders of magnitude.
func TestXHPFDataBlowup(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.N1 = 220 // large enough that fixed protocol overheads don't mask the effect
	xr, err := New().Run(core.XHPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xr.Stats.TotalBytes() < 50*tr.Stats.TotalBytes() {
		t.Errorf("XHPF bytes = %d, Tmk bytes = %d: expected a blow-up of >= 50x",
			xr.Stats.TotalBytes(), tr.Stats.TotalBytes())
	}
}

// TestXHPFBroadcastMessageCount: every processor ships its whole block
// to everyone, in 4 KB runtime chunks, every iteration.
func TestXHPFBroadcastMessageCount(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.XHPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, p := cfg.N1, cfg.Procs
	var perIter int
	for q := 0; q < p; q++ {
		qlo, qhi := 0, 0
		qlo, qhi = blockRows(q, p, n)
		block := (qhi - qlo) * n * 4 // bytes
		chunks := (block + 4095) / 4096
		perIter += chunks * (p - 1)
	}
	// broadcast chunks + one LoopSync per iteration, + the final
	// reduction traffic on the last iteration.
	syncPerIter := 2 * (p - 1)
	wantMin := int64(cfg.Iters * (perIter + syncPerIter))
	got := r.Stats.TotalMsgs()
	if got < wantMin || got > wantMin+int64(8*4*(p-1)) {
		t.Errorf("XHPF msgs = %d, want about %d", got, wantMin)
	}
}

// TestTmkTrafficTiny: diffs carry only the spike fronts, so the traffic
// is far below one grid per iteration (the volume every message-passing
// fallback ships).
func TestTmkTrafficTiny(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.N1 = 220
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gridBytes := int64(cfg.N1 * cfg.N1 * 4)
	if got := r.Stats.TotalBytes(); got > gridBytes {
		t.Errorf("Tmk bytes = %d for %d iterations, want below one grid (%d)",
			got, cfg.Iters, gridBytes)
	}
}

// TestIrregularSpeedupOrdering: Figure 2's shape — the DSM versions land
// near hand-coded message passing and far above XHPF.
func TestIrregularSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("uses the paper-size grid")
	}
	cfg := cfgSmall(8)
	cfg.N1 = 500
	cfg.Iters = 10
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if sp[core.SPF] <= sp[core.XHPF] || sp[core.Tmk] <= sp[core.XHPF] {
		t.Errorf("DSM must beat XHPF on irregular: SPF=%.2f Tmk=%.2f XHPF=%.2f",
			sp[core.SPF], sp[core.Tmk], sp[core.XHPF])
	}
	if sp[core.PVMe] < sp[core.Tmk]*0.95 {
		t.Errorf("PVMe=%.2f should be the upper bound (Tmk=%.2f)", sp[core.PVMe], sp[core.Tmk])
	}
}

// blockRows mirrors the app's interior-row partitioning for the test.
func blockRows(q, p, n int) (int, int) {
	chunk := (n - 2 + p - 1) / p
	lo := q * chunk
	hi := lo + chunk
	if hi > n-2 {
		hi = n - 2
	}
	if lo > n-2 {
		lo = n - 2
	}
	return lo + 1, hi + 1
}

var _ = stats.KindData

// TestXHPFTinyTailChunkGeometry pins the geometry that exposed the
// chunk-overtaking bug: at N1=500 on 4 processors each broadcast block
// is 62500 elements — 61 full 4 KB chunks plus a 36-element tail whose
// pack+overhead time undercuts a full chunk's wire time, so without
// per-chunk tags the tail overtook its predecessor and scrambled every
// block. The xhpf checksum must match sequential bitwise here.
func TestXHPFTinyTailChunkGeometry(t *testing.T) {
	cfg := core.Config{Procs: 1, N1: 500, Iters: 1, Warmup: 1,
		Costs: model.SP2(), App: model.DefaultAppCosts()}
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = 4
	r, err := New().Run(core.XHPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum != seq.Checksum {
		t.Errorf("xhpf checksum = %v, want %v (bitwise; tail chunk overtook a full chunk?)",
			r.Checksum, seq.Checksum)
	}
}
