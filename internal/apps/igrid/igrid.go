// Package igrid implements the paper's IGrid application (§6.1): a
// 9-point relaxation stencil whose neighbors are accessed *indirectly*
// through a mapping established at run time, defeating compile-time
// analysis. The map happens to encode the ordinary stencil, so the
// run-time locality is excellent — the DSM system discovers it on
// demand (fetch-on-fault plus caching), while the XHPF compiler must
// fall back to broadcasting each processor's whole block after every
// step (Table 3's thousand-fold data blow-up).
//
// The old array starts at all ones with two spikes (middle and lower
// right); each step computes every interior point from its nine old
// neighbors and the arrays switch. Changes spread outward from the
// spikes only, so TreadMarks diffs stay tiny. The program ends by
// finding the maximum, minimum and sum of the central 40×40 square,
// recognized as reductions.
package igrid

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

type app struct{}

// New returns the IGrid application.
func New() core.App { return app{} }

func (app) Name() string { return "IGrid" }

func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 60, Iters: 5, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 500, Iters: 10, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 500, Iters: 19, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg)
	case core.SPF:
		return runSPF(cfg)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	}
	return core.Result{}, fmt.Errorf("igrid: unsupported version %q", v)
}

// buildMap constructs the run-time indirection array: for every interior
// cell, the indices of its nine neighbors (including itself). The
// compiler sees only idx[9*c+k]; the locality is invisible statically.
func buildMap(n int) []int32 {
	idx := make([]int32, 9*n*n)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			c := i*n + j
			k := 0
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					idx[9*c+k] = int32((i+di)*n + (j + dj))
					k++
				}
			}
		}
	}
	return idx
}

func initOld(g []float32, n int) {
	for i := range g[:n*n] {
		g[i] = 1
	}
	g[(n/2)*n+n/2] += 500       // middle spike
	g[(n-n/8)*n+(n-n/8)] += 300 // lower-right spike
}

// relaxRows applies one relaxation step to interior rows [rlo,rhi).
func relaxRows(dst, src []float32, idx []int32, n, rlo, rhi int) {
	for i := rlo; i < rhi; i++ {
		for j := 1; j < n-1; j++ {
			c := i*n + j
			var s float32
			for k := 0; k < 9; k++ {
				s += src[idx[9*c+k]]
			}
			dst[c] = s / 9
		}
	}
}

// center returns the bounds of the reduction square (40×40 at paper
// size, scaled down for small grids).
func center(n int) (lo, hi int) {
	side := 40
	if n < 100 {
		side = n / 8
	}
	lo = n/2 - side/2
	return lo, lo + side
}

// reduceRows accumulates max/min/sum over the center square rows
// [rlo,rhi) ∩ [clo,chi).
func reduceRows(g []float32, n, rlo, rhi int) (mx, mn float32, sum float64, cells int) {
	clo, chi := center(n)
	mx, mn = -1e30, 1e30
	for i := max(rlo, clo); i < min(rhi, chi); i++ {
		for j := clo; j < chi; j++ {
			v := g[i*n+j]
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
			sum += float64(v)
			cells++
		}
	}
	return mx, mn, sum, cells
}

// sealed folds the reduction results into the checksum: max and min are
// order-independent and exact; the protocol sum is validated to be
// finite but not folded bitwise (summation order differs across
// versions).
func sealed(mx, mn float32) float64 {
	return float64(mx)*1e3 + float64(mn)
}

func runSeq(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	total := cfg.Warmup + cfg.Iters
	return apputil.RunSeq("IGrid", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		old := make([]float32, n*n)
		cur := make([]float32, n*n)
		idx := buildMap(n)
		initOld(old, n)
		copy(cur, old)
		var redSum float64
		return apputil.SeqProgram{
			Iterate: func(k int) {
				relaxRows(cur, old, idx, n, 1, n-1)
				tm.Advance(apputil.Cost((n-2)*(n-2), cfg.App.IGridUpdate))
				old, cur = cur, old
				if k == total-1 {
					_, _, s, cells := reduceRows(old, n, 0, n)
					redSum = s
					tm.Advance(apputil.Cost(cells, cfg.App.IGridReduce))
				}
			},
			Checksum: func() float64 {
				mx, mn, _, _ := reduceRows(old, n, 0, n)
				_ = redSum
				return sealed(mx, mn) + apputil.Sum64(old)
			},
		}
	})
}

func runTmk(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	total := cfg.Warmup + cfg.Iters
	return apputil.RunTmk("IGrid", core.Tmk, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		a := tmk.Alloc[float32](tm, "a", n*n)
		b := tmk.Alloc[float32](tm, "b", n*n)
		me, nprocs := tm.ID(), tm.NProcs()
		// max, min, then one sum slot per node: max/min updates are
		// order-independent, but the float sum must fold in node order,
		// not lock-grant order (which varies with the coherence
		// protocol's timing — cross-protocol equivalence relies on this).
		red := tmk.Alloc[float64](tm, "red", 2+nprocs)
		idx := buildMap(n) // private: the map is read-only
		rlo, rhi := apputil.BlockOf(me, nprocs, n-2)
		rlo, rhi = rlo+1, rhi+1
		if me == 0 {
			w := a.Write(0, n*n)
			initOld(w, n)
			wb := b.Write(0, n*n)
			copy(wb[:n*n], w[:n*n])
			r := red.Write(0, 2+nprocs)
			r[0], r[1] = -1e30, 1e30
			for q := 0; q < nprocs; q++ {
				r[2+q] = 0
			}
		}
		tm.Barrier()
		old, cur := a, b
		return apputil.TmkProgram{
			Iterate: func(k int) {
				if rhi > rlo {
					// Demand paging over the touched range: only invalid
					// pages are fetched.
					src := old.Read((rlo-1)*n, (rhi+1)*n)
					dst := cur.Write(rlo*n, rhi*n)
					relaxRows(dst, src, idx, n, rlo, rhi)
					tm.Advance(apputil.Cost((rhi-rlo)*(n-2), cfg.App.IGridUpdate))
				}
				tm.Barrier()
				old, cur = cur, old
				if k == total-1 {
					g := old.Read(rlo*n, rhi*n)
					mx, mn, s, cells := reduceRows(g, n, rlo, rhi)
					tm.Advance(apputil.Cost(cells, cfg.App.IGridReduce))
					if cells > 0 {
						tm.AcquireLock(7)
						r := red.Write(0, 2+nprocs)
						if float64(mx) > r[0] {
							r[0] = float64(mx)
						}
						if float64(mn) < r[1] {
							r[1] = float64(mn)
						}
						r[2+me] = s
						tm.ReleaseLock(7)
					}
					tm.Barrier()
				}
			},
			Checksum: func() float64 {
				r := red.Read(0, 3)
				g := old.Read(0, n*n)
				return float64(float32(r[0]))*1e3 + float64(float32(r[1])) + apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runSPF is the compiler-generated shared-memory version. Fortran
// cannot swap array identities, so where the hand-coded versions switch
// old and new pointers, the SPF-generated program runs a second parallel
// loop that copies the new array back into the old one — doubling the
// per-iteration fork-joins and the write-notice traffic (the paper's
// SPF IGrid shows ~3x the hand-coded Tmk message count).
func runSPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	total := cfg.Warmup + cfg.Iters
	return apputil.RunSPF("IGrid", core.SPF, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		oldArr := tmk.Alloc[float32](tm, "old", n*n)
		newArr := tmk.Alloc[float32](tm, "new", n*n)
		idx := buildMap(n)
		maxRed := spf.NewReduction(rt, "max", func(x, y float64) float64 { return max(x, y) })
		minRed := spf.NewReduction(rt, "min", func(x, y float64) float64 { return min(x, y) })
		sumRed := spf.NewReduction(rt, "sum", func(x, y float64) float64 { return x + y })
		relax := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			src := oldArr.Read((lo-1)*n, (hi+1)*n)
			dst := newArr.Write(lo*n, hi*n)
			relaxRows(dst, src, idx, n, lo, hi)
			rt.Advance(apputil.Cost((hi-lo)*(n-2), cfg.App.IGridUpdate))
		})
		copyBack := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			src := newArr.Read(lo*n, hi*n)
			dst := oldArr.Write(lo*n, hi*n)
			copy(dst[lo*n:hi*n], src[lo*n:hi*n])
			rt.Advance(apputil.Cost((hi-lo)*n, cfg.App.IGridReduce))
		})
		reduce := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			g := oldArr.Read(lo*n, hi*n)
			mx, mn, s, cells := reduceRows(g, n, lo, hi)
			rt.Advance(apputil.Cost(cells, cfg.App.IGridReduce))
			if cells > 0 {
				maxRed.Combine(rt, float64(mx))
				minRed.Combine(rt, float64(mn))
				sumRed.Combine(rt, s)
			}
		})
		if rt.IsMaster() {
			w := oldArr.Write(0, n*n)
			initOld(w, n)
			wb := newArr.Write(0, n*n)
			copy(wb[:n*n], w[:n*n])
		}
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(relax, 1, n-1, spf.Block)
				rt.ParallelDo(copyBack, 1, n-1, spf.Block)
				if k == total-1 {
					maxRed.Reset(-1e30)
					minRed.Reset(1e30)
					sumRed.Reset(0)
					rt.ParallelDo(reduce, 0, n, spf.Block)
				}
			},
			Checksum: func() float64 {
				g := oldArr.Read(0, n*n)
				return float64(float32(maxRed.Value()))*1e3 +
					float64(float32(minRed.Value())) +
					apputil.Sum64(g[:n*n])
			},
		}
	})
}

func runXHPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	total := cfg.Warmup + cfg.Iters
	return apputil.RunXHPF("IGrid", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		old := make([]float32, n*n)
		cur := make([]float32, n*n)
		idx := buildMap(n)
		initOld(old, n)
		copy(cur, old)
		me := x.ID()
		rlo, rhi := apputil.BlockOf(me, x.NProcs(), n-2)
		rlo, rhi = rlo+1, rhi+1
		var redVals []float64
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				if rhi > rlo {
					relaxRows(cur, old, idx, n, rlo, rhi)
					x.Advance(apputil.Cost((rhi-rlo)*(n-2), cfg.App.IGridUpdate))
				}
				// Unknown access pattern: broadcast the whole block.
				xhpf.BroadcastBlocks(x, cur, func(q int) (int, int) {
					qlo, qhi := apputil.BlockOf(q, x.NProcs(), n-2)
					return (qlo + 1) * n, (qhi + 1) * n
				}, 4)
				x.LoopSync()
				old, cur = cur, old
				if k == total-1 {
					mx, mn, s, cells := reduceRows(old, n, rlo, rhi)
					x.Advance(apputil.Cost(cells, cfg.App.IGridReduce))
					sums := xhpf.AllReduceSum(x, []float64{s})
					maxs := xhpf.AllReduceWith(x, []float64{float64(mx)}, func(a, b float64) float64 { return max(a, b) })
					mins := xhpf.AllReduceWith(x, []float64{float64(mn)}, func(a, b float64) float64 { return min(a, b) })
					redVals = []float64{maxs[0], mins[0], sums[0]}
				}
			},
			Checksum: func() float64 {
				if me != 0 {
					return 0
				}
				return sealed(float32(redVals[0]), float32(redVals[1])) + apputil.Sum64(old)
			},
		}
	})
}

func runPVM(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	total := cfg.Warmup + cfg.Iters
	return apputil.RunPVM("IGrid", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		old := make([]float32, n*n)
		cur := make([]float32, n*n)
		idx := buildMap(n)
		initOld(old, n)
		copy(cur, old)
		me, nprocs := pv.ID(), pv.NProcs()
		rlo, rhi := apputil.BlockOf(me, nprocs, n-2)
		rlo, rhi = rlo+1, rhi+1
		var redVals []float64
		return apputil.PVMProgram{
			Iterate: func(k int) {
				// The hand coder inspected the map once at setup and knows
				// only boundary rows cross processors.
				if me > 0 {
					pvm.Send(pv, me-1, 80, old[rlo*n:(rlo+1)*n])
				}
				if me < nprocs-1 {
					pvm.Send(pv, me+1, 81, old[(rhi-1)*n:rhi*n])
				}
				if me > 0 {
					pvm.Recv(pv, me-1, 81, old[(rlo-1)*n:rlo*n])
				}
				if me < nprocs-1 {
					pvm.Recv(pv, me+1, 80, old[rhi*n:(rhi+1)*n])
				}
				if rhi > rlo {
					relaxRows(cur, old, idx, n, rlo, rhi)
					pv.Advance(apputil.Cost((rhi-rlo)*(n-2), cfg.App.IGridUpdate))
				}
				old, cur = cur, old
				if k == total-1 {
					mx, mn, s, cells := reduceRows(old, n, rlo, rhi)
					pv.Advance(apputil.Cost(cells, cfg.App.IGridReduce))
					sums := pvm.ReduceSum(pv, 0, 85, []float64{s})
					maxs := pvm.Reduce(pv, 0, 87, []float64{float64(mx)}, func(a, b float64) float64 { return max(a, b) })
					mins := pvm.Reduce(pv, 0, 89, []float64{float64(mn)}, func(a, b float64) float64 { return min(a, b) })
					redVals = []float64{maxs[0], mins[0], sums[0]}
				}
			},
			Checksum: func() float64 {
				gatherInterior(pv, old, n)
				if me != 0 {
					return 0
				}
				return sealed(float32(redVals[0]), float32(redVals[1])) + apputil.Sum64(old)
			},
		}
	})
}

// gatherInterior collects interior row blocks on task 0, untracked.
func gatherInterior(pv *pvm.PVM, g []float32, n int) {
	me, nprocs := pv.ID(), pv.NProcs()
	if me == 0 {
		for q := 1; q < nprocs; q++ {
			qlo, qhi := apputil.BlockOf(q, nprocs, n-2)
			if qhi > qlo {
				pvm.RecvUntracked(pv, q, 95, g[(qlo+1)*n:(qhi+1)*n])
			}
		}
		return
	}
	rlo, rhi := apputil.BlockOf(me, nprocs, n-2)
	if rhi > rlo {
		pvm.SendUntracked(pv, 0, 95, g[(rlo+1)*n:(rhi+1)*n])
	}
}
