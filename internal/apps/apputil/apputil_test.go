package apputil

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tmk"
)

func TestSum64(t *testing.T) {
	if got := Sum64([]float32{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum64 = %v, want 6.5", got)
	}
	if got := Sum64(nil); got != 0 {
		t.Errorf("Sum64(nil) = %v, want 0", got)
	}
}

func TestCost(t *testing.T) {
	if got := Cost(1000, 130); got != 130000 {
		t.Errorf("Cost = %v, want 130000", got)
	}
}

func TestBlockOfCoversRange(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100} {
		covered := 0
		prevHi := 0
		for p := 0; p < 8; p++ {
			lo, hi := BlockOf(p, 8, n)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d: block [%d,%d) not contiguous with previous end %d", n, p, lo, hi, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("n=%d: blocks cover %d elements", n, covered)
		}
	}
}

// TestRunTmkMeasurementProtocol verifies the region protocol end to end:
// warm-up traffic excluded, timed traffic counted, checksum faults not
// counted.
func TestRunTmkMeasurementProtocol(t *testing.T) {
	cfg := core.Config{Procs: 2, Iters: 3, Warmup: 2, Costs: model.SP2(), App: model.DefaultAppCosts()}
	res, err := RunTmk("probe", core.Tmk, cfg, func(tm *tmk.Tmk) TmkProgram {
		r := tmk.Alloc[float32](tm, "a", 1024)
		return TmkProgram{
			Iterate: func(k int) {
				if tm.ID() == 0 {
					w := r.Write(0, 1024)
					w[k] = float32(k + 1)
				}
				tm.Barrier()
				if tm.ID() == 1 {
					r.Read(0, 1024) // one fault per iteration
				}
				tm.Barrier()
			},
			Checksum: func() float64 {
				g := r.Read(0, 1024)
				return Sum64(g[:1024])
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Timed region: Iters iterations x (2 barriers x 2 msgs + 1 fault x 2 msgs).
	want := int64(cfg.Iters * (2*2 + 2))
	if got := res.Stats.TotalMsgs(); got != want {
		t.Errorf("timed msgs = %d, want %d (warmup and checksum must be excluded)", got, want)
	}
	if res.Checksum == 0 {
		t.Error("checksum not evaluated")
	}
	if res.Time <= 0 {
		t.Error("no elapsed time measured")
	}
}

// TestRunSeqChargesOnlyCompute: a sequential run has no traffic and its
// elapsed time equals the charged compute.
func TestRunSeqChargesOnlyCompute(t *testing.T) {
	cfg := core.Config{Procs: 1, Iters: 4, Warmup: 1, Costs: model.SP2(), App: model.DefaultAppCosts()}
	res, err := RunSeq("probe", cfg, func(tm *tmk.Tmk) SeqProgram {
		return SeqProgram{
			Iterate:  func(k int) { tm.Advance(7 * sim.Millisecond) },
			Checksum: func() float64 { return 42 },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 4*7*sim.Millisecond {
		t.Errorf("seq time = %v, want 28ms (warmup excluded)", res.Time)
	}
	if res.Stats.TotalMsgs() != 0 {
		t.Errorf("seq run counted %d messages", res.Stats.TotalMsgs())
	}
	if res.Checksum != 42 {
		t.Errorf("checksum = %v", res.Checksum)
	}
}
