// Package apputil carries the measurement protocol shared by all six
// applications: warm-up exclusion, timed-region traffic snapshots, and
// the per-flavor run scaffolding (sequential, TreadMarks, SPF fork-join,
// XHPF SPMD, PVMe). See core.Region for the boundary protocol.
package apputil

import (
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

// SeqProgram is a sequential run: iterate is called Warmup+Iters times;
// checksum is evaluated at the end.
type SeqProgram struct {
	Iterate  func(k int)
	Checksum func() float64
}

// RunSeq measures a sequential program on a 1-process TreadMarks system
// (synchronization removed, per paper §3) charging only compute costs.
func RunSeq(app string, cfg core.Config, setup func(tm *tmk.Tmk) SeqProgram) (core.Result, error) {
	sys := tmk.NewSystem(1, cfg.Costs, tmk.WithProtocol(cfg.Protocol), tmk.WithHomePolicy(cfg.HomePolicy))
	reg := core.NewRegion(1)
	var sum float64
	err := sys.Run(func(tm *tmk.Tmk) {
		p := setup(tm)
		for k := 0; k < cfg.Warmup; k++ {
			p.Iterate(k)
		}
		reg.Baseline(sys.Stats())
		reg.Start(0, tm.Now())
		for k := 0; k < cfg.Iters; k++ {
			p.Iterate(cfg.Warmup + k)
		}
		reg.End(0, tm.Now())
		reg.Final(sys.Stats())
		sum = p.Checksum()
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		App: app, Version: core.Seq, Procs: 1,
		Time: reg.Elapsed(), Stats: reg.Traffic(), Checksum: sum,
	}
	core.AttachObs(&res, cfg.Costs.Trace, reg, 1)
	return res, nil
}

// TmkProgram is a hand-coded TreadMarks program. Iterate runs on every
// process; Checksum runs on process 0 after measurement (its page faults
// are not counted).
type TmkProgram struct {
	Iterate  func(k int)
	Checksum func() float64
}

// RunTmk measures a TreadMarks program.
func RunTmk(app string, v core.Version, cfg core.Config, setup func(tm *tmk.Tmk) TmkProgram) (core.Result, error) {
	sys := tmk.NewSystem(cfg.Procs, cfg.Costs, tmk.WithProtocol(cfg.Protocol), tmk.WithHomePolicy(cfg.HomePolicy))
	reg := core.NewRegion(cfg.Procs)
	var sum float64
	profiles := make([]tmk.Profile, cfg.Procs)
	err := sys.Run(func(tm *tmk.Tmk) {
		p := setup(tm)
		for k := 0; k < cfg.Warmup; k++ {
			p.Iterate(k)
		}
		tm.BarrierSilent()
		if tm.ID() == 0 {
			reg.Baseline(sys.Stats())
		}
		tm.BarrierSilent()
		base := tm.Profile()
		reg.Start(tm.ID(), tm.Now())
		for k := 0; k < cfg.Iters; k++ {
			p.Iterate(cfg.Warmup + k)
		}
		reg.End(tm.ID(), tm.Now())
		end := tm.Profile()
		profiles[tm.ID()] = tmk.Profile{
			Fault:   end.Fault - base.Fault,
			Barrier: end.Barrier - base.Barrier,
			Lock:    end.Lock - base.Lock,
			Write:   end.Write - base.Write,
		}
		tm.BarrierSilent()
		if tm.ID() == 0 {
			reg.Final(sys.Stats())
			sum = p.Checksum()
		}
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		App: app, Version: v, Procs: cfg.Procs, Protocol: sys.Protocol(),
		Time: reg.Elapsed(), Stats: reg.Traffic(), Checksum: sum,
	}
	for _, pr := range profiles {
		res.FaultTime += pr.Fault
		res.SyncTime += pr.Barrier + pr.Lock
		res.WriteTime += pr.Write
	}
	addPolicyActivity(&res, sys)
	core.AttachObs(&res, cfg.Costs.Trace, reg, cfg.Procs)
	return res, nil
}

// addPolicyActivity records the home-policy identity and whole-run
// migration activity of a DSM run into the result. The homeless
// protocol has no homes: a configured policy was never consulted and
// must not be reported as part of the measurement.
func addPolicyActivity(res *core.Result, sys *tmk.System) {
	if sys.Protocol() != proto.HomeLRC {
		return
	}
	res.HomePolicy = sys.HomePolicy()
	ctr := sys.ProtocolCounters()
	res.Migrations = ctr.Migrations
	res.RedirectedFlushBytes = ctr.RedirectedFlushBytes
	res.StaleForwards = ctr.StaleForwards
}

// SPFProgram is a compiler-generated program: IterateMaster is the
// master's per-iteration main program (built from ParallelDo calls and
// sequential sections); Checksum runs on the master at the end.
type SPFProgram struct {
	IterateMaster func(k int)
	Checksum      func() float64
}

// RunSPF measures a fork-join SPF program. Workers sit in the dispatch
// loop; between a join and the next fork they are blocked, so the
// master's snapshots cleanly separate warm-up from timed traffic.
func RunSPF(app string, v core.Version, cfg core.Config, opts spf.Options,
	setup func(rt *spf.Runtime) SPFProgram) (core.Result, error) {
	sys := tmk.NewSystem(cfg.Procs, cfg.Costs, tmk.WithProtocol(cfg.Protocol), tmk.WithHomePolicy(cfg.HomePolicy))
	reg := core.NewRegion(1)
	var sum float64
	err := spf.Run(sys, opts, func(rt *spf.Runtime) {
		p := setup(rt)
		if !rt.IsMaster() {
			rt.Serve()
			return
		}
		for k := 0; k < cfg.Warmup; k++ {
			p.IterateMaster(k)
		}
		reg.Baseline(sys.Stats())
		reg.Start(0, rt.Now())
		for k := 0; k < cfg.Iters; k++ {
			p.IterateMaster(cfg.Warmup + k)
		}
		reg.End(0, rt.Now())
		reg.Final(sys.Stats())
		sum = p.Checksum()
		rt.Done()
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		App: app, Version: v, Procs: cfg.Procs, Protocol: sys.Protocol(),
		Time: reg.Elapsed(), Stats: reg.Traffic(), Checksum: sum,
	}
	addPolicyActivity(&res, sys)
	core.AttachObs(&res, cfg.Costs.Trace, reg, cfg.Procs)
	return res, nil
}

// PVMProgram is a hand-coded message-passing program.
type PVMProgram struct {
	Iterate  func(k int)
	Checksum func() float64 // evaluated on task 0; gather untracked data first
}

// RunPVM measures a PVMe program. Timed-region boundaries use untracked
// barriers (measurement infrastructure, excluded from Table 2/3 counts).
func RunPVM(app string, v core.Version, cfg core.Config, setup func(pv *pvm.PVM) PVMProgram) (core.Result, error) {
	sys := pvm.NewSystem(cfg.Procs, cfg.Costs)
	reg := core.NewRegion(cfg.Procs)
	var sum float64
	err := sys.Run(func(pv *pvm.PVM) {
		p := setup(pv)
		for k := 0; k < cfg.Warmup; k++ {
			p.Iterate(k)
		}
		pv.BarrierSilent(1 << 12)
		if pv.ID() == 0 {
			reg.Baseline(sys.Stats())
		}
		pv.BarrierSilent(1<<12 + 2)
		reg.Start(pv.ID(), pv.Now())
		for k := 0; k < cfg.Iters; k++ {
			p.Iterate(cfg.Warmup + k)
		}
		reg.End(pv.ID(), pv.Now())
		pv.BarrierSilent(1<<12 + 4)
		if pv.ID() == 0 {
			reg.Final(sys.Stats())
		}
		if p.Checksum != nil {
			s := p.Checksum()
			if pv.ID() == 0 {
				sum = s
			}
		}
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		App: app, Version: v, Procs: cfg.Procs,
		Time: reg.Elapsed(), Stats: reg.Traffic(), Checksum: sum,
	}
	core.AttachObs(&res, cfg.Costs.Trace, reg, cfg.Procs)
	return res, nil
}

// XHPFProgram is a compiler-generated SPMD message-passing program.
type XHPFProgram struct {
	Iterate  func(k int)
	Checksum func() float64
}

// RunXHPF measures an XHPF program. v distinguishes the hand-written
// compiler model (core.XHPF) from the loopc-generated one (core.XHPFGen).
func RunXHPF(app string, v core.Version, cfg core.Config, setup func(x *xhpf.XHPF) XHPFProgram) (core.Result, error) {
	sys := xhpf.NewSystem(cfg.Procs, cfg.Costs)
	reg := core.NewRegion(cfg.Procs)
	var sum float64
	err := sys.Run(func(x *xhpf.XHPF) {
		p := setup(x)
		for k := 0; k < cfg.Warmup; k++ {
			p.Iterate(k)
		}
		x.BoundarySync()
		if x.ID() == 0 {
			reg.Baseline(sys.Stats())
		}
		x.BoundarySync()
		reg.Start(x.ID(), x.Now())
		for k := 0; k < cfg.Iters; k++ {
			p.Iterate(cfg.Warmup + k)
		}
		reg.End(x.ID(), x.Now())
		x.BoundarySync()
		if x.ID() == 0 {
			reg.Final(sys.Stats())
		}
		if p.Checksum != nil {
			s := p.Checksum()
			if x.ID() == 0 {
				sum = s
			}
		}
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		App: app, Version: v, Procs: cfg.Procs,
		Time: reg.Elapsed(), Stats: reg.Traffic(), Checksum: sum,
	}
	core.AttachObs(&res, cfg.Costs.Trace, reg, cfg.Procs)
	return res, nil
}

// BlockOf returns processor p's block [lo,hi) of extent n under BLOCK
// distribution (shared by all application partitionings).
func BlockOf(p, nprocs, n int) (lo, hi int) { return xhpf.BlockOf(p, nprocs, n) }

// Sum64 accumulates a float32 slice in index order into a float64, the
// checksum convention every version shares.
func Sum64(xs []float32) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s
}

// Cost multiplies an element count by a per-element cost.
func Cost(n int, per sim.Time) sim.Time { return sim.Time(n) * per }
