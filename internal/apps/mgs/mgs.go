// Package mgs implements the paper's Modified Gramm-Schmidt application
// (§5.3): computing an orthonormal basis for N N-dimensional
// single-precision vectors. At iteration i the i-th vector is
// normalized sequentially, then every vector j > i is orthogonalized
// against it in parallel; vectors are dealt to processors cyclically for
// load balance and everyone synchronizes once per iteration.
//
// The version differences the paper analyzes:
//
//   - hand-coded TreadMarks normalizes on the vector's owner;
//   - SPF normalizes on the master (normalization is sequential code in
//     the fork-join model), so the vector crosses to the master and back;
//   - XHPF replicates the normalization on all processors (SPMD), after
//     the owner broadcasts the updated vector;
//   - hand-coded PVMe broadcasts the normalized vector — one message
//     carries both the data and the synchronization;
//   - the §5.3 hand optimization gives TreadMarks the same broadcast
//     (merged synchronization and data through the enhanced interface).
//
// Orientation: the paper's Fortran vectors are matrix columns
// (contiguous); here they are matrix rows (contiguous). A 1024-element
// single-precision vector is exactly one 4 KB page either way.
package mgs

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

type app struct{}

// New returns the MGS application.
func New() core.App { return app{} }

func (app) Name() string { return "MGS" }

// Config: MGS's mid scale equals the paper scale — it must keep the
// vector-equals-page geometry (at any narrower width two cyclically
// owned vectors share a page and false sharing swamps the comparison).
func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 64, Iters: 64, Warmup: 0}
	default:
		return core.Config{Procs: procs, N1: 1024, Iters: 1024, Warmup: 0}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe, core.TmkOpt}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	if cfg.Iters != cfg.N1 {
		return core.Result{}, fmt.Errorf("mgs: Iters must equal N1 (one iteration per vector)")
	}
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg, false)
	case core.TmkOpt:
		return runTmk(cfg, true)
	case core.SPF:
		return runSPF(cfg)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	}
	return core.Result{}, fmt.Errorf("mgs: unsupported version %q", v)
}

// initValue is the deterministic pseudo-random initializer every version
// shares: a cheap integer hash mapped into [0.5, 1.5).
func initValue(i int) float32 {
	h := uint32(i)*2654435761 + 12345
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	return 0.5 + float32(h%4096)/4096
}

func initMatrix(m []float32, n int) {
	for i := range m[:n*n] {
		m[i] = initValue(i)
	}
}

// dot64 is the deterministic float64 inner product every version uses.
func dot64(a, b []float32) float64 {
	var s float64
	for k := range a {
		s += float64(a[k]) * float64(b[k])
	}
	return s
}

// normalizeRow scales row to unit length.
func normalizeRow(row []float32) {
	inv := float32(1 / math.Sqrt(dot64(row, row)))
	for k := range row {
		row[k] *= inv
	}
}

// orthoRow removes row's component along unit.
func orthoRow(row, unit []float32) {
	r := float32(dot64(unit, row))
	for k := range row {
		row[k] -= r * unit[k]
	}
}

func runSeq(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSeq("MGS", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		m := make([]float32, n*n)
		initMatrix(m, n)
		return apputil.SeqProgram{
			Iterate: func(i int) {
				normalizeRow(m[i*n : (i+1)*n])
				tm.Advance(apputil.Cost(n, cfg.App.MGSNormalize))
				for j := i + 1; j < n; j++ {
					orthoRow(m[j*n:(j+1)*n], m[i*n:(i+1)*n])
				}
				tm.Advance(apputil.Cost((n-i-1)*n, cfg.App.MGSOrtho))
			},
			Checksum: func() float64 { return apputil.Sum64(m) },
		}
	})
}

// runTmk is the hand-coded TreadMarks version (broadcast=false) and the
// §5.3 hand-optimized version (broadcast=true).
func runTmk(cfg core.Config, broadcast bool) (core.Result, error) {
	n := cfg.N1
	v := core.Tmk
	if broadcast {
		v = core.TmkOpt
	}
	return apputil.RunTmk("MGS", v, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		m := tmk.Alloc[float32](tm, "m", n*n)
		me, nprocs := tm.ID(), tm.NProcs()
		if me == 0 {
			w := m.Write(0, n*n)
			initMatrix(w, n)
		}
		tm.Barrier()
		return apputil.TmkProgram{
			Iterate: func(i int) {
				owner := i % nprocs
				if owner == me {
					w := m.Write(i*n, (i+1)*n)
					normalizeRow(w[i*n : (i+1)*n])
					tm.Advance(apputil.Cost(n, cfg.App.MGSNormalize))
				}
				if broadcast {
					// Merged synchronization and data: the owner ships the
					// normalized vector directly; no barrier, no faults.
					tmk.BroadcastRegion(tm, m, i*n, (i+1)*n, owner)
				} else {
					tm.Barrier()
				}
				unit := m.Read(i*n, (i+1)*n)
				var mine int
				for j := i + 1 + ((me-i-1)%nprocs+nprocs)%nprocs; j < n; j += nprocs {
					w := m.Write(j*n, (j+1)*n)
					orthoRow(w[j*n:(j+1)*n], unit[i*n:(i+1)*n])
					mine++
				}
				tm.Advance(apputil.Cost(mine*n, cfg.App.MGSOrtho))
			},
			Checksum: func() float64 {
				g := m.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runSPF is the compiler-generated shared-memory version: normalization
// is sequential code executed on the master (the vector migrates from
// its owner to the master and back out to every reader — the §5.3 SPF
// penalty), and the orthogonalization loop is dispatched cyclically.
func runSPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSPF("MGS", core.SPF, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		m := tmk.Alloc[float32](tm, "m", n*n)
		ortho := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			i := int(args[0])
			unit := m.Read(i*n, (i+1)*n)
			var mine int
			for j := lo; j < hi; j += stride {
				w := m.Write(j*n, (j+1)*n)
				orthoRow(w[j*n:(j+1)*n], unit[i*n:(i+1)*n])
				mine++
			}
			rt.Advance(apputil.Cost(mine*n, cfg.App.MGSOrtho))
		})
		if rt.IsMaster() {
			w := m.Write(0, n*n)
			initMatrix(w, n)
		}
		return apputil.SPFProgram{
			IterateMaster: func(i int) {
				// Sequential section: normalize on the master.
				w := m.Write(i*n, (i+1)*n)
				normalizeRow(w[i*n : (i+1)*n])
				rt.Advance(apputil.Cost(n, cfg.App.MGSNormalize))
				rt.ParallelDo(ortho, i+1, n, spf.Cyclic, int64(i))
			},
			Checksum: func() float64 {
				g := m.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runXHPF is the compiler-generated message-passing version: the owner
// broadcasts the i-th vector, every processor performs the normalization
// redundantly (replicated sequential code in the SPMD model — the §5.3
// XHPF penalty), and the cyclic owner-computes loop updates local rows.
func runXHPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunXHPF("MGS", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		m := make([]float32, n*n)
		initMatrix(m, n)
		me, nprocs := x.ID(), x.NProcs()
		return apputil.XHPFProgram{
			Iterate: func(i int) {
				owner := i % nprocs
				row := m[i*n : (i+1)*n]
				xhpf.Bcast(x, owner, row)
				// Replicated normalization: every processor computes it.
				normalizeRow(row)
				x.Advance(apputil.Cost(n, cfg.App.MGSNormalize))
				x.LoopSync() // generated sync after the scale loop
				var mine int
				for j := i + 1 + ((me-i-1)%nprocs+nprocs)%nprocs; j < n; j += nprocs {
					orthoRow(m[j*n:(j+1)*n], row)
					mine++
				}
				x.Advance(apputil.Cost(mine*n, cfg.App.MGSOrtho))
				x.LoopSync() // generated sync after the orthogonalize loop
			},
			Checksum: func() float64 {
				gatherCyclic(x.PVM(), m, n)
				if me != 0 {
					return 0
				}
				return apputil.Sum64(m)
			},
		}
	})
}

// runPVM is the hand-coded message-passing version: the owner
// normalizes and broadcasts the i-th vector in one step; the broadcast
// is both the data movement and the synchronization.
func runPVM(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunPVM("MGS", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		m := make([]float32, n*n)
		initMatrix(m, n)
		me, nprocs := pv.ID(), pv.NProcs()
		return apputil.PVMProgram{
			Iterate: func(i int) {
				owner := i % nprocs
				row := m[i*n : (i+1)*n]
				if owner == me {
					normalizeRow(row)
					pv.Advance(apputil.Cost(n, cfg.App.MGSNormalize))
				}
				pvm.Bcast(pv, owner, 300, row)
				var mine int
				for j := i + 1 + ((me-i-1)%nprocs+nprocs)%nprocs; j < n; j += nprocs {
					orthoRow(m[j*n:(j+1)*n], row)
					mine++
				}
				pv.Advance(apputil.Cost(mine*n, cfg.App.MGSOrtho))
			},
			Checksum: func() float64 {
				gatherCyclic(pv, m, n)
				if me != 0 {
					return 0
				}
				return apputil.Sum64(m)
			},
		}
	})
}

// gatherCyclic collects cyclically distributed rows on task 0, untracked.
func gatherCyclic(pv *pvm.PVM, m []float32, n int) {
	me, nprocs := pv.ID(), pv.NProcs()
	if me == 0 {
		for j := 0; j < n; j++ {
			if j%nprocs != 0 {
				pvm.RecvUntracked(pv, j%nprocs, 400+j%64, m[j*n:(j+1)*n])
			}
		}
		return
	}
	for j := me; j < n; j += nprocs {
		pvm.SendUntracked(pv, 0, 400+j%64, m[j*n:(j+1)*n])
	}
}
