package mgs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func TestAllVersionsMatchSequential(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []core.Version{core.Tmk, core.TmkOpt, core.SPF, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s checksum = %v, want %v (bitwise)", v, r.Checksum, seq.Checksum)
		}
	}
}

// TestOrthonormality checks the math: after the run, rows are unit
// length and mutually orthogonal.
func TestOrthonormality(t *testing.T) {
	const n = 32
	m := make([]float32, n*n)
	initMatrix(m, n)
	for i := 0; i < n; i++ {
		normalizeRow(m[i*n : (i+1)*n])
		for j := i + 1; j < n; j++ {
			orthoRow(m[j*n:(j+1)*n], m[i*n:(i+1)*n])
		}
	}
	for i := 0; i < n; i++ {
		if d := dot64(m[i*n:(i+1)*n], m[i*n:(i+1)*n]); math.Abs(d-1) > 1e-5 {
			t.Errorf("|row %d|^2 = %v, want 1", i, d)
		}
		for j := i + 1; j < n; j++ {
			if d := dot64(m[i*n:(i+1)*n], m[j*n:(j+1)*n]); math.Abs(d) > 5e-3 {
				t.Errorf("<row %d, row %d> = %v, want 0", i, j, d)
			}
		}
	}
}

// TestPVMeMessageFormula: exactly (n-1) broadcast messages per
// iteration (paper: 7168 messages for 1024 iterations on 8 processors).
func TestPVMeMessageFormula(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.PVMe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * (cfg.Procs - 1))
	if got := r.Stats.TotalMsgs(); got != want {
		t.Errorf("PVMe msgs = %d, want %d", got, want)
	}
}

// TestTmkBroadcastOptimization: the §5.3 hand optimization must cut the
// per-iteration traffic from barrier+faults to a single broadcast.
func TestTmkBroadcastOptimization(t *testing.T) {
	cfg := cfgSmall(8)
	base, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New().Run(core.TmkOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.TotalMsgs() >= base.Stats.TotalMsgs() {
		t.Errorf("broadcast msgs = %d, want < %d", opt.Stats.TotalMsgs(), base.Stats.TotalMsgs())
	}
	if opt.Time >= base.Time {
		t.Errorf("broadcast time = %v, want < %v", opt.Time, base.Time)
	}
	if opt.Checksum != base.Checksum {
		t.Errorf("optimization changed the result")
	}
}

// TestTmkBarrierCount: hand-coded TreadMarks synchronizes once per
// iteration.
func TestTmkBarrierCount(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 2 * (cfg.Procs - 1))
	if got := r.Stats.MsgsOf(stats.KindBarrier); got != want {
		t.Errorf("barrier msgs = %d, want %d (one barrier per iteration)", got, want)
	}
}

// TestDiffAccumulationKeepsTrafficLinear: the vector fetched at
// iteration i has been written in up to i earlier intervals; lazy
// diffing with domination must deliver its current contents as one
// accumulated diff. Without domination the fetch would drag the whole
// write history along and total diff volume would grow like N³ (for
// N=512: hundreds of MB). We assert the linear regime: every matrix
// byte moves O(1) times.
func TestDiffAccumulationKeepsTrafficLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("needs page-sized vectors")
	}
	// Paper geometry: a 1024-element single-precision vector is exactly
	// one page, so pages are single-writer. (At N=512 two cyclically
	// owned vectors share a page and false sharing legitimately
	// dominates the traffic — that is the paper's §1 false-sharing
	// factor, not a protocol defect.)
	cfg := cfgSmall(8)
	cfg.N1, cfg.Iters = 1024, 1024
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matrixBytes := int64(cfg.N1 * cfg.N1 * 4)
	if got := r.Stats.BytesOf(stats.KindDiff); got > 16*matrixBytes {
		t.Errorf("diff bytes = %d, want <= %d (linear in matrix size)", got, 16*matrixBytes)
	}
}

// TestSpeedupOrdering at a mid size: PVMe > XHPF > Tmk > SPF (Figure 1).
func TestSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("uses a bigger matrix")
	}
	cfg := cfgSmall(8)
	cfg.N1, cfg.Iters = 512, 512
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if !(sp[core.PVMe] > sp[core.XHPF] && sp[core.XHPF] > sp[core.Tmk] && sp[core.Tmk] > sp[core.SPF]) {
		t.Errorf("ordering violated: PVMe=%.2f XHPF=%.2f Tmk=%.2f SPF=%.2f",
			sp[core.PVMe], sp[core.XHPF], sp[core.Tmk], sp[core.SPF])
	}
}
