package fft3d

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-30)
}

func TestAllVersionsMatchSequential(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum == 0 {
		t.Fatal("zero checksum")
	}
	for _, v := range []core.Version{core.Tmk, core.SPF, core.SPFOpt, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		// Reduction orders differ; complex128 keeps rounding tiny.
		if !relClose(r.Checksum, seq.Checksum, 1e-9) {
			t.Errorf("%s checksum = %v, want %v", v, r.Checksum, seq.Checksum)
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	cfg := cfgSmall(2)
	cfg.N1 = 12
	if _, err := New().Run(core.Seq, cfg); err == nil {
		t.Error("expected dimension error")
	}
}

// TestTmkBarrierCount: two barriers per iteration (§5.4).
func TestTmkBarrierCount(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 2 * 2 * (cfg.Procs - 1))
	if got := r.Stats.MsgsOf(stats.KindBarrier); got != want {
		t.Errorf("barrier msgs = %d, want %d (two barriers per iteration)", got, want)
	}
}

// TestSPFSixLoops: six fork-join loops per iteration.
func TestSPFSixLoops(t *testing.T) {
	cfg := cfgSmall(8)
	r, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 6 * 2 * (cfg.Procs - 1))
	if got := r.Stats.MsgsOf(stats.KindBarrier); got != want {
		t.Errorf("fork-join msgs = %d, want %d (six loops per iteration)", got, want)
	}
}

// TestAggregationCollapsesTransposeMessages: §5.4's headline — the
// shared-memory transpose faults pages one at a time (~30x hand-coded
// message passing); aggregation turns it into one request per writer.
func TestAggregationCollapsesTransposeMessages(t *testing.T) {
	// Each writer must own several planes for aggregation to collapse
	// requests (at paper size: 8 planes x 8 pages per writer).
	cfg := cfgSmall(8)
	cfg.N1, cfg.N2, cfg.N3 = 32, 32, 32
	base, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New().Run(core.SPFOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.MsgsOf(stats.KindDiffReq)*2 > base.Stats.MsgsOf(stats.KindDiffReq) {
		t.Errorf("aggregated requests = %d, want << %d",
			opt.Stats.MsgsOf(stats.KindDiffReq), base.Stats.MsgsOf(stats.KindDiffReq))
	}
	if !relClose(opt.Checksum, base.Checksum, 1e-12) {
		t.Errorf("aggregation changed the result: %v vs %v", opt.Checksum, base.Checksum)
	}
	if opt.Time >= base.Time {
		t.Errorf("aggregated time = %v, want < %v", opt.Time, base.Time)
	}
}

// TestTmkManyMoreMessagesThanPVMe: the paper's ~30x transpose blow-up.
func TestTmkManyMoreMessagesThanPVMe(t *testing.T) {
	cfg := cfgSmall(8)
	tmkR, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pvmR, err := New().Run(core.PVMe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tmkR.Stats.TotalMsgs() < 2*pvmR.Stats.TotalMsgs() {
		t.Errorf("Tmk msgs = %d, PVMe msgs = %d: expected a clear blow-up",
			tmkR.Stats.TotalMsgs(), pvmR.Stats.TotalMsgs())
	}
}

// TestSpeedupOrdering at a mid size: PVMe > XHPF > Tmk > SPF, and the
// optimized SPF close to PVMe (Figure 1 + §5.4).
func TestSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size run")
	}
	cfg := cfgSmall(8)
	cfg.N1, cfg.N2, cfg.N3 = 64, 64, 32
	cfg.Iters = 3
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFOpt} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if !(sp[core.PVMe] > sp[core.XHPF] && sp[core.XHPF] > sp[core.Tmk] && sp[core.Tmk] > sp[core.SPF]) {
		t.Errorf("ordering violated: PVMe=%.2f XHPF=%.2f Tmk=%.2f SPF=%.2f",
			sp[core.PVMe], sp[core.XHPF], sp[core.Tmk], sp[core.SPF])
	}
	if sp[core.SPFOpt] < sp[core.Tmk] {
		t.Errorf("aggregated SPF=%.2f should beat plain Tmk=%.2f", sp[core.SPFOpt], sp[core.Tmk])
	}
}
