// Package fft3d implements the paper's 3-D FFT application (§5.4), the
// kernel of the NAS FT benchmark: each iteration reinitializes an
// n1×n2×n3 double-precision complex array, applies an inverse 3-D FFT
// (1-D FFTs along each dimension), normalizes, and computes a checksum
// over 1024 sampled elements.
//
// The first two FFT dimensions are local under a block partition of the
// n3 planes (partition A). The n3-point FFTs need a different partition
// (block on n2 — partition B), so a transpose moves 7/8 of the array
// across the machine into a separate transposed array. In the
// shared-memory versions the transpose is implicit — partition-B owners
// simply fault in the partition-A pages one at a time, which is why the
// paper measures about 30× more messages than hand-coded message
// passing and why the §5.4 data-aggregation hand optimization (one
// request per writer for the whole strided section set) nearly closes
// the gap (speedup 2.65 → 5.05 vs PVMe's 5.12).
//
// Layout: index (i3*n2 + i2)*n1 + i1 in x (i1 contiguous); the
// transposed array xt holds (i2*n3 + i3)*n1 + i1 so partition-B work is
// contiguous and local.
package fft3d

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

type app struct{}

// New returns the 3-D FFT application.
func New() core.App { return app{} }

func (app) Name() string { return "3-D FFT" }

func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 16, N2: 16, N3: 8, Iters: 2, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 64, N2: 64, N3: 32, Iters: 3, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 128, N2: 128, N3: 64, Iters: 5, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFOpt}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	if !fft.Pow2(cfg.N1) || !fft.Pow2(cfg.N2) || !fft.Pow2(cfg.N3) {
		return core.Result{}, fmt.Errorf("fft3d: dimensions must be powers of two")
	}
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg)
	case core.SPF:
		return runSPF(cfg, false)
	case core.SPFOpt:
		return runSPF(cfg, true)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	}
	return core.Result{}, fmt.Errorf("fft3d: unsupported version %q", v)
}

func hash32(x uint32) uint32 {
	x = x*2654435761 + 104729
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return x
}

// initValue is the deterministic per-iteration initializer.
func initValue(i, iter int) complex128 {
	h1 := hash32(uint32(i*5 + iter*7919))
	h2 := hash32(uint32(i*11 + iter*104729 + 3))
	return complex(float64(h1%2048)/2048-0.5, float64(h2%2048)/2048-0.5)
}

// checksumIndices samples 1024 xt-linear indices, as the NAS kernel sums
// 1024 elements.
func checksumIndices(total int) []int {
	n := 1024
	if total < 4096 {
		n = 64
	}
	idx := make([]int, n)
	for k := range idx {
		idx[k] = (k*131 + 17) % total
	}
	return idx
}

// kernel bundles the per-version compute pieces so every version charges
// identical virtual costs and performs bitwise-identical arithmetic.
type kernel struct {
	cfg     core.Config
	n1      int
	n2      int
	n3      int
	scratch []complex128
}

func newKernel(cfg core.Config) *kernel {
	m := cfg.N2
	if cfg.N3 > m {
		m = cfg.N3
	}
	return &kernel{cfg: cfg, n1: cfg.N1, n2: cfg.N2, n3: cfg.N3, scratch: make([]complex128, m)}
}

// initPlanes fills planes [p3lo,p3hi) of x for iteration iter.
func (kn *kernel) initPlanes(x []complex128, p3lo, p3hi, iter int) int {
	base := p3lo * kn.n2 * kn.n1
	end := p3hi * kn.n2 * kn.n1
	for i := base; i < end; i++ {
		x[i] = initValue(i, iter)
	}
	return end - base
}

// fft1Planes performs n1-point inverse FFTs on every (i3,i2) pencil of
// planes [p3lo,p3hi). Returns butterfly count.
func (kn *kernel) fft1Planes(x []complex128, p3lo, p3hi int) int {
	b := 0
	for i3 := p3lo; i3 < p3hi; i3++ {
		for i2 := 0; i2 < kn.n2; i2++ {
			off := (i3*kn.n2 + i2) * kn.n1
			fft.Inverse(x[off : off+kn.n1])
			b += fft.Butterflies(kn.n1)
		}
	}
	return b
}

// fft2Planes performs n2-point inverse FFTs along i2 (stride n1) for
// planes [p3lo,p3hi).
func (kn *kernel) fft2Planes(x []complex128, p3lo, p3hi int) int {
	b := 0
	s := kn.scratch[:kn.n2]
	for i3 := p3lo; i3 < p3hi; i3++ {
		plane := i3 * kn.n2 * kn.n1
		for i1 := 0; i1 < kn.n1; i1++ {
			for i2 := 0; i2 < kn.n2; i2++ {
				s[i2] = x[plane+i2*kn.n1+i1]
			}
			fft.Inverse(s)
			for i2 := 0; i2 < kn.n2; i2++ {
				x[plane+i2*kn.n1+i1] = s[i2]
			}
			b += fft.Butterflies(kn.n2)
		}
	}
	return b
}

// transposeRows copies x into xt layout for i2 rows [b2lo,b2hi): element
// x[(i3*n2+i2)*n1+i1] → xt[(i2*n3+i3)*n1+i1]. Returns elements moved.
func (kn *kernel) transposeRows(xt, x []complex128, b2lo, b2hi int) int {
	moved := 0
	for i2 := b2lo; i2 < b2hi; i2++ {
		for i3 := 0; i3 < kn.n3; i3++ {
			src := (i3*kn.n2 + i2) * kn.n1
			dst := (i2*kn.n3 + i3) * kn.n1
			copy(xt[dst:dst+kn.n1], x[src:src+kn.n1])
			moved += kn.n1
		}
	}
	return moved
}

// fft3Rows performs n3-point inverse FFTs (stride n1 in xt) for i2 rows
// [b2lo,b2hi).
func (kn *kernel) fft3Rows(xt []complex128, b2lo, b2hi int) int {
	b := 0
	s := kn.scratch[:kn.n3]
	for i2 := b2lo; i2 < b2hi; i2++ {
		row := i2 * kn.n3 * kn.n1
		for i1 := 0; i1 < kn.n1; i1++ {
			for i3 := 0; i3 < kn.n3; i3++ {
				s[i3] = xt[row+i3*kn.n1+i1]
			}
			fft.Inverse(s)
			for i3 := 0; i3 < kn.n3; i3++ {
				xt[row+i3*kn.n1+i1] = s[i3]
			}
			b += fft.Butterflies(kn.n3)
		}
	}
	return b
}

// normalizeRows scales xt rows [b2lo,b2hi) by 1/(n1*n2*n3).
func (kn *kernel) normalizeRows(xt []complex128, b2lo, b2hi int) int {
	inv := complex(1/float64(kn.n1*kn.n2*kn.n3), 0)
	lo := b2lo * kn.n3 * kn.n1
	hi := b2hi * kn.n3 * kn.n1
	for i := lo; i < hi; i++ {
		xt[i] *= inv
	}
	return hi - lo
}

// checksumRows sums the sampled elements owned by rows [b2lo,b2hi).
func (kn *kernel) checksumRows(xt []complex128, idx []int, b2lo, b2hi int) (complex128, int) {
	lo := b2lo * kn.n3 * kn.n1
	hi := b2hi * kn.n3 * kn.n1
	var s complex128
	touched := 0
	for _, i := range idx {
		if i >= lo && i < hi {
			s += xt[i]
			touched++
		}
	}
	return s, touched
}

// chargeFFT converts butterfly and touch counts into virtual time.
func chargeFFT(adv func(sim.Time), cfg core.Config, butterflies, touches int) {
	adv(apputil.Cost(butterflies, cfg.App.FFTButterfly) + apputil.Cost(touches, cfg.App.FFTTouch))
}

func sumComplex(s complex128) float64 { return real(s) + 2*imag(s) }

func runSeq(cfg core.Config) (core.Result, error) {
	kn := newKernel(cfg)
	total := kn.n1 * kn.n2 * kn.n3
	idx := checksumIndices(total)
	return apputil.RunSeq("3-D FFT", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		x := make([]complex128, total)
		xt := make([]complex128, total)
		var sum complex128
		return apputil.SeqProgram{
			Iterate: func(k int) {
				touches := kn.initPlanes(x, 0, kn.n3, k)
				b := kn.fft1Planes(x, 0, kn.n3)
				b += kn.fft2Planes(x, 0, kn.n3)
				touches += kn.transposeRows(xt, x, 0, kn.n2)
				b += kn.fft3Rows(xt, 0, kn.n2)
				touches += kn.normalizeRows(xt, 0, kn.n2)
				s, t := kn.checksumRows(xt, idx, 0, kn.n2)
				sum = s
				touches += t
				chargeFFT(tm.Advance, cfg, b, touches)
			},
			Checksum: func() float64 { return sumComplex(sum) },
		}
	})
}

// runTmk is the hand-coded TreadMarks version: two shared arrays, two
// barriers per iteration (between the partition-A and partition-B
// phases, and at end of iteration after the checksum). The transpose is
// implicit: partition-B owners fault in the partition-A pages they read.
func runTmk(cfg core.Config) (core.Result, error) {
	kn := newKernel(cfg)
	total := kn.n1 * kn.n2 * kn.n3
	idx := checksumIndices(total)
	return apputil.RunTmk("3-D FFT", core.Tmk, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		me, nprocs := tm.ID(), tm.NProcs()
		x := tmk.Alloc[complex128](tm, "x", total)
		xt := tmk.Alloc[complex128](tm, "xt", total)
		// One (re,im) slot per node: the lock serializes the shared-page
		// writes as in the paper, but each node only touches its own slot
		// and node 0 folds them in node order, so the reduced value does
		// not depend on lock-grant order (which varies with the coherence
		// protocol's timing; the cross-protocol equivalence tests rely on
		// this).
		partial := tmk.Alloc[float64](tm, "csum", 2*nprocs)
		p3lo, p3hi := apputil.BlockOf(me, nprocs, kn.n3)
		b2lo, b2hi := apputil.BlockOf(me, nprocs, kn.n2)
		var sum complex128
		return apputil.TmkProgram{
			Iterate: func(k int) {
				if me == 0 {
					// Reset the checksum slots; the previous iteration's
					// writes are ordered before this one by the
					// end-of-iteration barrier.
					w := partial.Write(0, 2*nprocs)
					for q := 0; q < 2*nprocs; q++ {
						w[q] = 0
					}
				}
				wx := x.Write(p3lo*kn.n2*kn.n1, p3hi*kn.n2*kn.n1)
				touches := kn.initPlanes(wx, p3lo, p3hi, k)
				b := kn.fft1Planes(wx, p3lo, p3hi)
				b += kn.fft2Planes(wx, p3lo, p3hi)
				tm.Barrier() // partition A done; partition B may read
				// Implicit transpose: fault the needed x sections page by
				// page while copying into the local xt rows.
				rx := readTransposeSections(x, kn, b2lo, b2hi, false)
				wxt := xt.Write(b2lo*kn.n3*kn.n1, b2hi*kn.n3*kn.n1)
				touches += kn.transposeRows(wxt, rx, b2lo, b2hi)
				b += kn.fft3Rows(wxt, b2lo, b2hi)
				touches += kn.normalizeRows(wxt, b2lo, b2hi)
				s, t := kn.checksumRows(wxt, idx, b2lo, b2hi)
				touches += t
				tm.AcquireLock(3)
				w := partial.Write(2*me, 2*me+2)
				w[2*me] = real(s)
				w[2*me+1] = imag(s)
				tm.ReleaseLock(3)
				chargeFFT(tm.Advance, cfg, b, touches)
				tm.Barrier() // end of iteration, after the checksum
				if me == 0 {
					g := partial.Read(0, 2*nprocs)
					sum = 0
					for q := 0; q < nprocs; q++ {
						sum += complex(g[2*q], g[2*q+1])
					}
				}
			},
			Checksum: func() float64 { return sumComplex(sum) },
		}
	})
}

// readTransposeSections validates (and thereby fetches) the x sections a
// partition-B owner reads: for every plane, the i2 rows [b2lo,b2hi).
// aggregated selects the §5.4 enhanced-interface optimization.
func readTransposeSections(x *tmk.Region[complex128], kn *kernel, b2lo, b2hi int, aggregated bool) []complex128 {
	if aggregated {
		ranges := make([][2]int, 0, kn.n3)
		for i3 := 0; i3 < kn.n3; i3++ {
			lo := (i3*kn.n2 + b2lo) * kn.n1
			hi := (i3*kn.n2 + b2hi) * kn.n1
			ranges = append(ranges, [2]int{lo, hi})
		}
		return x.ReadAggregatedRanges(ranges)
	}
	var out []complex128
	for i3 := 0; i3 < kn.n3; i3++ {
		lo := (i3*kn.n2 + b2lo) * kn.n1
		hi := (i3*kn.n2 + b2hi) * kn.n1
		out = x.Read(lo, hi)
	}
	return out
}

// runSPF is the compiler-generated version: six parallel loops per
// iteration (init, three FFT dimensions, normalize, checksum), each a
// fork-join dispatch; the checksum is a lock-based reduction pair.
// aggregated selects the §5.4 hand optimization.
func runSPF(cfg core.Config, aggregated bool) (core.Result, error) {
	kn := newKernel(cfg)
	total := kn.n1 * kn.n2 * kn.n3
	idx := checksumIndices(total)
	v := core.SPF
	if aggregated {
		v = core.SPFOpt
	}
	return apputil.RunSPF("3-D FFT", v, cfg, spf.Options{}, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		x := tmk.Alloc[complex128](tm, "x", total)
		xt := tmk.Alloc[complex128](tm, "xt", total)
		add := func(a, b float64) float64 { return a + b }
		reSum := spf.NewReduction(rt, "re", add)
		imSum := spf.NewReduction(rt, "im", add)

		initLoop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			w := x.Write(lo*kn.n2*kn.n1, hi*kn.n2*kn.n1)
			t := kn.initPlanes(w, lo, hi, int(args[0]))
			chargeFFT(rt.Advance, cfg, 0, t)
		})
		fft1Loop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			w := x.Write(lo*kn.n2*kn.n1, hi*kn.n2*kn.n1)
			chargeFFT(rt.Advance, cfg, kn.fft1Planes(w, lo, hi), 0)
		})
		fft2Loop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			w := x.Write(lo*kn.n2*kn.n1, hi*kn.n2*kn.n1)
			chargeFFT(rt.Advance, cfg, kn.fft2Planes(w, lo, hi), 0)
		})
		fft3Loop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			rx := readTransposeSections(x, kn, lo, hi, aggregated)
			w := xt.Write(lo*kn.n3*kn.n1, hi*kn.n3*kn.n1)
			t := kn.transposeRows(w, rx, lo, hi)
			chargeFFT(rt.Advance, cfg, kn.fft3Rows(w, lo, hi), t)
		})
		normLoop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			w := xt.Write(lo*kn.n3*kn.n1, hi*kn.n3*kn.n1)
			chargeFFT(rt.Advance, cfg, 0, kn.normalizeRows(w, lo, hi))
		})
		csumLoop := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if hi <= lo {
				return
			}
			g := xt.Read(lo*kn.n3*kn.n1, hi*kn.n3*kn.n1)
			s, t := kn.checksumRows(g, idx, lo, hi)
			chargeFFT(rt.Advance, cfg, 0, t)
			reSum.Combine(rt, real(s))
			imSum.Combine(rt, imag(s))
		})
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(initLoop, 0, kn.n3, spf.Block, int64(k))
				rt.ParallelDo(fft1Loop, 0, kn.n3, spf.Block)
				rt.ParallelDo(fft2Loop, 0, kn.n3, spf.Block)
				rt.ParallelDo(fft3Loop, 0, kn.n2, spf.Block)
				rt.ParallelDo(normLoop, 0, kn.n2, spf.Block)
				reSum.Reset(0)
				imSum.Reset(0)
				rt.ParallelDo(csumLoop, 0, kn.n2, spf.Block)
			},
			Checksum: func() float64 {
				return sumComplex(complex(reSum.Value(), imSum.Value()))
			},
		}
	})
}

// runXHPF is the compiler-generated message-passing version: the
// transpose is generated as unaggregated section sends — one message per
// (plane, i2-row) — which is the paper's ~30× message blow-up relative
// to hand-coded message passing, plus a sync per parallel loop.
func runXHPF(cfg core.Config) (core.Result, error) {
	kn := newKernel(cfg)
	total := kn.n1 * kn.n2 * kn.n3
	idx := checksumIndices(total)
	return apputil.RunXHPF("3-D FFT", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		me, nprocs := x.ID(), x.NProcs()
		xs := make([]complex128, total)
		xt := make([]complex128, total)
		p3lo, p3hi := apputil.BlockOf(me, nprocs, kn.n3)
		b2lo, b2hi := apputil.BlockOf(me, nprocs, kn.n2)
		var sum complex128
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				touches := kn.initPlanes(xs, p3lo, p3hi, k)
				x.LoopSync()
				b := kn.fft1Planes(xs, p3lo, p3hi)
				x.LoopSync()
				b += kn.fft2Planes(xs, p3lo, p3hi)
				x.LoopSync()
				// Generated transpose: per-destination per-plane per-row
				// sections.
				sectionsFor := func(q int) [][]complex128 {
					qlo, qhi := apputil.BlockOf(q, nprocs, kn.n2)
					var secs [][]complex128
					for i3 := p3lo; i3 < p3hi; i3++ {
						for i2 := qlo; i2 < qhi; i2++ {
							off := (i3*kn.n2 + i2) * kn.n1
							secs = append(secs, xs[off:off+kn.n1])
						}
					}
					return secs
				}
				placeFor := func(q int) [][]complex128 {
					qlo, qhi := apputil.BlockOf(q, nprocs, kn.n3)
					var secs [][]complex128
					for i3 := qlo; i3 < qhi; i3++ {
						for i2 := b2lo; i2 < b2hi; i2++ {
							dst := (i2*kn.n3 + i3) * kn.n1
							secs = append(secs, xt[dst:dst+kn.n1])
						}
					}
					return secs
				}
				xhpf.SectionAllToAll(x, kn.n1, 16, sectionsFor, placeFor)
				// Local part of the transpose.
				for i3 := p3lo; i3 < p3hi; i3++ {
					for i2 := b2lo; i2 < b2hi; i2++ {
						src := (i3*kn.n2 + i2) * kn.n1
						dst := (i2*kn.n3 + i3) * kn.n1
						copy(xt[dst:dst+kn.n1], xs[src:src+kn.n1])
						touches += kn.n1
					}
				}
				b += kn.fft3Rows(xt, b2lo, b2hi)
				x.LoopSync()
				touches += kn.normalizeRows(xt, b2lo, b2hi)
				x.LoopSync()
				s, t := kn.checksumRows(xt, idx, b2lo, b2hi)
				touches += t
				parts := xhpf.AllReduceSum(x, []float64{real(s), imag(s)})
				sum = complex(parts[0], parts[1])
				x.LoopSync()
				chargeFFT(x.Advance, cfg, b, touches)
			},
			Checksum: func() float64 {
				if me != 0 {
					return 0
				}
				return sumComplex(sum)
			},
		}
	})
}

// runPVM is the hand-coded message-passing version: the transpose is a
// fully aggregated all-to-all — one packed message per destination.
func runPVM(cfg core.Config) (core.Result, error) {
	kn := newKernel(cfg)
	total := kn.n1 * kn.n2 * kn.n3
	idx := checksumIndices(total)
	return apputil.RunPVM("3-D FFT", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		me, nprocs := pv.ID(), pv.NProcs()
		xs := make([]complex128, total)
		xt := make([]complex128, total)
		p3lo, p3hi := apputil.BlockOf(me, nprocs, kn.n3)
		b2lo, b2hi := apputil.BlockOf(me, nprocs, kn.n2)
		var sum complex128
		return apputil.PVMProgram{
			Iterate: func(k int) {
				touches := kn.initPlanes(xs, p3lo, p3hi, k)
				b := kn.fft1Planes(xs, p3lo, p3hi)
				b += kn.fft2Planes(xs, p3lo, p3hi)
				// Aggregated all-to-all: one packed message per peer.
				for q := 0; q < nprocs; q++ {
					if q == me {
						continue
					}
					qlo, qhi := apputil.BlockOf(q, nprocs, kn.n2)
					buf := make([]complex128, 0, (p3hi-p3lo)*(qhi-qlo)*kn.n1)
					for i3 := p3lo; i3 < p3hi; i3++ {
						for i2 := qlo; i2 < qhi; i2++ {
							off := (i3*kn.n2 + i2) * kn.n1
							buf = append(buf, xs[off:off+kn.n1]...)
						}
					}
					pvm.Send(pv, q, 600, buf)
				}
				for q := 0; q < nprocs; q++ {
					if q == me {
						continue
					}
					qlo, qhi := apputil.BlockOf(q, nprocs, kn.n3)
					buf := make([]complex128, (qhi-qlo)*(b2hi-b2lo)*kn.n1)
					pvm.Recv(pv, q, 600, buf)
					at := 0
					for i3 := qlo; i3 < qhi; i3++ {
						for i2 := b2lo; i2 < b2hi; i2++ {
							dst := (i2*kn.n3 + i3) * kn.n1
							copy(xt[dst:dst+kn.n1], buf[at:at+kn.n1])
							at += kn.n1
							touches += kn.n1
						}
					}
				}
				for i3 := p3lo; i3 < p3hi; i3++ {
					for i2 := b2lo; i2 < b2hi; i2++ {
						src := (i3*kn.n2 + i2) * kn.n1
						dst := (i2*kn.n3 + i3) * kn.n1
						copy(xt[dst:dst+kn.n1], xs[src:src+kn.n1])
						touches += kn.n1
					}
				}
				b += kn.fft3Rows(xt, b2lo, b2hi)
				touches += kn.normalizeRows(xt, b2lo, b2hi)
				s, t := kn.checksumRows(xt, idx, b2lo, b2hi)
				touches += t
				parts := pvm.ReduceSum(pv, 0, 610, []float64{real(s), imag(s)})
				if me == 0 {
					sum = complex(parts[0], parts[1])
				}
				chargeFFT(pv.Advance, cfg, b, touches)
			},
			Checksum: func() float64 {
				if me != 0 {
					return 0
				}
				return sumComplex(sum)
			},
		}
	})
}
